// Attack-sweep: compare fault-attack techniques with different temporal
// and spatial accuracy against the same design, reproducing the paper's
// Figure 11 style analysis — the motivation for modeling the attack
// process probabilistically instead of assuming a deterministic
// single-bit fault.
//
// Run with: go run ./examples/attack-sweep
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/report"
)

func main() {
	opts := core.DefaultOptions()
	opts.Precharac.MaxDepth = 101 // cover the widest timing window below
	fw, err := core.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	if err != nil {
		log.Fatal(err)
	}

	const samples = 20000

	// Temporal accuracy: a cheap glitcher that lands within ±50
	// cycles versus lab equipment that hits the exact cycle.
	tbl := report.NewTable("Temporal accuracy vs SSF (memory-write benchmark)",
		"timing window", "SSF", "vs 100-cycle window")
	base := -1.0
	for _, tr := range []int{100, 50, 10, 2, 1} {
		spec := core.DefaultAttackSpec()
		spec.TRange = tr
		ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, spec)
		if err != nil {
			log.Fatal(err)
		}
		sampler, err := ev.ImportanceSampler()
		if err != nil {
			log.Fatal(err)
		}
		camp, err := ev.Engine.RunCampaign(context.Background(), sampler, montecarlo.CampaignOptions{Samples: samples, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if base < 0 {
			base = camp.SSF()
		}
		rel := "n/a"
		if base > 0 {
			rel = fmt.Sprintf("%.1fx", camp.SSF()/base)
		}
		tbl.Row(fmt.Sprintf("%d cycles", tr), camp.SSF(), rel)
	}
	fmt.Println(tbl)

	// Spatial accuracy: wide-spot radiation over the whole block
	// versus a focused beam aimed at the violation-decision gate.
	spec := core.DefaultAttackSpec()
	block := fw.CandidateBlock(spec.BlockFrac)
	target := fw.SecurityTarget()
	tbl2 := report.NewTable("Spatial accuracy vs SSF", "aim", "SSF", "vs uniform")
	base = -1.0
	for _, frac := range []float64{1.0, 0.25, 0.05, 1e-9} {
		cands := fault.ConcentratedCenters(fw.Place, block, target, frac)
		attack, err := fault.NewAttack("sweep", spec.TRange, spec.Technique, cands, nil)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := fw.NewEvaluationAttack(prog, attack)
		if err != nil {
			log.Fatal(err)
		}
		sampler, err := ev.ImportanceSampler()
		if err != nil {
			log.Fatal(err)
		}
		camp, err := ev.Engine.RunCampaign(context.Background(), sampler, montecarlo.CampaignOptions{Samples: samples, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if base < 0 {
			base = camp.SSF()
		}
		label := fmt.Sprintf("nearest %.0f%% of block", frac*100)
		if frac <= 1e-6 {
			label = "delta (exact gate)"
		}
		rel := "n/a"
		if base > 0 {
			rel = fmt.Sprintf("%.1fx", camp.SSF()/base)
		}
		tbl2.Row(label, camp.SSF(), rel)
	}
	fmt.Println(tbl2)

	// Technique comparison: the same design under radiation strikes
	// versus clock glitching.
	evDefault, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		log.Fatal(err)
	}
	radSampler, err := evDefault.ImportanceSampler()
	if err != nil {
		log.Fatal(err)
	}
	rad, err := evDefault.Engine.RunCampaign(context.Background(), radSampler, montecarlo.CampaignOptions{Samples: samples, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	glitchAttack, err := fault.NewGlitchAttack("glitch", 50, fault.DefaultClockGlitch())
	if err != nil {
		log.Fatal(err)
	}
	gl, err := evDefault.Engine.RunGlitchCampaign(context.Background(), glitchAttack, montecarlo.CampaignOptions{Samples: samples, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	tbl3 := report.NewTable("Technique comparison (memory-write benchmark)",
		"technique", "SSF", "bypasses", "disturbed runs")
	tbl3.Row("radiation (spot strikes)", rad.SSF(), rad.Successes,
		rad.Options.Samples-rad.ClassCounts[montecarlo.Masked])
	tbl3.Row("clock glitch (global)", gl.SSF(), gl.Successes,
		gl.Options.Samples-gl.ClassCounts[montecarlo.Masked])
	fmt.Println(tbl3)
	fmt.Println("Better temporal or spatial accuracy raises the bypass probability by")
	fmt.Println("orders of magnitude — attack-technique uncertainty cannot be ignored.")
	fmt.Println("Clock glitching disturbs this MPU often but never bypasses it: the")
	fmt.Println("grant path is the slow one, so early capture denies instead of granting.")
}
