// Quickstart: evaluate the System Security Factor of the bundled SoC's
// MPU against radiation fault attacks, end to end:
//
//  1. build the framework (elaborates the MPU to gates, places it, and
//     runs the one-time system pre-characterization);
//  2. prepare an evaluation of the illegal-memory-write benchmark under
//     the default attack model (50-cycle timing window, 1/8-of-MPU
//     spatial targeting);
//  3. run an importance-sampling Monte Carlo campaign and report SSF.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	t0 := time.Now()
	fw, err := core.Build(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("framework built in %v\n", time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  MPU: %d nodes, %d registers (%d memory-type, %d computation-type)\n",
		fw.MPU.Netlist.NumNodes(), len(fw.MPU.Netlist.Regs()),
		len(fw.Char.MemoryRegs()), len(fw.Char.ComputationRegs()))

	ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  golden run: the marked illegal write traps at cycle %d (security mechanism works)\n",
		ev.Golden.TargetCycle)

	sampler, err := ev.ImportanceSampler()
	if err != nil {
		log.Fatal(err)
	}
	camp, err := ev.EvaluateSSF(context.Background(), sampler, core.DefaultCampaign(20000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSSF = %.3e ± %.1e  (%d successful bypasses in %d sampled attacks)\n",
		camp.SSF(), camp.Est.StdErr(), camp.Successes, camp.Options.Samples)
	fmt.Printf("outcome classes: %d masked, %d memory-type-only, %d mixed\n",
		camp.ClassCounts[0], camp.ClassCounts[1], camp.ClassCounts[2])
	fmt.Printf("only %d runs (%.1f%%) needed a full RTL resume — the rest were\n",
		camp.PathCounts[3], 100*float64(camp.PathCounts[3])/float64(camp.Options.Samples))
	fmt.Println("decided by masking, analytical evaluation, or lifetime pruning.")
}
