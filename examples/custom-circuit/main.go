// Custom-circuit: use the framework's lower layers on your own design.
// We describe a small PIN-entry lock with the hdl builder, elaborate it
// to gates, verify its behaviour with the logic simulator, run the
// cone extraction the pre-characterization uses, and fire timed
// gate-level fault strikes at it to find the injection windows that
// force the lock open.
//
// Run with: go run ./examples/custom-circuit
package main

import (
	"fmt"
	"log"

	"repro/internal/hdl"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/timingsim"
)

func main() {
	// --- Describe the lock ------------------------------------------------
	// A 4-bit PIN comparator with a 2-bit retry counter: after three
	// wrong attempts the lock latches "alarm" and ignores everything
	// until reset. "unlocked" is the security-critical output.
	b := hdl.NewBuilder()
	pin := b.Input("pin", 4)
	try := b.Input("try", 1)

	secret := b.Const(0b1011, 4)
	match := b.Eq(pin, secret)

	alarm := b.Reg("alarm", 1, 0)
	unlocked := b.Reg("unlocked", 1, 0)
	retries := b.Reg("retries", 2, 0)

	attempt := b.And(try, b.Not(alarm.Q))
	good := b.And(attempt, match)
	bad := b.And(attempt, b.Not(match))

	unlocked.SetNext(b.Or(unlocked.Q, good))
	maxed := b.Eq(retries.Q, b.Const(3, 2))
	alarm.SetNext(b.Or(alarm.Q, b.And(bad, maxed)))
	retries.SetNextEn(bad, b.Inc(retries.Q))

	b.Output("unlocked", unlocked.Q)
	b.Output("alarm", alarm.Q)

	nl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	stats, err := netlist.ComputeStats(nl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lock elaborated: %d gates, %d registers, depth %d\n",
		stats.CombGates, stats.Registers, stats.Depth)

	// --- Functional check with the logic simulator ------------------------
	sim, err := logicsim.New(nl)
	if err != nil {
		log.Fatal(err)
	}
	enterPIN := func(v uint64) {
		sim.DriveWord([]netlist.NodeID(pin), v)
		sim.DriveWord([]netlist.NodeID(try), 1)
		sim.Step()
		sim.DriveWord([]netlist.NodeID(try), 0)
		sim.Step()
	}
	enterPIN(0b0001) // wrong
	enterPIN(0b1011) // right
	if sim.ReadWord([]netlist.NodeID(unlocked.Q)) != 1 {
		log.Fatal("lock does not open on the correct PIN")
	}
	fmt.Println("functional check: wrong PIN rejected, right PIN opens the lock")

	// --- Security cone of the "unlocked" register -------------------------
	cone := nl.UnrolledFaninCone([]netlist.NodeID{unlocked.Q[0]}, 3)
	fmt.Printf("fanin cone of 'unlocked': %d nodes within 3 unrolled cycles\n",
		len(cone.All()))

	// --- Fault strikes: can a transient force the lock open? --------------
	place := placement.Place(nl)
	tsim, err := timingsim.New(nl, timingsim.DefaultDelayModel())
	if err != nil {
		log.Fatal(err)
	}
	fresh, _ := logicsim.New(nl)
	fresh.DriveWord([]netlist.NodeID(pin), 0b0000) // wrong PIN on the bus
	fresh.DriveWord([]netlist.NodeID(try), 1)      // mid-attempt
	fresh.Eval()
	values := func(id netlist.NodeID) bool { return fresh.Bool(id) }

	dm := timingsim.DefaultDelayModel()
	opened := 0
	for g := 0; g < nl.NumNodes(); g++ {
		id := netlist.NodeID(g)
		t := nl.Node(id).Type
		if !t.IsCombinational() || t == netlist.Const0 || t == netlist.Const1 {
			continue
		}
		strike := timingsim.Strike{
			Gates: place.CombWithinRadius(id, 1.5),
			Time:  dm.ClockPeriod - dm.Setup - 60,
			Width: 150,
		}
		res := tsim.Inject(values, strike)
		for _, r := range res.FlippedRegs {
			if r == unlocked.Q[0] {
				opened++
				break
			}
		}
	}
	fmt.Printf("fault sweep: strikes centered at %d gates can force 'unlocked' high\n", opened)
	fmt.Println("those gates' fanin cone is where this lock needs hardened cells")
}
