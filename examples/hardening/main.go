// Hardening: identify the registers that carry almost all of the
// System Security Factor and evaluate the selective-hardening
// countermeasure (soft-error-resilient cells on just those registers),
// reproducing the paper's headline design-guidance result.
//
// Run with: go run ./examples/hardening
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harden"
	"repro/internal/montecarlo"
	"repro/internal/report"
)

func main() {
	fw, err := core.Build(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		log.Fatal(err)
	}

	// Attribute SSF to registers over both attack surfaces.
	imp, err := ev.ImportanceSampler()
	if err != nil {
		log.Fatal(err)
	}
	gate, err := ev.Engine.RunCampaign(context.Background(), imp, montecarlo.CampaignOptions{Samples: 20000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	regOpts := montecarlo.CampaignOptions{Samples: 20000, Seed: 2, Mode: montecarlo.RegisterAttack}
	reg, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), regOpts)
	if err != nil {
		log.Fatal(err)
	}
	ranked := montecarlo.RankContributions(gate.RegContribution, reg.RegContribution)
	if len(ranked) == 0 {
		log.Fatal("no successful attacks observed; increase the sample count")
	}

	nl := fw.MPU.Netlist
	tbl := report.NewTable("Registers by SSF contribution", "rank", "register", "share")
	for i, cr := range ranked {
		if i >= 12 {
			break
		}
		tbl.Row(i+1, nl.Node(cr.Reg).Name, report.Percent(cr.Share))
	}
	fmt.Println(tbl)

	n95 := montecarlo.CoverageCount(ranked, 0.95)
	fmt.Printf("%d of %d registers (%.1f%%) cover 95%% of the success mass.\n\n",
		n95, len(nl.Regs()), 100*float64(n95)/float64(len(nl.Regs())))

	// Harden exactly those registers with resilient cells.
	resil, area := harden.DefaultCellParams()
	plan := harden.Plan{
		Regs:       harden.FromCritical(ranked, 0.95),
		Resilience: resil,
		AreaFactor: area,
	}
	res, err := harden.Evaluate(context.Background(), ev.Engine, ev.RandomSampler(), regOpts, plan)
	if err != nil {
		log.Fatal(err)
	}
	out := report.NewTable("Selective hardening (10x resilient cells on the critical registers)",
		"metric", "value")
	out.Row("hardened registers", res.NumRegs)
	out.Row("register fraction", report.Percent(res.RegFraction))
	out.Row("SSF before", res.BaseSSF)
	out.Row("SSF after", res.HardenedSSF)
	improvement := fmt.Sprintf("%.1fx", res.Improvement)
	if res.HardenedNoSuccess {
		improvement = ">= " + improvement + " (no hardened successes seen)"
	}
	out.Row("security improvement", improvement)
	out.Row("MPU area overhead", report.Percent(res.AreaOverhead))
	fmt.Println(out)
	fmt.Println("Paper reports: hardening ~3% of registers yields up to 6.5x lower SSF")
	fmt.Println("for <2% area overhead — targeted protection beats blanket hardening.")
}
