// Parallel-adaptive: run the importance-sampling campaign across an
// engine pool and let it stop itself on the paper's weak-LLN
// convergence bound, instead of guessing a sample count up front.
//
// This composes the two campaign orchestration features:
//
//   - an EnginePool clones the SoC over the shared MPU elaboration so
//     shards run concurrently on independent engines;
//   - RunAdaptive(Parallel) checks Pr[|estimate − SSF| ≥ eps] ≤ risk
//     between rounds and stops as soon as the bound holds.
//
// A progress callback observes the campaign while it runs, and a
// context deadline shows how long campaigns stay cancellable: the
// partial result comes back cleanly instead of being lost.
//
// Run with: go run ./examples/parallel-adaptive
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/montecarlo"
)

func main() {
	fw, err := core.Build(core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := ev.ImportanceSampler()
	if err != nil {
		log.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	pool, err := ev.NewEnginePool(workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine pool ready: %d workers\n", pool.Size())

	// Stop at ±2e-4 absolute accuracy with 5% risk — the campaign
	// decides how many samples that takes.
	opts := montecarlo.DefaultAdaptive(2e-4)
	opts.MinSamples = 2000
	opts.CheckEvery = 1000
	opts.ProgressEvery = 2000
	opts.Progress = func(p montecarlo.Progress) {
		fmt.Printf("  %6d samples  ssf=%.3e  %5.0f runs/s\n", p.Done, p.SSF, p.RunsPerSec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	camp, err := pool.RunAdaptive(ctx, sampler, opts)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) && camp != nil:
		fmt.Printf("deadline hit — partial campaign of %d samples follows\n", camp.Est.N())
	default:
		log.Fatal(err)
	}

	fmt.Printf("\nconverged after %d samples (bound %.3f ≤ risk %.2f)\n",
		camp.Est.N(), camp.Est.LLNBound(opts.Epsilon), opts.Risk)
	fmt.Printf("SSF = %.3e ± %.1e  (%d successful bypasses)\n",
		camp.SSF(), camp.Est.StdErr(), camp.Successes)
	fmt.Printf("eval paths masked/analytical/pruned/rtl: %d / %d / %d / %d\n",
		camp.PathCounts[0], camp.PathCounts[1], camp.PathCounts[2], camp.PathCounts[3])
}
