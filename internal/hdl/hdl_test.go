package hdl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// combHarness elaborates a combinational function of two w-bit inputs
// and returns an evaluator mapping (x, y) to the output value.
func combHarness(t *testing.T, w int, f func(b *Builder, x, y Signal) Signal) func(x, y uint64) uint64 {
	t.Helper()
	b := NewBuilder()
	x := b.Input("x", w)
	y := b.Input("y", w)
	out := f(b, x, y)
	b.Output("out", out)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logicsim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	xs := []netlist.NodeID(x)
	ys := []netlist.NodeID(y)
	os := []netlist.NodeID(out)
	return func(a, c uint64) uint64 {
		sim.DriveWord(xs, a)
		sim.DriveWord(ys, c)
		sim.Eval()
		return sim.ReadWord(os)
	}
}

func TestAddMatchesUint(t *testing.T) {
	eval := combHarness(t, 8, func(b *Builder, x, y Signal) Signal { return b.Add(x, y) })
	f := func(a, c uint8) bool { return eval(uint64(a), uint64(c)) == uint64(a+c) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubMatchesUint(t *testing.T) {
	eval := combHarness(t, 8, func(b *Builder, x, y Signal) Signal { return b.Sub(x, y) })
	f := func(a, c uint8) bool { return eval(uint64(a), uint64(c)) == uint64(a-c) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCCarryOut(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4)
	y := b.Input("y", 4)
	sum, cout := b.AddC(x, y, b.Const(1, 1))
	b.Output("s", sum)
	b.Output("c", cout)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	for a := uint64(0); a < 16; a++ {
		for c := uint64(0); c < 16; c++ {
			sim.DriveWord([]netlist.NodeID(x), a)
			sim.DriveWord([]netlist.NodeID(y), c)
			sim.Eval()
			total := a + c + 1
			if got := sim.ReadWord([]netlist.NodeID(sum)); got != total%16 {
				t.Fatalf("%d+%d+1: sum %d", a, c, got)
			}
			if got := sim.ReadWord([]netlist.NodeID(cout)); got != total/16 {
				t.Fatalf("%d+%d+1: cout %d", a, c, got)
			}
		}
	}
}

func TestComparators(t *testing.T) {
	w := 6
	ops := map[string]struct {
		build func(b *Builder, x, y Signal) Signal
		want  func(a, c uint64) bool
	}{
		"eq":  {func(b *Builder, x, y Signal) Signal { return b.Eq(x, y) }, func(a, c uint64) bool { return a == c }},
		"ne":  {func(b *Builder, x, y Signal) Signal { return b.Ne(x, y) }, func(a, c uint64) bool { return a != c }},
		"ltu": {func(b *Builder, x, y Signal) Signal { return b.Ltu(x, y) }, func(a, c uint64) bool { return a < c }},
		"leu": {func(b *Builder, x, y Signal) Signal { return b.Leu(x, y) }, func(a, c uint64) bool { return a <= c }},
		"geu": {func(b *Builder, x, y Signal) Signal { return b.Geu(x, y) }, func(a, c uint64) bool { return a >= c }},
		"gtu": {func(b *Builder, x, y Signal) Signal { return b.Gtu(x, y) }, func(a, c uint64) bool { return a > c }},
	}
	rng := rand.New(rand.NewSource(3))
	for name, op := range ops {
		eval := combHarness(t, w, op.build)
		for i := 0; i < 300; i++ {
			a := rng.Uint64() % 64
			c := rng.Uint64() % 64
			want := uint64(0)
			if op.want(a, c) {
				want = 1
			}
			if got := eval(a, c); got != want {
				t.Fatalf("%s(%d, %d) = %d, want %d", name, a, c, got, want)
			}
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	cases := map[string]struct {
		build func(b *Builder, x, y Signal) Signal
		want  func(a, c uint64) uint64
	}{
		"and":  {func(b *Builder, x, y Signal) Signal { return b.And(x, y) }, func(a, c uint64) uint64 { return a & c }},
		"or":   {func(b *Builder, x, y Signal) Signal { return b.Or(x, y) }, func(a, c uint64) uint64 { return a | c }},
		"xor":  {func(b *Builder, x, y Signal) Signal { return b.Xor(x, y) }, func(a, c uint64) uint64 { return a ^ c }},
		"nand": {func(b *Builder, x, y Signal) Signal { return b.Nand(x, y) }, func(a, c uint64) uint64 { return ^(a & c) & 0xFF }},
		"nor":  {func(b *Builder, x, y Signal) Signal { return b.Nor(x, y) }, func(a, c uint64) uint64 { return ^(a | c) & 0xFF }},
		"notx": {func(b *Builder, x, y Signal) Signal { return b.Not(x) }, func(a, c uint64) uint64 { return ^a & 0xFF }},
	}
	for name, tc := range cases {
		eval := combHarness(t, 8, tc.build)
		for a := uint64(0); a < 256; a += 17 {
			for c := uint64(0); c < 256; c += 13 {
				if got := eval(a, c); got != tc.want(a, c) {
					t.Fatalf("%s(%#x, %#x) = %#x, want %#x", name, a, c, got, tc.want(a, c))
				}
			}
		}
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder()
	sel := b.Input("sel", 1)
	x := b.Input("x", 4)
	y := b.Input("y", 4)
	out := b.Mux(sel, x, y)
	b.Output("out", out)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	sim.DriveWord([]netlist.NodeID(x), 0xA)
	sim.DriveWord([]netlist.NodeID(y), 0x5)
	sim.DriveWord([]netlist.NodeID(sel), 0)
	sim.Eval()
	if got := sim.ReadWord([]netlist.NodeID(out)); got != 0xA {
		t.Fatalf("mux(0) = %#x", got)
	}
	sim.DriveWord([]netlist.NodeID(sel), 1)
	sim.Eval()
	if got := sim.ReadWord([]netlist.NodeID(out)); got != 0x5 {
		t.Fatalf("mux(1) = %#x", got)
	}
}

func TestReductions(t *testing.T) {
	eval := combHarness(t, 8, func(b *Builder, x, y Signal) Signal {
		return Concat(b.AndAll(x), b.OrAll(x), b.XorAll(x))
	})
	for a := uint64(0); a < 256; a++ {
		got := eval(a, 0)
		wantAnd := uint64(0)
		if a == 0xFF {
			wantAnd = 1
		}
		wantOr := uint64(0)
		if a != 0 {
			wantOr = 1
		}
		par := uint64(0)
		for i := 0; i < 8; i++ {
			par ^= a >> uint(i) & 1
		}
		want := wantAnd | wantOr<<1 | par<<2
		if got != want {
			t.Fatalf("reductions(%#x) = %#x, want %#x", a, got, want)
		}
	}
}

func TestDecoder(t *testing.T) {
	eval := combHarness(t, 3, func(b *Builder, x, y Signal) Signal { return b.Decoder(x) })
	for a := uint64(0); a < 8; a++ {
		if got := eval(a, 0); got != 1<<a {
			t.Fatalf("decode(%d) = %#x", a, got)
		}
	}
}

func TestSelectOneHot(t *testing.T) {
	b := NewBuilder()
	sel := b.Input("sel", 2)
	x := b.Input("x", 4)
	y := b.Input("y", 4)
	onehot := b.Decoder(sel)
	out := b.SelectOneHot(onehot, []Signal{x, y, b.Const(0xC, 4), b.Const(3, 4)})
	b.Output("out", out)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	sim.DriveWord([]netlist.NodeID(x), 0x9)
	sim.DriveWord([]netlist.NodeID(y), 0x6)
	want := []uint64{0x9, 0x6, 0xC, 0x3}
	for s, w := range want {
		sim.DriveWord([]netlist.NodeID(sel), uint64(s))
		sim.Eval()
		if got := sim.ReadWord([]netlist.NodeID(out)); got != w {
			t.Fatalf("select(%d) = %#x, want %#x", s, got, w)
		}
	}
}

func TestRegisterPipeline(t *testing.T) {
	b := NewBuilder()
	in := b.Input("in", 4)
	r1 := b.Reg("r1", 4, 0)
	r2 := b.Reg("r2", 4, 0)
	r1.SetNext(in)
	r2.SetNext(r1.Q)
	b.Output("out", r2.Q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	seq := []uint64{3, 7, 1, 9, 0}
	var got []uint64
	for _, v := range seq {
		sim.DriveWord([]netlist.NodeID(in), v)
		sim.Step()
		got = append(got, sim.ReadWord([]netlist.NodeID(r2.Q)))
	}
	// Two-stage pipeline: output lags input by 2.
	want := []uint64{0, 3, 7, 1, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: out = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestRegEnable(t *testing.T) {
	b := NewBuilder()
	en := b.Input("en", 1)
	in := b.Input("in", 4)
	r := b.Reg("r", 4, 5)
	r.SetNextEn(en, in)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	if got := sim.ReadWord([]netlist.NodeID(r.Q)); got != 5 {
		t.Fatalf("init = %d, want 5", got)
	}
	sim.DriveWord([]netlist.NodeID(in), 0xB)
	sim.DriveWord([]netlist.NodeID(en), 0)
	sim.Step()
	if got := sim.ReadWord([]netlist.NodeID(r.Q)); got != 5 {
		t.Fatalf("disabled reg changed to %d", got)
	}
	sim.DriveWord([]netlist.NodeID(en), 1)
	sim.Step()
	if got := sim.ReadWord([]netlist.NodeID(r.Q)); got != 0xB {
		t.Fatalf("enabled reg = %d, want 0xB", got)
	}
}

func TestRegInitValue(t *testing.T) {
	b := NewBuilder()
	r := b.Reg("r", 8, 0xA5)
	r.SetNext(r.Q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	if got := sim.ReadWord([]netlist.NodeID(r.Q)); got != 0xA5 {
		t.Fatalf("init = %#x", got)
	}
	sim.Step()
	if got := sim.ReadWord([]netlist.NodeID(r.Q)); got != 0xA5 {
		t.Fatalf("hold = %#x", got)
	}
}

func TestBuildRejectsUnsetReg(t *testing.T) {
	b := NewBuilder()
	b.Reg("orphan", 2, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted register without next-state")
	}
}

func TestSetNextTwiceErrors(t *testing.T) {
	b := NewBuilder()
	r := b.Reg("r", 1, 0)
	r.SetNext(r.Q)
	r.SetNext(r.Q)
	if b.Err() == nil {
		t.Fatal("second SetNext not recorded as error")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted double SetNext")
	}
}

func TestWidthMismatchErrors(t *testing.T) {
	cases := []func(b *Builder, x, y Signal){
		func(b *Builder, x, y Signal) { b.And(x, y) },
		func(b *Builder, x, y Signal) { b.Add(x, y) },
		func(b *Builder, x, y Signal) { b.Mux(x, y, y) }, // sel not 1 bit
		func(b *Builder, x, y Signal) { b.Reg("r", 4, 0).SetNext(y) },
		func(b *Builder, x, y Signal) { b.ZeroExtend(y, 4) },
		func(b *Builder, x, y Signal) { b.Repeat(x, 8) }, // source not 1 bit
		func(b *Builder, x, y Signal) { b.Eq(x, y) },
		func(b *Builder, x, y Signal) { b.Ltu(x, y) },
		func(b *Builder, x, y Signal) { b.SelectOneHot(x, []Signal{y, y}) },
	}
	for i, fn := range cases {
		b := NewBuilder()
		x := b.Input("x", 4)
		y := b.Input("y", 5)
		fn(b, x, y) // must not panic
		if b.Err() == nil {
			t.Errorf("case %d: misuse not recorded", i)
			continue
		}
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: Build accepted misused builder", i)
		}
	}
}

func TestMisuseReturnsPlaceholder(t *testing.T) {
	// A failed operation must still return a structurally valid signal
	// so downstream wiring does not panic; only Build reports.
	b := NewBuilder()
	x := b.Input("x", 4)
	y := b.Input("y", 5)
	s := b.And(x, y)
	if s.Width() != 4 {
		t.Fatalf("placeholder width %d, want 4", s.Width())
	}
	b.Output("o", b.Or(s, s)) // keep wiring after the failure
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted failed construction")
	}
}

func TestSignalSlicing(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 8)
	hi := x.Bits(7, 4)
	lo := x.Bits(3, 0)
	re := Concat(lo, hi)
	b.Output("out", re)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	sim.DriveWord([]netlist.NodeID(x), 0xA7)
	sim.Eval()
	if got := sim.ReadWord([]netlist.NodeID(re)); got != 0xA7 {
		t.Fatalf("reassembled = %#x", got)
	}
	if x.Bit(3).Width() != 1 || hi.Width() != 4 {
		t.Fatal("widths wrong")
	}
}

func TestZeroExtendAndRepeat(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 3)
	s := b.Input("s", 1)
	ze := b.ZeroExtend(x, 6)
	rp := b.Repeat(s, 4)
	b.Output("ze", ze)
	b.Output("rp", rp)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	sim.DriveWord([]netlist.NodeID(x), 5)
	sim.DriveWord([]netlist.NodeID(s), 1)
	sim.Eval()
	if got := sim.ReadWord([]netlist.NodeID(ze)); got != 5 {
		t.Fatalf("ZeroExtend = %d", got)
	}
	if got := sim.ReadWord([]netlist.NodeID(rp)); got != 0xF {
		t.Fatalf("Repeat = %#x", got)
	}
}

func TestRegGroupsNaming(t *testing.T) {
	b := NewBuilder()
	r := b.Reg("cfg_base", 4, 0)
	r.SetNext(r.Q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	groups := b.RegGroups()
	bits, ok := groups["cfg_base"]
	if !ok || len(bits) != 4 {
		t.Fatalf("RegGroups = %v", groups)
	}
	for i, id := range bits {
		if nl.Node(id).Type != netlist.DFF {
			t.Fatalf("bit %d is not a DFF", i)
		}
	}
	if id, ok := nl.FindNode("cfg_base[2]"); !ok || id != bits[2] {
		t.Fatal("per-bit naming broken")
	}
}

func TestIncWraps(t *testing.T) {
	eval := combHarness(t, 4, func(b *Builder, x, y Signal) Signal { return b.Inc(x) })
	for a := uint64(0); a < 16; a++ {
		if got := eval(a, 0); got != (a+1)%16 {
			t.Fatalf("Inc(%d) = %d", a, got)
		}
	}
}

func TestConstWidthAndValue(t *testing.T) {
	b := NewBuilder()
	c := b.Const(0x2D, 8)
	b.Output("c", c)
	// Tie a dummy reg so Build passes with no inputs.
	r := b.Reg("r", 1, 0)
	r.SetNext(r.Q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := logicsim.New(nl)
	sim.Eval()
	if got := sim.ReadWord([]netlist.NodeID(c)); got != 0x2D {
		t.Fatalf("const = %#x", got)
	}
}

func TestAdd16MatchesUint(t *testing.T) {
	eval := combHarness(t, 16, func(b *Builder, x, y Signal) Signal { return b.Add(x, y) })
	f := func(a, c uint16) bool { return eval(uint64(a), uint64(c)) == uint64(a+c) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSub16AndCompare16(t *testing.T) {
	evalSub := combHarness(t, 16, func(b *Builder, x, y Signal) Signal { return b.Sub(x, y) })
	evalLt := combHarness(t, 16, func(b *Builder, x, y Signal) Signal { return b.Ltu(x, y) })
	f := func(a, c uint16) bool {
		if evalSub(uint64(a), uint64(c)) != uint64(a-c) {
			return false
		}
		want := uint64(0)
		if a < c {
			want = 1
		}
		return evalLt(uint64(a), uint64(c)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderWidth4(t *testing.T) {
	eval := combHarness(t, 4, func(b *Builder, x, y Signal) Signal { return b.Decoder(x) })
	for a := uint64(0); a < 16; a++ {
		if got := eval(a, 0); got != 1<<a {
			t.Fatalf("decode4(%d) = %#x", a, got)
		}
	}
}

func TestDecoderTooWideErrors(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 17)
	b.Decoder(x) // must not panic
	if b.Err() == nil {
		t.Fatal("oversized Decoder not recorded as error")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted oversized Decoder")
	}
}

func TestBufPreservesValue(t *testing.T) {
	eval := combHarness(t, 8, func(b *Builder, x, y Signal) Signal { return b.Buf(x) })
	for a := uint64(0); a < 256; a += 37 {
		if eval(a, 0) != a {
			t.Fatalf("Buf(%#x) altered the value", a)
		}
	}
}
