package hdl

import (
	"repro/internal/netlist"
)

// Short aliases keep the adder construction readable.
const (
	cellAnd  = netlist.And
	cellOr   = netlist.Or
	cellXor  = netlist.Xor
	cellXnor = netlist.Xnor
)

// Arithmetic and comparison operators. All arithmetic is unsigned and
// elaborates to ripple-carry structures; logic depth is not a concern at
// the design sizes the framework targets and ripple adders keep the gate
// count (and therefore the fault-injection surface) realistic for a
// small embedded MPU datapath.

// halfAdder returns (sum, carry).
func (b *Builder) halfAdder(x, y Signal) (Signal, Signal) {
	s := b.n.AddGate(cellXor, x[0], y[0])
	c := b.n.AddGate(cellAnd, x[0], y[0])
	return Signal{s}, Signal{c}
}

// fullAdder returns (sum, carry).
func (b *Builder) fullAdder(x, y, cin Signal) (Signal, Signal) {
	axy := b.n.AddGate(cellXor, x[0], y[0])
	s := b.n.AddGate(cellXor, axy, cin[0])
	c1 := b.n.AddGate(cellAnd, x[0], y[0])
	c2 := b.n.AddGate(cellAnd, axy, cin[0])
	c := b.n.AddGate(cellOr, c1, c2)
	return Signal{s}, Signal{c}
}

// AddC returns x + y + cin and the carry-out. cin must be 1 bit.
func (b *Builder) AddC(x, y Signal, cin Signal) (sum Signal, cout Signal) {
	w, ok := b.checkSameWidth("ADD", x, y)
	if cin.Width() != 1 {
		b.fail("AddC carry-in must be 1 bit, got %d", cin.Width())
		ok = false
	}
	if !ok {
		return b.placeholder(w), b.placeholder(1)
	}
	sum = make(Signal, w)
	c := cin
	for i := 0; i < w; i++ {
		var s Signal
		s, c = b.fullAdder(x.Bit(i), y.Bit(i), c)
		sum[i] = s[0]
	}
	return sum, c
}

// Add returns x + y, truncated to the operand width.
func (b *Builder) Add(x, y Signal) Signal {
	s, _ := b.AddC(x, y, b.Const(0, 1))
	return s
}

// Sub returns x - y (two's complement), truncated to the operand width.
func (b *Builder) Sub(x, y Signal) Signal {
	s, _ := b.AddC(x, b.Not(y), b.Const(1, 1))
	return s
}

// Inc returns x + 1.
func (b *Builder) Inc(x Signal) Signal {
	return b.Add(x, b.Const(1, x.Width()))
}

// Eq returns a 1-bit signal: 1 iff x == y.
func (b *Builder) Eq(x, y Signal) Signal {
	xn := b.bitwise(cellXnor, x, y)
	return b.AndAll(xn)
}

// Ne returns a 1-bit signal: 1 iff x != y.
func (b *Builder) Ne(x, y Signal) Signal {
	xo := b.bitwise(cellXor, x, y)
	return b.OrAll(xo)
}

// Ltu returns a 1-bit signal: 1 iff x < y, unsigned. Implemented as the
// inverted carry-out of x + ~y + 1.
func (b *Builder) Ltu(x, y Signal) Signal {
	_, cout := b.AddC(x, b.Not(y), b.Const(1, 1))
	return b.Not(cout)
}

// Leu returns a 1-bit signal: 1 iff x <= y, unsigned.
func (b *Builder) Leu(x, y Signal) Signal {
	return b.Not(b.Ltu(y, x))
}

// Geu returns a 1-bit signal: 1 iff x >= y, unsigned.
func (b *Builder) Geu(x, y Signal) Signal {
	return b.Not(b.Ltu(x, y))
}

// Gtu returns a 1-bit signal: 1 iff x > y, unsigned.
func (b *Builder) Gtu(x, y Signal) Signal { return b.Ltu(y, x) }

// Decoder returns the one-hot decode of sel: output width is 2^sel.Width()
// and bit i is 1 iff sel == i.
func (b *Builder) Decoder(sel Signal) Signal {
	w := sel.Width()
	if w > 16 {
		b.fail("Decoder width %d too large (max 16)", w)
		return b.placeholder(1)
	}
	out := make(Signal, 1<<uint(w))
	inv := b.Not(sel)
	for i := range out {
		terms := make(Signal, w)
		for j := 0; j < w; j++ {
			if i>>uint(j)&1 == 1 {
				terms[j] = sel[j]
			} else {
				terms[j] = inv[j]
			}
		}
		out[i] = b.AndAll(terms)[0]
	}
	return out
}

// SelectOneHot returns OR over i of (onehot[i] AND choices[i]): a one-hot
// multiplexer. All choices must share a width; onehot width must equal
// the number of choices.
func (b *Builder) SelectOneHot(onehot Signal, choices []Signal) Signal {
	if len(choices) == 0 {
		b.fail("SelectOneHot with no choices")
		return b.placeholder(1)
	}
	if onehot.Width() != len(choices) {
		b.fail("SelectOneHot %d selects, %d choices", onehot.Width(), len(choices))
		return b.placeholder(choices[0].Width())
	}
	w, ok := b.checkSameWidth("SELECT", choices...)
	if !ok {
		return b.placeholder(w)
	}
	masked := make([]Signal, len(choices))
	for i, c := range choices {
		sel := make(Signal, w)
		for j := 0; j < w; j++ {
			sel[j] = onehot[i]
		}
		masked[i] = b.And(c, sel)
	}
	if len(masked) == 1 {
		return masked[0]
	}
	return b.Or(masked...)
}

// ZeroExtend widens x to the given width by appending constant zeros.
func (b *Builder) ZeroExtend(x Signal, width int) Signal {
	if x.Width() > width {
		b.fail("ZeroExtend to narrower width %d < %d", width, x.Width())
		return b.placeholder(width)
	}
	out := append(Signal(nil), x...)
	for len(out) < width {
		out = append(out, b.constZero())
	}
	return out
}

// Repeat returns a signal of the given width with every bit driven by
// the single-bit x.
func (b *Builder) Repeat(x Signal, width int) Signal {
	if x.Width() != 1 {
		b.fail("Repeat source must be 1 bit, got %d", x.Width())
		return b.placeholder(width)
	}
	out := make(Signal, width)
	for i := range out {
		out[i] = x[0]
	}
	return out
}
