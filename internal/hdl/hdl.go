// Package hdl is a small hardware-construction DSL: it lets Go code
// describe multi-bit registers and combinational logic, and elaborates
// the description into a flat gate-level netlist (internal/netlist).
//
// The MPU of the synthetic SoC (internal/soc) is described with this
// package, which gives the framework a design with a consistent
// register-level and gate-level view — the property the paper's
// cross-level simulation relies on.
package hdl

import (
	"fmt"

	"repro/internal/netlist"
)

// Signal is a bundle of single-bit nets, least-significant bit first.
type Signal []netlist.NodeID

// Width returns the number of bits in the signal.
func (s Signal) Width() int { return len(s) }

// Bit returns the i-th bit (LSB = 0) as a 1-bit signal.
func (s Signal) Bit(i int) Signal { return Signal{s[i]} }

// Bits returns bits [lo, hi] inclusive as a new signal.
func (s Signal) Bits(hi, lo int) Signal {
	if lo < 0 || hi >= len(s) || lo > hi {
		panic(fmt.Sprintf("hdl: Bits(%d, %d) out of range for width %d", hi, lo, len(s)))
	}
	out := make(Signal, hi-lo+1)
	copy(out, s[lo:hi+1])
	return out
}

// Concat concatenates signals LSB-first: Concat(lo, hi) places lo in the
// low bits.
func Concat(parts ...Signal) Signal {
	var out Signal
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Reg is a multi-bit register under construction. Q is readable
// immediately; the next-state function is attached with SetNext (exactly
// once) before Build.
type Reg struct {
	Name string
	Q    Signal
	b    *Builder
	set  bool
}

// Builder incrementally constructs a netlist.
//
// Misuse (width mismatches, malformed selects, out-of-range operators)
// does not panic: the builder records the first such error, the failed
// operation returns a structurally valid placeholder signal so wiring
// code can continue without per-call error checks, and Build (or Err)
// reports the recorded error. Only Signal-level slicing (Bits) keeps
// Go slice semantics and panics on out-of-range indices.
type Builder struct {
	n       *netlist.Netlist
	zero    netlist.NodeID
	one     netlist.NodeID
	hasZero bool
	hasOne  bool
	regs    []*Reg
	groups  map[string][]netlist.NodeID
	err     error
}

// fail records the first construction error. Later operations keep
// running on placeholder signals; Build surfaces the error.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("hdl: "+format, args...)
	}
}

// Err returns the first construction error recorded so far, or nil.
func (b *Builder) Err() error { return b.err }

// placeholder returns a structurally valid signal of the given width,
// tied to constant 0 — the result of a failed operation.
func (b *Builder) placeholder(width int) Signal {
	if width < 1 {
		width = 1
	}
	s := make(Signal, width)
	for i := range s {
		s[i] = b.constZero()
	}
	return s
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		n:      netlist.New(256),
		groups: make(map[string][]netlist.NodeID),
	}
}

// Netlist exposes the netlist under construction. Most callers should
// use Build, which validates first.
func (b *Builder) Netlist() *netlist.Netlist { return b.n }

// Input declares a named multi-bit primary input. Bit i is named
// "name[i]".
func (b *Builder) Input(name string, width int) Signal {
	s := make(Signal, width)
	for i := range s {
		s[i] = b.n.AddInput(fmt.Sprintf("%s[%d]", name, i))
	}
	return s
}

// Const returns a constant signal of the given width holding value
// (low width bits).
func (b *Builder) Const(value uint64, width int) Signal {
	s := make(Signal, width)
	for i := range s {
		if value>>uint(i)&1 == 1 {
			s[i] = b.constOne()
		} else {
			s[i] = b.constZero()
		}
	}
	return s
}

func (b *Builder) constZero() netlist.NodeID {
	if !b.hasZero {
		b.zero = b.n.AddConst(false)
		b.hasZero = true
	}
	return b.zero
}

func (b *Builder) constOne() netlist.NodeID {
	if !b.hasOne {
		b.one = b.n.AddConst(true)
		b.hasOne = true
	}
	return b.one
}

// Reg declares a named register of the given width with power-on value
// init. Bit i of the register's DFF is named "name[i]". The next-state
// input must be attached with SetNext before Build.
func (b *Builder) Reg(name string, width int, init uint64) *Reg {
	r := &Reg{Name: name, b: b}
	r.Q = make(Signal, width)
	bits := make([]netlist.NodeID, width)
	for i := 0; i < width; i++ {
		// The D input is patched by SetNext; use a placeholder tie
		// cell so the node is structurally valid in the interim.
		d := b.constZero()
		id := b.n.AddDFF(d, fmt.Sprintf("%s[%d]", name, i), init>>uint(i)&1 == 1)
		r.Q[i] = id
		bits[i] = id
	}
	b.groups[name] = bits
	b.regs = append(b.regs, r)
	return r
}

// SetNext attaches the register's next-state function. Width must
// match; violations are recorded on the builder and reported by Build.
func (r *Reg) SetNext(d Signal) {
	if r.set {
		r.b.fail("register %q next-state set twice", r.Name)
		return
	}
	if d.Width() != r.Q.Width() {
		r.b.fail("register %q width %d, next-state width %d", r.Name, r.Q.Width(), d.Width())
		return
	}
	for i, q := range r.Q {
		r.b.n.Node(q).Fanin[0] = d[i]
	}
	r.set = true
}

// SetNextEn attaches a load-enable next-state: the register keeps its
// value unless en (1 bit) is high, in which case it loads d. The DFFs
// are marked clock-gated by en, which the timed fault simulator uses:
// transients on the recirculation path rarely latch while the enable is
// low.
func (r *Reg) SetNextEn(en Signal, d Signal) {
	if en.Width() != 1 {
		r.b.fail("register %q enable must be 1 bit, got %d", r.Name, en.Width())
		return
	}
	r.SetNext(r.b.Mux(en, r.Q, d))
	for _, q := range r.Q {
		r.b.n.SetDFFEnable(q, en[0])
	}
}

// Output declares a named primary output. Bit i is exported as
// "name[i]".
func (b *Builder) Output(name string, s Signal) {
	for i, id := range s {
		b.n.AddOutput(fmt.Sprintf("%s[%d]", name, i), id)
	}
}

// RegGroups returns the map from register name to the DFF node ids of
// its bits (LSB first). The caller must not mutate the slices.
func (b *Builder) RegGroups() map[string][]netlist.NodeID { return b.groups }

// Build finalizes the design: reports any construction error recorded
// by earlier operations, verifies that every register has a next-state
// function, and validates the netlist structurally.
func (b *Builder) Build() (*netlist.Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, r := range b.regs {
		if !r.set {
			return nil, fmt.Errorf("hdl: register %q has no next-state function", r.Name)
		}
	}
	if err := b.n.Validate(); err != nil {
		return nil, err
	}
	return b.n, nil
}

// --- Bitwise operators -------------------------------------------------

// checkSameWidth verifies that every operand shares one width. On a
// mismatch it records the error and reports ok=false; the caller must
// return a placeholder instead of indexing the operands.
func (b *Builder) checkSameWidth(op string, xs ...Signal) (w int, ok bool) {
	w = xs[0].Width()
	for _, x := range xs[1:] {
		if x.Width() != w {
			b.fail("%s width mismatch: %d vs %d", op, w, x.Width())
			return w, false
		}
	}
	return w, true
}

func (b *Builder) bitwise(t netlist.CellType, xs ...Signal) Signal {
	w, ok := b.checkSameWidth(t.String(), xs...)
	if !ok {
		return b.placeholder(w)
	}
	out := make(Signal, w)
	fi := make([]netlist.NodeID, len(xs))
	for i := 0; i < w; i++ {
		for j, x := range xs {
			fi[j] = x[i]
		}
		out[i] = b.n.AddGate(t, fi...)
	}
	return out
}

// Buf inserts a buffer on every bit (isolation/repeater cells; relevant
// as fault-injection surface in the timed simulator).
func (b *Builder) Buf(x Signal) Signal {
	out := make(Signal, x.Width())
	for i, id := range x {
		out[i] = b.n.AddGate(netlist.Buf, id)
	}
	return out
}

// Not inverts every bit.
func (b *Builder) Not(x Signal) Signal {
	out := make(Signal, x.Width())
	for i, id := range x {
		out[i] = b.n.AddGate(netlist.Inv, id)
	}
	return out
}

// And returns the bitwise AND of two or more equal-width signals.
func (b *Builder) And(xs ...Signal) Signal { return b.bitwise(netlist.And, xs...) }

// Or returns the bitwise OR of two or more equal-width signals.
func (b *Builder) Or(xs ...Signal) Signal { return b.bitwise(netlist.Or, xs...) }

// Xor returns the bitwise XOR of two or more equal-width signals.
func (b *Builder) Xor(xs ...Signal) Signal { return b.bitwise(netlist.Xor, xs...) }

// Nand returns the bitwise NAND of two or more equal-width signals.
func (b *Builder) Nand(xs ...Signal) Signal { return b.bitwise(netlist.Nand, xs...) }

// Nor returns the bitwise NOR of two or more equal-width signals.
func (b *Builder) Nor(xs ...Signal) Signal { return b.bitwise(netlist.Nor, xs...) }

// Mux returns a per-bit 2:1 multiplexer: sel == 0 selects a, sel == 1
// selects b. sel must be 1 bit wide; a and b must have equal width.
func (b *Builder) Mux(sel Signal, a, b2 Signal) Signal {
	if sel.Width() != 1 {
		b.fail("Mux select must be 1 bit, got %d", sel.Width())
		return b.placeholder(a.Width())
	}
	w, ok := b.checkSameWidth("MUX2", a, b2)
	if !ok {
		return b.placeholder(w)
	}
	out := make(Signal, w)
	for i := 0; i < w; i++ {
		out[i] = b.n.AddGate(netlist.Mux2, a[i], b2[i], sel[0])
	}
	return out
}

// --- Reductions ---------------------------------------------------------

func (b *Builder) reduce(t netlist.CellType, x Signal) Signal {
	if x.Width() == 0 {
		b.fail("reduction of empty signal")
		return b.placeholder(1)
	}
	if x.Width() == 1 {
		return Signal{x[0]}
	}
	// Balanced tree keeps logic depth logarithmic.
	cur := append(Signal(nil), x...)
	for len(cur) > 1 {
		var next Signal
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.n.AddGate(t, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur
}

// AndAll reduces the signal to a single bit that is 1 iff every bit is 1.
func (b *Builder) AndAll(x Signal) Signal { return b.reduce(netlist.And, x) }

// OrAll reduces the signal to a single bit that is 1 iff any bit is 1.
func (b *Builder) OrAll(x Signal) Signal { return b.reduce(netlist.Or, x) }

// XorAll reduces the signal to its parity bit.
func (b *Builder) XorAll(x Signal) Signal { return b.reduce(netlist.Xor, x) }
