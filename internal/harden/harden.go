// Package harden implements the paper's countermeasure study: identify
// the small set of registers that carries almost all of the System
// Security Factor, replace them with soft-error-resilient cell designs
// (references [19, 20] of the paper: ~10x better resilience at ~3x cell
// area), and quantify the SSF reduction against the area overhead.
package harden

import (
	"context"
	"fmt"

	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/sampling"
)

// Plan is a hardening decision: which registers get resilient cells and
// what the cells cost/buy.
type Plan struct {
	// Regs are the registers to harden.
	Regs []netlist.NodeID
	// Resilience is the upset-rate improvement factor F of the
	// resilient cell: an error that would latch survives with
	// probability 1/F.
	Resilience float64
	// AreaFactor is the hardened cell's area relative to the plain
	// DFF.
	AreaFactor float64
}

// DefaultCellParams returns the published figures the paper uses: 10x
// resilience at 3x cell area.
func DefaultCellParams() (resilience, areaFactor float64) { return 10, 3 }

// FromCritical selects the top-ranked registers covering the given
// share of the success mass (e.g. 0.95).
func FromCritical(ranked []montecarlo.CriticalRegister, share float64) []netlist.NodeID {
	n := montecarlo.CoverageCount(ranked, share)
	regs := make([]netlist.NodeID, 0, n)
	for _, cr := range ranked[:n] {
		regs = append(regs, cr.Reg)
	}
	return regs
}

// AreaOverhead returns the fractional area increase of the whole
// netlist when the plan's registers are replaced by hardened cells.
func (p Plan) AreaOverhead(nl *netlist.Netlist) float64 {
	m := netlist.DefaultAreaModel()
	total := m.TotalArea(nl)
	if total == 0 {
		return 0
	}
	extra := (p.AreaFactor - 1) * m.RegArea(nl, p.Regs)
	return extra / total
}

// Apply installs the plan on an engine and returns a function restoring
// the previous hardening map.
func (p Plan) Apply(e *montecarlo.Engine) (restore func()) {
	prev := e.Hardened
	hardened := make(map[netlist.NodeID]float64, len(p.Regs))
	for k, v := range prev {
		hardened[k] = v
	}
	for _, r := range p.Regs {
		hardened[r] = p.Resilience
	}
	e.Hardened = hardened
	return func() { e.Hardened = prev }
}

// Result summarizes a hardening evaluation.
type Result struct {
	// BaseSSF and HardenedSSF are the estimates before/after.
	BaseSSF, HardenedSSF float64
	// Improvement is BaseSSF / HardenedSSF (capped readably when the
	// hardened campaign observes no successes).
	Improvement float64
	// HardenedNoSuccess reports that the hardened campaign saw zero
	// successes, making Improvement a lower bound.
	HardenedNoSuccess bool
	// AreaOverhead is the fractional area increase.
	AreaOverhead float64
	// NumRegs is the number of hardened registers; RegFraction its
	// share of all registers.
	NumRegs     int
	RegFraction float64
}

// Evaluate runs the same campaign with and without the plan and
// reports the security improvement and area cost.
func Evaluate(ctx context.Context, e *montecarlo.Engine, sampler sampling.Sampler, opts montecarlo.CampaignOptions, p Plan) (Result, error) {
	nl := e.SoC.MPU.Netlist
	if len(p.Regs) == 0 {
		return Result{}, fmt.Errorf("harden: empty plan")
	}
	base, err := e.RunCampaign(ctx, sampler, opts)
	if err != nil {
		return Result{}, err
	}
	restore := p.Apply(e)
	defer restore()
	hard, err := e.RunCampaign(ctx, sampler, opts)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		BaseSSF:      base.SSF(),
		HardenedSSF:  hard.SSF(),
		AreaOverhead: p.AreaOverhead(nl),
		NumRegs:      len(p.Regs),
		RegFraction:  float64(len(p.Regs)) / float64(len(nl.Regs())),
	}
	switch {
	case res.HardenedSSF > 0:
		res.Improvement = res.BaseSSF / res.HardenedSSF
	case res.BaseSSF > 0:
		// No hardened successes observed: report the resolution-
		// limited lower bound (one success at the smallest weight
		// the campaign could have produced).
		res.HardenedNoSuccess = true
		res.Improvement = res.BaseSSF * float64(opts.Samples)
	default:
		res.Improvement = 1
	}
	return res, nil
}
