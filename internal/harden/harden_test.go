package harden

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
)

var (
	evOnce sync.Once
	ev     *core.Evaluation
	evErr  error
)

func evaluation(t *testing.T) *core.Evaluation {
	t.Helper()
	evOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.Precharac.MaxDepth = 51
		opts.Precharac.Probes = 1
		opts.Precharac.LifetimeCap = 120
		fw, err := core.Build(opts)
		if err != nil {
			evErr = err
			return
		}
		ev, evErr = fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	})
	if evErr != nil {
		t.Fatal(evErr)
	}
	return ev
}

func TestFromCritical(t *testing.T) {
	ranked := []montecarlo.CriticalRegister{
		{Reg: 10, Share: 0.7}, {Reg: 11, Share: 0.2}, {Reg: 12, Share: 0.1},
	}
	regs := FromCritical(ranked, 0.85)
	if len(regs) != 2 || regs[0] != 10 || regs[1] != 11 {
		t.Fatalf("FromCritical = %v", regs)
	}
	if len(FromCritical(ranked, 1.0)) != 3 {
		t.Error("full coverage")
	}
}

func TestAreaOverhead(t *testing.T) {
	nl := netlist.New(16)
	in := nl.AddInput("in")
	g := nl.AddGate(netlist.Inv, in)
	r1 := nl.AddDFF(g, "r1", false)
	nl.AddDFF(g, "r2", false)
	m := netlist.DefaultAreaModel()
	total := m.TotalArea(nl)
	p := Plan{Regs: []netlist.NodeID{r1}, Resilience: 10, AreaFactor: 3}
	want := 2 * m.PerCell[netlist.DFF] / total
	if got := p.AreaOverhead(nl); math.Abs(got-want) > 1e-12 {
		t.Errorf("overhead %v, want %v", got, want)
	}
	// Hardening nothing costs nothing.
	if (Plan{Resilience: 10, AreaFactor: 3}).AreaOverhead(nl) != 0 {
		t.Error("empty plan should cost nothing")
	}
}

func TestApplyRestores(t *testing.T) {
	e := evaluation(t).Engine
	p := Plan{Regs: e.SoC.MPU.Groups["cfg_perm1"], Resilience: 10, AreaFactor: 3}
	if len(e.Hardened) != 0 {
		t.Fatal("engine already hardened")
	}
	restore := p.Apply(e)
	if len(e.Hardened) != len(p.Regs) {
		t.Fatalf("hardened map size %d", len(e.Hardened))
	}
	if e.Hardened[p.Regs[0]] != 10 {
		t.Error("resilience not installed")
	}
	restore()
	if len(e.Hardened) != 0 {
		t.Error("restore did not revert")
	}
}

func TestEvaluateImprovesSecurity(t *testing.T) {
	e := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 8000, Seed: 5, Mode: montecarlo.RegisterAttack}
	// Identify critical registers first.
	camp, err := e.Engine.RunCampaign(context.Background(), e.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Successes == 0 {
		t.Fatal("no successes to harden against")
	}
	ranked := camp.CriticalRegisters()
	resil, area := DefaultCellParams()
	plan := Plan{Regs: FromCritical(ranked, 0.95), Resilience: resil, AreaFactor: area}
	res, err := Evaluate(context.Background(), e.Engine, e.RandomSampler(), opts, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseSSF <= 0 {
		t.Fatal("base SSF zero")
	}
	if !res.HardenedNoSuccess && res.HardenedSSF >= res.BaseSSF {
		t.Errorf("hardening did not improve: %v -> %v", res.BaseSSF, res.HardenedSSF)
	}
	if res.Improvement < 2 {
		t.Errorf("improvement %.2fx, expected multi-x", res.Improvement)
	}
	if res.AreaOverhead <= 0 || res.AreaOverhead > 0.2 {
		t.Errorf("area overhead %v implausible", res.AreaOverhead)
	}
	if res.NumRegs != len(plan.Regs) || res.RegFraction <= 0 {
		t.Error("bookkeeping wrong")
	}
	// The engine must be left unhardened.
	if len(e.Engine.Hardened) != 0 {
		t.Error("Evaluate leaked hardening state")
	}
}

func TestEvaluateEmptyPlan(t *testing.T) {
	e := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 10, Seed: 1}
	if _, err := Evaluate(context.Background(), e.Engine, e.RandomSampler(), opts, Plan{Resilience: 10, AreaFactor: 3}); err == nil {
		t.Error("empty plan accepted")
	}
}
