package stats

import (
	"fmt"
	"math"
)

// Z95 is the two-sided 95% normal quantile used for CI half-widths.
const Z95 = 1.959963984540054

// Stratified accumulates a post-stratified estimator over K strata with
// known stratum probabilities pi_k: each stratum holds a Welford
// accumulator over its *conditional* weighted terms (the likelihood
// ratio within the stratum times the indicator), plus a raw hit count.
// The estimate is sum_k pi_k * mean_k and its variance is
// sum_k pi_k^2 * var_k / n_k — allocation (how many draws land in each
// stratum) affects only the variance, never the unbiasedness.
//
// Per-stratum state is kept independent so that two campaigns run over
// disjoint stratum subsets merge bit-identically to one sequential run:
// Merge folds stratum k of the other accumulator into stratum k here,
// and every derived quantity folds over strata in index order.
type Stratified struct {
	probs  []float64
	strata []Welford
	hits   []int
}

// NewStratified builds an accumulator over len(probs) strata. The
// probabilities must be non-negative and sum to 1 within 1e-9.
func NewStratified(probs []float64) (*Stratified, error) {
	if len(probs) == 0 {
		return nil, fmt.Errorf("stats: no strata")
	}
	total := 0.0
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("stats: stratum %d probability is %v", i, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		return nil, fmt.Errorf("stats: stratum probabilities sum to %v, want 1", total)
	}
	return &Stratified{
		probs:  append([]float64(nil), probs...),
		strata: make([]Welford, len(probs)),
		hits:   make([]int, len(probs)),
	}, nil
}

// K returns the number of strata.
func (s *Stratified) K() int { return len(s.probs) }

// Prob returns the stratum probability pi_k.
func (s *Stratified) Prob(k int) float64 { return s.probs[k] }

// Add incorporates one draw from stratum k: x is the indicator (or
// outcome) and w the conditional likelihood-ratio weight within the
// stratum. hit marks a raw success, tallied independently of weights.
func (s *Stratified) Add(k int, x, w float64, hit bool) {
	s.strata[k].Add(x * w)
	if hit {
		s.hits[k]++
	}
}

// N returns the total number of draws across all strata.
func (s *Stratified) N() int {
	n := 0
	for i := range s.strata {
		n += s.strata[i].N()
	}
	return n
}

// StratumN returns the number of draws in stratum k.
func (s *Stratified) StratumN(k int) int { return s.strata[k].N() }

// StratumMean returns the running conditional mean of stratum k.
func (s *Stratified) StratumMean(k int) float64 { return s.strata[k].Mean() }

// StratumVariance returns the sample variance of stratum k's weighted
// terms (0 for fewer than two draws).
func (s *Stratified) StratumVariance(k int) float64 { return s.strata[k].Variance() }

// StratumStdDev returns the sample standard deviation of stratum k.
func (s *Stratified) StratumStdDev(k int) float64 { return s.strata[k].StdDev() }

// Hits returns the raw success count of stratum k.
func (s *Stratified) Hits(k int) int { return s.hits[k] }

// TotalHits returns the raw success count across all strata.
func (s *Stratified) TotalHits() int {
	n := 0
	for _, h := range s.hits {
		n += h
	}
	return n
}

// Estimate returns the stratified estimate sum_k pi_k * mean_k, folded
// in stratum index order so merged and sequential campaigns agree
// bit-for-bit. Strata with no draws contribute pi_k * 0; under the
// framework's cone assumption those are exactly the strata whose
// conditional mean is known to be zero.
func (s *Stratified) Estimate() float64 {
	e := 0.0
	for k := range s.strata {
		e += s.probs[k] * s.strata[k].Mean()
	}
	return e
}

// EstVariance returns the variance of the stratified estimator,
// sum_k pi_k^2 * var_k / n_k, folded in stratum index order. Strata
// with fewer than two draws contribute zero (their variance is
// unknown); callers gate stopping decisions on a minimum sample count
// so this early underestimate cannot stop a campaign prematurely.
func (s *Stratified) EstVariance() float64 {
	v := 0.0
	for k := range s.strata {
		n := s.strata[k].N()
		if n < 2 {
			continue
		}
		v += s.probs[k] * s.probs[k] * s.strata[k].Variance() / float64(n)
	}
	return v
}

// StdErr returns the standard error of the stratified estimate.
func (s *Stratified) StdErr() float64 { return math.Sqrt(s.EstVariance()) }

// CIHalfWidth returns the 95% confidence-interval half-width.
func (s *Stratified) CIHalfWidth() float64 { return Z95 * s.StdErr() }

// LLNBound returns the Chebyshev bound on an eps-deviation of the
// stratified estimator, the stratified analogue of Welford.LLNBound:
// Pr[|est - SSF| >= eps] <= Var[est] / eps^2, clamped to 1.
func (s *Stratified) LLNBound(eps float64) float64 {
	if eps <= 0 || s.N() == 0 {
		return 1
	}
	b := s.EstVariance() / (eps * eps)
	if b > 1 {
		return 1
	}
	return b
}

// Merge folds another accumulator into this one stratum by stratum.
// The stratum layouts must match exactly.
func (s *Stratified) Merge(o *Stratified) error {
	if o == nil {
		return nil
	}
	if len(o.probs) != len(s.probs) {
		return fmt.Errorf("stats: merging %d strata into %d", len(o.probs), len(s.probs))
	}
	for k := range s.probs {
		if s.probs[k] != o.probs[k] {
			return fmt.Errorf("stats: stratum %d probability mismatch: %v vs %v", k, s.probs[k], o.probs[k])
		}
	}
	for k := range s.strata {
		s.strata[k].Merge(o.strata[k])
		s.hits[k] += o.hits[k]
	}
	return nil
}

// Clone returns a deep copy.
func (s *Stratified) Clone() *Stratified {
	if s == nil {
		return nil
	}
	return &Stratified{
		probs:  append([]float64(nil), s.probs...),
		strata: append([]Welford(nil), s.strata...),
		hits:   append([]int(nil), s.hits...),
	}
}

// StratifiedState is the exported snapshot of a Stratified accumulator.
// Like WelfordState, the fields are the exact internal state, so a
// State/FromStratifiedState round trip — including through
// encoding/json — reproduces the accumulator bit-identically.
type StratifiedState struct {
	Probs  []float64      `json:"probs"`
	Strata []WelfordState `json:"strata"`
	Hits   []int          `json:"hits"`
}

// State snapshots the accumulator.
func (s *Stratified) State() StratifiedState {
	st := StratifiedState{
		Probs:  append([]float64(nil), s.probs...),
		Strata: make([]WelfordState, len(s.strata)),
		Hits:   append([]int(nil), s.hits...),
	}
	for k := range s.strata {
		st.Strata[k] = s.strata[k].State()
	}
	return st
}

// FromStratifiedState reconstructs an accumulator from a snapshot.
func FromStratifiedState(st StratifiedState) (*Stratified, error) {
	if len(st.Strata) != len(st.Probs) || len(st.Hits) != len(st.Probs) {
		return nil, fmt.Errorf("stats: stratified state shape mismatch: %d probs, %d strata, %d hits",
			len(st.Probs), len(st.Strata), len(st.Hits))
	}
	s, err := NewStratified(st.Probs)
	if err != nil {
		return nil, err
	}
	for k := range st.Strata {
		s.strata[k] = FromWelfordState(st.Strata[k])
		s.hits[k] = st.Hits[k]
	}
	return s, nil
}

// WeightMoments accumulates the first two moments of the
// likelihood-ratio weights, enough to report Kish's effective sample
// size ESS = (sum w)^2 / sum w^2. Sums (not means) are kept so Merge is
// exact integer-like addition and order-independent.
type WeightMoments struct {
	n     int
	sumW  float64
	sumW2 float64
}

// Add incorporates one weight.
func (m *WeightMoments) Add(w float64) {
	m.n++
	m.sumW += w
	m.sumW2 += w * w
}

// N returns the number of weights observed.
func (m *WeightMoments) N() int { return m.n }

// ESS returns Kish's effective sample size (0 when empty). Equal
// weights give ESS == N; weight skew pushes it toward 1.
func (m *WeightMoments) ESS() float64 {
	if m.sumW2 == 0 {
		return 0
	}
	return m.sumW * m.sumW / m.sumW2
}

// Merge folds another accumulator into this one. Plain sum-of-sums, so
// the result is independent of merge order only up to float rounding;
// campaign merges fold in shard index order to stay deterministic.
func (m *WeightMoments) Merge(o WeightMoments) {
	m.n += o.n
	m.sumW += o.sumW
	m.sumW2 += o.sumW2
}

// WeightMomentsState is the exact serialized form of WeightMoments.
type WeightMomentsState struct {
	N     int     `json:"n"`
	SumW  float64 `json:"sum_w"`
	SumW2 float64 `json:"sum_w2"`
}

// State snapshots the accumulator.
func (m *WeightMoments) State() WeightMomentsState {
	return WeightMomentsState{N: m.n, SumW: m.sumW, SumW2: m.sumW2}
}

// FromWeightMomentsState reconstructs an accumulator from a snapshot.
func FromWeightMomentsState(s WeightMomentsState) WeightMoments {
	return WeightMoments{n: s.N, sumW: s.SumW, sumW2: s.SumW2}
}

// BivariateMoments accumulates streaming means, variances, and the
// covariance of paired observations (y, c) — the weighted outcome and
// the weighted control variate — using the pairwise-update form of
// Welford's algorithm (Chan et al.), so Merge matches the Welford
// accumulators used elsewhere.
//
// With mu = E[c] known exactly, the control-variate estimate is
// mean_y - beta * (mean_c - mu) with beta = cov(y,c)/var(c) estimated
// from the same sample; the induced bias is O(1/n) and vanishes
// relative to the O(1/sqrt(n)) noise (documented in EXPERIMENTS.md).
type BivariateMoments struct {
	n     int
	meanY float64
	meanC float64
	m2Y   float64
	m2C   float64
	m11   float64
}

// Add incorporates one paired observation.
func (b *BivariateMoments) Add(y, c float64) {
	b.n++
	n := float64(b.n)
	dy := y - b.meanY
	dc := c - b.meanC
	b.meanY += dy / n
	b.meanC += dc / n
	b.m2Y += dy * (y - b.meanY)
	b.m2C += dc * (c - b.meanC)
	b.m11 += dy * (c - b.meanC)
}

// N returns the number of paired observations.
func (b *BivariateMoments) N() int { return b.n }

// MeanY returns the running mean of the outcome terms.
func (b *BivariateMoments) MeanY() float64 { return b.meanY }

// MeanC returns the running mean of the control terms.
func (b *BivariateMoments) MeanC() float64 { return b.meanC }

// VarY returns the unbiased sample variance of the outcome terms.
func (b *BivariateMoments) VarY() float64 {
	if b.n < 2 {
		return 0
	}
	return b.m2Y / float64(b.n-1)
}

// VarC returns the unbiased sample variance of the control terms.
func (b *BivariateMoments) VarC() float64 {
	if b.n < 2 {
		return 0
	}
	return b.m2C / float64(b.n-1)
}

// Cov returns the unbiased sample covariance of the pairs.
func (b *BivariateMoments) Cov() float64 {
	if b.n < 2 {
		return 0
	}
	return b.m11 / float64(b.n-1)
}

// Beta returns the estimated optimal control-variate coefficient
// cov(y,c)/var(c), or 0 when the control has no observed variance
// (which reduces the adjusted estimate to the plain mean).
func (b *BivariateMoments) Beta() float64 {
	if b.m2C == 0 {
		return 0
	}
	return b.m11 / b.m2C
}

// Adjusted returns the control-variate-adjusted estimate given the
// exact control mean mu: mean_y - beta * (mean_c - mu).
func (b *BivariateMoments) Adjusted(mu float64) float64 {
	return b.meanY - b.Beta()*(b.meanC-mu)
}

// AdjustedVariance returns the per-sample variance of the adjusted
// estimator, var(y) * (1 - rho^2) computed stably as
// (m2Y - m11^2/m2C) / (n-1). It can only be smaller than VarY.
func (b *BivariateMoments) AdjustedVariance() float64 {
	if b.n < 2 {
		return 0
	}
	m2 := b.m2Y
	if b.m2C > 0 {
		m2 -= b.m11 * b.m11 / b.m2C
	}
	if m2 < 0 {
		m2 = 0
	}
	return m2 / float64(b.n-1)
}

// AdjustedStdErr returns the standard error of the adjusted estimate.
func (b *BivariateMoments) AdjustedStdErr() float64 {
	if b.n == 0 {
		return 0
	}
	return math.Sqrt(b.AdjustedVariance() / float64(b.n))
}

// Merge folds another accumulator into this one (pairwise update).
func (b *BivariateMoments) Merge(o BivariateMoments) {
	if o.n == 0 {
		return
	}
	if b.n == 0 {
		*b = o
		return
	}
	n1, n2 := float64(b.n), float64(o.n)
	total := n1 + n2
	dy := o.meanY - b.meanY
	dc := o.meanC - b.meanC
	b.m2Y += o.m2Y + dy*dy*n1*n2/total
	b.m2C += o.m2C + dc*dc*n1*n2/total
	b.m11 += o.m11 + dy*dc*n1*n2/total
	b.meanY += dy * n2 / total
	b.meanC += dc * n2 / total
	b.n += o.n
}

// BivariateState is the exact serialized form of BivariateMoments.
type BivariateState struct {
	N     int     `json:"n"`
	MeanY float64 `json:"mean_y"`
	MeanC float64 `json:"mean_c"`
	M2Y   float64 `json:"m2_y"`
	M2C   float64 `json:"m2_c"`
	M11   float64 `json:"m11"`
}

// State snapshots the accumulator.
func (b *BivariateMoments) State() BivariateState {
	return BivariateState{N: b.n, MeanY: b.meanY, MeanC: b.meanC, M2Y: b.m2Y, M2C: b.m2C, M11: b.m11}
}

// FromBivariateState reconstructs an accumulator from a snapshot.
func FromBivariateState(s BivariateState) BivariateMoments {
	return BivariateMoments{n: s.N, meanY: s.MeanY, meanC: s.MeanC, m2Y: s.M2Y, m2C: s.M2C, m11: s.M11}
}
