package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Errorf("variance %v vs %v", w.Variance(), variance)
	}
	if w.N() != 500 {
		t.Errorf("N = %d", w.N())
	}
	wantSE := math.Sqrt(variance / 500)
	if math.Abs(w.StdErr()-wantSE) > 1e-12 {
		t.Errorf("stderr %v vs %v", w.StdErr(), wantSE)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should be zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Error("single observation")
	}
}

func TestWelfordIndicatorVariance(t *testing.T) {
	// For a Bernoulli(p) indicator the sample variance approaches
	// p(1-p); this is exactly the SSF estimator's variance under
	// random sampling.
	var w Welford
	n, succ := 10000, 0
	rng := rand.New(rand.NewSource(2))
	p := 0.03
	for i := 0; i < n; i++ {
		x := 0.0
		if rng.Float64() < p {
			x = 1.0
			succ++
		}
		w.Add(x)
	}
	phat := float64(succ) / float64(n)
	want := phat * (1 - phat) * float64(n) / float64(n-1)
	if math.Abs(w.Variance()-want) > 1e-9 {
		t.Errorf("variance %v, want %v", w.Variance(), want)
	}
}

func TestLLNBound(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 2))
	}
	b := w.LLNBound(0.1)
	want := w.Variance() / (100 * 0.01)
	if math.Abs(b-want) > 1e-12 {
		t.Errorf("bound %v, want %v", b, want)
	}
	if w.LLNBound(0) != 1 {
		t.Error("eps=0 should clamp to 1")
	}
	var empty Welford
	if empty.LLNBound(0.1) != 1 {
		t.Error("empty should clamp to 1")
	}
	// More samples tighten the bound.
	var w2 Welford
	for i := 0; i < 10000; i++ {
		w2.Add(float64(i % 2))
	}
	if w2.LLNBound(0.1) >= b {
		t.Error("bound should tighten with N")
	}
}

func TestSamplesForRisk(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 2))
	}
	n := w.SamplesForRisk(0.01, 0.05)
	want := int(math.Ceil(w.Variance() / (0.05 * 0.0001)))
	if n != want {
		t.Errorf("SamplesForRisk = %d, want %d", n, want)
	}
	if w.SamplesForRisk(0, 0.05) != math.MaxInt32 {
		t.Error("eps=0 should saturate")
	}
}

func TestWeightedUnbiased(t *testing.T) {
	// Estimate E_f[X] where f is uniform over {0..9} and X = 1{i < 2}
	// (true value 0.2), sampling from a biased g that favors small i.
	// The weighted estimator must still converge to 0.2.
	gw := []float64{5, 5, 1, 1, 1, 1, 1, 1, 1, 1}
	g, err := NewDiscrete(gw)
	if err != nil {
		t.Fatal(err)
	}
	f := 1.0 / 10.0
	rng := rand.New(rand.NewSource(3))
	var est Weighted
	for i := 0; i < 200000; i++ {
		idx := g.Sample(rng.Float64())
		x := 0.0
		if idx < 2 {
			x = 1.0
		}
		est.Add(x, f/g.Prob(idx))
	}
	if math.Abs(est.Estimate()-0.2) > 0.01 {
		t.Errorf("weighted estimate %v, want 0.2", est.Estimate())
	}
	if est.N() != 200000 {
		t.Error("N wrong")
	}
}

func TestWeightedVarianceReduction(t *testing.T) {
	// Rare event: X = 1{i == 0} under uniform f over 1000 outcomes.
	// Importance sampling that concentrates on i == 0 must cut the
	// sample variance by orders of magnitude — the paper's Fig 9
	// mechanism in miniature.
	n := 1000
	fProb := 1.0 / float64(n)
	gwBias := make([]float64, n)
	for i := range gwBias {
		gwBias[i] = 0.001
	}
	gwBias[0] = 1.0
	g, _ := NewDiscrete(gwBias)
	rng := rand.New(rand.NewSource(4))
	var rnd, imp Weighted
	for i := 0; i < 20000; i++ {
		// Random sampling (g = f).
		idx := rng.Intn(n)
		x := 0.0
		if idx == 0 {
			x = 1.0
		}
		rnd.Add(x, 1.0)
		// Importance sampling.
		idx = g.Sample(rng.Float64())
		x = 0.0
		if idx == 0 {
			x = 1.0
		}
		imp.Add(x, fProb/g.Prob(idx))
	}
	if math.Abs(imp.Estimate()-fProb) > fProb*0.2 {
		t.Errorf("importance estimate %v, want ~%v", imp.Estimate(), fProb)
	}
	if imp.Variance() >= rnd.Variance()/10 {
		t.Errorf("no variance reduction: imp %v vs rnd %v", imp.Variance(), rnd.Variance())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// -3 clamps into bin 0, 42 into bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 42
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if math.Abs(h.Fraction(0)-3.0/7.0) > 1e-12 {
		t.Error("fraction wrong")
	}
	if h.BinCenter(0) != 1 || h.BinCenter(4) != 9 {
		t.Error("bin centers wrong")
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extremes wrong")
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestDiscreteNormalization(t *testing.T) {
	d, err := NewDiscrete([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Prob(0)-0.25) > 1e-12 || math.Abs(d.Prob(1)-0.75) > 1e-12 {
		t.Errorf("probs = %v %v", d.Prob(0), d.Prob(1))
	}
	if d.Len() != 2 {
		t.Error("Len wrong")
	}
}

func TestDiscreteRejectsDegenerate(t *testing.T) {
	if _, err := NewDiscrete([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewDiscrete([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewDiscrete([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestDiscreteSampleFrequencies(t *testing.T) {
	d, _ := NewDiscrete([]float64{1, 0, 2, 7})
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng.Float64())]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bin sampled %d times", counts[1])
	}
	for i, want := range []float64{0.1, 0, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("bin %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestDiscreteSampleBounds(t *testing.T) {
	f := func(u float64) bool {
		u = math.Abs(u)
		u -= math.Floor(u) // wrap into [0,1)
		d, _ := NewDiscrete([]float64{1, 2, 3})
		i := d.Sample(u)
		return i >= 0 && i < 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
}

func TestHistogramNaN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(3)
	h.Add(math.NaN())
	h.Add(math.NaN())
	if h.NaNs != 2 {
		t.Errorf("NaNs = %d", h.NaNs)
	}
	if h.Total() != 1 {
		t.Errorf("Total = %d, NaN observations must not be binned", h.Total())
	}
	if h.Counts[0] != 0 {
		t.Errorf("bin 0 polluted by NaN: %d", h.Counts[0])
	}
	// Infinities are finite-comparable and still clamp like before.
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	if h.Counts[4] != 1 || h.Counts[0] != 1 || h.Total() != 3 {
		t.Errorf("infinity clamping broken: %v total %d", h.Counts, h.Total())
	}
}

func TestDiscreteSampleBoundarySemantics(t *testing.T) {
	// Bins own half-open intervals [cum[i-1], cum[i]): a variate equal
	// to an interior cumulative boundary belongs to the NEXT bin.
	d, err := NewDiscrete([]float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		u    float64
		want int
	}{
		{0, 0},
		{0.2499, 0},
		{0.25, 1}, // exact boundary: bin 1, not bin 0
		{0.4999, 1},
		{0.5, 2}, // exact boundary: bin 2, not bin 1
		{0.9999, 2},
	} {
		if got := d.Sample(tc.u); got != tc.want {
			t.Errorf("Sample(%v) = %d, want %d", tc.u, got, tc.want)
		}
	}
	// Zero-probability bins are never selected, even at their shared
	// boundary value.
	z, err := NewDiscrete([]float64{0, 1, 0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := z.Sample(0); got != 1 {
		t.Errorf("Sample(0) = %d, want first bin with mass", got)
	}
	if got := z.Sample(1.0 / 3); got != 3 {
		t.Errorf("Sample(cum boundary aliased by zero bin) = %d, want 3", got)
	}
}

func TestDiscreteSampleBoundaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		weights := make([]float64, n)
		nonzero := false
		for i := range weights {
			if rng.Float64() < 0.4 { // plenty of zero-probability bins
				continue
			}
			weights[i] = rng.Float64()
			nonzero = nonzero || weights[i] > 0
		}
		if !nonzero {
			weights[rng.Intn(n)] = 1
		}
		d, err := NewDiscrete(weights)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct the cumulative table from the public Prob view,
		// with the same tail rule the distribution documents: the last
		// bin with mass owns everything up to 1, absorbing rounding
		// slack in the running sum.
		cum := make([]float64, n)
		run := 0.0
		for i := 0; i < n; i++ {
			run += d.Prob(i)
			cum[i] = run
		}
		for i := n - 1; i >= 0; i-- {
			cum[i] = 1
			if d.Prob(i) > 0 {
				break
			}
		}
		check := func(u float64) {
			i := d.Sample(u)
			if d.Prob(i) == 0 {
				t.Fatalf("weights %v: Sample(%v) hit zero-probability bin %d", weights, u, i)
			}
			lo := 0.0
			if i > 0 {
				lo = cum[i-1]
			}
			if u < lo || u >= cum[i] {
				t.Fatalf("weights %v: Sample(%v) = %d outside its half-open bin [%v, %v)",
					weights, u, i, lo, cum[i])
			}
		}
		// Every interior cumulative boundary is a half-open edge; also
		// probe random interior variates and 0 itself.
		check(0)
		for i := 0; i < n-1; i++ {
			if cum[i] < 1 {
				check(cum[i])
			}
		}
		for k := 0; k < 20; k++ {
			check(rng.Float64())
		}
	}
}
