package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var all, a, b Welford
	for i := 0; i < 700; i++ {
		x := rng.NormFloat64()*2 + 1
		all.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("variance %v vs %v", a.Variance(), all.Variance())
	}
}

func TestWelfordMergeEdges(t *testing.T) {
	var a, b Welford
	a.Merge(b) // empty + empty
	if a.N() != 0 {
		t.Fatal("empty merge")
	}
	b.Add(5)
	b.Add(7)
	a.Merge(b) // empty + filled
	if a.N() != 2 || a.Mean() != 6 {
		t.Fatalf("merge into empty: %v", a.Mean())
	}
	var c Welford
	a.Merge(c) // filled + empty
	if a.N() != 2 || a.Mean() != 6 {
		t.Fatal("merge of empty changed state")
	}
}

func TestWeightedMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var all, a, b Weighted
	for i := 0; i < 500; i++ {
		x := 0.0
		if rng.Float64() < 0.1 {
			x = 1
		}
		w := 0.5 + rng.Float64()
		all.Add(x, w)
		if i < 200 {
			a.Add(x, w)
		} else {
			b.Add(x, w)
		}
	}
	a.Merge(b)
	if math.Abs(a.Estimate()-all.Estimate()) > 1e-12 {
		t.Errorf("estimate %v vs %v", a.Estimate(), all.Estimate())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("variance %v vs %v", a.Variance(), all.Variance())
	}
	if a.LLNBound(0.01) != all.LLNBound(0.01) {
		t.Error("LLN bound differs after merge")
	}
}
