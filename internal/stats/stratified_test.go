package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestStratifiedValidation(t *testing.T) {
	if _, err := NewStratified(nil); err == nil {
		t.Error("empty strata accepted")
	}
	if _, err := NewStratified([]float64{0.5, 0.6}); err == nil {
		t.Error("probabilities summing to 1.1 accepted")
	}
	if _, err := NewStratified([]float64{1.5, -0.5}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewStratified([]float64{0.25, 0.25, 0.5}); err != nil {
		t.Errorf("valid strata rejected: %v", err)
	}
}

func TestStratifiedEstimateMatchesDirect(t *testing.T) {
	probs := []float64{0.2, 0.3, 0.5}
	s, err := NewStratified(probs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	means := []float64{0.9, 0.1, 0.0}
	perStratum := make([][]float64, len(probs))
	for i := 0; i < 3000; i++ {
		k := rng.Intn(len(probs))
		x := 0.0
		if rng.Float64() < means[k] {
			x = 1
		}
		w := 0.5 + rng.Float64()
		s.Add(k, x, w, x > 0)
		perStratum[k] = append(perStratum[k], x*w)
	}
	want := 0.0
	wantVar := 0.0
	for k, xs := range perStratum {
		m := Mean(xs)
		want += probs[k] * m
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		v := ss / float64(len(xs)-1)
		wantVar += probs[k] * probs[k] * v / float64(len(xs))
	}
	if got := s.Estimate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("estimate %v, want %v", got, want)
	}
	if got := s.EstVariance(); math.Abs(got-wantVar) > 1e-12*wantVar {
		t.Errorf("variance %v, want %v", got, wantVar)
	}
	if s.N() != 3000 {
		t.Errorf("N = %d", s.N())
	}
	if s.StdErr() != math.Sqrt(s.EstVariance()) {
		t.Error("StdErr inconsistent with EstVariance")
	}
	if hw := s.CIHalfWidth(); math.Abs(hw-Z95*s.StdErr()) > 0 {
		t.Errorf("CIHalfWidth %v", hw)
	}
}

// Disjoint-strata merge must be bit-identical to one sequential pass:
// per-stratum accumulators never interleave across strata, and every
// derived fold runs in stratum index order.
func TestStratifiedDisjointMergeBitIdentical(t *testing.T) {
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	seq, _ := NewStratified(probs)
	a, _ := NewStratified(probs)
	b, _ := NewStratified(probs)
	rng := rand.New(rand.NewSource(3))
	type obs struct {
		k int
		x float64
		w float64
	}
	var all []obs
	for i := 0; i < 2000; i++ {
		o := obs{k: rng.Intn(4), w: rng.Float64() + 0.1}
		if rng.Float64() < 0.05 {
			o.x = 1
		}
		all = append(all, o)
	}
	for _, o := range all {
		seq.Add(o.k, o.x, o.w, o.x > 0)
		if o.k < 2 {
			a.Add(o.k, o.x, o.w, o.x > 0)
		} else {
			b.Add(o.k, o.x, o.w, o.x > 0)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != seq.Estimate() {
		t.Errorf("merged estimate %v != sequential %v", a.Estimate(), seq.Estimate())
	}
	if a.EstVariance() != seq.EstVariance() {
		t.Errorf("merged variance %v != sequential %v", a.EstVariance(), seq.EstVariance())
	}
	for k := range probs {
		if a.StratumMean(k) != seq.StratumMean(k) || a.StratumN(k) != seq.StratumN(k) || a.Hits(k) != seq.Hits(k) {
			t.Errorf("stratum %d state diverged", k)
		}
	}
}

func TestStratifiedMergeMismatch(t *testing.T) {
	a, _ := NewStratified([]float64{0.5, 0.5})
	b, _ := NewStratified([]float64{0.25, 0.25, 0.5})
	if err := a.Merge(b); err == nil {
		t.Error("merging mismatched strata counts succeeded")
	}
	c, _ := NewStratified([]float64{0.4, 0.6})
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched probabilities succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestStratifiedStateRoundTrip(t *testing.T) {
	s, _ := NewStratified([]float64{0.125, 0.375, 0.5})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		s.Add(rng.Intn(3), float64(rng.Intn(2)), rng.Float64()+0.3, rng.Intn(7) == 0)
	}
	raw, err := json.Marshal(s.State())
	if err != nil {
		t.Fatal(err)
	}
	var st StratifiedState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	got, err := FromStratifiedState(st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() || got.EstVariance() != s.EstVariance() {
		t.Error("round trip changed the estimator")
	}
	for k := 0; k < 3; k++ {
		if got.StratumMean(k) != s.StratumMean(k) || got.Hits(k) != s.Hits(k) {
			t.Errorf("stratum %d diverged after round trip", k)
		}
	}
	st.Hits = st.Hits[:2]
	if _, err := FromStratifiedState(st); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestStratifiedClone(t *testing.T) {
	s, _ := NewStratified([]float64{0.5, 0.5})
	s.Add(0, 1, 2, true)
	c := s.Clone()
	c.Add(1, 1, 1, true)
	if s.N() != 1 || c.N() != 2 {
		t.Error("clone shares state")
	}
	var nilS *Stratified
	if nilS.Clone() != nil {
		t.Error("nil clone not nil")
	}
}

func TestWeightMomentsESS(t *testing.T) {
	var m WeightMoments
	if m.ESS() != 0 {
		t.Error("empty ESS not 0")
	}
	for i := 0; i < 100; i++ {
		m.Add(2.5)
	}
	if math.Abs(m.ESS()-100) > 1e-9 {
		t.Errorf("equal-weight ESS %v, want 100", m.ESS())
	}
	var skew WeightMoments
	skew.Add(1000)
	for i := 0; i < 99; i++ {
		skew.Add(1e-6)
	}
	if skew.ESS() > 1.01 {
		t.Errorf("skewed ESS %v, want ~1", skew.ESS())
	}
	var a, b WeightMoments
	for i := 0; i < 50; i++ {
		a.Add(float64(i) + 1)
		b.Add(float64(i) + 51)
	}
	merged := a
	merged.Merge(b)
	var seq WeightMoments
	for i := 0; i < 100; i++ {
		seq.Add(float64(i) + 1)
	}
	if merged.State() != seq.State() {
		t.Error("sum-of-sums merge not exact")
	}
	raw, _ := json.Marshal(merged.State())
	var st WeightMomentsState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if got := FromWeightMomentsState(st); got.State() != merged.State() {
		t.Error("state round trip diverged")
	}
}

func TestBivariateMomentsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var b BivariateMoments
	var ys, cs []float64
	for i := 0; i < 1000; i++ {
		c := rng.NormFloat64()
		y := 0.7*c + 0.2*rng.NormFloat64() + 3
		b.Add(y, c)
		ys = append(ys, y)
		cs = append(cs, c)
	}
	my, mc := Mean(ys), Mean(cs)
	var sy, sc, sxy float64
	for i := range ys {
		sy += (ys[i] - my) * (ys[i] - my)
		sc += (cs[i] - mc) * (cs[i] - mc)
		sxy += (ys[i] - my) * (cs[i] - mc)
	}
	n1 := float64(len(ys) - 1)
	if math.Abs(b.VarY()-sy/n1) > 1e-9 || math.Abs(b.VarC()-sc/n1) > 1e-9 || math.Abs(b.Cov()-sxy/n1) > 1e-9 {
		t.Errorf("moments diverge: %v %v %v vs %v %v %v", b.VarY(), b.VarC(), b.Cov(), sy/n1, sc/n1, sxy/n1)
	}
	beta := sxy / sc
	if math.Abs(b.Beta()-beta) > 1e-9 {
		t.Errorf("beta %v, want %v", b.Beta(), beta)
	}
	// The control has mean 0; the adjusted estimate must land nearer
	// the true mean 3 than the raw mean, and the adjusted variance must
	// shrink by about 1-rho^2.
	if math.Abs(b.Adjusted(0)-3) > math.Abs(b.MeanY()-3)+1e-12 {
		t.Errorf("adjustment did not help: %v vs %v", b.Adjusted(0), b.MeanY())
	}
	if b.AdjustedVariance() >= b.VarY() {
		t.Errorf("adjusted variance %v not below raw %v", b.AdjustedVariance(), b.VarY())
	}
	if b.AdjustedStdErr() <= 0 {
		t.Error("adjusted stderr not positive")
	}
}

func TestBivariateMomentsMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var seq, a, b BivariateMoments
	for i := 0; i < 600; i++ {
		y, c := rng.Float64(), rng.Float64()
		seq.Add(y, c)
		if i < 250 {
			a.Add(y, c)
		} else {
			b.Add(y, c)
		}
	}
	a.Merge(b)
	if math.Abs(a.MeanY()-seq.MeanY()) > 1e-12 || math.Abs(a.Cov()-seq.Cov()) > 1e-12 ||
		math.Abs(a.VarY()-seq.VarY()) > 1e-12 || math.Abs(a.VarC()-seq.VarC()) > 1e-12 {
		t.Error("merge diverges from sequential")
	}
	var empty BivariateMoments
	empty.Merge(seq)
	if empty.State() != seq.State() {
		t.Error("merge into empty not exact")
	}
	raw, _ := json.Marshal(seq.State())
	var st BivariateState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if got := FromBivariateState(st); got.State() != seq.State() {
		t.Error("state round trip diverged")
	}
}

func TestBivariateDegenerateControl(t *testing.T) {
	var b BivariateMoments
	for i := 0; i < 10; i++ {
		b.Add(float64(i), 1) // constant control
	}
	if b.Beta() != 0 {
		t.Errorf("beta with zero-variance control = %v", b.Beta())
	}
	if b.Adjusted(1) != b.MeanY() {
		t.Error("degenerate adjustment changed the mean")
	}
	if b.AdjustedVariance() != b.VarY() {
		t.Error("degenerate adjusted variance changed")
	}
}

func TestStratifiedLLNBound(t *testing.T) {
	s, _ := NewStratified([]float64{1})
	if s.LLNBound(0.1) != 1 {
		t.Error("empty bound not 1")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		s.Add(0, float64(rng.Intn(2)), 1, false)
	}
	if b := s.LLNBound(0.05); b <= 0 || b >= 1 {
		t.Errorf("bound %v out of range", b)
	}
	if s.LLNBound(0) != 1 {
		t.Error("eps=0 bound not clamped")
	}
	want := s.EstVariance() / (0.05 * 0.05)
	if got := s.LLNBound(0.05); math.Abs(got-want) > 1e-15 {
		t.Errorf("bound %v, want %v", got, want)
	}
}
