// Package stats holds the small statistical toolkit the Monte Carlo
// framework relies on: streaming mean/variance (Welford), weighted
// estimators for importance sampling, histograms, and the weak
// law-of-large-numbers convergence bound the paper quotes.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a streaming mean and (unbiased) sample variance.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// LLNBound returns the weak-LLN (Chebyshev) bound the paper quotes:
// Pr[|mean_N - E| >= eps] <= sigma^2 / (N * eps^2), evaluated with the
// current sample variance. Values above 1 are clamped to 1.
func (w *Welford) LLNBound(eps float64) float64 {
	if w.n == 0 || eps <= 0 {
		return 1
	}
	b := w.Variance() / (float64(w.n) * eps * eps)
	if b > 1 {
		return 1
	}
	return b
}

// SamplesForRisk returns the number of samples the LLN bound requires to
// push the risk of an eps-deviation below delta, given the current
// variance estimate.
func (w *Welford) SamplesForRisk(eps, delta float64) int {
	if eps <= 0 || delta <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(w.Variance() / (delta * eps * eps)))
}

// WelfordState is the exported snapshot of a Welford accumulator, used
// to serialize estimators (e.g. campaign checkpoints). The fields are
// the exact internal state, so a State/FromWelfordState round trip —
// including a trip through encoding/json, which emits the shortest
// representation that parses back to the same float64 — reproduces the
// accumulator bit-identically.
type WelfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State snapshots the accumulator.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2}
}

// FromWelfordState reconstructs an accumulator from a snapshot.
func FromWelfordState(s WelfordState) Welford {
	return Welford{n: s.N, mean: s.Mean, m2: s.M2}
}

// Merge folds another accumulator into this one, as if every
// observation of o had been Added here (Chan et al. parallel variance).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	d := o.mean - w.mean
	total := n1 + n2
	w.m2 += o.m2 + d*d*n1*n2/total
	w.mean += d * n2 / total
	w.n += o.n
}

// Weighted accumulates an importance-sampling estimator: each
// observation x_i carries a likelihood ratio weight w_i = f(x_i)/g(x_i),
// and the estimate is (1/N) * sum(w_i * x_i). Mean and variance are those
// of the weighted terms, which is what governs convergence.
type Weighted struct {
	inner Welford
}

// Add incorporates an observation with its likelihood-ratio weight.
func (e *Weighted) Add(x, weight float64) { e.inner.Add(x * weight) }

// N returns the number of observations.
func (e *Weighted) N() int { return e.inner.N() }

// Estimate returns the current importance-sampling estimate.
func (e *Weighted) Estimate() float64 { return e.inner.Mean() }

// Variance returns the sample variance of the weighted terms.
func (e *Weighted) Variance() float64 { return e.inner.Variance() }

// StdErr returns the standard error of the estimate.
func (e *Weighted) StdErr() float64 { return e.inner.StdErr() }

// LLNBound exposes the Chebyshev convergence bound of the weighted
// estimator (the paper's Section 3.3 criterion).
func (e *Weighted) LLNBound(eps float64) float64 { return e.inner.LLNBound(eps) }

// Merge folds another weighted estimator into this one.
func (e *Weighted) Merge(o Weighted) { e.inner.Merge(o.inner) }

// State snapshots the estimator for serialization; see WelfordState for
// the exactness guarantee.
func (e *Weighted) State() WelfordState { return e.inner.State() }

// FromWeightedState reconstructs an estimator from a snapshot.
func FromWeightedState(s WelfordState) Weighted {
	return Weighted{inner: FromWelfordState(s)}
}

// Histogram counts observations in fixed-width bins over [min, max);
// finite values outside the range are clamped into the first/last bin
// so the binned total always matches the number of finite observations.
// NaN observations carry no position at all (int(NaN) is an
// implementation-defined conversion in Go) and are counted separately
// in NaNs instead of polluting bin 0.
type Histogram struct {
	Min, Max float64
	Counts   []int
	// NaNs counts NaN observations, which are excluded from the bins
	// and from Total.
	NaNs  int
	total int
}

// NewHistogram creates a histogram with the given number of bins.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic(fmt.Sprintf("stats: bad histogram [%v, %v) x%d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records an observation. NaN is counted in NaNs, not in any bin.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.NaNs++
		return
	}
	// Clamp in the float domain: converting an out-of-range float
	// (±Inf or huge finite values) to int is implementation-defined in
	// Go and must never reach the conversion.
	pos := (x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts))
	bin := 0
	switch {
	case pos >= float64(len(h.Counts)):
		bin = len(h.Counts) - 1
	case pos > 0:
		bin = int(pos)
	}
	h.Counts[bin]++
	h.total++
}

// Total returns the number of binned observations (NaNs excluded).
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations in the given bin.
func (h *Histogram) Fraction(bin int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[bin]) / float64(h.total)
}

// BinCenter returns the center value of a bin.
func (h *Histogram) BinCenter(bin int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(bin)+0.5)*w
}

// Quantile returns the q-quantile (0 <= q <= 1) of the given sample,
// using linear interpolation. The input slice is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean of the sample (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Discrete is a normalized discrete distribution over indices 0..n-1
// supporting O(log n) sampling via the cumulative table. It backs both
// g_T (timing distance) and g_{P|T} (center gate) sampling.
type Discrete struct {
	probs []float64
	cum   []float64
}

// NewDiscrete builds a distribution from non-negative weights; they are
// normalized internally. It returns an error when every weight is zero.
func NewDiscrete(weights []float64) (*Discrete, error) {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: weight %d is %v", i, w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: all %d weights are zero", len(weights))
	}
	d := &Discrete{
		probs: make([]float64, len(weights)),
		cum:   make([]float64, len(weights)),
	}
	run := 0.0
	for i, w := range weights {
		d.probs[i] = w / total
		run += d.probs[i]
		d.cum[i] = run
	}
	// Guard against rounding: the last bin with mass must reach
	// exactly 1, and every trailing zero-probability bin must share
	// that value — otherwise rounding slack (cum < 1 at the last mass
	// bin) would make a trailing empty bin the first to exceed a
	// variate near 1.
	for i := len(d.cum) - 1; i >= 0; i-- {
		d.cum[i] = 1
		if d.probs[i] > 0 {
			break
		}
	}
	return d, nil
}

// Prob returns the probability mass at index i.
func (d *Discrete) Prob(i int) float64 { return d.probs[i] }

// Len returns the support size.
func (d *Discrete) Len() int { return len(d.probs) }

// Sample draws an index using the caller-supplied uniform variate
// u in [0, 1). Bin i owns the half-open interval [cum[i-1], cum[i]),
// so a variate exactly equal to an interior cumulative value belongs
// to the next bin with mass, never to bin i itself.
func (d *Discrete) Sample(u float64) int {
	// The first index with cum > u is the owner of [cum[i-1], cum[i]).
	// It necessarily has nonzero mass: a zero-probability bin shares
	// its cumulative value with its predecessor, so it can never be
	// the *first* index to exceed u.
	// Open-coded binary search: Sample runs once per draw, and the
	// sort.Search closure indirection is measurable there. Identical
	// result (first index with cum > u).
	cum := d.cum
	lo, hi := 0, len(cum)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	if i >= len(d.cum) {
		// Defensive: only reachable for u >= 1, outside the contract.
		i = len(d.cum) - 1
		for i > 0 && d.probs[i] == 0 {
			i--
		}
	}
	return i
}
