package timingsim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/netlist"
)

// buildRandomDesign returns a random layered netlist exercising every
// cell type, multi-fanin gates, clock-gated registers, and a second
// combinational stage fed by register outputs.
func buildRandomDesign(rng *rand.Rand) *netlist.Netlist {
	nl := netlist.New(512)
	var pool []netlist.NodeID
	for i := 0; i < 12; i++ {
		pool = append(pool, nl.AddInput("in"))
	}
	pool = append(pool, nl.AddConst(false), nl.AddConst(true))
	gateTypes := []netlist.CellType{
		netlist.Buf, netlist.Inv, netlist.And, netlist.Nand,
		netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Mux2,
	}
	pick := func() netlist.NodeID { return pool[rng.Intn(len(pool))] }
	addGates := func(count int) {
		for i := 0; i < count; i++ {
			t := gateTypes[rng.Intn(len(gateTypes))]
			var id netlist.NodeID
			switch t {
			case netlist.Buf, netlist.Inv:
				id = nl.AddGate(t, pick())
			case netlist.Mux2:
				id = nl.AddGate(t, pick(), pick(), pick())
			default:
				n := 2 + rng.Intn(9) // up to 10 fanins to hit the spill path
				fi := make([]netlist.NodeID, n)
				for j := range fi {
					fi[j] = pick()
				}
				id = nl.AddGate(t, fi...)
			}
			pool = append(pool, id)
		}
	}
	addGates(260)
	var regs []netlist.NodeID
	for i := 0; i < 40; i++ {
		r := nl.AddDFF(pick(), "", rng.Intn(2) == 0)
		if rng.Intn(3) == 0 {
			nl.SetDFFEnable(r, pick())
		}
		regs = append(regs, r)
		pool = append(pool, r)
	}
	addGates(80)
	for i := 0; i < 10; i++ {
		nl.AddDFF(pick(), "", false)
	}
	if err := nl.Validate(); err != nil {
		panic(err)
	}
	return nl
}

func randomValues(rng *rand.Rand, n int) func(netlist.NodeID) bool {
	vals := make([]bool, n)
	for i := range vals {
		vals[i] = rng.Intn(2) == 0
	}
	return func(id netlist.NodeID) bool { return vals[id] }
}

func randomStrike(rng *rand.Rand, dm DelayModel, numNodes int) Strike {
	st := Strike{
		Time:  rng.Float64() * dm.ClockPeriod * 1.3,
		Width: rng.Float64() * dm.MinPulse * 12,
	}
	for n := 1 + rng.Intn(5); n > 0; n-- {
		// Any node id: non-combinational picks must be skipped
		// identically by both sweeps.
		st.Gates = append(st.Gates, netlist.NodeID(rng.Intn(numNodes)))
	}
	if rng.Intn(2) == 0 {
		st.Widths = make([]float64, len(st.Gates))
		for i := range st.Widths {
			st.Widths[i] = rng.Float64() * dm.MinPulse * 12
		}
	}
	return st
}

func resultsEqual(a, b Result) bool {
	if a.ActiveGates != b.ActiveGates || a.ReachedRegs != b.ReachedRegs ||
		len(a.FlippedRegs) != len(b.FlippedRegs) {
		return false
	}
	for i := range a.FlippedRegs {
		if a.FlippedRegs[i] != b.FlippedRegs[i] {
			return false
		}
	}
	return true
}

func wavesEqual(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSparseMatchesReferenceSweep drives ~1k random strikes through the
// sparse fault-cone sweep and the dense full-order reference sweep and
// requires bit-identical results — including the waveform of every
// node, not just the latched registers.
func TestSparseMatchesReferenceSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dm := DefaultDelayModel()
	for design := 0; design < 4; design++ {
		nl := buildRandomDesign(rng)
		sparse, err := New(nl, dm)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := New(nl, dm)
		if err != nil {
			t.Fatal(err)
		}
		dense.SetReferenceSweep(true)
		for trial := 0; trial < 300; trial++ {
			values := randomValues(rng, nl.NumNodes())
			st := randomStrike(rng, dm, nl.NumNodes())
			rs := sparse.Inject(values, st)
			rd := dense.Inject(values, st)
			if !resultsEqual(rs, rd) {
				t.Fatalf("design %d trial %d: sparse %+v != dense %+v (strike %+v)",
					design, trial, rs, rd, st)
			}
			for i := 0; i < nl.NumNodes(); i++ {
				id := netlist.NodeID(i)
				if !wavesEqual(sparse.Wave(id), dense.Wave(id)) {
					t.Fatalf("design %d trial %d: node %d wave sparse %v != dense %v",
						design, trial, i, sparse.Wave(id), dense.Wave(id))
				}
			}
		}
	}
}

// TestForkSharedConeCacheRace runs forked simulators concurrently over
// the same design with overlapping strikes, so the shared cone-schedule
// cache is built and read from multiple goroutines (run under -race),
// then checks every fork produced the same results as a fresh serial
// simulator fed the same sequence.
func TestForkSharedConeCacheRace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nl := buildRandomDesign(rng)
	dm := DefaultDelayModel()
	base, err := New(nl, dm)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const trials = 200
	type runs struct {
		flipped [][]netlist.NodeID
	}
	out := make([]runs, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sim := base
		if w > 0 {
			sim = base.Fork()
		}
		wg.Add(1)
		go func(w int, sim *Simulator) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < trials; i++ {
				values := randomValues(wrng, nl.NumNodes())
				st := randomStrike(wrng, dm, nl.NumNodes())
				res := sim.Inject(values, st)
				out[w].flipped = append(out[w].flipped,
					append([]netlist.NodeID(nil), res.FlippedRegs...))
			}
		}(w, sim)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		ref, err := New(nl, dm)
		if err != nil {
			t.Fatal(err)
		}
		wrng := rand.New(rand.NewSource(int64(100 + w)))
		for i := 0; i < trials; i++ {
			values := randomValues(wrng, nl.NumNodes())
			st := randomStrike(wrng, dm, nl.NumNodes())
			res := ref.Inject(values, st)
			if !wavesEqualIDs(res.FlippedRegs, out[w].flipped[i]) {
				t.Fatalf("worker %d trial %d: flipped %v, serial reference %v",
					w, i, out[w].flipped[i], res.FlippedRegs)
			}
		}
	}
}

func wavesEqualIDs(a, b []netlist.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTouchedResetIsComplete checks that the targeted reset leaves no
// stale waveform behind: a big strike followed by a tiny disjoint one
// must give the tiny strike's standalone result.
func TestTouchedResetIsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl := buildRandomDesign(rng)
	dm := DefaultDelayModel()
	sim, err := New(nl, dm)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(nl, dm)
	if err != nil {
		t.Fatal(err)
	}
	values := randomValues(rng, nl.NumNodes())
	big := randomStrike(rng, dm, nl.NumNodes())
	big.Width = dm.MinPulse * 40
	small := randomStrike(rng, dm, nl.NumNodes())
	sim.Inject(values, big)
	got := sim.Inject(values, small)
	want := fresh.Inject(values, small)
	if !resultsEqual(got, want) {
		t.Fatalf("stale state: after big strike got %+v, fresh sim %+v", got, want)
	}
	for i := 0; i < nl.NumNodes(); i++ {
		id := netlist.NodeID(i)
		if !wavesEqual(sim.Wave(id), fresh.Wave(id)) {
			t.Fatalf("node %d: stale wave %v, fresh %v", i, sim.Wave(id), fresh.Wave(id))
		}
	}
}
