package timingsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/netlist"
)

// constValues returns a values function reading from a map (default 0).
func constValues(m map[netlist.NodeID]bool) func(netlist.NodeID) bool {
	return func(id netlist.NodeID) bool { return m[id] }
}

func TestStrikeLatchesWhenWindowCovered(t *testing.T) {
	nl := netlist.New(8)
	a := nl.AddInput("a")
	g := nl.AddGate(netlist.Buf, a)
	r := nl.AddDFF(g, "r", false)
	dm := DefaultDelayModel()
	sim, err := New(nl, dm)
	if err != nil {
		t.Fatal(err)
	}
	// A pulse starting before the setup window and ending after the
	// hold window is latched.
	res := sim.Inject(constValues(nil), Strike{
		Gates: []netlist.NodeID{g},
		Time:  dm.ClockPeriod - dm.Setup - 30,
		Width: dm.Setup + dm.Hold + 60,
	})
	if len(res.FlippedRegs) != 1 || res.FlippedRegs[0] != r {
		t.Fatalf("FlippedRegs = %v, want [%d]", res.FlippedRegs, r)
	}
	if res.ReachedRegs != 1 || res.ActiveGates != 1 {
		t.Errorf("reach/active = %d/%d", res.ReachedRegs, res.ActiveGates)
	}
}

func TestStrikeMissesWindow(t *testing.T) {
	nl := netlist.New(8)
	a := nl.AddInput("a")
	g := nl.AddGate(netlist.Buf, a)
	nl.AddDFF(g, "r", false)
	dm := DefaultDelayModel()
	sim, _ := New(nl, dm)
	// Early pulse: temporally masked.
	res := sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{g}, Time: 0, Width: 100})
	if len(res.FlippedRegs) != 0 {
		t.Fatalf("early pulse latched: %v", res.FlippedRegs)
	}
	if res.ReachedRegs != 1 {
		t.Errorf("ReachedRegs = %d, want 1 (reached but not latched)", res.ReachedRegs)
	}
	// Pulse covering only part of the window: not latched.
	res = sim.Inject(constValues(nil), Strike{
		Gates: []netlist.NodeID{g},
		Time:  dm.ClockPeriod - dm.Setup + 5,
		Width: 100,
	})
	if len(res.FlippedRegs) != 0 {
		t.Fatalf("partial-window pulse latched: %v", res.FlippedRegs)
	}
}

func TestPropagationDelayAndAttenuation(t *testing.T) {
	nl := netlist.New(16)
	a := nl.AddInput("a")
	g1 := nl.AddGate(netlist.Buf, a)
	g2 := nl.AddGate(netlist.Buf, g1)
	nl.AddDFF(g2, "r", false)
	dm := DefaultDelayModel()
	sim, _ := New(nl, dm)
	sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{g1}, Time: 100, Width: 80})
	w := sim.Wave(g2)
	if len(w) != 1 {
		t.Fatalf("wave(g2) = %v", w)
	}
	wantStart := 100 + dm.CellDelay[netlist.Buf]
	wantEnd := wantStart + 80 - dm.Attenuation
	if math.Abs(w[0].Start-wantStart) > 1e-9 || math.Abs(w[0].End-wantEnd) > 1e-9 {
		t.Fatalf("wave(g2) = %v, want [%v, %v]", w, wantStart, wantEnd)
	}
}

func TestElectricalMaskingAbsorbsNarrowPulse(t *testing.T) {
	// A pulse just above MinPulse dies after enough gates.
	nl := netlist.New(64)
	a := nl.AddInput("a")
	cur := nl.AddGate(netlist.Buf, a)
	first := cur
	for i := 0; i < 10; i++ {
		cur = nl.AddGate(netlist.Buf, cur)
	}
	nl.AddDFF(cur, "r", false)
	dm := DefaultDelayModel()
	sim, _ := New(nl, dm)
	// Width 30: after (30-12)/6 = 3 attenuations it is below MinPulse.
	res := sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{first}, Time: 900, Width: 30})
	if res.ReachedRegs != 0 {
		t.Fatalf("narrow pulse survived the chain")
	}
	if res.ActiveGates < 2 || res.ActiveGates > 5 {
		t.Fatalf("ActiveGates = %d, want a handful", res.ActiveGates)
	}
	// A wide pulse survives all 10 stages.
	res = sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{first}, Time: 900, Width: 200})
	if res.ReachedRegs != 1 {
		t.Fatal("wide pulse did not survive")
	}
}

func TestSubMinimumStrikeIgnored(t *testing.T) {
	nl := netlist.New(8)
	a := nl.AddInput("a")
	g := nl.AddGate(netlist.Buf, a)
	nl.AddDFF(g, "r", false)
	sim, _ := New(nl, DefaultDelayModel())
	res := sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{g}, Time: 990, Width: 5})
	if res.ActiveGates != 0 || res.ReachedRegs != 0 {
		t.Fatalf("sub-minimum pulse had effect: %+v", res)
	}
}

func TestLogicalMaskingAtAND(t *testing.T) {
	nl := netlist.New(16)
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	gb := nl.AddGate(netlist.Buf, a)
	gand := nl.AddGate(netlist.And, gb, b)
	nl.AddDFF(gand, "r", false)
	sim, _ := New(nl, DefaultDelayModel())
	strike := Strike{Gates: []netlist.NodeID{gb}, Time: 900, Width: 150}
	// Side input 0: AND output stuck at 0 regardless of the pulse.
	res := sim.Inject(constValues(map[netlist.NodeID]bool{a: true, b: false}), strike)
	if res.ReachedRegs != 0 {
		t.Fatal("pulse passed a non-sensitized AND")
	}
	// Side input 1: pulse propagates.
	res = sim.Inject(constValues(map[netlist.NodeID]bool{a: true, b: true}), strike)
	if res.ReachedRegs != 1 {
		t.Fatal("pulse blocked by a sensitized AND")
	}
}

func TestReconvergentCancellationAtXOR(t *testing.T) {
	nl := netlist.New(16)
	a := nl.AddInput("a")
	g1 := nl.AddGate(netlist.Buf, a)
	g2 := nl.AddGate(netlist.Buf, a)
	gx := nl.AddGate(netlist.Xor, g1, g2)
	nl.AddDFF(gx, "r", false)
	sim, _ := New(nl, DefaultDelayModel())
	// Identical pulses on both XOR inputs cancel exactly.
	res := sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{g1, g2}, Time: 900, Width: 100})
	if len(sim.Wave(gx)) != 0 {
		t.Fatalf("XOR of identical flips should cancel, got %v", sim.Wave(gx))
	}
	if res.ReachedRegs != 0 {
		t.Fatal("cancelled pulse reached register")
	}
}

func TestPartialOverlapAtXOR(t *testing.T) {
	nl := netlist.New(16)
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g1 := nl.AddGate(netlist.Buf, a)
	g2 := nl.AddGate(netlist.Buf, b)
	gx := nl.AddGate(netlist.Xor, g1, g2)
	dm := DefaultDelayModel()
	sim, _ := New(nl, dm)
	// Two strikes cannot be expressed in one Strike with different
	// times, so strike g1 and inject g2's pulse by a second call is
	// not possible either — instead use one strike on both gates and
	// verify union semantics at an OR-like sensitized AND below; here
	// verify the sweep on overlapping but distinct widths via
	// different path delays: strike a's buf only, plus b's buf only,
	// through two Inject calls checking waveform shape.
	sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{g1}, Time: 100, Width: 80})
	w := sim.Wave(gx)
	if len(w) != 1 {
		t.Fatalf("wave = %v", w)
	}
	wantStart := 100 + dm.CellDelay[netlist.Xor]
	if math.Abs(w[0].Start-wantStart) > 1e-9 {
		t.Fatalf("XOR pulse start %v, want %v", w[0].Start, wantStart)
	}
}

func TestBothANDInputsFlipped(t *testing.T) {
	nl := netlist.New(16)
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g1 := nl.AddGate(netlist.Buf, a)
	g2 := nl.AddGate(netlist.Buf, b)
	gand := nl.AddGate(netlist.And, g1, g2)
	sim, _ := New(nl, DefaultDelayModel())
	vals := constValues(map[netlist.NodeID]bool{a: true, b: true})
	sim.Inject(vals, Strike{Gates: []netlist.NodeID{g1, g2}, Time: 500, Width: 60})
	// Nominal out = 1; with both inputs flipped to 0, out = 0: one
	// merged interval.
	w := sim.Wave(gand)
	if len(w) != 1 {
		t.Fatalf("wave(AND) = %v", w)
	}
}

func TestStrikeOnRegisterOrConstIgnored(t *testing.T) {
	nl := netlist.New(8)
	a := nl.AddInput("a")
	c := nl.AddConst(true)
	g := nl.AddGate(netlist.And, a, c)
	r := nl.AddDFF(g, "r", false)
	sim, _ := New(nl, DefaultDelayModel())
	res := sim.Inject(constValues(nil), Strike{Gates: []netlist.NodeID{r, c, a}, Time: 900, Width: 100})
	if res.ActiveGates != 0 {
		t.Fatalf("strike on non-gate nodes produced activity: %+v", res)
	}
}

func TestInjectIsReentrant(t *testing.T) {
	nl := netlist.New(8)
	a := nl.AddInput("a")
	g := nl.AddGate(netlist.Buf, a)
	nl.AddDFF(g, "r", false)
	sim, _ := New(nl, DefaultDelayModel())
	s := Strike{Gates: []netlist.NodeID{g}, Time: 940, Width: 100}
	r1 := sim.Inject(constValues(nil), s)
	r2 := sim.Inject(constValues(nil), s)
	if len(r1.FlippedRegs) != len(r2.FlippedRegs) || r1.ActiveGates != r2.ActiveGates {
		t.Fatalf("results differ across calls: %+v vs %+v", r1, r2)
	}
}

func TestXorIntervalsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	randSet := func() []Interval {
		var out []Interval
		t0 := 0.0
		for i := 0; i < rng.Intn(5); i++ {
			t0 += 1 + rng.Float64()*10
			w := 1 + rng.Float64()*5
			out = append(out, Interval{t0, t0 + w})
			t0 += w
		}
		return out
	}
	coveredAt := func(w []Interval, t float64) bool { return covered(w, t) }
	for trial := 0; trial < 200; trial++ {
		a, b := randSet(), randSet()
		x := xorIntervals(a, b)
		// Pointwise check on a fine grid.
		for t0 := 0.0; t0 < 80; t0 += 0.37 {
			want := coveredAt(a, t0) != coveredAt(b, t0)
			if got := coveredAt(x, t0); got != want {
				t.Fatalf("trial %d: xor mismatch at %v", trial, t0)
			}
		}
		// Self-inverse.
		if y := xorIntervals(a, a); len(y) != 0 {
			t.Fatalf("a xor a = %v", y)
		}
		// Sortedness and disjointness of output.
		if !sort.SliceIsSorted(x, func(i, j int) bool { return x[i].Start < x[j].Start }) {
			t.Fatal("xor output not sorted")
		}
		for i := 1; i < len(x); i++ {
			if x[i].Start < x[i-1].End {
				t.Fatal("xor output overlaps")
			}
		}
	}
}

func TestNewRejectsBadModel(t *testing.T) {
	nl := netlist.New(2)
	nl.AddInput("a")
	dm := DefaultDelayModel()
	dm.ClockPeriod = 0
	if _, err := New(nl, dm); err == nil {
		t.Fatal("accepted zero clock period")
	}
}

func TestPatternClassification(t *testing.T) {
	groups := map[string][]netlist.NodeID{
		"rega": {10, 11, 12, 13, 14, 15, 16, 17, 20, 21, 22, 23, 24, 25, 26, 27}, // 16 bits = 2 bytes
		"regb": {30, 31, 32, 33},
	}
	l := NewRegisterLayout(groups)
	cases := []struct {
		flipped []netlist.NodeID
		want    PatternClass
	}{
		{nil, NoError},
		{[]netlist.NodeID{10}, SingleBit},
		{[]netlist.NodeID{10, 13}, SingleByte},         // both in byte 0 of rega
		{[]netlist.NodeID{10, 20}, MultiByte},          // bytes 0 and 1 of rega
		{[]netlist.NodeID{10, 30}, MultiByte},          // different registers
		{[]netlist.NodeID{30, 31, 32, 33}, SingleByte}, // regb is one 4-bit byte
		{[]netlist.NodeID{99}, SingleBit},              // unknown node
		{[]netlist.NodeID{98, 99}, MultiByte},          // two unknown nodes
	}
	for i, c := range cases {
		if got := l.Classify(c.flipped); got != c.want {
			t.Errorf("case %d: Classify(%v) = %v, want %v", i, c.flipped, got, c.want)
		}
	}
}

func TestFullByteDetection(t *testing.T) {
	groups := map[string][]netlist.NodeID{
		"r": {10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
	}
	l := NewRegisterLayout(groups)
	full := []netlist.NodeID{10, 11, 12, 13, 14, 15, 16, 17}
	if !l.FullByte(full, groups) {
		t.Error("full byte 0 not detected")
	}
	if l.FullByte(full[:7], groups) {
		t.Error("7 of 8 bits misreported as full byte")
	}
	// Trailing partial byte (bits 8..9) counts as full when both flip.
	if !l.FullByte([]netlist.NodeID{18, 19}, groups) {
		t.Error("full trailing partial-byte not detected")
	}
}

func TestPatternKey(t *testing.T) {
	if PatternKey(nil) != "" {
		t.Error("empty key")
	}
	a := PatternKey([]netlist.NodeID{3, 1, 2})
	b := PatternKey([]netlist.NodeID{2, 3, 1})
	if a != b || a != "1,2,3" {
		t.Errorf("keys: %q vs %q", a, b)
	}
}

func TestPatternClassString(t *testing.T) {
	if SingleBit.String() != "single-bit" || MultiByte.String() != "multi-byte" {
		t.Error("String() wrong")
	}
	if PatternClass(9).String() == "" {
		t.Error("unknown class should format")
	}
}
