package timingsim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// PatternClass buckets a latched bit-error pattern the way Fig 7(a) of
// the paper does: by how far the flipped bits spread across the byte
// structure of the architectural registers.
type PatternClass int

// Pattern classes.
const (
	NoError PatternClass = iota
	SingleBit
	SingleByte // more than one bit, all within one byte of one register
	MultiByte  // bits across multiple bytes or multiple registers
)

// String returns the display name used in reports.
func (p PatternClass) String() string {
	switch p {
	case NoError:
		return "none"
	case SingleBit:
		return "single-bit"
	case SingleByte:
		return "single-byte"
	case MultiByte:
		return "multi-byte"
	default:
		return fmt.Sprintf("PatternClass(%d)", int(p))
	}
}

// RegisterLayout maps individual DFF nodes back to (register word, bit
// index) so flipped-bit sets can be classified against byte boundaries.
type RegisterLayout struct {
	loc map[netlist.NodeID]regBit
}

type regBit struct {
	group string
	bit   int
}

// NewRegisterLayout indexes the register groups produced by the HDL
// builder (word name -> DFF bits, LSB first).
func NewRegisterLayout(groups map[string][]netlist.NodeID) *RegisterLayout {
	l := &RegisterLayout{loc: make(map[netlist.NodeID]regBit)}
	for name, bits := range groups {
		for i, id := range bits {
			l.loc[id] = regBit{group: name, bit: i}
		}
	}
	return l
}

// Classify buckets a set of flipped registers. Flipped bits that are not
// part of any known register word each count as their own byte.
func (l *RegisterLayout) Classify(flipped []netlist.NodeID) PatternClass {
	switch len(flipped) {
	case 0:
		return NoError
	case 1:
		return SingleBit
	}
	type byteKey struct {
		group string
		byteN int
	}
	bytes := make(map[byteKey]bool)
	for _, id := range flipped {
		rb, ok := l.loc[id]
		if !ok {
			rb = regBit{group: fmt.Sprintf("~%d", id), bit: 0}
		}
		bytes[byteKey{rb.group, rb.bit / 8}] = true
	}
	if len(bytes) == 1 {
		return SingleByte
	}
	return MultiByte
}

// FullByte reports whether the flipped set covers every bit of at least
// one full byte of a register word — the paper notes that none of the
// observed single-byte errors flip all eight bits, which is why the
// single-byte abstraction used by prior fault analyses is inaccurate.
func (l *RegisterLayout) FullByte(flipped []netlist.NodeID, groups map[string][]netlist.NodeID) bool {
	type byteKey struct {
		group string
		byteN int
	}
	count := make(map[byteKey]int)
	for _, id := range flipped {
		if rb, ok := l.loc[id]; ok {
			count[byteKey{rb.group, rb.bit / 8}]++
		}
	}
	for k, c := range count {
		width := len(groups[k.group]) - k.byteN*8
		if width > 8 {
			width = 8
		}
		if width > 0 && c == width {
			return true
		}
	}
	return false
}

// PatternKey returns a canonical signature for a flipped-register set,
// used to count distinct error patterns (Fig 7(b)).
func PatternKey(flipped []netlist.NodeID) string {
	if len(flipped) == 0 {
		return ""
	}
	ids := append([]netlist.NodeID(nil), flipped...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", id)
	}
	return sb.String()
}
