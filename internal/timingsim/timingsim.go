// Package timingsim implements the gate-level half of the cross-level
// flow: a timed simulation of the single fault-injection cycle. A
// radiation strike deposits voltage transients at the struck gates; the
// transients propagate through sensitized paths (with electrical
// masking), and a register captures a wrong value when a surviving
// transient satisfies its setup/hold window at the capturing clock edge.
//
// The algorithm follows the Monte Carlo SEU flow of Li et al. (DAC'16,
// reference [16] of the paper): fault waveforms are represented as sets
// of disjoint time intervals during which a net differs from its
// fault-free value, and are swept through the netlist in topological
// order.
//
// The sweep is sparse: a strike only ever disturbs the combinational
// fanout cone of the struck gates, so Inject drives a worklist bitset
// indexed by topological position instead of walking the whole
// netlist, resets only the nodes the previous run touched, and stops
// as soon as every surviving waveform has been swept past.
package timingsim

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"

	"repro/internal/netlist"
)

// DelayModel holds the timing parameters of the synthetic standard-cell
// library, in picoseconds.
type DelayModel struct {
	// CellDelay maps each cell type to its propagation delay.
	CellDelay map[netlist.CellType]float64
	// ClockPeriod is the cycle length; registers capture at this time.
	ClockPeriod float64
	// Setup and Hold bound the latching window around the capture
	// edge: a transient is latched only if it spans
	// [ClockPeriod-Setup, ClockPeriod+Hold].
	Setup, Hold float64
	// Attenuation is the pulse-width loss per traversed gate
	// (electrical masking).
	Attenuation float64
	// MinPulse is the narrowest pulse that still propagates; anything
	// narrower is absorbed.
	MinPulse float64
	// GatedWindowFactor widens the setup/hold capture requirement for
	// clock-gated registers whose enable is low in the injection
	// cycle: with the clock gated off, only a transient wide and
	// strong enough to upset the storage cell directly is captured.
	// 1 disables the distinction.
	GatedWindowFactor float64
}

// DefaultDelayModel returns timing representative of a mature planar
// node (~90 nm class): 1 ns cycle, gate delays of tens of ps.
func DefaultDelayModel() DelayModel {
	return DelayModel{
		CellDelay: map[netlist.CellType]float64{
			netlist.Buf:  8,
			netlist.Inv:  5,
			netlist.And:  11,
			netlist.Nand: 9,
			netlist.Or:   11,
			netlist.Nor:  9,
			netlist.Xor:  15,
			netlist.Xnor: 15,
			netlist.Mux2: 17,
		},
		ClockPeriod:       600,
		Setup:             25,
		Hold:              10,
		Attenuation:       6,
		MinPulse:          12,
		GatedWindowFactor: 12,
	}
}

// Interval is a half-open time span [Start, End) during which a net is
// inverted relative to its fault-free value.
type Interval struct {
	Start, End float64
}

// Width returns the interval duration.
func (iv Interval) Width() float64 { return iv.End - iv.Start }

// Strike describes one radiation-induced transient injection: the gates
// hit, when within the cycle the particle arrives, and the deposited
// pulse width. Widths, when non-nil, gives a per-gate deposit width
// (parallel to Gates) — charge sharing decays away from the strike
// center, and unequal deposits prevent the exact cancellation that
// identical pulses on series gates would produce.
type Strike struct {
	Gates  []netlist.NodeID
	Time   float64
	Width  float64
	Widths []float64
}

// widthAt returns the deposit width for the i-th struck gate.
func (st Strike) widthAt(i int) float64 {
	if st.Widths != nil {
		return st.Widths[i]
	}
	return st.Width
}

// Result reports the outcome of simulating one injection cycle.
type Result struct {
	// FlippedRegs lists registers that latched a wrong value, sorted
	// by id.
	FlippedRegs []netlist.NodeID
	// ActiveGates counts gates whose output carried at least one
	// fault interval (a measure of transient spread).
	ActiveGates int
	// ReachedRegs counts registers whose D input saw any transient,
	// latched or not (logical reach before temporal masking).
	ReachedRegs int
}

// Simulator performs timed injection-cycle evaluation over a fixed
// netlist. It is not safe for concurrent use; Fork one per goroutine
// (forks share the immutable topology tables and the cone-schedule
// cache).
type Simulator struct {
	nl    *netlist.Netlist
	dm    DelayModel
	order []netlist.NodeID

	// Immutable per-design tables, shared read-only across Fork.
	topoPos      []int32   // node -> position in order (-1 for non-comb)
	delays       []float64 // node -> cell propagation delay
	combFanout   [][]netlist.NodeID
	regFanout    [][]netlist.NodeID // node -> DFFs whose D input it drives
	maxFanoutPos []int32            // node -> furthest comb fanout position
	maxFanin     int
	// Struct-of-arrays mirror of the netlist cells, so the injection
	// sweep reads cell type and fanins from flat arrays instead of
	// walking netlist.Node pointers: node i's fanins live at
	// faninPool[faninOff[i]:faninOff[i+1]].
	cellTypes []netlist.CellType
	faninOff  []int32
	faninPool []netlist.NodeID

	// Per-run waveform state, reset via the touched list.
	waves   [][]Interval // indexed by node: current fault waveform
	dirty   []bool       // node was struck (own deposit to XOR in)
	touched []netlist.NodeID
	marked  []bool // node is on the touched list
	// waveBits mirrors len(waves[id]) > 0 one bit per node, so the
	// fanin scan of the sweep reads a dense L1-resident bitset instead
	// of scattered slice headers.
	waveBits []uint64
	// needPos is the sweep worklist: one bit per topological position,
	// marking nodes whose fanins' waves changed (struck seeds, plus the
	// fanouts of every node whose wave survived). The sparse sweep
	// consumes marks in position order and clears each as it visits, so
	// the set is empty again after every Inject.
	needPos []uint64

	// Scratch buffers reused across Inject calls.
	events  []float64
	argBuf  []uint64 // spill for cells with more than 8 fanins
	propBuf []Interval

	// Fault-free value source for the Inject in progress: either the
	// caller's values callback, or (InjectBits) a per-node bitset read
	// directly — the bitset path avoids an indirect call per fanin in
	// the propagate hot loop.
	values  func(netlist.NodeID) bool
	valBits []uint64

	// laneWidth is how many 64-span words one timed cell evaluation
	// covers in propagate (1 = scalar, 4 or 8 = wide words); argBuf4
	// and argBuf8 are the matching per-fanin scratch. Set through
	// SetLaneWidth; the width never changes results.
	laneWidth int
	argBuf4   [][4]uint64
	argBuf8   [][8]uint64

	// reference switches Inject to the dense full-order sweep; kept
	// for equivalence testing against the sparse fast path.
	reference bool
}

// New builds a timed simulator. The netlist must be valid.
func New(nl *netlist.Netlist, dm DelayModel) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	if dm.ClockPeriod <= 0 {
		return nil, fmt.Errorf("timingsim: non-positive clock period %v", dm.ClockPeriod)
	}
	n := nl.NumNodes()
	s := &Simulator{
		nl:           nl,
		dm:           dm,
		order:        order,
		topoPos:      make([]int32, n),
		delays:       make([]float64, n),
		combFanout:   make([][]netlist.NodeID, n),
		regFanout:    make([][]netlist.NodeID, n),
		maxFanoutPos: make([]int32, n),
		waves:        make([][]Interval, n),
		dirty:        make([]bool, n),
		marked:       make([]bool, n),
		waveBits:     make([]uint64, (n+63)/64),
		needPos:      make([]uint64, (n+63)/64),
	}
	for i := range s.topoPos {
		s.topoPos[i] = -1
		s.maxFanoutPos[i] = -1
	}
	for pos, id := range order {
		s.topoPos[id] = int32(pos)
	}
	s.cellTypes = make([]netlist.CellType, n)
	s.faninOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		id := netlist.NodeID(i)
		node := nl.Node(id)
		s.delays[i] = dm.CellDelay[node.Type]
		s.cellTypes[i] = node.Type
		s.faninOff[i] = int32(len(s.faninPool))
		s.faninPool = append(s.faninPool, node.Fanin...)
		if l := len(node.Fanin); l > s.maxFanin {
			s.maxFanin = l
		}
	}
	s.faninOff[n] = int32(len(s.faninPool))
	for i, fos := range nl.Fanouts() {
		for _, fo := range fos {
			if nl.Node(fo).Type == netlist.DFF {
				s.regFanout[i] = append(s.regFanout[i], fo)
				continue
			}
			if s.topoPos[fo] >= 0 {
				s.combFanout[i] = append(s.combFanout[i], fo)
				if s.topoPos[fo] > s.maxFanoutPos[i] {
					s.maxFanoutPos[i] = s.topoPos[fo]
				}
			}
		}
	}
	if s.maxFanin > 8 {
		s.argBuf = make([]uint64, s.maxFanin)
	}
	return s, nil
}

// Fork returns an independent simulator over the same design: the
// immutable topology tables and the cone-schedule cache are shared, the
// waveform state and scratch buffers are private. Forks may be used
// concurrently with the parent and with each other.
func (s *Simulator) Fork() *Simulator {
	n := s.nl.NumNodes()
	c := &Simulator{
		nl:           s.nl,
		dm:           s.dm,
		order:        s.order,
		topoPos:      s.topoPos,
		delays:       s.delays,
		combFanout:   s.combFanout,
		regFanout:    s.regFanout,
		maxFanoutPos: s.maxFanoutPos,
		maxFanin:     s.maxFanin,
		cellTypes:    s.cellTypes,
		faninOff:     s.faninOff,
		faninPool:    s.faninPool,
		waves:        make([][]Interval, n),
		dirty:        make([]bool, n),
		marked:       make([]bool, n),
		waveBits:     make([]uint64, (n+63)/64),
		needPos:      make([]uint64, (n+63)/64),
		reference:    s.reference,
	}
	if s.maxFanin > 8 {
		c.argBuf = make([]uint64, s.maxFanin)
	}
	if s.laneWidth != 0 {
		c.SetLaneWidth(s.laneWidth)
	}
	return c
}

// SetLaneWidth selects how many 64-span words one timed cell
// evaluation covers during waveform propagation: 1 (or 0) keeps the
// scalar 64-span chunks, 4 and 8 evaluate 256 and 512 spans per pass
// through [K]uint64 wide words. Waveforms with at most 64 spans — the
// overwhelmingly common case — always take the scalar path, so the
// width only engages on event-dense multi-fanin nodes. Results are
// bit-identical at every width (each span is an independent cell
// evaluation). Forks inherit the setting with their own scratch.
func (s *Simulator) SetLaneWidth(w int) {
	switch w {
	case 0, 1:
		s.laneWidth = 1
	case 4:
		s.laneWidth = 4
		if s.argBuf4 == nil {
			s.argBuf4 = make([][4]uint64, s.maxFanin)
		}
	case 8:
		s.laneWidth = 8
		if s.argBuf8 == nil {
			s.argBuf8 = make([][8]uint64, s.maxFanin)
		}
	default:
		panic(fmt.Sprintf("timingsim: unsupported lane width %d (want 1, 4, or 8)", w))
	}
}

// SetReferenceSweep switches Inject between the sparse fault-cone sweep
// (the default) and the dense full-netlist reference sweep that visits
// every combinational node on every call. The two produce bit-identical
// results; the reference exists for equivalence testing and debugging.
func (s *Simulator) SetReferenceSweep(on bool) { s.reference = on }

// Wave returns the fault waveform computed for a node by the most
// recent Inject call. The caller must not mutate it.
func (s *Simulator) Wave(id netlist.NodeID) []Interval { return s.waves[id] }

// ClockPeriod returns the delay model's cycle length.
func (s *Simulator) ClockPeriod() float64 { return s.dm.ClockPeriod }

// Delay returns the modeled delay of a node's cell.
func (s *Simulator) Delay(id netlist.NodeID) float64 { return s.delays[id] }

// touch puts a node on the list reset before the next Inject.
func (s *Simulator) touch(id netlist.NodeID) {
	if !s.marked[id] {
		s.marked[id] = true
		s.touched = append(s.touched, id)
	}
}

// Inject simulates one fault-injection cycle. values must return the
// fault-free logic value of every node during the cycle (typically the
// RTL simulator's post-Eval state). It returns which registers latch
// wrong values at the cycle's closing clock edge.
func (s *Simulator) Inject(values func(netlist.NodeID) bool, strike Strike) Result {
	s.values, s.valBits = values, nil
	return s.inject(strike)
}

// InjectBits is Inject with the fault-free values supplied as a dense
// bitset (bit id of valbits[id/64] is node id's value) instead of a
// callback. Results are identical; the bitset read replaces an
// indirect call per fanin in the propagation hot path.
func (s *Simulator) InjectBits(valbits []uint64, strike Strike) Result {
	s.values, s.valBits = nil, valbits
	return s.inject(strike)
}

// val reads one fault-free node value from whichever source the
// current Inject supplied.
func (s *Simulator) val(id netlist.NodeID) bool {
	if vb := s.valBits; vb != nil {
		return vb[id>>6]>>(uint(id)&63)&1 == 1
	}
	return s.values(id)
}

func (s *Simulator) inject(strike Strike) Result {
	// Targeted reset: only nodes the previous run disturbed hold state.
	for _, id := range s.touched {
		s.waves[id] = s.waves[id][:0]
		s.waveBits[id>>6] &^= 1 << (uint(id) & 63)
		// The sparse sweep leaves needPos empty; this clear only
		// matters for the dense reference sweep, which ignores marks.
		if p := s.topoPos[id]; p >= 0 {
			s.needPos[p>>6] &^= 1 << (uint(p) & 63)
		}
		s.dirty[id] = false
		s.marked[id] = false
	}
	s.touched = s.touched[:0]
	if strike.Widths != nil && len(strike.Widths) != len(strike.Gates) {
		panic(fmt.Sprintf("timingsim: %d widths for %d gates", len(strike.Widths), len(strike.Gates)))
	}
	for i, g := range strike.Gates {
		node := s.nl.Node(g)
		if !node.Type.IsCombinational() || node.Type == netlist.Const0 || node.Type == netlist.Const1 {
			continue
		}
		iv := Interval{Start: strike.Time, End: strike.Time + strike.widthAt(i)}
		if iv.Width() < s.dm.MinPulse {
			continue
		}
		if len(s.waves[g]) == 0 {
			s.waves[g] = append(s.waves[g], iv)
		} else {
			s.waves[g] = xorIntervals(s.waves[g], []Interval{iv})
		}
		if len(s.waves[g]) > 0 {
			s.waveBits[g>>6] |= 1 << (uint(g) & 63)
		} else {
			s.waveBits[g>>6] &^= 1 << (uint(g) & 63)
		}
		s.dirty[g] = true
		p := s.topoPos[g]
		s.needPos[p>>6] |= 1 << (uint(p) & 63)
		s.touch(g)
	}

	var res Result
	if s.reference {
		for _, id := range s.order {
			s.evalNode(id, &res)
		}
	} else {
		s.sweepSparse(&res)
	}
	s.latchCheck(&res)
	slices.Sort(res.FlippedRegs) // reflection-free; this runs once per draw
	return res
}

// sweepSparse propagates the strike through the fanout cones of the
// struck gates only, by walking the needPos worklist bitset in
// topological-position order: struck seeds are pre-marked, every node
// whose wave survives marks its combinational fanouts, and the walk
// ends once it passes the furthest position any surviving waveform can
// still reach (maxReach) — beyond it every remaining node has
// fault-free fanins. Evaluation order (topo position) and the
// evaluated live set match a full cone-schedule walk, so results are
// identical; the bitset walk just skips the dead nodes of the cone
// without touching them.
func (s *Simulator) sweepSparse(res *Result) {
	if len(s.touched) == 0 { // only seeded gates are touched so far
		return
	}
	minPos, maxReach := int32(1)<<30, int32(-1)
	for _, g := range s.touched {
		p := s.topoPos[g]
		if p < minPos {
			minPos = p
		}
		if p > maxReach {
			maxReach = p
		}
	}
	need := s.needPos
	order := s.order
	//hot
	for w := int(minPos >> 6); ; {
		word := need[w]
		if word == 0 {
			// Marks never land past maxReach: marking a node's fanouts
			// always extends maxReach to at least their positions.
			w++
			if int32(w)<<6 > maxReach {
				return
			}
			continue
		}
		b := bits.TrailingZeros64(word)
		need[w] = word &^ (1 << uint(b))
		id := order[w<<6|b]
		s.evalNode(id, res)
		if len(s.waves[id]) > 0 {
			for _, fo := range s.combFanout[id] {
				p := s.topoPos[fo]
				need[p>>6] |= 1 << (uint(p) & 63)
			}
			if mf := s.maxFanoutPos[id]; mf > maxReach {
				maxReach = mf
			}
		}
	}
}

// evalNode (re)evaluates one combinational node of the sweep: if any
// fanin carries a waveform the output response is propagated and
// conditioned; a struck node XORs its own deposit with the response.
// The fanin scan reads the flat SoA pool and is shared with propagate
// (which fanin carries a waveform is decided exactly once per node).
func (s *Simulator) evalNode(id netlist.NodeID, res *Result) {
	fi := s.faninPool[s.faninOff[id]:s.faninOff[id+1]]
	waved, wi := 0, -1
	wb := s.waveBits
	for j, f := range fi {
		if wb[f>>6]>>(uint(f)&63)&1 != 0 {
			waved++
			wi = j
		}
	}
	if waved > 0 {
		prop := s.propagate(id, s.cellTypes[id], fi, waved, wi)
		prop = conditionWith(prop, s.delays[id], s.dm.Attenuation, s.dm.MinPulse)
		if s.dirty[id] {
			// Struck gate: its own deposited pulse is combined
			// with whatever arrives through its inputs.
			s.waves[id] = xorIntervals(s.waves[id], prop)
		} else {
			s.waves[id] = append(s.waves[id][:0], prop...)
		}
	}
	if len(s.waves[id]) > 0 {
		wb[id>>6] |= 1 << (uint(id) & 63)
		res.ActiveGates++
		s.touch(id)
	} else {
		wb[id>>6] &^= 1 << (uint(id) & 63)
	}
}

// latchCheck performs the latching decision per register whose D input
// carries a transient. Clock-gated registers whose enable is low this
// cycle require a much wider transient (direct storage-node upset
// instead of a clocked capture).
func (s *Simulator) latchCheck(res *Result) {
	gf := s.dm.GatedWindowFactor
	if gf < 1 {
		gf = 1
	}
	//hot
	for _, d := range s.touched {
		w := s.waves[d]
		if len(w) == 0 {
			continue
		}
		for _, r := range s.regFanout[d] {
			node := s.nl.Node(r)
			res.ReachedRegs++
			setup, hold := s.dm.Setup, s.dm.Hold
			if node.En != netlist.Invalid && !s.val(node.En) {
				setup *= gf
				hold *= gf
			}
			winStart := s.dm.ClockPeriod - setup
			winEnd := s.dm.ClockPeriod + hold
			for _, iv := range w {
				if iv.Start <= winStart && iv.End >= winEnd {
					res.FlippedRegs = append(res.FlippedRegs, r) //alloc-ok (result slice, reset per Inject)
					break
				}
			}
		}
	}
}

// propagate computes the fault waveform at a gate's output (before
// delay/attenuation) from its fanin waveforms by sweeping the combined
// event points: within each span between events, every fanin has a
// constant flip state, so the output flip state is one cell evaluation
// against the fault-free values. Cell evaluation is lane-wise bitwise
// (the 64-lane logic simulator runs on the same EvalCell), so up to 64
// spans are evaluated per call: lane k carries span k's input state —
// the fault-free value broadcast, XORed with the span's flip bit. The
// returned slice is scratch owned by the simulator, valid until the
// next propagate call. t and fi are the node's cell type and flat
// fanin list; waved and wi are the caller's fanin-scan results (how
// many fanins carry a waveform, and the index of the last one).
func (s *Simulator) propagate(id netlist.NodeID, t netlist.CellType, fi []netlist.NodeID, waved, wi int) []Interval {
	var in [8]uint64
	args := in[:]
	if len(fi) > len(in) {
		args = s.argBuf
	}
	args = args[:len(fi)]
	if waved == 1 {
		// Exactly one fanin carries a waveform, so its flip state is
		// the only thing that varies across spans: either it
		// sensitizes the output (every span flips — the output
		// waveform is the fanin's, with touching intervals coalesced)
		// or it doesn't (no output response). One two-lane cell
		// evaluation decides which: lane 0 is the fault-free input
		// state, lane 1 flips the waved fanin.
		for j, f := range fi {
			base := uint64(0)
			if s.val(f) {
				base = ^uint64(0)
			}
			if j == wi {
				base ^= 2
			}
			args[j] = base
		}
		outw := netlist.EvalCell(t, args)
		out := s.propBuf[:0]
		if (outw^outw>>1)&1 == 1 {
			for _, iv := range s.waves[fi[wi]] {
				out = appendMerged(out, iv)
			}
		}
		s.propBuf = out
		return out
	}

	// Gather event points.
	events := s.events[:0]
	for _, f := range fi {
		for _, iv := range s.waves[f] {
			events = append(events, iv.Start, iv.End)
		}
	}
	s.events = events
	sort.Float64s(events)
	events = dedupFloats(events)

	// The fault-free output needs no evaluation: values is the
	// consistent post-Eval state, so the node's own recorded value is
	// its cell function over the recorded fanin values.
	nominalOut := uint64(0)
	if s.val(id) {
		nominalOut = ^uint64(0)
	}
	out := s.propBuf[:0]
	spans := len(events) - 1
	if spans > 64 && s.laneWidth > 1 {
		switch s.laneWidth {
		case 4:
			out = propagateWide(s, t, fi, s.argBuf4[:len(fi)], events, nominalOut, out)
		default:
			out = propagateWide(s, t, fi, s.argBuf8[:len(fi)], events, nominalOut, out)
		}
		s.propBuf = out
		return out
	}
	// Evaluate within each span [events[k], events[k+1]), 64 at a time.
	//hot
	for chunk := 0; chunk < spans; chunk += 64 {
		n := spans - chunk
		if n > 64 {
			n = 64
		}
		for j, f := range fi {
			base := uint64(0)
			if s.val(f) {
				base = ^uint64(0)
			}
			if w := s.waves[f]; len(w) > 0 {
				for k := 0; k < n; k++ {
					mid := (events[chunk+k] + events[chunk+k+1]) / 2
					if covered(w, mid) {
						base ^= 1 << uint(k)
					}
				}
			}
			args[j] = base
		}
		flipped := netlist.EvalCell(t, args) ^ nominalOut
		for k := 0; k < n; k++ {
			if flipped>>uint(k)&1 == 1 {
				out = appendMerged(out, Interval{events[chunk+k], events[chunk+k+1]})
			}
		}
	}
	s.propBuf = out
	return out
}

// propagateWide is propagate's multi-waved span sweep over [K]uint64
// wide words: each chunk evaluates up to 64·K spans with one
// netlist.EvalCellWide call. The per-span work (midpoint coverage test,
// flipped-interval emission) is identical to the scalar loop, so the
// produced waveform is bit-identical; only the cell-evaluation count
// drops. args is per-simulator scratch sliced to len(fi).
func propagateWide[W netlist.Word](s *Simulator, t netlist.CellType, fi []netlist.NodeID, args []W, events []float64, nominalOut uint64, out []Interval) []Interval {
	spans := len(events) - 1
	var w0 W
	lanes := 64 * len(netlist.WordSlice(&w0))
	//hot
	for chunk := 0; chunk < spans; chunk += lanes {
		n := spans - chunk
		if n > lanes {
			n = lanes
		}
		for j, f := range fi {
			a := netlist.WordSlice(&args[j])
			base := uint64(0)
			if s.val(f) {
				base = ^uint64(0)
			}
			for g := range a {
				a[g] = base
			}
			if wv := s.waves[f]; len(wv) > 0 {
				for k := 0; k < n; k++ {
					mid := (events[chunk+k] + events[chunk+k+1]) / 2
					if covered(wv, mid) {
						a[k>>6] ^= 1 << uint(k&63)
					}
				}
			}
		}
		res := netlist.EvalCellWide(t, args)
		rs := netlist.WordSlice(&res)
		for g := 0; g*64 < n; g++ {
			flipped := rs[g] ^ nominalOut
			base := chunk + g*64
			lim := n - g*64
			if lim > 64 {
				lim = 64
			}
			for k := 0; k < lim; k++ {
				if flipped>>uint(k)&1 == 1 {
					out = appendMerged(out, Interval{events[base+k], events[base+k+1]})
				}
			}
		}
	}
	return out
}

// conditionWith applies gate delay and electrical masking (pulse-width
// attenuation with a minimum propagatable width) to a waveform.
func conditionWith(w []Interval, delay, att, minPulse float64) []Interval {
	out := w[:0]
	for _, iv := range w {
		width := iv.Width() - att
		if width < minPulse {
			continue
		}
		out = append(out, Interval{Start: iv.Start + delay, End: iv.Start + delay + width})
	}
	return out
}

func covered(w []Interval, t float64) bool {
	for _, iv := range w {
		if t >= iv.Start && t < iv.End {
			return true
		}
	}
	return false
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// appendMerged appends iv, coalescing with the previous interval when
// they touch.
func appendMerged(w []Interval, iv Interval) []Interval {
	if n := len(w); n > 0 && w[n-1].End >= iv.Start {
		if iv.End > w[n-1].End {
			w[n-1].End = iv.End
		}
		return w
	}
	return append(w, iv)
}

// xorIntervals returns the symmetric difference of two disjoint sorted
// interval sets: spans covered by exactly one of them.
func xorIntervals(a, b []Interval) []Interval {
	if len(a) == 0 {
		return append([]Interval(nil), b...)
	}
	if len(b) == 0 {
		return append([]Interval(nil), a...)
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	for _, iv := range a {
		edges = append(edges, edge{iv.Start, 1}, edge{iv.End, -1})
	}
	for _, iv := range b {
		edges = append(edges, edge{iv.Start, 2}, edge{iv.End, -2})
	}
	slices.SortFunc(edges, func(a, b edge) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		}
		return 0
	})
	var out []Interval
	inA, inB := 0, 0
	prev := edges[0].t
	for _, e := range edges {
		if e.t > prev && (inA > 0) != (inB > 0) {
			out = appendMerged(out, Interval{prev, e.t})
		}
		switch e.delta {
		case 1:
			inA++
		case -1:
			inA--
		case 2:
			inB++
		case -2:
			inB--
		}
		prev = e.t
	}
	return out
}
