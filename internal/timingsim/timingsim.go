// Package timingsim implements the gate-level half of the cross-level
// flow: a timed simulation of the single fault-injection cycle. A
// radiation strike deposits voltage transients at the struck gates; the
// transients propagate through sensitized paths (with electrical
// masking), and a register captures a wrong value when a surviving
// transient satisfies its setup/hold window at the capturing clock edge.
//
// The algorithm follows the Monte Carlo SEU flow of Li et al. (DAC'16,
// reference [16] of the paper): fault waveforms are represented as sets
// of disjoint time intervals during which a net differs from its
// fault-free value, and are swept through the netlist in topological
// order.
package timingsim

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// DelayModel holds the timing parameters of the synthetic standard-cell
// library, in picoseconds.
type DelayModel struct {
	// CellDelay maps each cell type to its propagation delay.
	CellDelay map[netlist.CellType]float64
	// ClockPeriod is the cycle length; registers capture at this time.
	ClockPeriod float64
	// Setup and Hold bound the latching window around the capture
	// edge: a transient is latched only if it spans
	// [ClockPeriod-Setup, ClockPeriod+Hold].
	Setup, Hold float64
	// Attenuation is the pulse-width loss per traversed gate
	// (electrical masking).
	Attenuation float64
	// MinPulse is the narrowest pulse that still propagates; anything
	// narrower is absorbed.
	MinPulse float64
	// GatedWindowFactor widens the setup/hold capture requirement for
	// clock-gated registers whose enable is low in the injection
	// cycle: with the clock gated off, only a transient wide and
	// strong enough to upset the storage cell directly is captured.
	// 1 disables the distinction.
	GatedWindowFactor float64
}

// DefaultDelayModel returns timing representative of a mature planar
// node (~90 nm class): 1 ns cycle, gate delays of tens of ps.
func DefaultDelayModel() DelayModel {
	return DelayModel{
		CellDelay: map[netlist.CellType]float64{
			netlist.Buf:  8,
			netlist.Inv:  5,
			netlist.And:  11,
			netlist.Nand: 9,
			netlist.Or:   11,
			netlist.Nor:  9,
			netlist.Xor:  15,
			netlist.Xnor: 15,
			netlist.Mux2: 17,
		},
		ClockPeriod:       600,
		Setup:             25,
		Hold:              10,
		Attenuation:       6,
		MinPulse:          12,
		GatedWindowFactor: 12,
	}
}

// Interval is a half-open time span [Start, End) during which a net is
// inverted relative to its fault-free value.
type Interval struct {
	Start, End float64
}

// Width returns the interval duration.
func (iv Interval) Width() float64 { return iv.End - iv.Start }

// Strike describes one radiation-induced transient injection: the gates
// hit, when within the cycle the particle arrives, and the deposited
// pulse width. Widths, when non-nil, gives a per-gate deposit width
// (parallel to Gates) — charge sharing decays away from the strike
// center, and unequal deposits prevent the exact cancellation that
// identical pulses on series gates would produce.
type Strike struct {
	Gates  []netlist.NodeID
	Time   float64
	Width  float64
	Widths []float64
}

// widthAt returns the deposit width for the i-th struck gate.
func (st Strike) widthAt(i int) float64 {
	if st.Widths != nil {
		return st.Widths[i]
	}
	return st.Width
}

// Result reports the outcome of simulating one injection cycle.
type Result struct {
	// FlippedRegs lists registers that latched a wrong value, sorted
	// by id.
	FlippedRegs []netlist.NodeID
	// ActiveGates counts gates whose output carried at least one
	// fault interval (a measure of transient spread).
	ActiveGates int
	// ReachedRegs counts registers whose D input saw any transient,
	// latched or not (logical reach before temporal masking).
	ReachedRegs int
}

// Simulator performs timed injection-cycle evaluation over a fixed
// netlist. It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	nl    *netlist.Netlist
	dm    DelayModel
	order []netlist.NodeID
	// waves is indexed by node: current fault waveform.
	waves [][]Interval
	dirty []bool
}

// New builds a timed simulator. The netlist must be valid.
func New(nl *netlist.Netlist, dm DelayModel) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	if dm.ClockPeriod <= 0 {
		return nil, fmt.Errorf("timingsim: non-positive clock period %v", dm.ClockPeriod)
	}
	return &Simulator{
		nl:    nl,
		dm:    dm,
		order: order,
		waves: make([][]Interval, nl.NumNodes()),
		dirty: make([]bool, nl.NumNodes()),
	}, nil
}

// Wave returns the fault waveform computed for a node by the most
// recent Inject call. The caller must not mutate it.
func (s *Simulator) Wave(id netlist.NodeID) []Interval { return s.waves[id] }

// ClockPeriod returns the delay model's cycle length.
func (s *Simulator) ClockPeriod() float64 { return s.dm.ClockPeriod }

// Delay returns the modeled delay of a node's cell.
func (s *Simulator) Delay(id netlist.NodeID) float64 {
	return s.dm.CellDelay[s.nl.Node(id).Type]
}

// Inject simulates one fault-injection cycle. values must return the
// fault-free logic value of every node during the cycle (typically the
// RTL simulator's post-Eval state). It returns which registers latch
// wrong values at the cycle's closing clock edge.
func (s *Simulator) Inject(values func(netlist.NodeID) bool, strike Strike) Result {
	// Reset per-run state.
	for i := range s.waves {
		s.waves[i] = s.waves[i][:0]
		s.dirty[i] = false
	}
	if strike.Widths != nil && len(strike.Widths) != len(strike.Gates) {
		panic(fmt.Sprintf("timingsim: %d widths for %d gates", len(strike.Widths), len(strike.Gates)))
	}
	for i, g := range strike.Gates {
		node := s.nl.Node(g)
		if !node.Type.IsCombinational() || node.Type == netlist.Const0 || node.Type == netlist.Const1 {
			continue
		}
		iv := Interval{Start: strike.Time, End: strike.Time + strike.widthAt(i)}
		if iv.Width() < s.dm.MinPulse {
			continue
		}
		s.waves[g] = xorIntervals(s.waves[g], []Interval{iv})
		s.dirty[g] = true
	}

	var res Result
	// Propagate in topological order. A gate needs (re)evaluation if
	// any fanin carries a waveform; its own strike contribution was
	// seeded above and is XORed with the propagated response.
	for _, id := range s.order {
		node := s.nl.Node(id)
		anyIn := false
		for _, f := range node.Fanin {
			if len(s.waves[f]) > 0 {
				anyIn = true
				break
			}
		}
		if !anyIn {
			if len(s.waves[id]) > 0 {
				res.ActiveGates++
			}
			continue
		}
		prop := s.propagate(id, values)
		prop = conditionWith(prop, s.Delay(id), s.dm.Attenuation, s.dm.MinPulse)
		if s.dirty[id] {
			// Struck gate: its own deposited pulse is combined
			// with whatever arrives through its inputs.
			s.waves[id] = xorIntervals(s.waves[id], prop)
		} else {
			s.waves[id] = prop
		}
		if len(s.waves[id]) > 0 {
			res.ActiveGates++
		}
	}

	// Latching check per register. Clock-gated registers whose enable
	// is low this cycle require a much wider transient (direct
	// storage-node upset instead of a clocked capture).
	gf := s.dm.GatedWindowFactor
	if gf < 1 {
		gf = 1
	}
	for _, r := range s.nl.Regs() {
		node := s.nl.Node(r)
		d := node.Fanin[0]
		w := s.waves[d]
		if len(w) == 0 {
			continue
		}
		res.ReachedRegs++
		setup, hold := s.dm.Setup, s.dm.Hold
		if node.En != netlist.Invalid && !values(node.En) {
			setup *= gf
			hold *= gf
		}
		winStart := s.dm.ClockPeriod - setup
		winEnd := s.dm.ClockPeriod + hold
		for _, iv := range w {
			if iv.Start <= winStart && iv.End >= winEnd {
				res.FlippedRegs = append(res.FlippedRegs, r)
				break
			}
		}
	}
	sort.Slice(res.FlippedRegs, func(i, j int) bool { return res.FlippedRegs[i] < res.FlippedRegs[j] })
	return res
}

// propagate computes the fault waveform at a gate's output (before
// delay/attenuation) from its fanin waveforms by sweeping the combined
// event points: within each span between events, every fanin has a
// constant flip state, so the output flip state is a single cell
// evaluation against the fault-free values.
func (s *Simulator) propagate(id netlist.NodeID, values func(netlist.NodeID) bool) []Interval {
	node := s.nl.Node(id)
	fi := node.Fanin

	// Gather event points.
	var events []float64
	for _, f := range fi {
		for _, iv := range s.waves[f] {
			events = append(events, iv.Start, iv.End)
		}
	}
	if len(events) == 0 {
		return nil
	}
	sort.Float64s(events)
	events = dedupFloats(events)

	nominalOut := evalBool(node.Type, fi, values, nil)
	var out []Interval
	// Evaluate within each span [events[i], events[i+1]).
	flipped := make(map[netlist.NodeID]bool, len(fi))
	for i := 0; i+1 < len(events); i++ {
		mid := (events[i] + events[i+1]) / 2
		for k := range flipped {
			delete(flipped, k)
		}
		for _, f := range fi {
			if covered(s.waves[f], mid) {
				flipped[f] = true
			}
		}
		v := evalBool(node.Type, fi, values, flipped)
		if v != nominalOut {
			out = appendMerged(out, Interval{events[i], events[i+1]})
		}
	}
	return out
}

// conditionWith applies gate delay and electrical masking (pulse-width
// attenuation with a minimum propagatable width) to a waveform.
func conditionWith(w []Interval, delay, att, minPulse float64) []Interval {
	out := w[:0]
	for _, iv := range w {
		width := iv.Width() - att
		if width < minPulse {
			continue
		}
		out = append(out, Interval{Start: iv.Start + delay, End: iv.Start + delay + width})
	}
	return out
}

// evalBool evaluates a cell with fault-free values, applying the given
// set of flipped fanins.
func evalBool(t netlist.CellType, fanin []netlist.NodeID, values func(netlist.NodeID) bool, flipped map[netlist.NodeID]bool) bool {
	var in [8]uint64
	args := in[:len(fanin)]
	if len(fanin) > len(in) {
		args = make([]uint64, len(fanin))
	}
	for i, f := range fanin {
		v := values(f)
		if flipped[f] {
			v = !v
		}
		if v {
			args[i] = 1
		}
	}
	return netlist.EvalCell(t, args)&1 == 1
}

func covered(w []Interval, t float64) bool {
	for _, iv := range w {
		if t >= iv.Start && t < iv.End {
			return true
		}
	}
	return false
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// appendMerged appends iv, coalescing with the previous interval when
// they touch.
func appendMerged(w []Interval, iv Interval) []Interval {
	if n := len(w); n > 0 && w[n-1].End >= iv.Start {
		if iv.End > w[n-1].End {
			w[n-1].End = iv.End
		}
		return w
	}
	return append(w, iv)
}

// xorIntervals returns the symmetric difference of two disjoint sorted
// interval sets: spans covered by exactly one of them.
func xorIntervals(a, b []Interval) []Interval {
	if len(a) == 0 {
		return append([]Interval(nil), b...)
	}
	if len(b) == 0 {
		return append([]Interval(nil), a...)
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	for _, iv := range a {
		edges = append(edges, edge{iv.Start, 1}, edge{iv.End, -1})
	}
	for _, iv := range b {
		edges = append(edges, edge{iv.Start, 2}, edge{iv.End, -2})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	var out []Interval
	inA, inB := 0, 0
	prev := edges[0].t
	for _, e := range edges {
		if e.t > prev && (inA > 0) != (inB > 0) {
			out = appendMerged(out, Interval{prev, e.t})
		}
		switch e.delta {
		case 1:
			inA++
		case -1:
			inA--
		case 2:
			inB++
		case -2:
			inB--
		}
		prev = e.t
	}
	return out
}
