// Package timingsim implements the gate-level half of the cross-level
// flow: a timed simulation of the single fault-injection cycle. A
// radiation strike deposits voltage transients at the struck gates; the
// transients propagate through sensitized paths (with electrical
// masking), and a register captures a wrong value when a surviving
// transient satisfies its setup/hold window at the capturing clock edge.
//
// The algorithm follows the Monte Carlo SEU flow of Li et al. (DAC'16,
// reference [16] of the paper): fault waveforms are represented as sets
// of disjoint time intervals during which a net differs from its
// fault-free value, and are swept through the netlist in topological
// order.
//
// The sweep is sparse: a strike only ever disturbs the combinational
// fanout cone of the struck gates, so Inject walks a precomputed
// topo-sorted cone schedule instead of the whole netlist, resets only
// the nodes the previous run touched, and stops as soon as every
// surviving waveform has been swept past. The cone schedules are cached
// per gate and shared (read-only, under a lock) across Fork copies.
package timingsim

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/netlist"
)

// DelayModel holds the timing parameters of the synthetic standard-cell
// library, in picoseconds.
type DelayModel struct {
	// CellDelay maps each cell type to its propagation delay.
	CellDelay map[netlist.CellType]float64
	// ClockPeriod is the cycle length; registers capture at this time.
	ClockPeriod float64
	// Setup and Hold bound the latching window around the capture
	// edge: a transient is latched only if it spans
	// [ClockPeriod-Setup, ClockPeriod+Hold].
	Setup, Hold float64
	// Attenuation is the pulse-width loss per traversed gate
	// (electrical masking).
	Attenuation float64
	// MinPulse is the narrowest pulse that still propagates; anything
	// narrower is absorbed.
	MinPulse float64
	// GatedWindowFactor widens the setup/hold capture requirement for
	// clock-gated registers whose enable is low in the injection
	// cycle: with the clock gated off, only a transient wide and
	// strong enough to upset the storage cell directly is captured.
	// 1 disables the distinction.
	GatedWindowFactor float64
}

// DefaultDelayModel returns timing representative of a mature planar
// node (~90 nm class): 1 ns cycle, gate delays of tens of ps.
func DefaultDelayModel() DelayModel {
	return DelayModel{
		CellDelay: map[netlist.CellType]float64{
			netlist.Buf:  8,
			netlist.Inv:  5,
			netlist.And:  11,
			netlist.Nand: 9,
			netlist.Or:   11,
			netlist.Nor:  9,
			netlist.Xor:  15,
			netlist.Xnor: 15,
			netlist.Mux2: 17,
		},
		ClockPeriod:       600,
		Setup:             25,
		Hold:              10,
		Attenuation:       6,
		MinPulse:          12,
		GatedWindowFactor: 12,
	}
}

// Interval is a half-open time span [Start, End) during which a net is
// inverted relative to its fault-free value.
type Interval struct {
	Start, End float64
}

// Width returns the interval duration.
func (iv Interval) Width() float64 { return iv.End - iv.Start }

// Strike describes one radiation-induced transient injection: the gates
// hit, when within the cycle the particle arrives, and the deposited
// pulse width. Widths, when non-nil, gives a per-gate deposit width
// (parallel to Gates) — charge sharing decays away from the strike
// center, and unequal deposits prevent the exact cancellation that
// identical pulses on series gates would produce.
type Strike struct {
	Gates  []netlist.NodeID
	Time   float64
	Width  float64
	Widths []float64
}

// widthAt returns the deposit width for the i-th struck gate.
func (st Strike) widthAt(i int) float64 {
	if st.Widths != nil {
		return st.Widths[i]
	}
	return st.Width
}

// Result reports the outcome of simulating one injection cycle.
type Result struct {
	// FlippedRegs lists registers that latched a wrong value, sorted
	// by id.
	FlippedRegs []netlist.NodeID
	// ActiveGates counts gates whose output carried at least one
	// fault interval (a measure of transient spread).
	ActiveGates int
	// ReachedRegs counts registers whose D input saw any transient,
	// latched or not (logical reach before temporal masking).
	ReachedRegs int
}

// coneCache memoizes the topo-sorted combinational fanout-cone schedule
// of each gate. It is shared across Fork copies: schedules are built
// once per gate per design, whichever simulator strikes it first.
type coneCache struct {
	mu    sync.RWMutex
	sched map[netlist.NodeID][]netlist.NodeID
	// merged memoizes the union cone schedule of a multi-gate strike,
	// keyed by the byte-packed struck-gate id list. Strike spots are
	// drawn around a finite candidate-center set and the radius jitter
	// only crosses a few inter-gate distance thresholds, so the same
	// gate sets recur constantly within a campaign.
	merged map[string][]netlist.NodeID
}

func (c *coneCache) get(g netlist.NodeID) []netlist.NodeID {
	c.mu.RLock()
	s := c.sched[g]
	c.mu.RUnlock()
	return s
}

func (c *coneCache) getMerged(key []byte) []netlist.NodeID {
	c.mu.RLock()
	s := c.merged[string(key)] // no-alloc map lookup
	c.mu.RUnlock()
	return s
}

func (c *coneCache) putMerged(key []byte, sched []netlist.NodeID) []netlist.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.merged[string(key)]; ok {
		return prev
	}
	c.merged[string(key)] = sched
	return sched
}

func (c *coneCache) put(g netlist.NodeID, sched []netlist.NodeID) []netlist.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.sched[g]; ok {
		return prev // another fork won the race; use its schedule
	}
	c.sched[g] = sched
	return sched
}

// Simulator performs timed injection-cycle evaluation over a fixed
// netlist. It is not safe for concurrent use; Fork one per goroutine
// (forks share the immutable topology tables and the cone-schedule
// cache).
type Simulator struct {
	nl    *netlist.Netlist
	dm    DelayModel
	order []netlist.NodeID

	// Immutable per-design tables, shared read-only across Fork.
	topoPos      []int32   // node -> position in order (-1 for non-comb)
	delays       []float64 // node -> cell propagation delay
	combFanout   [][]netlist.NodeID
	regFanout    [][]netlist.NodeID // node -> DFFs whose D input it drives
	maxFanoutPos []int32            // node -> furthest comb fanout position
	maxFanin     int
	cones        *coneCache

	// Per-run waveform state, reset via the touched list.
	waves   [][]Interval // indexed by node: current fault waveform
	dirty   []bool       // node was struck (own deposit to XOR in)
	touched []netlist.NodeID
	marked  []bool // node is on the touched list

	// Scratch buffers reused across Inject calls.
	events   []float64
	argBuf   []uint64 // spill for cells with more than 8 fanins
	propBuf  []Interval
	keyBuf   []byte

	// reference switches Inject to the dense full-order sweep; kept
	// for equivalence testing against the sparse fast path.
	reference bool
}

// New builds a timed simulator. The netlist must be valid.
func New(nl *netlist.Netlist, dm DelayModel) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	if dm.ClockPeriod <= 0 {
		return nil, fmt.Errorf("timingsim: non-positive clock period %v", dm.ClockPeriod)
	}
	n := nl.NumNodes()
	s := &Simulator{
		nl:           nl,
		dm:           dm,
		order:        order,
		topoPos:      make([]int32, n),
		delays:       make([]float64, n),
		combFanout:   make([][]netlist.NodeID, n),
		regFanout:    make([][]netlist.NodeID, n),
		maxFanoutPos: make([]int32, n),
		cones: &coneCache{
			sched:  make(map[netlist.NodeID][]netlist.NodeID),
			merged: make(map[string][]netlist.NodeID),
		},
		waves:        make([][]Interval, n),
		dirty:        make([]bool, n),
		marked:       make([]bool, n),
	}
	for i := range s.topoPos {
		s.topoPos[i] = -1
		s.maxFanoutPos[i] = -1
	}
	for pos, id := range order {
		s.topoPos[id] = int32(pos)
	}
	for i := 0; i < n; i++ {
		id := netlist.NodeID(i)
		node := nl.Node(id)
		s.delays[i] = dm.CellDelay[node.Type]
		if l := len(node.Fanin); l > s.maxFanin {
			s.maxFanin = l
		}
	}
	for i, fos := range nl.Fanouts() {
		for _, fo := range fos {
			if nl.Node(fo).Type == netlist.DFF {
				s.regFanout[i] = append(s.regFanout[i], fo)
				continue
			}
			if s.topoPos[fo] >= 0 {
				s.combFanout[i] = append(s.combFanout[i], fo)
				if s.topoPos[fo] > s.maxFanoutPos[i] {
					s.maxFanoutPos[i] = s.topoPos[fo]
				}
			}
		}
	}
	if s.maxFanin > 8 {
		s.argBuf = make([]uint64, s.maxFanin)
	}
	return s, nil
}

// Fork returns an independent simulator over the same design: the
// immutable topology tables and the cone-schedule cache are shared, the
// waveform state and scratch buffers are private. Forks may be used
// concurrently with the parent and with each other.
func (s *Simulator) Fork() *Simulator {
	n := s.nl.NumNodes()
	c := &Simulator{
		nl:           s.nl,
		dm:           s.dm,
		order:        s.order,
		topoPos:      s.topoPos,
		delays:       s.delays,
		combFanout:   s.combFanout,
		regFanout:    s.regFanout,
		maxFanoutPos: s.maxFanoutPos,
		maxFanin:     s.maxFanin,
		cones:        s.cones,
		waves:        make([][]Interval, n),
		dirty:        make([]bool, n),
		marked:       make([]bool, n),
		reference:    s.reference,
	}
	if s.maxFanin > 8 {
		c.argBuf = make([]uint64, s.maxFanin)
	}
	return c
}

// SetReferenceSweep switches Inject between the sparse fault-cone sweep
// (the default) and the dense full-netlist reference sweep that visits
// every combinational node on every call. The two produce bit-identical
// results; the reference exists for equivalence testing and debugging.
func (s *Simulator) SetReferenceSweep(on bool) { s.reference = on }

// Wave returns the fault waveform computed for a node by the most
// recent Inject call. The caller must not mutate it.
func (s *Simulator) Wave(id netlist.NodeID) []Interval { return s.waves[id] }

// ClockPeriod returns the delay model's cycle length.
func (s *Simulator) ClockPeriod() float64 { return s.dm.ClockPeriod }

// Delay returns the modeled delay of a node's cell.
func (s *Simulator) Delay(id netlist.NodeID) float64 { return s.delays[id] }

// touch puts a node on the list reset before the next Inject.
func (s *Simulator) touch(id netlist.NodeID) {
	if !s.marked[id] {
		s.marked[id] = true
		s.touched = append(s.touched, id)
	}
}

// Inject simulates one fault-injection cycle. values must return the
// fault-free logic value of every node during the cycle (typically the
// RTL simulator's post-Eval state). It returns which registers latch
// wrong values at the cycle's closing clock edge.
func (s *Simulator) Inject(values func(netlist.NodeID) bool, strike Strike) Result {
	// Targeted reset: only nodes the previous run disturbed hold state.
	for _, id := range s.touched {
		s.waves[id] = s.waves[id][:0]
		s.dirty[id] = false
		s.marked[id] = false
	}
	s.touched = s.touched[:0]
	if strike.Widths != nil && len(strike.Widths) != len(strike.Gates) {
		panic(fmt.Sprintf("timingsim: %d widths for %d gates", len(strike.Widths), len(strike.Gates)))
	}
	for i, g := range strike.Gates {
		node := s.nl.Node(g)
		if !node.Type.IsCombinational() || node.Type == netlist.Const0 || node.Type == netlist.Const1 {
			continue
		}
		iv := Interval{Start: strike.Time, End: strike.Time + strike.widthAt(i)}
		if iv.Width() < s.dm.MinPulse {
			continue
		}
		if len(s.waves[g]) == 0 {
			s.waves[g] = append(s.waves[g], iv)
		} else {
			s.waves[g] = xorIntervals(s.waves[g], []Interval{iv})
		}
		s.dirty[g] = true
		s.touch(g)
	}

	var res Result
	if s.reference {
		for _, id := range s.order {
			s.evalNode(id, values, &res)
		}
	} else {
		s.sweepSparse(values, &res)
	}
	s.latchCheck(values, &res)
	sort.Slice(res.FlippedRegs, func(i, j int) bool { return res.FlippedRegs[i] < res.FlippedRegs[j] })
	return res
}

// sweepSparse propagates the strike through the fanout cones of the
// struck gates only. Single-gate strikes walk the gate's cached cone
// schedule with a reach bound; multi-gate strikes run an event-driven
// worklist so the walk ends as soon as every waveform has died.
func (s *Simulator) sweepSparse(values func(netlist.NodeID) bool, res *Result) {
	switch len(s.touched) { // only seeded gates are touched so far
	case 0:
		return
	case 1:
		s.sweepCone(s.touched[0], values, res)
		return
	}
	// Multi-gate strike: walk the memoized union cone schedule of the
	// struck set with the same reach bound sweepCone uses — past
	// maxReach every remaining schedule node has fault-free fanins.
	// Evaluation order (topo position) and the evaluated live set match
	// the event-driven worklist this replaces, so results are
	// identical; the schedule walk just avoids per-sample heap and
	// visited-set bookkeeping for the recurring strike sets.
	sched := s.mergedSchedule()
	maxReach := int32(-1)
	for _, g := range s.touched {
		if p := s.topoPos[g]; p > maxReach {
			maxReach = p
		}
	}
	//hot
	for _, id := range sched {
		if s.topoPos[id] > maxReach {
			break
		}
		s.evalNode(id, values, res)
		if len(s.waves[id]) > 0 {
			if mf := s.maxFanoutPos[id]; mf > maxReach {
				maxReach = mf
			}
		}
	}
}

// mergedSchedule returns the topo-sorted union of the struck gates'
// combinational fanout cones, memoized by the struck-gate id list.
func (s *Simulator) mergedSchedule() []netlist.NodeID {
	key := s.keyBuf[:0]
	for _, g := range s.touched {
		key = append(key, byte(g), byte(uint32(g)>>8), byte(uint32(g)>>16), byte(uint32(g)>>24))
	}
	s.keyBuf = key
	if sched := s.cones.getMerged(key); sched != nil {
		return sched
	}
	seen := make(map[netlist.NodeID]bool)
	var cone []netlist.NodeID
	for _, g := range s.touched {
		if !seen[g] {
			seen[g] = true
			cone = append(cone, g)
		}
	}
	for head := 0; head < len(cone); head++ {
		for _, fo := range s.combFanout[cone[head]] {
			if !seen[fo] {
				seen[fo] = true
				cone = append(cone, fo)
			}
		}
	}
	slices.SortFunc(cone, func(a, b netlist.NodeID) int {
		return int(s.topoPos[a]) - int(s.topoPos[b])
	})
	return s.cones.putMerged(append([]byte(nil), key...), cone)
}

// sweepCone walks a single struck gate's cached cone schedule, stopping
// once the walk passes the furthest position any surviving waveform can
// still reach (maxReach): beyond it every remaining schedule node has
// fault-free fanins.
func (s *Simulator) sweepCone(g netlist.NodeID, values func(netlist.NodeID) bool, res *Result) {
	sched := s.coneSchedule(g)
	maxReach := s.topoPos[g]
	//hot
	for _, id := range sched {
		if s.topoPos[id] > maxReach {
			break
		}
		s.evalNode(id, values, res)
		if len(s.waves[id]) > 0 {
			if mf := s.maxFanoutPos[id]; mf > maxReach {
				maxReach = mf
			}
		}
	}
}

// evalNode (re)evaluates one combinational node of the sweep: if any
// fanin carries a waveform the output response is propagated and
// conditioned; a struck node XORs its own deposit with the response.
func (s *Simulator) evalNode(id netlist.NodeID, values func(netlist.NodeID) bool, res *Result) {
	node := s.nl.Node(id)
	anyIn := false
	for _, f := range node.Fanin {
		if len(s.waves[f]) > 0 {
			anyIn = true
			break
		}
	}
	if anyIn {
		prop := s.propagate(id, values)
		prop = conditionWith(prop, s.delays[id], s.dm.Attenuation, s.dm.MinPulse)
		if s.dirty[id] {
			// Struck gate: its own deposited pulse is combined
			// with whatever arrives through its inputs.
			s.waves[id] = xorIntervals(s.waves[id], prop)
		} else {
			s.waves[id] = append(s.waves[id][:0], prop...)
		}
	}
	if len(s.waves[id]) > 0 {
		res.ActiveGates++
		s.touch(id)
	}
}

// coneSchedule returns the topo-sorted combinational fanout cone of a
// gate (the gate itself included), computing and caching it on first
// use.
func (s *Simulator) coneSchedule(g netlist.NodeID) []netlist.NodeID {
	if sched := s.cones.get(g); sched != nil {
		return sched
	}
	seen := make(map[netlist.NodeID]bool)
	cone := []netlist.NodeID{g}
	seen[g] = true
	for head := 0; head < len(cone); head++ {
		for _, fo := range s.combFanout[cone[head]] {
			if !seen[fo] {
				seen[fo] = true
				cone = append(cone, fo)
			}
		}
	}
	slices.SortFunc(cone, func(a, b netlist.NodeID) int {
		return int(s.topoPos[a]) - int(s.topoPos[b])
	})
	return s.cones.put(g, cone)
}

// latchCheck performs the latching decision per register whose D input
// carries a transient. Clock-gated registers whose enable is low this
// cycle require a much wider transient (direct storage-node upset
// instead of a clocked capture).
func (s *Simulator) latchCheck(values func(netlist.NodeID) bool, res *Result) {
	gf := s.dm.GatedWindowFactor
	if gf < 1 {
		gf = 1
	}
	//hot
	for _, d := range s.touched {
		w := s.waves[d]
		if len(w) == 0 {
			continue
		}
		for _, r := range s.regFanout[d] {
			node := s.nl.Node(r)
			res.ReachedRegs++
			setup, hold := s.dm.Setup, s.dm.Hold
			if node.En != netlist.Invalid && !values(node.En) {
				setup *= gf
				hold *= gf
			}
			winStart := s.dm.ClockPeriod - setup
			winEnd := s.dm.ClockPeriod + hold
			for _, iv := range w {
				if iv.Start <= winStart && iv.End >= winEnd {
					res.FlippedRegs = append(res.FlippedRegs, r) //alloc-ok (result slice, reset per Inject)
					break
				}
			}
		}
	}
}

// propagate computes the fault waveform at a gate's output (before
// delay/attenuation) from its fanin waveforms by sweeping the combined
// event points: within each span between events, every fanin has a
// constant flip state, so the output flip state is one cell evaluation
// against the fault-free values. Cell evaluation is lane-wise bitwise
// (the 64-lane logic simulator runs on the same EvalCell), so up to 64
// spans are evaluated per call: lane k carries span k's input state —
// the fault-free value broadcast, XORed with the span's flip bit. The
// returned slice is scratch owned by the simulator, valid until the
// next propagate call.
func (s *Simulator) propagate(id netlist.NodeID, values func(netlist.NodeID) bool) []Interval {
	node := s.nl.Node(id)
	fi := node.Fanin

	waved, wi := 0, -1
	for j, f := range fi {
		if len(s.waves[f]) > 0 {
			waved++
			wi = j
		}
	}
	if waved == 0 {
		return nil
	}
	var in [8]uint64
	args := in[:]
	if len(fi) > len(in) {
		args = s.argBuf
	}
	args = args[:len(fi)]
	if waved == 1 {
		// Exactly one fanin carries a waveform, so its flip state is
		// the only thing that varies across spans: either it
		// sensitizes the output (every span flips — the output
		// waveform is the fanin's, with touching intervals coalesced)
		// or it doesn't (no output response). One two-lane cell
		// evaluation decides which: lane 0 is the fault-free input
		// state, lane 1 flips the waved fanin.
		for j, f := range fi {
			base := uint64(0)
			if values(f) {
				base = ^uint64(0)
			}
			if j == wi {
				base ^= 2
			}
			args[j] = base
		}
		outw := netlist.EvalCell(node.Type, args)
		out := s.propBuf[:0]
		if (outw^outw>>1)&1 == 1 {
			for _, iv := range s.waves[fi[wi]] {
				out = appendMerged(out, iv)
			}
		}
		s.propBuf = out
		return out
	}

	// Gather event points.
	events := s.events[:0]
	for _, f := range fi {
		for _, iv := range s.waves[f] {
			events = append(events, iv.Start, iv.End)
		}
	}
	s.events = events
	sort.Float64s(events)
	events = dedupFloats(events)

	// The fault-free output needs no evaluation: values is the
	// consistent post-Eval state, so the node's own recorded value is
	// its cell function over the recorded fanin values.
	nominalOut := uint64(0)
	if values(id) {
		nominalOut = ^uint64(0)
	}
	out := s.propBuf[:0]
	spans := len(events) - 1
	// Evaluate within each span [events[k], events[k+1]), 64 at a time.
	//hot
	for chunk := 0; chunk < spans; chunk += 64 {
		n := spans - chunk
		if n > 64 {
			n = 64
		}
		for j, f := range fi {
			base := uint64(0)
			if values(f) {
				base = ^uint64(0)
			}
			if w := s.waves[f]; len(w) > 0 {
				for k := 0; k < n; k++ {
					mid := (events[chunk+k] + events[chunk+k+1]) / 2
					if covered(w, mid) {
						base ^= 1 << uint(k)
					}
				}
			}
			args[j] = base
		}
		flipped := netlist.EvalCell(node.Type, args) ^ nominalOut
		for k := 0; k < n; k++ {
			if flipped>>uint(k)&1 == 1 {
				out = appendMerged(out, Interval{events[chunk+k], events[chunk+k+1]})
			}
		}
	}
	s.propBuf = out
	return out
}

// conditionWith applies gate delay and electrical masking (pulse-width
// attenuation with a minimum propagatable width) to a waveform.
func conditionWith(w []Interval, delay, att, minPulse float64) []Interval {
	out := w[:0]
	for _, iv := range w {
		width := iv.Width() - att
		if width < minPulse {
			continue
		}
		out = append(out, Interval{Start: iv.Start + delay, End: iv.Start + delay + width})
	}
	return out
}

func covered(w []Interval, t float64) bool {
	for _, iv := range w {
		if t >= iv.Start && t < iv.End {
			return true
		}
	}
	return false
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// appendMerged appends iv, coalescing with the previous interval when
// they touch.
func appendMerged(w []Interval, iv Interval) []Interval {
	if n := len(w); n > 0 && w[n-1].End >= iv.Start {
		if iv.End > w[n-1].End {
			w[n-1].End = iv.End
		}
		return w
	}
	return append(w, iv)
}

// xorIntervals returns the symmetric difference of two disjoint sorted
// interval sets: spans covered by exactly one of them.
func xorIntervals(a, b []Interval) []Interval {
	if len(a) == 0 {
		return append([]Interval(nil), b...)
	}
	if len(b) == 0 {
		return append([]Interval(nil), a...)
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	for _, iv := range a {
		edges = append(edges, edge{iv.Start, 1}, edge{iv.End, -1})
	}
	for _, iv := range b {
		edges = append(edges, edge{iv.Start, 2}, edge{iv.End, -2})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	var out []Interval
	inA, inB := 0, 0
	prev := edges[0].t
	for _, e := range edges {
		if e.t > prev && (inA > 0) != (inB > 0) {
			out = appendMerged(out, Interval{prev, e.t})
		}
		switch e.delta {
		case 1:
			inA++
		case -1:
			inA--
		case 2:
			inB++
		case -2:
			inB--
		}
		prev = e.t
	}
	return out
}
