package timingsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// buildWideOr returns a netlist whose OR gate sees `fan` single-interval
// fanin waves when all bufs are struck: `fan` distinct interval ends
// means `fan` spans at the OR — forcing the multi-waved wide propagate
// path (spans > 64, and > 256 for fan > 256 so the K=4 sweep needs
// multiple chunks).
func buildWideOr(t *testing.T, fan int) (*netlist.Netlist, []netlist.NodeID) {
	t.Helper()
	nl := netlist.New(fan + 8)
	a := nl.AddInput("a")
	bufs := make([]netlist.NodeID, fan)
	for i := range bufs {
		bufs[i] = nl.AddGate(netlist.Buf, a)
	}
	or := nl.AddGate(netlist.Or, bufs...)
	nl.AddDFF(or, "cap", false)
	inv := nl.AddGate(netlist.Inv, or)
	nl.AddDFF(inv, "capn", true)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl, bufs
}

// TestPropagateWideManySpans strikes 300 buffers feeding one OR with
// staggered pulse widths, so the OR's span sweep sees ~300 spans and
// must take the wide propagate path at lane widths 4 and 8 (multiple
// chunks at width 4). Results and every node's waveform must be
// bit-identical to the scalar span sweep, and the strike must actually
// flip a register so the check is not vacuous.
func TestPropagateWideManySpans(t *testing.T) {
	const fan = 300
	nl, bufs := buildWideOr(t, fan)
	dm := DefaultDelayModel()
	st := Strike{Gates: bufs, Time: 500, Widths: make([]float64, fan)}
	for i := range st.Widths {
		// Distinct widths: 300 distinct interval ends → ~300 spans at
		// the OR. The longest pulses cross the latch window
		// [ClockPeriod-Setup, ClockPeriod+Hold] = [575, 610].
		st.Widths[i] = 20 + 0.5*float64(i)
	}
	values := func(netlist.NodeID) bool { return false }

	scalar, err := New(nl, dm)
	if err != nil {
		t.Fatal(err)
	}
	ref := scalar.Inject(values, st)
	if len(ref.FlippedRegs) == 0 {
		t.Fatal("strike flipped no register — wide-path equivalence would be vacuous")
	}
	refWaves := make([][]Interval, nl.NumNodes())
	for i := range refWaves {
		refWaves[i] = append([]Interval(nil), scalar.Wave(netlist.NodeID(i))...)
	}

	for _, w := range []int{4, 8} {
		wide, err := New(nl, dm)
		if err != nil {
			t.Fatal(err)
		}
		wide.SetLaneWidth(w)
		got := wide.Inject(values, st)
		if !resultsEqual(got, ref) {
			t.Fatalf("width %d: result %+v, scalar %+v", w, got, ref)
		}
		for i := range refWaves {
			if !wavesEqual(wide.Wave(netlist.NodeID(i)), refWaves[i]) {
				t.Fatalf("width %d: node %d waveform diverges from scalar", w, i)
			}
		}
	}
}

// TestWideLaneMatchesScalarRandom repeats the sparse-vs-reference style
// randomized sweep across lane widths: the same random designs, values,
// and strikes must produce identical results at widths 1, 4, and 8.
// Strikes here hit many gates at once so converging fanout occasionally
// pushes span counts over the wide threshold.
func TestWideLaneMatchesScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dm := DefaultDelayModel()
	for design := 0; design < 2; design++ {
		nl := buildRandomDesign(rng)
		scalar, err := New(nl, dm)
		if err != nil {
			t.Fatal(err)
		}
		w4, err := New(nl, dm)
		if err != nil {
			t.Fatal(err)
		}
		w4.SetLaneWidth(4)
		w8, err := New(nl, dm)
		if err != nil {
			t.Fatal(err)
		}
		w8.SetLaneWidth(8)
		for trial := 0; trial < 150; trial++ {
			values := randomValues(rng, nl.NumNodes())
			st := randomStrike(rng, dm, nl.NumNodes())
			// Widen the strike: many struck gates per trial raise the
			// odds that a reconverging node's event list tops 64 spans.
			for n := 30 + rng.Intn(40); n > 0; n-- {
				st.Gates = append(st.Gates, netlist.NodeID(rng.Intn(nl.NumNodes())))
			}
			if st.Widths != nil {
				for len(st.Widths) < len(st.Gates) {
					st.Widths = append(st.Widths, rng.Float64()*dm.MinPulse*12)
				}
			}
			ref := scalar.Inject(values, st)
			if got := w4.Inject(values, st); !resultsEqual(got, ref) {
				t.Fatalf("design %d trial %d width 4: %+v, scalar %+v", design, trial, got, ref)
			}
			if got := w8.Inject(values, st); !resultsEqual(got, ref) {
				t.Fatalf("design %d trial %d width 8: %+v, scalar %+v", design, trial, got, ref)
			}
			for i := 0; i < nl.NumNodes(); i++ {
				id := netlist.NodeID(i)
				if !wavesEqual(w4.Wave(id), scalar.Wave(id)) || !wavesEqual(w8.Wave(id), scalar.Wave(id)) {
					t.Fatalf("design %d trial %d: node %d waveform diverges", design, trial, id)
				}
			}
		}
	}
}
