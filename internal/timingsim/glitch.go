package timingsim

import (
	"sort"

	"repro/internal/netlist"
)

// GlitchCapture models a clock-glitch injection: for one cycle the
// capture edge arrives at glitchTime instead of ClockPeriod, so
// registers whose data has not settled capture the previous cycle's
// value. prev and cur give every node's fault-free value in the
// previous and in the glitched cycle; the returned registers latch
// stale data (their captured value differs from the fault-free one).
//
// Arrival times use the single-transition timing model: a net that
// changes between the two cycles transitions once, at its longest-path
// delay from the changed sources (registers and primary inputs switch
// at the cycle boundary). Short-path hazards and multiple transitions
// are not modeled. Clock-gated registers whose enable is low do not
// capture at all and therefore cannot be glitched.
func (s *Simulator) GlitchCapture(prev, cur func(netlist.NodeID) bool, glitchTime float64) []netlist.NodeID {
	const unchanged = -1.0
	arrival := make([]float64, s.nl.NumNodes())
	// Sources: registers and inputs switch at time 0 when they differ
	// between cycles.
	for i := 0; i < s.nl.NumNodes(); i++ {
		id := netlist.NodeID(i)
		if s.nl.Node(id).Type.IsCombinational() {
			continue
		}
		if prev(id) != cur(id) {
			arrival[i] = 0
		} else {
			arrival[i] = unchanged
		}
	}
	for _, id := range s.order {
		node := s.nl.Node(id)
		if prev(id) == cur(id) {
			arrival[id] = unchanged
			continue
		}
		latest := 0.0
		for _, f := range node.Fanin {
			if a := arrival[f]; a != unchanged && a > latest {
				latest = a
			}
		}
		arrival[id] = latest + s.Delay(id)
	}

	deadline := glitchTime - s.dm.Setup
	var flipped []netlist.NodeID
	for _, r := range s.nl.Regs() {
		node := s.nl.Node(r)
		if node.En != netlist.Invalid && !cur(node.En) {
			continue // clock-gated off: no capture to glitch
		}
		d := node.Fanin[0]
		if a := arrival[d]; a != unchanged && a > deadline {
			flipped = append(flipped, r)
		}
	}
	sort.Slice(flipped, func(i, j int) bool { return flipped[i] < flipped[j] })
	return flipped
}

// SettleTime returns the longest-path settle time of the netlist under
// the delay model (the minimum safe capture time): the maximum over
// registers of the D-input's longest topological delay plus setup.
func (s *Simulator) SettleTime() float64 {
	depth := make([]float64, s.nl.NumNodes())
	for _, id := range s.order {
		latest := 0.0
		for _, f := range s.nl.Node(id).Fanin {
			if depth[f] > latest {
				latest = depth[f]
			}
		}
		depth[id] = latest + s.Delay(id)
	}
	worst := 0.0
	for _, r := range s.nl.Regs() {
		if d := depth[s.nl.Node(r).Fanin[0]]; d > worst {
			worst = d
		}
	}
	return worst + s.dm.Setup
}
