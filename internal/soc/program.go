package soc

import "fmt"

// Op enumerates the behavioural CPU's instruction set. The core is a
// workload generator, not a victim, so the ISA is deliberately small:
// enough to configure the MPU, run loops of legitimate memory traffic,
// and attempt the marked illegal access the attack targets.
type Op int

// Instruction opcodes.
const (
	OpNop  Op = iota
	OpLdi     // rA <- Imm
	OpMov     // rA <- rB
	OpAdd     // rA <- rA + rB
	OpSub     // rA <- rA - rB
	OpAnd     // rA <- rA & rB
	OpOr      // rA <- rA | rB
	OpXor     // rA <- rA ^ rB
	OpLd      // rA <- mem[rB]   (via MPU)
	OpSt      // mem[rB] <- rA   (via MPU)
	OpCfgw    // MPU config word Imm <- rA (privileged)
	OpDrop    // drop to user mode
	OpBeq     // if rA == rB jump to Imm
	OpBne     // if rA != rB jump to Imm
	OpJmp     // jump to Imm
	OpHalt    // stop the core
)

var opNames = map[Op]string{
	OpNop: "NOP", OpLdi: "LDI", OpMov: "MOV", OpAdd: "ADD", OpSub: "SUB",
	OpAnd: "AND", OpOr: "OR", OpXor: "XOR", OpLd: "LD", OpSt: "ST",
	OpCfgw: "CFGW", OpDrop: "DROP", OpBeq: "BEQ", OpBne: "BNE",
	OpJmp: "JMP", OpHalt: "HALT",
}

// String returns the mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one decoded instruction. Marked tags the security-relevant
// access the attack wants to slip past the MPU (the paper's "malicious
// operation" at target cycle Tt).
type Instr struct {
	Op     Op
	A, B   int
	Imm    uint16
	Marked bool
}

// AccessRange describes a span of user-mode accesses the benchmark
// performs before the marked access. The analytical evaluator uses it to
// check that a faulted MPU configuration does not break the legitimate
// traffic (which would trap and halt the benchmark before the attack).
type AccessRange struct {
	Lo, Hi uint16
	Write  bool
}

// Program is an assembled instruction sequence plus the metadata the
// evaluation needs: where traps land and what the marked access is.
type Program struct {
	Name        string
	Instrs      []Instr
	TrapHandler int
	// IllegalAddr / IllegalWrite describe the marked access; the
	// analytical evaluator reasons about it closed-form.
	IllegalAddr  uint16
	IllegalWrite bool
	// PreAttack lists the user-mode traffic issued before the marked
	// access.
	PreAttack []AccessRange
}

// Asm incrementally assembles a Program with label support.
type Asm struct {
	prog   Program
	labels map[string]int
	fixups []fixup
	sealed bool
}

type fixup struct {
	instr int
	label string
}

// NewAsm starts a program.
func NewAsm(name string) *Asm {
	return &Asm{prog: Program{Name: name, TrapHandler: -1}, labels: make(map[string]int)}
}

func (a *Asm) emit(i Instr) *Asm {
	if a.sealed {
		panic("soc: emit after Build")
	}
	a.prog.Instrs = append(a.prog.Instrs, i)
	return a
}

// Label binds a name to the next instruction's address.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("soc: duplicate label %q", name))
	}
	a.labels[name] = len(a.prog.Instrs)
	return a
}

func (a *Asm) branch(op Op, rA, rB int, label string) *Asm {
	a.fixups = append(a.fixups, fixup{len(a.prog.Instrs), label})
	return a.emit(Instr{Op: op, A: rA, B: rB})
}

// Nop emits a NOP.
func (a *Asm) Nop() *Asm { return a.emit(Instr{Op: OpNop}) }

// Ldi emits rA <- imm.
func (a *Asm) Ldi(rA int, imm uint16) *Asm { return a.emit(Instr{Op: OpLdi, A: rA, Imm: imm}) }

// Mov emits rA <- rB.
func (a *Asm) Mov(rA, rB int) *Asm { return a.emit(Instr{Op: OpMov, A: rA, B: rB}) }

// Add emits rA <- rA + rB.
func (a *Asm) Add(rA, rB int) *Asm { return a.emit(Instr{Op: OpAdd, A: rA, B: rB}) }

// Sub emits rA <- rA - rB.
func (a *Asm) Sub(rA, rB int) *Asm { return a.emit(Instr{Op: OpSub, A: rA, B: rB}) }

// And emits rA <- rA & rB.
func (a *Asm) And(rA, rB int) *Asm { return a.emit(Instr{Op: OpAnd, A: rA, B: rB}) }

// Or emits rA <- rA | rB.
func (a *Asm) Or(rA, rB int) *Asm { return a.emit(Instr{Op: OpOr, A: rA, B: rB}) }

// Xor emits rA <- rA ^ rB.
func (a *Asm) Xor(rA, rB int) *Asm { return a.emit(Instr{Op: OpXor, A: rA, B: rB}) }

// Ld emits rA <- mem[rB].
func (a *Asm) Ld(rA, rB int) *Asm { return a.emit(Instr{Op: OpLd, A: rA, B: rB}) }

// St emits mem[rB] <- rA.
func (a *Asm) St(rA, rB int) *Asm { return a.emit(Instr{Op: OpSt, A: rA, B: rB}) }

// LdMarked emits the marked illegal load the attack targets.
func (a *Asm) LdMarked(rA, rB int) *Asm {
	return a.emit(Instr{Op: OpLd, A: rA, B: rB, Marked: true})
}

// StMarked emits the marked illegal store the attack targets.
func (a *Asm) StMarked(rA, rB int) *Asm {
	return a.emit(Instr{Op: OpSt, A: rA, B: rB, Marked: true})
}

// Cfgw emits an MPU config write: word idx <- rA.
func (a *Asm) Cfgw(idx int, rA int) *Asm {
	return a.emit(Instr{Op: OpCfgw, A: rA, Imm: uint16(idx)})
}

// Drop emits the privilege drop.
func (a *Asm) Drop() *Asm { return a.emit(Instr{Op: OpDrop}) }

// Beq emits a branch to label when rA == rB.
func (a *Asm) Beq(rA, rB int, label string) *Asm { return a.branch(OpBeq, rA, rB, label) }

// Bne emits a branch to label when rA != rB.
func (a *Asm) Bne(rA, rB int, label string) *Asm { return a.branch(OpBne, rA, rB, label) }

// Jmp emits an unconditional jump to label.
func (a *Asm) Jmp(label string) *Asm { return a.branch(OpJmp, 0, 0, label) }

// Halt emits HALT.
func (a *Asm) Halt() *Asm { return a.emit(Instr{Op: OpHalt}) }

// TrapHandler declares that the trap vector is the label's address.
func (a *Asm) TrapHandler(label string) *Asm {
	a.fixups = append(a.fixups, fixup{-1, label})
	return a
}

// Illegal records the marked access metadata for the analytical
// evaluator.
func (a *Asm) Illegal(addr uint16, write bool) *Asm {
	a.prog.IllegalAddr = addr
	a.prog.IllegalWrite = write
	return a
}

// PreAttack records a user-mode access range the benchmark exercises
// before the marked access.
func (a *Asm) PreAttack(lo, hi uint16, write bool) *Asm {
	a.prog.PreAttack = append(a.prog.PreAttack, AccessRange{Lo: lo, Hi: hi, Write: write})
	return a
}

// Build resolves labels and returns the program.
func (a *Asm) Build() (*Program, error) {
	if a.sealed {
		return nil, fmt.Errorf("soc: program %q already built", a.prog.Name)
	}
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("soc: undefined label %q in %q", f.label, a.prog.Name)
		}
		if f.instr < 0 {
			a.prog.TrapHandler = target
		} else {
			a.prog.Instrs[f.instr].Imm = uint16(target)
		}
	}
	if a.prog.TrapHandler < 0 {
		return nil, fmt.Errorf("soc: program %q has no trap handler", a.prog.Name)
	}
	a.sealed = true
	p := a.prog
	return &p, nil
}

// MustBuild is Build that panics on error; benchmark programs are
// compile-time constants, so failures are programming errors.
func (a *Asm) MustBuild() *Program {
	p, err := a.Build()
	if err != nil {
		panic(err)
	}
	return p
}
