package soc

import (
	"testing"

	"repro/internal/netlist"
)

func defaultWrite(t *testing.T) *SoC {
	t.Helper()
	cfg := DefaultConfig()
	s, err := New(cfg, IllegalWriteProgram(20, cfg.DMABase, cfg.DMALimit))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultRead(t *testing.T) *SoC {
	t.Helper()
	cfg := DefaultConfig()
	s, err := New(cfg, IllegalReadProgram(20, cfg.DMABase, cfg.DMALimit))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMPUBuilds(t *testing.T) {
	m, err := BuildMPU(DefaultMPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := netlist.ComputeStats(m.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registers < 150 || st.Registers > 250 {
		t.Errorf("register count %d outside expected range", st.Registers)
	}
	if st.CombGates < 500 {
		t.Errorf("gate count %d suspiciously small", st.CombGates)
	}
	if len(m.RespondingSignals) == 0 {
		t.Fatal("no responding signals")
	}
	for _, rs := range m.RespondingSignals {
		if m.Netlist.Node(rs).Type != netlist.DFF {
			t.Errorf("responding signal %d is not a register", rs)
		}
	}
}

func TestMPURejectsBadConfig(t *testing.T) {
	if _, err := BuildMPU(MPUConfig{Regions: 0, AddrBits: 16}); err == nil {
		t.Error("0 regions accepted")
	}
	if _, err := BuildMPU(MPUConfig{Regions: 4, AddrBits: 40}); err == nil {
		t.Error("40 address bits accepted")
	}
}

func TestGoldenIllegalWriteTraps(t *testing.T) {
	s := defaultWrite(t)
	s.Run(s.Cfg.MaxCycles)
	if !s.Done() {
		t.Fatalf("program did not halt in %d cycles (pc=%d)", s.Cycle(), s.PC())
	}
	if !s.Marked.Resolved {
		t.Fatal("marked access never resolved")
	}
	if s.Marked.Committed || !s.Marked.Trapped {
		t.Fatalf("golden outcome = %+v, want trapped & not committed", s.Marked)
	}
	if s.TrapCount != 1 {
		t.Errorf("TrapCount = %d, want 1", s.TrapCount)
	}
	if s.Mem[SecretAddr] != SecretValue {
		t.Errorf("secret corrupted in golden run: %#x", s.Mem[SecretAddr])
	}
	if s.AttackSucceeded() {
		t.Error("golden run reported attack success")
	}
	if s.Marked.DecisionCycle != s.Marked.IssueCycle+1 || s.Marked.RespCycle != s.Marked.IssueCycle+2 {
		t.Errorf("marked cycles inconsistent: %+v", s.Marked)
	}
}

func TestGoldenIllegalReadTraps(t *testing.T) {
	s := defaultRead(t)
	s.Run(s.Cfg.MaxCycles)
	if !s.Done() || !s.Marked.Resolved {
		t.Fatal("run incomplete")
	}
	if s.Marked.Committed || !s.Marked.Trapped {
		t.Fatalf("golden outcome = %+v", s.Marked)
	}
	// The secret must not have been exfiltrated.
	if s.Mem[UserBase+9] == SecretValue {
		t.Error("secret leaked in golden run")
	}
}

func TestLegitimateTrafficGranted(t *testing.T) {
	s := defaultWrite(t)
	s.Run(s.Cfg.MaxCycles)
	// The work loop wrote 0x1111-derived values into the user region.
	if s.Mem[UserBase] == 0 {
		t.Error("legitimate store did not commit")
	}
	if s.DMAViol != 0 {
		t.Errorf("DMA traffic violated %d times", s.DMAViol)
	}
	// Privileged seeding of the secret succeeded.
	if s.Mem[SecretAddr] != SecretValue {
		t.Errorf("privileged store blocked: %#x", s.Mem[SecretAddr])
	}
}

func TestAccessCounterCounts(t *testing.T) {
	s := defaultWrite(t)
	s.Run(s.Cfg.MaxCycles)
	cnt := s.Sim.ReadWord(s.MPU.Groups["access_cnt"])
	if cnt == 0 {
		t.Error("access counter never advanced")
	}
}

func TestDMAIssuesTraffic(t *testing.T) {
	cfg := DefaultConfig()
	withDMA, _ := New(cfg, IllegalWriteProgram(20, cfg.DMABase, cfg.DMALimit))
	withDMA.Run(cfg.MaxCycles)
	cntDMA := withDMA.Sim.ReadWord(withDMA.MPU.Groups["access_cnt"])

	cfg2 := cfg
	cfg2.DMAEnabled = false
	noDMA, _ := New(cfg2, IllegalWriteProgram(20, cfg.DMABase, cfg.DMALimit))
	noDMA.Run(cfg2.MaxCycles)
	cntNo := noDMA.Sim.ReadWord(noDMA.MPU.Groups["access_cnt"])
	if cntDMA <= cntNo {
		t.Errorf("DMA added no accesses: %d vs %d", cntDMA, cntNo)
	}
}

func TestCheckpointRestoreDeterministic(t *testing.T) {
	s := defaultWrite(t)
	for i := 0; i < 40; i++ {
		s.Step()
	}
	cp := s.Snapshot()
	s.Run(s.Cfg.MaxCycles)
	wantMarked := s.Marked
	wantTraps := s.TrapCount
	wantMem := append([]uint16(nil), s.Mem...)
	wantCycle := s.Cycle()

	s.Restore(cp)
	if s.Cycle() != 40 {
		t.Fatalf("restored cycle = %d", s.Cycle())
	}
	s.Run(s.Cfg.MaxCycles)
	if s.Marked != wantMarked || s.TrapCount != wantTraps || s.Cycle() != wantCycle {
		t.Fatalf("replay diverged: %+v vs %+v", s.Marked, wantMarked)
	}
	for i := range wantMem {
		if s.Mem[i] != wantMem[i] {
			t.Fatalf("memory diverged at %#x", i)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := defaultWrite(t)
	for i := 0; i < 10; i++ {
		s.Step()
	}
	cp := s.Snapshot()
	memBefore := cp.Mem[UserBase]
	s.Run(s.Cfg.MaxCycles)
	if cp.Mem[UserBase] != memBefore {
		t.Error("snapshot shares memory with live SoC")
	}
}

func TestPermFaultBypassesMPU(t *testing.T) {
	// Flipping the user-write permission bit of the secret region right
	// before the marked store's decision cycle must let the attack
	// through: this is the fundamental vulnerability the paper's SSF
	// quantifies.
	s := defaultWrite(t)
	for !s.Done() && s.Marked.IssueCycle == 0 {
		s.Step()
	}
	if s.Done() {
		t.Fatal("marked access never issued")
	}
	permBits := s.MPU.Groups["cfg_perm1"]
	s.FlipRegsNow([]netlist.NodeID{permBits[1]}) // user-write bit
	s.Run(s.Cfg.MaxCycles)
	if !s.AttackSucceeded() {
		t.Fatalf("perm fault did not bypass MPU: %+v", s.Marked)
	}
	if s.Mem[SecretAddr] != AttackValue {
		t.Errorf("secret not overwritten: %#x", s.Mem[SecretAddr])
	}
	if s.TrapCount != 0 {
		t.Errorf("trap fired despite bypass: %d", s.TrapCount)
	}
}

func TestAddrAliasFaultLeaksSecret(t *testing.T) {
	// Flipping bit 8 of the MPU's captured address (0x210 -> 0x310)
	// makes the check see the user-readable DMA region while the bus
	// still reads the secret: the read attack leaks SecretValue.
	s := defaultRead(t)
	for !s.Done() && s.Marked.IssueCycle == 0 {
		s.Step()
	}
	addrBits := s.MPU.Groups["addr_r"]
	s.FlipRegsNow([]netlist.NodeID{addrBits[8]})
	s.Run(s.Cfg.MaxCycles)
	if !s.AttackSucceeded() {
		t.Fatalf("alias fault did not bypass MPU: %+v", s.Marked)
	}
	if s.Mem[UserBase+9] != SecretValue {
		t.Errorf("secret not exfiltrated: %#x", s.Mem[UserBase+9])
	}
}

func TestValidFaultCausesSilentDenial(t *testing.T) {
	// Flipping valid_r kills the request: no grant, no violation —
	// the attack fails without a trap.
	s := defaultWrite(t)
	for !s.Done() && s.Marked.IssueCycle == 0 {
		s.Step()
	}
	s.FlipRegsNow(s.MPU.Groups["valid_r"])
	s.Run(s.Cfg.MaxCycles)
	if !s.Marked.Resolved {
		t.Fatal("marked access unresolved")
	}
	if s.Marked.Committed || s.Marked.Trapped {
		t.Fatalf("outcome = %+v, want silent denial", s.Marked)
	}
	if s.AttackSucceeded() {
		t.Error("silent denial misreported as success")
	}
}

func TestViolRegFaultSuppressesTrapOnly(t *testing.T) {
	// Flip viol_r after the decision latched: the trap is suppressed
	// but grant stays low, so the write still does not commit.
	s := defaultWrite(t)
	for !s.Done() && s.Marked.IssueCycle == 0 {
		s.Step()
	}
	s.Step() // decision cycle: viol_r latches at its end
	s.FlipRegsNow(s.MPU.Groups["viol_r"])
	s.Run(s.Cfg.MaxCycles)
	if s.Marked.Trapped {
		t.Fatal("trap fired despite suppressed viol_r")
	}
	if s.Marked.Committed || s.AttackSucceeded() {
		t.Fatal("suppressing viol_r alone should not commit the write")
	}
	if s.TrapCount != 0 {
		t.Errorf("TrapCount = %d", s.TrapCount)
	}
}

func TestSyntheticProgramTogglesViolations(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg, SyntheticProgram(cfg.DMABase, cfg.DMALimit))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(800)
	if s.Done() {
		t.Fatal("synthetic program halted unexpectedly")
	}
	if s.TrapCount < 2 {
		t.Errorf("synthetic program trapped only %d times", s.TrapCount)
	}
	if s.Mem[UserBase] == 0 {
		t.Error("synthetic program produced no stores")
	}
}

func TestLockdownBlocksReconfig(t *testing.T) {
	a := NewAsm("lockdown-test")
	b0, _, _ := RegionCfgWords(0)
	a.Ldi(0, 0x42)
	a.Cfgw(b0, 0) // base0 <- 0x42
	a.Ldi(0, 1)
	a.Cfgw(CfgLockdown, 0) // lockdown <- 1
	a.Ldi(0, 0x99)
	a.Cfgw(b0, 0) // must be ignored
	a.Halt()
	a.Label("trap")
	a.Halt()
	a.TrapHandler("trap")
	prog := a.MustBuild()
	cfg := DefaultConfig()
	cfg.DMAEnabled = false
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if got := s.Sim.ReadWord(s.MPU.Groups["cfg_base0"]); got != 0x42 {
		t.Errorf("cfg_base0 = %#x, want 0x42 (lockdown bypassed?)", got)
	}
	if got := s.Sim.ReadWord(s.MPU.Groups["lockdown"]); got != 1 {
		t.Errorf("lockdown = %d", got)
	}
}

func TestUnprivilegedCfgwIgnored(t *testing.T) {
	a := NewAsm("unpriv-cfgw")
	b0, _, _ := RegionCfgWords(0)
	a.Ldi(0, 0x42)
	a.Cfgw(b0, 0)
	a.Drop()
	a.Ldi(0, 0x99)
	a.Cfgw(b0, 0) // user mode: ignored
	a.Halt()
	a.Label("trap")
	a.Halt()
	a.TrapHandler("trap")
	cfg := DefaultConfig()
	cfg.DMAEnabled = false
	s, err := New(cfg, a.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if got := s.Sim.ReadWord(s.MPU.Groups["cfg_base0"]); got != 0x42 {
		t.Errorf("cfg_base0 = %#x, want 0x42", got)
	}
}

func TestConfigRegClassification(t *testing.T) {
	m, _ := BuildMPU(DefaultMPUConfig())
	if !m.IsConfigReg(m.Groups["cfg_base0"][0]) {
		t.Error("cfg_base0 not recognized as config reg")
	}
	if !m.IsConfigReg(m.Groups["lockdown"][0]) {
		t.Error("lockdown not recognized as config reg")
	}
	if m.IsConfigReg(m.Groups["addr_r"][0]) {
		t.Error("addr_r misclassified as config reg")
	}
	names := m.ConfigRegNames()
	if len(names) != 3*m.Config.Regions+1 {
		t.Errorf("ConfigRegNames = %v", names)
	}
}

func TestAsmErrors(t *testing.T) {
	a := NewAsm("bad")
	a.Jmp("nowhere")
	if _, err := a.Build(); err == nil {
		t.Error("undefined label accepted")
	}
	a2 := NewAsm("no-trap")
	a2.Halt()
	if _, err := a2.Build(); err == nil {
		t.Error("missing trap handler accepted")
	}
	a3 := NewAsm("dup")
	a3.Label("x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate label should panic")
			}
		}()
		a3.Label("x")
	}()
}

func TestAsmBuildSealsProgram(t *testing.T) {
	a := NewAsm("seal")
	a.Label("trap").Halt().TrapHandler("trap")
	if _, err := a.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Build(); err == nil {
		t.Error("second Build accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("emit after Build should panic")
		}
	}()
	a.Nop()
}

func TestOpString(t *testing.T) {
	if OpLd.String() != "LD" || OpCfgw.String() != "CFGW" {
		t.Error("mnemonics wrong")
	}
	if Op(99).String() == "" {
		t.Error("unknown op should format")
	}
}

func TestRunStopsAtMaxCycles(t *testing.T) {
	cfg := DefaultConfig()
	s, _ := New(cfg, SyntheticProgram(cfg.DMABase, cfg.DMALimit))
	n := s.Run(50)
	if n != 50 {
		t.Errorf("Run returned %d, want 50", n)
	}
}

func TestWithMPUValidation(t *testing.T) {
	m, _ := BuildMPU(DefaultMPUConfig())
	if _, err := WithMPU(Config{MemWords: 0}, SyntheticProgram(0x300, 0x33F), m); err == nil {
		t.Error("MemWords=0 accepted")
	}
	if _, err := WithMPU(DefaultConfig(), nil, m); err == nil {
		t.Error("nil program accepted")
	}
}

func TestDualRailMPUFunctionallyEquivalent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MPU.DualRail = true
	s, err := New(cfg, IllegalWriteProgram(20, cfg.DMABase, cfg.DMALimit))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(s.Cfg.MaxCycles)
	if !s.Done() || !s.Marked.Trapped || s.Marked.Committed {
		t.Fatalf("dual-rail golden run wrong: %+v", s.Marked)
	}
	if s.TrapCount != 1 || s.Mem[UserBase] == 0 {
		t.Error("dual-rail MPU broke legitimate behaviour")
	}
}

func TestDualRailCostsArea(t *testing.T) {
	base, err := BuildMPU(DefaultMPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMPUConfig()
	cfg.DualRail = true
	dual, err := BuildMPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := netlist.DefaultAreaModel()
	ab, ad := m.TotalArea(base.Netlist), m.TotalArea(dual.Netlist)
	if ad <= ab*1.2 {
		t.Errorf("dual-rail area %v vs base %v: expected substantial overhead", ad, ab)
	}
	// Register count unchanged (storage is not duplicated).
	if len(dual.Netlist.Regs()) != len(base.Netlist.Regs()) {
		t.Error("dual-rail duplicated registers")
	}
	if _, ok := dual.Netlist.FindNode("legal_b"); !ok {
		t.Error("second rail not present")
	}
}

func TestDualRailSingleRailFlipFailsSecure(t *testing.T) {
	// Force one rail to disagree during the marked decision: the
	// access must be denied (viol), not granted.
	cfg := DefaultConfig()
	cfg.MPU.DualRail = true
	s, err := New(cfg, IllegalWriteProgram(20, cfg.DMABase, cfg.DMALimit))
	if err != nil {
		t.Fatal(err)
	}
	// A legitimate store with rail A's output forced high would be
	// granted in a single-rail design; with dual rail, forcing rail A
	// low on a LEGIT access must deny it. Use the legal gates
	// directly: run until a legit op is in flight, then check that
	// grant requires both rails.
	legalA, _ := s.MPU.Netlist.FindNode("legal")
	legalB, _ := s.MPU.Netlist.FindNode("legal_b")
	agree := 0
	for !s.Done() && s.Cycle() < 400 {
		s.Step()
		s.Sim.Eval()
		if s.Sim.Bool(legalA) != s.Sim.Bool(legalB) {
			t.Fatalf("rails disagree in fault-free run at cycle %d", s.Cycle())
		}
		agree++
	}
	if agree == 0 {
		t.Fatal("no cycles observed")
	}
}
