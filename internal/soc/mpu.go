// Package soc implements SECP16, the synthetic system-on-chip the
// framework is evaluated on. It substitutes for the commercial processor
// of the paper's experiments: a behavioural 16-bit CPU core, memory, and
// a DMA peripheral generate bus traffic, while the security-critical
// block — the memory protection unit (MPU) — is fully elaborated to a
// gate-level netlist through internal/hdl. The MPU is the part the paper
// itself simulates at gate level ("a sub-block of gates of around 1/8 of
// MPU"), so the cross-level flow is exercised exactly where the paper
// exercises it.
package soc

// The default MPU ships with a generated straight-line evaluator
// (mpu_evalgen.go) keyed by its compiled plan hash; regenerate it
// whenever the MPU netlist or the logicsim compiler changes.
//go:generate go run repro/cmd/gnlgen -builtin -o mpu_evalgen.go -pkg soc -prefix mpuGen

import (
	"fmt"

	"repro/internal/hdl"
	"repro/internal/netlist"
)

// MPUConfig sizes the protection unit.
type MPUConfig struct {
	// Regions is the number of protection regions (default 4).
	Regions int
	// AddrBits is the bus address width (default 16).
	AddrBits int
	// DualRail duplicates the permission-check logic: the access is
	// granted only when both independent copies agree it is legal,
	// and flagged as a violation otherwise. A transient that upsets
	// a single rail then fails secure (denial) instead of bypassing
	// the policy — a classic logic-duplication countermeasure whose
	// cost/benefit the framework can quantify. The configuration
	// store is NOT duplicated; register SEUs are out of this
	// countermeasure's scope.
	DualRail bool
}

// DefaultMPUConfig returns the configuration used by all paper
// experiments: 4 regions over a 16-bit address space.
func DefaultMPUConfig() MPUConfig { return MPUConfig{Regions: 4, AddrBits: 16} }

// Config-port word indices (cfg_addr values). Region i occupies words
// 3i..3i+2 as base/limit/perm; the two top words are control.
const (
	// CfgWordsPerRegion is the stride of a region's config block.
	CfgWordsPerRegion = 3
	// CfgClearViol is the cfg_addr that clears the sticky violation
	// state (any write).
	CfgClearViol = 14
	// CfgLockdown is the cfg_addr that loads the lockdown bit from
	// wdata bit 0; once set, region config writes are ignored.
	CfgLockdown = 15
)

// Permission bits stored in each region's perm word.
const (
	PermUserRead  = 1 << 0 // user-mode reads allowed
	PermUserWrite = 1 << 1 // user-mode writes allowed
	PermEnable    = 1 << 2 // region participates in matching
)

// permBits is the width of the perm config word.
const permBits = 3

// MPU bundles the elaborated netlist with the node ids of its ports and
// register groups, so the rest of the framework can drive and observe it
// through a logic simulator.
type MPU struct {
	Config  MPUConfig
	Netlist *netlist.Netlist
	// Groups maps register-word names (e.g. "cfg_base0", "addr_r") to
	// their DFF nodes, LSB first.
	Groups map[string][]netlist.NodeID

	// Request port (inputs).
	InValid []netlist.NodeID // 1 bit: a bus access is presented
	InWrite []netlist.NodeID // 1 bit: access is a write
	InPriv  []netlist.NodeID // 1 bit: requester is privileged
	InAddr  []netlist.NodeID // AddrBits

	// Config port (inputs).
	InCfgWe    []netlist.NodeID // 1 bit
	InCfgPriv  []netlist.NodeID // 1 bit: config writer is privileged
	InCfgAddr  []netlist.NodeID // 4 bits
	InCfgWData []netlist.NodeID // AddrBits

	// Response port (registered outputs; valid one cycle after the
	// request).
	OutGrant []netlist.NodeID // 1 bit: access may commit
	OutViol  []netlist.NodeID // 1 bit: the responding signal
	OutIrq   []netlist.NodeID // 1 bit: sticky violation interrupt

	// RespondingSignals lists the register nodes the paper's
	// pre-characterization starts from: the violation response
	// register and the sticky interrupt state.
	RespondingSignals []netlist.NodeID

	// CriticalGate is the single combinational point of failure: the
	// "legal" gate whose output feeds both the grant and the
	// violation decision. A transient here flips both coherently.
	CriticalGate netlist.NodeID
}

// RegionCfgWords returns the (base, limit, perm) cfg_addr triplet of a
// region.
func RegionCfgWords(region int) (base, limit, perm int) {
	return region * CfgWordsPerRegion, region*CfgWordsPerRegion + 1, region*CfgWordsPerRegion + 2
}

// BuildMPU elaborates the protection unit to gates.
//
// Architecture (all registers are DFF bits in the netlist):
//
//	stage 0 (request capture):  addr_r, write_r, priv_r, valid_r
//	config store:               cfg_base_i, cfg_limit_i, cfg_perm_i,
//	                            lockdown, plus an access counter
//	stage 1 (decision):         grant_r, viol_r, viol_addr_r,
//	                            viol_pending, fsm_state
//
// The combinational core checks, per region: enable AND base <= addr AND
// addr <= limit AND (read ? user_read : user_write); a privileged access
// is always legal. viol_r — the responding signal — rises for exactly
// one cycle on an illegal user access.
func BuildMPU(cfg MPUConfig) (*MPU, error) {
	if cfg.Regions < 1 || cfg.Regions > 4 {
		return nil, fmt.Errorf("soc: %d regions unsupported (1..4)", cfg.Regions)
	}
	if cfg.AddrBits < 4 || cfg.AddrBits > 16 {
		return nil, fmt.Errorf("soc: %d address bits unsupported (4..16)", cfg.AddrBits)
	}
	b := hdl.NewBuilder()
	ab := cfg.AddrBits

	// --- Ports ---------------------------------------------------------
	valid := b.Input("req_valid", 1)
	write := b.Input("req_write", 1)
	priv := b.Input("req_priv", 1)
	addr := b.Input("req_addr", ab)
	cfgWe := b.Input("cfg_we", 1)
	cfgPriv := b.Input("cfg_priv", 1)
	cfgAddr := b.Input("cfg_addr", 4)
	cfgWData := b.Input("cfg_wdata", ab)

	// --- Stage 0: request capture registers ----------------------------
	// Bus signals pass through isolation buffers before capture (the
	// pad/bus-interface cells of a real block) — part of the
	// fault-injection surface.
	addrR := b.Reg("addr_r", ab, 0)
	addrR.SetNext(b.Buf(addr))
	writeR := b.Reg("write_r", 1, 0)
	writeR.SetNext(b.Buf(write))
	privR := b.Reg("priv_r", 1, 0)
	privR.SetNext(b.Buf(priv))
	validR := b.Reg("valid_r", 1, 0)
	validR.SetNext(b.Buf(valid))

	// --- Config store ---------------------------------------------------
	lockdown := b.Reg("lockdown", 1, 0)
	cfgSel := b.Decoder(cfgAddr) // one-hot over 16 cfg words
	// A region config write requires privilege and no lockdown.
	cfgWriteOK := b.And(cfgWe, cfgPriv, b.Not(lockdown.Q))
	// Control words require privilege but ignore lockdown (the clear
	// path must stay usable for the trap handler).
	ctrlWriteOK := b.And(cfgWe, cfgPriv)

	type regionRegs struct {
		base, limit, perm *hdl.Reg
	}
	regions := make([]regionRegs, cfg.Regions)
	for i := 0; i < cfg.Regions; i++ {
		wb, wl, wp := RegionCfgWords(i)
		rr := regionRegs{
			base:  b.Reg(fmt.Sprintf("cfg_base%d", i), ab, 0),
			limit: b.Reg(fmt.Sprintf("cfg_limit%d", i), ab, 0),
			perm:  b.Reg(fmt.Sprintf("cfg_perm%d", i), permBits, 0),
		}
		rr.base.SetNextEn(b.And(cfgWriteOK, cfgSel.Bit(wb)), cfgWData)
		rr.limit.SetNextEn(b.And(cfgWriteOK, cfgSel.Bit(wl)), cfgWData)
		rr.perm.SetNextEn(b.And(cfgWriteOK, cfgSel.Bit(wp)), cfgWData.Bits(permBits-1, 0))
		regions[i] = rr
	}
	lockdown.SetNextEn(b.And(ctrlWriteOK, cfgSel.Bit(CfgLockdown)), cfgWData.Bits(0, 0))
	clearViol := b.And(ctrlWriteOK, cfgSel.Bit(CfgClearViol))

	// --- Combinational permission check ---------------------------------
	// checkRail builds one full copy of the permission check; dual-rail
	// MPUs instantiate it twice with independent gates.
	checkRail := func() hdl.Signal {
		var allows []hdl.Signal
		for i := 0; i < cfg.Regions; i++ {
			rr := regions[i]
			enable := rr.perm.Q.Bit(2)
			uread := rr.perm.Q.Bit(0)
			uwrite := rr.perm.Q.Bit(1)
			inRange := b.And(b.Geu(addrR.Q, rr.base.Q), b.Leu(addrR.Q, rr.limit.Q))
			match := b.And(enable, inRange)
			permOK := b.Mux(writeR.Q, uread, uwrite)
			allows = append(allows, b.And(match, permOK))
		}
		anyAllow := allows[0]
		if len(allows) > 1 {
			anyAllow = b.OrAll(hdl.Concat(allows...))
		}
		return b.Or(privR.Q, anyAllow)
	}
	legal := checkRail()
	nl0 := b.Netlist()
	nl0.SetName(legal[0], "legal")
	agreed := legal
	if cfg.DualRail {
		railB := checkRail()
		nl0.SetName(railB[0], "legal_b")
		agreed = b.And(legal, railB)
	}
	grantNext := b.And(validR.Q, agreed)
	violNext := b.And(validR.Q, b.Not(agreed))

	// --- Stage 1: decision registers ------------------------------------
	grantR := b.Reg("grant_r", 1, 0)
	grantR.SetNext(grantNext)
	violR := b.Reg("viol_r", 1, 0)
	violR.SetNext(violNext)
	violAddrR := b.Reg("viol_addr_r", ab, 0)
	violAddrR.SetNextEn(violNext, addrR.Q)
	violPending := b.Reg("viol_pending", 1, 0)
	violPending.SetNext(b.And(b.Or(violPending.Q, violNext), b.Not(clearViol)))

	// Violation FSM: IDLE(00) -> TRIG(01) on violation, TRIG -> WAIT(10),
	// WAIT -> IDLE on clear. Exists to give the design a security state
	// machine whose illegal transitions an attack can target.
	fsm := b.Reg("fsm_state", 2, 0)
	isIdle := b.Nor(fsm.Q.Bit(0), fsm.Q.Bit(1))
	isTrig := b.And(fsm.Q.Bit(0), b.Not(fsm.Q.Bit(1)))
	isWait := b.And(fsm.Q.Bit(1), b.Not(fsm.Q.Bit(0)))
	nextBit0 := b.And(isIdle, violNext)                       // enter TRIG
	nextBit1 := b.Or(isTrig, b.And(isWait, b.Not(clearViol))) // hold WAIT
	fsm.SetNext(hdl.Concat(nextBit0, nextBit1))

	// Debug/telemetry unit: bus-activity counters and trace registers
	// of the kind every commercial block carries. None of it can
	// influence the security decision — errors injected here persist
	// (or sit until overwritten) without propagating: a memory-type
	// register population by construction.
	accessCnt := b.Reg("access_cnt", 16, 0)
	accessCnt.SetNextEn(validR.Q, b.Inc(accessCnt.Q))
	// Last-seen bus address, captured through its own isolation
	// buffers every cycle (debug trace port).
	dbgAddr := b.Reg("dbg_addr", ab, 0)
	dbgAddr.SetNext(b.Buf(addr))
	// Running bus signature: accumulates the observed address stream.
	dbgSig := b.Reg("dbg_sig", ab, 0)
	dbgSig.SetNext(b.Add(dbgSig.Q, b.Buf(addr)))

	irq := b.Or(violR.Q, b.Not(isIdle))

	// --- Outputs ---------------------------------------------------------
	b.Output("grant", grantR.Q)
	b.Output("viol", violR.Q)
	b.Output("irq", irq)
	b.Output("viol_addr", violAddrR.Q)

	nl, err := b.Build()
	if err != nil {
		return nil, err
	}
	m := &MPU{
		Config:  cfg,
		Netlist: nl,
		Groups:  b.RegGroups(),

		InValid: valid, InWrite: write, InPriv: priv, InAddr: addr,
		InCfgWe: cfgWe, InCfgPriv: cfgPriv, InCfgAddr: cfgAddr, InCfgWData: cfgWData,
		OutGrant: grantR.Q, OutViol: violR.Q, OutIrq: irq,
	}
	m.RespondingSignals = append(m.RespondingSignals, violR.Q[0])
	m.RespondingSignals = append(m.RespondingSignals, fsm.Q[0], fsm.Q[1])
	m.CriticalGate = legal[0]
	return m, nil
}

// ConfigRegNames returns the names of the MPU's configuration register
// words (region base/limit/perm plus lockdown): the registers whose
// content is defined by system configuration rather than by in-flight
// computation. The analytical evaluator treats faults confined to these
// words closed-form.
func (m *MPU) ConfigRegNames() []string {
	var names []string
	for i := 0; i < m.Config.Regions; i++ {
		names = append(names,
			fmt.Sprintf("cfg_base%d", i),
			fmt.Sprintf("cfg_limit%d", i),
			fmt.Sprintf("cfg_perm%d", i))
	}
	names = append(names, "lockdown")
	return names
}

// IsConfigReg reports whether a DFF node belongs to the configuration
// register population.
func (m *MPU) IsConfigReg(id netlist.NodeID) bool {
	for _, name := range m.ConfigRegNames() {
		for _, bit := range m.Groups[name] {
			if bit == id {
				return true
			}
		}
	}
	return false
}
