package soc

// Benchmark programs. The memory map shared by all of them:
//
//	region 0: 0x100..0x1FF  user data, user RW
//	region 1: 0x200..0x2FF  secrets, privileged only
//	region 2: 0x300..0x33F  DMA buffer, user read-only
//	region 3: disabled
//
// Every benchmark starts privileged, configures the MPU, seeds the
// secret region, drops privilege, runs legitimate traffic, and (for the
// attack benchmarks) issues one marked illegal access into region 1 —
// the paper's "malicious operation" whose MPU decision cycle is the
// target cycle Tt.

// Memory-map constants.
const (
	UserBase    = 0x100
	UserLimit   = 0x1FF
	SecretBase  = 0x200
	SecretLimit = 0x2FF
	// SecretAddr is the word the marked access targets.
	SecretAddr = 0x210
	// SecretValue is seeded at SecretAddr while privileged.
	SecretValue = 0x5EC1
	// AttackValue is what the illegal write tries to plant.
	AttackValue = 0xA77A
)

// emitSetup writes the common MPU configuration and seeds the secret,
// using r0 as scratch and r1 as address register.
func emitSetup(a *Asm, dmaBase, dmaLimit uint16) {
	type cfgWrite struct {
		word int
		val  uint16
	}
	b0, l0, p0 := RegionCfgWords(0)
	b1, l1, p1 := RegionCfgWords(1)
	b2, l2, p2 := RegionCfgWords(2)
	cfg := []cfgWrite{
		{b0, UserBase}, {l0, UserLimit}, {p0, PermEnable | PermUserRead | PermUserWrite},
		{b1, SecretBase}, {l1, SecretLimit}, {p1, PermEnable},
		{b2, dmaBase}, {l2, dmaLimit}, {p2, PermEnable | PermUserRead},
	}
	for _, c := range cfg {
		a.Ldi(0, c.val)
		a.Cfgw(c.word, 0)
	}
	// Seed the secret while still privileged.
	a.Ldi(0, SecretValue)
	a.Ldi(1, SecretAddr)
	a.St(0, 1)
}

// emitWorkLoop emits `iters` rounds of legitimate user traffic in the
// user region: a store, a pointer bump, and a read-back. Uses r2 as the
// walking address, r3 as the countdown, r4/r5 as data, r6 as constant 1,
// r7 as zero.
func emitWorkLoop(a *Asm, iters uint16) {
	a.Ldi(2, UserBase)
	a.Ldi(3, iters)
	a.Ldi(4, 0x1111)
	a.Ldi(6, 1)
	a.Ldi(7, 0)
	a.Label("work")
	a.St(4, 2)
	a.Ld(5, 2)
	a.Add(4, 5)
	a.Add(2, 6)
	a.Sub(3, 6)
	a.Bne(3, 7, "work")
}

// IllegalWriteProgram builds the paper's primary benchmark: after
// workIters rounds of legitimate traffic, the (user-mode) core attempts
// to overwrite the secret word. Without a fault, the MPU traps it.
func IllegalWriteProgram(workIters uint16, dmaBase, dmaLimit uint16) *Program {
	a := NewAsm("illegal-write")
	emitSetup(a, dmaBase, dmaLimit)
	a.Drop()
	emitWorkLoop(a, workIters)
	// The attack: plant AttackValue at SecretAddr.
	a.Ldi(4, AttackValue)
	a.Ldi(5, SecretAddr)
	a.StMarked(4, 5)
	// Post-attack tail: more legitimate traffic, then halt. Only a
	// bypassed MPU lets the core get here with the write committed.
	a.Ldi(2, UserBase+8)
	a.St(4, 2)
	a.Halt()
	a.Label("trap")
	a.Halt()
	a.TrapHandler("trap")
	a.Illegal(SecretAddr, true)
	a.PreAttack(UserBase, UserBase+workIters-1, true)
	a.PreAttack(UserBase, UserBase+workIters-1, false)
	return a.MustBuild()
}

// IllegalReadProgram is the companion benchmark: the marked access is a
// load of the secret word (information leakage instead of tampering).
func IllegalReadProgram(workIters uint16, dmaBase, dmaLimit uint16) *Program {
	a := NewAsm("illegal-read")
	emitSetup(a, dmaBase, dmaLimit)
	a.Drop()
	emitWorkLoop(a, workIters)
	a.Ldi(4, 0)
	a.Ldi(5, SecretAddr)
	a.LdMarked(4, 5)
	// Exfiltrate: copy the stolen word into the user region.
	a.Ldi(2, UserBase+9)
	a.St(4, 2)
	a.Halt()
	a.Label("trap")
	a.Halt()
	a.TrapHandler("trap")
	a.Illegal(SecretAddr, false)
	a.PreAttack(UserBase, UserBase+workIters-1, true)
	a.PreAttack(UserBase, UserBase+workIters-1, false)
	return a.MustBuild()
}

// SyntheticProgram generates the pre-characterization workload: an
// endless mix of legal stores, legal loads, boundary probes that do
// violate (its trap handler resumes instead of halting, so the
// violation machinery toggles repeatedly). The run length is bounded by
// the caller via SoC.Run.
func SyntheticProgram(dmaBase, dmaLimit uint16) *Program {
	a := NewAsm("synthetic")
	emitSetup(a, dmaBase, dmaLimit)
	a.Drop()
	a.Ldi(2, UserBase)
	a.Ldi(4, 0xC0DE)
	a.Ldi(6, 1)
	a.Ldi(7, 0)
	a.Ldi(3, 0) // loop counter
	a.Label("loop")
	a.St(4, 2)
	a.Ld(5, 2)
	// r4 accumulates the walking address: a data pattern whose low
	// bits evolve irregularly (partial sums of consecutive integers).
	a.Add(4, 2)
	a.Add(2, 6)
	// Wrap the walking pointer within the user region.
	a.Ldi(0, UserLimit)
	a.Bne(2, 0, "noWrap")
	a.Ldi(2, UserBase)
	a.Label("noWrap")
	a.Add(3, 6)
	// Probe the protected region on data-dependent (irregular)
	// iterations — the violation machinery must toggle often enough
	// for the switching signatures to expose which gates correlate
	// with the responding signals, and irregular spacing avoids
	// periodic echo artifacts in the correlation-vs-lag profile.
	// r4 accumulates a data-dependent pattern; probe when its low
	// three bits are 0b101 (~1 in 8 iterations, aperiodically).
	a.Ldi(0, 7)
	a.And(0, 4)
	a.Ldi(1, 5)
	a.Bne(0, 1, "loop")
	a.Ldi(1, SecretBase)
	a.Ld(0, 1)
	a.Jmp("loop")
	// The trap handler runs privileged (exception entry escalates):
	// it acknowledges the violation, clearing the sticky FSM, then
	// returns to user mode — so the violation machinery keeps
	// toggling instead of saturating.
	a.Label("trap")
	a.Cfgw(CfgClearViol, 0)
	a.Drop()
	a.Jmp("loop")
	a.TrapHandler("trap")
	return a.MustBuild()
}
