package soc

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/logicsim"
	"repro/internal/logicsim/codegen"
	"repro/internal/netlist"
)

// TestGeneratedEvaluatorBinds pins the transparent swap-in: compiling
// the bundled MPU in this process (where mpu_evalgen.go's init has
// registered) must yield a plan bound to the generated evaluator.
func TestGeneratedEvaluatorBinds(t *testing.T) {
	mpu, err := BuildMPU(DefaultMPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logicsim.New(mpu.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Plan().Generated() {
		t.Fatal("MPU plan did not bind the committed generated evaluator; mpu_evalgen.go is stale — run `go generate ./...`")
	}
}

// TestGeneratedEvaluatorNotDrifted regenerates the MPU evaluator
// source in-process and compares it byte for byte against the
// committed mpu_evalgen.go — the same check the CI drift job performs
// with `go generate ./... && git diff --exit-code`, available locally
// in a plain `go test`.
func TestGeneratedEvaluatorNotDrifted(t *testing.T) {
	cfg := DefaultMPUConfig()
	mpu, err := BuildMPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Must mirror the go:generate directive in mpu.go exactly.
	src, err := codegen.Generate(mpu.Netlist, codegen.Config{
		Package: "soc",
		Prefix:  "mpuGen",
		Source:  fmt.Sprintf("built-in MPU (soc.BuildMPU, regions=%d, addrBits=%d)", cfg.Regions, cfg.AddrBits),
	})
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile("mpu_evalgen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != string(committed) {
		t.Fatal("mpu_evalgen.go drifted from the generator output; run `go generate ./...` (or `make gen`) and commit the result")
	}
}

// TestGeneratedMatchesInterpretedScalar drives both evaluation paths
// of the MPU — generated straight-line code and the interpreted op
// stream — through identical random clocked cycles and demands
// bit-identical values on every node, every cycle.
func TestGeneratedMatchesInterpretedScalar(t *testing.T) {
	mpu, err := BuildMPU(DefaultMPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	nl := mpu.Netlist

	prev := logicsim.SetGeneratedEnabled(false)
	interp, errI := logicsim.New(nl)
	logicsim.SetGeneratedEnabled(prev)
	if errI != nil {
		t.Fatal(errI)
	}
	gen, err := logicsim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !gen.Plan().Generated() || interp.Plan().Generated() {
		t.Fatalf("setup inverted: gen bound=%v interp bound=%v", gen.Plan().Generated(), interp.Plan().Generated())
	}

	inputs := nl.Inputs()
	rng := rand.New(rand.NewSource(99))
	for cyc := 0; cyc < 32; cyc++ {
		for _, id := range inputs {
			w := rng.Uint64()
			gen.SetInput(id, w)
			interp.SetInput(id, w)
		}
		gen.Step()
		interp.Step()
		for i := 0; i < nl.NumNodes(); i++ {
			id := netlist.NodeID(i)
			if g, w := gen.Val(id), interp.Val(id); g != w {
				t.Fatalf("cycle %d node %d (%v): generated %#x, interpreted %#x",
					cyc, id, nl.Node(id).Type, g, w)
			}
		}
	}
}

// TestGeneratedMatchesInterpretedWide repeats the equivalence over the
// wide-lane simulators at every stride the generated file covers (64,
// 256, and 512 lanes), with distinct random words in every lane group.
func TestGeneratedMatchesInterpretedWide(t *testing.T) {
	mpu, err := BuildMPU(DefaultMPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	nl := mpu.Netlist

	prev := logicsim.SetGeneratedEnabled(false)
	interpScalar, errI := logicsim.New(nl)
	logicsim.SetGeneratedEnabled(prev)
	if errI != nil {
		t.Fatal(errI)
	}
	genScalar, err := logicsim.New(nl)
	if err != nil {
		t.Fatal(err)
	}

	regs := nl.Regs()
	inputs := nl.Inputs()
	for _, groups := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
			gw, err := logicsim.NewLaneSim(genScalar, groups)
			if err != nil {
				t.Fatal(err)
			}
			iw, err := logicsim.NewLaneSim(interpScalar, groups)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(100 + groups)))
			for cyc := 0; cyc < 8; cyc++ {
				for _, id := range inputs {
					for g := 0; g < groups; g++ {
						w := rng.Uint64()
						gw.SetValGroup(id, g, w)
						iw.SetValGroup(id, g, w)
					}
				}
				if cyc == 0 {
					for _, r := range regs {
						for g := 0; g < groups; g++ {
							w := rng.Uint64()
							gw.SetValGroup(r, g, w)
							iw.SetValGroup(r, g, w)
						}
					}
				}
				gw.Step()
				iw.Step()
				for i := 0; i < nl.NumNodes(); i++ {
					id := netlist.NodeID(i)
					for g := 0; g < groups; g++ {
						if gv, wv := gw.ValGroup(id, g), iw.ValGroup(id, g); gv != wv {
							t.Fatalf("cycle %d node %d (%v) group %d: generated %#x, interpreted %#x",
								cyc, id, nl.Node(id).Type, g, gv, wv)
						}
					}
				}
			}
		})
	}
}
