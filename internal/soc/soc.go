package soc

import (
	"fmt"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// Config sizes the SoC.
type Config struct {
	MPU      MPUConfig
	MemWords int
	// DMA models the peripheral traffic of the paper's Figure 1: a
	// reader that issues user-mode loads through the MPU whenever the
	// bus is idle, one access every DMAPeriod cycles.
	DMAEnabled        bool
	DMAPeriod         int
	DMABase, DMALimit uint16
	// MaxCycles bounds every run (fault attacks can wedge the core).
	MaxCycles int
}

// DefaultConfig returns the SoC configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		MPU:        DefaultMPUConfig(),
		MemWords:   4096,
		DMAEnabled: true,
		DMAPeriod:  7,
		DMABase:    0x300,
		DMALimit:   0x33F,
		MaxCycles:  4000,
	}
}

// busOp is an in-flight memory access.
type busOp struct {
	Active    bool
	Write     bool
	Marked    bool
	FromDMA   bool
	Addr      uint16
	Reg       int
	WData     uint16
	RespCycle int
}

// cpuState is the behavioural core's architectural state.
type cpuState struct {
	R      [8]uint16
	PC     int
	Priv   bool
	Halted bool
}

// MarkedOutcome records what happened to the marked illegal access.
type MarkedOutcome struct {
	// Resolved is set once the MPU answered the marked access.
	Resolved bool
	// Committed means the access was granted and took effect.
	Committed bool
	// Trapped means the violation trap fired for it.
	Trapped bool
	// IssueCycle, DecisionCycle, RespCycle are the cycles when the
	// marked access was driven, when the MPU's decision latched
	// (the paper's target cycle Tt), and when the core saw the
	// response.
	IssueCycle, DecisionCycle, RespCycle int
}

// SoC co-simulates the behavioural core, memory, and DMA with the
// gate-level MPU. It is not safe for concurrent use.
type SoC struct {
	Cfg  Config
	Prog *Program
	MPU  *MPU
	Sim  *logicsim.Simulator

	Mem []uint16

	cpu     cpuState
	pending busOp
	dmaNext int
	dmaAddr uint16
	// lastReq holds the previous request's address/type: the bus
	// keeps its last value during idle cycles (only valid is
	// deasserted), as real buses do.
	lastReq busOp

	cycle     int
	TrapCount int
	DMAViol   int
	Marked    MarkedOutcome

	// memHash is the XOR over all cells of memCellHash(addr, value),
	// maintained incrementally on committed writes so StateHash never
	// rescans the memory image.
	memHash uint64

	// LogAccesses enables recording every issued bus access into
	// Accesses — used by the golden run so the analytical evaluator
	// knows which accesses fall between injection and target cycle.
	// The log is not part of checkpoints.
	LogAccesses bool
	Accesses    []AccessEvent

	// LogBusTrace enables recording, for every cycle, the exact values
	// driven onto the MPU input ports plus whether (and how) the system
	// consumed an MPU response that cycle. BusTrace is indexed by cycle
	// and lets a lane-batched resume replay the golden system's side of
	// the bus into a forked simulator without re-executing the
	// behavioural core. The log is not part of checkpoints.
	LogBusTrace bool
	BusTrace    []BusTraceEntry
}

// BusTraceEntry records one cycle of the golden system/MPU interface:
// everything the system drove into the MPU, and which MPU outputs the
// system read back. The behavioural core, memory, and DMA only observe
// the MPU through grant/viol at response-consumption cycles, so a faulty
// MPU whose outputs match RespGrant/RespViol at every RespConsumed cycle
// leaves the rest of the system exactly on the golden trajectory.
type BusTraceEntry struct {
	Valid, Write, Priv bool
	Addr               uint16
	CfgWe, CfgPriv     bool
	CfgAddr, CfgWData  uint16
	// RespConsumed marks cycles where the system read the MPU's
	// grant/viol outputs; RespGrant/RespViol are the golden values it
	// saw.
	RespConsumed, RespGrant, RespViol bool
}

// AccessEvent is one issued bus access.
type AccessEvent struct {
	Cycle  int
	Addr   uint16
	Write  bool
	Priv   bool
	DMA    bool
	Marked bool
}

// New builds a SoC running the given program on a fresh MPU instance.
// Callers evaluating many fault injections over the same design should
// build once and Restore from checkpoints instead of re-elaborating.
func New(cfg Config, prog *Program) (*SoC, error) {
	mpu, err := BuildMPU(cfg.MPU)
	if err != nil {
		return nil, err
	}
	return WithMPU(cfg, prog, mpu)
}

// WithMPU builds a SoC around an existing MPU elaboration.
func WithMPU(cfg Config, prog *Program, mpu *MPU) (*SoC, error) {
	if cfg.MemWords <= 0 {
		return nil, fmt.Errorf("soc: MemWords = %d", cfg.MemWords)
	}
	if prog == nil || len(prog.Instrs) == 0 {
		return nil, fmt.Errorf("soc: empty program")
	}
	sim, err := logicsim.New(mpu.Netlist)
	if err != nil {
		return nil, err
	}
	s := &SoC{Cfg: cfg, Prog: prog, MPU: mpu, Sim: sim, Mem: make([]uint16, cfg.MemWords)}
	s.Reset()
	return s, nil
}

// Reset restores power-on state: zeroed memory and registers,
// privileged core at PC 0.
func (s *SoC) Reset() {
	s.Sim.Reset()
	for i := range s.Mem {
		s.Mem[i] = 0
	}
	s.cpu = cpuState{Priv: true}
	s.pending = busOp{}
	s.lastReq = busOp{}
	s.dmaNext = s.Cfg.DMAPeriod
	s.dmaAddr = s.Cfg.DMABase
	s.cycle = 0
	s.TrapCount = 0
	s.DMAViol = 0
	s.Marked = MarkedOutcome{}
	s.memHash = 0
	for i := range s.Mem {
		s.memHash ^= memCellHash(i, 0)
	}
}

// Cycle returns the number of completed cycles.
func (s *SoC) Cycle() int { return s.cycle }

// Done reports whether the core has halted with no access in flight.
func (s *SoC) Done() bool { return s.cpu.Halted && !s.pending.Active }

// CPUReg returns a core register value.
func (s *SoC) CPUReg(i int) uint16 { return s.cpu.R[i] }

// Priv reports whether the core is in privileged mode.
func (s *SoC) Priv() bool { return s.cpu.Priv }

// PC returns the core's program counter.
func (s *SoC) PC() int { return s.cpu.PC }

// InjectFunc performs a gate-level injection for the current cycle: it
// receives the fault-free value of every MPU node (post-evaluation) and
// returns the registers that latch a wrong value at the cycle's end.
type InjectFunc func(values func(netlist.NodeID) bool) []netlist.NodeID

// Step advances the SoC one clock cycle.
func (s *SoC) Step() { s.StepInject(nil) }

// StepInject advances one cycle, applying a gate-level fault injection
// at this cycle's closing clock edge when inject is non-nil.
func (s *SoC) StepInject(inject InjectFunc) {
	mpu := s.MPU

	// Phase A: consume the response to an in-flight access. The MPU's
	// grant/viol outputs are registers, so their pre-Eval values are
	// the decision latched at the end of the previous cycle.
	var respConsumed, respGrant, respViol bool
	if s.pending.Active && s.cycle >= s.pending.RespCycle {
		grant := s.Sim.Bool(mpu.OutGrant[0])
		viol := s.Sim.Bool(mpu.OutViol[0])
		respConsumed, respGrant, respViol = true, grant, viol
		op := s.pending
		s.pending = busOp{}
		if op.Marked {
			s.Marked.Resolved = true
			s.Marked.Committed = grant
			s.Marked.Trapped = viol
			s.Marked.RespCycle = s.cycle
		}
		if grant {
			s.commit(op)
		}
		if viol {
			if op.FromDMA {
				s.DMAViol++
			} else {
				s.TrapCount++
				s.cpu.PC = s.Prog.TrapHandler
				// Exception entry escalates privilege so the
				// handler can operate on the MPU (clear the
				// sticky violation state); handlers return to
				// user mode with DROP.
				s.cpu.Priv = true
			}
		}
	}

	// Phase B/C: produce at most one bus request and at most one
	// config write for this cycle.
	var req busOp
	var cfgW struct {
		we    bool
		addr  uint16
		wdata uint16
	}
	if !s.cpu.Halted && !s.pending.Active {
		req, cfgW.we, cfgW.addr, cfgW.wdata = s.execute()
	}
	// The DMA engine is started by firmware after MPU setup, modeled
	// here as: it only issues once the core has dropped privilege.
	if !req.Active && !s.pending.Active && s.Cfg.DMAEnabled && !s.cpu.Priv && s.cycle >= s.dmaNext {
		req = busOp{Active: true, FromDMA: true, Addr: s.dmaAddr}
		s.dmaAddr++
		if s.dmaAddr > s.Cfg.DMALimit {
			s.dmaAddr = s.Cfg.DMABase
		}
		s.dmaNext = s.cycle + s.Cfg.DMAPeriod
	}

	// Phase D: drive the MPU ports. During idle cycles the bus holds
	// its previous address/type values with valid deasserted.
	drive := req
	if !req.Active {
		drive = s.lastReq
		drive.Active = false
	} else {
		s.lastReq = req
	}
	s.Sim.DriveWord(mpu.InValid, b2u(req.Active))
	s.Sim.DriveWord(mpu.InWrite, b2u(drive.Write))
	s.Sim.DriveWord(mpu.InPriv, b2u(req.Active && !req.FromDMA && s.cpu.Priv))
	s.Sim.DriveWord(mpu.InAddr, uint64(drive.Addr))
	s.Sim.DriveWord(mpu.InCfgWe, b2u(cfgW.we))
	s.Sim.DriveWord(mpu.InCfgPriv, b2u(s.cpu.Priv))
	s.Sim.DriveWord(mpu.InCfgAddr, uint64(cfgW.addr))
	s.Sim.DriveWord(mpu.InCfgWData, uint64(cfgW.wdata))

	if s.LogBusTrace {
		s.BusTrace = append(s.BusTrace, BusTraceEntry{
			Valid: req.Active, Write: drive.Write,
			Priv: req.Active && !req.FromDMA && s.cpu.Priv,
			Addr: drive.Addr,
			CfgWe: cfgW.we, CfgPriv: s.cpu.Priv,
			CfgAddr: cfgW.addr, CfgWData: cfgW.wdata,
			RespConsumed: respConsumed, RespGrant: respGrant, RespViol: respViol,
		})
	}

	if req.Active {
		// The request is captured at this cycle's end; the decision
		// latches one cycle later; the response is readable the
		// cycle after that.
		req.RespCycle = s.cycle + 2
		s.pending = req
		if req.Marked {
			s.Marked.IssueCycle = s.cycle
			s.Marked.DecisionCycle = s.cycle + 1
		}
		if s.LogAccesses {
			s.Accesses = append(s.Accesses, AccessEvent{
				Cycle: s.cycle, Addr: req.Addr, Write: req.Write,
				Priv: !req.FromDMA && s.cpu.Priv, DMA: req.FromDMA, Marked: req.Marked,
			})
		}
	}

	// Phase E: clock the netlist, applying any gate-level injection
	// at the closing edge.
	s.Sim.Eval()
	var flipped []netlist.NodeID
	if inject != nil {
		flipped = inject(func(id netlist.NodeID) bool { return s.Sim.Bool(id) })
	}
	s.Sim.Latch()
	for _, r := range flipped {
		s.Sim.FlipReg(r)
	}
	s.cycle++
}

// BusDriver is the simulator surface DriveBusTrace needs: broadcast
// word drive onto input nodes. Both *logicsim.Simulator (64 lanes) and
// logicsim.LaneSim (256/512 lanes) satisfy it.
type BusDriver interface {
	DriveWord(bits []netlist.NodeID, v uint64)
}

// DriveBusTrace replays one recorded golden bus-trace entry onto the MPU
// input ports of an arbitrary simulator over the same netlist. Each bit
// is broadcast to every lane, so a lane-batched resume can step 64 (or,
// with a wide-lane simulator, 256/512) faulty MPU register states
// against the one golden system trace with a single combinational pass
// per cycle.
func (m *MPU) DriveBusTrace(sim BusDriver, e *BusTraceEntry) {
	sim.DriveWord(m.InValid, b2u(e.Valid))
	sim.DriveWord(m.InWrite, b2u(e.Write))
	sim.DriveWord(m.InPriv, b2u(e.Priv))
	sim.DriveWord(m.InAddr, uint64(e.Addr))
	sim.DriveWord(m.InCfgWe, b2u(e.CfgWe))
	sim.DriveWord(m.InCfgPriv, b2u(e.CfgPriv))
	sim.DriveWord(m.InCfgAddr, uint64(e.CfgAddr))
	sim.DriveWord(m.InCfgWData, uint64(e.CfgWData))
}

// FlipRegsNow flips the stored value of the given MPU registers between
// cycles — the direct-SEU model used for attacks on sequential elements.
func (s *SoC) FlipRegsNow(regs []netlist.NodeID) {
	for _, r := range regs {
		s.Sim.FlipReg(r)
	}
}

// commit applies a granted access to memory / the core.
func (s *SoC) commit(op busOp) {
	addr := int(op.Addr) % len(s.Mem)
	if op.Write {
		if old := s.Mem[addr]; old != op.WData {
			s.memHash ^= memCellHash(addr, old) ^ memCellHash(addr, op.WData)
			s.Mem[addr] = op.WData
		}
	} else if !op.FromDMA {
		s.cpu.R[op.Reg] = s.Mem[addr]
	}
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// memCellHash gives each (address, value) pair an independent
// pseudo-random signature; the memory image's hash is the XOR over all
// cells, which a write updates in O(1).
func memCellHash(addr int, v uint16) uint64 {
	return mix64(1<<63 | uint64(addr)<<16 | uint64(v))
}

// busOpBits packs a bus operation's fields (except RespCycle, hashed
// separately) into one word.
func busOpBits(op *busOp) uint64 {
	v := uint64(op.Addr)<<8 | uint64(op.WData)<<24 | uint64(uint8(op.Reg))<<40
	if op.Active {
		v |= 1
	}
	if op.Write {
		v |= 2
	}
	if op.Marked {
		v |= 4
	}
	if op.FromDMA {
		v |= 8
	}
	return v
}

// StateHash returns a 64-bit digest of the complete SoC state: the
// architectural core/bus/DMA/trap state, the marked-access outcome, the
// memory image (via the incrementally maintained hash), and all 64
// lanes of every MPU register. The SoC steps deterministically, so two
// instances with equal hashes at the same cycle follow identical
// trajectories from there on (up to the ~2^-64 collision probability);
// the Monte Carlo engine uses this to cut an RTL resume short once a
// fault has died out and the run is back on the golden trajectory.
func (s *SoC) StateHash() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	mixIn := func(x uint64) { h = mix64(h ^ x) }
	c := &s.cpu
	for _, r := range c.R {
		mixIn(uint64(r))
	}
	mixIn(uint64(int64(c.PC)))
	var flags uint64
	if c.Priv {
		flags |= 1
	}
	if c.Halted {
		flags |= 2
	}
	m := &s.Marked
	if m.Resolved {
		flags |= 4
	}
	if m.Committed {
		flags |= 8
	}
	if m.Trapped {
		flags |= 16
	}
	mixIn(flags)
	mixIn(busOpBits(&s.pending))
	mixIn(uint64(int64(s.pending.RespCycle)))
	mixIn(busOpBits(&s.lastReq))
	mixIn(uint64(int64(s.lastReq.RespCycle)))
	mixIn(uint64(int64(s.dmaNext)))
	mixIn(uint64(s.dmaAddr))
	mixIn(uint64(int64(s.TrapCount)))
	mixIn(uint64(int64(s.DMAViol)))
	mixIn(uint64(int64(m.IssueCycle)))
	mixIn(uint64(int64(m.DecisionCycle)))
	mixIn(uint64(int64(m.RespCycle)))
	mixIn(s.memHash)
	for _, r := range s.MPU.Netlist.Regs() {
		mixIn(s.Sim.Val(r))
	}
	return h
}

// execute runs one instruction and reports any bus request / config
// write it produces.
func (s *SoC) execute() (req busOp, cfgWe bool, cfgAddr, cfgWData uint16) {
	if s.cpu.PC < 0 || s.cpu.PC >= len(s.Prog.Instrs) {
		s.cpu.Halted = true
		return
	}
	in := s.Prog.Instrs[s.cpu.PC]
	s.cpu.PC++
	r := &s.cpu.R
	switch in.Op {
	case OpNop:
	case OpLdi:
		r[in.A] = in.Imm
	case OpMov:
		r[in.A] = r[in.B]
	case OpAdd:
		r[in.A] += r[in.B]
	case OpSub:
		r[in.A] -= r[in.B]
	case OpAnd:
		r[in.A] &= r[in.B]
	case OpOr:
		r[in.A] |= r[in.B]
	case OpXor:
		r[in.A] ^= r[in.B]
	case OpLd:
		req = busOp{Active: true, Addr: r[in.B], Reg: in.A, Marked: in.Marked}
	case OpSt:
		req = busOp{Active: true, Write: true, Addr: r[in.B], WData: r[in.A], Marked: in.Marked}
	case OpCfgw:
		cfgWe = s.cpu.Priv // unprivileged CFGW is a NOP at the port too
		cfgAddr = in.Imm
		cfgWData = r[in.A]
	case OpDrop:
		s.cpu.Priv = false
	case OpBeq:
		if r[in.A] == r[in.B] {
			s.cpu.PC = int(in.Imm)
		}
	case OpBne:
		if r[in.A] != r[in.B] {
			s.cpu.PC = int(in.Imm)
		}
	case OpJmp:
		s.cpu.PC = int(in.Imm)
	case OpHalt:
		s.cpu.Halted = true
	default:
		panic(fmt.Sprintf("soc: unknown opcode %v", in.Op))
	}
	return
}

// Run steps until the core halts or maxCycles elapse; it returns the
// number of cycles executed in this call.
func (s *SoC) Run(maxCycles int) int {
	start := s.cycle
	for !s.Done() && s.cycle-start < maxCycles {
		s.Step()
	}
	return s.cycle - start
}

// AttackSucceeded reports the paper's success condition: the marked
// illegal access took effect and the responding mechanism did not fire
// for it.
func (s *SoC) AttackSucceeded() bool {
	return s.Marked.Resolved && s.Marked.Committed && !s.Marked.Trapped
}

// Checkpoint is a full architectural + netlist state snapshot; the
// golden run dumps these so fault-attack runs can restart near the
// injection cycle instead of from reset.
type Checkpoint struct {
	Cycle     int
	CPU       cpuState
	Pending   busOp
	LastReq   busOp
	DMANext   int
	DMAAddr   uint16
	TrapCount int
	DMAViol   int
	Marked    MarkedOutcome
	MemHash   uint64
	Mem       []uint16
	MPURegs   []uint64
}

// Snapshot captures the full state.
func (s *SoC) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		Cycle:     s.cycle,
		CPU:       s.cpu,
		Pending:   s.pending,
		LastReq:   s.lastReq,
		DMANext:   s.dmaNext,
		DMAAddr:   s.dmaAddr,
		TrapCount: s.TrapCount,
		DMAViol:   s.DMAViol,
		Marked:    s.Marked,
		MemHash:   s.memHash,
		Mem:       append([]uint16(nil), s.Mem...),
		MPURegs:   s.Sim.RegState(),
	}
	return cp
}

// Restore rewinds the SoC to a snapshot.
func (s *SoC) Restore(cp *Checkpoint) {
	s.cycle = cp.Cycle
	s.cpu = cp.CPU
	s.pending = cp.Pending
	s.lastReq = cp.LastReq
	s.dmaNext = cp.DMANext
	s.dmaAddr = cp.DMAAddr
	s.TrapCount = cp.TrapCount
	s.DMAViol = cp.DMAViol
	s.Marked = cp.Marked
	s.memHash = cp.MemHash
	copy(s.Mem, cp.Mem)
	s.Sim.SetRegState(cp.MPURegs)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
