package soc

import (
	"strconv"
	"testing"

	"repro/internal/logicsim"
)

// BenchmarkMPUEval compares the committed generated evaluator against
// the interpreted op stream on the bundled MPU, per combinational pass
// at each lane width. The campaign-level speedup in BENCH_codegen.json
// is this gap diluted by the RTL and bookkeeping share of a sample.
func BenchmarkMPUEval(b *testing.B) {
	mpu, err := BuildMPU(DefaultMPUConfig())
	if err != nil {
		b.Fatal(err)
	}
	prev := logicsim.SetGeneratedEnabled(false)
	interp, errI := logicsim.New(mpu.Netlist)
	logicsim.SetGeneratedEnabled(prev)
	if errI != nil {
		b.Fatal(errI)
	}
	gen, err := logicsim.New(mpu.Netlist)
	if err != nil {
		b.Fatal(err)
	}
	for _, groups := range []int{1, 4, 8} {
		for _, cfg := range []struct {
			name string
			sim  *logicsim.Simulator
		}{{"interp", interp}, {"codegen", gen}} {
			w, err := logicsim.NewLaneSim(cfg.sim, groups)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(cfg.name+"/lanes"+strconv.Itoa(64*groups), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.Eval()
				}
			})
		}
	}
}
