// Package placement assigns synthetic 2D coordinates to every node of a
// netlist. The fault model (internal/fault) maps a radiation strike with
// center gate g and radius r to the set of gates whose placed location
// lies within Euclidean distance r of g — the approach of Fazeli et al.
// (DATE'11, reference [18] of the paper), which only requires gate
// coordinates.
//
// Real designs come with a physical placement; this package substitutes a
// deterministic connectivity-aware heuristic (iterative barycentric
// relaxation with sort-based legalization) so that logically related
// gates land near each other, which is the property the multi-gate
// strike model exercises.
package placement

import (
	"math"
	"sort"

	"repro/internal/netlist"
)

// Point is a placed location in cell-pitch units.
type Point struct {
	X, Y float64
}

// Placement holds one location per netlist node.
type Placement struct {
	nl     *netlist.Netlist
	points []Point
	rows   int
	cols   int
}

// Iterations of barycentric relaxation. More iterations improve
// locality marginally; 12 is past the knee for the design sizes the
// framework targets.
const relaxIterations = 12

// Place computes a deterministic placement of the netlist.
func Place(nl *netlist.Netlist) *Placement {
	n := nl.NumNodes()
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols

	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: float64(i % cols), Y: float64(i / cols)}
	}

	fanouts := nl.Fanouts()
	next := make([]Point, n)
	for it := 0; it < relaxIterations; it++ {
		// Barycentric move: average of connected nodes.
		for i := 0; i < n; i++ {
			id := netlist.NodeID(i)
			sumX, sumY, cnt := pos[i].X, pos[i].Y, 1.0
			for _, f := range nl.Node(id).Fanin {
				sumX += pos[f].X
				sumY += pos[f].Y
				cnt++
			}
			for _, s := range fanouts[id] {
				sumX += pos[s].X
				sumY += pos[s].Y
				cnt++
			}
			next[i] = Point{X: sumX / cnt, Y: sumY / cnt}
		}
		legalize(next, pos, cols, rows)
	}
	return &Placement{nl: nl, points: pos, rows: rows, cols: cols}
}

// legalize snaps relaxed positions back onto the grid: sort by X to
// assign columns in balanced chunks, then sort each column by Y. Ties
// break on node id, keeping the whole procedure deterministic. The
// result is written into out.
func legalize(relaxed []Point, out []Point, cols, rows int) {
	n := len(relaxed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if relaxed[ia].X != relaxed[ib].X {
			return relaxed[ia].X < relaxed[ib].X
		}
		return ia < ib
	})
	for c := 0; c < cols; c++ {
		lo := c * rows
		hi := lo + rows
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		col := idx[lo:hi]
		sort.Slice(col, func(a, b int) bool {
			if relaxed[col[a]].Y != relaxed[col[b]].Y {
				return relaxed[col[a]].Y < relaxed[col[b]].Y
			}
			return col[a] < col[b]
		})
		for r, node := range col {
			out[node] = Point{X: float64(c), Y: float64(r)}
		}
	}
}

// At returns the placed location of a node.
func (p *Placement) At(id netlist.NodeID) Point { return p.points[id] }

// NumPlaced returns the number of nodes the placement covers.
func (p *Placement) NumPlaced() int { return len(p.points) }

// Bounds returns the placement extent in cell pitches.
func (p *Placement) Bounds() (w, h float64) {
	return float64(p.cols - 1), float64(p.rows - 1)
}

// Diameter returns the diagonal of the placement bounding box; a strike
// radius at or above this value covers every gate.
func (p *Placement) Diameter() float64 {
	w, h := p.Bounds()
	return math.Hypot(w, h)
}

// Dist returns the Euclidean distance between two placed nodes.
func (p *Placement) Dist(a, b netlist.NodeID) float64 {
	pa, pb := p.points[a], p.points[b]
	return math.Hypot(pa.X-pb.X, pa.Y-pb.Y)
}

// WithinRadius returns every node placed within Euclidean distance r of
// the center node, including the center itself, sorted by id.
func (p *Placement) WithinRadius(center netlist.NodeID, r float64) []netlist.NodeID {
	c := p.points[center]
	r2 := r * r
	var out []netlist.NodeID
	for i, pt := range p.points {
		dx, dy := pt.X-c.X, pt.Y-c.Y
		if dx*dx+dy*dy <= r2 {
			out = append(out, netlist.NodeID(i))
		}
	}
	return out
}

// CombWithinRadius returns only the combinational gates (excluding
// constants) within the radius. These are the gates a radiation strike
// injects voltage transients into.
func (p *Placement) CombWithinRadius(center netlist.NodeID, r float64) []netlist.NodeID {
	all := p.WithinRadius(center, r)
	out := all[:0]
	for _, id := range all {
		t := p.nl.Node(id).Type
		if t.IsCombinational() && t != netlist.Const0 && t != netlist.Const1 {
			out = append(out, id)
		}
	}
	return out
}

// SpotIndex answers repeated radius queries around the same centers
// without rescanning the whole placement: per center it caches every
// node within a cap radius (grown on demand) together with its placed
// distance and node class, in id order, so a query filters a handful of
// cached candidates instead of all nodes. The returned sets and
// distances are bit-identical to WithinRadius / CombWithinRadius /
// Dist. A SpotIndex is not safe for concurrent use; give each worker
// its own.
type SpotIndex struct {
	p       *Placement
	centers []*spotEntry // indexed by center NodeID, nil until first queried
	idBuf   []netlist.NodeID
	distBuf []float64
}

type spotEntry struct {
	capR float64 // queries with r <= capR are answered from the cache
	ids  []netlist.NodeID
	d2   []float64 // squared distance — the WithinRadius filter quantity
	dist []float64 // Dist(id, center) — the charge-sharing quantity
	comb []bool    // strikeable combinational gate (excludes constants)
	dff  []bool
}

// Rebuilding a center's entry rescans the placement, so the cap is
// padded past the requested radius to absorb per-sample radius jitter.
const spotCapGrowth = 1.5

// NewSpotIndex returns an empty per-worker radius-query cache over p.
func (p *Placement) NewSpotIndex() *SpotIndex {
	return &SpotIndex{p: p, centers: make([]*spotEntry, p.nl.NumNodes())}
}

func (si *SpotIndex) entry(center netlist.NodeID, r float64) *spotEntry {
	e := si.centers[center]
	if e != nil && r <= e.capR {
		return e
	}
	capR := r * spotCapGrowth
	if e == nil {
		e = &spotEntry{}
		si.centers[center] = e
	}
	e.capR = capR
	e.ids, e.d2, e.dist = e.ids[:0], e.d2[:0], e.dist[:0]
	e.comb, e.dff = e.comb[:0], e.dff[:0]
	p := si.p
	c := p.points[center]
	cap2 := capR * capR
	for i, pt := range p.points {
		dx, dy := pt.X-c.X, pt.Y-c.Y
		if d2 := dx*dx + dy*dy; d2 <= cap2 {
			id := netlist.NodeID(i)
			t := p.nl.Node(id).Type
			e.ids = append(e.ids, id)
			e.d2 = append(e.d2, d2)
			e.dist = append(e.dist, p.Dist(id, center))
			e.comb = append(e.comb, t.IsCombinational() && t != netlist.Const0 && t != netlist.Const1)
			e.dff = append(e.dff, t == netlist.DFF)
		}
	}
	return e
}

// CombWithin returns the strikeable combinational gates within r of
// center — the set CombWithinRadius returns, in the same id order —
// together with each gate's placed distance from the center. The
// returned slices are scratch reused by the next query on this index.
func (si *SpotIndex) CombWithin(center netlist.NodeID, r float64) ([]netlist.NodeID, []float64) {
	e := si.entry(center, r)
	ids, dist := si.idBuf[:0], si.distBuf[:0]
	r2 := r * r
	for i, d2 := range e.d2 {
		if d2 <= r2 && e.comb[i] {
			ids = append(ids, e.ids[i])
			dist = append(dist, e.dist[i])
		}
	}
	si.idBuf, si.distBuf = ids, dist
	return ids, dist
}

// DFFWithin returns the registers within r of center, in id order — the
// DFF subset of WithinRadius. The returned slice is scratch reused by
// the next query on this index.
func (si *SpotIndex) DFFWithin(center netlist.NodeID, r float64) []netlist.NodeID {
	e := si.entry(center, r)
	ids := si.idBuf[:0]
	r2 := r * r
	for i, d2 := range e.d2 {
		if d2 <= r2 && e.dff[i] {
			ids = append(ids, e.ids[i])
		}
	}
	si.idBuf = ids
	return ids
}

// MeanNeighborDist reports the average placed distance between connected
// nodes — the quality metric used by tests to check that the relaxation
// actually produces locality (it must beat a row-major id layout).
func (p *Placement) MeanNeighborDist() float64 {
	total, cnt := 0.0, 0
	for i := 0; i < p.nl.NumNodes(); i++ {
		id := netlist.NodeID(i)
		for _, f := range p.nl.Node(id).Fanin {
			total += p.Dist(id, f)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return total / float64(cnt)
}
