package placement

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// chainNetlist builds a long inverter chain: the strongest possible
// locality structure (each gate connects only to its neighbor).
func chainNetlist(n int) *netlist.Netlist {
	nl := netlist.New(n + 1)
	cur := nl.AddInput("in")
	for i := 0; i < n; i++ {
		cur = nl.AddGate(netlist.Inv, cur)
	}
	return nl
}

func randomNetlist(rng *rand.Rand, nGates int) *netlist.Netlist {
	nl := netlist.New(nGates + 8)
	for i := 0; i < 8; i++ {
		nl.AddInput("")
	}
	for i := 0; i < nGates; i++ {
		a := netlist.NodeID(rng.Intn(nl.NumNodes()))
		b := netlist.NodeID(rng.Intn(nl.NumNodes()))
		nl.AddGate(netlist.Nand, a, b)
	}
	return nl
}

func TestPlacementIsLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nl := randomNetlist(rng, 300)
	p := Place(nl)
	seen := map[[2]int]bool{}
	w, h := p.Bounds()
	for i := 0; i < nl.NumNodes(); i++ {
		pt := p.At(netlist.NodeID(i))
		if pt.X < 0 || pt.Y < 0 || pt.X > w || pt.Y > h {
			t.Fatalf("node %d at %+v outside bounds (%v, %v)", i, pt, w, h)
		}
		key := [2]int{int(pt.X), int(pt.Y)}
		if seen[key] {
			t.Fatalf("two nodes share slot %v", key)
		}
		seen[key] = true
		if pt.X != math.Trunc(pt.X) || pt.Y != math.Trunc(pt.Y) {
			t.Fatalf("node %d not on grid: %+v", i, pt)
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nl := randomNetlist(rng, 200)
	p1 := Place(nl)
	p2 := Place(nl)
	for i := 0; i < nl.NumNodes(); i++ {
		if p1.At(netlist.NodeID(i)) != p2.At(netlist.NodeID(i)) {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestPlacementLocalityBeatsIdentity(t *testing.T) {
	nl := chainNetlist(400)
	p := Place(nl)
	got := p.MeanNeighborDist()
	// Row-major by id on a chain gives mean neighbor distance 1 only
	// along rows but jumps at row ends; relaxed placement should keep
	// neighbors within a couple of pitches on average.
	if got > 3.0 {
		t.Fatalf("mean neighbor distance %.2f too large for a chain", got)
	}
	// And on a random graph, it must beat the naive row-major layout.
	rng := rand.New(rand.NewSource(3))
	rnl := randomNetlist(rng, 400)
	rp := Place(rnl)
	naive := naiveMeanNeighborDist(rnl)
	if rp.MeanNeighborDist() >= naive {
		t.Fatalf("relaxation (%.2f) did not beat row-major (%.2f)", rp.MeanNeighborDist(), naive)
	}
}

func naiveMeanNeighborDist(nl *netlist.Netlist) float64 {
	n := nl.NumNodes()
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	at := func(id netlist.NodeID) (float64, float64) {
		return float64(int(id) % cols), float64(int(id) / cols)
	}
	total, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		id := netlist.NodeID(i)
		x1, y1 := at(id)
		for _, f := range nl.Node(id).Fanin {
			x2, y2 := at(f)
			total += math.Hypot(x1-x2, y1-y2)
			cnt++
		}
	}
	return total / float64(cnt)
}

func TestWithinRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nl := randomNetlist(rng, 150)
	p := Place(nl)
	center := netlist.NodeID(20)
	// Radius 0 includes exactly the center (slots are unique).
	got := p.WithinRadius(center, 0)
	if len(got) != 1 || got[0] != center {
		t.Fatalf("radius 0: %v", got)
	}
	// Monotonicity: larger radius includes at least as many nodes.
	prev := 0
	for _, r := range []float64{1, 2, 4, 8, 1e9} {
		in := p.WithinRadius(center, r)
		if len(in) < prev {
			t.Fatalf("radius %v shrank the set", r)
		}
		for _, id := range in {
			if p.Dist(center, id) > r+1e-9 {
				t.Fatalf("node %d outside radius %v", id, r)
			}
		}
		prev = len(in)
	}
	// Huge radius covers everything.
	if got := p.WithinRadius(center, p.Diameter()); len(got) != nl.NumNodes() {
		t.Fatalf("diameter radius covered %d of %d", len(got), nl.NumNodes())
	}
}

func TestCombWithinRadiusFilters(t *testing.T) {
	nl := netlist.New(16)
	in := nl.AddInput("in")
	g := nl.AddGate(netlist.Inv, in)
	nl.AddDFF(g, "r", false)
	nl.AddConst(true)
	p := Place(nl)
	comb := p.CombWithinRadius(g, 1e9)
	if len(comb) != 1 || comb[0] != g {
		t.Fatalf("CombWithinRadius = %v, want just the INV", comb)
	}
}

func TestSingleNodePlacement(t *testing.T) {
	nl := netlist.New(1)
	in := nl.AddInput("in")
	p := Place(nl)
	if p.At(in) != (Point{0, 0}) {
		t.Fatalf("single node at %+v", p.At(in))
	}
	if p.Diameter() != 0 {
		t.Fatal("diameter of single node should be 0")
	}
}
