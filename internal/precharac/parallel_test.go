package precharac

import (
	"math"
	"testing"
)

// TestParallelLifetimeMatchesSerial pins the determinism contract of
// the parallel lifetime campaign: with a fixed benchmark, the
// characterization produced with several replay workers is
// byte-identical (exact float bits, exact classification) to the
// serial one. The per-register replays are independent and merge into
// fixed slots, so no worker count may change a single result.
func TestParallelLifetimeMatchesSerial(t *testing.T) {
	opts := smallOpts()
	opts.Probes = 2 // exercise the cross-probe accumulation too

	run := func(workers int) *Characterization {
		t.Helper()
		o := opts
		o.Workers = workers
		c, err := Characterize(synthSoC(t), o)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	serial := run(1)
	for _, workers := range []int{3, 7} {
		par := run(workers)
		if len(par.Regs) != len(serial.Regs) {
			t.Fatalf("workers=%d characterized %d registers, serial %d", workers, len(par.Regs), len(serial.Regs))
		}
		for r, want := range serial.Regs {
			got, ok := par.Regs[r]
			if !ok {
				t.Fatalf("workers=%d missing register %d", workers, r)
			}
			if math.Float64bits(got.Lifetime) != math.Float64bits(want.Lifetime) {
				t.Errorf("workers=%d reg %d lifetime %v, serial %v", workers, r, got.Lifetime, want.Lifetime)
			}
			if math.Float64bits(got.Contamination) != math.Float64bits(want.Contamination) {
				t.Errorf("workers=%d reg %d contamination %v, serial %v", workers, r, got.Contamination, want.Contamination)
			}
			if got.MemoryType != want.MemoryType {
				t.Errorf("workers=%d reg %d memory-type %v, serial %v", workers, r, got.MemoryType, want.MemoryType)
			}
		}
	}
}

// TestWorkerCountClamped covers the edge options: more workers than
// registers, and the NumCPU default (Workers=0), both of which must
// still produce the serial result.
func TestWorkerCountClamped(t *testing.T) {
	opts := smallOpts()
	serial, err := Characterize(synthSoC(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 10000} {
		o := opts
		o.Workers = workers
		c, err := Characterize(synthSoC(t), o)
		if err != nil {
			t.Fatal(err)
		}
		for r, want := range serial.Regs {
			got := c.Regs[r]
			if got == nil || *got != *want {
				t.Fatalf("workers=%d reg %d = %+v, serial %+v", workers, r, got, want)
			}
		}
	}
}
