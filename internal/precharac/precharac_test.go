package precharac

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/soc"
)

func synthSoC(t *testing.T) *soc.SoC {
	t.Helper()
	cfg := soc.DefaultConfig()
	s, err := soc.New(cfg, soc.SyntheticProgram(cfg.DMABase, cfg.DMALimit))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallOpts() Options {
	o := DefaultOptions()
	o.MaxDepth = 12
	o.TraceCycles = 512
	o.LifetimeCap = 60
	o.MemLifetimeMin = 40
	o.Probes = 1
	return o
}

// characterize once and share across tests; the campaign is the
// expensive part of this package's test suite.
var sharedChar *Characterization

func getChar(t *testing.T) (*Characterization, *soc.SoC) {
	t.Helper()
	s := synthSoC(t)
	if sharedChar == nil {
		c, err := Characterize(s, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		sharedChar = c
	}
	return sharedChar, s
}

func TestCharacterizeProducesCones(t *testing.T) {
	c, s := getChar(t)
	if c.Fanin.MaxDepth() != smallOpts().MaxDepth+1 {
		t.Fatalf("fanin depth = %d", c.Fanin.MaxDepth())
	}
	// The fanin cone at depth 1 must include the decision logic's
	// inputs: addr_r bits and config registers.
	addr := s.MPU.Groups["addr_r"]
	found := false
	for d := 1; d <= 2 && !found; d++ {
		found = c.Fanin.Contains(addr[0], d)
	}
	if !found {
		t.Error("addr_r not in responding-signal fanin cone")
	}
	// The access counter must NOT be in any cone: it never influences
	// the responding signal.
	cnt := s.MPU.Groups["access_cnt"][0]
	for d := 0; d < c.Fanin.MaxDepth(); d++ {
		if c.Fanin.Contains(cnt, d) {
			t.Error("access_cnt wrongly in fanin cone")
		}
	}
}

func TestConeReducesSampleSpace(t *testing.T) {
	c, s := getChar(t)
	total := len(s.MPU.Netlist.Regs())
	inCone := 0
	seen := map[netlist.NodeID]bool{}
	for _, layer := range c.Fanin.FilterRegs(s.MPU.Netlist) {
		for _, r := range layer {
			if !seen[r] {
				seen[r] = true
				inCone++
			}
		}
	}
	if inCone >= total {
		t.Fatalf("cone contains all %d registers; no reduction", total)
	}
	if inCone == 0 {
		t.Fatal("cone contains no registers")
	}
	t.Logf("registers: total %d, fanin cone %d", total, inCone)
}

func TestRegistersCharacterized(t *testing.T) {
	c, s := getChar(t)
	if len(c.Regs) == 0 {
		t.Fatal("no registers characterized")
	}
	for r, rc := range c.Regs {
		if rc.Lifetime < 0 || rc.Lifetime > float64(smallOpts().LifetimeCap) {
			t.Errorf("reg %d lifetime %v out of range", r, rc.Lifetime)
		}
		if rc.Contamination < 0 {
			t.Errorf("reg %d contamination %v negative", r, rc.Contamination)
		}
	}
	// Config registers of the disabled region 3 hold errors forever
	// without contaminating: archetypal memory-type.
	base3 := s.MPU.Groups["cfg_base3"]
	rc, ok := c.Regs[base3[7]]
	if !ok {
		t.Fatal("cfg_base3 not characterized (should be in cone)")
	}
	if !rc.MemoryType {
		t.Errorf("cfg_base3 bit: lifetime %.1f contam %.1f not memory-type", rc.Lifetime, rc.Contamination)
	}
	if rc.Lifetime < float64(smallOpts().MemLifetimeMin) {
		t.Errorf("disabled-region config lifetime %.1f too short", rc.Lifetime)
	}
}

func TestComputationRegsExist(t *testing.T) {
	c, s := getChar(t)
	comp := c.ComputationRegs()
	mem := c.MemoryRegs()
	if len(comp) == 0 {
		t.Fatal("no computation-type registers found")
	}
	if len(mem) == 0 {
		t.Fatal("no memory-type registers found")
	}
	// Paper: more than half of the registers are memory-type.
	if len(mem) <= len(comp) {
		t.Errorf("memory %d vs computation %d: expected memory-type majority", len(mem), len(comp))
	}
	// valid_r flips fabricate phantom requests (or suppress real
	// ones): whichever way the induced error goes, it must not be
	// classified memory-type.
	valid := s.MPU.Groups["valid_r"][0]
	if rc, ok := c.Regs[valid]; ok {
		if rc.MemoryType {
			t.Errorf("valid_r classified memory-type (lifetime %.1f, contam %.1f)", rc.Lifetime, rc.Contamination)
		}
	} else {
		t.Error("valid_r not characterized")
	}
	// viol_r feeds nothing inside the cones: its error is overwritten
	// at the next clock edge.
	viol := s.MPU.Groups["viol_r"][0]
	if rc, ok := c.Regs[viol]; ok {
		if rc.Lifetime > 3 {
			t.Errorf("viol_r lifetime %.1f, expected ~1", rc.Lifetime)
		}
	} else {
		t.Error("viol_r not characterized")
	}
	t.Logf("memory %d, computation %d", len(mem), len(comp))
}

func TestCorrelationBounds(t *testing.T) {
	c, s := getChar(t)
	nl := s.MPU.Netlist
	nonzero := 0
	for d := 0; d < c.Fanin.MaxDepth(); d++ {
		for _, g := range c.Fanin.ByDepth[d] {
			v := c.Corr(d, g)
			if v < 0 || v > 1 {
				t.Fatalf("Corr(%d, %d) = %v out of [0,1]", d, g, v)
			}
			if v > 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Error("all correlations zero: synthetic benchmark never toggles the responding signal?")
	}
	_ = nl
}

func TestRespondingSignalSelfCorrelation(t *testing.T) {
	c, _ := getChar(t)
	// At depth 0 the responding signal correlates perfectly with
	// itself (shift 0).
	rs := c.Responding[0]
	if got := c.Corr(0, rs); got != 1.0 {
		t.Errorf("self correlation = %v, want 1", got)
	}
}

func TestLifetimeAccessors(t *testing.T) {
	c, s := getChar(t)
	// A comb gate's lifetime is the max over the registers latching
	// it; gates feeding config registers inherit the config lifetime.
	nl := s.MPU.Netlist
	anyPos := false
	for _, layer := range c.Fanin.FilterComb(nl) {
		for _, g := range layer {
			if c.Lifetime(g) > 0 {
				anyPos = true
			}
		}
	}
	if !anyPos {
		t.Error("no comb gate has positive effective lifetime")
	}
	// Unknown node: 0.
	if c.Lifetime(netlist.NodeID(c.numNodes-1)) < 0 {
		t.Error("Lifetime must be non-negative")
	}
}

func TestFaninRegLayers(t *testing.T) {
	c, s := getChar(t)
	nl := s.MPU.Netlist
	all := c.FaninRegsByDepth(nl)
	comp := c.FaninCompRegsByDepth(nl)
	if len(all) != len(comp) {
		t.Fatal("layer counts differ")
	}
	for d := range all {
		if len(comp[d]) > len(all[d]) {
			t.Fatalf("depth %d: comp regs %d > all regs %d", d, len(comp[d]), len(all[d]))
		}
	}
	// Deeper layers should retain config registers (they persist
	// across unrolling), so the all-reg count stays roughly flat
	// while comp regs drop off.
	if len(all[smallOpts().MaxDepth]) == 0 {
		t.Error("deep fanin layer empty")
	}
}

func TestCharacterizeRejectsBadOptions(t *testing.T) {
	s := synthSoC(t)
	bad := smallOpts()
	bad.MaxDepth = 0
	if _, err := Characterize(s, bad); err == nil {
		t.Error("MaxDepth=0 accepted")
	}
	bad = smallOpts()
	bad.Probes = 0
	if _, err := Characterize(s, bad); err == nil {
		t.Error("Probes=0 accepted")
	}
}

func TestScalarAndParallelTracesAgree(t *testing.T) {
	optsA := smallOpts()
	optsA.BitParallel = true
	optsB := smallOpts()
	optsB.BitParallel = false
	optsA.TraceCycles, optsB.TraceCycles = 200, 200

	sA := synthSoC(t)
	trA := captureTrace(sA, optsA)
	sB := synthSoC(t)
	trB := captureTrace(sB, optsB)
	nl := sA.MPU.Netlist
	for i := 0; i < nl.NumNodes(); i++ {
		id := netlist.NodeID(i)
		a, b := trA.ValueBits(id), trB.ValueBits(id)
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("node %d (%s) word %d: parallel %x scalar %x", i, nl.Node(id).Name, w, a[w], b[w])
			}
		}
	}
}

func TestBitsetShiftHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(3)
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64()
			b[i] = rng.Uint64()
		}
		bitAt := func(w []uint64, c int) bool {
			if c < 0 || c >= len(w)*64 {
				return false
			}
			return w[c/64]>>uint(c%64)&1 == 1
		}
		for _, shift := range []int{0, 1, 5, 63, 64, 65, 130} {
			wantDown, wantUp := 0, 0
			for c := 0; c < n*64; c++ {
				if bitAt(a, c) && bitAt(b, c+shift) {
					wantDown++
				}
				if bitAt(a, c) && bitAt(b, c-shift) {
					wantUp++
				}
			}
			if got := andPopcountShiftDown(a, b, shift); got != wantDown {
				t.Fatalf("shiftDown(%d) = %d, want %d", shift, got, wantDown)
			}
			if got := andPopcountShiftUp(a, b, shift); got != wantUp {
				t.Fatalf("shiftUp(%d) = %d, want %d", shift, got, wantUp)
			}
		}
	}
}

func TestPaperCorrelationExample(t *testing.T) {
	// Figure 3 of the paper: verify the Corr computation on the
	// published example signatures.
	// ss(rs) = 01001101, ss(g1) = 00101101 (cycle 0 = leftmost bit in
	// the paper's notation; our bitsets are cycle 0 = bit 0, so the
	// strings are reversed when packed).
	pack := func(s string) []uint64 {
		var w uint64
		for i, ch := range s { // s[0] is cycle 0
			if ch == '1' {
				w |= 1 << uint(i)
			}
		}
		return []uint64{w}
	}
	// Reverse the paper's left-to-right strings so index 0 is cycle 0.
	rev := func(s string) string {
		out := []byte(s)
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return string(out)
	}
	rs := pack(rev("01001101"))
	g1 := pack(rev("00101101"))
	g2 := pack(rev("01100111"))
	g3 := pack(rev("01001111"))
	// Corr0(g1) = |g1 & rs| / |g1| = 3/4 (paper).
	if got := andPopcountShiftDown(g1, rs, 0); got != 3 {
		t.Errorf("g1 overlap = %d, want 3", got)
	}
	if popcount(g1) != 4 {
		t.Errorf("|g1| = %d, want 4", popcount(g1))
	}
	// Corr0(g2) = 3/5.
	if got := andPopcountShiftDown(g2, rs, 0); got != 3 {
		t.Errorf("g2 overlap = %d, want 3", got)
	}
	if popcount(g2) != 5 {
		t.Errorf("|g2| = %d, want 5", popcount(g2))
	}
	// Corr1(g3) = |g3 & (rs << 1)| / |g3| = 2/5: g3 is one unroll
	// earlier, its flips at cycle c pair with rs flips at cycle c+1.
	if got := andPopcountShiftDown(g3, rs, 1); got != 2 {
		t.Errorf("g3 overlap = %d, want 2", got)
	}
	if popcount(g3) != 5 {
		t.Errorf("|g3| = %d, want 5", popcount(g3))
	}
}
