// Package precharac implements the paper's three-step system
// pre-characterization (Section 4):
//
//  1. identify the responding signals and extract the fanin/fanout cones
//     in the unrolled netlist (Observation 1);
//  2. record switching signatures with RTL + bit-parallel gate-level
//     simulation of a synthetic benchmark, and compute each node's
//     bit-flip correlation with the responding signals (Observation 2);
//  3. inject bit errors into every register in the cones and measure
//     error lifetime and error contamination number, classifying
//     registers into memory-type and computation-type (Observation 3).
//
// The results feed the importance-sampling distribution g_{T,P}
// (internal/sampling) and the analytical evaluator for memory-type
// registers (internal/analytical).
package precharac

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/logicsim"
	"repro/internal/modelcheck"
	"repro/internal/netlist"
	"repro/internal/soc"
)

// Options tunes the pre-characterization campaigns.
type Options struct {
	// MaxDepth is the number of unroll levels of the cone extraction;
	// it must cover the largest timing distance the attack model uses.
	MaxDepth int
	// TraceCycles is the length of the synthetic-benchmark trace the
	// switching signatures are extracted from.
	TraceCycles int
	// BitParallel selects the 64-way signature extraction (the
	// scalar path exists for the ablation benchmark).
	BitParallel bool
	// Lanes widens the bit-parallel combinational recovery: each pass
	// evaluates Lanes cycles of gate values through [K]uint64 wide
	// words (64, 256, or 512; 0 means 512). Ignored without
	// BitParallel; the signatures are bit-identical at every width.
	Lanes int
	// LifetimeCap is the horizon (cycles) of the lifetime campaign;
	// errors alive at the horizon report this value.
	LifetimeCap int
	// Probes is the number of injection points spread across the
	// synthetic benchmark for the lifetime campaign.
	Probes int
	// MemLifetimeMin and MemContamMax classify a register as
	// memory-type: lifetime at least the former, contamination at
	// most the latter.
	MemLifetimeMin int
	MemContamMax   float64
	// SkipModelCheck disables the static verification pass run over
	// the netlist (and the responding-signal cone window) before the
	// campaigns start. The guard rejects only error-severity findings,
	// so skipping it never changes results on a valid design.
	SkipModelCheck bool
	// Workers bounds the goroutines of the lifetime campaign's
	// per-register replays (0 means runtime.NumCPU(), 1 forces the
	// serial path). Each injected register is an independent replay
	// against the shared golden trajectory, and per-register results
	// are merged in sorted register order, so the output is
	// byte-identical at every worker count.
	Workers int
}

// DefaultOptions returns the settings used by the paper-scale
// experiments.
func DefaultOptions() Options {
	return Options{
		MaxDepth:       50,
		TraceCycles:    1024,
		BitParallel:    true,
		LifetimeCap:    200,
		Probes:         2,
		MemLifetimeMin: 100,
		MemContamMax:   0.5,
	}
}

// RegChar is the per-register characterization outcome.
type RegChar struct {
	Reg netlist.NodeID
	// Lifetime is the average number of cycles an injected bit error
	// survives before being masked (capped at LifetimeCap).
	Lifetime float64
	// Contamination is the average number of other registers the
	// error spreads to within the horizon.
	Contamination float64
	// MemoryType marks long-lifetime, non-propagating registers.
	MemoryType bool
}

// Characterization is the full pre-characterization result.
type Characterization struct {
	Opts Options
	// Responding are the responding-signal register nodes.
	Responding []netlist.NodeID
	// Fanin and Fanout are the unrolled cones of the responding
	// signals; Cone is their union per depth.
	Fanin, Fanout, Cone *netlist.Cone
	// Regs characterizes every register in the cones.
	Regs map[netlist.NodeID]*RegChar

	corrFanin  [][]float64 // [depth][node]
	corrFanout [][]float64
	rsDensity  float64
	combLife   []float64 // [node] effective lifetime of comb gates
	numNodes   int
}

// Characterize runs all three pre-characterization steps on a SoC that
// executes a synthetic benchmark. The SoC is Reset and driven by the
// campaign; it is left in an arbitrary state afterwards.
func Characterize(s *soc.SoC, opts Options) (*Characterization, error) {
	if opts.MaxDepth < 1 || opts.TraceCycles < 2 || opts.LifetimeCap < 1 || opts.Probes < 1 {
		return nil, fmt.Errorf("precharac: invalid options %+v", opts)
	}
	if _, err := laneGroups(opts.Lanes); err != nil {
		return nil, err
	}
	nl := s.MPU.Netlist
	c := &Characterization{
		Opts:       opts,
		Responding: append([]netlist.NodeID(nil), s.MPU.RespondingSignals...),
		Regs:       make(map[netlist.NodeID]*RegChar),
		numNodes:   nl.NumNodes(),
	}
	if len(c.Responding) == 0 {
		return nil, fmt.Errorf("precharac: design has no responding signals")
	}
	if !opts.SkipModelCheck {
		report := modelcheck.CheckModel(modelcheck.Model{
			Netlist:    nl,
			Responding: c.Responding,
			MaxDepth:   opts.MaxDepth,
		})
		if err := report.Err(modelcheck.Error); err != nil {
			return nil, fmt.Errorf("precharac: design rejected by static verification: %w", err)
		}
	}

	// Step 1: unrolled cones.
	c.Fanin = nl.UnrolledFaninCone(c.Responding, opts.MaxDepth)
	c.Fanout = nl.UnrolledFanoutCone(c.Responding, opts.MaxDepth)
	c.Cone = netlist.Merge(c.Fanin, c.Fanout)

	// Step 2: switching signatures and bit-flip correlation.
	trace := captureTrace(s, opts)
	c.computeCorrelations(nl, trace)

	// Step 3: error lifetime and contamination.
	if err := c.lifetimeCampaign(s, opts); err != nil {
		return nil, err
	}
	c.computeCombLifetimes(nl)
	return c, nil
}

// captureTrace records a synthetic-benchmark trace of the MPU netlist.
func captureTrace(s *soc.SoC, opts Options) *logicsim.Trace {
	s.Reset()
	trace := logicsim.NewTrace(s.MPU.Netlist, opts.TraceCycles)
	for cyc := 0; cyc < opts.TraceCycles; cyc++ {
		cyc := cyc
		s.StepInject(func(func(netlist.NodeID) bool) []netlist.NodeID {
			if opts.BitParallel {
				trace.RecordSources(s.Sim, cyc)
			} else {
				trace.RecordAll(s.Sim, cyc)
			}
			return nil
		})
	}
	if opts.BitParallel {
		groups, _ := laneGroups(opts.Lanes)
		trace.FillCombWide(s.Sim, groups)
	}
	return trace
}

// laneGroups maps the Lanes option to its 64-cycle group count per
// wide combinational pass (0 defaults to the widest word).
func laneGroups(lanes int) (int, error) {
	switch lanes {
	case 64:
		return 1, nil
	case 256:
		return 4, nil
	case 0, 512:
		return 8, nil
	default:
		return 0, fmt.Errorf("precharac: unsupported lane count %d (want 64, 256, or 512)", lanes)
	}
}

// computeCorrelations evaluates Corr_i(g, rs) for every node in the
// cones, taking the maximum over responding signals.
func (c *Characterization) computeCorrelations(nl *netlist.Netlist, trace *logicsim.Trace) {
	rsSigs := make([][]uint64, len(c.Responding))
	for i, rs := range c.Responding {
		rsSigs[i] = trace.SwitchSignature(rs)
		if d := float64(popcount(rsSigs[i])) / float64(trace.NumCycles()); d > c.rsDensity {
			c.rsDensity = d
		}
	}
	c.corrFanin = corrLayers(nl, trace, rsSigs, c.Fanin, false)
	c.corrFanout = corrLayers(nl, trace, rsSigs, c.Fanout, true)
}

func corrLayers(nl *netlist.Netlist, trace *logicsim.Trace, rsSigs [][]uint64, cone *netlist.Cone, forward bool) [][]float64 {
	out := make([][]float64, len(cone.ByDepth))
	for d, layer := range cone.ByDepth {
		out[d] = make([]float64, nl.NumNodes())
		for _, g := range layer {
			ss := trace.SwitchSignature(g)
			weight := popcount(ss)
			if weight == 0 {
				continue
			}
			best := 0.0
			for _, rsSig := range rsSigs {
				var overlap int
				if forward {
					// Flips at rs at cycle k reach g at k+d:
					// align rs's signature shifted up by d.
					overlap = andPopcountShiftUp(ss, rsSig, d)
				} else {
					// Flips at g at cycle k reach rs at k+d:
					// align rs's signature shifted down by d.
					overlap = andPopcountShiftDown(ss, rsSig, d)
				}
				if corr := float64(overlap) / float64(weight); corr > best {
					best = corr
				}
			}
			out[d][g] = best
		}
	}
	return out
}

// lifetimeCampaign injects one bit flip per register (at several probe
// points of the synthetic benchmark) and tracks how long the error
// stays visible in the responding-signal cones.
//
// The campaign is module-level: the golden run records the MPU's input
// waveforms, and each faulty run replays those inputs into a standalone
// netlist simulation. Lifetime and contamination are measured over the
// registers inside the responding-signal cones — registers outside the
// cones (e.g. a performance counter) can never influence the responding
// signals, so divergence there does not keep an error "alive" in the
// paper's sense.
func (c *Characterization) lifetimeCampaign(s *soc.SoC, opts Options) error {
	nl := s.MPU.Netlist
	regsInCone := map[netlist.NodeID]bool{}
	for _, layer := range c.Cone.ByDepth {
		for _, id := range layer {
			if nl.Node(id).Type == netlist.DFF {
				regsInCone[id] = true
			}
		}
	}
	if len(regsInCone) == 0 {
		return fmt.Errorf("precharac: no registers in responding-signal cones")
	}
	// coneRegs fixes the injection-spot order: workers are assigned
	// registers by index and results are merged back in this order, so
	// the campaign output does not depend on the worker count.
	coneRegs := make([]netlist.NodeID, 0, len(regsInCone))
	//maporder-ok (sorted below)
	for r := range regsInCone {
		coneRegs = append(coneRegs, r)
	}
	sortIDs(coneRegs)
	sums := map[netlist.NodeID]*RegChar{}
	for _, r := range coneRegs {
		sums[r] = &RegChar{Reg: r}
	}
	allRegs := nl.Regs()
	// inConeIdx[i] marks position i of RegState as security-relevant.
	inConeIdx := make([]bool, len(allRegs))
	for i, r := range allRegs {
		inConeIdx[i] = regsInCone[r]
	}
	inputs := nl.Inputs()

	// Probe points spread across the benchmark, past the privileged
	// setup.
	warmup := 64
	stride := (opts.TraceCycles - warmup) / opts.Probes
	if stride < 1 {
		stride = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(coneRegs) {
		workers = len(coneRegs)
	}
	// One private replay simulator per worker: a Simulator is not safe
	// for concurrent use, but forks share the immutable netlist, plan,
	// and topological order.
	replays := make([]*logicsim.Simulator, workers)
	base, err := logicsim.New(nl)
	if err != nil {
		return err
	}
	replays[0] = base
	for w := 1; w < workers; w++ {
		replays[w] = base.Fork()
	}
	// lifeSum/contamSum accumulate per-register across probes in fixed
	// slots of the sorted register order — every (register, probe) cell
	// has one writer, so the worker count never reorders an addition.
	lifeSum := make([]float64, len(coneRegs))
	contamSum := make([]float64, len(coneRegs))
	for p := 0; p < opts.Probes; p++ {
		probe := warmup + p*stride
		s.Reset()
		for s.Cycle() < probe {
			s.Step()
		}
		start := s.Sim.RegState()

		// Golden trajectory: per-cycle input vectors and register
		// states, captured from the full-system run.
		goldenIn := make([][]uint64, opts.LifetimeCap)
		golden := make([][]uint64, opts.LifetimeCap+1)
		golden[0] = start
		for k := 0; k < opts.LifetimeCap; k++ {
			k := k
			s.StepInject(func(func(netlist.NodeID) bool) []netlist.NodeID {
				in := make([]uint64, len(inputs))
				for i, id := range inputs {
					in[i] = s.Sim.Val(id) & 1
				}
				goldenIn[k] = in
				return nil
			})
			golden[k+1] = s.Sim.RegState()
		}

		// Replay one injection per cone register, striped across the
		// workers against the shared read-only golden trajectory.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				replay := replays[w]
				for i := w; i < len(coneRegs); i += workers {
					life, contam := replayInjection(replay, coneRegs[i], start, goldenIn, golden, inputs, inConeIdx, allRegs, opts.LifetimeCap)
					lifeSum[i] += float64(life)
					contamSum[i] += float64(contam)
				}
			}(w)
		}
		wg.Wait()
	}
	for i, r := range coneRegs {
		rc := sums[r]
		rc.Lifetime = lifeSum[i] / float64(opts.Probes)
		rc.Contamination = contamSum[i] / float64(opts.Probes)
		rc.MemoryType = rc.Lifetime >= float64(opts.MemLifetimeMin) && rc.Contamination <= opts.MemContamMax
		c.Regs[r] = rc
	}
	return nil
}

// replayInjection flips one register at the probe state, replays the
// golden input waveforms, and returns the error's lifetime (cycles
// until the cone registers reconverge with the golden run, capped) and
// its contamination count (distinct other cone registers touched).
func replayInjection(replay *logicsim.Simulator, r netlist.NodeID, start []uint64, goldenIn, golden [][]uint64, inputs []netlist.NodeID, inConeIdx []bool, allRegs []netlist.NodeID, horizon int) (life, contam int) {
	replay.SetRegState(start)
	replay.FlipReg(r)
	life = horizon
	contamIdx := map[int]bool{}
	for k := 0; k < horizon; k++ {
		for i, id := range inputs {
			replay.SetInput(id, goldenIn[k][i])
		}
		replay.Step()
		state := replay.RegState()
		diff := false
		for i := range state {
			if !inConeIdx[i] {
				continue
			}
			if (state[i]^golden[k+1][i])&1 != 0 {
				diff = true
				if allRegs[i] != r {
					contamIdx[i] = true
				}
			}
		}
		if !diff {
			life = k + 1
			break
		}
	}
	return life, len(contamIdx)
}

// computeCombLifetimes assigns every combinational gate the maximum
// lifetime of the registers that directly latch its output (the
// registers in its forward cone across one register boundary), per the
// paper's definition of L(g) for combinational g.
func (c *Characterization) computeCombLifetimes(nl *netlist.Netlist) {
	c.combLife = make([]float64, nl.NumNodes())
	for r, rc := range c.Regs {
		// Clock-gated registers cannot capture D-path transients
		// while their enable is low (which, for config stores, is
		// essentially always outside reconfiguration) — they do not
		// extend any gate's effective attack lifetime.
		if nl.Node(r).En != netlist.Invalid {
			continue
		}
		// Depth 1 of the register's own fanin cone is exactly the
		// logic that feeds its D pin within one cycle — the gates
		// whose transients this register can latch.
		cone := nl.UnrolledFaninCone([]netlist.NodeID{r}, 1)
		for _, g := range cone.ByDepth[1] {
			t := nl.Node(g).Type
			if t.IsCombinational() && t != netlist.Const0 && t != netlist.Const1 {
				if rc.Lifetime > c.combLife[g] {
					c.combLife[g] = rc.Lifetime
				}
			}
		}
	}
}

// SwitchDensity returns the switching activity of the busiest
// responding signal (toggles per cycle) — the chance-level baseline of
// the bit-flip correlation: an uncorrelated node that switches every
// cycle still scores roughly this value.
func (c *Characterization) SwitchDensity() float64 { return c.rsDensity }

// Corr returns the bit-flip correlation of a node at an unroll depth
// (maximum over responding signals and over the fanin/fanout sides).
func (c *Characterization) Corr(depth int, id netlist.NodeID) float64 {
	best := 0.0
	if depth >= 0 && depth < len(c.corrFanin) {
		if v := c.corrFanin[depth][id]; v > best {
			best = v
		}
	}
	if depth >= 0 && depth < len(c.corrFanout) {
		if v := c.corrFanout[depth][id]; v > best {
			best = v
		}
	}
	return best
}

// Lifetime returns L(g): a register's own characterized lifetime, or
// for a combinational gate the maximum lifetime of the registers
// latching it. Nodes outside the characterized cones report 0.
func (c *Characterization) Lifetime(id netlist.NodeID) float64 {
	if rc, ok := c.Regs[id]; ok {
		return rc.Lifetime
	}
	if int(id) < len(c.combLife) {
		return c.combLife[id]
	}
	return 0
}

// MemoryRegs returns the memory-type registers, and ComputationRegs the
// rest of the characterized population.
func (c *Characterization) MemoryRegs() []netlist.NodeID {
	return c.selectRegs(true)
}

// ComputationRegs returns the computation-type registers.
func (c *Characterization) ComputationRegs() []netlist.NodeID {
	return c.selectRegs(false)
}

func (c *Characterization) selectRegs(memory bool) []netlist.NodeID {
	var out []netlist.NodeID
	//maporder-ok (sorted by id below)
	for _, rc := range c.Regs {
		if rc.MemoryType == memory {
			out = append(out, rc.Reg)
		}
	}
	sortIDs(out)
	return out
}

// CombLayer returns the combinational gates of the unrolled cones at
// the paper's unroll index i — the gates whose transient, injected at
// timing distance t = i, can reach the responding signals' latch at the
// target cycle. In cone-depth terms these sit at depth i+1: a gate
// feeding a responding register directly (paper's 0th unrolled circuit)
// is one register-boundary crossing away from it.
func (c *Characterization) CombLayer(nl *netlist.Netlist, i int) []netlist.NodeID {
	d := i + 1
	if d < 0 || d >= c.Cone.MaxDepth() {
		return nil
	}
	var out []netlist.NodeID
	for _, g := range c.Cone.ByDepth[d] {
		t := nl.Node(g).Type
		if t.IsCombinational() && t != netlist.Const0 && t != netlist.Const1 {
			out = append(out, g)
		}
	}
	return out
}

// CorrComb returns the bit-flip correlation of a combinational gate at
// the paper's unroll index i (cone depth i+1).
func (c *Characterization) CorrComb(i int, id netlist.NodeID) float64 {
	return c.Corr(i+1, id)
}

// MaxUnrollIndex returns the largest paper-style unroll index i for
// which CombLayer is characterized.
func (c *Characterization) MaxUnrollIndex() int { return c.Cone.MaxDepth() - 2 }

// FaninRegsByDepth returns the registers of the fanin cone per unroll
// depth (Fig 8(b)'s middle series).
func (c *Characterization) FaninRegsByDepth(nl *netlist.Netlist) [][]netlist.NodeID {
	return c.Fanin.FilterRegs(nl)
}

// FaninCompRegsByDepth returns only the computation-type registers per
// depth (Fig 8(b)'s bottom series — the population the sampling method
// actually has to cover).
func (c *Characterization) FaninCompRegsByDepth(nl *netlist.Netlist) [][]netlist.NodeID {
	layers := c.Fanin.FilterRegs(nl)
	out := make([][]netlist.NodeID, len(layers))
	for d, layer := range layers {
		for _, r := range layer {
			if rc, ok := c.Regs[r]; ok && !rc.MemoryType {
				out[d] = append(out[d], r)
			}
		}
	}
	return out
}

func sortIDs(ids []netlist.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// --- bitset helpers ------------------------------------------------------

func popcount(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// andPopcountShiftDown counts bits where a[c] and b[c+shift] are both
// set (b shifted down towards cycle 0).
func andPopcountShiftDown(a, b []uint64, shift int) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & extractShifted(b, w, shift))
	}
	return n
}

// andPopcountShiftUp counts bits where a[c] and b[c-shift] are both set.
func andPopcountShiftUp(a, b []uint64, shift int) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & extractShifted(b, w, -shift))
	}
	return n
}

// extractShifted returns word w of the bitset b logically shifted so
// that bit c of the result equals bit c+shift of b (zero fill).
func extractShifted(b []uint64, w, shift int) uint64 {
	base := w*64 + shift
	var out uint64
	wordIdx := base >> 6
	bitOff := base & 63
	if base < 0 {
		wordIdx = (base - 63) / 64
		bitOff = base - wordIdx*64
	}
	if wordIdx >= 0 && wordIdx < len(b) {
		out = b[wordIdx] >> uint(bitOff)
	}
	if bitOff != 0 && wordIdx+1 >= 0 && wordIdx+1 < len(b) {
		out |= b[wordIdx+1] << uint(64-bitOff)
	}
	return out
}
