package fault

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/stats"
)

func testNetlist() (*netlist.Netlist, []netlist.NodeID) {
	nl := netlist.New(64)
	in := nl.AddInput("in")
	var gates []netlist.NodeID
	cur := in
	for i := 0; i < 30; i++ {
		cur = nl.AddGate(netlist.Inv, cur)
		gates = append(gates, cur)
	}
	return nl, gates
}

func TestNewAttackValidation(t *testing.T) {
	_, gates := testNetlist()
	tech := DefaultRadiation()
	if _, err := NewAttack("a", 0, tech, gates, nil); err == nil {
		t.Error("TRange 0 accepted")
	}
	if _, err := NewAttack("a", 10, tech, nil, nil); err == nil {
		t.Error("empty candidates accepted")
	}
	d, _ := stats.NewDiscrete([]float64{1, 2})
	if _, err := NewAttack("a", 10, tech, gates, d); err == nil {
		t.Error("mismatched center distribution accepted")
	}
	if _, err := NewAttack("a", 10, tech, gates, nil); err != nil {
		t.Errorf("valid attack rejected: %v", err)
	}
}

func TestSampleNominalRanges(t *testing.T) {
	_, gates := testNetlist()
	tech := DefaultRadiation()
	a, err := NewAttack("a", 25, tech, gates, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inCand := map[netlist.NodeID]bool{}
	for _, g := range gates {
		inCand[g] = true
	}
	for i := 0; i < 2000; i++ {
		s := a.SampleNominal(rng)
		if s.T < 0 || s.T >= 25 {
			t.Fatalf("T = %d out of range", s.T)
		}
		if !inCand[s.Center] {
			t.Fatalf("center %d not a candidate", s.Center)
		}
		if s.Radius < tech.Radius-tech.RadiusJitter-1e-9 || s.Radius > tech.Radius+tech.RadiusJitter+1e-9 {
			t.Fatalf("radius %v out of range", s.Radius)
		}
		if s.Width < 0 || s.Width > tech.PulseWidth+tech.PulseJitter+1e-9 {
			t.Fatalf("width %v out of range", s.Width)
		}
		if s.Time < 0 || s.Time >= tech.ClockPeriod {
			t.Fatalf("time %v out of range", s.Time)
		}
	}
}

func TestDensityUniform(t *testing.T) {
	_, gates := testNetlist()
	a, _ := NewAttack("a", 10, DefaultRadiation(), gates, nil)
	s := Sample{T: 3, Center: gates[5]}
	want := (1.0 / 10) * (1.0 / float64(len(gates)))
	if got := a.Density(s); math.Abs(got-want) > 1e-15 {
		t.Errorf("density %v, want %v", got, want)
	}
	// Out-of-range timing distance has zero density.
	if a.Density(Sample{T: 10, Center: gates[0]}) != 0 {
		t.Error("T out of range should have density 0")
	}
	if a.Density(Sample{T: -1, Center: gates[0]}) != 0 {
		t.Error("negative T should have density 0")
	}
	// Non-candidate center has zero density.
	if a.Density(Sample{T: 0, Center: netlist.NodeID(0)}) != 0 {
		t.Error("non-candidate center should have density 0")
	}
}

func TestDensityWithCenterDist(t *testing.T) {
	_, gates := testNetlist()
	w := make([]float64, len(gates))
	for i := range w {
		w[i] = 1
	}
	w[3] = 7 // concentrate on gates[3]
	d, _ := stats.NewDiscrete(w)
	a, _ := NewAttack("a", 5, DefaultRadiation(), gates, d)
	got := a.CenterProb(gates[3])
	want := 7.0 / (float64(len(gates)-1) + 7)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CenterProb = %v, want %v", got, want)
	}
	// Sampling must follow the distribution.
	rng := rand.New(rand.NewSource(2))
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if a.SampleNominal(rng).Center == gates[3] {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-want) > 0.01 {
		t.Errorf("sampled frequency %v, want %v", float64(hits)/n, want)
	}
}

func TestStrikeUsesPlacementRadius(t *testing.T) {
	nl, gates := testNetlist()
	place := placement.Place(nl)
	a, _ := NewAttack("a", 5, DefaultRadiation(), gates, nil)
	s := Sample{T: 0, Center: gates[10], Radius: 0, Width: 100, Time: 50}
	strike := a.Strike(place, s)
	if len(strike.Gates) != 1 || strike.Gates[0] != gates[10] {
		t.Errorf("radius-0 strike gates = %v", strike.Gates)
	}
	if strike.Time != 50 || strike.Width != 100 {
		t.Error("strike time/width not forwarded")
	}
	s.Radius = 1e9
	strike = a.Strike(place, s)
	if len(strike.Gates) != len(gates) {
		t.Errorf("huge radius struck %d of %d gates", len(strike.Gates), len(gates))
	}
}

func TestSampleWidthNonNegative(t *testing.T) {
	tech := Radiation{PulseWidth: 10, PulseJitter: 50, ClockPeriod: 100}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if w := tech.SampleWidth(rng); w < 0 {
			t.Fatalf("negative width %v", w)
		}
	}
}

func TestConcentratedCenters(t *testing.T) {
	nl, gates := testNetlist()
	place := placement.Place(nl)
	target := gates[15]
	all := ConcentratedCenters(place, gates, target, 1.0)
	if len(all) != len(gates) {
		t.Fatalf("frac 1 returned %d of %d", len(all), len(gates))
	}
	half := ConcentratedCenters(place, gates, target, 0.5)
	if len(half) != len(gates)/2 {
		t.Fatalf("frac 0.5 returned %d", len(half))
	}
	// Every selected gate must be at least as close as every excluded
	// gate.
	sel := map[netlist.NodeID]bool{}
	maxSel := 0.0
	for _, g := range half {
		sel[g] = true
		if d := place.Dist(g, target); d > maxSel {
			maxSel = d
		}
	}
	for _, g := range gates {
		if !sel[g] && place.Dist(g, target) < maxSel-1e-9 {
			t.Fatalf("closer gate %d excluded", g)
		}
	}
	// Delta: single gate, the target itself.
	one := ConcentratedCenters(place, gates, target, 1e-9)
	if len(one) != 1 || one[0] != target {
		t.Fatalf("delta = %v, want [%d]", one, target)
	}
}
