// Package fault implements the paper's holistic fault-injection model:
// the attack timing distance t = Tt − Te and the technique parameter
// vector p = [g, r] (radiation center gate and radius) are treated as
// samples of random variables (T, P) following a distribution f_{T,P}
// determined by the attack technique's temporal accuracy and parameter
// variation, and by the attack strategy's spatial targeting.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/stats"
	"repro/internal/timingsim"
)

// Radiation characterizes a radiation-based injection technique
// (laser/heavy-ion class). The physical mechanism matches soft-error
// particle strikes, which is why the gate-level model reuses the SEU
// transient flow.
type Radiation struct {
	// Radius is the expected radiated radius in cell pitches;
	// RadiusJitter is the half-width of its uniform variation.
	Radius, RadiusJitter float64
	// PulseWidth is the expected deposited transient width (ps);
	// PulseJitter is the half-width of its uniform variation.
	PulseWidth, PulseJitter float64
	// ImpactCycles is the number of consecutive cycles a single
	// injection disturbs (the paper assumes 1 but notes the framework
	// "can easily incorporate multi-cycle impact"). 0 is treated as 1.
	ImpactCycles int
	// ClockPeriod bounds the uniform strike instant within the
	// injection cycle.
	ClockPeriod float64
}

// DefaultRadiation returns a technique matched to the default delay
// model: pulses wide enough to survive a few logic levels, a spot
// covering a handful of cells.
func DefaultRadiation() Radiation {
	return Radiation{
		Radius:       1.5,
		RadiusJitter: 0.6,
		PulseWidth:   260,
		PulseJitter:  140,
		ClockPeriod:  600,
	}
}

// SampleRadius draws a radiated radius.
func (r Radiation) SampleRadius(rng *rand.Rand) float64 {
	return r.RadiusFromU(rng.Float64())
}

// RadiusFromU maps a uniform variate u in [0, 1) to a radiated radius —
// the inverse CDF behind SampleRadius, exposed so low-discrepancy
// sequences can drive the same distribution.
func (r Radiation) RadiusFromU(u float64) float64 {
	return r.Radius + (u*2-1)*r.RadiusJitter
}

// SampleWidth draws a transient pulse width.
func (r Radiation) SampleWidth(rng *rand.Rand) float64 {
	return r.WidthFromU(rng.Float64())
}

// WidthFromU maps a uniform variate to a transient pulse width.
func (r Radiation) WidthFromU(u float64) float64 {
	w := r.PulseWidth + (u*2-1)*r.PulseJitter
	if w < 0 {
		w = 0
	}
	return w
}

// SampleTime draws the strike instant within the injection cycle.
func (r Radiation) SampleTime(rng *rand.Rand) float64 {
	return r.TimeFromU(rng.Float64())
}

// TimeFromU maps a uniform variate to a strike instant.
func (r Radiation) TimeFromU(u float64) float64 {
	return u * r.ClockPeriod
}

// Attack is the full nominal attack distribution f_{T,P}: what the
// attacker's technique and strategy imply before any framework-side
// importance sampling. T is uniform over [0, TRange) timing distances
// (temporal accuracy); the strike center is drawn from CenterDist over
// Candidates (spatial accuracy); radius, pulse width, and strike instant
// come from the technique.
type Attack struct {
	Name      string
	TRange    int
	Technique Radiation
	// Candidates is the gate population the strike center ranges
	// over (e.g. a sub-block of the MPU).
	Candidates []netlist.NodeID
	// CenterDist is the distribution over Candidates; uniform
	// spatial accuracy is the default (nil).
	CenterDist *stats.Discrete

	centerIdx map[netlist.NodeID]int
}

// NewAttack validates and indexes an attack description.
func NewAttack(name string, tRange int, tech Radiation, candidates []netlist.NodeID, centerDist *stats.Discrete) (*Attack, error) {
	if tRange < 1 {
		return nil, fmt.Errorf("fault: TRange = %d", tRange)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("fault: no candidate gates")
	}
	if centerDist != nil && centerDist.Len() != len(candidates) {
		return nil, fmt.Errorf("fault: center distribution over %d, %d candidates", centerDist.Len(), len(candidates))
	}
	a := &Attack{
		Name: name, TRange: tRange, Technique: tech,
		Candidates: candidates, CenterDist: centerDist,
		centerIdx: make(map[netlist.NodeID]int, len(candidates)),
	}
	for i, id := range candidates {
		a.centerIdx[id] = i
	}
	return a, nil
}

// Sample is one draw of the attack parameters.
type Sample struct {
	// T is the timing distance: the injection cycle is Tt - T.
	T int
	// Center is the struck gate the radiation spot centers on.
	Center netlist.NodeID
	// Radius, Width, Time are the technique parameters of this shot.
	Radius, Width, Time float64
	// Cycles is the number of consecutive disturbed cycles (>= 1).
	Cycles int
}

// SampleNominal draws (t, p) from f_{T,P} itself — this is random
// sampling in the paper's comparison.
func (a *Attack) SampleNominal(rng *rand.Rand) Sample {
	var center netlist.NodeID
	if a.CenterDist != nil {
		center = a.Candidates[a.CenterDist.Sample(rng.Float64())]
	} else {
		center = a.Candidates[rng.Intn(len(a.Candidates))]
	}
	return Sample{
		T:      rng.Intn(a.TRange),
		Center: center,
		Radius: a.Technique.SampleRadius(rng),
		Width:  a.Technique.SampleWidth(rng),
		Time:   a.Technique.SampleTime(rng),
		Cycles: a.Technique.Cycles(),
	}
}

// Cycles returns the technique's per-injection impact length (>= 1).
func (r Radiation) Cycles() int {
	if r.ImpactCycles < 1 {
		return 1
	}
	return r.ImpactCycles
}

// TProb returns f_T(t).
func (a *Attack) TProb(t int) float64 {
	if t < 0 || t >= a.TRange {
		return 0
	}
	return 1 / float64(a.TRange)
}

// CenterIndex returns the candidate index of a center gate, and
// whether the gate is a candidate at all. Lookup tables indexed by
// candidate position (e.g. the control-variate table) use it to map a
// drawn center back to its slot.
func (a *Attack) CenterIndex(center netlist.NodeID) (int, bool) {
	i, ok := a.centerIdx[center]
	return i, ok
}

// CenterProb returns f_P's mass on the given center gate.
func (a *Attack) CenterProb(center netlist.NodeID) float64 {
	i, ok := a.centerIdx[center]
	if !ok {
		return 0
	}
	if a.CenterDist != nil {
		return a.CenterDist.Prob(i)
	}
	return 1 / float64(len(a.Candidates))
}

// Density returns f_{T,P}(t, center) over the discrete part of the
// parameter space. The continuous technique parameters (radius, width,
// instant) are drawn identically under every sampling strategy, so
// their densities cancel in the importance weights and are omitted.
func (a *Attack) Density(s Sample) float64 {
	return a.TProb(s.T) * a.CenterProb(s.Center)
}

// ChargeSharingDecay is the fraction of the deposit width lost at the
// spot's edge: a gate at distance d from the center receives
// Width · (1 − ChargeSharingDecay · d/r).
const ChargeSharingDecay = 0.45

// Strike materializes the gate-level strike for a sample: the struck
// gates are the combinational cells placed within the radiated radius,
// each receiving a deposit that decays with its distance from the spot
// center (charge sharing).
func (a *Attack) Strike(p *placement.Placement, s Sample) timingsim.Strike {
	gates := p.CombWithinRadius(s.Center, s.Radius)
	widths := make([]float64, len(gates))
	for i, g := range gates {
		frac := 1.0
		if s.Radius > 0 {
			frac = 1 - ChargeSharingDecay*p.Dist(g, s.Center)/s.Radius
		}
		widths[i] = s.Width * frac
	}
	return timingsim.Strike{
		Gates:  gates,
		Time:   s.Time,
		Width:  s.Width,
		Widths: widths,
	}
}

// StrikeFrom assembles the same Strike as Strike from a precomputed
// spot — the struck gates and their placed distances from s.Center, as
// placement.SpotIndex.CombWithin returns them — reusing widthsBuf as
// the width scratch. The computed widths are bit-identical to Strike's;
// the returned slice is the grown scratch for the caller to keep.
func (a *Attack) StrikeFrom(s Sample, gates []netlist.NodeID, dists, widthsBuf []float64) (timingsim.Strike, []float64) {
	widths := widthsBuf[:0]
	for _, d := range dists {
		frac := 1.0
		if s.Radius > 0 {
			frac = 1 - ChargeSharingDecay*d/s.Radius
		}
		widths = append(widths, s.Width*frac) //alloc-ok (reused scratch buffer)
	}
	return timingsim.Strike{
		Gates:  gates,
		Time:   s.Time,
		Width:  s.Width,
		Widths: widths,
	}, widths
}

// --- Spatial-accuracy helpers (Fig 11b sweep) ---------------------------

// ConcentratedCenters returns a candidate subset for an attacker whose
// spatial accuracy keeps the spot within the frac·N placed-distance
// nearest gates of the target (frac = 1 is the uniform worst case;
// frac → 0 approaches the delta function at the target).
func ConcentratedCenters(p *placement.Placement, all []netlist.NodeID, target netlist.NodeID, frac float64) []netlist.NodeID {
	if frac >= 1 {
		return all
	}
	n := int(frac * float64(len(all)))
	if n < 1 {
		n = 1
	}
	type gd struct {
		id netlist.NodeID
		d  float64
	}
	ds := make([]gd, len(all))
	for i, id := range all {
		ds[i] = gd{id, p.Dist(id, target)}
	}
	// Selection by partial sort (n is usually small).
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(ds); j++ {
			if ds[j].d < ds[min].d || (ds[j].d == ds[min].d && ds[j].id < ds[min].id) {
				min = j
			}
		}
		ds[i], ds[min] = ds[min], ds[i]
	}
	out := make([]netlist.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = ds[i].id
	}
	return out
}
