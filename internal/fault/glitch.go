package fault

import (
	"fmt"
	"math/rand"
)

// ClockGlitch characterizes a clock-modification technique: for one
// cycle the capture edge arrives early by a glitch depth (ps). Unlike a
// radiation spot, the effect is global — every register whose data path
// is longer than the shortened period captures stale data — so the
// technique parameter vector is just the depth, with cycle-to-cycle
// variation.
type ClockGlitch struct {
	// Depth is the expected period reduction (ps); DepthJitter its
	// uniform half-range.
	Depth, DepthJitter float64
	// ClockPeriod is the nominal cycle length.
	ClockPeriod float64
}

// DefaultClockGlitch returns a glitcher that cuts roughly half of the
// default 600 ps cycle, with substantial shot-to-shot variation.
func DefaultClockGlitch() ClockGlitch {
	return ClockGlitch{Depth: 300, DepthJitter: 150, ClockPeriod: 600}
}

// SampleDepth draws a glitch depth.
func (c ClockGlitch) SampleDepth(rng *rand.Rand) float64 {
	d := c.Depth + (rng.Float64()*2-1)*c.DepthJitter
	if d < 0 {
		d = 0
	}
	if d > c.ClockPeriod {
		d = c.ClockPeriod
	}
	return d
}

// GlitchAttack is the nominal attack distribution of a clock-glitch
// campaign: uniform timing distance over [0, TRange) and the
// technique's depth variation.
type GlitchAttack struct {
	Name      string
	TRange    int
	Technique ClockGlitch
}

// NewGlitchAttack validates a glitch attack description.
func NewGlitchAttack(name string, tRange int, tech ClockGlitch) (*GlitchAttack, error) {
	if tRange < 1 {
		return nil, fmt.Errorf("fault: TRange = %d", tRange)
	}
	if tech.ClockPeriod <= 0 {
		return nil, fmt.Errorf("fault: clock period %v", tech.ClockPeriod)
	}
	return &GlitchAttack{Name: name, TRange: tRange, Technique: tech}, nil
}

// GlitchSample is one draw of the glitch parameters.
type GlitchSample struct {
	// T is the timing distance (injection cycle = Tt − T).
	T int
	// Depth is this shot's period reduction.
	Depth float64
}

// SampleNominal draws from the attack's own distribution.
func (a *GlitchAttack) SampleNominal(rng *rand.Rand) GlitchSample {
	return GlitchSample{
		T:     rng.Intn(a.TRange),
		Depth: a.Technique.SampleDepth(rng),
	}
}
