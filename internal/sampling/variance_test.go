package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/stats"
)

func fixtureImportance(t *testing.T, tRange int) *Importance {
	t.Helper()
	char, nl, place := fixture(t)
	a := fixtureAttack(t, tRange)
	im, err := NewImportance(a, char, nl, place, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func fixtureStratified(t *testing.T, tRange int) *Stratified {
	t.Helper()
	sp, err := NewStratified(fixtureImportance(t, tRange))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// varianceSamplers enumerates every sampler variant of the
// variance-reduction layer, including forked streams, for the shared
// property tests.
func varianceSamplers(t *testing.T) map[string]Sampler {
	t.Helper()
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 10)
	cone, err := NewCone(a, char, nl, place)
	if err != nil {
		t.Fatal(err)
	}
	im := fixtureImportance(t, 10)
	strat := fixtureStratified(t, 10)
	sub, err := strat.ForkStrata(5, func(k int) bool { return k%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	sob := NewSobol(fixtureImportance(t, 10))
	return map[string]Sampler{
		"random":            &Random{Attack: a},
		"cone":              cone,
		"importance":        im,
		"stratified":        strat,
		"stratified-stream": strat.Fork(3),
		"stratified-subset": sub,
		"sobol":             sob,
		"sobol-stream":      sob.Fork(3),
	}
}

// TestTimingProbsSumToOne: every sampler's declared per-timing-distance
// draw distribution is a probability distribution.
func TestTimingProbsSumToOne(t *testing.T) {
	for name, sp := range varianceSamplers(t) {
		sum := 0.0
		for _, p := range sp.TimingProbs() {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("%s: bad timing prob %v", name, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s: timing probs sum to %v", name, sum)
		}
	}
}

// TestDrawWeightsFinitePositive: across seeds, every draw's likelihood
// ratio is finite and strictly positive (a zero or infinite weight
// would silently corrupt the estimator), and Stratal samplers produce
// equally well-formed conditional weights.
func TestDrawWeightsFinitePositive(t *testing.T) {
	for name, sp := range varianceSamplers(t) {
		for seed := int64(1); seed <= 4; seed++ {
			s := sp
			if f, ok := s.(Forker); ok {
				s = f.Fork(seed)
			}
			rng := rand.New(rand.NewSource(seed))
			st, _ := s.(Stratal)
			for i := 0; i < 256; i++ {
				smp, w := s.Draw(rng)
				if !(w > 0) || math.IsInf(w, 0) {
					t.Fatalf("%s seed %d draw %d: weight %v", name, seed, i, w)
				}
				if st != nil {
					cw := st.ConditionalWeight(smp, w)
					if !(cw > 0) || math.IsInf(cw, 0) {
						t.Fatalf("%s seed %d draw %d: conditional weight %v", name, seed, i, cw)
					}
					if k := st.StratumOf(smp); k < 0 || k >= st.NumStrata() {
						t.Fatalf("%s: stratum %d outside [0, %d)", name, k, st.NumStrata())
					}
				}
			}
		}
	}
}

// TestStratifiedScheduleMatchesAllocation: the largest-remainder
// schedule serves each stratum its allocation share to within a single
// draw, with no randomness.
func TestStratifiedScheduleMatchesAllocation(t *testing.T) {
	strat := fixtureStratified(t, 10)
	stream := strat.Fork(1)
	const n = 10000
	counts := make(map[int]int)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		smp, _ := stream.Draw(rng)
		counts[smp.T]++
	}
	for k, a := range strat.Allocation() {
		got := float64(counts[k])
		if math.Abs(got-a*n) > 1.5 {
			t.Errorf("stratum %d: %v draws, allocation wants %v", k, got, a*n)
		}
	}
}

// TestStratifiedForkStrataPartition: two restricted streams over
// complementary subsets, forked from the full stream's seed, together
// reproduce the full stream's per-stratum draws exactly — the
// foundation of the campaign-level disjoint-strata merge guarantee.
func TestStratifiedForkStrataPartition(t *testing.T) {
	strat := fixtureStratified(t, 10)
	const seed = 11
	const n = 4000
	rng := rand.New(rand.NewSource(99)) // ignored by streams

	type draw struct {
		s fault.Sample
		w float64
	}
	full := strat.Fork(seed)
	perStratum := make(map[int][]draw)
	for i := 0; i < n; i++ {
		s, w := full.Draw(rng)
		perStratum[s.T] = append(perStratum[s.T], draw{s, w})
	}

	even := func(k int) bool { return k%2 == 0 }
	odd := func(k int) bool { return k%2 == 1 }
	for _, part := range []func(int) bool{even, odd} {
		want := 0
		for k, ds := range perStratum {
			if part(k) {
				want += len(ds)
			}
		}
		if want == 0 {
			continue
		}
		sub, err := strat.ForkStrata(seed, part)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[int][]draw)
		for i := 0; i < want; i++ {
			s, w := sub.Draw(rng)
			if !part(s.T) {
				t.Fatalf("restricted stream emitted excluded stratum %d", s.T)
			}
			got[s.T] = append(got[s.T], draw{s, w})
		}
		for k, ds := range got {
			if len(ds) != len(perStratum[k]) {
				t.Fatalf("stratum %d: %d draws, full run had %d", k, len(ds), len(perStratum[k]))
			}
			for i := range ds {
				if ds[i] != perStratum[k][i] {
					t.Fatalf("stratum %d draw %d: %+v != full run's %+v", k, i, ds[i], perStratum[k][i])
				}
			}
		}
	}
}

// TestRestrictedForkPreservesInclude: re-forking a restricted stream
// (as the campaign runner does with its own seed) keeps the
// restriction.
func TestRestrictedForkPreservesInclude(t *testing.T) {
	strat := fixtureStratified(t, 10)
	sub, err := strat.ForkStrata(1, func(k int) bool { return k == 2 || k == 3 })
	if err != nil {
		t.Fatal(err)
	}
	refork := sub.(Forker).Fork(42)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s, _ := refork.Draw(rng)
		if s.T != 2 && s.T != 3 {
			t.Fatalf("re-forked restricted stream emitted stratum %d", s.T)
		}
	}
}

// TestForkStrataRejectsEmptySubset: a subset with no allocated stratum
// cannot make progress and must be rejected at fork time.
func TestForkStrataRejectsEmptySubset(t *testing.T) {
	strat := fixtureStratified(t, 10)
	if _, err := strat.ForkStrata(1, func(int) bool { return false }); err == nil {
		t.Fatal("empty subset accepted")
	}
}

// TestImportanceAdaptRetilts: hits concentrated on one timing distance
// pull the re-tuned g_T toward it, the floor keeps every non-empty
// layer explored, and the receiver is never mutated.
func TestImportanceAdaptRetilts(t *testing.T) {
	im := fixtureImportance(t, 10)
	before := im.TimingProbs()

	// No signal: the sampler is returned unchanged.
	same, err := im.Adapt(AdaptState{Draws: make([]int, 10), Hits: make([]int, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if same != Sampler(im) {
		t.Error("no-signal Adapt did not return the receiver")
	}

	// Find a timing distance with a non-empty layer to concentrate on.
	target := -1
	for u, p := range before {
		if p > 0 {
			target = u
		}
	}
	if target < 0 {
		t.Fatal("no non-empty layer in fixture")
	}
	draws := make([]int, 10)
	hits := make([]int, 10)
	for u := range draws {
		draws[u] = 100
	}
	hits[target] = 50
	ad, err := im.Adapt(AdaptState{Draws: draws, Hits: hits, Floor: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	after := ad.TimingProbs()
	maxP, argmax := 0.0, -1
	sum := 0.0
	for u, p := range after {
		sum += p
		if p > maxP {
			maxP, argmax = p, u
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("adapted probs sum to %v", sum)
	}
	if argmax != target {
		t.Errorf("adapted mode at t=%d, hits were at t=%d", argmax, target)
	}
	for u, p := range after {
		if before[u] > 0 && p < 0.05*maxP-1e-15 {
			t.Errorf("t=%d: prob %v below floor of max %v", u, p, maxP)
		}
		if before[u] == 0 && p != 0 {
			t.Errorf("t=%d: empty layer received probability %v", u, p)
		}
	}
	for u, p := range im.TimingProbs() {
		if p != before[u] {
			t.Fatal("Adapt mutated the receiver")
		}
	}
}

// TestStratifiedAdaptNeyman: the re-tuned allocation follows
// pi_k * sigma_k — the stratum with the dominant observed variance
// gets the dominant share of future draws.
func TestStratifiedAdaptNeyman(t *testing.T) {
	strat := fixtureStratified(t, 10)
	alloc := strat.Allocation()
	target := -1
	for k, a := range alloc {
		if a > 0 {
			target = k
		}
	}
	acc, err := stats.NewStratified(strat.TimingProbs())
	if err != nil {
		// Allocation is a valid distribution; reuse the strata shape
		// from the sampler's own probabilities instead.
		t.Fatal(err)
	}
	// Feed every allocated stratum a flat signal, the target a noisy one.
	for k, a := range alloc {
		if a == 0 {
			continue
		}
		for i := 0; i < 50; i++ {
			x := 0.1
			if k == target && i%2 == 0 {
				x = 5.0
			}
			acc.Add(k, x, 1, x > 1)
		}
	}
	ad, err := strat.Adapt(AdaptState{Strata: acc, Floor: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	tuned, ok := ad.(*Stratified)
	if !ok {
		t.Fatalf("Adapt returned %T", ad)
	}
	after := tuned.Allocation()
	maxA, argmax := 0.0, -1
	for k, a := range after {
		if a > maxA {
			maxA, argmax = a, k
		}
	}
	if argmax != target {
		t.Errorf("Neyman allocation peaked at stratum %d, variance was at %d", argmax, target)
	}
	for k, a := range strat.Allocation() {
		if a != alloc[k] {
			t.Fatal("Adapt mutated the receiver")
		}
	}
}

// TestSobolStreamDeterministicPerSeed: equal fork seeds reproduce the
// stream exactly; different seeds produce a different scramble.
func TestSobolStreamDeterministicPerSeed(t *testing.T) {
	sob := NewSobol(fixtureImportance(t, 10))
	rng := rand.New(rand.NewSource(1)) // ignored by streams
	a, b := sob.Fork(7), sob.Fork(7)
	c := sob.Fork(8)
	differs := false
	for i := 0; i < 300; i++ {
		sa, wa := a.Draw(rng)
		sb, wb := b.Draw(rng)
		sc, wc := c.Draw(rng)
		if sa != sb || wa != wb {
			t.Fatalf("draw %d: same-seed forks diverged", i)
		}
		if sa != sc || wa != wc {
			differs = true
		}
	}
	if !differs {
		t.Error("different fork seeds produced identical streams")
	}
}
