package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/stats"
)

// DefaultAllocFloor is the default allocation floor: no non-empty
// stratum's allocation weight drops below this fraction of the largest
// one. It bounds how starved a stratum can get, which keeps the
// per-stratum variance estimates alive for Neyman re-allocation.
const DefaultAllocFloor = 0.1

// strataSeedMix decorrelates the per-stratum substream seeds (the
// 64-bit golden-ratio multiplier).
const strataSeedMix = -7046029254386353131 // 0x9E3779B97F4A7C15 as int64

// Stratified samples the timing-distance axis by deterministic
// stratified allocation instead of randomly: stratum t (one per timing
// distance, pi_t = f_T(t)) receives a fixed fraction of the draws, and
// within the stratum the center comes from the importance sampler's
// within-layer proposal. The campaign layer detects the Stratal
// interface and tracks the post-stratified estimator
// sum_t pi_t * mean_t, which removes both the timing-selection noise
// and the f_T/g_T weight variability from the estimate — allocation
// only decides how accurate each stratum's conditional mean is, never
// the estimate's expectation.
//
// Like Cone, the within-stratum support is the dilated candidate layer
// Ω_t: centers whose spot cannot reach the cone at distance t are
// assumed ineffective (indicator 0), so strata with an empty layer have
// a conditional mean of exactly zero and receive no draws.
//
// Draws carry the full likelihood ratio (pi_t / alloc_t) · w_cond, so a
// plain weighted mean over the stream is also unbiased (up to the
// deterministic schedule's O(1/N) allocation rounding); the stratified
// estimator is simply the lower-variance read of the same stream.
type Stratified struct {
	inner *Importance
	probs []float64 // pi_t = f_T(t)
	alloc []float64 // draw fraction per stratum; 0 on empty layers
	// allocDist drives the unforked Draw fallback (random stratum
	// choice by allocation); forked streams use the deterministic
	// largest-remainder schedule instead.
	allocDist *stats.Discrete
}

// NewStratified builds the stratified sampler on top of an importance
// proposal. The initial allocation is proportional to the importance
// sampler's timing distribution g_T (its best prior guess of where the
// variance lives), floor-clamped by DefaultAllocFloor.
func NewStratified(inner *Importance) (*Stratified, error) {
	if inner == nil {
		return nil, fmt.Errorf("sampling: stratified needs an importance proposal")
	}
	tr := inner.attack.TRange
	probs := make([]float64, tr)
	raw := make([]float64, tr)
	for t := 0; t < tr; t++ {
		probs[t] = inner.attack.TProb(t)
		if len(inner.layers[t]) > 0 {
			raw[t] = inner.tDist.Prob(t)
		}
	}
	return newStratifiedAlloc(inner, probs, raw, DefaultAllocFloor)
}

// newStratifiedAlloc floor-clamps and normalizes the raw allocation
// weights (zero entries mark empty strata and stay zero).
func newStratifiedAlloc(inner *Importance, probs, raw []float64, floor float64) (*Stratified, error) {
	maxRaw := 0.0
	nonEmpty := false
	for t, w := range raw {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative allocation weight %v at stratum %d", w, t)
		}
		if len(inner.layers[t]) == 0 && w != 0 {
			return nil, fmt.Errorf("sampling: allocation on empty stratum %d", t)
		}
		if len(inner.layers[t]) > 0 {
			nonEmpty = true
		}
		if w > maxRaw {
			maxRaw = w
		}
	}
	if !nonEmpty {
		return nil, fmt.Errorf("sampling: every stratum layer is empty")
	}
	alloc := make([]float64, len(raw))
	if maxRaw == 0 {
		// No signal at all: uniform over non-empty strata.
		for t := range alloc {
			if len(inner.layers[t]) > 0 {
				alloc[t] = 1
			}
		}
	} else {
		for t, w := range raw {
			if len(inner.layers[t]) == 0 {
				continue
			}
			if w < floor*maxRaw {
				w = floor * maxRaw
			}
			alloc[t] = w
		}
	}
	allocDist, err := stats.NewDiscrete(alloc)
	if err != nil {
		return nil, fmt.Errorf("sampling: stratified allocation: %w", err)
	}
	norm := make([]float64, len(alloc))
	for t := range norm {
		norm[t] = allocDist.Prob(t)
	}
	return &Stratified{inner: inner, probs: probs, alloc: norm, allocDist: allocDist}, nil
}

// Name implements Sampler.
func (s *Stratified) Name() string { return "stratified" }

// TimingProbs implements Sampler: the long-run fraction of draws per
// timing distance is the allocation.
func (s *Stratified) TimingProbs() []float64 {
	return append([]float64(nil), s.alloc...)
}

// Allocation returns a copy of the per-stratum draw fractions.
func (s *Stratified) Allocation() []float64 {
	return append([]float64(nil), s.alloc...)
}

// NumStrata implements Stratal.
func (s *Stratified) NumStrata() int { return len(s.probs) }

// StratumProb implements Stratal.
func (s *Stratified) StratumProb(k int) float64 { return s.probs[k] }

// StratumOf implements Stratal.
func (s *Stratified) StratumOf(smp fault.Sample) int { return smp.T }

// ConditionalWeight implements Stratal: it strips the pi_t / alloc_t
// selection factor off the full draw weight, leaving the within-layer
// likelihood ratio the per-stratum estimator accumulates.
func (s *Stratified) ConditionalWeight(smp fault.Sample, w float64) float64 {
	return w * s.alloc[smp.T] / s.probs[smp.T]
}

// Draw implements Sampler for callers that do not Fork: the stratum is
// chosen randomly by allocation, which is unbiased but forfeits the
// deterministic schedule (and therefore the merge bit-identity).
// Campaign runners always go through Fork.
func (s *Stratified) Draw(rng *rand.Rand) (fault.Sample, float64) {
	return s.drawIn(s.allocDist.Sample(rng.Float64()), rng)
}

// drawIn draws a center within stratum k using the importance
// proposal's within-layer mixture, returning the sample and its full
// likelihood ratio (pi_k / alloc_k) · f_P(c)/g(c|k).
func (s *Stratified) drawIn(k int, rng *rand.Rand) (fault.Sample, float64) {
	im := s.inner
	layer := im.layers[k]
	var center netlist.NodeID
	if im.MixLayer > 0 && rng.Float64() < im.MixLayer {
		center = layer[rng.Intn(len(layer))]
	} else {
		center = layer[im.pDists[k].Sample(rng.Float64())]
	}
	smp := fault.Sample{
		T:      k,
		Center: center,
		Radius: im.attack.Technique.SampleRadius(rng),
		Width:  im.attack.Technique.SampleWidth(rng),
		Time:   im.attack.Technique.SampleTime(rng),
	}
	g := im.MixLayer/float64(len(layer)) + (1-im.MixLayer)*im.centerP[k][center]
	wCond := im.attack.CenterProb(center) / g
	return smp, wCond * s.probs[k] / s.alloc[k]
}

// Adapt implements Adaptive with Neyman allocation: the re-tuned draw
// fraction of stratum k is proportional to pi_k times the observed
// standard deviation of its conditional weighted terms, which
// minimizes the stratified estimator's variance for a fixed budget.
// Strata whose variance hasn't resolved yet (fewer than two draws, or
// zero observed deviation) fall back to their hit rate, and the floor
// clamp keeps every non-empty stratum explored. Allocation never
// affects unbiasedness — it only re-distributes draws — so no
// correction to past rounds is needed.
func (s *Stratified) Adapt(state AdaptState) (Sampler, error) {
	floor := state.Floor
	if floor <= 0 {
		floor = DefaultAdaptFloor
	}
	if state.Strata == nil || state.Strata.K() != len(s.probs) {
		return s, nil
	}
	raw := make([]float64, len(s.probs))
	signal := false
	for k := range raw {
		if len(s.inner.layers[k]) == 0 {
			continue
		}
		raw[k] = s.probs[k] * state.Strata.StratumStdDev(k)
		if raw[k] == 0 && state.Strata.Hits(k) > 0 && state.Strata.StratumN(k) > 0 {
			raw[k] = s.probs[k] * float64(state.Strata.Hits(k)) / float64(state.Strata.StratumN(k))
		}
		if raw[k] > 0 {
			signal = true
		}
	}
	if !signal {
		return s, nil
	}
	return newStratifiedAlloc(s.inner, s.probs, raw, floor)
}

// Fork implements Forker: the returned stream draws strata on the
// deterministic largest-remainder schedule and runs one private rng
// substream per stratum, both derived solely from (receiver, seed).
// Per-stratum state therefore depends only on the per-stratum draw
// count — which is what makes campaigns over disjoint strata merge
// bit-identically with a sequential run.
func (s *Stratified) Fork(seed int64) Sampler {
	return &stratifiedStream{base: s, seed: seed, def: make([]float64, len(s.alloc)), rngs: make([]*rand.Rand, len(s.alloc))}
}

// ForkStrata forks a stream restricted to the strata selected by
// include: the stream walks the same global schedule but emits only the
// selected strata's draws, consuming nothing from the others. Two
// streams forked from the same seed over disjoint subsets together
// reproduce the full stream's per-stratum draws exactly. The subset
// must include at least one stratum with non-zero allocation.
func (s *Stratified) ForkStrata(seed int64, include func(k int) bool) (Sampler, error) {
	any := false
	inc := make([]bool, len(s.alloc))
	for k := range s.alloc {
		inc[k] = include(k)
		if inc[k] && s.alloc[k] > 0 {
			any = true
		}
	}
	if !any {
		return nil, fmt.Errorf("sampling: fork subset has no allocated stratum")
	}
	return &stratifiedStream{base: s, seed: seed, include: inc, def: make([]float64, len(s.alloc)), rngs: make([]*rand.Rand, len(s.alloc))}, nil
}

// stratifiedStream is one forked campaign stream: deterministic
// stratum schedule plus per-stratum rng substreams. The campaign rng
// passed to Draw is deliberately ignored so that the stream's output is
// a pure function of (base, seed, per-stratum draw counts).
type stratifiedStream struct {
	base    *Stratified
	seed    int64
	include []bool // nil = every stratum
	def     []float64
	rngs    []*rand.Rand
}

// Name implements Sampler.
func (st *stratifiedStream) Name() string { return st.base.Name() }

// TimingProbs implements Sampler.
func (st *stratifiedStream) TimingProbs() []float64 { return st.base.TimingProbs() }

// NumStrata implements Stratal.
func (st *stratifiedStream) NumStrata() int { return st.base.NumStrata() }

// StratumProb implements Stratal.
func (st *stratifiedStream) StratumProb(k int) float64 { return st.base.StratumProb(k) }

// StratumOf implements Stratal.
func (st *stratifiedStream) StratumOf(smp fault.Sample) int { return st.base.StratumOf(smp) }

// ConditionalWeight implements Stratal.
func (st *stratifiedStream) ConditionalWeight(smp fault.Sample, w float64) float64 {
	return st.base.ConditionalWeight(smp, w)
}

// Fork implements Forker by re-forking from the base sampler with a
// fresh schedule and fresh substreams. The include restriction is
// preserved: a restricted stream handed to a campaign runner (which
// forks it with the campaign seed) keeps emitting only its subset.
func (st *stratifiedStream) Fork(seed int64) Sampler {
	return &stratifiedStream{
		base:    st.base,
		seed:    seed,
		include: st.include,
		def:     make([]float64, len(st.base.alloc)),
		rngs:    make([]*rand.Rand, len(st.base.alloc)),
	}
}

// Adapt implements Adaptive on the base sampler.
func (st *stratifiedStream) Adapt(state AdaptState) (Sampler, error) { return st.base.Adapt(state) }

// Draw implements Sampler: next scheduled stratum, drawn from that
// stratum's private substream. The caller's rng is unused (see type
// comment).
func (st *stratifiedStream) Draw(_ *rand.Rand) (fault.Sample, float64) {
	for {
		k := st.next()
		if st.include != nil && !st.include[k] {
			continue
		}
		r := st.rngs[k]
		if r == nil {
			r = rand.New(rand.NewSource(st.seed ^ int64(k+1)*strataSeedMix)) //alloc-ok (once per stratum per stream)
			st.rngs[k] = r
		}
		return st.base.drawIn(k, r)
	}
}

// next advances the largest-remainder schedule: every stratum's deficit
// grows by its allocation each step and the largest deficit (ties to
// the lowest index) is served. Over N steps stratum k is served
// alloc_k·N ± 1 times, and the schedule is a pure function of the
// allocation — no randomness involved.
func (st *stratifiedStream) next() int {
	alloc := st.base.alloc
	best := -1
	bestDef := 0.0
	for k := range alloc {
		if alloc[k] == 0 {
			continue
		}
		st.def[k] += alloc[k]
		if best < 0 || st.def[k] > bestDef {
			best = k
			bestDef = st.def[k]
		}
	}
	st.def[best]--
	return best
}
