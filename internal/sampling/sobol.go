package sampling

import (
	"math/bits"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// sampleDims is the number of uniform variates one proposal draw
// consumes in the u-parameterized form: mixture decision, timing
// distance, within-layer mixture decision, center, radius, width,
// strike instant.
const sampleDims = 7

// Sobol drives the importance proposal with a scrambled Sobol
// low-discrepancy sequence instead of pseudo-random variates: each
// draw maps one 7-dimensional Sobol point through the proposal's
// inverse CDFs, so consecutive draws fill the (mixture, t, layer,
// center, radius, width, instant) space far more evenly than
// independent sampling. The proposal distribution — and therefore
// every importance weight — is identical to Importance's; only the
// variate source changes.
//
// The sequence state lives in forked streams (Forker): each
// (campaign, shard) forks its own stream whose scramble — a linear
// matrix scramble plus a digital shift per dimension — derives solely
// from the fork seed, keeping parallel and resumed campaigns
// reproducible and mergeable. An unforked Sobol degrades gracefully to
// plain pseudo-random importance sampling.
//
// Campaign CIs under QMC are computed from the same Welford variance
// as plain Monte Carlo, which is conservative-to-approximate rather
// than exact (the draws are not independent); EXPERIMENTS.md documents
// the caveat.
type Sobol struct {
	inner *Importance
}

// NewSobol wraps an importance proposal in a Sobol variate source.
func NewSobol(inner *Importance) *Sobol {
	return &Sobol{inner: inner}
}

// Name implements Sampler.
func (s *Sobol) Name() string { return "sobol" }

// TimingProbs implements Sampler (the proposal's g_T is unchanged).
func (s *Sobol) TimingProbs() []float64 { return s.inner.TimingProbs() }

// Draw implements Sampler for unforked use: the variate vector comes
// from the pseudo-random rng, which makes this exactly importance
// sampling (same distribution, different parametrization).
func (s *Sobol) Draw(rng *rand.Rand) (fault.Sample, float64) {
	var u [sampleDims]float64
	for i := range u {
		u[i] = rng.Float64()
	}
	return s.inner.drawFromU(&u)
}

// Fork implements Forker: the stream's scramble and shift derive only
// from (receiver, seed).
func (s *Sobol) Fork(seed int64) Sampler {
	return newSobolStream(s, seed)
}

// sobolStream is one forked Gray-code Sobol generator with per-fork
// linear matrix scramble + digital shift.
type sobolStream struct {
	base  *Sobol
	dirs  [sampleDims][32]uint32 // scrambled direction numbers
	shift [sampleDims]uint32
	x     [sampleDims]uint32
	index uint64
}

// sobolPoly holds one primitive polynomial (degree s, coefficient bits
// a) and its initial direction numbers from the Joe–Kuo tables; the
// first dimension is the van der Corput sequence and is handled
// separately.
type sobolPoly struct {
	s int
	a uint32
	m []uint32
}

// sobolPolys are dimensions 2..7 of the standard new-joe-kuo-6 table.
var sobolPolys = [sampleDims - 1]sobolPoly{
	{s: 1, a: 0, m: []uint32{1}},
	{s: 2, a: 1, m: []uint32{1, 3}},
	{s: 3, a: 1, m: []uint32{1, 3, 1}},
	{s: 3, a: 2, m: []uint32{1, 1, 1}},
	{s: 4, a: 1, m: []uint32{1, 1, 3, 3}},
	{s: 4, a: 4, m: []uint32{1, 3, 5, 13}},
}

// sobolDirections expands one polynomial into its 32 direction numbers
// v_k = m_k << (31-k), via the standard recurrence
// m_k = m_{k-s} ^ (m_{k-s} << s) ^ sum_i a_i (m_{k-i} << i).
func sobolDirections(p sobolPoly) [32]uint32 {
	m := make([]uint32, 32)
	copy(m, p.m)
	for k := p.s; k < 32; k++ {
		m[k] = m[k-p.s] ^ (m[k-p.s] << uint(p.s))
		for i := 1; i < p.s; i++ {
			if (p.a>>uint(p.s-1-i))&1 == 1 {
				m[k] ^= m[k-i] << uint(i)
			}
		}
	}
	var v [32]uint32
	for k := 0; k < 32; k++ {
		v[k] = m[k] << uint(31-k)
	}
	return v
}

// newSobolStream builds the scrambled generator: for each dimension, a
// random lower-triangular bit matrix L (unit diagonal) left-multiplies
// every direction number — Matoušek's linear matrix scramble — and a
// random 32-bit digital shift offsets the whole sequence. Both come
// from an rng seeded only by the fork seed.
func newSobolStream(base *Sobol, seed int64) *sobolStream {
	st := &sobolStream{base: base}
	rng := rand.New(rand.NewSource(seed*strataSeedMix + int64(sampleDims)))
	for d := 0; d < sampleDims; d++ {
		var v [32]uint32
		if d == 0 {
			for k := 0; k < 32; k++ {
				v[k] = 1 << uint(31-k)
			}
		} else {
			v = sobolDirections(sobolPolys[d-1])
		}
		// L row i covers digits j <= i; digit j sits at bit 31-j.
		var l [32]uint32
		for i := 0; i < 32; i++ {
			mask := uint32(0)
			if i > 0 {
				// i random bits at positions 32-i..31 (digits 0..i-1).
				mask = (rng.Uint32() & (1<<uint(i) - 1)) << uint(32-i)
			}
			l[i] = 1<<uint(31-i) | mask
		}
		for k := 0; k < 32; k++ {
			var sv uint32
			for i := 0; i < 32; i++ {
				sv |= uint32(bits.OnesCount32(l[i]&v[k])&1) << uint(31-i)
			}
			st.dirs[d][k] = sv
		}
		st.shift[d] = rng.Uint32()
	}
	return st
}

// Name implements Sampler.
func (st *sobolStream) Name() string { return st.base.Name() }

// TimingProbs implements Sampler.
func (st *sobolStream) TimingProbs() []float64 { return st.base.TimingProbs() }

// Fork implements Forker by re-forking from the base sampler.
func (st *sobolStream) Fork(seed int64) Sampler { return st.base.Fork(seed) }

// Draw implements Sampler: the next scrambled Sobol point through the
// proposal's inverse CDFs. The caller's rng is ignored — the stream is
// a pure function of (base, seed, draw count).
func (st *sobolStream) Draw(_ *rand.Rand) (fault.Sample, float64) {
	st.index++
	c := bits.TrailingZeros64(st.index)
	if c > 31 {
		c = 31
	}
	var u [sampleDims]float64
	for d := 0; d < sampleDims; d++ {
		st.x[d] ^= st.dirs[d][c]
		u[d] = float64(st.x[d]^st.shift[d]) * (1.0 / (1 << 32))
	}
	return st.base.inner.drawFromU(&u)
}

// uniformIndex maps a uniform variate to an index in [0, n) — the
// inverse-CDF counterpart of rng.Intn.
func uniformIndex(u float64, n int) int {
	i := int(u * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// drawFromU maps a vector of uniform variates through the importance
// proposal by inverse CDF: u[0] is the defensive-mixture decision,
// u[1] the timing distance, u[2] the within-layer mixture decision,
// u[3] the center, u[4..6] radius / width / strike instant. The
// proposal distribution is identical to Draw's — the weight uses the
// same nominal and proposal densities — only the variate
// parametrization differs, which is what lets a low-discrepancy
// sequence drive it.
func (im *Importance) drawFromU(u *[sampleDims]float64) (fault.Sample, float64) {
	tech := im.attack.Technique
	var s fault.Sample
	if im.MixUniform > 0 && u[0] < im.MixUniform {
		var center netlist.NodeID
		if im.attack.CenterDist != nil {
			center = im.attack.Candidates[im.attack.CenterDist.Sample(u[3])]
		} else {
			center = im.attack.Candidates[uniformIndex(u[3], len(im.attack.Candidates))]
		}
		s = fault.Sample{
			T:      uniformIndex(u[1], im.attack.TRange),
			Center: center,
			Radius: tech.RadiusFromU(u[4]),
			Width:  tech.WidthFromU(u[5]),
			Time:   tech.TimeFromU(u[6]),
			Cycles: tech.Cycles(),
		}
	} else {
		t := im.tDist.Sample(u[1])
		layer := im.layers[t]
		var center netlist.NodeID
		if im.MixLayer > 0 && u[2] < im.MixLayer {
			center = layer[uniformIndex(u[3], len(layer))]
		} else {
			center = layer[im.pDists[t].Sample(u[3])]
		}
		s = fault.Sample{
			T:      t,
			Center: center,
			Radius: tech.RadiusFromU(u[4]),
			Width:  tech.WidthFromU(u[5]),
			Time:   tech.TimeFromU(u[6]),
		}
	}
	f := im.attack.Density(s)
	g := im.MixUniform*f + (1-im.MixUniform)*im.density(s)
	return s, f / g
}
