package sampling

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/precharac"
	"repro/internal/soc"
)

// shared fixture: characterized MPU + placement + attack.
var (
	fixOnce  sync.Once
	fixChar  *precharac.Characterization
	fixNl    *netlist.Netlist
	fixPlace *placement.Placement
	fixErr   error
)

func fixture(t *testing.T) (*precharac.Characterization, *netlist.Netlist, *placement.Placement) {
	t.Helper()
	fixOnce.Do(func() {
		cfg := soc.DefaultConfig()
		s, err := soc.New(cfg, soc.SyntheticProgram(cfg.DMABase, cfg.DMALimit))
		if err != nil {
			fixErr = err
			return
		}
		opts := precharac.DefaultOptions()
		opts.MaxDepth = 21
		opts.TraceCycles = 512
		opts.LifetimeCap = 60
		opts.MemLifetimeMin = 40
		opts.Probes = 1
		fixChar, fixErr = precharac.Characterize(s, opts)
		fixNl = s.MPU.Netlist
		fixPlace = placement.Place(fixNl)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixChar, fixNl, fixPlace
}

func fixtureAttack(t *testing.T, tRange int) *fault.Attack {
	t.Helper()
	_, nl, _ := fixture(t)
	var cands []netlist.NodeID
	for i := 0; i < nl.NumNodes(); i++ {
		id := netlist.NodeID(i)
		ty := nl.Node(id).Type
		if ty.IsCombinational() && ty != netlist.Const0 && ty != netlist.Const1 {
			cands = append(cands, id)
		}
	}
	a, err := fault.NewAttack("test", tRange, fault.DefaultRadiation(), cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRandomSamplerWeightsAreOne(t *testing.T) {
	a := fixtureAttack(t, 10)
	r := &Random{Attack: a}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s, w := r.Draw(rng)
		if w != 1 {
			t.Fatalf("weight %v", w)
		}
		if a.Density(s) == 0 {
			t.Fatalf("random sample outside f support: %+v", s)
		}
	}
	tp := r.TimingProbs()
	if len(tp) != 10 || math.Abs(tp[0]-0.1) > 1e-12 {
		t.Errorf("TimingProbs = %v", tp)
	}
}

func TestConeSamplerSupport(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 10)
	c, err := NewCone(a, char, nl, place)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		s, w := c.Draw(rng)
		if w <= 0 {
			t.Fatalf("non-positive weight %v", w)
		}
		if s.T < 0 || s.T >= 10 {
			t.Fatalf("T out of range: %d", s.T)
		}
		// Center must be in the layer for the drawn t.
		found := false
		for _, g := range c.layers[s.T] {
			if g == s.Center {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("center %d not in layer %d", s.Center, s.T)
		}
	}
	probs := c.TimingProbs()
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("timing probs sum %v", sum)
	}
}

func TestConeRejectsExcessiveTRange(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 1000)
	if _, err := NewCone(a, char, nl, place); err == nil {
		t.Error("TRange beyond characterized depth accepted")
	}
}

func TestImportanceConstruction(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 10)
	if _, err := NewImportance(a, char, nl, place, -1, 1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewImportance(a, char, nl, place, 1, -1); err == nil {
		t.Error("negative beta accepted")
	}
	im, err := NewImportance(a, char, nl, place, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	probs := im.TimingProbs()
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("g_T sums to %v", sum)
	}
	// g_T must concentrate on small timing distances relative to
	// uniform (the decision logic correlates there).
	if probs[0] <= 1.0/10 {
		t.Errorf("g_T(0) = %v, expected above uniform 0.1", probs[0])
	}
}

func TestImportanceCenterProbConsistency(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 8)
	im, err := NewImportance(a, char, nl, place, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 8; tt++ {
		sum := 0.0
		for _, g := range im.layers[tt] {
			p := im.CenterProb(tt, g)
			if p < 0 {
				t.Fatalf("negative center prob")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("g_P|T(t=%d) sums to %v", tt, sum)
		}
	}
	if im.CenterProb(-1, 0) != 0 || im.CenterProb(100, 0) != 0 {
		t.Error("out-of-range CenterProb should be 0")
	}
}

func TestImportanceWeightsBounded(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 10)
	im, err := NewImportance(a, char, nl, place, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1/im.MixUniform + 1e-9
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		_, w := im.Draw(rng)
		if w <= 0 || w > bound {
			t.Fatalf("weight %v outside (0, %v]", w, bound)
		}
	}
}

// TestImportanceUnbiased verifies the estimator identity
// E_g[(f/g)·h(X)] = E_f[h(X)] on a simple h.
func TestImportanceUnbiased(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 10)
	im, err := NewImportance(a, char, nl, place, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	const n = 400000
	est := 0.0
	for i := 0; i < n; i++ {
		s, w := im.Draw(rng)
		if s.T < 3 {
			est += w
		}
	}
	est /= n
	want := 3.0 / 10
	if math.Abs(est-want) > 0.01 {
		t.Errorf("importance estimate of P(T<3) = %v, want %v", est, want)
	}
}

func TestImportanceUnbiasedOnCenters(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 6)
	im, err := NewImportance(a, char, nl, place, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	// h = indicator that the center id is even: under f exactly the
	// fraction of even candidates.
	even := 0
	for _, g := range a.Candidates {
		if g%2 == 0 {
			even++
		}
	}
	want := float64(even) / float64(len(a.Candidates))
	rng := rand.New(rand.NewSource(5))
	const n = 400000
	est := 0.0
	for i := 0; i < n; i++ {
		s, w := im.Draw(rng)
		if s.Center%2 == 0 {
			est += w
		}
	}
	est /= n
	if math.Abs(est-want) > 0.02 {
		t.Errorf("importance estimate %v, want %v", est, want)
	}
}

func TestLayersRespectCandidateSubset(t *testing.T) {
	char, nl, place := fixture(t)
	full := fixtureAttack(t, 6)
	// Restrict candidates to half the gates; layers must not contain
	// the excluded ones.
	half := full.Candidates[:len(full.Candidates)/2]
	a, err := fault.NewAttack("half", 6, fault.DefaultRadiation(), half, nil)
	if err != nil {
		t.Fatal(err)
	}
	layers, err := candidateLayers(a, char, nl, place)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[netlist.NodeID]bool{}
	for _, g := range half {
		allowed[g] = true
	}
	for tt, layer := range layers {
		for _, g := range layer {
			if !allowed[g] {
				t.Fatalf("layer %d contains non-candidate %d", tt, g)
			}
		}
	}
}

func TestImportanceBetaSweepConstructs(t *testing.T) {
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 10)
	for _, beta := range []float64{0, 0.5, 1, 5, 100} {
		im, err := NewImportance(a, char, nl, place, DefaultAlpha, beta)
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		sum := 0.0
		for _, p := range im.TimingProbs() {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("beta=%v: g_T sums to %v", beta, sum)
		}
	}
}

func TestImportanceAlphaZeroStillValid(t *testing.T) {
	// With alpha=0 the distribution degenerates to uniform over the
	// (dilated) cone layers — weights must stay well-formed.
	char, nl, place := fixture(t)
	a := fixtureAttack(t, 10)
	im, err := NewImportance(a, char, nl, place, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		_, w := im.Draw(rng)
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("weight %v", w)
		}
	}
}
