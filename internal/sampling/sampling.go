// Package sampling implements the three sampling strategies the paper
// compares (Fig 9): plain random sampling from the nominal attack
// distribution f_{T,P}, uniform sampling restricted to the responding
// signals' fanin/fanout cones, and the full importance-sampling strategy
// g_{T,P} = g_T · g_{P|T} built from the pre-characterization.
//
// Every sampler returns, with each draw, the likelihood ratio
// f(t,p)/g(t,p) so the Monte Carlo engine's weighted estimator stays
// unbiased for SSF = E_{T,P}[E].
package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/precharac"
	"repro/internal/stats"
)

// Sampler draws attack parameter samples together with their importance
// weights.
type Sampler interface {
	// Name identifies the strategy in reports.
	Name() string
	// Draw returns one sample and its likelihood ratio f/g.
	Draw(rng *rand.Rand) (fault.Sample, float64)
	// TimingProbs returns g_T as a probability per timing distance
	// (Fig 8(a)). For allocation-driven samplers this is the long-run
	// fraction of draws per timing distance; it always sums to 1.
	TimingProbs() []float64
}

// Forker is implemented by samplers that carry per-campaign mutable
// state — low-discrepancy sequence positions, per-stratum substreams.
// Campaign runners fork one private stream per (campaign, shard) using
// the shard's deterministically derived seed, so parallel and resumed
// runs replay the exact same streams. Samplers without per-draw state
// simply don't implement Forker and are used as-is.
type Forker interface {
	Sampler
	// Fork returns an independent stream of this sampler. The result
	// must depend only on (receiver, seed).
	Fork(seed int64) Sampler
}

// Stratal is implemented by samplers that partition the attack space
// into strata with known probabilities under the nominal distribution
// f. Campaigns track a per-stratum estimator for them (the stratified
// estimate sum_k pi_k * mean_k replaces the plain weighted mean).
type Stratal interface {
	Sampler
	// NumStrata returns the number of strata K.
	NumStrata() int
	// StratumProb returns pi_k, the nominal probability of stratum k.
	StratumProb(k int) float64
	// StratumOf maps a drawn sample to its stratum index.
	StratumOf(s fault.Sample) int
	// ConditionalWeight converts the full draw weight returned by Draw
	// into the within-stratum conditional weight the stratified
	// estimator accumulates (it strips the pi_k / allocation_k factor).
	ConditionalWeight(s fault.Sample, w float64) float64
}

// AdaptState carries the accumulated observations an Adaptive sampler
// re-tunes from between adaptive rounds. All fields come from merged
// campaign state, so the adapted proposal is a pure function of the
// checkpoint and resumed runs replay it bit-identically.
type AdaptState struct {
	// Draws and Hits tally samples and raw successes per timing
	// distance (index t < TRange).
	Draws, Hits []int
	// Strata is the per-stratum estimator when the campaign tracks one
	// (nil otherwise); allocation tuning reads its per-stratum
	// variances.
	Strata *stats.Stratified
	// Floor is the clamping floor, as a fraction of the largest
	// re-tuned weight: no stratum's probability or allocation is tilted
	// below Floor times the maximum. It keeps every stratum explored so
	// the estimator stays unbiased (a proposal that starves a stratum
	// with true mass would never correct itself).
	Floor float64
}

// Adaptive is implemented by samplers that can re-tune themselves from
// observed outcomes between adaptive rounds. Adapt must be
// deterministic in (receiver, state) and must preserve Name() so
// campaigns under the old and new proposal still merge.
type Adaptive interface {
	Sampler
	// Adapt returns a re-tuned copy (the receiver is not modified), or
	// the receiver itself when the observations carry no signal yet.
	Adapt(state AdaptState) (Sampler, error)
}

// DefaultAdaptFloor is the default weight-floor fraction for Adapt.
const DefaultAdaptFloor = 0.02

// --- Random --------------------------------------------------------------

// Random samples directly from the nominal attack distribution; every
// weight is 1. This is the paper's baseline.
type Random struct {
	Attack *fault.Attack
}

// Name implements Sampler.
func (r *Random) Name() string { return "random" }

// Draw implements Sampler.
func (r *Random) Draw(rng *rand.Rand) (fault.Sample, float64) {
	return r.Attack.SampleNominal(rng), 1.0
}

// TimingProbs implements Sampler.
func (r *Random) TimingProbs() []float64 {
	out := make([]float64, r.Attack.TRange)
	for i := range out {
		out[i] = 1 / float64(r.Attack.TRange)
	}
	return out
}

// --- Fanin/fanout-cone sampling ------------------------------------------

// Cone samples the timing distance uniformly but restricts strike
// centers to the gates of the responding signals' fanin/fanout cones at
// the sampled depth — the paper's intermediate strategy ("Fanin Cone
// Sampling" in Fig 9). Strikes centered outside the cones are assumed
// ineffective (their indicator is 0), which holds up to spot-radius
// boundary effects.
type Cone struct {
	attack *fault.Attack
	// layers[i] is Ω_i: cone gates at unroll depth i that are also
	// attack candidates.
	layers [][]netlist.NodeID
	tDist  *stats.Discrete
}

// NewCone builds the cone-restricted sampler from a characterization.
// place, when non-nil, dilates the cone layers by the technique's spot
// radius so that any center whose spot reaches the cone stays in the
// support.
func NewCone(attack *fault.Attack, char *precharac.Characterization, nl *netlist.Netlist, place *placement.Placement) (*Cone, error) {
	layers, err := candidateLayers(attack, char, nl, place)
	if err != nil {
		return nil, err
	}
	// Timing distances whose layer is empty can never be drawn; ones
	// with gates share the probability uniformly.
	w := make([]float64, attack.TRange)
	for t := range w {
		if len(layers[t]) > 0 {
			w[t] = 1
		}
	}
	tDist, err := stats.NewDiscrete(w)
	if err != nil {
		return nil, fmt.Errorf("sampling: no cone gates within TRange: %w", err)
	}
	return &Cone{attack: attack, layers: layers, tDist: tDist}, nil
}

// Name implements Sampler.
func (c *Cone) Name() string { return "fanin-cone" }

// Draw implements Sampler.
func (c *Cone) Draw(rng *rand.Rand) (fault.Sample, float64) {
	t := c.tDist.Sample(rng.Float64())
	layer := c.layers[t]
	center := layer[rng.Intn(len(layer))]
	s := fault.Sample{
		T:      t,
		Center: center,
		Radius: c.attack.Technique.SampleRadius(rng),
		Width:  c.attack.Technique.SampleWidth(rng),
		Time:   c.attack.Technique.SampleTime(rng),
	}
	g := c.tDist.Prob(t) * (1 / float64(len(layer)))
	return s, c.attack.Density(s) / g
}

// TimingProbs implements Sampler.
func (c *Cone) TimingProbs() []float64 {
	out := make([]float64, c.attack.TRange)
	for i := range out {
		out[i] = c.tDist.Prob(i)
	}
	return out
}

// --- Importance sampling ---------------------------------------------------

// Importance implements the paper's pre-characterization-driven
// distribution:
//
//	g_T(t=i)      ∝ ω_i = Σ_{g∈Ω_i} (1 + α·Corr_i(g, rs)·δ(L(g) ≥ β·i))
//	g_{P|T}(g|i)  ∝       1 + α·Corr_i(g, rs)·δ(L(g) ≥ β·i)   for g ∈ Ω_i
//
// where Ω_i is the candidate gates in the responding signals' cones at
// unroll depth i, Corr is the bit-flip correlation, and L(g) is the
// effective error lifetime of the registers latching g.
type Importance struct {
	attack *fault.Attack
	// Alpha scales how strongly correlation concentrates the mass;
	// Beta scales the lifetime requirement per unroll depth.
	Alpha, Beta float64
	// MixUniform is the global defensive-mixture weight: each draw
	// comes from the nominal distribution f with this probability, so
	// no importance weight exceeds its reciprocal even off the
	// characterized support. 0 disables it.
	MixUniform float64
	// MixLayer is the within-layer defensive mixture: after the
	// timing distance is drawn, the center comes from the uniform
	// distribution over Ω_t with this probability instead of the
	// correlation tilt. It bounds the weight of successes the
	// correlation heuristic misses while preserving the temporal
	// concentration. 0 disables it.
	MixLayer float64

	layers  [][]netlist.NodeID
	tDist   *stats.Discrete
	pDists  []*stats.Discrete // per timing distance, over layers[t]
	centerP []map[netlist.NodeID]float64
}

// DefaultAlpha and DefaultBeta are the configuration used by the
// experiments; the ablation bench sweeps both.
const (
	DefaultAlpha = 50.0
	DefaultBeta  = 1.0
	// DefaultMixUniform is the global safety mixture.
	DefaultMixUniform = 0.05
	// DefaultMixLayer is the within-layer defensive mixture.
	DefaultMixLayer = 0.35
)

// NewImportance builds the paper's sampler from a characterization.
//
// place, when non-nil, enables spatial dilation of the correlation: a
// strike centered at gate g deposits transients at every gate within
// the spot radius, so the weight of g as a *center* uses the maximum
// correlation (and matching lifetime) over g's spot neighbourhood
// rather than g alone. The dilation radius is the technique's maximum
// spot radius.
func NewImportance(attack *fault.Attack, char *precharac.Characterization, nl *netlist.Netlist, place *placement.Placement, alpha, beta float64) (*Importance, error) {
	if alpha < 0 || beta < 0 {
		return nil, fmt.Errorf("sampling: negative alpha/beta (%v, %v)", alpha, beta)
	}
	layers, err := candidateLayers(attack, char, nl, place)
	if err != nil {
		return nil, err
	}
	maxRadius := attack.Technique.Radius + attack.Technique.RadiusJitter
	// Spot neighbourhoods are timing-independent: precompute them once
	// instead of once per (t, gate).
	var spot map[netlist.NodeID][]netlist.NodeID
	if place != nil {
		spot = make(map[netlist.NodeID][]netlist.NodeID, len(attack.Candidates))
		for _, g := range attack.Candidates {
			spot[g] = place.CombWithinRadius(g, maxRadius)
		}
	}
	// Excess correlation over the chance baseline: a node switching
	// every cycle overlaps the responding signal's switches at
	// roughly its switch density even when unrelated; only the excess
	// identifies related logic.
	base := char.SwitchDensity()
	excess := func(t int, h netlist.NodeID) float64 {
		c := (char.CorrComb(t, h) - base) / (1 - base)
		if c < 0 {
			return 0
		}
		return c
	}
	im := &Importance{
		attack: attack, Alpha: alpha, Beta: beta,
		MixUniform: DefaultMixUniform,
		MixLayer:   DefaultMixLayer,
		layers:     layers,
		pDists:     make([]*stats.Discrete, attack.TRange),
		centerP:    make([]map[netlist.NodeID]float64, attack.TRange),
	}
	omega := make([]float64, attack.TRange)
	for t := 0; t < attack.TRange; t++ {
		layer := layers[t]
		if len(layer) == 0 {
			continue
		}
		ws := make([]float64, len(layer))
		sum := 0.0
		for j, g := range layer {
			w := 1.0
			if place != nil {
				// Spot dilation: a strike centered at g deposits
				// transients at every gate within the spot, so
				// its weight accumulates the boost of each
				// reachable gate.
				for _, h := range spot[g] {
					if char.Lifetime(h) >= beta*float64(t) {
						w += alpha * excess(t, h)
					}
				}
			} else if char.Lifetime(g) >= beta*float64(t) {
				w += alpha * excess(t, g)
			}
			ws[j] = w
			sum += w
		}
		omega[t] = sum
		pd, err := stats.NewDiscrete(ws)
		if err != nil {
			return nil, err
		}
		im.pDists[t] = pd
		cp := make(map[netlist.NodeID]float64, len(layer))
		for j, g := range layer {
			cp[g] = pd.Prob(j)
		}
		im.centerP[t] = cp
	}
	tDist, err := stats.NewDiscrete(omega)
	if err != nil {
		return nil, fmt.Errorf("sampling: empty importance distribution: %w", err)
	}
	im.tDist = tDist
	return im, nil
}

// Name implements Sampler.
func (im *Importance) Name() string { return "importance" }

// Draw implements Sampler.
func (im *Importance) Draw(rng *rand.Rand) (fault.Sample, float64) {
	var s fault.Sample
	if im.MixUniform > 0 && rng.Float64() < im.MixUniform {
		s = im.attack.SampleNominal(rng)
	} else {
		t := im.tDist.Sample(rng.Float64())
		layer := im.layers[t]
		var center netlist.NodeID
		if im.MixLayer > 0 && rng.Float64() < im.MixLayer {
			center = layer[rng.Intn(len(layer))]
		} else {
			center = layer[im.pDists[t].Sample(rng.Float64())]
		}
		s = fault.Sample{
			T:      t,
			Center: center,
			Radius: im.attack.Technique.SampleRadius(rng),
			Width:  im.attack.Technique.SampleWidth(rng),
			Time:   im.attack.Technique.SampleTime(rng),
		}
	}
	f := im.attack.Density(s)
	g := im.MixUniform*f + (1-im.MixUniform)*im.density(s)
	return s, f / g
}

// density returns the pre-characterization part of g at a sample: the
// layer distribution g_T times the within-layer mixture over centers.
func (im *Importance) density(s fault.Sample) float64 {
	if s.T < 0 || s.T >= len(im.centerP) || im.centerP[s.T] == nil {
		return 0
	}
	layerN := float64(len(im.layers[s.T]))
	pC := im.centerP[s.T][s.Center]
	var pUnif float64
	if pC > 0 {
		// Center is in Ω_t; the uniform component covers it too.
		pUnif = 1 / layerN
	}
	mixed := im.MixLayer*pUnif + (1-im.MixLayer)*pC
	return im.tDist.Prob(s.T) * mixed
}

// TimingProbs implements Sampler.
func (im *Importance) TimingProbs() []float64 {
	out := make([]float64, im.attack.TRange)
	for i := range out {
		out[i] = im.tDist.Prob(i)
	}
	return out
}

// Adapt implements Adaptive: it re-tilts the timing-distance
// distribution g_T toward the observed per-stratum hit rates, keeping
// the within-layer center distributions untouched. The new weight of a
// non-empty timing distance is its raw hit rate, floor-clamped at
// state.Floor times the largest rate so no stratum is starved; empty
// layers stay at zero (they cannot be drawn). Importance weights are
// computed from the re-tilted distribution itself, so every draw stays
// individually unbiased — combining rounds drawn under different
// proposals is plain multiple-distribution importance sampling.
//
// The result shares the immutable layers/center distributions with the
// receiver; only tDist is replaced. When no hits have been observed
// anywhere the receiver is returned unchanged (the observations carry
// no signal to tilt toward).
func (im *Importance) Adapt(state AdaptState) (Sampler, error) {
	floor := state.Floor
	if floor <= 0 {
		floor = DefaultAdaptFloor
	}
	rates := make([]float64, im.attack.TRange)
	maxRate := 0.0
	for t := range rates {
		if len(im.layers[t]) == 0 || t >= len(state.Draws) || t >= len(state.Hits) {
			continue
		}
		if state.Draws[t] > 0 {
			rates[t] = float64(state.Hits[t]) / float64(state.Draws[t])
		}
		if rates[t] > maxRate {
			maxRate = rates[t]
		}
	}
	if maxRate == 0 {
		return im, nil
	}
	for t := range rates {
		if len(im.layers[t]) == 0 {
			rates[t] = 0
		} else if rates[t] < floor*maxRate {
			rates[t] = floor * maxRate
		}
	}
	tDist, err := stats.NewDiscrete(rates)
	if err != nil {
		return nil, fmt.Errorf("sampling: adapt: %w", err)
	}
	out := *im
	out.tDist = tDist
	return &out, nil
}

// CenterProb returns g_{P|T}(center | t) — exported for tests and the
// Fig 8 driver.
func (im *Importance) CenterProb(t int, center netlist.NodeID) float64 {
	if t < 0 || t >= len(im.centerP) || im.centerP[t] == nil {
		return 0
	}
	return im.centerP[t][center]
}

// candidateLayers intersects the characterization cones with the attack
// candidate set. layers[t] holds Ω_t: the candidate centers whose spot,
// fired at timing distance t, can deposit a transient into the cone's
// combinational gates at the paper's unroll index t. With a placement,
// the cone layer is dilated by the technique's maximum spot radius (a
// strike centered just outside the cone still reaches it); without one,
// the layer is the plain cone∩candidate intersection.
func candidateLayers(attack *fault.Attack, char *precharac.Characterization, nl *netlist.Netlist, place *placement.Placement) ([][]netlist.NodeID, error) {
	if attack.TRange-1 > char.MaxUnrollIndex() {
		return nil, fmt.Errorf("sampling: TRange %d exceeds characterized unroll depth %d", attack.TRange, char.MaxUnrollIndex())
	}
	maxRadius := attack.Technique.Radius + attack.Technique.RadiusJitter
	// Spot neighbourhoods are timing-independent; compute them once.
	var spot map[netlist.NodeID][]netlist.NodeID
	if place != nil {
		spot = make(map[netlist.NodeID][]netlist.NodeID, len(attack.Candidates))
		for _, g := range attack.Candidates {
			spot[g] = place.CombWithinRadius(g, maxRadius)
		}
	}
	layers := make([][]netlist.NodeID, attack.TRange)
	for t := 0; t < attack.TRange; t++ {
		inCone := make(map[netlist.NodeID]bool)
		for _, g := range char.CombLayer(nl, t) {
			inCone[g] = true
		}
		for _, g := range attack.Candidates {
			ok := inCone[g]
			if !ok && place != nil {
				for _, h := range spot[g] {
					if inCone[h] {
						ok = true
						break
					}
				}
			}
			if ok {
				layers[t] = append(layers[t], g)
			}
		}
	}
	return layers, nil
}
