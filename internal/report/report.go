// Package report renders experiment results as aligned text tables and
// simple series/bar plots, so every table and figure of the paper can be
// regenerated on a terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// FormatFloat renders a float compactly: scientific for very small or
// large magnitudes, fixed otherwise.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.IsNaN(v):
		return "NaN"
	case math.Abs(v) < 1e-3 || math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Series renders a labeled numeric series as an ASCII bar chart (one
// row per point), used for the figure-style outputs.
type Series struct {
	Title  string
	labels []string
	values []float64
}

// NewSeries creates an empty series.
func NewSeries(title string) *Series { return &Series{Title: title} }

// Point appends a labeled value.
func (s *Series) Point(label string, v float64) *Series {
	s.labels = append(s.labels, label)
	s.values = append(s.values, v)
	return s
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.values) }

// Render writes the series with proportional bars.
func (s *Series) Render(w io.Writer) {
	if s.Title != "" {
		fmt.Fprintf(w, "%s\n", s.Title)
	}
	maxV := 0.0
	maxL := 0
	for i, v := range s.values {
		if v > maxV {
			maxV = v
		}
		if len(s.labels[i]) > maxL {
			maxL = len(s.labels[i])
		}
	}
	const barWidth = 46
	for i, v := range s.values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * barWidth)
		}
		fmt.Fprintf(w, "  %s  %s %s\n", pad(s.labels[i], maxL), pad(strings.Repeat("#", n), barWidth), FormatFloat(v))
	}
}

// String renders to a string.
func (s *Series) String() string {
	var sb strings.Builder
	s.Render(&sb)
	return sb.String()
}

// Percent formats a fraction as a percentage.
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
