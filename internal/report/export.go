package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writes labeled numeric series as a CSV file: one column per
// series, one row per index. Series of different lengths are padded
// with empty cells. It backs the experiment drivers' machine-readable
// output (e.g. convergence traces for external plotting).
func CSV(w io.Writer, header []string, columns ...[]float64) error {
	if len(header) != len(columns) {
		return fmt.Errorf("report: %d headers for %d columns", len(header), len(columns))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	rows := 0
	for _, c := range columns {
		if len(c) > rows {
			rows = len(c)
		}
	}
	rec := make([]string, len(columns))
	for r := 0; r < rows; r++ {
		for i, c := range columns {
			if r < len(c) {
				rec[i] = strconv.FormatFloat(c[r], 'g', -1, 64)
			} else {
				rec[i] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// KeyValueCSV writes a two-column key,value CSV for scalar result sets.
func KeyValueCSV(w io.Writer, pairs ...interface{}) error {
	if len(pairs)%2 != 0 {
		return fmt.Errorf("report: odd key/value list")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "value"}); err != nil {
		return err
	}
	for i := 0; i < len(pairs); i += 2 {
		key := fmt.Sprintf("%v", pairs[i])
		val := fmt.Sprintf("%v", pairs[i+1])
		if err := cw.Write([]string{key, val}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
