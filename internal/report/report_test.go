package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Title", "name", "value")
	tbl.Row("short", 1)
	tbl.Row("much-longer-name", 123456)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	// Header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// All data lines share a width (trailing padding aside).
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Error("header/separator malformed")
	}
	if !strings.Contains(lines[4], "much-longer-name") {
		t.Error("row content missing")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.0001, "1.000e-04"},
		{0.5, "0.5000"},
		{150, "150.0"},
		{2.5e7, "2.500e+07"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if FormatFloat(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
}

func TestTableFormatsFloats(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.Row(0.000123)
	if !strings.Contains(tbl.String(), "1.230e-04") {
		t.Errorf("float not formatted: %q", tbl.String())
	}
}

func TestSeriesBars(t *testing.T) {
	s := NewSeries("S")
	s.Point("a", 1).Point("bb", 2).Point("ccc", 0)
	if s.Len() != 3 {
		t.Fatal("Len")
	}
	out := s.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Max value gets the longest bar; zero gets none.
	if strings.Count(lines[2], "#") <= strings.Count(lines[1], "#") {
		t.Error("bars not proportional")
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Error("zero value should have no bar")
	}
}

func TestSeriesAllZero(t *testing.T) {
	s := NewSeries("z")
	s.Point("a", 0).Point("b", 0)
	out := s.String()
	if strings.Count(out, "#") != 0 {
		t.Error("all-zero series drew bars")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.1234) != "12.3%" {
		t.Errorf("Percent = %q", Percent(0.1234))
	}
}

func TestCSVExport(t *testing.T) {
	var buf strings.Builder
	err := CSV(&buf, []string{"a", "b"}, []float64{1, 2, 3}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,0.5\n2,\n3,\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	if err := CSV(&buf, []string{"a"}, nil, nil); err == nil {
		t.Error("header/column mismatch accepted")
	}
}

func TestKeyValueCSV(t *testing.T) {
	var buf strings.Builder
	if err := KeyValueCSV(&buf, "ssf", 0.001, "runs", 100); err != nil {
		t.Fatal(err)
	}
	want := "metric,value\nssf,0.001\nruns,100\n"
	if buf.String() != want {
		t.Errorf("KeyValueCSV = %q", buf.String())
	}
	if err := KeyValueCSV(&buf, "odd"); err == nil {
		t.Error("odd list accepted")
	}
}
