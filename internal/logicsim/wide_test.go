package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// buildMixed builds a small sequential circuit whose combinational
// cloud exercises every compiled opcode class: all six 2-input gate
// types, Inv/Buf, Mux2, both constants, variable-fanin (3- and
// 4-input) gates including the inverted N-ary forms, and DFFs with
// mixed init values fed back through the cloud.
func buildMixed(t *testing.T) (nl *netlist.Netlist, inputs, regs []netlist.NodeID) {
	t.Helper()
	n := netlist.New(64)
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	one := n.AddConst(true)
	zero := n.AddConst(false)
	regs = make([]netlist.NodeID, 6)
	for i := range regs {
		regs[i] = n.AddDFF(one, "", i%2 == 0)
	}
	g0 := n.AddGate(netlist.And, a, regs[0])
	g1 := n.AddGate(netlist.Nand, b, regs[1])
	g2 := n.AddGate(netlist.Or, c, regs[2])
	g3 := n.AddGate(netlist.Nor, g0, regs[3])
	g4 := n.AddGate(netlist.Xor, g1, regs[4])
	g5 := n.AddGate(netlist.Xnor, g2, regs[5])
	g6 := n.AddGate(netlist.Inv, g3)
	g7 := n.AddGate(netlist.Buf, g4)
	g8 := n.AddGate(netlist.Mux2, g5, g6, g7)
	g9 := n.AddGate(netlist.And, g0, g1, g2)
	g10 := n.AddGate(netlist.Nor, g3, g4, g5, a)
	g11 := n.AddGate(netlist.Xor, g6, g7, g8)
	g12 := n.AddGate(netlist.Nand, g9, g10, b)
	g13 := n.AddGate(netlist.Xnor, g11, g12, c)
	g14 := n.AddGate(netlist.Or, g13, zero, g8)
	n.Node(regs[0]).Fanin[0] = g8
	n.Node(regs[1]).Fanin[0] = g9
	n.Node(regs[2]).Fanin[0] = g10
	n.Node(regs[3]).Fanin[0] = g11
	n.Node(regs[4]).Fanin[0] = g12
	n.Node(regs[5]).Fanin[0] = g14
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n, []netlist.NodeID{a, b, c}, regs
}

// TestLaneSimMatchesScalar checks the wide evaluator against one
// scalar Simulator per 64-lane group: same register state loaded, same
// input words driven, a different register perturbed in every group
// each cycle. Every node value, every RegDiffMasks word, and the
// latched state must agree with the per-group scalar references at
// every width.
func TestLaneSimMatchesScalar(t *testing.T) {
	nl, inputs, regs := buildMixed(t)
	for _, K := range []int{1, 4, 8} {
		base, err := New(nl)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := NewLaneSim(base, K)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*Simulator, K)
		for g := range refs {
			if refs[g], err = New(nl); err != nil {
				t.Fatal(err)
			}
		}
		// Warm the scalar sim a few cycles so the broadcast state is
		// not just the power-on one.
		base.Step()
		base.Step()
		state := base.RegState()
		wide.SetRegStateBroadcast(state)
		for _, r := range refs {
			r.SetRegState(state)
		}
		rng := rand.New(rand.NewSource(int64(100 + K)))
		for cyc := 0; cyc < 24; cyc++ {
			in := rng.Uint64()
			wide.DriveWord(inputs, in)
			for _, r := range refs {
				r.DriveWord(inputs, in)
			}
			// Diverge the groups: flip a different register with a
			// different lane mask in each group.
			for g, r := range refs {
				id := regs[(cyc+g)%len(regs)]
				mask := rng.Uint64()
				wide.XorReg(id, g, mask)
				r.SetReg(id, r.Val(id)^mask)
			}
			wide.Eval()
			for _, r := range refs {
				r.Eval()
			}
			for i := 0; i < nl.NumNodes(); i++ {
				id := netlist.NodeID(i)
				for g, r := range refs {
					if got, want := wide.ValGroup(id, g), r.Val(id); got != want {
						t.Fatalf("K=%d cycle %d node %d group %d: wide %#x, scalar %#x",
							K, cyc, id, g, got, want)
					}
				}
			}
			masks := make([]uint64, K)
			wide.RegDiffMasks(state, masks)
			for g, r := range refs {
				if got, want := masks[g], r.RegDiffMask(state); got != want {
					t.Fatalf("K=%d cycle %d group %d: RegDiffMasks %#x, scalar %#x",
						K, cyc, g, got, want)
				}
			}
			wide.Latch()
			for _, r := range refs {
				r.Latch()
			}
		}
	}
}

// TestLaneSimReset checks Reset restores the power-on register state in
// every lane of every group.
func TestLaneSimReset(t *testing.T) {
	nl, inputs, regs := buildMixed(t)
	base, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewLaneSim(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	wide.DriveWord(inputs, 7)
	wide.Step()
	wide.Step()
	wide.Reset()
	for i, id := range regs {
		want := uint64(0)
		if i%2 == 0 {
			want = AllLanes
		}
		for g := 0; g < wide.Groups(); g++ {
			if got := wide.ValGroup(id, g); got != want {
				t.Fatalf("reg %d group %d after Reset: %#x, want %#x", id, g, got, want)
			}
		}
	}
	for _, id := range inputs {
		for g := 0; g < wide.Groups(); g++ {
			if wide.ValGroup(id, g) != 0 {
				t.Fatalf("input %d group %d not cleared by Reset", id, g)
			}
		}
	}
}

// TestNewLaneSimRejectsBadGroups checks the supported-width gate.
func TestNewLaneSimRejectsBadGroups(t *testing.T) {
	nl, _, _ := buildMixed(t)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, -1, 2, 3, 5, 16} {
		if _, err := NewLaneSim(s, bad); err == nil {
			t.Fatalf("NewLaneSim(%d) accepted an unsupported group count", bad)
		}
	}
}

// TestForkSharesPlan checks the aliasing contract of Fork: the compiled
// plan (immutable) is shared by pointer, while the value state is an
// independent deep copy — stepping the fork must not disturb the
// parent.
func TestForkSharesPlan(t *testing.T) {
	nl, inputs, _ := buildMixed(t)
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.DriveWord(inputs, 5)
	s.Eval()
	f := s.Fork()
	if s.Plan() != f.Plan() {
		t.Fatal("Fork must share the parent's compiled plan")
	}
	before := make([]uint64, nl.NumNodes())
	for i := range before {
		before[i] = s.Val(netlist.NodeID(i))
	}
	f.DriveWord(inputs, 2)
	f.Step()
	f.Step()
	for i := range before {
		if got := s.Val(netlist.NodeID(i)); got != before[i] {
			t.Fatalf("stepping the fork changed parent node %d: %#x -> %#x", i, before[i], got)
		}
	}
	// And a wide sim built over the fork shares the same plan too.
	w, err := NewLaneSim(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w.(*wideSim).plan != s.Plan() {
		t.Fatal("LaneSim over a fork must share the original plan")
	}
}

// TestFillCombWideMatchesParallel checks that recovering gate values
// from recorded sources is bit-identical whether done one 64-cycle
// block per pass (FillCombParallel) or 4/8 blocks per pass over the
// wide evaluator, including the ragged tail when the cycle count is
// not a multiple of 64·groups.
func TestFillCombWideMatchesParallel(t *testing.T) {
	nl, inputs, _ := buildMixed(t)
	const cycles = 3*64 + 17
	full := NewTrace(nl, cycles)
	src := NewTrace(nl, cycles)
	{
		s, err := New(nl)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for c := 0; c < cycles; c++ {
			s.DriveWord(inputs, rng.Uint64())
			s.Eval()
			full.RecordAll(s, c)
			src.RecordSources(s, c)
			s.Latch()
		}
	}
	check := func(name string, tr *Trace) {
		t.Helper()
		for i := 0; i < nl.NumNodes(); i++ {
			id := netlist.NodeID(i)
			for c := 0; c < cycles; c++ {
				if tr.Value(id, c) != full.Value(id, c) {
					t.Fatalf("%s: node %d cycle %d disagrees with RecordAll", name, id, c)
				}
			}
		}
	}
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, groups := range []int{1, 4, 8} {
		tr := NewTrace(nl, cycles)
		for i := range tr.bits {
			copy(tr.bits[i], src.bits[i])
		}
		tr.FillCombWide(s, groups)
		check("FillCombWide", tr)
	}
	tr := NewTrace(nl, cycles)
	for i := range tr.bits {
		copy(tr.bits[i], src.bits[i])
	}
	tr.FillCombParallel(s)
	check("FillCombParallel", tr)
}
