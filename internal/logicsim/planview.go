// Plan decoding for static verification: View unpacks the packed op
// stream into modelcheck's plain-data PlanView so the PL-family
// verifier (and netlint -plan) can check the compiled plan against its
// source netlist without knowing the bit packing. The decode is
// defensive — a corrupted plan yields a view with out-of-range fields
// or nil fanin lists for the verifier to report, never a panic here.
package logicsim

import (
	"repro/internal/modelcheck"
	"repro/internal/netlist"
)

// opcodeCell maps each plan opcode to the cell type it computes and the
// fanin count fixed by the opcode (-1 for the variable-fanin codes,
// which read the op's encoded count).
var opcodeCell = [...]struct {
	cell  netlist.CellType
	arity int
}{
	opConst0: {netlist.Const0, 0},
	opConst1: {netlist.Const1, 0},
	opBuf:    {netlist.Buf, 1},
	opInv:    {netlist.Inv, 1},
	opAnd2:   {netlist.And, 2},
	opAndN:   {netlist.And, -1},
	opNand2:  {netlist.Nand, 2},
	opNandN:  {netlist.Nand, -1},
	opOr2:    {netlist.Or, 2},
	opOrN:    {netlist.Or, -1},
	opNor2:   {netlist.Nor, 2},
	opNorN:   {netlist.Nor, -1},
	opXor2:   {netlist.Xor, 2},
	opXorN:   {netlist.Xor, -1},
	opXnor2:  {netlist.Xnor, 2},
	opXnorN:  {netlist.Xnor, -1},
	opMux2:   {netlist.Mux2, 3},
}

// View decodes the plan into modelcheck's plain-data form. The view is
// a snapshot: it shares nothing with the plan's packed arrays and can
// be mutated freely (the verifier tests corrupt views field by field).
func (p *Plan) View() modelcheck.PlanView {
	v := modelcheck.PlanView{
		NumNodes: p.numNodes,
		PoolSize: len(p.pool),
		MaxFanin: p.maxFanin,
		Ops:      make([]modelcheck.PlanOp, len(p.ops)),
		Regs:     toNodeIDs(p.regs),
		RegSrc:   toNodeIDs(p.regSrc),
		InitHi:   toNodeIDs(p.initHi),
	}
	for i, op := range p.ops {
		o := &v.Ops[i]
		o.Out = netlist.NodeID(op & opOutMask)
		o.Nin = int(op >> opNinShift & opNinMask)
		o.PoolOff = int(op >> opOffShift)
		code := op >> opCodeShift & opCodeMask
		o.Arity = -1
		if int(code) < len(opcodeCell) {
			o.Cell = opcodeCell[code].cell
			o.Arity = opcodeCell[code].arity
			o.CellOK = true
		}
		eff := o.Arity
		if eff < 0 {
			eff = o.Nin
		}
		if o.CellOK && o.PoolOff >= 0 && o.PoolOff+eff <= len(p.pool) {
			fan := make([]netlist.NodeID, eff)
			for j := range fan {
				fan[j] = netlist.NodeID(p.pool[o.PoolOff+j])
			}
			o.Fanin = fan
		}
	}
	return v
}

func toNodeIDs(xs []int32) []netlist.NodeID {
	out := make([]netlist.NodeID, len(xs))
	for i, x := range xs {
		out[i] = netlist.NodeID(x)
	}
	return out
}
