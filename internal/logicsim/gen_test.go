package logicsim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/netlist"
)

const genTestDesign = `gnl v1
0 input "a[0]"
1 input "b[0]"
2 and 0 1
3 xor 2 1
4 dff 3 en=0 "r[0]"
out "y[0]" 3
`

func genTestNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Read(strings.NewReader(genTestDesign))
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestGeneratedBindsAndEvaluates registers a (correct) evaluator under
// the design's real plan hash and checks that Compile binds it, that
// Eval actually dispatches into it, and that the results stay
// bit-identical to the interpreter. The registered function delegates
// to EvalInterpreted, so even if a later test compiles a structurally
// identical netlist, the registry entry stays semantically exact.
func TestGeneratedBindsAndEvaluates(t *testing.T) {
	nl := genTestNetlist(t)
	base, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	RegisterGenerated(Generated{
		Hash:     base.Hash(),
		NumNodes: nl.NumNodes(),
		Eval1: func(vals []uint64) {
			calls++
			base.EvalInterpreted(vals)
		},
	})
	plan, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Generated() {
		t.Fatal("plan did not bind the registered evaluator")
	}
	rng := rand.New(rand.NewSource(5))
	vals := make([]uint64, nl.NumNodes())
	want := make([]uint64, nl.NumNodes())
	for i := range vals {
		vals[i] = rng.Uint64()
		want[i] = vals[i]
	}
	plan.Eval(vals)
	base.EvalInterpreted(want)
	if calls == 0 {
		t.Error("Eval did not dispatch into the generated function")
	}
	for i := range vals {
		if vals[i] != want[i] {
			t.Errorf("node %d: generated %#x, interpreted %#x", i, vals[i], want[i])
		}
	}
}

// TestGeneratedInterlocks covers every way a registered evaluator must
// FAIL to bind: wrong hash, wrong node count, and the global disable
// switch. Falling back to the interpreter on any mismatch is the
// stale-code safety property the registry exists for.
func TestGeneratedInterlocks(t *testing.T) {
	// A design of its own, so registrations from other tests in this
	// package can never alias its plan hash.
	nl, err := netlist.Read(strings.NewReader(`gnl v1
0 input "a[0]"
1 input "b[0]"
2 or 0 1
3 nand 2 0
4 dff 3 en=0 "r[0]"
out "y[0]" 3
`))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	noop := func(vals []uint64) { panic("stale generated evaluator executed") }

	// Wrong hash: never looked up.
	RegisterGenerated(Generated{Hash: base.Hash() ^ 0xdead, NumNodes: nl.NumNodes(), Eval1: noop})
	plan, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generated() {
		t.Fatal("hash-mismatched evaluator bound")
	}

	// Right hash, wrong node count: rejected by the second interlock.
	RegisterGenerated(Generated{Hash: base.Hash(), NumNodes: nl.NumNodes() + 1, Eval1: noop})
	plan, err = Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generated() {
		t.Fatal("node-count-mismatched evaluator bound")
	}
	vals := make([]uint64, nl.NumNodes())
	plan.Eval(vals) // must interpret, not panic in noop

	// Disable switch: nothing binds while off, previous setting returns.
	RegisterGenerated(Generated{Hash: base.Hash(), NumNodes: nl.NumNodes(), Eval1: base.EvalInterpreted})
	prev := SetGeneratedEnabled(false)
	if !prev {
		t.Error("generated evaluators were not enabled by default")
	}
	plan, err = Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Generated() {
		t.Fatal("evaluator bound while generation disabled")
	}
	SetGeneratedEnabled(true)
	plan, err = Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Generated() {
		t.Fatal("evaluator did not bind after re-enabling")
	}

	// Leave no live evaluator behind for this tiny design: later tests
	// in the package may compile an identical netlist. Re-register a
	// delegating (always-correct) entry.
	RegisterGenerated(Generated{Hash: base.Hash(), NumNodes: nl.NumNodes(), Eval1: base.EvalInterpreted})
}

// TestRegisterGeneratedRejectsEmpty pins the registration guard.
func TestRegisterGeneratedRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RegisterGenerated with no functions did not panic")
		}
	}()
	RegisterGenerated(Generated{Hash: 42})
}

// TestHashSensitivity: plans of different designs hash differently,
// and the hash is stable across compiles of the same design.
func TestHashSensitivity(t *testing.T) {
	nl := genTestNetlist(t)
	a, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Error("same design, different hash across compiles")
	}
	other, err := netlist.Read(strings.NewReader("gnl v1\n0 input \"a[0]\"\n1 inv 0\nout \"y[0]\" 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	o, err := Compile(other)
	if err != nil {
		t.Fatal(err)
	}
	if o.Hash() == a.Hash() {
		t.Error("different designs share a plan hash")
	}
}
