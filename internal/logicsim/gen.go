// Generated-evaluator registry: per-netlist straight-line evaluators
// produced by cmd/gnlgen (internal/logicsim/codegen) register here
// under the hash of the compiled plan they were generated from, and
// Compile transparently binds a matching one to the plan it returns.
//
// The hash is the safety interlock: it covers every packed op, the
// whole fanin pool, and the full latch schedule, so a generated file
// that has gone stale against its netlist (different fold, different
// topo order, different design) simply never matches and the plan
// falls back to the interpreted Eval — stale generated code can slow
// the campaign down, never corrupt it. The CI drift job
// (`go generate ./... && git diff --exit-code`) keeps even that
// slowdown from landing.
package logicsim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Generated is a straight-line evaluator specialization of one
// compiled plan: one function per supported lane stride, each the
// exact unrolled equivalent of the interpreted op stream over a flat
// node-major value array of NumNodes·K words. A nil function for a
// stride means "no specialization, interpret that width".
type Generated struct {
	// Hash is Plan.Hash() of the plan the code was generated from.
	Hash uint64
	// NumNodes is the node count the evaluator's value indexing was
	// generated for (a second, human-readable interlock next to Hash).
	NumNodes int
	// Eval1, Eval4, and Eval8 evaluate the combinational op stream
	// over K=1, K=4, and K=8 words per node (64/256/512 lanes).
	Eval1, Eval4, Eval8 func(vals []uint64)
}

var (
	genMu       sync.Mutex
	genRegistry = map[uint64]*Generated{}
	genEnabled  atomic.Bool
)

func init() { genEnabled.Store(true) }

// RegisterGenerated adds a generated evaluator to the registry,
// keyed by its plan hash. It is meant to be called from the init
// function of a generated file; registering a second evaluator for
// the same hash replaces the first (latest wins, so a regenerated
// file shadows a stale twin during refactors).
func RegisterGenerated(g Generated) {
	if g.Eval1 == nil && g.Eval4 == nil && g.Eval8 == nil {
		panic(fmt.Sprintf("logicsim: RegisterGenerated(hash %#x) with no evaluator functions", g.Hash))
	}
	genMu.Lock()
	defer genMu.Unlock()
	cp := g
	genRegistry[g.Hash] = &cp
}

// SetGeneratedEnabled toggles whether Compile binds registered
// generated evaluators to the plans it builds (default on), returning
// the previous setting. Plans compiled while disabled stay interpreted
// for their lifetime — that is how benchmarks and equivalence tests
// hold the interpreted baseline and the generated path side by side in
// one process. Already-compiled plans are unaffected.
func SetGeneratedEnabled(on bool) bool { return genEnabled.Swap(on) }

// generatedFor looks up a registered evaluator for a plan, applying
// the safety interlocks: hash match and node-count match.
func generatedFor(p *Plan) *Generated {
	if !genEnabled.Load() {
		return nil
	}
	genMu.Lock()
	g := genRegistry[p.Hash()]
	genMu.Unlock()
	if g == nil || g.NumNodes != p.numNodes {
		return nil
	}
	return g
}

// fnv1aOffset and fnv1aPrime are the 64-bit FNV-1a parameters.
const (
	fnv1aOffset = 0xcbf29ce484222325
	fnv1aPrime  = 0x100000001b3
)

// hashWord folds one 64-bit word into an FNV-1a state byte by byte.
func hashWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w >> (8 * i) & 0xff
		h *= fnv1aPrime
	}
	return h
}

// Hash returns the content hash of the compiled plan: a 64-bit FNV-1a
// over the node count, the packed op stream, the fanin pool, and the
// complete latch schedule. Two plans share a hash exactly when every
// array the evaluators read is identical, so it is the registry key
// that pairs a plan with code generated from it.
func (p *Plan) Hash() uint64 {
	if p.hash != 0 {
		return p.hash
	}
	h := uint64(fnv1aOffset)
	h = hashWord(h, uint64(p.numNodes))
	h = hashWord(h, uint64(len(p.ops)))
	for _, op := range p.ops {
		h = hashWord(h, op)
	}
	h = hashWord(h, uint64(len(p.pool)))
	for _, f := range p.pool {
		h = hashWord(h, uint64(uint32(f)))
	}
	for _, r := range p.regs {
		h = hashWord(h, uint64(uint32(r)))
	}
	for _, s := range p.regSrc {
		h = hashWord(h, uint64(uint32(s)))
	}
	h = hashWord(h, uint64(len(p.initHi)))
	for _, r := range p.initHi {
		h = hashWord(h, uint64(uint32(r)))
	}
	if h == 0 {
		h = 1 // keep 0 as the "not yet computed" sentinel
	}
	p.hash = h
	return h
}

// Generated reports whether the plan is bound to a registered
// straight-line evaluator (and Eval therefore skips the interpreter).
func (p *Plan) Generated() bool { return p.gen != nil }
