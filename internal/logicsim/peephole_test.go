package logicsim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// peepholeDesign exercises every fold rule: buf chains (including one
// feeding a DFF), constants folding into gates of each family, a mux
// with a constant select, and a constant-initialized register.
const peepholeDesign = `gnl v1
0 input "a[0]"
1 input "b[0]"
2 const0
3 const1
4 buf 0
5 buf 4
6 and 5 1
7 and 6 3
8 or 6 2
9 xor 0 3 1
10 xnor 0 2
11 mux2 0 1 3
12 mux2 0 1 2
13 nand 5 3
14 nor 2 8
15 dff 5 en=0 "r0[0]"
16 dff 9 en=0 "r1[0]" init=1
17 xor 15 16
out "y0[0]" 7
out "y1[0]" 8
out "y2[0]" 9
out "y3[0]" 11
out "y4[0]" 12
out "y5[0]" 13
out "y6[0]" 14
out "y7[0]" 17
`

func compilePeepholePair(t *testing.T) (folded, raw *Plan, nl *netlist.Netlist) {
	t.Helper()
	n, err := netlist.Read(strings.NewReader(peepholeDesign))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compile(n)
	if err != nil {
		t.Fatalf("peephole compile: %v", err)
	}
	r, err := CompileWithOptions(n, CompileOptions{NoPeephole: true})
	if err != nil {
		t.Fatalf("raw compile: %v", err)
	}
	return f, r, n
}

// TestPeepholeEvalBitIdentical pins the fold's value-preservation
// contract: with and without the peephole, every node carries the same
// word after every Eval, for random 64-lane stimulus.
func TestPeepholeEvalBitIdentical(t *testing.T) {
	folded, raw, nl := compilePeepholePair(t)
	n := nl.NumNodes()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 64; trial++ {
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64()
		}
		b := append([]uint64(nil), a...)
		folded.Eval(a)
		raw.Eval(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d node %d (%v): folded %#x, raw %#x",
					trial, i, nl.Node(netlist.NodeID(i)).Type, a[i], b[i])
			}
		}
	}
}

// TestPeepholeLatchResetEquivalence runs full clocked cycles through
// both plans — Reset, then Eval+Latch with shared random inputs — and
// demands identical register trajectories and node values throughout.
// This covers the latch schedule (never folded: D pins read the raw
// source node) and the initHi reset list under the peephole.
func TestPeepholeLatchResetEquivalence(t *testing.T) {
	folded, raw, nl := compilePeepholePair(t)
	n := nl.NumNodes()
	inputs := nl.Inputs()
	fv := make([]uint64, n)
	rv := make([]uint64, n)
	folded.Reset(fv)
	raw.Reset(rv)
	for i := range fv {
		if fv[i] != rv[i] {
			t.Fatalf("after Reset, node %d: folded %#x, raw %#x", i, fv[i], rv[i])
		}
	}
	latchF := make([]uint64, len(nl.Regs()))
	latchR := make([]uint64, len(nl.Regs()))
	rng := rand.New(rand.NewSource(12))
	for cyc := 0; cyc < 32; cyc++ {
		for _, id := range inputs {
			w := rng.Uint64()
			fv[id] = w
			rv[id] = w
		}
		folded.Eval(fv)
		raw.Eval(rv)
		folded.Latch(fv, latchF)
		raw.Latch(rv, latchR)
		for i := range fv {
			if fv[i] != rv[i] {
				t.Fatalf("cycle %d node %d (%v): folded %#x, raw %#x",
					cyc, i, nl.Node(netlist.NodeID(i)).Type, fv[i], rv[i])
			}
		}
	}
}

// TestPeepholeShrinksOpStream is the reason the pass exists: the
// folded plan must spend fewer fanin-pool reads than the raw one on a
// design with buf chains and constant fanins.
func TestPeepholeShrinksOpStream(t *testing.T) {
	folded, raw, _ := compilePeepholePair(t)
	if len(folded.pool) >= len(raw.pool) {
		t.Errorf("peephole left the fanin pool at %d entries (raw %d)", len(folded.pool), len(raw.pool))
	}
	if len(folded.ops) != len(raw.ops) {
		t.Errorf("peephole changed the op count (%d vs %d); it must rewrite ops, not drop them", len(folded.ops), len(raw.ops))
	}
}

// TestPeepholeChangesHash documents that NoPeephole plans hash
// differently and therefore can never bind evaluators generated from
// the folded form.
func TestPeepholeChangesHash(t *testing.T) {
	folded, raw, _ := compilePeepholePair(t)
	if folded.Hash() == raw.Hash() {
		t.Error("folded and raw plans share a hash; stale generated code could bind across the peephole boundary")
	}
}
