// Wide-lane simulation: the same compiled plan evaluated over K
// 64-lane words per net (K ∈ {1, 4, 8}), so one combinational pass
// classifies 256–512 independent lanes. The lane-batched campaign
// resume uses it to step that many speculative samples per cycle.
//
// The value state is a single flat []uint64 in node-major order (node
// i's K words at [i·K, (i+1)·K)) rather than a generic [K]uint64
// array type: Go generics cannot index or range over a type parameter
// constrained by arrays of different lengths (no core type), and
// funneling every element access through a per-width view helper puts
// a dynamic type switch in the innermost loop. The flat
// stride-addressed form keeps the evaluator monomorphic with plain
// slice arithmetic; the amortization win comes from decoding the
// packed op stream once per K words instead of once per 64-lane pass.
package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// LaneSim is the interface over a wide simulator. Lanes are addressed
// as (group, bit): group g covers virtual lanes [64g, 64g+64),
// matching one uint64 word of the scalar Simulator, so per-group
// results drop into the existing 64-lane bit tricks unchanged. A
// LaneSim is not safe for concurrent use.
//
// Value-state mutators skip the input/register type validation the
// scalar Simulator performs — a LaneSim is a hot-path engine driven by
// code that already knows the node roles (bus replay, batched resume,
// trace fill).
type LaneSim interface {
	// Groups returns K, the number of 64-lane groups.
	Groups() int
	// Eval, Latch, Step, and Reset mirror Simulator's cycle primitives
	// over all 64·K lanes.
	Eval()
	Latch()
	Step()
	Reset()
	// DriveWord drives the listed nodes (LSB first) with the bits of v
	// broadcast into every lane of every group.
	DriveWord(bits []netlist.NodeID, v uint64)
	// SetRegStateBroadcast loads a scalar register state (RegState
	// order, one word per register) broadcast into every group — each
	// group's 64 lanes see exactly the word state[i].
	SetRegStateBroadcast(state []uint64)
	// XorReg flips the masked lanes of one register within one group.
	XorReg(id netlist.NodeID, group int, mask uint64)
	// SetValGroup overwrites one group's word on a node; ValGroup
	// reads it back.
	SetValGroup(id netlist.NodeID, group int, word uint64)
	ValGroup(id netlist.NodeID, group int) uint64
	// RegDiffMasks is Simulator.RegDiffMask per group: out[g] gets the
	// OR-folded XOR of every register's group-g word against the
	// (uniform) reference word ref[i]. out must have at least Groups()
	// entries.
	RegDiffMasks(ref []uint64, out []uint64)
}

// NewLaneSim builds a wide simulator over the simulator's compiled
// plan with the given group count (1, 4, or 8 → 64, 256, or 512
// virtual lanes). The plan is shared read-only; the value state is
// fresh (power-on reset). The source simulator's current state is not
// copied — callers load state explicitly (SetRegStateBroadcast,
// DriveWord).
func NewLaneSim(s *Simulator, groups int) (LaneSim, error) {
	switch groups {
	case 1, 4, 8:
	default:
		return nil, fmt.Errorf("logicsim: unsupported lane group count %d (want 1, 4, or 8)", groups)
	}
	w := &wideSim{
		plan:     s.plan,
		groups:   groups,
		vals:     make([]uint64, s.plan.numNodes*groups),
		latchBuf: make([]uint64, len(s.plan.regs)*groups),
	}
	w.Reset()
	return w, nil
}

// wideSim is the wide simulator: the shared immutable plan over a
// flat node-major value array with stride groups.
type wideSim struct {
	plan     *Plan
	groups   int
	vals     []uint64
	latchBuf []uint64
}

func (s *wideSim) Groups() int { return s.groups }

func (s *wideSim) Reset() {
	clear(s.vals)
	K := s.groups
	for _, r := range s.plan.initHi {
		o := s.vals[int(r)*K : int(r)*K+K]
		for k := range o {
			o[k] = AllLanes
		}
	}
}

func (s *wideSim) Latch() {
	K := s.groups
	vals, buf := s.vals, s.latchBuf
	//hot
	for i, src := range s.plan.regSrc {
		copy(buf[i*K:i*K+K], vals[int(src)*K:int(src)*K+K])
	}
	for i, r := range s.plan.regs {
		copy(vals[int(r)*K:int(r)*K+K], buf[i*K:i*K+K])
	}
}

func (s *wideSim) Step() {
	s.Eval()
	s.Latch()
}

func (s *wideSim) DriveWord(bits []netlist.NodeID, v uint64) {
	K := s.groups
	for i, id := range bits {
		word := uint64(0)
		if v>>uint(i)&1 == 1 {
			word = AllLanes
		}
		o := s.vals[int(id)*K : int(id)*K+K]
		for k := range o {
			o[k] = word
		}
	}
}

func (s *wideSim) SetRegStateBroadcast(state []uint64) {
	regs := s.plan.regs
	if len(state) != len(regs) {
		panic(fmt.Sprintf("logicsim: SetRegStateBroadcast with %d values for %d regs", len(state), len(regs)))
	}
	K := s.groups
	for i, r := range regs {
		o := s.vals[int(r)*K : int(r)*K+K]
		for k := range o {
			o[k] = state[i]
		}
	}
}

func (s *wideSim) XorReg(id netlist.NodeID, group int, mask uint64) {
	s.vals[int(id)*s.groups+group] ^= mask
}

func (s *wideSim) SetValGroup(id netlist.NodeID, group int, word uint64) {
	s.vals[int(id)*s.groups+group] = word
}

func (s *wideSim) ValGroup(id netlist.NodeID, group int) uint64 {
	return s.vals[int(id)*s.groups+group]
}

func (s *wideSim) RegDiffMasks(ref []uint64, out []uint64) {
	regs := s.plan.regs
	if len(ref) != len(regs) {
		panic(fmt.Sprintf("logicsim: RegDiffMasks with %d words for %d regs", len(ref), len(regs)))
	}
	K := s.groups
	var m [8]uint64
	ms := m[:K]
	//hot
	for i, r := range regs {
		v := s.vals[int(r)*K : int(r)*K+K]
		g := ref[i]
		for k := range ms {
			ms[k] |= v[k] ^ g
		}
	}
	copy(out, ms)
}

// Eval runs the plan's op stream over the wide value array. A bound
// straight-line evaluator takes precedence at its matching stride
// (the generated wide variants address the same flat node-major
// layout); otherwise the interpreter mirrors Plan.EvalInterpreted —
// same opcode dispatch, same order — with each op's word loop widened
// to the K-word stride, so the packed-op decode is amortized over K
// words.
func (s *wideSim) Eval() {
	if g := s.plan.gen; g != nil {
		var fn func([]uint64)
		switch s.groups {
		case 1:
			fn = g.Eval1
		case 4:
			fn = g.Eval4
		case 8:
			fn = g.Eval8
		}
		if fn != nil {
			fn(s.vals)
			return
		}
	}
	p := s.plan
	K := s.groups
	vals := s.vals
	pool := p.pool
	//hot
	for _, op := range p.ops {
		ob := int(op&opOutMask) * K
		o := vals[ob : ob+K]
		off := op >> opOffShift
		switch op >> opCodeShift & opCodeMask {
		case opAnd2:
			ab, bb := int(pool[off])*K, int(pool[off+1])*K
			a, b := vals[ab:ab+K], vals[bb:bb+K]
			for k := range o {
				o[k] = a[k] & b[k]
			}
		case opNand2:
			ab, bb := int(pool[off])*K, int(pool[off+1])*K
			a, b := vals[ab:ab+K], vals[bb:bb+K]
			for k := range o {
				o[k] = ^(a[k] & b[k])
			}
		case opOr2:
			ab, bb := int(pool[off])*K, int(pool[off+1])*K
			a, b := vals[ab:ab+K], vals[bb:bb+K]
			for k := range o {
				o[k] = a[k] | b[k]
			}
		case opNor2:
			ab, bb := int(pool[off])*K, int(pool[off+1])*K
			a, b := vals[ab:ab+K], vals[bb:bb+K]
			for k := range o {
				o[k] = ^(a[k] | b[k])
			}
		case opXor2:
			ab, bb := int(pool[off])*K, int(pool[off+1])*K
			a, b := vals[ab:ab+K], vals[bb:bb+K]
			for k := range o {
				o[k] = a[k] ^ b[k]
			}
		case opXnor2:
			ab, bb := int(pool[off])*K, int(pool[off+1])*K
			a, b := vals[ab:ab+K], vals[bb:bb+K]
			for k := range o {
				o[k] = ^(a[k] ^ b[k])
			}
		case opInv:
			ab := int(pool[off]) * K
			a := vals[ab : ab+K]
			for k := range o {
				o[k] = ^a[k]
			}
		case opBuf:
			ab := int(pool[off]) * K
			copy(o, vals[ab:ab+K])
		case opMux2:
			ab, bb, sb := int(pool[off])*K, int(pool[off+1])*K, int(pool[off+2])*K
			a, b, sel := vals[ab:ab+K], vals[bb:bb+K], vals[sb:sb+K]
			for k := range o {
				o[k] = (a[k] &^ sel[k]) | (b[k] & sel[k])
			}
		case opConst0:
			for k := range o {
				o[k] = 0
			}
		case opConst1:
			for k := range o {
				o[k] = AllLanes
			}
		default:
			s.evalN(op, o)
		}
	}
}

// evalN handles the variable-fanin opcodes, split out of Eval to keep
// the common-case switch bodies small.
func (s *wideSim) evalN(op uint64, o []uint64) {
	K := s.groups
	vals, pool := s.vals, s.plan.pool
	off := op >> opOffShift
	fan := pool[off : off+(op>>opNinShift&opNinMask)]
	code := op >> opCodeShift & opCodeMask
	fb := int(fan[0]) * K
	copy(o, vals[fb:fb+K])
	switch code {
	case opAndN, opNandN:
		for _, f := range fan[1:] {
			b := vals[int(f)*K : int(f)*K+K]
			for k := range o {
				o[k] &= b[k]
			}
		}
	case opOrN, opNorN:
		for _, f := range fan[1:] {
			b := vals[int(f)*K : int(f)*K+K]
			for k := range o {
				o[k] |= b[k]
			}
		}
	case opXorN, opXnorN:
		for _, f := range fan[1:] {
			b := vals[int(f)*K : int(f)*K+K]
			for k := range o {
				o[k] ^= b[k]
			}
		}
	}
	switch code {
	case opNandN, opNorN, opXnorN:
		for k := range o {
			o[k] = ^o[k]
		}
	}
}
