package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Trace records the logic value of every node over a run of consecutive
// cycles, stored as one bitset per node (bit c = value at cycle c). The
// pre-characterization derives switching signatures from it.
type Trace struct {
	nl     *netlist.Netlist
	cycles int
	bits   [][]uint64
}

// NewTrace allocates an empty trace for the given cycle count; callers
// fill it with RecordAll / RecordSources while driving the simulator
// themselves (e.g. from within a SoC co-simulation step).
func NewTrace(nl *netlist.Netlist, cycles int) *Trace {
	t := &Trace{nl: nl, cycles: cycles, bits: make([][]uint64, nl.NumNodes())}
	for i := range t.bits {
		t.bits[i] = make([]uint64, words(cycles))
	}
	return t
}

// NumCycles returns the number of recorded cycles.
func (t *Trace) NumCycles() int { return t.cycles }

// Value reports the logic value of a node at a cycle.
func (t *Trace) Value(id netlist.NodeID, cycle int) bool {
	if cycle < 0 || cycle >= t.cycles {
		panic(fmt.Sprintf("logicsim: trace cycle %d out of range [0,%d)", cycle, t.cycles))
	}
	return t.bits[id][cycle/64]>>uint(cycle%64)&1 == 1
}

// ValueBits returns the raw value bitset of a node (bit c = value at
// cycle c). The caller must not mutate it.
func (t *Trace) ValueBits(id netlist.NodeID) []uint64 { return t.bits[id] }

// RecordAll stores lane 0 of every node as the given cycle's values.
// The simulator must be post-Eval for the cycle.
func (t *Trace) RecordAll(sim *Simulator, cycle int) {
	t.checkCycle(cycle)
	w, b := cycle/64, uint(cycle%64)
	for i := range t.bits {
		if sim.vals[i]&1 == 1 {
			t.bits[i][w] |= 1 << b
		}
	}
}

// RecordSources stores lane 0 of only the inputs and registers; pair
// with FillCombParallel to recover the gate values 64 cycles at a time.
func (t *Trace) RecordSources(sim *Simulator, cycle int) {
	t.checkCycle(cycle)
	w, b := cycle/64, uint(cycle%64)
	for _, id := range sim.nl.Inputs() {
		if sim.vals[id]&1 == 1 {
			t.bits[id][w] |= 1 << b
		}
	}
	for _, id := range sim.nl.Regs() {
		if sim.vals[id]&1 == 1 {
			t.bits[id][w] |= 1 << b
		}
	}
}

func (t *Trace) checkCycle(cycle int) {
	if cycle < 0 || cycle >= t.cycles {
		panic(fmt.Sprintf("logicsim: record cycle %d out of range [0,%d)", cycle, t.cycles))
	}
}

// FillCombParallel recovers every combinational node's values from the
// recorded source values with one bit-parallel evaluation per 64-cycle
// block — the paper's "fast bit-parallel calculation". The provided
// simulator supplies netlist/topology; its state is not modified (an
// internal fork is used).
func (t *Trace) FillCombParallel(sim *Simulator) {
	par := sim.Fork()
	nl := par.nl
	sources := make([]netlist.NodeID, 0, len(nl.Inputs())+len(nl.Regs()))
	sources = append(sources, nl.Inputs()...)
	sources = append(sources, nl.Regs()...)
	for w := 0; w < words(t.cycles); w++ {
		for _, id := range sources {
			par.vals[id] = t.bits[id][w]
		}
		par.Eval()
		for i := 0; i < nl.NumNodes(); i++ {
			if nl.Node(netlist.NodeID(i)).Type.IsCombinational() {
				t.bits[i][w] = par.vals[i]
			}
		}
	}
	if rem := t.cycles % 64; rem != 0 {
		mask := uint64(1)<<uint(rem) - 1
		last := words(t.cycles) - 1
		for i := range t.bits {
			t.bits[i][last] &= mask
		}
	}
}

// FillCombWide is FillCombParallel evaluating `groups` 64-cycle blocks
// per combinational pass over a wide-lane simulator (so one pass
// recovers up to 64·groups cycles of every gate's values). Results are
// bit-identical to FillCombParallel — each 64-cycle block is an
// independent evaluation regardless of which pass carries it. groups
// must be a supported lane width (1, 4, or 8); 1 falls back to
// FillCombParallel.
func (t *Trace) FillCombWide(sim *Simulator, groups int) {
	if groups <= 1 {
		t.FillCombParallel(sim)
		return
	}
	wide, err := NewLaneSim(sim, groups)
	if err != nil {
		panic(err)
	}
	nl := sim.nl
	sources := make([]netlist.NodeID, 0, len(nl.Inputs())+len(nl.Regs()))
	sources = append(sources, nl.Inputs()...)
	sources = append(sources, nl.Regs()...)
	nw := words(t.cycles)
	for w := 0; w < nw; w += groups {
		g := nw - w
		if g > groups {
			g = groups
		}
		for _, id := range sources {
			for j := 0; j < g; j++ {
				wide.SetValGroup(id, j, t.bits[id][w+j])
			}
			for j := g; j < groups; j++ {
				wide.SetValGroup(id, j, 0)
			}
		}
		wide.Eval()
		for i := 0; i < nl.NumNodes(); i++ {
			id := netlist.NodeID(i)
			if nl.Node(id).Type.IsCombinational() {
				for j := 0; j < g; j++ {
					t.bits[i][w+j] = wide.ValGroup(id, j)
				}
			}
		}
	}
	if rem := t.cycles % 64; rem != 0 {
		mask := uint64(1)<<uint(rem) - 1
		last := words(t.cycles) - 1
		for i := range t.bits {
			t.bits[i][last] &= mask
		}
	}
}

// SwitchSignature returns the node's switching signature as a bitset:
// bit c is 1 iff the node's value differs between cycle c-1 and cycle c
// (bit 0 is always 0, matching the paper's definition where ss_i compares
// cycle i against cycle i-1).
func (t *Trace) SwitchSignature(id netlist.NodeID) []uint64 {
	v := t.bits[id]
	ss := make([]uint64, len(v))
	var carry uint64
	for w := range v {
		shifted := v[w]<<1 | carry
		carry = v[w] >> 63
		ss[w] = v[w] ^ shifted
	}
	if len(ss) > 0 {
		ss[0] &^= 1
	}
	if rem := t.cycles % 64; rem != 0 && len(ss) > 0 {
		ss[len(ss)-1] &= (1 << uint(rem)) - 1
	}
	return ss
}

// words returns the number of 64-bit words needed for the cycle count.
func words(cycles int) int { return (cycles + 63) / 64 }

// CaptureScalar runs the simulator for the given number of cycles,
// calling drive(cycle) before each cycle's evaluation so the caller can
// set primary inputs, and records the value of every node at every
// cycle. The simulator is stepped (registers advance) after each record.
func CaptureScalar(sim *Simulator, cycles int, drive func(cycle int)) *Trace {
	t := NewTrace(sim.Netlist(), cycles)
	for c := 0; c < cycles; c++ {
		if drive != nil {
			drive(c)
		}
		sim.Eval()
		t.RecordAll(sim, c)
		sim.Latch()
	}
	return t
}

// CaptureParallel produces the same trace as CaptureScalar but fills the
// combinational nodes with 64-cycle bit-parallel evaluation passes: the
// scalar pass records only source values (inputs and registers), and one
// combinational evaluation per 64-cycle block recovers every gate's
// values. This mirrors the paper's two-phase flow — RTL simulation for
// register values, then bit-parallel recovery at gate level.
func CaptureParallel(sim *Simulator, cycles int, drive func(cycle int)) *Trace {
	t := NewTrace(sim.Netlist(), cycles)
	for c := 0; c < cycles; c++ {
		if drive != nil {
			drive(c)
		}
		sim.Eval()
		t.RecordSources(sim, c)
		sim.Latch()
	}
	t.FillCombParallel(sim)
	return t
}
