package logicsim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// buildCounter builds a 4-bit ripple-ish counter out of XOR/AND gates:
// bit0 toggles each cycle, bit i toggles when all lower bits are 1.
func buildCounter(t *testing.T) (*netlist.Netlist, []netlist.NodeID) {
	t.Helper()
	n := netlist.New(64)
	one := n.AddConst(true)
	regs := make([]netlist.NodeID, 4)
	// First create DFFs with placeholder data, then patch.
	for i := range regs {
		regs[i] = n.AddDFF(one, "", false)
	}
	carry := one
	for i := range regs {
		sum := n.AddGate(netlist.Xor, regs[i], carry)
		carry = n.AddGate(netlist.And, regs[i], carry)
		n.Node(regs[i]).Fanin[0] = sum
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n, regs
}

func TestCounterCounts(t *testing.T) {
	n, regs := buildCounter(t)
	sim, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for want := 0; want < 40; want++ {
		if got := sim.ReadWord(regs); got != uint64(want%16) {
			t.Fatalf("cycle %d: counter = %d, want %d", want, got, want%16)
		}
		sim.Step()
	}
}

func TestResetRestoresInit(t *testing.T) {
	n := netlist.New(8)
	in := n.AddInput("in")
	r0 := n.AddDFF(in, "r0", false)
	r1 := n.AddDFF(in, "r1", true)
	sim, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Bool(r0) || !sim.Bool(r1) {
		t.Fatal("power-on values wrong")
	}
	sim.SetInputBool(in, true)
	sim.Step()
	if !sim.Bool(r0) || !sim.Bool(r1) {
		t.Fatal("step did not latch input")
	}
	sim.Reset()
	if sim.Bool(r0) || !sim.Bool(r1) {
		t.Fatal("Reset did not restore init values")
	}
	if sim.Val(in) != 0 {
		t.Fatal("Reset did not clear inputs")
	}
}

func TestSetInputPanicsOnGate(t *testing.T) {
	n := netlist.New(4)
	a := n.AddInput("a")
	g := n.AddGate(netlist.Inv, a)
	sim, _ := New(n)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.SetInput(g, 1)
}

func TestSetRegAndFlip(t *testing.T) {
	n, regs := buildCounter(t)
	sim, _ := New(n)
	sim.Step()
	sim.Step() // counter = 2
	sim.FlipReg(regs[0])
	if got := sim.ReadWord(regs); got != 3 {
		t.Fatalf("after flip: %d, want 3", got)
	}
	sim.SetReg(regs[3], AllLanes)
	if got := sim.ReadWord(regs); got != 11 {
		t.Fatalf("after SetReg: %d, want 11", got)
	}
}

func TestRegStateRoundTrip(t *testing.T) {
	n, regs := buildCounter(t)
	sim, _ := New(n)
	for i := 0; i < 7; i++ {
		sim.Step()
	}
	saved := sim.RegState()
	want := sim.ReadWord(regs)
	for i := 0; i < 5; i++ {
		sim.Step()
	}
	if sim.ReadWord(regs) == want {
		t.Fatal("state did not advance")
	}
	sim.SetRegState(saved)
	if got := sim.ReadWord(regs); got != want {
		t.Fatalf("restore: %d, want %d", got, want)
	}
	// Restored state must evolve identically.
	sim.Step()
	if got := sim.ReadWord(regs); got != (want+1)%16 {
		t.Fatalf("post-restore step: %d, want %d", got, (want+1)%16)
	}
}

func TestForkIsIndependent(t *testing.T) {
	n, regs := buildCounter(t)
	sim, _ := New(n)
	sim.Step()
	fk := sim.Fork()
	fk.Step()
	fk.Step()
	if sim.ReadWord(regs) != 1 {
		t.Fatal("fork mutated parent")
	}
	if fk.ReadWord(regs) != 3 {
		t.Fatal("fork did not advance")
	}
}

func TestBitParallelLanes(t *testing.T) {
	// XOR of two inputs evaluated on 64 lanes at once must equal the
	// word-level XOR.
	n := netlist.New(8)
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(netlist.Xor, a, b)
	sim, _ := New(n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		x, y := rng.Uint64(), rng.Uint64()
		sim.SetInput(a, x)
		sim.SetInput(b, y)
		sim.Eval()
		if sim.Val(g) != x^y {
			t.Fatalf("lane mismatch: %x", sim.Val(g)^(x^y))
		}
	}
}

func TestDriveWordLanes(t *testing.T) {
	n := netlist.New(16)
	bits := []netlist.NodeID{n.AddInput("w[0]"), n.AddInput("w[1]"), n.AddInput("w[2]")}
	sim, _ := New(n)
	sim.DriveWordLanes(bits, []uint64{5, 2, 7})
	// Lane 0 → 5 (101), lane 1 → 2 (010), lane 2 → 7 (111).
	if !sim.Lane(bits[0], 0) || sim.Lane(bits[0], 1) || !sim.Lane(bits[0], 2) {
		t.Error("bit 0 lanes wrong")
	}
	if sim.Lane(bits[1], 0) || !sim.Lane(bits[1], 1) || !sim.Lane(bits[1], 2) {
		t.Error("bit 1 lanes wrong")
	}
	if !sim.Lane(bits[2], 0) || sim.Lane(bits[2], 1) || !sim.Lane(bits[2], 2) {
		t.Error("bit 2 lanes wrong")
	}
}

func TestReadWriteWord(t *testing.T) {
	n := netlist.New(16)
	var bits []netlist.NodeID
	for i := 0; i < 8; i++ {
		bits = append(bits, n.AddInput(""))
	}
	sim, _ := New(n)
	for _, v := range []uint64{0, 1, 0x5A, 0xFF} {
		sim.DriveWord(bits, v)
		if got := sim.ReadWord(bits); got != v {
			t.Errorf("round trip %#x -> %#x", v, got)
		}
	}
}

func TestTraceScalarCounter(t *testing.T) {
	n, regs := buildCounter(t)
	sim, _ := New(n)
	tr := CaptureScalar(sim, 32, nil)
	if tr.NumCycles() != 32 {
		t.Fatal("cycle count")
	}
	for c := 0; c < 32; c++ {
		for b := 0; b < 4; b++ {
			want := c%16>>uint(b)&1 == 1
			if got := tr.Value(regs[b], c); got != want {
				t.Fatalf("cycle %d bit %d: %v, want %v", c, b, got, want)
			}
		}
	}
}

func TestTraceParallelMatchesScalar(t *testing.T) {
	n, _ := buildCounter(t)
	s1, _ := New(n)
	s2, _ := New(n)
	const cycles = 200 // deliberately not a multiple of 64
	t1 := CaptureScalar(s1, cycles, nil)
	t2 := CaptureParallel(s2, cycles, nil)
	for i := 0; i < n.NumNodes(); i++ {
		id := netlist.NodeID(i)
		b1, b2 := t1.ValueBits(id), t2.ValueBits(id)
		for w := range b1 {
			if b1[w] != b2[w] {
				t.Fatalf("node %d word %d: scalar %x parallel %x", i, w, b1[w], b2[w])
			}
		}
	}
}

func TestTraceParallelWithInputs(t *testing.T) {
	n := netlist.New(16)
	in := n.AddInput("in")
	r := n.AddDFF(in, "r", false)
	g := n.AddGate(netlist.Xor, r, in)
	_ = g
	drive := func(sim *Simulator) func(int) {
		return func(c int) { sim.SetInputBool(in, c%3 == 0) }
	}
	s1, _ := New(n)
	s2, _ := New(n)
	t1 := CaptureScalar(s1, 100, drive(s1))
	t2 := CaptureParallel(s2, 100, drive(s2))
	for i := 0; i < n.NumNodes(); i++ {
		id := netlist.NodeID(i)
		for c := 0; c < 100; c++ {
			if t1.Value(id, c) != t2.Value(id, c) {
				t.Fatalf("node %d cycle %d mismatch", i, c)
			}
		}
	}
}

func TestSwitchSignature(t *testing.T) {
	n, regs := buildCounter(t)
	sim, _ := New(n)
	tr := CaptureScalar(sim, 128, nil)
	// Bit 0 of the counter toggles every cycle: ss = all ones except bit 0.
	ss := tr.SwitchSignature(regs[0])
	if ss[0] != ^uint64(1) || ss[1] != ^uint64(0) {
		t.Fatalf("ss(bit0) = %x %x", ss[0], ss[1])
	}
	// Bit 1 toggles every 2 cycles (at even cycles).
	ss1 := tr.SwitchSignature(regs[1])
	for c := 1; c < 128; c++ {
		want := c%2 == 0
		got := ss1[c/64]>>uint(c%64)&1 == 1
		if got != want {
			t.Fatalf("ss(bit1) cycle %d: %v, want %v", c, got, want)
		}
	}
	if ss1[0]&1 != 0 {
		t.Fatal("ss bit 0 must be 0")
	}
}

func TestSwitchSignatureConstant(t *testing.T) {
	n := netlist.New(8)
	in := n.AddInput("in")
	r := n.AddDFF(in, "r", false)
	sim, _ := New(n)
	tr := CaptureScalar(sim, 70, nil) // input held at 0: r never switches
	ss := tr.SwitchSignature(r)
	for _, w := range ss {
		if w != 0 {
			t.Fatal("constant node should have empty switching signature")
		}
	}
}

func TestTraceValueBoundsPanic(t *testing.T) {
	n, _ := buildCounter(t)
	sim, _ := New(n)
	tr := CaptureScalar(sim, 10, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Value(0, 10)
}
