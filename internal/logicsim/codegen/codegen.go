// Package codegen turns a compiled logicsim evaluation plan into Go
// source: a branch-free straight-line evaluator specialized to one
// netlist, with scalar (64-lane), 4-word (256-lane), and 8-word
// (512-lane) variants. The generated file self-registers in logicsim's
// plan-hash-keyed registry, so Compile transparently swaps the code in
// for that exact design and falls back to the interpreted Eval on any
// mismatch.
//
// The generator works in two stages. Build lifts the plan's packed op
// stream (already peephole-folded by Compile: buf chains elided,
// constants folded) into a plain straight-line Program; Emit renders
// the Program as gofmt-formatted source. The Program is also directly
// executable (Program.Eval), which is how the equivalence fuzz target
// and the golden-fixture tests check generated semantics against the
// interpreted plan without invoking the Go compiler.
//
// What makes the generated code faster than the (already flat) plan
// interpreter: no per-op opcode decode or switch dispatch, no
// fanin-pool indirection, and — because every value index is a
// compile-time constant below the slice-length hint at the top of each
// function — no bounds checks in the hot straight line.
package codegen

import (
	"bytes"
	"fmt"
	"go/format"

	"repro/internal/logicsim"
	"repro/internal/modelcheck"
	"repro/internal/netlist"
)

// Op is one straight-line statement: Out's value slot receives the
// cell function applied to the In slots. Cells appear post-fold, so
// the set is the full netlist cell alphabet (Const0/Const1 with no
// fanins, Buf/Inv with one, gates with two or more, Mux2 with three).
type Op struct {
	Out  int
	Cell netlist.CellType
	In   []int
}

// Program is a netlist's combinational schedule as straight-line
// statements in execution order, plus the identity of the plan it was
// derived from (the registry key of the emitted code).
type Program struct {
	// Hash is logicsim's Plan.Hash of the source plan.
	Hash uint64
	// NumNodes sizes the value array (NumNodes·K words at stride K).
	NumNodes int
	// Ops is the statement list in plan execution order.
	Ops []Op
}

// Strides are the lane widths a generated evaluator covers: K words
// per node, 64·K virtual lanes.
var Strides = [...]int{1, 4, 8}

// Build compiles the netlist (with the standard peephole fold) and
// lifts the resulting plan into a Program.
func Build(nl *netlist.Netlist) (*Program, error) {
	plan, err := logicsim.Compile(nl)
	if err != nil {
		return nil, err
	}
	return FromPlan(plan)
}

// FromPlan lifts an already-compiled plan into a Program.
func FromPlan(plan *logicsim.Plan) (*Program, error) {
	view := plan.View()
	p := &Program{
		Hash:     plan.Hash(),
		NumNodes: view.NumNodes,
		Ops:      make([]Op, 0, len(view.Ops)),
	}
	for i := range view.Ops {
		op := &view.Ops[i]
		if !op.CellOK {
			return nil, fmt.Errorf("codegen: op %d carries an undecodable opcode", i)
		}
		if op.Fanin == nil && effFaninCount(op) > 0 {
			return nil, fmt.Errorf("codegen: op %d has an out-of-pool fanin span", i)
		}
		in := make([]int, len(op.Fanin))
		for j, f := range op.Fanin {
			if f < 0 || int(f) >= p.NumNodes {
				return nil, fmt.Errorf("codegen: op %d fanin %d out of range", i, j)
			}
			in[j] = int(f)
		}
		out := int(op.Out)
		if out < 0 || out >= p.NumNodes {
			return nil, fmt.Errorf("codegen: op %d writes out-of-range node %d", i, out)
		}
		p.Ops = append(p.Ops, Op{Out: out, Cell: op.Cell, In: in})
	}
	return p, nil
}

// effFaninCount mirrors modelcheck's effective-fanin rule for a
// decoded op.
func effFaninCount(op *modelcheck.PlanOp) int {
	if op.Arity >= 0 {
		return op.Arity
	}
	return op.Nin
}

// Eval executes the program over a flat node-major value array with
// the given word stride (node i's words at [i·stride, (i+1)·stride)).
// It is the reference interpretation of the emitted source — the
// oracle the fuzz target compares against logicsim's evaluators — not
// a fast path.
func (p *Program) Eval(vals []uint64, stride int) {
	if len(vals) < p.NumNodes*stride {
		panic(fmt.Sprintf("codegen: Eval over %d words, program needs %d", len(vals), p.NumNodes*stride))
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		for k := 0; k < stride; k++ {
			var v uint64
			switch op.Cell {
			case netlist.Const0:
				v = 0
			case netlist.Const1:
				v = ^uint64(0)
			case netlist.Buf:
				v = vals[op.In[0]*stride+k]
			case netlist.Inv:
				v = ^vals[op.In[0]*stride+k]
			case netlist.And, netlist.Nand:
				v = vals[op.In[0]*stride+k]
				for _, f := range op.In[1:] {
					v &= vals[f*stride+k]
				}
				if op.Cell == netlist.Nand {
					v = ^v
				}
			case netlist.Or, netlist.Nor:
				v = vals[op.In[0]*stride+k]
				for _, f := range op.In[1:] {
					v |= vals[f*stride+k]
				}
				if op.Cell == netlist.Nor {
					v = ^v
				}
			case netlist.Xor, netlist.Xnor:
				v = vals[op.In[0]*stride+k]
				for _, f := range op.In[1:] {
					v ^= vals[f*stride+k]
				}
				if op.Cell == netlist.Xnor {
					v = ^v
				}
			case netlist.Mux2:
				a := vals[op.In[0]*stride+k]
				b := vals[op.In[1]*stride+k]
				sel := vals[op.In[2]*stride+k]
				v = (a &^ sel) | (b & sel)
			default:
				panic(fmt.Sprintf("codegen: op %d has non-combinational cell %v", i, op.Cell))
			}
			vals[op.Out*stride+k] = v
		}
	}
}

// Config shapes the emitted file.
type Config struct {
	// Package is the target package name.
	Package string
	// Prefix names the generated functions (<Prefix>Eval1/4/8).
	Prefix string
	// Source is the provenance line in the file header (netlist path
	// or built-in design description). Keep it deterministic — the
	// drift CI job diffs regenerated output byte for byte.
	Source string
	// LogicsimImport overrides the import path of the registry package
	// (defaults to "repro/internal/logicsim"). Golden-fixture tests
	// use the default; it exists so the emitter stays usable if the
	// module path ever changes.
	LogicsimImport string
}

// Emit renders the program as a self-registering Go source file,
// formatted with go/format (which also parse-checks every statement
// the generator produced).
func (p *Program) Emit(cfg Config) ([]byte, error) {
	if cfg.Package == "" || cfg.Prefix == "" {
		return nil, fmt.Errorf("codegen: Config.Package and Config.Prefix are required")
	}
	imp := cfg.LogicsimImport
	if imp == "" {
		imp = "repro/internal/logicsim"
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated by gnlgen. DO NOT EDIT.\n")
	fmt.Fprintf(&b, "//\n")
	fmt.Fprintf(&b, "// Source: %s\n", cfg.Source)
	fmt.Fprintf(&b, "// Plan: %d ops over %d nodes, hash %#016x.\n", len(p.Ops), p.NumNodes, p.Hash)
	fmt.Fprintf(&b, "//\n")
	fmt.Fprintf(&b, "// Straight-line evaluators for this exact netlist at strides K=1, 4,\n")
	fmt.Fprintf(&b, "// and 8 words per node (64/256/512 lanes), bound to compiled plans\n")
	fmt.Fprintf(&b, "// through logicsim's plan-hash registry. If the netlist changes, the\n")
	fmt.Fprintf(&b, "// hash stops matching and evaluation falls back to the interpreter —\n")
	fmt.Fprintf(&b, "// regenerate with `go generate ./...` (or `make gen`).\n")
	fmt.Fprintf(&b, "package %s\n\n", cfg.Package)
	fmt.Fprintf(&b, "import %q\n\n", imp)
	fmt.Fprintf(&b, "func init() {\n")
	fmt.Fprintf(&b, "\tlogicsim.RegisterGenerated(logicsim.Generated{\n")
	fmt.Fprintf(&b, "\t\tHash:     %#016x,\n", p.Hash)
	fmt.Fprintf(&b, "\t\tNumNodes: %d,\n", p.NumNodes)
	fmt.Fprintf(&b, "\t\tEval1:    %sEval1,\n", cfg.Prefix)
	fmt.Fprintf(&b, "\t\tEval4:    %sEval4,\n", cfg.Prefix)
	fmt.Fprintf(&b, "\t\tEval8:    %sEval8,\n", cfg.Prefix)
	fmt.Fprintf(&b, "\t})\n")
	fmt.Fprintf(&b, "}\n")
	for _, stride := range Strides {
		p.emitFunc(&b, cfg.Prefix, stride)
	}
	src, err := format.Source(b.Bytes())
	if err != nil {
		return nil, fmt.Errorf("codegen: emitted source does not format: %w", err)
	}
	return src, nil
}

// emitFunc writes one evaluator function at the given stride: a
// slice-length hint that pins len(vals) to a constant (every later
// constant index is then provably in bounds), followed by one
// assignment per op per word.
func (p *Program) emitFunc(b *bytes.Buffer, prefix string, stride int) {
	lanes := 64 * stride
	fmt.Fprintf(b, "\n// %sEval%d evaluates the op stream over %d lanes (K=%d words per node).\n",
		prefix, stride, lanes, stride)
	fmt.Fprintf(b, "func %sEval%d(vals []uint64) {\n", prefix, stride)
	fmt.Fprintf(b, "\tvals = vals[:%d]\n", p.NumNodes*stride)
	for i := range p.Ops {
		op := &p.Ops[i]
		for k := 0; k < stride; k++ {
			fmt.Fprintf(b, "\tvals[%d] = %s\n", op.Out*stride+k, exprFor(op, stride, k))
		}
	}
	fmt.Fprintf(b, "}\n")
}

// exprFor renders one op's word-k expression with constant indices.
func exprFor(op *Op, stride, k int) string {
	ref := func(j int) string {
		return fmt.Sprintf("vals[%d]", op.In[j]*stride+k)
	}
	joined := func(sep string) string {
		var e bytes.Buffer
		for j := range op.In {
			if j > 0 {
				e.WriteString(sep)
			}
			e.WriteString(ref(j))
		}
		return e.String()
	}
	switch op.Cell {
	case netlist.Const0:
		return "0"
	case netlist.Const1:
		return "^uint64(0)"
	case netlist.Buf:
		return ref(0)
	case netlist.Inv:
		return "^" + ref(0)
	case netlist.And:
		return joined(" & ")
	case netlist.Nand:
		return "^(" + joined(" & ") + ")"
	case netlist.Or:
		return joined(" | ")
	case netlist.Nor:
		return "^(" + joined(" | ") + ")"
	case netlist.Xor:
		return joined(" ^ ")
	case netlist.Xnor:
		return "^(" + joined(" ^ ") + ")"
	case netlist.Mux2:
		return fmt.Sprintf("(%s &^ %s) | (%s & %s)", ref(0), ref(2), ref(1), ref(2))
	default:
		// Build rejects non-combinational cells; this is unreachable
		// on any Program it produced.
		panic(fmt.Sprintf("codegen: no expression for cell %v", op.Cell))
	}
}

// Generate is Build followed by Emit: netlist in, formatted
// self-registering evaluator source out.
func Generate(nl *netlist.Netlist, cfg Config) ([]byte, error) {
	p, err := Build(nl)
	if err != nil {
		return nil, err
	}
	return p.Emit(cfg)
}
