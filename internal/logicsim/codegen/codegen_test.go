package codegen

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// -update rewrites the golden fixtures from the current generator
// output (go test ./internal/logicsim/codegen -run Golden -update).
var update = flag.Bool("update", false, "rewrite golden fixtures")

func readCircuit(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	path := filepath.Join("..", "..", "..", "examples", "circuits", name)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := netlist.Read(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return nl
}

// TestGoldenFixtures pins the exact emitted source for the bundled
// example circuits. A diff here means the generator's output changed —
// fine when intentional (rerun with -update and regenerate the MPU
// file via `make gen`), fatal when accidental.
func TestGoldenFixtures(t *testing.T) {
	for _, name := range []string{"mux4", "counter2"} {
		t.Run(name, func(t *testing.T) {
			nl := readCircuit(t, name+".gnl")
			src, err := Generate(nl, Config{
				Package: "golden",
				Prefix:  name + "Gen",
				Source:  name + ".gnl",
			})
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", name+"_evalgen.go.golden")
			if *update {
				if err := os.WriteFile(goldenPath, src, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (rerun with -update to create)", err)
			}
			if string(src) != string(want) {
				t.Errorf("generated source for %s drifted from golden fixture;\nrerun with -update if the change is intentional.\n--- got ---\n%s", name, src)
			}
		})
	}
}

// TestEmitDeterministic pins that two generations of the same design
// are byte-identical — the property the CI drift job relies on.
func TestEmitDeterministic(t *testing.T) {
	nl := readCircuit(t, "mux4.gnl")
	cfg := Config{Package: "p", Prefix: "g", Source: "mux4.gnl"}
	a, err := Generate(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two generations of the same netlist differ")
	}
}

// TestProgramMatchesPlanHash pins the registry-key plumbing: the
// lifted Program carries exactly the plan's hash and node count, the
// values the emitted init() registers under.
func TestProgramMatchesPlanHash(t *testing.T) {
	nl := readCircuit(t, "counter2.gnl")
	plan, err := logicsim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Hash != plan.Hash() {
		t.Errorf("program hash %#x, plan hash %#x", prog.Hash, plan.Hash())
	}
	if prog.NumNodes != nl.NumNodes() {
		t.Errorf("program numNodes %d, netlist %d", prog.NumNodes, nl.NumNodes())
	}
	if prog.Hash == 0 {
		t.Error("hash 0 would collide with the not-yet-computed sentinel")
	}
}

// TestEmitRequiresNames covers the config validation.
func TestEmitRequiresNames(t *testing.T) {
	nl := readCircuit(t, "mux4.gnl")
	if _, err := Generate(nl, Config{Package: "p"}); err == nil {
		t.Error("Generate without Prefix succeeded")
	}
	if _, err := Generate(nl, Config{Prefix: "g"}); err == nil {
		t.Error("Generate without Package succeeded")
	}
}

// checkProgramAgainstInterpreter drives the Program interpreter at
// every stride over random values and cross-checks each 64-lane group
// against the interpreted plan — the wide straight-line code must be
// exactly K independent copies of the scalar evaluation.
func checkProgramAgainstInterpreter(t *testing.T, nl *netlist.Netlist, seed int64) {
	t.Helper()
	plan, err := logicsim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	n := nl.NumNodes()
	rng := rand.New(rand.NewSource(seed))
	for _, stride := range Strides {
		wide := make([]uint64, n*stride)
		for i := range wide {
			wide[i] = rng.Uint64()
		}
		want := make([]uint64, n*stride)
		lane := make([]uint64, n)
		for k := 0; k < stride; k++ {
			for i := 0; i < n; i++ {
				lane[i] = wide[i*stride+k]
			}
			plan.EvalInterpreted(lane)
			for i := 0; i < n; i++ {
				want[i*stride+k] = lane[i]
			}
		}
		prog.Eval(wide, stride)
		for i := range wide {
			if wide[i] != want[i] {
				t.Fatalf("stride %d word %d (node %d, k %d): program %#x, interpreter %#x",
					stride, i, i/stride, i%stride, wide[i], want[i])
			}
		}
	}
}

func TestProgramEvalMatchesInterpreter(t *testing.T) {
	dir := filepath.Join("..", "..", "..", "examples", "circuits")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".gnl") {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			checkProgramAgainstInterpreter(t, readCircuit(t, e.Name()), 7)
		})
	}
}

// TestGeneratedSourceMirrorsProgram spot-checks the emitted text
// against the Program it came from: one assignment per op per word,
// each writing the op's constant flat index.
func TestGeneratedSourceMirrorsProgram(t *testing.T) {
	nl := readCircuit(t, "mux4.gnl")
	prog, err := Build(nl)
	if err != nil {
		t.Fatal(err)
	}
	src, err := prog.Emit(Config{Package: "p", Prefix: "g", Source: "mux4.gnl"})
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	for _, stride := range Strides {
		for _, op := range prog.Ops {
			for k := 0; k < stride; k++ {
				want := fmt.Sprintf("vals[%d] = ", op.Out*stride+k)
				if !strings.Contains(text, want) {
					t.Errorf("emitted source is missing the assignment %q (stride %d)", want, stride)
				}
			}
		}
	}
}
