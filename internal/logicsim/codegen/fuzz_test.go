package codegen

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// FuzzCodegenEquivalence cross-checks the codegen Program — the exact
// semantics of the emitted straight-line source — against the
// interpreted plan on every netlist the fuzzer can deserialize: random
// values in, bit-identical words out at all three strides, with each
// 64-lane group of the wide forms matching an independent scalar
// evaluation. The emitted source itself must also survive go/format's
// parse (Emit fails otherwise), so every fuzz input doubles as a
// syntax check of the generator.
func FuzzCodegenEquivalence(f *testing.F) {
	dir := filepath.Join("..", "..", "..", "examples", "circuits")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".gnl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data), int64(1))
	}
	f.Add("gnl v1\n0 input \"a[0]\"\n1 inv 0\nout \"y[0]\" 1\n", int64(2))
	f.Add("gnl v1\n0 const1\n1 buf 0\n2 dff 1 init=1 en=0 \"r[0]\"\n", int64(3))
	f.Add("gnl v1\n0 input \"a[0]\"\n1 input \"b[0]\"\n2 const0\n3 xor 0 1 2\nout \"y[0]\" 3\n", int64(4))

	f.Fuzz(func(t *testing.T, src string, seed int64) {
		nl, err := netlist.Read(strings.NewReader(src))
		if err != nil {
			return
		}
		plan, err := logicsim.Compile(nl)
		if err != nil {
			return
		}
		// Every compilable plan must lift and emit: a failure here is a
		// generator bug, not an invalid input.
		prog, err := FromPlan(plan)
		if err != nil {
			t.Fatalf("plan compiled but did not lift: %v", err)
		}
		if _, err := prog.Emit(Config{Package: "fuzz", Prefix: "g", Source: "fuzz"}); err != nil {
			t.Fatalf("plan lifted but did not emit: %v", err)
		}

		n := nl.NumNodes()
		rng := rand.New(rand.NewSource(seed))
		for _, stride := range Strides {
			wide := make([]uint64, n*stride)
			for i := range wide {
				wide[i] = rng.Uint64()
			}
			want := make([]uint64, n*stride)
			lane := make([]uint64, n)
			for k := 0; k < stride; k++ {
				for i := 0; i < n; i++ {
					lane[i] = wide[i*stride+k]
				}
				plan.EvalInterpreted(lane)
				for i := 0; i < n; i++ {
					want[i*stride+k] = lane[i]
				}
			}
			prog.Eval(wide, stride)
			for i := range wide {
				if wide[i] != want[i] {
					t.Fatalf("stride %d word %d (node %d, group %d): program %#x, interpreter %#x",
						stride, i, i/stride, i%stride, wide[i], want[i])
				}
			}
		}
	})
}
