// Compiled evaluation plan: the struct-of-arrays representation of a
// netlist's per-cycle work. Compilation happens once per netlist; the
// plan is immutable afterwards and shared by every Simulator fork and
// every wide-lane simulator over the same design, so the per-cycle hot
// path walks flat index arrays instead of chasing *netlist.Node
// pointers and per-cell fanin slices.
package logicsim

import (
	"fmt"

	"repro/internal/modelcheck"
	"repro/internal/netlist"
)

// Internal plan opcodes. Two-input gates get specialized codes so the
// evaluator's common case (the vast majority of gates in synthesized
// logic) is a single masked load pair and one logic op, with no inner
// fanin loop.
const (
	opConst0 = iota
	opConst1
	opBuf
	opInv
	opAnd2
	opAndN
	opNand2
	opNandN
	opOr2
	opOrN
	opNor2
	opNorN
	opXor2
	opXorN
	opXnor2
	opXnorN
	opMux2
)

// Packed-op field layout (one uint64 per combinational node, in
// topological order):
//
//	bits  0..23  output node index (24 bits)
//	bits 24..29  opcode (6 bits)
//	bits 30..39  fanin count (10 bits)
//	bits 40..63  fanin-pool offset (24 bits)
const (
	opOutBits  = 24
	opCodeBits = 6
	opNinBits  = 10
	opOffBits  = 24

	opOutMask  = 1<<opOutBits - 1
	opCodeMask = 1<<opCodeBits - 1
	opNinMask  = 1<<opNinBits - 1

	opCodeShift = opOutBits
	opNinShift  = opOutBits + opCodeBits
	opOffShift  = opOutBits + opCodeBits + opNinBits
)

// Plan is a netlist compiled to flat index-based arrays: the
// combinational op stream in topological order, a contiguous fanin
// index pool, and the register latch schedule. A Plan is immutable
// after Compile and safe to share across any number of simulators
// (scalar forks and wide-lane sims alike) — only value state is
// per-simulator.
type Plan struct {
	numNodes int
	// ops is the linearized combinational schedule; see the packed-op
	// field layout above.
	ops []uint64
	// pool holds every op's fanin node indices back to back; an op's
	// fanins are pool[off : off+nin].
	pool []int32
	// regs are the DFF node indices in netlist.Regs order; regSrc[i]
	// is regs[i]'s data fanin. Latching is two flat passes over these.
	regs   []int32
	regSrc []int32
	// initHi lists the registers whose power-on value is 1.
	initHi []int32
	// maxFanin is the widest op in the plan (after any peephole
	// folding; the reference pointer-walking evaluator sizes its spill
	// buffer from the netlist itself).
	maxFanin int
	// hash is the cached content hash (see Hash), computed at Compile
	// so the immutable plan is never written after it is shared.
	hash uint64
	// gen is the registered straight-line evaluator bound to this
	// plan, or nil when Eval interprets the op stream.
	gen *Generated
}

// CompileOptions configures plan compilation.
type CompileOptions struct {
	// SkipPlanCheck disables the construction-time plan verification
	// (modelcheck.CheckPlan, the PL rule family). The guard is
	// errors-only and purely read-only — fixed-seed simulation results
	// are bit-identical either way — so the escape hatch exists for
	// tooling that wants to inspect a rejected plan (netlint -plan) and
	// for benchmarks of compilation itself, not for production use.
	SkipPlanCheck bool
	// NoPeephole disables the compile-time peephole pass (buf-chain
	// elision and constant folding via modelcheck.FoldNetlist). The
	// pass is exact — every node's value is unchanged in every lane —
	// so the switch exists for equivalence tests and ablation
	// benchmarks, not correctness. Note that the packed op stream (and
	// therefore Plan.Hash) differs between the two forms, so a plan
	// compiled with NoPeephole never binds a generated evaluator.
	NoPeephole bool
}

// Compile builds the evaluation plan for a netlist. The netlist must be
// valid and must not be mutated afterwards (the plan, like the cached
// topological order, is a snapshot of the structure). Compile fails if
// the design exceeds the packed-op field widths: 2^24 nodes, 2^24 total
// fanin references, or 2^10 fanins on one cell.
//
// The compiled plan is statically verified against the netlist before
// being returned (the PL rule family); see CompileOptions.SkipPlanCheck.
func Compile(nl *netlist.Netlist) (*Plan, error) {
	return CompileWithOptions(nl, CompileOptions{})
}

// CompileWithOptions is Compile with explicit options.
func CompileWithOptions(nl *netlist.Netlist, opts CompileOptions) (*Plan, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	nn := nl.NumNodes()
	if nn > opOutMask {
		return nil, fmt.Errorf("logicsim: %d nodes exceeds the %d-node plan limit", nn, opOutMask)
	}
	p := &Plan{
		numNodes: nn,
		ops:      make([]uint64, 0, len(order)),
	}
	// The peephole pass packs each op's canonical folded form instead
	// of the raw netlist cell: buf-chain fanins read the chain's root
	// slot, statically-constant nodes become Const ops, and identity
	// constant operands are dropped (specializing the opcode when the
	// fanin list shrinks to the two-input fast path). Every node keeps
	// exactly one op computing its exact value, so results are
	// bit-identical and the PL verifier accepts either form.
	var fold *modelcheck.Fold
	if !opts.NoPeephole {
		fold = modelcheck.FoldNetlist(nl)
	}
	for _, id := range order {
		node := nl.Node(id)
		cell, fanin := node.Type, node.Fanin
		if fold != nil {
			cell, fanin = fold.Expected(id)
		}
		nin := len(fanin)
		if nin > opNinMask {
			return nil, fmt.Errorf("logicsim: node %d has %d fanins, plan limit is %d", id, nin, opNinMask)
		}
		if nin > p.maxFanin {
			p.maxFanin = nin
		}
		off := len(p.pool)
		if off+nin > 1<<opOffBits {
			return nil, fmt.Errorf("logicsim: fanin pool exceeds the %d-entry plan limit", 1<<opOffBits)
		}
		code, err := planOpcode(cell, nin)
		if err != nil {
			return nil, err
		}
		for _, f := range fanin {
			p.pool = append(p.pool, int32(f))
		}
		p.ops = append(p.ops, uint64(id)|
			uint64(code)<<opCodeShift|
			uint64(nin)<<opNinShift|
			uint64(off)<<opOffShift)
	}
	regs := nl.Regs()
	p.regs = make([]int32, len(regs))
	p.regSrc = make([]int32, len(regs))
	for i, r := range regs {
		node := nl.Node(r)
		p.regs[i] = int32(r)
		p.regSrc[i] = int32(node.Fanin[0])
		if node.Init {
			p.initHi = append(p.initHi, int32(r))
		}
	}
	if !opts.SkipPlanCheck {
		// Construction-time guard: the plan is about to be shared
		// immutably by every fork and wide-lane evaluator, so any
		// Error-severity PL finding rejects it here. The check reads
		// the plan and netlist only — results are bit-identical with
		// the guard on or off.
		if err := modelcheck.CheckPlan(nl, p.View()).Err(modelcheck.Error); err != nil {
			return nil, fmt.Errorf("logicsim: compiled plan failed static verification: %w", err)
		}
	}
	// Hash eagerly (the plan is about to be shared immutably across
	// forks) and bind a registered straight-line evaluator when one
	// matches; on any mismatch the plan stays interpreted.
	p.Hash()
	p.gen = generatedFor(p)
	return p, nil
}

// planOpcode maps a cell type (and fanin count) to its plan opcode.
func planOpcode(t netlist.CellType, nin int) (uint64, error) {
	two := nin == 2
	switch t {
	case netlist.Const0:
		return opConst0, nil
	case netlist.Const1:
		return opConst1, nil
	case netlist.Buf:
		return opBuf, nil
	case netlist.Inv:
		return opInv, nil
	case netlist.And:
		if two {
			return opAnd2, nil
		}
		return opAndN, nil
	case netlist.Nand:
		if two {
			return opNand2, nil
		}
		return opNandN, nil
	case netlist.Or:
		if two {
			return opOr2, nil
		}
		return opOrN, nil
	case netlist.Nor:
		if two {
			return opNor2, nil
		}
		return opNorN, nil
	case netlist.Xor:
		if two {
			return opXor2, nil
		}
		return opXorN, nil
	case netlist.Xnor:
		if two {
			return opXnor2, nil
		}
		return opXnorN, nil
	case netlist.Mux2:
		return opMux2, nil
	default:
		return 0, fmt.Errorf("logicsim: cell type %v has no plan opcode", t)
	}
}

// NumNodes returns the node count of the compiled netlist (the length
// of a compatible value array).
func (p *Plan) NumNodes() int { return p.numNodes }

// NumRegs returns the number of registers in the latch schedule.
func (p *Plan) NumRegs() int { return len(p.regs) }

// Eval runs the combinational op stream over a flat 64-lane value
// array indexed by NodeID. When the plan is bound to a registered
// straight-line evaluator (see RegisterGenerated) that code runs
// instead of the interpreter; the two are bit-identical by
// construction and by the codegen equivalence fuzz target.
func (p *Plan) Eval(vals []uint64) {
	if g := p.gen; g != nil && g.Eval1 != nil {
		g.Eval1(vals)
		return
	}
	p.EvalInterpreted(vals)
}

// EvalInterpreted runs the interpreted op stream unconditionally,
// bypassing any bound generated evaluator. It is the SoA replacement
// for the pointer-walking sweep: per op it decodes four packed fields
// and reads/writes vals directly through the fanin pool. Exposed as
// the equivalence oracle for generated code.
func (p *Plan) EvalInterpreted(vals []uint64) {
	pool := p.pool
	//hot
	for _, op := range p.ops {
		out := op & opOutMask
		off := op >> opOffShift
		switch op >> opCodeShift & opCodeMask {
		case opAnd2:
			vals[out] = vals[pool[off]] & vals[pool[off+1]]
		case opNand2:
			vals[out] = ^(vals[pool[off]] & vals[pool[off+1]])
		case opOr2:
			vals[out] = vals[pool[off]] | vals[pool[off+1]]
		case opNor2:
			vals[out] = ^(vals[pool[off]] | vals[pool[off+1]])
		case opXor2:
			vals[out] = vals[pool[off]] ^ vals[pool[off+1]]
		case opXnor2:
			vals[out] = ^(vals[pool[off]] ^ vals[pool[off+1]])
		case opInv:
			vals[out] = ^vals[pool[off]]
		case opBuf:
			vals[out] = vals[pool[off]]
		case opMux2:
			a, b, sel := vals[pool[off]], vals[pool[off+1]], vals[pool[off+2]]
			vals[out] = (a &^ sel) | (b & sel)
		case opConst0:
			vals[out] = 0
		case opConst1:
			vals[out] = AllLanes
		case opAndN:
			fan := pool[off : off+(op>>opNinShift&opNinMask)]
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v &= vals[f]
			}
			vals[out] = v
		case opNandN:
			fan := pool[off : off+(op>>opNinShift&opNinMask)]
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v &= vals[f]
			}
			vals[out] = ^v
		case opOrN:
			fan := pool[off : off+(op>>opNinShift&opNinMask)]
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v |= vals[f]
			}
			vals[out] = v
		case opNorN:
			fan := pool[off : off+(op>>opNinShift&opNinMask)]
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v |= vals[f]
			}
			vals[out] = ^v
		case opXorN:
			fan := pool[off : off+(op>>opNinShift&opNinMask)]
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v ^= vals[f]
			}
			vals[out] = v
		case opXnorN:
			fan := pool[off : off+(op>>opNinShift&opNinMask)]
			v := vals[fan[0]]
			for _, f := range fan[1:] {
				v ^= vals[f]
			}
			vals[out] = ^v
		}
	}
}

// Latch advances every register over a flat value array: two passes
// over the index arrays, with scratch (NumRegs words) holding the
// next-state values so same-cycle register reads stay consistent.
func (p *Plan) Latch(vals, scratch []uint64) {
	//hot
	for i, src := range p.regSrc {
		scratch[i] = vals[src]
	}
	for i, r := range p.regs {
		vals[r] = scratch[i]
	}
}

// Reset clears a value array to power-on state: all nets 0, registers
// with a declared init value raised in every lane.
func (p *Plan) Reset(vals []uint64) {
	clear(vals)
	for _, r := range p.initHi {
		vals[r] = AllLanes
	}
}
