package logicsim

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/modelcheck"
	"repro/internal/netlist"
)

// FuzzPlanEquivalence cross-checks the compiled SoA plan evaluator
// against the reference pointer-walking evaluator (SetReferenceEval)
// on every netlist the fuzzer can deserialize: identical stimuli in,
// bit-identical node values and register state out, cycle by cycle.
// Seeded with the bundled example circuits so the corpus starts from
// real topologies.
func FuzzPlanEquivalence(f *testing.F) {
	dir := filepath.Join("..", "..", "examples", "circuits")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".gnl") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data), int64(1))
	}
	f.Add("gnl v1\n0 input \"a[0]\"\n1 inv 0\nout \"y[0]\" 1\n", int64(2))
	f.Add("gnl v1\n0 const1\n1 dff 1 init=1 en=0 \"r[0]\"\n", int64(3))

	f.Fuzz(func(t *testing.T, src string, seed int64) {
		nl, err := netlist.Read(strings.NewReader(src))
		if err != nil {
			return
		}
		// Static verifier sweep: every netlist the fuzzer can compile
		// must yield a plan with no Error-severity PL finding — an
		// error here is either a compiler bug or a verifier false
		// positive, and both must surface. Compile with the guard off
		// so the verdict comes from the explicit check below.
		if p, err := CompileWithOptions(nl, CompileOptions{SkipPlanCheck: true}); err == nil {
			if err := modelcheck.CheckPlan(nl, p.View()).Err(modelcheck.Error); err != nil {
				t.Fatalf("compiled plan rejected by verifier: %v", err)
			}
		}
		plan, err := New(nl)
		if err != nil {
			return
		}
		ref, err := New(nl)
		if err != nil {
			t.Fatalf("New succeeded once then failed: %v", err)
		}
		ref.SetReferenceEval(true)
		inputs := nl.Inputs()
		rng := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 16; cyc++ {
			for _, id := range inputs {
				w := rng.Uint64()
				plan.SetInput(id, w)
				ref.SetInput(id, w)
			}
			plan.Eval()
			ref.Eval()
			for i := 0; i < nl.NumNodes(); i++ {
				id := netlist.NodeID(i)
				if got, want := plan.Val(id), ref.Val(id); got != want {
					t.Fatalf("cycle %d node %d (%v): plan %#x, reference %#x",
						cyc, id, nl.Node(id).Type, got, want)
				}
			}
			plan.Latch()
			ref.Latch()
		}
	})
}
