// Package logicsim provides zero-delay cycle simulation of a gate-level
// netlist. Every net carries a 64-bit word, so a single pass evaluates 64
// independent lanes; the framework uses the lanes in two ways:
//
//   - scalar simulation (lane 0 only) for RTL-style cycle stepping, and
//   - bit-parallel evaluation, where the 64 lanes hold 64 consecutive
//     cycles of register/input values, and a single combinational pass
//     yields 64 cycles of values for every internal gate. This is the
//     "fast bit-parallel calculation" the paper's pre-characterization
//     uses to derive switching signatures.
package logicsim

import (
	"fmt"

	"repro/internal/netlist"
)

// AllLanes is the word with every lane set.
const AllLanes = ^uint64(0)

// Simulator evaluates a netlist cycle by cycle. It is not safe for
// concurrent use; clone one per goroutine with Fork.
//
// Evaluation runs over the compiled struct-of-arrays Plan (flat value
// array, packed op stream, contiguous fanin pool); the original
// pointer-walking sweep over netlist.Node is retained behind
// SetReferenceEval for equivalence testing.
type Simulator struct {
	nl   *netlist.Netlist
	plan *Plan
	vals []uint64
	// latchBuf and argBuf are per-simulator scratch so the per-cycle
	// Latch/Eval hot path allocates nothing.
	latchBuf []uint64
	argBuf   []uint64 // spill for cells with more than 8 fanins
	// order and reference drive the pointer-walking reference
	// evaluator; order is shared across forks like the plan.
	order     []netlist.NodeID
	reference bool
}

// New builds a simulator for the netlist. The netlist must be valid and
// must not be mutated afterwards; the evaluation plan (including the
// combinational topological order) is compiled once and reused every
// cycle. Registers power on to their declared init values.
func New(nl *netlist.Netlist) (*Simulator, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	plan, err := Compile(nl)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		nl:       nl,
		plan:     plan,
		order:    order,
		vals:     make([]uint64, nl.NumNodes()),
		latchBuf: make([]uint64, len(nl.Regs())),
	}
	// The reference evaluator walks the raw netlist, so its spill
	// buffer is sized from the netlist's widest cell — the plan's
	// maxFanin can be smaller after peephole folding.
	maxFanin := 0
	for id := 0; id < nl.NumNodes(); id++ {
		if n := len(nl.Node(netlist.NodeID(id)).Fanin); n > maxFanin {
			maxFanin = n
		}
	}
	if maxFanin > 8 {
		s.argBuf = make([]uint64, maxFanin)
	}
	s.Reset()
	return s, nil
}

// Fork returns an independent simulator sharing the immutable netlist,
// compiled plan, and topological order, but with its own value state,
// initialized to a deep copy of the receiver's current state — forks
// never observe each other's evaluations.
func (s *Simulator) Fork() *Simulator {
	c := &Simulator{
		nl:        s.nl,
		plan:      s.plan,
		order:     s.order,
		vals:      make([]uint64, len(s.vals)),
		latchBuf:  make([]uint64, len(s.latchBuf)),
		reference: s.reference,
	}
	if s.argBuf != nil {
		c.argBuf = make([]uint64, len(s.argBuf))
	}
	copy(c.vals, s.vals)
	return c
}

// Plan returns the compiled evaluation plan. It is immutable and shared
// by every fork (and by wide-lane simulators built over this design);
// callers must treat it as read-only.
func (s *Simulator) Plan() *Plan { return s.plan }

// SetReferenceEval switches Eval/Latch between the compiled SoA plan
// (the default) and the original pointer-walking sweep over
// netlist.Node. The two are bit-identical; the reference path exists
// for equivalence testing and debugging. Forks inherit the setting.
func (s *Simulator) SetReferenceEval(on bool) { s.reference = on }

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *netlist.Netlist { return s.nl }

// Reset restores every register to its power-on value (in all lanes) and
// clears every input.
func (s *Simulator) Reset() {
	s.plan.Reset(s.vals)
}

// SetInput drives a primary input with a 64-lane word.
func (s *Simulator) SetInput(id netlist.NodeID, word uint64) {
	if s.nl.Node(id).Type != netlist.Input {
		panic(fmt.Sprintf("logicsim: SetInput on non-input node %d (%v)", id, s.nl.Node(id).Type))
	}
	s.vals[id] = word
}

// SetInputBool drives a primary input with the same value in all lanes.
func (s *Simulator) SetInputBool(id netlist.NodeID, v bool) {
	if v {
		s.SetInput(id, AllLanes)
	} else {
		s.SetInput(id, 0)
	}
}

// Eval propagates the current input and register values through the
// combinational logic. It does not advance registers.
func (s *Simulator) Eval() {
	if s.reference {
		s.evalReference()
		return
	}
	s.plan.Eval(s.vals)
}

// evalReference is the original pointer-walking combinational sweep,
// kept as the equivalence oracle for the compiled plan.
func (s *Simulator) evalReference() {
	var in [8]uint64
	for _, id := range s.order {
		node := s.nl.Node(id)
		fi := node.Fanin
		args := in[:]
		if len(fi) > len(in) {
			args = s.argBuf
		}
		args = args[:len(fi)]
		for j, f := range fi {
			args[j] = s.vals[f]
		}
		s.vals[id] = netlist.EvalCell(node.Type, args)
	}
}

// Latch advances every register: each DFF captures the current value of
// its data input. Callers normally use Step, which evaluates first.
func (s *Simulator) Latch() {
	if s.reference {
		regs := s.nl.Regs()
		next := s.latchBuf
		for i, r := range regs {
			next[i] = s.vals[s.nl.Node(r).Fanin[0]]
		}
		for i, r := range regs {
			s.vals[r] = next[i]
		}
		return
	}
	s.plan.Latch(s.vals, s.latchBuf)
}

// Step runs one full clock cycle: combinational evaluation followed by
// the register latch.
func (s *Simulator) Step() {
	s.Eval()
	s.Latch()
}

// Val returns the current 64-lane word on the node's output net.
func (s *Simulator) Val(id netlist.NodeID) uint64 { return s.vals[id] }

// Bool returns lane 0 of the node's output net.
func (s *Simulator) Bool(id netlist.NodeID) bool { return s.vals[id]&1 == 1 }

// Lane returns the given lane of the node's output net.
func (s *Simulator) Lane(id netlist.NodeID, lane int) bool {
	return s.vals[id]>>uint(lane)&1 == 1
}

// SetReg overwrites a register's current output value (all 64 lanes).
// This is the fault-injection hook: flipping a register bit after a
// gate-level injection cycle is SetReg(r, Val(r) ^ lanes).
func (s *Simulator) SetReg(id netlist.NodeID, word uint64) {
	if s.nl.Node(id).Type != netlist.DFF {
		panic(fmt.Sprintf("logicsim: SetReg on non-register node %d", id))
	}
	s.vals[id] = word
}

// FlipReg inverts a register's value in lane 0 (the scalar lane).
func (s *Simulator) FlipReg(id netlist.NodeID) {
	if s.nl.Node(id).Type != netlist.DFF {
		panic(fmt.Sprintf("logicsim: FlipReg on non-register node %d", id))
	}
	s.vals[id] ^= 1
}

// RegState captures the current register values (all lanes) in the order
// of Netlist.Regs. It is the checkpoint payload for golden-run restart.
func (s *Simulator) RegState() []uint64 {
	out := make([]uint64, len(s.nl.Regs()))
	s.RegStateInto(out)
	return out
}

// RegStateInto writes the current register values (all lanes, in
// Netlist.Regs order) into the caller's buffer, which must have exactly
// one word per register. It is the allocation-free RegState for hot
// paths that snapshot registers every cycle.
func (s *Simulator) RegStateInto(out []uint64) {
	regs := s.nl.Regs()
	if len(out) != len(regs) {
		panic(fmt.Sprintf("logicsim: RegStateInto with %d words for %d regs", len(out), len(regs)))
	}
	for i, r := range regs {
		out[i] = s.vals[r]
	}
}

// RegDiffMask XORs every register against a reference register state
// (same order and length as RegState) and ORs the differences together:
// bit l of the result is set iff lane l disagrees with the reference in
// at least one register. With golden register words in ref, this is the
// per-cycle error-liveness mask of a lane-batched resume — one pass
// yields every lane's "does any error survive" bit.
func (s *Simulator) RegDiffMask(ref []uint64) uint64 {
	regs := s.nl.Regs()
	if len(ref) != len(regs) {
		panic(fmt.Sprintf("logicsim: RegDiffMask with %d words for %d regs", len(ref), len(regs)))
	}
	var m uint64
	for i, r := range regs {
		m |= s.vals[r] ^ ref[i]
	}
	return m
}

// Broadcast returns the 64-lane word holding v in every lane.
func Broadcast(v bool) uint64 {
	if v {
		return AllLanes
	}
	return 0
}

// SetRegState restores register values captured by RegState.
func (s *Simulator) SetRegState(state []uint64) {
	regs := s.nl.Regs()
	if len(state) != len(regs) {
		panic(fmt.Sprintf("logicsim: SetRegState with %d values for %d regs", len(state), len(regs)))
	}
	for i, r := range regs {
		s.vals[r] = state[i]
	}
}

// Signal helpers: multi-bit values over groups of nodes (LSB first),
// matching hdl.Signal layout.

// ReadWord returns lane 0 of the listed nodes packed LSB-first into a
// uint64.
func (s *Simulator) ReadWord(bits []netlist.NodeID) uint64 {
	var v uint64
	for i, id := range bits {
		if s.vals[id]&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// DriveWord drives the listed input nodes (LSB first) with the bits of v
// in all lanes of each node.
func (s *Simulator) DriveWord(bits []netlist.NodeID, v uint64) {
	for i, id := range bits {
		s.SetInputBool(id, v>>uint(i)&1 == 1)
	}
}

// DriveWordLanes drives the listed input nodes (LSB first) with per-lane
// values: vals[lane] supplies the multi-bit value for that lane.
func (s *Simulator) DriveWordLanes(bits []netlist.NodeID, vals []uint64) {
	if len(vals) > 64 {
		panic("logicsim: more than 64 lanes")
	}
	for i, id := range bits {
		var word uint64
		for lane, v := range vals {
			if v>>uint(i)&1 == 1 {
				word |= 1 << uint(lane)
			}
		}
		s.SetInput(id, word)
	}
}
