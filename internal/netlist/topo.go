package netlist

import "fmt"

// TopoOrder returns the combinational nodes of the netlist in a
// topological order: every combinational node appears after all of its
// combinational fanins. Inputs, constants, and DFF outputs are sources
// and are not included in the returned order (they carry values, they do
// not compute within a cycle).
//
// It returns an error if the combinational subgraph contains a cycle,
// which indicates a malformed design (a feedback loop not broken by a
// register).
func (n *Netlist) TopoOrder() ([]NodeID, error) {
	indeg := make([]int32, len(n.nodes))
	numComb := 0
	for i, node := range n.nodes {
		if !node.Type.IsCombinational() {
			continue
		}
		numComb++
		for _, f := range node.Fanin {
			if n.nodes[f].Type.IsCombinational() {
				indeg[i]++
			}
		}
		_ = i
	}
	order := make([]NodeID, 0, numComb)
	queue := make([]NodeID, 0, numComb)
	for i, node := range n.nodes {
		if node.Type.IsCombinational() && indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	fanouts := n.Fanouts()
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, id)
		for _, succ := range fanouts[id] {
			if !n.nodes[succ].Type.IsCombinational() {
				continue
			}
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(order) != numComb {
		return nil, fmt.Errorf("netlist: combinational cycle detected (%d of %d nodes ordered)", len(order), numComb)
	}
	return order, nil
}

// Levels returns, for every node, its logic depth: sources (inputs,
// constants, DFFs) are level 0 and every combinational node is one more
// than the maximum level of its fanins. It is used by the timed
// simulator's default delay model and by placement.
func (n *Netlist) Levels() ([]int, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	lvl := make([]int, len(n.nodes))
	for _, id := range order {
		maxIn := 0
		for _, f := range n.nodes[id].Fanin {
			if n.nodes[f].Type.IsCombinational() {
				if lvl[f] > maxIn {
					maxIn = lvl[f]
				}
			}
		}
		lvl[id] = maxIn + 1
	}
	return lvl, nil
}

// Depth returns the maximum combinational logic depth of the netlist.
func (n *Netlist) Depth() (int, error) {
	lvls, err := n.Levels()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, l := range lvls {
		if l > max {
			max = l
		}
	}
	return max, nil
}
