package netlist

import "sort"

// Cone holds the result of an unrolled cone extraction rooted at one or
// more responding signals. ByDepth[i] lists the nodes whose value i
// cycles before the observation cycle can influence (fanin cone) or be
// influenced by (fanout cone) the roots. A node may legitimately appear
// at several depths when register paths of different lengths reconverge.
type Cone struct {
	// ByDepth[i] is sorted by NodeID and free of duplicates.
	ByDepth [][]NodeID
}

// MaxDepth returns the number of unroll depths captured (len(ByDepth)).
func (c *Cone) MaxDepth() int { return len(c.ByDepth) }

// All returns the union of nodes over every depth, sorted by id.
func (c *Cone) All() []NodeID {
	seen := map[NodeID]bool{}
	var out []NodeID
	for _, layer := range c.ByDepth {
		for _, id := range layer {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sortNodeIDs(out)
	return out
}

// Contains reports whether the node appears at the given depth.
func (c *Cone) Contains(id NodeID, depth int) bool {
	if depth < 0 || depth >= len(c.ByDepth) {
		return false
	}
	layer := c.ByDepth[depth]
	lo, hi := 0, len(layer)
	for lo < hi {
		mid := (lo + hi) / 2
		if layer[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(layer) && layer[lo] == id
}

// DepthsOf returns every unroll depth at which the node appears.
func (c *Cone) DepthsOf(id NodeID) []int {
	var ds []int
	for d := range c.ByDepth {
		if c.Contains(id, d) {
			ds = append(ds, d)
		}
	}
	return ds
}

// UnrolledFaninCone computes the fanin cone of the given root nodes in
// the unrolled netlist, up to maxDepth register crossings. Depth 0 holds
// the roots plus everything reaching them combinationally in the
// observation cycle (including the register outputs feeding that logic);
// depth i holds the logic of the i-th earlier cycle that can still reach
// the roots through i register boundaries.
//
// This implements step 1 of the paper's pre-characterization: "unroll the
// circuit netlist and traverse the unrolled netlist in a breadth-first
// order starting from the identified signals".
func (n *Netlist) UnrolledFaninCone(roots []NodeID, maxDepth int) *Cone {
	return n.unrolledCone(roots, maxDepth, false)
}

// UnrolledFanoutCone computes the forward cone of the roots: the nodes a
// value change at a root can reach. Depth i holds nodes reached after
// crossing i register boundaries forward (the paper indexes these with
// negative i; we store them in a separate cone).
func (n *Netlist) UnrolledFanoutCone(roots []NodeID, maxDepth int) *Cone {
	return n.unrolledCone(roots, maxDepth, true)
}

func (n *Netlist) unrolledCone(roots []NodeID, maxDepth int, forward bool) *Cone {
	if maxDepth < 0 {
		maxDepth = 0
	}
	inSet := make([][]bool, maxDepth+1)
	for d := range inSet {
		inSet[d] = make([]bool, len(n.nodes))
	}
	type item struct {
		id    NodeID
		depth int
	}
	var queue []item
	push := func(id NodeID, d int) {
		if d > maxDepth || inSet[d][id] {
			return
		}
		inSet[d][id] = true
		queue = append(queue, item{id, d})
	}
	for _, r := range roots {
		push(r, 0)
	}
	var fanouts [][]NodeID
	if forward {
		fanouts = n.Fanouts()
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		node := &n.nodes[it.id]
		if forward {
			for _, succ := range fanouts[it.id] {
				nd := it.depth
				if n.nodes[succ].Type == DFF {
					nd++
				}
				push(succ, nd)
			}
		} else {
			nd := it.depth
			if node.Type == DFF {
				nd++
			}
			for _, f := range node.Fanin {
				push(f, nd)
			}
		}
	}
	cone := &Cone{ByDepth: make([][]NodeID, maxDepth+1)}
	for d := 0; d <= maxDepth; d++ {
		for i, in := range inSet[d] {
			if in {
				cone.ByDepth[d] = append(cone.ByDepth[d], NodeID(i))
			}
		}
	}
	return cone
}

// FilterRegs returns, per depth, only the DFF nodes of the cone. Used by
// Fig 8(b) (fanin-cone register count per unrolled cycle) and by the
// error-lifetime campaign which only injects into registers.
func (c *Cone) FilterRegs(n *Netlist) [][]NodeID {
	out := make([][]NodeID, len(c.ByDepth))
	for d, layer := range c.ByDepth {
		for _, id := range layer {
			if n.Node(id).Type == DFF {
				out[d] = append(out[d], id)
			}
		}
	}
	return out
}

// FilterComb returns, per depth, only the combinational gates of the
// cone (excluding constants), used for the radiated-gate sample space.
func (c *Cone) FilterComb(n *Netlist) [][]NodeID {
	out := make([][]NodeID, len(c.ByDepth))
	for d, layer := range c.ByDepth {
		for _, id := range layer {
			t := n.Node(id).Type
			if t.IsCombinational() && t != Const0 && t != Const1 {
				out[d] = append(out[d], id)
			}
		}
	}
	return out
}

// Merge returns a cone whose depth-d layer is the union of the two
// cones' depth-d layers. The cones may have different depths.
func Merge(a, b *Cone) *Cone {
	depth := len(a.ByDepth)
	if len(b.ByDepth) > depth {
		depth = len(b.ByDepth)
	}
	out := &Cone{ByDepth: make([][]NodeID, depth)}
	for d := 0; d < depth; d++ {
		seen := map[NodeID]bool{}
		add := func(layer []NodeID) {
			for _, id := range layer {
				if !seen[id] {
					seen[id] = true
					out.ByDepth[d] = append(out.ByDepth[d], id)
				}
			}
		}
		if d < len(a.ByDepth) {
			add(a.ByDepth[d])
		}
		if d < len(b.ByDepth) {
			add(b.ByDepth[d])
		}
		sortNodeIDs(out.ByDepth[d])
	}
	return out
}

func sortNodeIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
