package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Textual netlist format ("gnl"): a line-oriented, diff-friendly
// serialization so designs can be stored, exchanged, or imported from
// external tools.
//
//	gnl v1
//	0 input "req_valid[0]"
//	1 const0
//	2 and 0 1
//	3 dff 2 init=1 en=0 "cfg[0]"
//	out "grant[0]" 2
//
// Node lines start with the node id and must appear in id order
// starting at 0. Fanins may reference any id (DFF data/enable nets
// legitimately point forward). Names are optional quoted strings.

const gnlHeader = "gnl v1"

var typeNames = map[CellType]string{
	Const0: "const0", Const1: "const1", Input: "input", Buf: "buf",
	Inv: "inv", And: "and", Nand: "nand", Or: "or", Nor: "nor",
	Xor: "xor", Xnor: "xnor", Mux2: "mux2", DFF: "dff",
}

var typeByName = func() map[string]CellType {
	m := make(map[string]CellType, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// Write serializes the netlist.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, gnlHeader)
	for i := 0; i < n.NumNodes(); i++ {
		node := n.Node(NodeID(i))
		fmt.Fprintf(bw, "%d %s", i, typeNames[node.Type])
		for _, f := range node.Fanin {
			fmt.Fprintf(bw, " %d", f)
		}
		if node.Type == DFF {
			if node.Init {
				fmt.Fprint(bw, " init=1")
			}
			if node.En != Invalid {
				fmt.Fprintf(bw, " en=%d", node.En)
			}
		}
		if node.Name != "" {
			fmt.Fprintf(bw, " %q", node.Name)
		}
		fmt.Fprintln(bw)
	}
	for _, p := range n.Outputs() {
		fmt.Fprintf(bw, "out %q %d\n", p.Name, p.Node)
	}
	return bw.Flush()
}

// Read parses a netlist written by Write (or by hand/another tool in
// the same format) and validates it structurally.
func Read(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	header, ok := next()
	if !ok || header != gnlHeader {
		return nil, fmt.Errorf("gnl: missing %q header", gnlHeader)
	}

	type rawNode struct {
		typ   CellType
		fanin []NodeID
		init  bool
		en    NodeID
		name  string
	}
	var nodes []rawNode
	type rawOut struct {
		name string
		node NodeID
	}
	var outs []rawOut

	for {
		line, ok := next()
		if !ok {
			break
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("gnl line %d: %v", lineNo, err)
		}
		if fields[0] == "out" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("gnl line %d: out wants name and node", lineNo)
			}
			id, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("gnl line %d: bad output node %q", lineNo, fields[2])
			}
			name, err := strconv.Unquote(fields[1])
			if err != nil {
				return nil, fmt.Errorf("gnl line %d: bad output name %s", lineNo, fields[1])
			}
			outs = append(outs, rawOut{name: name, node: NodeID(id)})
			continue
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("gnl line %d: bad node id %q", lineNo, fields[0])
		}
		if id != len(nodes) {
			return nil, fmt.Errorf("gnl line %d: node id %d out of order (want %d)", lineNo, id, len(nodes))
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("gnl line %d: missing cell type", lineNo)
		}
		typ, ok := typeByName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("gnl line %d: unknown cell type %q", lineNo, fields[1])
		}
		rn := rawNode{typ: typ, en: Invalid}
		for _, f := range fields[2:] {
			switch {
			case strings.HasPrefix(f, "init="):
				switch f {
				case "init=1":
					rn.init = true
				case "init=0":
				default:
					return nil, fmt.Errorf("gnl line %d: bad %q", lineNo, f)
				}
			case strings.HasPrefix(f, "en="):
				v, err := strconv.Atoi(f[3:])
				if err != nil {
					return nil, fmt.Errorf("gnl line %d: bad %q", lineNo, f)
				}
				rn.en = NodeID(v)
			case strings.HasPrefix(f, `"`):
				name, err := strconv.Unquote(f)
				if err != nil {
					return nil, fmt.Errorf("gnl line %d: bad name %s", lineNo, f)
				}
				rn.name = name
			default:
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("gnl line %d: bad fanin %q", lineNo, f)
				}
				rn.fanin = append(rn.fanin, NodeID(v))
			}
		}
		nodes = append(nodes, rn)
	}

	// Build with placeholder-free construction: create in order, then
	// patch forward references (DFF data and enables may point ahead).
	n := New(len(nodes))
	for i, rn := range nodes {
		switch rn.typ {
		case Input:
			n.AddInput(rn.name)
		case Const0:
			n.AddConst(false)
		case Const1:
			n.AddConst(true)
		case DFF:
			if len(rn.fanin) != 1 {
				return nil, fmt.Errorf("gnl node %d: dff wants 1 fanin", i)
			}
			// Temporary self-free placeholder: use node 0 if the
			// data net is a forward reference.
			d := rn.fanin[0]
			if int(d) >= i {
				d = 0
				if i == 0 {
					return nil, fmt.Errorf("gnl node 0: dff cannot be the first node")
				}
			}
			n.AddDFF(d, rn.name, rn.init)
		default:
			// Untrusted input: check arity here rather than relying
			// on AddGate's programming-error panic.
			if want := rn.typ.FaninCount(); want >= 0 {
				if len(rn.fanin) != want {
					return nil, fmt.Errorf("gnl node %d: %v wants %d fanins, got %d", i, rn.typ, want, len(rn.fanin))
				}
			} else if len(rn.fanin) < 2 {
				return nil, fmt.Errorf("gnl node %d: %v wants at least 2 fanins, got %d", i, rn.typ, len(rn.fanin))
			}
			fi := make([]NodeID, len(rn.fanin))
			for j, f := range rn.fanin {
				if int(f) >= i {
					fi[j] = 0
					if i == 0 {
						return nil, fmt.Errorf("gnl node 0: gate cannot be the first node")
					}
				} else {
					fi[j] = f
				}
			}
			id := n.AddGate(rn.typ, fi...)
			if rn.name != "" {
				n.SetName(id, rn.name)
			}
		}
	}
	// Patch the real fanins and enables now that every id exists.
	for i, rn := range nodes {
		node := n.Node(NodeID(i))
		for j, f := range rn.fanin {
			if int(f) < 0 || int(f) >= len(nodes) {
				return nil, fmt.Errorf("gnl node %d: fanin %d out of range", i, f)
			}
			node.Fanin[j] = f
		}
		if rn.typ == DFF && rn.en != Invalid {
			if int(rn.en) < 0 || int(rn.en) >= len(nodes) {
				return nil, fmt.Errorf("gnl node %d: enable %d out of range", i, rn.en)
			}
			n.SetDFFEnable(NodeID(i), rn.en)
		}
	}
	for _, o := range outs {
		if int(o.node) < 0 || int(o.node) >= len(nodes) {
			return nil, fmt.Errorf("gnl output %q: node %d out of range", o.name, o.node)
		}
		n.AddOutput(o.name, o.node)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("gnl: %v", err)
	}
	return n, nil
}

// splitFields tokenizes a line, keeping quoted strings (which may
// contain spaces) as single fields including their quotes.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			// Scan for the closing quote, honoring backslash
			// escapes produced by %q.
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string")
			}
			out = append(out, line[i:j+1])
			i = j + 1
			continue
		}
		j := strings.IndexByte(line[i:], ' ')
		if j < 0 {
			out = append(out, line[i:])
			break
		}
		out = append(out, line[i:i+j])
		i += j
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}
