package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Textual netlist format ("gnl"): a line-oriented, diff-friendly
// serialization so designs can be stored, exchanged, or imported from
// external tools.
//
//	gnl v1
//	0 input "req_valid[0]"
//	1 const0
//	2 and 0 1
//	3 dff 2 init=1 en=0 "cfg[0]"
//	out "grant[0]" 2
//
// Node lines start with the node id and must appear in id order
// starting at 0. Only DFF data/enable nets may reference a higher id
// (registers legitimately close cycles); combinational fanins must
// point backwards, making the id order a topological order. Names are
// optional quoted strings.

const gnlHeader = "gnl v1"

var typeNames = map[CellType]string{
	Const0: "const0", Const1: "const1", Input: "input", Buf: "buf",
	Inv: "inv", And: "and", Nand: "nand", Or: "or", Nor: "nor",
	Xor: "xor", Xnor: "xnor", Mux2: "mux2", DFF: "dff",
}

var typeByName = func() map[string]CellType {
	m := make(map[string]CellType, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// Write serializes the netlist.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, gnlHeader)
	for i := 0; i < n.NumNodes(); i++ {
		node := n.Node(NodeID(i))
		fmt.Fprintf(bw, "%d %s", i, typeNames[node.Type])
		for _, f := range node.Fanin {
			fmt.Fprintf(bw, " %d", f)
		}
		if node.Type == DFF {
			if node.Init {
				fmt.Fprint(bw, " init=1")
			}
			if node.En != Invalid {
				fmt.Fprintf(bw, " en=%d", node.En)
			}
		}
		if node.Name != "" {
			fmt.Fprintf(bw, " %q", node.Name)
		}
		fmt.Fprintln(bw)
	}
	for _, p := range n.Outputs() {
		fmt.Fprintf(bw, "out %q %d\n", p.Name, p.Node)
	}
	return bw.Flush()
}

// Read parses a netlist written by Write (or by hand/another tool in
// the same format) and validates it structurally: cell types, fanin
// arities, reference ranges, and combinational acyclicity are all
// verified before the netlist is returned, so a malformed file yields a
// descriptive error here instead of a panic (or silent corruption) in a
// downstream simulator.
func Read(r io.Reader) (*Netlist, error) {
	return read(r, true)
}

// ReadUnchecked parses the same format but skips every semantic
// validation beyond tokenization: unknown-but-parseable structure
// (dangling references, bad arities, combinational cycles) is preserved
// in the returned netlist. It exists for the static verification layer
// (internal/modelcheck, cmd/netlint), which wants to load a broken
// circuit and report findings rather than refuse it at parse time. The
// returned netlist may violate every structural invariant; do not hand
// it to a simulator without a clean modelcheck report.
func ReadUnchecked(r io.Reader) (*Netlist, error) {
	return read(r, false)
}

func read(r io.Reader, checked bool) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	header, ok := next()
	if !ok || header != gnlHeader {
		return nil, fmt.Errorf("gnl: missing %q header", gnlHeader)
	}

	type rawNode struct {
		typ   CellType
		fanin []NodeID
		init  bool
		en    NodeID
		name  string
	}
	var nodes []rawNode
	type rawOut struct {
		name string
		node NodeID
	}
	var outs []rawOut

	for {
		line, ok := next()
		if !ok {
			break
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("gnl line %d: %v", lineNo, err)
		}
		if fields[0] == "out" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("gnl line %d: out wants name and node", lineNo)
			}
			id, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("gnl line %d: bad output node %q", lineNo, fields[2])
			}
			name, err := strconv.Unquote(fields[1])
			if err != nil {
				return nil, fmt.Errorf("gnl line %d: bad output name %s", lineNo, fields[1])
			}
			outs = append(outs, rawOut{name: name, node: NodeID(id)})
			continue
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("gnl line %d: bad node id %q", lineNo, fields[0])
		}
		if id != len(nodes) {
			return nil, fmt.Errorf("gnl line %d: node id %d out of order (want %d)", lineNo, id, len(nodes))
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("gnl line %d: missing cell type", lineNo)
		}
		typ, ok := typeByName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("gnl line %d: unknown cell type %q", lineNo, fields[1])
		}
		rn := rawNode{typ: typ, en: Invalid}
		for _, f := range fields[2:] {
			switch {
			case strings.HasPrefix(f, "init="):
				switch f {
				case "init=1":
					rn.init = true
				case "init=0":
				default:
					return nil, fmt.Errorf("gnl line %d: bad %q", lineNo, f)
				}
			case strings.HasPrefix(f, "en="):
				v, err := strconv.Atoi(f[3:])
				if err != nil {
					return nil, fmt.Errorf("gnl line %d: bad %q", lineNo, f)
				}
				rn.en = NodeID(v)
			case strings.HasPrefix(f, `"`):
				name, err := strconv.Unquote(f)
				if err != nil {
					return nil, fmt.Errorf("gnl line %d: bad name %s", lineNo, f)
				}
				rn.name = name
			default:
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("gnl line %d: bad fanin %q", lineNo, f)
				}
				rn.fanin = append(rn.fanin, NodeID(v))
			}
		}
		nodes = append(nodes, rn)
	}

	// Semantic validation (checked mode). The parser above only
	// tokenizes; the structural rules are verified here so a malformed
	// file produces a descriptive, node-addressed error instead of a
	// netlist that fails (or panics) somewhere downstream.
	if checked {
		for i, rn := range nodes {
			if want := rn.typ.FaninCount(); want >= 0 {
				if len(rn.fanin) != want {
					return nil, fmt.Errorf("gnl node %d: %v wants %d fanins, got %d", i, rn.typ, want, len(rn.fanin))
				}
			} else if len(rn.fanin) < 2 {
				return nil, fmt.Errorf("gnl node %d: %v wants at least 2 fanins, got %d", i, rn.typ, len(rn.fanin))
			}
			if rn.typ != DFF && (rn.init || rn.en != Invalid) {
				return nil, fmt.Errorf("gnl node %d: init=/en= are only valid on dff, not %v", i, rn.typ)
			}
			for _, f := range rn.fanin {
				if f < 0 || int(f) >= len(nodes) {
					return nil, fmt.Errorf("gnl node %d: fanin %d out of range [0,%d)", i, f, len(nodes))
				}
				if rn.typ.IsCombinational() && int(f) >= i {
					// Only DFF data/enable nets may point forward;
					// combinational ids are a topological order.
					return nil, fmt.Errorf("gnl node %d: %v fanin %d is a forward reference", i, rn.typ, f)
				}
			}
			if rn.typ == DFF && rn.en != Invalid && (rn.en < 0 || int(rn.en) >= len(nodes)) {
				return nil, fmt.Errorf("gnl node %d: enable %d out of range [0,%d)", i, rn.en, len(nodes))
			}
		}
		for _, o := range outs {
			if o.node < 0 || int(o.node) >= len(nodes) {
				return nil, fmt.Errorf("gnl output %q: node %d out of range [0,%d)", o.name, o.node, len(nodes))
			}
		}
	}

	// Raw construction: nodes are appended directly instead of going
	// through the public construction API, whose misuse panics would
	// defeat unchecked mode's purpose of preserving broken structure
	// for the linter (and which cannot express forward references
	// without placeholder patching).
	n := New(len(nodes))
	for _, rn := range nodes {
		node := Node{Type: rn.typ, Name: rn.name, En: Invalid}
		if len(rn.fanin) > 0 {
			node.Fanin = append([]NodeID(nil), rn.fanin...)
		}
		if rn.typ == DFF {
			node.Init = rn.init
			node.En = rn.en
		}
		id := n.add(node)
		switch rn.typ {
		case Input:
			n.inputs = append(n.inputs, id)
		case DFF:
			n.regs = append(n.regs, id)
		}
	}
	for _, o := range outs {
		n.outputs = append(n.outputs, Port{Name: o.name, Node: o.node})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if checked {
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("gnl: %v", err)
		}
	}
	return n, nil
}

// splitFields tokenizes a line, keeping quoted strings (which may
// contain spaces) as single fields including their quotes.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			// Scan for the closing quote, honoring backslash
			// escapes produced by %q.
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string")
			}
			out = append(out, line[i:j+1])
			i = j + 1
			continue
		}
		j := strings.IndexByte(line[i:], ' ')
		if j < 0 {
			out = append(out, line[i:])
			break
		}
		out = append(out, line[i:i+j])
		i += j
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}
