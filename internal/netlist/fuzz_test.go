package netlist_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/modelcheck"
	"repro/internal/netlist"
)

// FuzzNetlistDeserialize drives both gnl readers with arbitrary input.
// Invariants:
//
//   - neither reader panics, whatever the bytes;
//   - a netlist accepted by the validating reader survives a
//     Write/Read round-trip unchanged in shape;
//   - the static linter accepts any ReadUnchecked result without
//     panicking (its contract is to diagnose broken structure, not
//     crash on it).
func FuzzNetlistDeserialize(f *testing.F) {
	// Seed with the shipped example circuits and the linter's broken
	// fixtures, so the fuzzer starts from both sides of validity.
	for _, dir := range []string{
		filepath.Join("..", "..", "examples", "circuits"),
		filepath.Join("..", "modelcheck", "testdata", "broken"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".gnl") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(data))
		}
	}
	f.Add("gnl v1\n")
	f.Add("gnl v1\n0 input \"a[0]\"\n1 inv 0\nout \"y[0]\" 1\n")
	f.Add("gnl v1\n0 const1\n1 dff 1 init=1 en=0 \"r[0]\"\n")
	f.Add("gnl v1\n0 and 0 0\n")
	f.Add("not a netlist")

	f.Fuzz(func(t *testing.T, src string) {
		n, err := netlist.Read(strings.NewReader(src))
		if err == nil {
			if verr := n.Validate(); verr != nil {
				t.Fatalf("Read accepted a netlist failing Validate: %v", verr)
			}
			var buf bytes.Buffer
			if werr := netlist.Write(&buf, n); werr != nil {
				t.Fatalf("Write failed on an accepted netlist: %v", werr)
			}
			n2, rerr := netlist.Read(bytes.NewReader(buf.Bytes()))
			if rerr != nil {
				t.Fatalf("round-trip Read failed: %v\n%s", rerr, buf.String())
			}
			if n2.NumNodes() != n.NumNodes() || len(n2.Outputs()) != len(n.Outputs()) ||
				len(n2.Inputs()) != len(n.Inputs()) || len(n2.Regs()) != len(n.Regs()) {
				t.Fatalf("round-trip changed shape: %d/%d nodes, %d/%d outs",
					n2.NumNodes(), n.NumNodes(), len(n2.Outputs()), len(n.Outputs()))
			}
		}
		raw, err := netlist.ReadUnchecked(strings.NewReader(src))
		if err != nil {
			return
		}
		// The linter must survive whatever the unchecked reader yields.
		_ = modelcheck.CheckNetlist(raw)
	})
}
