package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildToy constructs a small two-stage circuit used by several tests:
//
//	a, b, c : inputs
//	g1 = AND(a, b)
//	r1 = DFF(g1)
//	g2 = XOR(r1, c)
//	r2 = DFF(g2)
//	out = OR(r2, a)
func buildToy(t *testing.T) (*Netlist, map[string]NodeID) {
	t.Helper()
	n := New(16)
	ids := map[string]NodeID{}
	ids["a"] = n.AddInput("a")
	ids["b"] = n.AddInput("b")
	ids["c"] = n.AddInput("c")
	ids["g1"] = n.AddGate(And, ids["a"], ids["b"])
	ids["r1"] = n.AddDFF(ids["g1"], "r1", false)
	ids["g2"] = n.AddGate(Xor, ids["r1"], ids["c"])
	ids["r2"] = n.AddDFF(ids["g2"], "r2", false)
	ids["out"] = n.AddGate(Or, ids["r2"], ids["a"])
	n.AddOutput("out", ids["out"])
	if err := n.Validate(); err != nil {
		t.Fatalf("toy netlist invalid: %v", err)
	}
	return n, ids
}

func TestAddAndLookup(t *testing.T) {
	n, ids := buildToy(t)
	if got := n.NumNodes(); got != 8 {
		t.Fatalf("NumNodes = %d, want 8", got)
	}
	if got, ok := n.FindNode("r1"); !ok || got != ids["r1"] {
		t.Errorf("FindNode(r1) = %v, %v", got, ok)
	}
	if _, ok := n.FindNode("missing"); ok {
		t.Error("FindNode(missing) should fail")
	}
	if got, ok := n.FindOutput("out"); !ok || got != ids["out"] {
		t.Errorf("FindOutput(out) = %v, %v", got, ok)
	}
	if _, ok := n.FindOutput("nope"); ok {
		t.Error("FindOutput(nope) should fail")
	}
	if len(n.Inputs()) != 3 || len(n.Regs()) != 2 || len(n.Outputs()) != 1 {
		t.Errorf("counts: in=%d regs=%d outs=%d", len(n.Inputs()), len(n.Regs()), len(n.Outputs()))
	}
}

func TestSetNameReassigns(t *testing.T) {
	n, ids := buildToy(t)
	n.SetName(ids["g1"], "and_gate")
	if got, ok := n.FindNode("and_gate"); !ok || got != ids["g1"] {
		t.Fatalf("FindNode(and_gate) = %v, %v", got, ok)
	}
	n.SetName(ids["g1"], "renamed")
	if _, ok := n.FindNode("and_gate"); ok {
		t.Error("stale name still resolvable after rename")
	}
	if got, _ := n.FindNode("renamed"); got != ids["g1"] {
		t.Error("new name does not resolve")
	}
}

func TestNamesMatching(t *testing.T) {
	n, _ := buildToy(t)
	regs := n.NamesMatching(func(s string) bool { return s[0] == 'r' })
	if len(regs) != 2 {
		t.Fatalf("NamesMatching r* = %v", regs)
	}
	if regs[0] >= regs[1] {
		t.Error("NamesMatching result not sorted")
	}
}

func TestTopoOrderProperty(t *testing.T) {
	n, _ := buildToy(t)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, id := range order {
		if !n.Node(id).Type.IsCombinational() {
			t.Fatalf("non-combinational node %d in topo order", id)
		}
		pos[id] = i
	}
	for _, id := range order {
		for _, f := range n.Node(id).Fanin {
			if n.Node(f).Type.IsCombinational() {
				if pos[f] >= pos[id] {
					t.Fatalf("fanin %d not before node %d", f, id)
				}
			}
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New(4)
	a := n.AddInput("a")
	// Build g1 = AND(a, g2), g2 = OR(g1, a): a combinational loop.
	// AddGate checks fanin range, so create with a placeholder then
	// patch the fanin directly to force the cycle.
	g1 := n.AddGate(And, a, a)
	g2 := n.AddGate(Or, g1, a)
	n.Node(g1).Fanin[1] = g2
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted a combinational cycle")
	}
}

func TestValidateArity(t *testing.T) {
	n := New(4)
	a := n.AddInput("a")
	g := n.AddGate(And, a, a)
	n.Node(g).Fanin = n.Node(g).Fanin[:1] // corrupt arity
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted 1-input AND")
	}
}

func TestAddGatePanics(t *testing.T) {
	n := New(4)
	a := n.AddInput("a")
	cases := []func(){
		func() { n.AddGate(DFF, a) },
		func() { n.AddGate(Inv, a, a) },
		func() { n.AddGate(Mux2, a, a) },
		func() { n.AddGate(And, a) },
		func() { n.AddGate(And, a, NodeID(99)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLevelsAndDepth(t *testing.T) {
	n, ids := buildToy(t)
	lvls, err := n.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lvls[ids["a"]] != 0 || lvls[ids["r1"]] != 0 {
		t.Error("sources should be level 0")
	}
	if lvls[ids["g1"]] != 1 || lvls[ids["g2"]] != 1 || lvls[ids["out"]] != 1 {
		t.Errorf("gate levels wrong: %v", lvls)
	}
	d, _ := n.Depth()
	if d != 1 {
		t.Errorf("Depth = %d, want 1", d)
	}
}

func TestDeepChainDepth(t *testing.T) {
	n := New(64)
	x := n.AddInput("x")
	cur := x
	for i := 0; i < 10; i++ {
		cur = n.AddGate(Inv, cur)
	}
	d, err := n.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Errorf("Depth = %d, want 10", d)
	}
}

func TestFanouts(t *testing.T) {
	n, ids := buildToy(t)
	fo := n.Fanouts()
	// a feeds g1 and out.
	if len(fo[ids["a"]]) != 2 {
		t.Errorf("fanout(a) = %v", fo[ids["a"]])
	}
	if len(fo[ids["out"]]) != 0 {
		t.Errorf("fanout(out) = %v", fo[ids["out"]])
	}
	// Cache must be invalidated by mutation.
	g := n.AddGate(Inv, ids["a"])
	_ = g
	fo2 := n.Fanouts()
	if len(fo2[ids["a"]]) != 3 {
		t.Errorf("fanout(a) after mutation = %v", fo2[ids["a"]])
	}
}

func TestUnrolledFaninCone(t *testing.T) {
	n, ids := buildToy(t)
	cone := n.UnrolledFaninCone([]NodeID{ids["out"]}, 3)
	// Depth 0: out, r2, a.
	d0 := cone.ByDepth[0]
	want0 := map[NodeID]bool{ids["out"]: true, ids["r2"]: true, ids["a"]: true}
	if len(d0) != len(want0) {
		t.Fatalf("depth0 = %v", d0)
	}
	for _, id := range d0 {
		if !want0[id] {
			t.Errorf("unexpected node %d at depth 0", id)
		}
	}
	// Depth 1: g2 (r2's data), r1, c.
	if !cone.Contains(ids["g2"], 1) || !cone.Contains(ids["r1"], 1) || !cone.Contains(ids["c"], 1) {
		t.Errorf("depth1 = %v", cone.ByDepth[1])
	}
	if cone.Contains(ids["g1"], 1) {
		t.Error("g1 should not be at depth 1")
	}
	// Depth 2: g1, a, b.
	if !cone.Contains(ids["g1"], 2) || !cone.Contains(ids["b"], 2) {
		t.Errorf("depth2 = %v", cone.ByDepth[2])
	}
	// Depth 3: nothing new beyond inputs; inputs terminate.
	if len(cone.ByDepth[3]) != 0 {
		t.Errorf("depth3 = %v, want empty", cone.ByDepth[3])
	}
}

func TestUnrolledFanoutCone(t *testing.T) {
	n, ids := buildToy(t)
	cone := n.UnrolledFanoutCone([]NodeID{ids["g1"]}, 3)
	// g1 feeds r1 (crossing → depth 1), then g2 at depth 1, r2 at depth 2, out at depth 2.
	if !cone.Contains(ids["g1"], 0) {
		t.Error("root missing at depth 0")
	}
	if !cone.Contains(ids["r1"], 1) || !cone.Contains(ids["g2"], 1) {
		t.Errorf("depth1 = %v", cone.ByDepth[1])
	}
	if !cone.Contains(ids["r2"], 2) || !cone.Contains(ids["out"], 2) {
		t.Errorf("depth2 = %v", cone.ByDepth[2])
	}
}

func TestConeHelpers(t *testing.T) {
	n, ids := buildToy(t)
	cone := n.UnrolledFaninCone([]NodeID{ids["out"]}, 2)
	regs := cone.FilterRegs(n)
	if len(regs[0]) != 1 || regs[0][0] != ids["r2"] {
		t.Errorf("regs depth0 = %v", regs[0])
	}
	comb := cone.FilterComb(n)
	if len(comb[0]) != 1 || comb[0][0] != ids["out"] {
		t.Errorf("comb depth0 = %v", comb[0])
	}
	all := cone.All()
	if len(all) < 6 {
		t.Errorf("All() = %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("All() not sorted/deduped")
		}
	}
	ds := cone.DepthsOf(ids["a"])
	if len(ds) != 2 { // a appears at depth 0 (via out) and depth 2 (via g1)
		t.Errorf("DepthsOf(a) = %v", ds)
	}
}

func TestMergeCones(t *testing.T) {
	n, ids := buildToy(t)
	c1 := n.UnrolledFaninCone([]NodeID{ids["out"]}, 1)
	c2 := n.UnrolledFanoutCone([]NodeID{ids["g1"]}, 2)
	m := Merge(c1, c2)
	if m.MaxDepth() != 3 {
		t.Fatalf("merged depth = %d", m.MaxDepth())
	}
	if !m.Contains(ids["out"], 0) || !m.Contains(ids["g1"], 0) {
		t.Error("merged cone missing roots at depth 0")
	}
	for _, layer := range m.ByDepth {
		for i := 1; i < len(layer); i++ {
			if layer[i] <= layer[i-1] {
				t.Fatal("merged layer not sorted/deduped")
			}
		}
	}
}

func TestClone(t *testing.T) {
	n, ids := buildToy(t)
	c := n.Clone()
	c.SetName(ids["g1"], "clone_only")
	if _, ok := n.FindNode("clone_only"); ok {
		t.Error("clone shares name map with original")
	}
	c.Node(ids["g1"]).Fanin[0] = ids["c"]
	if n.Node(ids["g1"]).Fanin[0] == ids["c"] {
		t.Error("clone shares fanin slices with original")
	}
	if err := n.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestEvalCellTruthTables(t *testing.T) {
	const T, F = ^uint64(0), uint64(0)
	cases := []struct {
		t    CellType
		in   []uint64
		want uint64
	}{
		{Const0, nil, F},
		{Const1, nil, T},
		{Buf, []uint64{0xF0}, 0xF0},
		{Inv, []uint64{0xF0}, ^uint64(0xF0)},
		{And, []uint64{0xFF, 0x0F}, 0x0F},
		{And, []uint64{0xFF, 0x0F, 0x03}, 0x03},
		{Nand, []uint64{0xFF, 0x0F}, ^uint64(0x0F)},
		{Or, []uint64{0xF0, 0x0F}, 0xFF},
		{Or, []uint64{0x01, 0x02, 0x04}, 0x07},
		{Nor, []uint64{0xF0, 0x0F}, ^uint64(0xFF)},
		{Xor, []uint64{0xFF, 0x0F}, 0xF0},
		{Xnor, []uint64{0xFF, 0x0F}, ^uint64(0xF0)},
		{Mux2, []uint64{0xAA, 0xCC, F}, 0xAA},
		{Mux2, []uint64{0xAA, 0xCC, T}, 0xCC},
		{Mux2, []uint64{0xAA, 0xCC, 0x0F}, 0xAA&^0x0F | 0xCC&0x0F},
	}
	for _, c := range cases {
		if got := EvalCell(c.t, c.in); got != c.want {
			t.Errorf("EvalCell(%v, %x) = %x, want %x", c.t, c.in, got, c.want)
		}
	}
}

func TestEvalCellDeMorgan(t *testing.T) {
	f := func(a, b uint64) bool {
		nand := EvalCell(Nand, []uint64{a, b})
		orInv := EvalCell(Or, []uint64{^a, ^b})
		nor := EvalCell(Nor, []uint64{a, b})
		andInv := EvalCell(And, []uint64{^a, ^b})
		return nand == orInv && nor == andInv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalCellXorProperties(t *testing.T) {
	f := func(a, b, c uint64) bool {
		// Associativity and self-inverse.
		x1 := EvalCell(Xor, []uint64{EvalCell(Xor, []uint64{a, b}), c})
		x2 := EvalCell(Xor, []uint64{a, EvalCell(Xor, []uint64{b, c})})
		self := EvalCell(Xor, []uint64{a, a})
		return x1 == x2 && self == 0 && EvalCell(Xnor, []uint64{a, b}) == ^EvalCell(Xor, []uint64{a, b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalCellPanicsOnSequential(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvalCell(DFF) should panic")
		}
	}()
	EvalCell(DFF, []uint64{0})
}

// randomDAG builds a random valid netlist: property test that TopoOrder
// always succeeds and respects dependencies on arbitrary DAGs.
func randomDAG(rng *rand.Rand, nGates int) *Netlist {
	n := New(nGates + 8)
	for i := 0; i < 4; i++ {
		n.AddInput("")
	}
	gateTypes := []CellType{Buf, Inv, And, Nand, Or, Nor, Xor, Xnor, Mux2}
	for i := 0; i < nGates; i++ {
		t := gateTypes[rng.Intn(len(gateTypes))]
		pick := func() NodeID { return NodeID(rng.Intn(n.NumNodes())) }
		switch t.FaninCount() {
		case 1:
			n.AddGate(t, pick())
		case 3:
			n.AddGate(t, pick(), pick(), pick())
		default:
			k := 2 + rng.Intn(3)
			fi := make([]NodeID, k)
			for j := range fi {
				fi[j] = pick()
			}
			n.AddGate(t, fi...)
		}
		if rng.Intn(5) == 0 {
			n.AddDFF(NodeID(rng.Intn(n.NumNodes())), "", rng.Intn(2) == 0)
		}
	}
	return n
}

func TestTopoOrderRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := randomDAG(rng, 100)
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		order, err := n.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := make(map[NodeID]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range order {
			for _, f := range n.Node(id).Fanin {
				if n.Node(f).Type.IsCombinational() && pos[f] >= pos[id] {
					t.Fatalf("trial %d: order violation", trial)
				}
			}
		}
	}
}

func TestStatsAndArea(t *testing.T) {
	n, _ := buildToy(t)
	s, err := ComputeStats(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 8 || s.Inputs != 3 || s.Registers != 2 || s.CombGates != 3 || s.Outputs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Area <= 0 {
		t.Error("area should be positive")
	}
	m := DefaultAreaModel()
	if ra := m.RegArea(n, n.Regs()); ra != 2*m.PerCell[DFF] {
		t.Errorf("RegArea = %v", ra)
	}
	// Wide gate costs more than 2-input gate.
	n2 := New(8)
	a := n2.AddInput("a")
	g2 := n2.AddGate(And, a, a)
	g4 := n2.AddGate(And, a, a, a, a)
	if m.CellArea(n2.Node(g4)) <= m.CellArea(n2.Node(g2)) {
		t.Error("wide AND should cost more area")
	}
}

func TestCellTypeString(t *testing.T) {
	if And.String() != "AND" || DFF.String() != "DFF" {
		t.Error("CellType.String wrong")
	}
	if CellType(200).String() == "" {
		t.Error("unknown cell type should still format")
	}
}

// bruteForceFaninDepths computes, for every node, the set of unroll
// depths at which it can influence the root — by explicit graph walking
// — as an oracle for UnrolledFaninCone.
func bruteForceFaninDepths(n *Netlist, root NodeID, maxDepth int) map[NodeID]map[int]bool {
	out := map[NodeID]map[int]bool{}
	var visit func(id NodeID, d int)
	visit = func(id NodeID, d int) {
		if d > maxDepth {
			return
		}
		if out[id] == nil {
			out[id] = map[int]bool{}
		}
		if out[id][d] {
			return
		}
		out[id][d] = true
		nd := d
		if n.Node(id).Type == DFF {
			nd++
		}
		for _, f := range n.Node(id).Fanin {
			visit(f, nd)
		}
	}
	visit(root, 0)
	return out
}

func TestUnrolledFaninConeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := randomDAG(rng, 80)
		if len(n.Regs()) == 0 {
			continue
		}
		root := n.Regs()[rng.Intn(len(n.Regs()))]
		const maxDepth = 6
		cone := n.UnrolledFaninCone([]NodeID{root}, maxDepth)
		want := bruteForceFaninDepths(n, root, maxDepth)
		for d := 0; d <= maxDepth; d++ {
			inLayer := map[NodeID]bool{}
			for _, id := range cone.ByDepth[d] {
				inLayer[id] = true
			}
			for id, depths := range want {
				if depths[d] != inLayer[id] {
					t.Fatalf("trial %d: node %d depth %d: cone=%v oracle=%v",
						trial, id, d, inLayer[id], depths[d])
				}
			}
			// No extras either.
			for id := range inLayer {
				if !want[id][d] {
					t.Fatalf("trial %d: node %d wrongly at depth %d", trial, id, d)
				}
			}
		}
	}
}
