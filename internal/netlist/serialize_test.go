package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, n *Netlist) *Netlist {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\ninput:\n%s", err, buf.String())
	}
	return got
}

func assertEqualNetlists(t *testing.T, a, b *Netlist) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(NodeID(i)), b.Node(NodeID(i))
		if na.Type != nb.Type || na.Name != nb.Name || na.Init != nb.Init {
			t.Fatalf("node %d header differs: %+v vs %+v", i, na, nb)
		}
		enA, enB := na.En, nb.En
		if na.Type != DFF {
			// En is meaningless for non-DFFs; Read normalizes it.
			enA, enB = 0, 0
		}
		if enA != enB {
			t.Fatalf("node %d enable differs: %v vs %v", i, na.En, nb.En)
		}
		if len(na.Fanin) != len(nb.Fanin) {
			t.Fatalf("node %d fanin count", i)
		}
		for j := range na.Fanin {
			if na.Fanin[j] != nb.Fanin[j] {
				t.Fatalf("node %d fanin %d differs", i, j)
			}
		}
	}
	oa, ob := a.Outputs(), b.Outputs()
	if len(oa) != len(ob) {
		t.Fatalf("output counts")
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("output %d differs: %+v vs %+v", i, oa[i], ob[i])
		}
	}
}

func TestRoundTripToy(t *testing.T) {
	n, _ := buildToy(t)
	assertEqualNetlists(t, n, roundTrip(t, n))
}

func TestRoundTripWithEnablesAndForwardRefs(t *testing.T) {
	// DFFs whose data and enable reference later nodes.
	n := New(16)
	in := n.AddInput("in")
	r := n.AddDFF(in, "r", true) // patched below to a forward net
	en := n.AddGate(Inv, in)
	d := n.AddGate(Xor, in, r)
	n.Node(r).Fanin[0] = d
	n.SetDFFEnable(r, en)
	n.AddOutput("q", r)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, n)
	assertEqualNetlists(t, n, got)
	if got.Node(r).En != en || !got.Node(r).Init {
		t.Fatal("enable/init lost")
	}
}

func TestRoundTripNamesWithSpaces(t *testing.T) {
	n := New(4)
	in := n.AddInput("weird name [0]")
	g := n.AddGate(Buf, in)
	n.SetName(g, `quoted "name"`)
	n.AddOutput("out port", g)
	got := roundTrip(t, n)
	assertEqualNetlists(t, n, got)
	if _, ok := got.FindNode(`quoted "name"`); !ok {
		t.Fatal("escaped name not restored")
	}
}

func TestRoundTripRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := randomDAG(rng, 150)
		got := roundTrip(t, n)
		assertEqualNetlists(t, n, got)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":        "0 input\n",
		"bad type":         "gnl v1\n0 frob\n",
		"id out of order":  "gnl v1\n1 input\n",
		"bad fanin":        "gnl v1\n0 input\n1 inv x\n",
		"fanin range":      "gnl v1\n0 input\n1 inv 7\n",
		"dff arity":        "gnl v1\n0 input\n1 dff 0 0\n",
		"bad init":         "gnl v1\n0 input\n1 dff 0 init=2\n",
		"bad enable":       "gnl v1\n0 input\n1 dff 0 en=x\n",
		"enable range":     "gnl v1\n0 input\n1 dff 0 en=9\n",
		"out range":        "gnl v1\n0 input\nout \"o\" 3\n",
		"out arity":        "gnl v1\n0 input\nout \"o\"\n",
		"unterminated str": "gnl v1\n0 input \"oops\n",
		"gate first":       "gnl v1\n0 inv 1\n1 input\n",
		"comb cycle":       "gnl v1\n0 input\n1 inv 2\n2 inv 1\n",
		"bad arity":        "gnl v1\n0 input\n1 and 0\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	text := "gnl v1\n# a comment\n\n0 input \"a\"\n\n# another\n1 inv 0\nout \"o\" 1\n"
	n, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 2 || len(n.Outputs()) != 1 {
		t.Fatalf("parsed %d nodes", n.NumNodes())
	}
}

func TestWriteDeterministic(t *testing.T) {
	n, _ := buildToy(t)
	var a, b bytes.Buffer
	if err := Write(&a, n); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, n); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Write not deterministic")
	}
}
