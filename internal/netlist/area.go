package netlist

// AreaModel maps cell types to relative silicon area. The defaults are
// normalized gate-equivalent figures typical of standard-cell libraries;
// exact values only matter for the hardening overhead experiment, which
// reports ratios.
type AreaModel struct {
	PerCell [numCellTypes]float64
	// PerExtraFanin is the incremental area per fanin beyond two for
	// variadic gates (wide AND/OR trees synthesize to more transistors).
	PerExtraFanin float64
}

// DefaultAreaModel returns gate-equivalent areas (NAND2 = 1.0).
func DefaultAreaModel() AreaModel {
	var m AreaModel
	m.PerCell[Const0] = 0
	m.PerCell[Const1] = 0
	m.PerCell[Input] = 0
	m.PerCell[Buf] = 0.75
	m.PerCell[Inv] = 0.5
	m.PerCell[And] = 1.25
	m.PerCell[Nand] = 1.0
	m.PerCell[Or] = 1.25
	m.PerCell[Nor] = 1.0
	m.PerCell[Xor] = 2.0
	m.PerCell[Xnor] = 2.0
	m.PerCell[Mux2] = 2.25
	m.PerCell[DFF] = 4.5
	m.PerExtraFanin = 0.5
	return m
}

// CellArea returns the area of a single node under the model.
func (m AreaModel) CellArea(node *Node) float64 {
	a := m.PerCell[node.Type]
	if extra := len(node.Fanin) - 2; extra > 0 && node.Type.FaninCount() < 0 {
		a += float64(extra) * m.PerExtraFanin
	}
	return a
}

// TotalArea returns the summed area of every node in the netlist.
func (m AreaModel) TotalArea(n *Netlist) float64 {
	total := 0.0
	for i := 0; i < n.NumNodes(); i++ {
		total += m.CellArea(n.Node(i2id(i)))
	}
	return total
}

// RegArea returns the summed area of the given registers only.
func (m AreaModel) RegArea(n *Netlist, regs []NodeID) float64 {
	total := 0.0
	for _, r := range regs {
		total += m.CellArea(n.Node(r))
	}
	return total
}

func i2id(i int) NodeID { return NodeID(i) }

// Stats summarizes the composition of a netlist.
type Stats struct {
	Nodes     int
	Inputs    int
	Outputs   int
	Registers int
	CombGates int
	Constants int
	ByType    map[CellType]int
	Depth     int
	Area      float64
}

// ComputeStats gathers netlist statistics under the default area model.
func ComputeStats(n *Netlist) (Stats, error) {
	s := Stats{ByType: make(map[CellType]int)}
	s.Nodes = n.NumNodes()
	s.Inputs = len(n.Inputs())
	s.Outputs = len(n.Outputs())
	for i := 0; i < n.NumNodes(); i++ {
		node := n.Node(NodeID(i))
		s.ByType[node.Type]++
		switch {
		case node.Type == DFF:
			s.Registers++
		case node.Type == Const0 || node.Type == Const1:
			s.Constants++
		case node.Type.IsCombinational():
			s.CombGates++
		}
	}
	d, err := n.Depth()
	if err != nil {
		return s, err
	}
	s.Depth = d
	s.Area = DefaultAreaModel().TotalArea(n)
	return s, nil
}
