// Package netlist provides the structural gate-level representation used
// throughout the framework: a directed graph of primitive cells (simple
// logic gates and D flip-flops) with named primary inputs and outputs.
//
// The netlist is the single source of truth for a design. The RTL-level
// simulator (internal/rtl) evaluates it cycle-by-cycle with zero delay,
// while the gate-level timed simulator (internal/timingsim) evaluates the
// injection cycle with per-cell delays and transient pulses. The
// pre-characterization procedure (internal/precharac) extracts fanin and
// fanout cones of responding signals from the same graph.
package netlist

import (
	"fmt"
	"sort"
)

// NodeID identifies a node in a netlist. The node's output net shares the
// same identity: node i drives net i.
type NodeID int32

// Invalid is the zero-ish sentinel for "no node".
const Invalid NodeID = -1

// CellType enumerates the primitive cells supported by the framework.
type CellType uint8

// Primitive cell types. DFF is the only sequential element; everything
// else is combinational. Const0/Const1 are tie cells.
const (
	Const0 CellType = iota
	Const1
	Input // primary input; no fanin
	Buf
	Inv
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Mux2 // fanin: [a, b, sel]; output = sel ? b : a
	DFF  // fanin: [d]; output = registered value
	numCellTypes
)

var cellNames = [...]string{
	Const0: "CONST0",
	Const1: "CONST1",
	Input:  "INPUT",
	Buf:    "BUF",
	Inv:    "INV",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	Mux2:   "MUX2",
	DFF:    "DFF",
}

// String returns the conventional library name of the cell type.
func (c CellType) String() string {
	if int(c) < len(cellNames) {
		return cellNames[c]
	}
	return fmt.Sprintf("CellType(%d)", uint8(c))
}

// IsCombinational reports whether the cell computes a pure function of its
// fanins within a cycle.
func (c CellType) IsCombinational() bool {
	switch c {
	case Input, DFF:
		return false
	default:
		return true
	}
}

// FaninCount returns the required number of fanins for the cell type, or
// -1 if the cell accepts a variable number (And/Nand/Or/Nor/Xor/Xnor
// accept 2 or more).
func (c CellType) FaninCount() int {
	switch c {
	case Const0, Const1, Input:
		return 0
	case Buf, Inv, DFF:
		return 1
	case Mux2:
		return 3
	case And, Nand, Or, Nor, Xor, Xnor:
		return -1
	default:
		return -1
	}
}

// Node is a single cell instance. Fanin order matters only for Mux2
// ([a, b, sel]). Name is optional and used for debug and responding-signal
// lookup; register and port names are always set by the HDL elaborator.
type Node struct {
	Type  CellType
	Fanin []NodeID
	Name  string
	// Init is the power-on value of a DFF (false = 0). Ignored for
	// other cell types.
	Init bool
	// En, when not Invalid, marks a DFF as load-enable (clock-gated)
	// with the given net as its enable. Zero-delay simulation is
	// unaffected (the hold path is structural, via a mux on D), but
	// the timed simulator uses it: a transient arriving at a gated
	// flop while the enable is low latches only if it is wide enough
	// to upset the storage node directly. Ignored for other cells.
	En NodeID
}

// Port is a named primary output: the design-level name and the node that
// drives it.
type Port struct {
	Name string
	Node NodeID
}

// Netlist is a flat gate-level design.
//
// The zero value is an empty netlist ready for use.
type Netlist struct {
	nodes   []Node
	inputs  []NodeID
	regs    []NodeID
	outputs []Port
	byName  map[string]NodeID

	// fanouts is built lazily by Fanouts and invalidated on mutation.
	fanouts [][]NodeID
}

// New returns an empty netlist with capacity hints.
func New(nodeCap int) *Netlist {
	return &Netlist{
		nodes:  make([]Node, 0, nodeCap),
		byName: make(map[string]NodeID),
	}
}

// NumNodes returns the total number of nodes (cells) in the netlist.
func (n *Netlist) NumNodes() int { return len(n.nodes) }

// Node returns the node with the given id. The returned pointer stays
// valid until the next mutation.
func (n *Netlist) Node(id NodeID) *Node { return &n.nodes[id] }

// Inputs returns the primary input nodes in insertion order. The caller
// must not mutate the returned slice.
func (n *Netlist) Inputs() []NodeID { return n.inputs }

// Regs returns the DFF nodes in insertion order. The caller must not
// mutate the returned slice.
func (n *Netlist) Regs() []NodeID { return n.regs }

// Outputs returns the named primary outputs. The caller must not mutate
// the returned slice.
func (n *Netlist) Outputs() []Port { return n.outputs }

// add appends a node and invalidates caches.
func (n *Netlist) add(node Node) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node)
	n.fanouts = nil
	if node.Name != "" {
		n.byName[node.Name] = id
	}
	return id
}

// AddInput creates a named primary input node.
func (n *Netlist) AddInput(name string) NodeID {
	id := n.add(Node{Type: Input, Name: name})
	n.inputs = append(n.inputs, id)
	return id
}

// AddConst creates a tie cell with the given constant value.
func (n *Netlist) AddConst(v bool) NodeID {
	t := Const0
	if v {
		t = Const1
	}
	return n.add(Node{Type: t})
}

// AddGate creates a combinational gate. It panics if the fanin count is
// invalid for the cell type; netlist construction errors are programming
// errors, not runtime conditions.
func (n *Netlist) AddGate(t CellType, fanin ...NodeID) NodeID {
	if !t.IsCombinational() || t == Const0 || t == Const1 {
		panic(fmt.Sprintf("netlist: AddGate with non-gate cell %v", t))
	}
	if want := t.FaninCount(); want >= 0 {
		if len(fanin) != want {
			panic(fmt.Sprintf("netlist: %v needs %d fanins, got %d", t, want, len(fanin)))
		}
	} else if len(fanin) < 2 {
		panic(fmt.Sprintf("netlist: %v needs at least 2 fanins, got %d", t, len(fanin)))
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(n.nodes) {
			panic(fmt.Sprintf("netlist: fanin %d out of range", f))
		}
	}
	fi := make([]NodeID, len(fanin))
	copy(fi, fanin)
	return n.add(Node{Type: t, Fanin: fi})
}

// AddDFF creates a register with data input d, an optional name, and a
// power-on value.
func (n *Netlist) AddDFF(d NodeID, name string, init bool) NodeID {
	if d < 0 || int(d) >= len(n.nodes) {
		panic(fmt.Sprintf("netlist: DFF data input %d out of range", d))
	}
	id := n.add(Node{Type: DFF, Fanin: []NodeID{d}, Name: name, Init: init, En: Invalid})
	n.regs = append(n.regs, id)
	return id
}

// SetDFFEnable marks a DFF as load-enable (clock-gated) with the given
// enable net. It panics on non-DFF nodes or out-of-range enables.
func (n *Netlist) SetDFFEnable(id, en NodeID) {
	if n.nodes[id].Type != DFF {
		panic(fmt.Sprintf("netlist: SetDFFEnable on non-DFF node %d", id))
	}
	if en < 0 || int(en) >= len(n.nodes) {
		panic(fmt.Sprintf("netlist: enable %d out of range", en))
	}
	n.nodes[id].En = en
}

// SetName assigns or reassigns a debug name to a node.
func (n *Netlist) SetName(id NodeID, name string) {
	old := n.nodes[id].Name
	if old != "" {
		delete(n.byName, old)
	}
	n.nodes[id].Name = name
	if name != "" {
		n.byName[name] = id
	}
}

// AddOutput registers a named primary output driven by the given node.
func (n *Netlist) AddOutput(name string, id NodeID) {
	if id < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("netlist: output %q driver %d out of range", name, id))
	}
	n.outputs = append(n.outputs, Port{Name: name, Node: id})
}

// FindNode returns the node with the given name.
func (n *Netlist) FindNode(name string) (NodeID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// FindOutput returns the driver of the named primary output.
func (n *Netlist) FindOutput(name string) (NodeID, bool) {
	for _, p := range n.outputs {
		if p.Name == name {
			return p.Node, true
		}
	}
	return Invalid, false
}

// NamesMatching returns the ids of all named nodes whose name passes the
// given predicate, sorted by id. It is used to collect register groups
// (e.g. every bit of a multi-bit register) by prefix.
func (n *Netlist) NamesMatching(pred func(string) bool) []NodeID {
	var ids []NodeID
	//maporder-ok (sorted by id below)
	for name, id := range n.byName {
		if pred(name) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Fanouts returns, for each node, the list of nodes it feeds. The result
// is cached until the netlist is mutated. The caller must not mutate the
// returned slices.
func (n *Netlist) Fanouts() [][]NodeID {
	if n.fanouts != nil {
		return n.fanouts
	}
	fo := make([][]NodeID, len(n.nodes))
	cnt := make([]int, len(n.nodes))
	for _, node := range n.nodes {
		for _, f := range node.Fanin {
			cnt[f]++
		}
	}
	for i := range fo {
		if cnt[i] > 0 {
			fo[i] = make([]NodeID, 0, cnt[i])
		}
	}
	for i, node := range n.nodes {
		for _, f := range node.Fanin {
			fo[f] = append(fo[f], NodeID(i))
		}
	}
	n.fanouts = fo
	return fo
}

// Validate checks structural invariants: fanin arities, fanin range, and
// acyclicity of the combinational graph (registers legitimately close
// cycles). It returns the first violation found.
func (n *Netlist) Validate() error {
	for i, node := range n.nodes {
		if want := node.Type.FaninCount(); want >= 0 {
			if len(node.Fanin) != want {
				return fmt.Errorf("node %d (%v): has %d fanins, want %d", i, node.Type, len(node.Fanin), want)
			}
		} else if len(node.Fanin) < 2 {
			return fmt.Errorf("node %d (%v): has %d fanins, want >= 2", i, node.Type, len(node.Fanin))
		}
		for _, f := range node.Fanin {
			if f < 0 || int(f) >= len(n.nodes) {
				return fmt.Errorf("node %d (%v): fanin %d out of range", i, node.Type, f)
			}
		}
	}
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		nodes:   make([]Node, len(n.nodes)),
		inputs:  append([]NodeID(nil), n.inputs...),
		regs:    append([]NodeID(nil), n.regs...),
		outputs: append([]Port(nil), n.outputs...),
		byName:  make(map[string]NodeID, len(n.byName)),
	}
	for i, node := range n.nodes {
		cp := node
		cp.Fanin = append([]NodeID(nil), node.Fanin...)
		c.nodes[i] = cp
	}
	for k, v := range n.byName {
		c.byName[k] = v
	}
	return c
}

// EvalCell computes the word-level output of a combinational cell given
// bit-parallel fanin words (each bit lane is an independent evaluation).
// It is shared by the logic simulators so RTL-level and gate-level
// evaluation cannot diverge on cell semantics.
func EvalCell(t CellType, in []uint64) uint64 {
	switch t {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return in[0]
	case Inv:
		return ^in[0]
	case And:
		v := in[0]
		for _, x := range in[1:] {
			v &= x
		}
		return v
	case Nand:
		v := in[0]
		for _, x := range in[1:] {
			v &= x
		}
		return ^v
	case Or:
		v := in[0]
		for _, x := range in[1:] {
			v |= x
		}
		return v
	case Nor:
		v := in[0]
		for _, x := range in[1:] {
			v |= x
		}
		return ^v
	case Xor:
		v := in[0]
		for _, x := range in[1:] {
			v ^= x
		}
		return v
	case Xnor:
		v := in[0]
		for _, x := range in[1:] {
			v ^= x
		}
		return ^v
	case Mux2:
		a, b, sel := in[0], in[1], in[2]
		return (a &^ sel) | (b & sel)
	default:
		panic(fmt.Sprintf("netlist: EvalCell on non-combinational cell %v", t))
	}
}

// Word is the lane-width abstraction shared by the wide evaluators: a
// fixed-size array of 64-bit lane words, so one combinational pass
// evaluates 64·K independent lanes. The supported widths are K=1 (the
// classic single word), K=4 (256 virtual lanes), and K=8 (512 virtual
// lanes).
type Word interface {
	[1]uint64 | [4]uint64 | [8]uint64
}

// WordSlice views a lane word as a []uint64 of its K words. Go cannot
// index or range a type-parameter value whose type set unions arrays
// of different lengths (no core type), so every wide evaluator funnels
// element access through this accessor; the type switch resolves
// statically per instantiation and inlines to a plain slice view.
func WordSlice[W Word](w *W) []uint64 {
	switch v := any(w).(type) {
	case *[1]uint64:
		return v[:]
	case *[4]uint64:
		return v[:]
	case *[8]uint64:
		return v[:]
	default:
		panic("netlist: unsupported lane word width")
	}
}

// EvalCellWide is EvalCell over K-word lane vectors: lane (k, b) of the
// result is EvalCell applied to bit b of word k of every fanin. It is
// the single cell-semantics definition for wide evaluation, shared by
// the wide logic simulator and the timed simulator's wide span chunks.
func EvalCellWide[W Word](t CellType, in []W) W {
	var v W
	o := WordSlice(&v)
	switch t {
	case Const0:
		return v
	case Const1:
		for k := range o {
			o[k] = ^uint64(0)
		}
		return v
	case Buf:
		return in[0]
	case Inv:
		a := WordSlice(&in[0])
		for k := range o {
			o[k] = ^a[k]
		}
		return v
	case And:
		v = in[0]
		for i := 1; i < len(in); i++ {
			x := WordSlice(&in[i])
			for k := range o {
				o[k] &= x[k]
			}
		}
		return v
	case Nand:
		v = in[0]
		for i := 1; i < len(in); i++ {
			x := WordSlice(&in[i])
			for k := range o {
				o[k] &= x[k]
			}
		}
		for k := range o {
			o[k] = ^o[k]
		}
		return v
	case Or:
		v = in[0]
		for i := 1; i < len(in); i++ {
			x := WordSlice(&in[i])
			for k := range o {
				o[k] |= x[k]
			}
		}
		return v
	case Nor:
		v = in[0]
		for i := 1; i < len(in); i++ {
			x := WordSlice(&in[i])
			for k := range o {
				o[k] |= x[k]
			}
		}
		for k := range o {
			o[k] = ^o[k]
		}
		return v
	case Xor:
		v = in[0]
		for i := 1; i < len(in); i++ {
			x := WordSlice(&in[i])
			for k := range o {
				o[k] ^= x[k]
			}
		}
		return v
	case Xnor:
		v = in[0]
		for i := 1; i < len(in); i++ {
			x := WordSlice(&in[i])
			for k := range o {
				o[k] ^= x[k]
			}
		}
		for k := range o {
			o[k] = ^o[k]
		}
		return v
	case Mux2:
		a, b, sel := WordSlice(&in[0]), WordSlice(&in[1]), WordSlice(&in[2])
		for k := range o {
			o[k] = (a[k] &^ sel[k]) | (b[k] & sel[k])
		}
		return v
	default:
		panic(fmt.Sprintf("netlist: EvalCellWide on non-combinational cell %v", t))
	}
}
