package modelcheck

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/placement"
)

// Model bundles everything the model-level checks (MC0xx) need beyond
// the bare netlist. Every field except Netlist is optional; checks whose
// inputs are absent are skipped.
type Model struct {
	Netlist *netlist.Netlist
	// Place, when set, is verified for coverage and die-area bounds.
	Place *placement.Placement
	// Responding, when set, lists the responding-signal nodes whose
	// unrolled fanin cone the pre-characterization walks.
	Responding []netlist.NodeID
	// MaxDepth is the unroll window of the pre-characterization; used
	// with Responding for the cone-escape check. Zero skips it.
	MaxDepth int
}

// CheckModel runs the netlist-structural checks plus every model-level
// check the Model provides inputs for.
func CheckModel(m Model) *Report {
	r := CheckNetlist(m.Netlist)
	// Model-level checks need sound node references; if the structural
	// pass found dangling refs, traversals below would index out of
	// range.
	for _, f := range r.Findings {
		if f.ID == IDDanglingRef {
			return r
		}
	}
	if m.Place != nil {
		r.Findings = append(r.Findings, CheckPlacement(m.Netlist, m.Place)...)
	}
	if len(m.Responding) > 0 {
		r.Findings = append(r.Findings, checkResponding(m.Netlist, m.Responding)...)
		if m.MaxDepth > 0 {
			r.Findings = append(r.Findings, CheckConeWindow(m.Netlist, m.Responding, m.MaxDepth)...)
		}
	}
	return r
}

// CheckPlacement verifies MC001/MC002: the placement covers the netlist
// one-to-one and every coordinate lies inside the die area.
func CheckPlacement(n *netlist.Netlist, p *placement.Placement) []Finding {
	var out []Finding
	if got := p.NumPlaced(); got != n.NumNodes() {
		out = append(out, Finding{ID: IDPlaceCoverage, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("placement covers %d nodes, netlist has %d", got, n.NumNodes())})
		return out
	}
	w, h := p.Bounds()
	for i := 0; i < n.NumNodes(); i++ {
		id := netlist.NodeID(i)
		pt := p.At(id)
		if pt.X < 0 || pt.Y < 0 || pt.X > w || pt.Y > h {
			f := Finding{ID: IDPlaceOutOfDie, Sev: Error, Node: id,
				Msg: fmt.Sprintf("placed at (%g, %g) outside die [0,%g]x[0,%g]", pt.X, pt.Y, w, h)}
			if name := n.Node(id).Name; name != "" {
				f.Name = name
			}
			out = append(out, f)
		}
	}
	return out
}

// checkResponding verifies MC003: every responding signal exists and is
// a register (the paper's responding signals are latched decisions).
func checkResponding(n *netlist.Netlist, responding []netlist.NodeID) []Finding {
	var out []Finding
	for _, rs := range responding {
		if rs < 0 || int(rs) >= n.NumNodes() {
			out = append(out, Finding{ID: IDRespondingSignal, Sev: Error, Node: netlist.Invalid,
				Msg: fmt.Sprintf("responding signal %d out of range [0,%d)", rs, n.NumNodes())})
			continue
		}
		if n.Node(rs).Type != netlist.DFF {
			out = append(out, Finding{ID: IDRespondingSignal, Sev: Error, Node: rs,
				Name: n.Node(rs).Name,
				Msg:  fmt.Sprintf("responding signal is a %v, want DFF", n.Node(rs).Type)})
		}
	}
	return out
}

// CheckConeWindow verifies MC004: at the configured unroll depth the
// responding-signal fanin cone must have converged — its deepest layer
// introduces no register that was absent from shallower layers.
// Otherwise errors injected more than MaxDepth cycles before the target
// can still reach the responding signals, and the pre-characterization
// window under-covers the design.
func CheckConeWindow(n *netlist.Netlist, responding []netlist.NodeID, maxDepth int) []Finding {
	cone := n.UnrolledFaninCone(responding, maxDepth)
	layers := cone.ByDepth
	if len(layers) == 0 {
		return nil
	}
	seen := make(map[netlist.NodeID]bool)
	for _, layer := range layers[:len(layers)-1] {
		for _, id := range layer {
			if n.Node(id).Type == netlist.DFF {
				seen[id] = true
			}
		}
	}
	var escaped []netlist.NodeID
	for _, id := range layers[len(layers)-1] {
		if n.Node(id).Type == netlist.DFF && !seen[id] {
			escaped = append(escaped, id)
		}
	}
	if len(escaped) == 0 {
		return nil
	}
	out := make([]Finding, 0, len(escaped))
	for _, id := range escaped {
		out = append(out, Finding{ID: IDConeEscape, Sev: Warn, Node: id,
			Name: n.Node(id).Name,
			Msg:  fmt.Sprintf("register first enters the responding-signal fanin cone at the window edge (depth %d); the unroll window may under-cover the design", maxDepth)})
	}
	return out
}
