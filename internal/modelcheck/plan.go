// Plan-IR verification: the PL rule family statically checks a compiled
// logicsim evaluation plan against its source netlist. The plan is the
// least inspectable artifact in the stack — a packed op stream plus flat
// index arrays, shared immutably by every simulator fork and wide-lane
// evaluator — so the verifier re-derives every structural invariant the
// evaluators rely on instead of trusting the compiler: one op per
// combinational node, opcodes matching cell types, every index in
// bounds, fanins defined before use, no two ops writing one value slot,
// no op writing input/register slots, the latch schedule mirroring the
// netlist's registers, and the sizing fields consistent for every
// supported lane stride.
//
// The checker works on a PlanView — a decoded, plain-data snapshot of
// the plan — rather than on logicsim's packed representation, so this
// package never imports logicsim (logicsim imports modelcheck to run
// the construction-time guard) and tests can corrupt views field by
// field without touching bit packing.
package modelcheck

import (
	"fmt"
	"math"

	"repro/internal/netlist"
)

// Plan-IR check IDs (the PL family). All are Error severity except
// IDPlanNonCanonical notes inside PL002 and the unreachable-op rule
// PL009, which reports Error because it is a plan-vs-netlist
// inconsistency, not a design smell (netlist-level dead logic is
// NL005's business).
const (
	// IDPlanCoverage — the op stream does not cover the netlist's
	// combinational nodes one-to-one: some combinational node is never
	// computed by any op.
	IDPlanCoverage = "PL001"
	// IDPlanOpcode — an op's opcode disagrees with its node's cell
	// type, decodes to no known cell at all, or its encoded arity is
	// inconsistent with the opcode (Error); or a two-fanin gate uses
	// the variable-fanin encoding instead of its specialized two-input
	// opcode (Warn: semantically equal but non-canonical, so the plan
	// was not produced by the compiler).
	IDPlanOpcode = "PL002"
	// IDPlanBounds — an index escapes its array: an op's output node,
	// its fanin-pool span, or a pooled fanin index is out of bounds.
	IDPlanBounds = "PL003"
	// IDPlanUseBeforeDef — an op reads a combinational value that no
	// earlier op has computed (including reading its own output): the
	// op stream violates topological order.
	IDPlanUseBeforeDef = "PL004"
	// IDPlanAliasing — two ops write the same value slot. Eval would
	// silently keep only the later result, and the evaluation order
	// contract (one definition per net) is broken.
	IDPlanAliasing = "PL005"
	// IDPlanStateWrite — an op's output slot is a primary input or a
	// register. Those slots are owned by the driver and latch phases;
	// an op writing one makes Eval non-idempotent and corrupts the
	// state that Fork-shared plans promise never to touch.
	IDPlanStateWrite = "PL006"
	// IDPlanFaninMismatch — an op's decoded fanin list differs from
	// its netlist node's fanins (count or element-wise, in order).
	IDPlanFaninMismatch = "PL007"
	// IDPlanLatchSchedule — the latch schedule disagrees with the
	// netlist: regs is not exactly netlist.Regs in order, a regSrc is
	// not its register's D fanin, the init-high set does not match the
	// declared power-on values, or a schedule entry is out of range.
	IDPlanLatchSchedule = "PL008"
	// IDPlanUnreachable — dead/unreachable op: an op computes a value
	// that nothing in the plan consumes (no later op fanin, no latch
	// source, no primary output) even though the netlist says the node
	// is consumed. The compile dropped or corrupted a consumer.
	IDPlanUnreachable = "PL009"
	// IDPlanLaneStride — lane-stride/sizing inconsistency: the plan's
	// node count disagrees with the netlist (the flat value arrays of
	// every K∈{1,4,8} evaluator are sized NumNodes·K), a count exceeds
	// the packed-op field widths, or MaxFanin understates the widest
	// op (the reference evaluator sizes its spill buffer from it).
	IDPlanLaneStride = "PL010"
)

// laneStrides are the supported wide-evaluator group counts (64, 256,
// and 512 virtual lanes).
var laneStrides = [...]int{1, 4, 8}

// Packed-op field capacities, mirrored from logicsim's plan encoding:
// 24-bit output index, 10-bit fanin count, 24-bit pool offset. The
// verifier re-checks them so a hand-built or corrupted plan that could
// not round-trip through the packed encoding is rejected.
const (
	planMaxNodes    = 1 << 24
	planMaxPool     = 1 << 24
	planMaxOpFanins = 1<<10 - 1
)

// PlanOp is one decoded op of a compiled plan.
type PlanOp struct {
	// Out is the value slot the op writes (the combinational node it
	// computes).
	Out netlist.NodeID
	// Cell is the cell type the opcode decodes to; CellOK is false
	// when the opcode matches no known cell (Cell is then meaningless).
	Cell   netlist.CellType
	CellOK bool
	// Arity is the fanin count fixed by the opcode, or -1 for the
	// variable-fanin encodings (which read Nin fanins).
	Arity int
	// Nin is the encoded fanin-count field.
	Nin int
	// PoolOff is the encoded fanin-pool offset.
	PoolOff int
	// Fanin is the decoded fanin list — the PoolOff-based slice of the
	// fanin pool the evaluator would read — or nil when the span does
	// not fit the pool (reported as PL003).
	Fanin []netlist.NodeID
}

// effFanins is the number of pool entries the evaluator reads for this
// op: the opcode's fixed arity, or the encoded count for the
// variable-fanin opcodes.
func (o *PlanOp) effFanins() int {
	if o.Arity >= 0 {
		return o.Arity
	}
	return o.Nin
}

// PlanView is a decoded, plain-data snapshot of a compiled evaluation
// plan, produced by logicsim's Plan.View. CheckPlan verifies it against
// the source netlist.
type PlanView struct {
	// NumNodes is the node count the plan's value arrays are sized for.
	NumNodes int
	// PoolSize is the length of the fanin index pool.
	PoolSize int
	// MaxFanin is the plan's recorded widest fanin count.
	MaxFanin int
	// Ops is the combinational op stream in execution order.
	Ops []PlanOp
	// Regs, RegSrc, and InitHi are the latch schedule: register node
	// ids, their data fanins (index-aligned with Regs), and the
	// registers whose power-on value is 1.
	Regs, RegSrc, InitHi []netlist.NodeID
}

// CheckPlan verifies a compiled plan view against its source netlist
// and returns the PL-family findings. The netlist is the reference: it
// should itself be clean (CheckNetlist) for the results to be
// meaningful, but CheckPlan only assumes it is structurally sound
// enough to index (as guaranteed by netlist construction).
//
// Per-op rules accept two forms: the raw netlist form (opcode and
// fanin list exactly as declared) and the canonical folded form
// (FoldNetlist: buf-chain redirection, constant folding, identity
// operand elimination). The verifier re-derives the fold from the
// netlist itself, so a plan claiming a rewrite the fold does not
// produce is still rejected.
func CheckPlan(n *netlist.Netlist, v PlanView) *Report {
	r := &Report{}
	nn := n.NumNodes()
	if v.NumNodes != nn {
		r.add(n, Finding{ID: IDPlanLaneStride, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("plan sized for %d nodes but the netlist has %d: every lane-stride value array (K∈{1,4,8}) would be mis-sized", v.NumNodes, nn)})
	}
	if v.NumNodes > planMaxNodes {
		r.add(n, Finding{ID: IDPlanLaneStride, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("%d nodes exceeds the %d-node packed-op limit", v.NumNodes, planMaxNodes)})
	}
	if v.PoolSize > planMaxPool {
		r.add(n, Finding{ID: IDPlanLaneStride, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("fanin pool of %d entries exceeds the %d-entry packed-op limit", v.PoolSize, planMaxPool)})
	}
	for _, k := range laneStrides {
		// Each wide evaluator flattens the state to NumNodes·K words and
		// addresses it with int arithmetic that must stay valid even on
		// 32-bit int platforms.
		if v.NumNodes > math.MaxInt32/k {
			r.add(n, Finding{ID: IDPlanLaneStride, Sev: Error, Node: netlist.Invalid,
				Msg: fmt.Sprintf("%d nodes at lane stride %d overflows 32-bit value-array addressing", v.NumNodes, k)})
		}
	}

	checkPlanOps(n, v, r)
	checkPlanLatch(n, v, r)
	return r
}

// checkPlanOps runs the per-op and whole-stream rules: PL001–PL007,
// PL009, and the op-level parts of PL010.
func checkPlanOps(n *netlist.Netlist, v PlanView, r *Report) {
	nn := n.NumNodes()
	fold := FoldNetlist(n)
	// defined[i] — node i's value slot is readable at the current point
	// of the stream: inputs and registers are defined by the driver and
	// latch phases before Eval runs; combinational slots become defined
	// when their op executes.
	defined := make([]bool, nn)
	writer := make([]int, nn) // op index that wrote the slot, or -1
	for i := range writer {
		writer[i] = -1
	}
	for id := 0; id < nn; id++ {
		if !n.Node(netlist.NodeID(id)).Type.IsCombinational() {
			defined[id] = true
		}
	}
	// consumed[i] — some op (or the latch schedule, checked by the
	// caller via latchConsumes) reads node i's value. Used by PL009.
	consumed := make([]bool, nn)
	maxEff := 0

	for i := range v.Ops {
		op := &v.Ops[i]
		if op.Out < 0 || int(op.Out) >= nn || int(op.Out) >= v.NumNodes {
			r.add(n, Finding{ID: IDPlanBounds, Sev: Error, Node: netlist.Invalid,
				Msg: fmt.Sprintf("op %d writes node %d, outside the %d-node value array", i, op.Out, minInt(nn, v.NumNodes))})
			continue
		}
		node := n.Node(op.Out)
		if !node.Type.IsCombinational() {
			r.add(n, Finding{ID: IDPlanStateWrite, Sev: Error, Node: op.Out,
				Msg: fmt.Sprintf("op %d writes the %v slot of node %d: input and register slots are owned by the driver/latch phases, not Eval", i, node.Type, op.Out)})
			continue
		}
		if writer[op.Out] >= 0 {
			r.add(n, Finding{ID: IDPlanAliasing, Sev: Error, Node: op.Out,
				Msg: fmt.Sprintf("ops %d and %d both write node %d", writer[op.Out], i, op.Out)})
		} else {
			writer[op.Out] = i
		}

		foldCell, foldFanin := fold.Expected(op.Out)
		opcodeOK := checkPlanOpcode(n, i, op, node, foldCell, r)

		eff := op.effFanins()
		if eff > maxEff {
			maxEff = eff
		}
		if op.PoolOff < 0 || eff < 0 || op.PoolOff+eff > v.PoolSize {
			r.add(n, Finding{ID: IDPlanBounds, Sev: Error, Node: op.Out,
				Msg: fmt.Sprintf("op %d fanin span [%d,%d) escapes the %d-entry pool", i, op.PoolOff, op.PoolOff+eff, v.PoolSize)})
			defined[op.Out] = true
			continue
		}
		if len(op.Fanin) != eff {
			r.add(n, Finding{ID: IDPlanBounds, Sev: Error, Node: op.Out,
				Msg: fmt.Sprintf("op %d decoded %d fanins where the encoding reads %d", i, len(op.Fanin), eff)})
			defined[op.Out] = true
			continue
		}

		faninsOK := true
		for j, f := range op.Fanin {
			if f < 0 || int(f) >= nn || int(f) >= v.NumNodes {
				r.add(n, Finding{ID: IDPlanBounds, Sev: Error, Node: op.Out,
					Msg: fmt.Sprintf("op %d fanin %d reads node %d, outside the %d-node value array", i, j, f, minInt(nn, v.NumNodes))})
				faninsOK = false
				continue
			}
			if !defined[f] {
				r.add(n, Finding{ID: IDPlanUseBeforeDef, Sev: Error, Node: op.Out,
					Msg: fmt.Sprintf("op %d reads node %d before any op computes it: the stream violates topological order", i, f)})
			}
			consumed[f] = true
		}
		// Fanin-list equivalence only when the opcode checks passed —
		// a wrong opcode already explains an arity difference. Either
		// translation is acceptable: the raw netlist fanins (with the
		// raw cell type), or the canonical folded form (with the
		// folded cell type). Mixing the two is not.
		if faninsOK && opcodeOK {
			direct := op.Cell == node.Type && faninsEqual(op.Fanin, node.Fanin)
			folded := op.Cell == foldCell && faninsEqual(op.Fanin, foldFanin)
			if !direct && !folded {
				if len(op.Fanin) != len(node.Fanin) && len(op.Fanin) != len(foldFanin) {
					r.add(n, Finding{ID: IDPlanFaninMismatch, Sev: Error, Node: op.Out,
						Msg: fmt.Sprintf("op %d has %d fanins, node %d has %d (folded form has %d)", i, len(op.Fanin), op.Out, len(node.Fanin), len(foldFanin))})
				} else {
					r.add(n, Finding{ID: IDPlanFaninMismatch, Sev: Error, Node: op.Out,
						Msg: fmt.Sprintf("op %d fanin list %v matches neither node %d's netlist fanins %v nor its folded form %v", i, op.Fanin, op.Out, node.Fanin, foldFanin)})
				}
			}
		}
		defined[op.Out] = true
	}

	// PL001: every combinational node must have exactly one op
	// (duplicates were PL005 above; here the missing ones).
	for id := 0; id < nn; id++ {
		if n.Node(netlist.NodeID(id)).Type.IsCombinational() && writer[id] < 0 {
			r.add(n, Finding{ID: IDPlanCoverage, Sev: Error, Node: netlist.NodeID(id),
				Msg: fmt.Sprintf("combinational node %d (%v) is computed by no op", id, n.Node(netlist.NodeID(id)).Type)})
		}
	}

	// PL009: an op whose value the plan never consumes although the
	// folded form of the netlist still needs the node — the compile
	// lost a consumer. Plan consumers are op fanins (collected above),
	// latch sources, and primary outputs. The expectation is the
	// folded consumption set rather than the raw fanout edges: a Buf
	// in the middle of an elided chain, or an identity-constant
	// operand, legitimately loses all its plan readers (its op still
	// writes its slot for observability).
	for _, src := range v.RegSrc {
		if src >= 0 && int(src) < nn {
			consumed[src] = true
		}
	}
	for _, port := range n.Outputs() {
		if port.Node >= 0 && int(port.Node) < nn {
			consumed[port.Node] = true
		}
	}
	expConsumed := fold.ExpectedConsumed()
	for id := 0; id < nn; id++ {
		node := n.Node(netlist.NodeID(id))
		if node.Type == netlist.DFF {
			// The latch schedule reads D fanins raw (it is never
			// folded), so registers keep their netlist-level
			// consumption expectation.
			for _, f := range node.Fanin {
				if f >= 0 && int(f) < nn {
					expConsumed[f] = true
				}
			}
		}
		if node.Type == netlist.DFF && node.En != netlist.Invalid &&
			node.En >= 0 && int(node.En) < nn {
			// Enables are read by the timed simulator, not the plan's
			// zero-delay evaluators (the hold path is structural via a
			// mux on D), so an enable net consumed only here must still
			// be computed by the plan — count it as plan-consumed too.
			expConsumed[node.En] = true
			consumed[node.En] = true
		}
	}
	for _, port := range n.Outputs() {
		if port.Node >= 0 && int(port.Node) < nn {
			expConsumed[port.Node] = true
		}
	}
	for id := 0; id < nn; id++ {
		if writer[id] >= 0 && expConsumed[id] && !consumed[id] {
			r.add(n, Finding{ID: IDPlanUnreachable, Sev: Error, Node: netlist.NodeID(id),
				Msg: fmt.Sprintf("op %d computes node %d but nothing in the plan consumes it, although the netlist's folded form does: a consumer was dropped", writer[id], id)})
		}
	}

	// PL010 op-level sizing: the recorded MaxFanin sizes the reference
	// evaluator's spill buffer and must dominate every op.
	if maxEff > v.MaxFanin {
		r.add(n, Finding{ID: IDPlanLaneStride, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("MaxFanin %d understates the widest op (%d fanins): the reference evaluator's spill buffer would be too small", v.MaxFanin, maxEff)})
	}
	if maxEff > planMaxOpFanins {
		r.add(n, Finding{ID: IDPlanLaneStride, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("an op has %d fanins, exceeding the %d-fanin packed-op field", maxEff, planMaxOpFanins)})
	}
}

// checkPlanOpcode runs PL002 for one op and reports whether the opcode
// and its arity encoding are trustworthy enough for fanin comparison.
// foldCell is the cell type of the node's canonical folded form, which
// is as acceptable as the raw netlist type (the fanin comparison pins
// down which of the two translations the op must then follow).
func checkPlanOpcode(n *netlist.Netlist, i int, op *PlanOp, node *netlist.Node, foldCell netlist.CellType, r *Report) bool {
	if !op.CellOK {
		r.add(n, Finding{ID: IDPlanOpcode, Sev: Error, Node: op.Out,
			Msg: fmt.Sprintf("op %d carries an opcode that decodes to no cell type", i)})
		return false
	}
	if op.Cell != node.Type && op.Cell != foldCell {
		r.add(n, Finding{ID: IDPlanOpcode, Sev: Error, Node: op.Out,
			Msg: fmt.Sprintf("op %d computes %v but node %d is %v (folded form %v)", i, op.Cell, op.Out, node.Type, foldCell)})
		return false
	}
	if op.Arity >= 0 && op.Nin != op.Arity {
		r.add(n, Finding{ID: IDPlanOpcode, Sev: Error, Node: op.Out,
			Msg: fmt.Sprintf("op %d encodes %d fanins but its %v opcode reads exactly %d", i, op.Nin, op.Cell, op.Arity)})
		return false
	}
	if op.Arity < 0 && op.Nin == 2 {
		r.add(n, Finding{ID: IDPlanOpcode, Sev: Warn, Node: op.Out,
			Msg: fmt.Sprintf("op %d uses the variable-fanin %v encoding for 2 fanins where the compiler emits the specialized two-input opcode", i, op.Cell)})
	}
	return true
}

// checkPlanLatch runs PL008: the latch schedule must mirror the
// netlist's register list exactly.
func checkPlanLatch(n *netlist.Netlist, v PlanView, r *Report) {
	nn := n.NumNodes()
	if len(v.RegSrc) != len(v.Regs) {
		r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("latch schedule has %d regs but %d sources", len(v.Regs), len(v.RegSrc))})
	}
	regs := n.Regs()
	if len(v.Regs) != len(regs) {
		r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("latch schedule covers %d registers, netlist has %d", len(v.Regs), len(regs))})
	}
	initHi := make(map[netlist.NodeID]bool, len(v.InitHi))
	for _, id := range v.InitHi {
		initHi[id] = true
	}
	for i, reg := range v.Regs {
		if reg < 0 || int(reg) >= nn {
			r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: netlist.Invalid,
				Msg: fmt.Sprintf("latch schedule entry %d targets node %d, outside the netlist", i, reg)})
			continue
		}
		node := n.Node(reg)
		if node.Type != netlist.DFF {
			r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: reg,
				Msg: fmt.Sprintf("latch schedule entry %d targets node %d (%v), not a register", i, reg, node.Type)})
			continue
		}
		if i < len(regs) && regs[i] != reg {
			r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: reg,
				Msg: fmt.Sprintf("latch schedule entry %d is node %d, netlist register order has node %d", i, reg, regs[i])})
		}
		if i < len(v.RegSrc) {
			src := v.RegSrc[i]
			if src < 0 || int(src) >= nn {
				r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: reg,
					Msg: fmt.Sprintf("latch source %d targets node %d, outside the netlist", i, src)})
			} else if len(node.Fanin) > 0 && src != node.Fanin[0] {
				r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: reg,
					Msg: fmt.Sprintf("latch source %d reads node %d, register %d's D fanin is node %d", i, src, reg, node.Fanin[0])})
			}
		}
		if node.Init != initHi[reg] {
			want := "0"
			if node.Init {
				want = "1"
			}
			r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: reg,
				Msg: fmt.Sprintf("register %d powers on at %s in the netlist but the plan's init-high set disagrees", reg, want)})
		}
	}
	regSet := make(map[netlist.NodeID]bool, len(v.Regs))
	for _, reg := range v.Regs {
		regSet[reg] = true
	}
	for _, id := range v.InitHi {
		if !regSet[id] {
			r.add(n, Finding{ID: IDPlanLatchSchedule, Sev: Error, Node: id,
				Msg: fmt.Sprintf("init-high entry %d is not in the latch schedule", id)})
		}
	}
}

// faninsEqual reports element-wise equality of two fanin lists.
func faninsEqual(a, b []netlist.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
