package modelcheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logicsim"
	"repro/internal/modelcheck"
	"repro/internal/netlist"
	"repro/internal/soc"
)

// planDesign is the verifier's reference circuit: a two-input gate (the
// specialized opcode path), a three-input gate (the variable-fanin
// path), an inverter, an init-high register, and a primary output, with
// every combinational node consumed.
func planDesign() *netlist.Netlist {
	n := netlist.New(8)
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.AddGate(netlist.And, a, b)
	y := n.AddGate(netlist.Or, a, b, x)
	z := n.AddGate(netlist.Inv, y)
	q := n.AddDFF(z, "q", true)
	w := n.AddGate(netlist.Xor, x, q)
	n.AddOutput("w", w)
	return n
}

// planView compiles the design (guard off — the corruption tests are
// about to break the view on purpose) and returns its decoded view.
func planView(t *testing.T, n *netlist.Netlist) modelcheck.PlanView {
	t.Helper()
	p, err := logicsim.CompileWithOptions(n, logicsim.CompileOptions{SkipPlanCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.View()
}

// opFor returns the index of the op computing the given node.
func opFor(t *testing.T, v modelcheck.PlanView, id netlist.NodeID) int {
	t.Helper()
	for i := range v.Ops {
		if v.Ops[i].Out == id {
			return i
		}
	}
	t.Fatalf("no op computes node %d", id)
	return -1
}

func planIDs(r *modelcheck.Report) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Findings {
		if !seen[f.ID] {
			seen[f.ID] = true
			out = append(out, f.ID)
		}
	}
	return out
}

func assertIDs(t *testing.T, r *modelcheck.Report, want ...string) {
	t.Helper()
	got := planIDs(r)
	wantSet := map[string]bool{}
	for _, id := range want {
		wantSet[id] = true
	}
	for _, id := range got {
		if !wantSet[id] {
			t.Errorf("unexpected finding family %s:\n%s", id, r)
		}
	}
	for _, id := range want {
		found := false
		for _, g := range got {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Errorf("missing expected finding %s; got %v:\n%s", id, got, r)
		}
	}
}

// TestCheckPlanCleanOnCompiled pins the baseline: a freshly compiled
// plan of a clean design carries no finding at all.
func TestCheckPlanCleanOnCompiled(t *testing.T) {
	n := planDesign()
	r := modelcheck.CheckPlan(n, planView(t, n))
	if len(r.Findings) != 0 {
		t.Fatalf("compiled plan not finding-free:\n%s", r)
	}
}

// TestCheckPlanBrokenFixtures corrupts the compiled view one invariant
// at a time and requires the exact PL rule to fire.
func TestCheckPlanBrokenFixtures(t *testing.T) {
	n := planDesign()
	// Node ids in construction order: a=0 b=1 x=2 y=3 z=4 q=5 w=6.
	const (
		x = netlist.NodeID(2)
		y = netlist.NodeID(3)
		z = netlist.NodeID(4)
		q = netlist.NodeID(5)
	)
	cases := []struct {
		name    string
		corrupt func(t *testing.T, v *modelcheck.PlanView)
		want    []string
	}{
		{"missing op", func(t *testing.T, v *modelcheck.PlanView) {
			// Dropping x's op leaves x uncovered (PL001) and its
			// readers consuming an undefined slot (PL004).
			i := opFor(t, *v, x)
			v.Ops = append(v.Ops[:i], v.Ops[i+1:]...)
		}, []string{"PL001", "PL004"}},
		{"wrong cell type", func(t *testing.T, v *modelcheck.PlanView) {
			v.Ops[opFor(t, *v, x)].Cell = netlist.Or
		}, []string{"PL002"}},
		{"unknown opcode", func(t *testing.T, v *modelcheck.PlanView) {
			v.Ops[opFor(t, *v, x)].CellOK = false
		}, []string{"PL002"}},
		{"arity encoding mismatch", func(t *testing.T, v *modelcheck.PlanView) {
			v.Ops[opFor(t, *v, x)].Nin = 3
		}, []string{"PL002"}},
		{"non-canonical wide encoding", func(t *testing.T, v *modelcheck.PlanView) {
			op := &v.Ops[opFor(t, *v, x)]
			op.Arity = -1 // variable-fanin And with Nin=2
		}, []string{"PL002"}},
		{"output out of bounds", func(t *testing.T, v *modelcheck.PlanView) {
			v.Ops[opFor(t, *v, x)].Out = 99
		}, []string{"PL003", "PL001", "PL004"}},
		{"pool span out of bounds", func(t *testing.T, v *modelcheck.PlanView) {
			op := &v.Ops[opFor(t, *v, x)]
			op.PoolOff = v.PoolSize
			op.Fanin = nil
		}, []string{"PL003"}},
		{"fanin index out of bounds", func(t *testing.T, v *modelcheck.PlanView) {
			v.Ops[opFor(t, *v, x)].Fanin[0] = -2
		}, []string{"PL003"}},
		{"topo order violated", func(t *testing.T, v *modelcheck.PlanView) {
			// Move z's op in front of y's: z reads y before it exists.
			zi, yi := opFor(t, *v, z), opFor(t, *v, y)
			v.Ops[zi], v.Ops[yi] = v.Ops[yi], v.Ops[zi]
		}, []string{"PL004"}},
		{"write aliasing", func(t *testing.T, v *modelcheck.PlanView) {
			v.Ops = append(v.Ops, v.Ops[opFor(t, *v, x)])
		}, []string{"PL005"}},
		{"op writes register slot", func(t *testing.T, v *modelcheck.PlanView) {
			v.Ops[opFor(t, *v, x)].Out = q
		}, []string{"PL006", "PL001", "PL004"}},
		{"fanin mismatch", func(t *testing.T, v *modelcheck.PlanView) {
			op := &v.Ops[opFor(t, *v, x)]
			op.Fanin[1] = op.Fanin[0]
		}, []string{"PL007"}},
		{"latch source mismatch", func(t *testing.T, v *modelcheck.PlanView) {
			// q's latch now reads x instead of z; z's value becomes
			// unreachable in the plan as a side effect.
			v.RegSrc[0] = x
		}, []string{"PL008", "PL009"}},
		{"latch schedule targets non-register", func(t *testing.T, v *modelcheck.PlanView) {
			v.Regs[0] = x
		}, []string{"PL008"}},
		{"init value lost", func(t *testing.T, v *modelcheck.PlanView) {
			v.InitHi = nil
		}, []string{"PL008"}},
		{"unreachable op", func(t *testing.T, v *modelcheck.PlanView) {
			// Dropping z's op also orphans y: the netlist consumes y
			// (through z) but no remaining plan consumer reads it.
			i := opFor(t, *v, z)
			v.Ops = append(v.Ops[:i], v.Ops[i+1:]...)
		}, []string{"PL001", "PL009"}},
		{"node count mismatch", func(t *testing.T, v *modelcheck.PlanView) {
			// Shrinking the plan's node count pushes the last node's op
			// out of bounds (PL003), which in turn leaves that node
			// uncovered (PL001).
			v.NumNodes--
		}, []string{"PL010", "PL003", "PL001"}},
		{"maxfanin understated", func(t *testing.T, v *modelcheck.PlanView) {
			v.MaxFanin = 2 // y has 3 fanins
		}, []string{"PL010"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := planView(t, n)
			tc.corrupt(t, &v)
			assertIDs(t, modelcheck.CheckPlan(n, v), tc.want...)
		})
	}
}

// TestCheckPlanSeverities pins that the only non-Error rule outcome is
// the non-canonical-encoding note of PL002.
func TestCheckPlanSeverities(t *testing.T) {
	n := planDesign()
	v := planView(t, n)
	v.Ops[opFor(t, v, 2)].Arity = -1
	r := modelcheck.CheckPlan(n, v)
	if r.HasAtLeast(modelcheck.Error) {
		t.Fatalf("non-canonical encoding should not be an error:\n%s", r)
	}
	if r.Count(modelcheck.Warn) == 0 {
		t.Fatalf("expected a PL002 warning:\n%s", r)
	}
}

// TestExampleCircuitPlansClean requires every shipped example circuit
// to compile to a finding-free plan.
func TestExampleCircuitPlansClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "circuits")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".gnl") {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			fh, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer fh.Close()
			n, err := netlist.Read(fh)
			if err != nil {
				t.Fatal(err)
			}
			r := modelcheck.CheckPlan(n, planView(t, n))
			if len(r.Findings) != 0 {
				t.Fatalf("plan not finding-free:\n%s", r)
			}
		})
	}
	if found == 0 {
		t.Fatal("no example circuits found")
	}
}

// TestBuiltinMPUPlanClean requires the built-in MPU's compiled plan to
// be finding-free, and the verified plan to instantiate at every
// supported lane width (64, 256, and 512 virtual lanes).
func TestBuiltinMPUPlanClean(t *testing.T) {
	s, err := soc.New(soc.DefaultConfig(), soc.SyntheticProgram(0x4000, 0x4fff))
	if err != nil {
		t.Fatal(err)
	}
	nl := s.MPU.Netlist
	r := modelcheck.CheckPlan(nl, planView(t, nl))
	if len(r.Findings) != 0 {
		t.Fatalf("built-in MPU plan not finding-free:\n%s", r)
	}
	sim, err := logicsim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, groups := range []int{1, 4, 8} {
		if _, err := logicsim.NewLaneSim(sim, groups); err != nil {
			t.Fatalf("lane width %d over verified plan: %v", groups*64, err)
		}
	}
}
