package modelcheck_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/modelcheck"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/soc"
)

// loadBroken parses a deliberately malformed fixture with the unchecked
// reader (the checked one would reject it).
func loadBroken(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	fh, err := os.Open(filepath.Join("testdata", "broken", name))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	n, err := netlist.ReadUnchecked(fh)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return n
}

// distinctIDs returns the sorted set of check IDs present in a report.
func distinctIDs(r *modelcheck.Report) []string {
	set := make(map[string]bool)
	for _, f := range r.Findings {
		set[f.ID] = true
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func TestBrokenFixtures(t *testing.T) {
	cases := []struct {
		file string
		// ids is the exact distinct-ID set the linter must report.
		ids []string
		max modelcheck.Severity
	}{
		// Expressing a combinational cycle in id-ordered gnl necessarily
		// also trips the forward-reference check.
		{"comb-loop.gnl", []string{modelcheck.IDCombLoop, modelcheck.IDCombForwardRef}, modelcheck.Error},
		{"floating-input.gnl", []string{modelcheck.IDFloatingInput}, modelcheck.Warn},
		{"dead-cone.gnl", []string{modelcheck.IDDeadGate}, modelcheck.Warn},
		{"bad-topo-order.gnl", []string{modelcheck.IDCombForwardRef}, modelcheck.Warn},
		{"double-driven-reg.gnl", []string{modelcheck.IDMultiDrivenReg}, modelcheck.Error},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			n := loadBroken(t, tc.file)
			r := modelcheck.CheckNetlist(n)
			got := distinctIDs(r)
			if len(got) != len(tc.ids) {
				t.Fatalf("check IDs = %v, want %v\nreport:\n%s", got, tc.ids, r)
			}
			for i := range got {
				if got[i] != tc.ids[i] {
					t.Fatalf("check IDs = %v, want %v\nreport:\n%s", got, tc.ids, r)
				}
			}
			if max, ok := r.Max(); !ok || max != tc.max {
				t.Fatalf("max severity = %v (ok=%v), want %v", max, ok, tc.max)
			}
		})
	}
}

func TestCombLoopReportsCyclePath(t *testing.T) {
	n := loadBroken(t, "comb-loop.gnl")
	loops := modelcheck.CheckNetlist(n).ByID(modelcheck.IDCombLoop)
	if len(loops) != 1 {
		t.Fatalf("want exactly one cycle finding, got %d", len(loops))
	}
	path := loops[0].Path
	if len(path) < 3 || path[0] != path[len(path)-1] {
		t.Fatalf("cycle path %v is not closed", path)
	}
	// The cycle in the fixture is 2 <-> 3.
	for _, id := range path {
		if id != 2 && id != 3 {
			t.Fatalf("cycle path %v strays outside nodes {2, 3}", path)
		}
	}
}

func TestCheckedReaderRejectsBrokenFixtures(t *testing.T) {
	// Every fixture carrying an Error-severity defect must also be
	// rejected by the validating reader; the Warn-only ones parse.
	rejected := map[string]bool{
		"comb-loop.gnl":         true,
		"bad-topo-order.gnl":    true, // forward refs violate the format contract
		"floating-input.gnl":    false,
		"dead-cone.gnl":         false,
		"double-driven-reg.gnl": false, // duplicate names are legal gnl, a model-level defect
	}
	for file, want := range rejected {
		fh, err := os.Open(filepath.Join("testdata", "broken", file))
		if err != nil {
			t.Fatal(err)
		}
		_, err = netlist.Read(fh)
		fh.Close()
		if got := err != nil; got != want {
			t.Errorf("%s: Read rejected=%v, want %v (err=%v)", file, got, want, err)
		}
	}
}

func TestDanglingRefsSkipGraphChecks(t *testing.T) {
	// A netlist whose fanins point outside the node table must produce
	// NL003 without panicking in the graph traversals.
	r := modelcheck.CheckNetlist(mustReadUnchecked(t, "gnl v1\n0 input\n1 inv 7\nout \"y\" 1\n"))
	if len(r.ByID(modelcheck.IDDanglingRef)) == 0 {
		t.Fatalf("want NL003, got:\n%s", r)
	}
	if r.Count(modelcheck.Error) != len(r.ByID(modelcheck.IDDanglingRef)) {
		t.Fatalf("graph checks should be skipped under dangling refs:\n%s", r)
	}
}

func mustReadUnchecked(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ReadUnchecked(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestVerifyTopoOrderDetectsCorruption(t *testing.T) {
	n := mustReadUnchecked(t, "gnl v1\n0 input\n1 inv 0\n2 inv 1\nout \"y\" 2\n")
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if fs := modelcheck.VerifyTopoOrder(n, order); len(fs) != 0 {
		t.Fatalf("clean order flagged: %v", fs)
	}
	// Swap two dependent nodes: 2 consumes 1.
	bad := append([]netlist.NodeID(nil), order...)
	i1, i2 := -1, -1
	for i, id := range bad {
		switch id {
		case 1:
			i1 = i
		case 2:
			i2 = i
		}
	}
	if i1 < 0 || i2 < 0 {
		t.Fatalf("nodes 1 and 2 missing from order %v", order)
	}
	bad[i1], bad[i2] = bad[i2], bad[i1]
	fs := modelcheck.VerifyTopoOrder(n, bad)
	if len(fs) == 0 {
		t.Fatal("corrupted order not flagged")
	}
	for _, f := range fs {
		if f.ID != modelcheck.IDTopoMismatch {
			t.Fatalf("want %s, got %s", modelcheck.IDTopoMismatch, f.ID)
		}
	}
	// Dropping a node must be flagged too.
	fs = modelcheck.VerifyTopoOrder(n, order[:len(order)-1])
	if len(fs) == 0 {
		t.Fatal("truncated order not flagged")
	}
}

func TestVerifyFanoutsDetectsCorruption(t *testing.T) {
	n := mustReadUnchecked(t, "gnl v1\n0 input\n1 inv 0\n2 inv 1\nout \"y\" 2\n")
	clean := n.Fanouts()
	if fs := modelcheck.VerifyFanouts(n, clean); len(fs) != 0 {
		t.Fatalf("clean fanouts flagged: %v", fs)
	}
	bad := make([][]netlist.NodeID, len(clean))
	for i := range clean {
		bad[i] = append([]netlist.NodeID(nil), clean[i]...)
	}
	bad[0] = append(bad[0], 2) // claim input 0 also feeds node 2
	fs := modelcheck.VerifyFanouts(n, bad)
	if len(fs) == 0 {
		t.Fatal("corrupted fanout table not flagged")
	}
	for _, f := range fs {
		if f.ID != modelcheck.IDFanoutMismatch {
			t.Fatalf("want %s, got %s", modelcheck.IDFanoutMismatch, f.ID)
		}
	}
}

func TestReportErrSeverityFilter(t *testing.T) {
	n := loadBroken(t, "floating-input.gnl") // one Warn finding
	r := modelcheck.CheckNetlist(n)
	if err := r.Err(modelcheck.Error); err != nil {
		t.Fatalf("warn-only report must pass fail-on=error: %v", err)
	}
	if err := r.Err(modelcheck.Warn); err == nil {
		t.Fatal("warn-only report must fail fail-on=warn")
	}
}

func TestParseSeverity(t *testing.T) {
	for in, want := range map[string]modelcheck.Severity{
		"info": modelcheck.Info, "warn": modelcheck.Warn,
		"warning": modelcheck.Warn, "Error": modelcheck.Error,
	} {
		got, err := modelcheck.ParseSeverity(in)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := modelcheck.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) must error")
	}
}

// TestSeedDesignIsFindingFree pins the guard contract: the shipped MPU
// model (under every shipped workload) carries no Error-severity
// finding, so enabling the construction-time guard cannot change any
// campaign result.
func TestSeedDesignIsFindingFree(t *testing.T) {
	programs := map[string]*soc.Program{
		"illegal-write": soc.IllegalWriteProgram(8, 0x4000, 0x4fff),
		"illegal-read":  soc.IllegalReadProgram(8, 0x4000, 0x4fff),
		"synthetic":     soc.SyntheticProgram(0x4000, 0x4fff),
	}
	for name, prog := range programs {
		t.Run(name, func(t *testing.T) {
			s, err := soc.New(soc.DefaultConfig(), prog)
			if err != nil {
				t.Fatal(err)
			}
			r := modelcheck.CheckModel(modelcheck.Model{
				Netlist:    s.MPU.Netlist,
				Place:      placement.Place(s.MPU.Netlist),
				Responding: s.MPU.RespondingSignals,
				MaxDepth:   50,
			})
			if r.HasAtLeast(modelcheck.Error) {
				t.Fatalf("seed design has error findings:\n%v", r.Err(modelcheck.Error))
			}
		})
	}
}

func TestCheckPlacementOutOfDie(t *testing.T) {
	n := mustReadUnchecked(t, "gnl v1\n0 input\n1 inv 0\nout \"y\" 1\n")
	p := placement.Place(n)
	if fs := modelcheck.CheckPlacement(n, p); len(fs) != 0 {
		t.Fatalf("legal placement flagged: %v", fs)
	}
}

func TestCheckModelRespondingSignal(t *testing.T) {
	n := mustReadUnchecked(t, "gnl v1\n0 input\n1 inv 0\n2 dff 1 \"r[0]\"\nout \"y\" 2\n")
	r := modelcheck.CheckModel(modelcheck.Model{Netlist: n, Responding: []netlist.NodeID{1}})
	if len(r.ByID(modelcheck.IDRespondingSignal)) == 0 {
		t.Fatalf("non-DFF responding signal not flagged:\n%s", r)
	}
	r = modelcheck.CheckModel(modelcheck.Model{Netlist: n, Responding: []netlist.NodeID{2}})
	if len(r.ByID(modelcheck.IDRespondingSignal)) != 0 {
		t.Fatalf("DFF responding signal flagged:\n%s", r)
	}
}
