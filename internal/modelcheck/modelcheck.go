// Package modelcheck is the static verification layer of the framework:
// a pure-static linter over the gate-level netlist and the surrounding
// SoC model (placement, responding-signal cones). It exists because the
// cross-level flow only produces correct SSF estimates when structural
// invariants of the design hold — acyclic combinational logic, sound
// fanin references, consistent topological order and fanout cones,
// well-formed registers — and a malformed circuit would otherwise either
// panic deep inside the simulators or silently corrupt results.
//
// Every detected problem is a Finding with a stable check ID (NL0xx for
// netlist-structural checks, MC0xx for model-level checks), a severity,
// and a structured location, so tooling (cmd/netlint, CI) can filter and
// assert on them. The package never panics on malformed input: it is
// explicitly designed to run on netlists produced by
// netlist.ReadUnchecked, i.e. circuits that would fail Validate.
package modelcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netlist"
)

// Severity grades a finding.
type Severity int

// Severities, in increasing order of gravity.
const (
	// Info findings are observations that never indicate a broken
	// design (e.g. statistics-level notes).
	Info Severity = iota
	// Warn findings indicate suspicious but simulatable structure
	// (dead logic, floating inputs). The engine guard ignores them.
	Warn
	// Error findings indicate structure the simulators cannot evaluate
	// soundly (cycles, dangling references). The engine guard refuses
	// to construct on them.
	Error
)

// String returns the display name of the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON serializes the severity by name, so -json output reads
// "warn" rather than an opaque integer.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(s.String())), nil
}

// UnmarshalJSON accepts the names MarshalJSON produces.
func (s *Severity) UnmarshalJSON(data []byte) error {
	name, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("modelcheck: severity must be a string: %s", data)
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity converts a -fail-on style name to a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("modelcheck: unknown severity %q (want info|warn|error)", s)
}

// Check IDs. Stable: tests and downstream tooling key on them; never
// renumber, only append.
const (
	// IDCombLoop — the combinational subgraph contains a cycle. The
	// finding's Path holds one full cycle.
	IDCombLoop = "NL001"
	// IDArity — a node's fanin count does not match its cell type.
	IDArity = "NL002"
	// IDDanglingRef — a fanin, DFF enable, or output driver references
	// a node id outside the netlist.
	IDDanglingRef = "NL003"
	// IDFloatingInput — a primary input drives nothing.
	IDFloatingInput = "NL004"
	// IDDeadGate — a combinational gate whose value can never be
	// observed: it reaches no primary output and no register D/enable
	// pin.
	IDDeadGate = "NL005"
	// IDConstLogic — a combinational gate controllable from no primary
	// input and no register: every path into it bottoms out in tie
	// cells, so it computes a constant.
	IDConstLogic = "NL006"
	// IDTopoMismatch — the netlist package's TopoOrder disagrees with
	// an independent from-scratch recomputation (a bug in topo.go or a
	// stale cache, not in the design).
	IDTopoMismatch = "NL007"
	// IDFanoutMismatch — the netlist package's Fanouts cache disagrees
	// with a from-scratch recomputation from the fanin edges.
	IDFanoutMismatch = "NL008"
	// IDMultiDrivenReg — two registers (or two primary outputs) share
	// one name: the register group is multiply driven and name-based
	// lookups (responding signals, hardening maps) are ambiguous.
	IDMultiDrivenReg = "NL009"
	// IDStuckReg — a register that can never change state after reset:
	// its enable is tied to constant 0, or its D input recirculates its
	// own Q with no enable.
	IDStuckReg = "NL010"
	// IDCombForwardRef — a combinational gate's fanin references a
	// higher node id. The graph may still be acyclic, but the id order
	// is no longer a topological order, which the serialization format
	// and several consumers assume for combinational logic.
	IDCombForwardRef = "NL011"

	// IDPlaceOutOfDie — a placed coordinate lies outside the die area.
	IDPlaceOutOfDie = "MC001"
	// IDPlaceCoverage — the placement does not cover the netlist
	// one-to-one (size mismatch).
	IDPlaceCoverage = "MC002"
	// IDRespondingSignal — a responding signal is missing or is not a
	// register.
	IDRespondingSignal = "MC003"
	// IDConeEscape — the responding-signal fanin cone is still growing
	// at the configured unroll depth: faults older than the window can
	// reach the responding signals, so the pre-characterization window
	// under-covers the design.
	IDConeEscape = "MC004"
)

// Finding is one detected problem.
type Finding struct {
	ID  string   `json:"id"`
	Sev Severity `json:"severity"`
	// Node is the primary location (netlist.Invalid when the finding
	// is not tied to one node).
	Node netlist.NodeID `json:"node"`
	// Name is the node's debug name, when it has one.
	Name string `json:"name,omitempty"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`
	// Path, for cycle findings, holds one full cycle (first node
	// repeated at the end).
	Path []netlist.NodeID `json:"path,omitempty"`
}

// String formats the finding as "ID severity: msg (node N "name")".
func (f Finding) String() string {
	loc := ""
	if f.Node != netlist.Invalid {
		loc = fmt.Sprintf(" (node %d", f.Node)
		if f.Name != "" {
			loc += fmt.Sprintf(" %q", f.Name)
		}
		loc += ")"
	}
	return fmt.Sprintf("%s %s: %s%s", f.ID, f.Sev, f.Msg, loc)
}

// Report collects the findings of one check run.
type Report struct {
	Findings []Finding `json:"findings"`
}

// add appends a finding, filling Name from the netlist when available.
func (r *Report) add(n *netlist.Netlist, f Finding) {
	if n != nil && f.Node >= 0 && int(f.Node) < n.NumNodes() && f.Name == "" {
		f.Name = n.Node(f.Node).Name
	}
	r.Findings = append(r.Findings, f)
}

// Count returns the number of findings at exactly the given severity.
func (r *Report) Count(sev Severity) int {
	c := 0
	for _, f := range r.Findings {
		if f.Sev == sev {
			c++
		}
	}
	return c
}

// Max returns the highest severity present, or Info-1 if none. ok is
// false on an empty report.
func (r *Report) Max() (Severity, bool) {
	if len(r.Findings) == 0 {
		return Info, false
	}
	max := Info
	for _, f := range r.Findings {
		if f.Sev > max {
			max = f.Sev
		}
	}
	return max, true
}

// HasAtLeast reports whether any finding is at or above the severity.
func (r *Report) HasAtLeast(sev Severity) bool {
	for _, f := range r.Findings {
		if f.Sev >= sev {
			return true
		}
	}
	return false
}

// ByID returns the findings carrying the given check ID.
func (r *Report) ByID(id string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.ID == id {
			out = append(out, f)
		}
	}
	return out
}

// Sort orders the findings deterministically for presentation: by node,
// then check ID, then message. Check functions append findings in rule
// order, which is already deterministic but interleaves rules; sorted
// output groups everything wrong with one node together and is stable
// across refactors of the rule order.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Msg < b.Msg
	})
}

// Err converts the report into an error when any finding is at or above
// failOn; nil otherwise. The error message lists the qualifying
// findings.
func (r *Report) Err(failOn Severity) error {
	var lines []string
	for _, f := range r.Findings {
		if f.Sev >= failOn {
			lines = append(lines, f.String())
		}
	}
	if len(lines) == 0 {
		return nil
	}
	return fmt.Errorf("modelcheck: %d finding(s):\n  %s", len(lines), strings.Join(lines, "\n  "))
}

// String renders every finding, one per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CheckNetlist runs every netlist-structural check (NL0xx) and returns
// the report. It accepts malformed netlists (from ReadUnchecked): when
// dangling references are present, checks that require a sound graph are
// skipped rather than panicking.
func CheckNetlist(n *netlist.Netlist) *Report {
	r := &Report{}
	refsOK := checkArityAndRefs(n, r)
	checkNames(n, r)
	checkCombForwardRefs(n, r)
	if !refsOK {
		// Graph traversals below index by fanin id; a dangling
		// reference (already reported as NL003) would panic them.
		return r
	}
	checkCombCycles(n, r)
	checkFloatingInputs(n, r)
	checkObservability(n, r)
	checkControllability(n, r)
	checkStuckRegs(n, r)
	r.crossCheckTopo(n)
	r.crossCheckFanouts(n)
	return r
}

// checkArityAndRefs verifies NL002/NL003 and reports whether every
// reference (fanin, enable, output driver) lands inside the netlist.
func checkArityAndRefs(n *netlist.Netlist, r *Report) bool {
	ok := true
	num := n.NumNodes()
	for i := 0; i < num; i++ {
		id := netlist.NodeID(i)
		node := n.Node(id)
		if want := node.Type.FaninCount(); want >= 0 {
			if len(node.Fanin) != want {
				r.add(n, Finding{ID: IDArity, Sev: Error, Node: id,
					Msg: fmt.Sprintf("%v has %d fanins, want %d", node.Type, len(node.Fanin), want)})
			}
		} else if len(node.Fanin) < 2 {
			r.add(n, Finding{ID: IDArity, Sev: Error, Node: id,
				Msg: fmt.Sprintf("%v has %d fanins, want >= 2", node.Type, len(node.Fanin))})
		}
		for _, f := range node.Fanin {
			if f < 0 || int(f) >= num {
				ok = false
				r.add(n, Finding{ID: IDDanglingRef, Sev: Error, Node: id,
					Msg: fmt.Sprintf("%v fanin %d out of range [0,%d)", node.Type, f, num)})
			}
		}
		if node.Type == netlist.DFF && node.En != netlist.Invalid {
			if node.En < 0 || int(node.En) >= num {
				ok = false
				r.add(n, Finding{ID: IDDanglingRef, Sev: Error, Node: id,
					Msg: fmt.Sprintf("DFF enable %d out of range [0,%d)", node.En, num)})
			}
		}
	}
	for _, p := range n.Outputs() {
		if p.Node < 0 || int(p.Node) >= num {
			ok = false
			r.add(n, Finding{ID: IDDanglingRef, Sev: Error, Node: netlist.Invalid, Name: p.Name,
				Msg: fmt.Sprintf("output %q driver %d out of range [0,%d)", p.Name, p.Node, num)})
		}
	}
	return ok
}

// checkNames verifies NL009: unique register names and unique output
// names. Two DFFs with the same name form a multiply-driven register
// group — name-keyed consumers (hardening maps, responding-signal
// lookup, register groups) would silently pick one of them.
func checkNames(n *netlist.Netlist, r *Report) {
	regNames := make(map[string]netlist.NodeID)
	for _, reg := range n.Regs() {
		name := n.Node(reg).Name
		if name == "" {
			continue
		}
		if prev, dup := regNames[name]; dup {
			r.add(n, Finding{ID: IDMultiDrivenReg, Sev: Error, Node: reg, Name: name,
				Msg: fmt.Sprintf("register name %q already driven by node %d", name, prev)})
			continue
		}
		regNames[name] = reg
	}
	outNames := make(map[string]netlist.NodeID)
	for _, p := range n.Outputs() {
		if prev, dup := outNames[p.Name]; dup {
			r.add(n, Finding{ID: IDMultiDrivenReg, Sev: Error, Node: p.Node, Name: p.Name,
				Msg: fmt.Sprintf("output name %q already driven by node %d", p.Name, prev)})
			continue
		}
		outNames[p.Name] = p.Node
	}
}

// checkCombForwardRefs verifies NL011: combinational fanins must point
// backwards (id order is a topo order for combinational logic; only DFF
// data/enable nets legitimately point forward).
func checkCombForwardRefs(n *netlist.Netlist, r *Report) {
	for i := 0; i < n.NumNodes(); i++ {
		id := netlist.NodeID(i)
		node := n.Node(id)
		if !node.Type.IsCombinational() {
			continue
		}
		for _, f := range node.Fanin {
			if f >= id {
				r.add(n, Finding{ID: IDCombForwardRef, Sev: Warn, Node: id,
					Msg: fmt.Sprintf("%v fanin %d is a forward (or self) reference; combinational ids must be topologically ordered", node.Type, f)})
			}
		}
	}
}

// checkCombCycles verifies NL001 with an iterative three-color DFS over
// the combinational subgraph, reporting one full cycle path per SCC
// entered.
func checkCombCycles(n *netlist.Netlist, r *Report) {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // finished
	)
	num := n.NumNodes()
	color := make([]byte, num)
	// Iterative DFS along fanin edges, restricted to combinational
	// nodes (registers legitimately close cycles).
	type frame struct {
		id   netlist.NodeID
		next int
	}
	var stack []frame
	var path []netlist.NodeID
	for start := 0; start < num; start++ {
		sid := netlist.NodeID(start)
		if color[sid] != white || !n.Node(sid).Type.IsCombinational() {
			continue
		}
		color[sid] = gray
		stack = append(stack[:0], frame{id: sid})
		path = append(path[:0], sid)
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			node := n.Node(fr.id)
			advanced := false
			for fr.next < len(node.Fanin) {
				f := node.Fanin[fr.next]
				fr.next++
				if !n.Node(f).Type.IsCombinational() {
					continue
				}
				switch color[f] {
				case white:
					color[f] = gray
					stack = append(stack, frame{id: f})
					path = append(path, f)
					advanced = true
				case gray:
					// Found a cycle: path from f to the top of the
					// DFS path, closed back to f.
					cyc := extractCycle(path, f)
					r.add(n, Finding{ID: IDCombLoop, Sev: Error, Node: f,
						Msg: "combinational cycle: " + formatPath(n, cyc), Path: cyc})
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[fr.id] = black
				stack = stack[:len(stack)-1]
				path = path[:len(path)-1]
			}
		}
	}
}

// extractCycle returns the cycle closing at node f: the suffix of the
// DFS path starting at f, with f appended to close the loop.
func extractCycle(path []netlist.NodeID, f netlist.NodeID) []netlist.NodeID {
	for i, id := range path {
		if id == f {
			cyc := append([]netlist.NodeID(nil), path[i:]...)
			return append(cyc, f)
		}
	}
	// f not on the path (cannot happen with a correct DFS); report it
	// alone rather than nothing.
	return []netlist.NodeID{f, f}
}

func formatPath(n *netlist.Netlist, path []netlist.NodeID) string {
	parts := make([]string, len(path))
	for i, id := range path {
		if name := n.Node(id).Name; name != "" {
			parts[i] = fmt.Sprintf("%d(%s)", id, name)
		} else {
			parts[i] = fmt.Sprintf("%d(%v)", id, n.Node(id).Type)
		}
	}
	return strings.Join(parts, " <- ")
}

// checkFloatingInputs verifies NL004: every primary input should feed
// something (fanin edge, DFF enable, or primary output).
func checkFloatingInputs(n *netlist.Netlist, r *Report) {
	used := make([]bool, n.NumNodes())
	for i := 0; i < n.NumNodes(); i++ {
		node := n.Node(netlist.NodeID(i))
		for _, f := range node.Fanin {
			used[f] = true
		}
		if node.Type == netlist.DFF && node.En != netlist.Invalid {
			used[node.En] = true
		}
	}
	for _, p := range n.Outputs() {
		used[p.Node] = true
	}
	for _, in := range n.Inputs() {
		if !used[in] {
			r.add(n, Finding{ID: IDFloatingInput, Sev: Warn, Node: in,
				Msg: "primary input drives nothing"})
		}
	}
}

// checkObservability verifies NL005: a combinational gate whose value
// reaches no primary output and no register D/enable pin is dead — its
// computation can never influence anything the framework observes.
func checkObservability(n *netlist.Netlist, r *Report) {
	num := n.NumNodes()
	observed := make([]bool, num)
	var queue []netlist.NodeID
	mark := func(id netlist.NodeID) {
		if !observed[id] {
			observed[id] = true
			queue = append(queue, id)
		}
	}
	for _, p := range n.Outputs() {
		mark(p.Node)
	}
	for _, reg := range n.Regs() {
		node := n.Node(reg)
		for _, f := range node.Fanin {
			mark(f)
		}
		if node.En != netlist.Invalid {
			mark(node.En)
		}
	}
	// Walk backwards through combinational logic only: a value behind a
	// register boundary is observed via that register.
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		node := n.Node(id)
		if !node.Type.IsCombinational() {
			continue
		}
		for _, f := range node.Fanin {
			mark(f)
		}
	}
	for i := 0; i < num; i++ {
		id := netlist.NodeID(i)
		t := n.Node(id).Type
		if t.IsCombinational() && t != netlist.Const0 && t != netlist.Const1 && !observed[id] {
			r.add(n, Finding{ID: IDDeadGate, Sev: Warn, Node: id,
				Msg: fmt.Sprintf("%v output is unobservable (reaches no output or register)", t)})
		}
	}
}

// checkControllability verifies NL006: a combinational gate fed (transitively)
// only by tie cells computes a constant.
func checkControllability(n *netlist.Netlist, r *Report) {
	num := n.NumNodes()
	// controllable[i]: node i's value can be influenced by a primary
	// input or register. Fixed point over fanin edges in id order is
	// not enough with forward refs, so iterate until stable (cheap:
	// netlists are shallow and this converges in O(depth) passes, one
	// pass in the common topologically-ordered case).
	controllable := make([]bool, num)
	for _, in := range n.Inputs() {
		controllable[in] = true
	}
	for _, reg := range n.Regs() {
		controllable[reg] = true
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < num; i++ {
			id := netlist.NodeID(i)
			node := n.Node(id)
			if controllable[id] || !node.Type.IsCombinational() {
				continue
			}
			for _, f := range node.Fanin {
				if controllable[f] {
					controllable[id] = true
					changed = true
					break
				}
			}
		}
	}
	for i := 0; i < num; i++ {
		id := netlist.NodeID(i)
		t := n.Node(id).Type
		if t.IsCombinational() && t != netlist.Const0 && t != netlist.Const1 && !controllable[id] {
			r.add(n, Finding{ID: IDConstLogic, Sev: Warn, Node: id,
				Msg: fmt.Sprintf("%v is driven only by tie cells and computes a constant", t)})
		}
	}
}

// checkStuckRegs verifies NL010: registers that can never change state.
func checkStuckRegs(n *netlist.Netlist, r *Report) {
	for _, reg := range n.Regs() {
		node := n.Node(reg)
		if len(node.Fanin) != 1 {
			continue // arity finding already reported
		}
		if node.En != netlist.Invalid && n.Node(node.En).Type == netlist.Const0 {
			r.add(n, Finding{ID: IDStuckReg, Sev: Warn, Node: reg,
				Msg: "register enable is tied to constant 0; it can never load"})
			continue
		}
		if node.Fanin[0] == reg && node.En == netlist.Invalid {
			r.add(n, Finding{ID: IDStuckReg, Sev: Warn, Node: reg,
				Msg: "register recirculates its own output with no enable; it can never change"})
		}
	}
}

// crossCheckTopo verifies NL007: the package's TopoOrder against this
// package's independent recomputation (checkCombCycles already proved
// acyclicity when we get here).
func (r *Report) crossCheckTopo(n *netlist.Netlist) {
	order, err := n.TopoOrder()
	if err != nil {
		// The cycle itself is NL001; TopoOrder agreeing that the graph
		// is cyclic is consistent, not a mismatch.
		return
	}
	r.Findings = append(r.Findings, VerifyTopoOrder(n, order)...)
}

// VerifyTopoOrder independently validates a claimed topological order of
// the combinational subgraph: every combinational node exactly once, and
// every node after all of its combinational fanins. It is exported so
// tests can feed corrupted orders; CheckNetlist calls it with the
// netlist's own TopoOrder result.
func VerifyTopoOrder(n *netlist.Netlist, order []netlist.NodeID) []Finding {
	var out []Finding
	num := n.NumNodes()
	pos := make([]int, num)
	for i := range pos {
		pos[i] = -1
	}
	for p, id := range order {
		if id < 0 || int(id) >= num {
			out = append(out, Finding{ID: IDTopoMismatch, Sev: Error, Node: netlist.Invalid,
				Msg: fmt.Sprintf("topo order position %d holds out-of-range node %d", p, id)})
			continue
		}
		if !n.Node(id).Type.IsCombinational() {
			out = append(out, Finding{ID: IDTopoMismatch, Sev: Error, Node: id,
				Msg: fmt.Sprintf("topo order contains non-combinational node at position %d", p)})
			continue
		}
		if pos[id] >= 0 {
			out = append(out, Finding{ID: IDTopoMismatch, Sev: Error, Node: id,
				Msg: fmt.Sprintf("node appears twice in topo order (positions %d and %d)", pos[id], p)})
			continue
		}
		pos[id] = p
	}
	numComb := 0
	for i := 0; i < num; i++ {
		id := netlist.NodeID(i)
		node := n.Node(id)
		if !node.Type.IsCombinational() {
			continue
		}
		numComb++
		if pos[id] < 0 {
			out = append(out, Finding{ID: IDTopoMismatch, Sev: Error, Node: id,
				Msg: "combinational node missing from topo order"})
			continue
		}
		for _, f := range node.Fanin {
			if f < 0 || int(f) >= num || !n.Node(f).Type.IsCombinational() {
				continue
			}
			if pos[f] < 0 || pos[f] >= pos[id] {
				out = append(out, Finding{ID: IDTopoMismatch, Sev: Error, Node: id,
					Msg: fmt.Sprintf("node at position %d precedes its fanin %d (position %d)", pos[id], f, pos[f])})
			}
		}
	}
	if len(order) > numComb {
		out = append(out, Finding{ID: IDTopoMismatch, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("topo order has %d entries for %d combinational nodes", len(order), numComb)})
	}
	return out
}

// crossCheckFanouts verifies NL008: the netlist's cached Fanouts against
// a from-scratch recomputation from the fanin edges.
func (r *Report) crossCheckFanouts(n *netlist.Netlist) {
	r.Findings = append(r.Findings, VerifyFanouts(n, n.Fanouts())...)
}

// VerifyFanouts independently validates a claimed fanout table against
// the fanin edges. Exported for the same reason as VerifyTopoOrder.
func VerifyFanouts(n *netlist.Netlist, fanouts [][]netlist.NodeID) []Finding {
	var out []Finding
	num := n.NumNodes()
	if len(fanouts) != num {
		out = append(out, Finding{ID: IDFanoutMismatch, Sev: Error, Node: netlist.Invalid,
			Msg: fmt.Sprintf("fanout table has %d entries for %d nodes", len(fanouts), num)})
		return out
	}
	want := make([][]netlist.NodeID, num)
	for i := 0; i < num; i++ {
		for _, f := range n.Node(netlist.NodeID(i)).Fanin {
			if f >= 0 && int(f) < num {
				want[f] = append(want[f], netlist.NodeID(i))
			}
		}
	}
	for i := 0; i < num; i++ {
		got := append([]netlist.NodeID(nil), fanouts[i]...)
		exp := want[i]
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		sort.Slice(exp, func(a, b int) bool { return exp[a] < exp[b] })
		if len(got) != len(exp) {
			out = append(out, Finding{ID: IDFanoutMismatch, Sev: Error, Node: netlist.NodeID(i),
				Msg: fmt.Sprintf("fanout list has %d entries, recomputation finds %d", len(got), len(exp))})
			continue
		}
		for j := range got {
			if got[j] != exp[j] {
				out = append(out, Finding{ID: IDFanoutMismatch, Sev: Error, Node: netlist.NodeID(i),
					Msg: fmt.Sprintf("fanout list %v disagrees with recomputation %v", got, exp)})
				break
			}
		}
	}
	return out
}
