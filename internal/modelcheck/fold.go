// Netlist folding: the canonical value-preserving simplification of a
// design's combinational logic, shared by logicsim's compile-time
// peephole pass and the PL-family plan verifier. Both sides derive the
// fold from the netlist alone — the compiler uses it to pack a smaller
// op stream, the verifier re-derives it to decide whether a plan op
// that differs from the raw netlist node is a legitimate rewrite or a
// corruption.
//
// Two rewrite families are covered, both exact at the bit level for
// every lane:
//
//   - buf elision: a consumer of a Buf (or a chain of Bufs) may read
//     the chain's root slot directly — the Buf op still writes its own
//     slot (every node's value stays observable), but nothing needs to
//     read it;
//   - constant folding: a node whose value is statically known in every
//     lane becomes a Const op, and known-constant fanins that are
//     identity elements of their consumer (1 for AND-family, 0 for
//     OR-family, either for XOR-family with parity tracking, a known
//     select for Mux2) are dropped from the consumer's fanin list,
//     specializing the consumer's opcode when the list shrinks.
//
// The fold never removes an op: each combinational node keeps exactly
// one op computing its exact value, so PL001 coverage and the
// fixed-seed bit-identity of every simulation result are preserved by
// construction.
package modelcheck

import "repro/internal/netlist"

// constUnknown marks a node whose value is not statically known.
const constUnknown int8 = -1

// Fold is the canonical folded form of a netlist's combinational
// logic. It is immutable after FoldNetlist.
type Fold struct {
	n *netlist.Netlist
	// konst[id] is 0 or 1 when node id's value is statically known in
	// every lane, constUnknown otherwise.
	konst []int8
	// alias[id] is the slot a folded consumer reads for node id's
	// value: the root of id's Buf chain, or id itself. Known-constant
	// nodes alias to themselves (their own op writes the constant).
	alias []netlist.NodeID
}

// FoldNetlist derives the canonical fold of a netlist. The netlist
// must be structurally sound enough to topo-order; if it is not (e.g.
// a combinational cycle), the identity fold is returned — no constant
// is known and every node aliases to itself — so callers degrade to
// the unfolded comparison instead of failing.
func FoldNetlist(n *netlist.Netlist) *Fold {
	nn := n.NumNodes()
	f := &Fold{
		n:     n,
		konst: make([]int8, nn),
		alias: make([]netlist.NodeID, nn),
	}
	for id := 0; id < nn; id++ {
		f.konst[id] = constUnknown
		f.alias[id] = netlist.NodeID(id)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return f
	}
	for _, id := range order {
		node := n.Node(id)
		f.konst[id] = foldConst(node, f.konst)
		if f.konst[id] == constUnknown && node.Type == netlist.Buf {
			f.alias[id] = f.alias[node.Fanin[0]]
		}
	}
	return f
}

// foldConst propagates static constants through one cell. Fanins are
// looked up in konst, which is complete for everything earlier in topo
// order; inputs and registers stay unknown.
func foldConst(node *netlist.Node, konst []int8) int8 {
	known := func(v int8) bool { return v != constUnknown }
	switch node.Type {
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return 1
	case netlist.Buf:
		return konst[node.Fanin[0]]
	case netlist.Inv:
		if v := konst[node.Fanin[0]]; known(v) {
			return 1 - v
		}
	case netlist.And, netlist.Nand:
		out, all := int8(1), true
		for _, fi := range node.Fanin {
			v := konst[fi]
			if v == 0 {
				out, all = 0, true
				break
			}
			if !known(v) {
				all = false
			}
		}
		if all {
			if node.Type == netlist.Nand {
				return 1 - out
			}
			return out
		}
	case netlist.Or, netlist.Nor:
		out, all := int8(0), true
		for _, fi := range node.Fanin {
			v := konst[fi]
			if v == 1 {
				out, all = 1, true
				break
			}
			if !known(v) {
				all = false
			}
		}
		if all {
			if node.Type == netlist.Nor {
				return 1 - out
			}
			return out
		}
	case netlist.Xor, netlist.Xnor:
		parity, all := int8(0), true
		for _, fi := range node.Fanin {
			v := konst[fi]
			if !known(v) {
				all = false
				break
			}
			parity ^= v
		}
		if all {
			if node.Type == netlist.Xnor {
				return 1 - parity
			}
			return parity
		}
	case netlist.Mux2:
		a, b, sel := konst[node.Fanin[0]], konst[node.Fanin[1]], konst[node.Fanin[2]]
		if sel == 0 {
			return a
		}
		if sel == 1 {
			return b
		}
		if known(a) && a == b {
			return a
		}
	}
	return constUnknown
}

// Const reports node id's statically known value (0 or 1), or
// constUnknown (-1) when the value depends on inputs or registers.
func (f *Fold) Const(id netlist.NodeID) int8 { return f.konst[id] }

// Ref is the slot a folded consumer reads for node id's value: the
// root of its Buf chain, or id itself (including for known-constant
// nodes, whose own op writes the constant into their slot).
func (f *Fold) Ref(id netlist.NodeID) netlist.NodeID {
	if f.konst[id] != constUnknown {
		return id
	}
	return f.alias[id]
}

// Expected returns the canonical folded op for a combinational node:
// the cell type the op computes and its fanin slots, after buf-chain
// redirection and identity-constant elimination. The result computes
// exactly the node's value; when no rewrite applies it equals the raw
// netlist form (with fanins mapped through Ref, which is then the
// identity).
func (f *Fold) Expected(id netlist.NodeID) (netlist.CellType, []netlist.NodeID) {
	node := f.n.Node(id)
	switch f.konst[id] {
	case 0:
		return netlist.Const0, nil
	case 1:
		return netlist.Const1, nil
	}
	switch t := node.Type; t {
	case netlist.Buf, netlist.Inv:
		return t, []netlist.NodeID{f.Ref(node.Fanin[0])}
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
		// The identity element (1 for AND-family, 0 for OR-family) is
		// dropped; the opposite constant cannot survive here — it
		// would have made the node itself constant.
		identity := int8(1)
		if t == netlist.Or || t == netlist.Nor {
			identity = 0
		}
		fan := make([]netlist.NodeID, 0, len(node.Fanin))
		for _, fi := range node.Fanin {
			if f.konst[fi] == identity {
				continue
			}
			fan = append(fan, f.Ref(fi))
		}
		if len(fan) == 1 {
			if t == netlist.Nand || t == netlist.Nor {
				return netlist.Inv, fan
			}
			return netlist.Buf, fan
		}
		return t, fan
	case netlist.Xor, netlist.Xnor:
		// Constant fanins fold into the output polarity: each known 1
		// flips it, each known 0 vanishes.
		parity := int8(0)
		fan := make([]netlist.NodeID, 0, len(node.Fanin))
		for _, fi := range node.Fanin {
			if v := f.konst[fi]; v != constUnknown {
				parity ^= v
				continue
			}
			fan = append(fan, f.Ref(fi))
		}
		inverted := t == netlist.Xnor
		if parity == 1 {
			inverted = !inverted
		}
		if len(fan) == 1 {
			if inverted {
				return netlist.Inv, fan
			}
			return netlist.Buf, fan
		}
		if inverted {
			return netlist.Xnor, fan
		}
		return netlist.Xor, fan
	case netlist.Mux2:
		a, b, sel := node.Fanin[0], node.Fanin[1], node.Fanin[2]
		switch f.konst[sel] {
		case 0:
			return netlist.Buf, []netlist.NodeID{f.Ref(a)}
		case 1:
			return netlist.Buf, []netlist.NodeID{f.Ref(b)}
		}
		return netlist.Mux2, []netlist.NodeID{f.Ref(a), f.Ref(b), f.Ref(sel)}
	default:
		fan := make([]netlist.NodeID, len(node.Fanin))
		for i, fi := range node.Fanin {
			fan[i] = f.Ref(fi)
		}
		return node.Type, fan
	}
}

// ExpectedConsumed marks every slot the folded plan reads: the fanins
// of each combinational node's folded op. Latch sources, DFF enables,
// and primary outputs are the caller's business (they are not folded).
func (f *Fold) ExpectedConsumed() []bool {
	nn := f.n.NumNodes()
	consumed := make([]bool, nn)
	for id := 0; id < nn; id++ {
		nid := netlist.NodeID(id)
		if !f.n.Node(nid).Type.IsCombinational() {
			continue
		}
		_, fan := f.Expected(nid)
		for _, fi := range fan {
			consumed[fi] = true
		}
	}
	return consumed
}
