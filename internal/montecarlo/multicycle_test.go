package montecarlo_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
)

func TestMultiCycleStrikeAccumulatesFlips(t *testing.T) {
	fw := framework(t)
	ev := evaluation(t)
	// Aim a wide, well-timed strike at the security target. The
	// single-cycle reference hits the decision cycle (t=0, where the
	// request is in flight and the logic is sensitized); the
	// multi-cycle strike starts two cycles earlier and spans the same
	// decision cycle, so its accumulated flip set includes at least
	// the reference's.
	dm := fw.Opts.Delay
	mk := func(tt, cycles int) fault.Sample {
		return fault.Sample{
			T:      tt,
			Center: fw.SecurityTarget(),
			Radius: 2.0,
			Width:  dm.ClockPeriod * 1.2,
			Time:   dm.ClockPeriod * 0.05,
			Cycles: cycles,
		}
	}
	rng := rand.New(rand.NewSource(1))
	r1 := ev.Engine.RunOnce(rng, mk(0, 1), montecarlo.GateAttack)
	r3 := ev.Engine.RunOnce(rng, mk(2, 3), montecarlo.GateAttack)
	if len(r1.Flipped) == 0 {
		t.Fatal("single-cycle strike latched nothing; test setup broken")
	}
	if len(r3.Flipped) < len(r1.Flipped) {
		t.Errorf("3-cycle strike flipped %d regs, single %d", len(r3.Flipped), len(r1.Flipped))
	}
	if r3.Class != montecarlo.Mixed || r3.Path != montecarlo.PathRTL {
		t.Errorf("multi-cycle run class/path = %v/%v, want Mixed/RTL", r3.Class, r3.Path)
	}
}

func TestMultiCycleClampedAtTarget(t *testing.T) {
	fw := framework(t)
	ev := evaluation(t)
	dm := fw.Opts.Delay
	// t = 0 with a 10-cycle disturbance: only the target cycle itself
	// can be injected. The run must terminate normally.
	s := fault.Sample{
		T:      0,
		Center: fw.SecurityTarget(),
		Radius: 2.0,
		Width:  dm.ClockPeriod * 1.2,
		Time:   dm.ClockPeriod * 0.05,
		Cycles: 10,
	}
	rng := rand.New(rand.NewSource(2))
	res := ev.Engine.RunOnce(rng, s, montecarlo.GateAttack)
	if !res.Success && len(res.Flipped) == 0 {
		t.Error("clamped strike latched nothing despite favorable pulse")
	}
}

func TestMultiCycleTechniqueSampling(t *testing.T) {
	fw := framework(t)
	tech := fault.DefaultRadiation()
	tech.ImpactCycles = 4
	attack, err := fault.NewAttack("multi", 10, tech, fw.CandidateBlock(0.125), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if got := attack.SampleNominal(rng).Cycles; got != 4 {
			t.Fatalf("sample cycles = %d", got)
		}
	}
	// Default: 1.
	if fault.DefaultRadiation().Cycles() != 1 {
		t.Error("default cycles should be 1")
	}
}

func TestMultiCycleRaisesSSF(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fw := framework(t)
	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	tech := fault.DefaultRadiation()
	tech.ImpactCycles = 3
	attack, err := fault.NewAttack("multi", 50, tech, fw.CandidateBlock(0.125), nil)
	if err != nil {
		t.Fatal(err)
	}
	evMulti, err := fw.NewEvaluationAttack(prog, attack)
	if err != nil {
		t.Fatal(err)
	}
	evSingle := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 8000, Seed: 6}
	multi, err := evMulti.Engine.RunCampaign(context.Background(), evMulti.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	single, err := evSingle.Engine.RunCampaign(context.Background(), evSingle.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Three disturbed cycles give the transient three chances to
	// catch the latch window: substantially more successes.
	if multi.Successes <= single.Successes {
		t.Errorf("multi-cycle %d successes vs single %d", multi.Successes, single.Successes)
	}
}
