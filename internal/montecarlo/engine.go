// Package montecarlo is the cross-level evaluation engine (Section 5 of
// the paper): it combines the RTL-level golden run with checkpoints, the
// two-step importance sampling, gate-level fault injection of the
// sampled cycle, and — depending on which registers latch errors —
// analytical evaluation or an RTL resume compared against the golden
// outcome. Its product is the System Security Factor estimate.
package montecarlo

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/analytical"
	"repro/internal/fault"
	"repro/internal/modelcheck"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/precharac"
	"repro/internal/soc"
	"repro/internal/timingsim"
)

// Options tunes engine construction.
type Options struct {
	// SkipModelCheck disables the static verification pass New runs
	// over the MPU netlist and placement before building the engine.
	// The guard only rejects error-severity findings (cycles, dangling
	// references, multiply-driven registers) — structure the
	// simulators cannot evaluate soundly — so skipping it never
	// changes results on a valid design; it only removes the O(nodes)
	// construction cost and the protection against malformed ones.
	SkipModelCheck bool
	// Lanes is the default virtual lane count of batched resumes (64,
	// 256, or 512 — i.e. 1, 4, or 8 lane groups of 64); 0 means
	// DefaultLanes. Campaigns can override it per run through
	// CampaignOptions.Lanes. The lane width never changes results:
	// fixed-seed campaigns are bit-identical at every width.
	Lanes int
}

// DefaultLanes is the default virtual lane count of batched resumes.
const DefaultLanes = 512

// laneGroups maps a virtual lane count to its 64-lane group count.
func laneGroups(lanes int) (int, error) {
	switch lanes {
	case 64:
		return 1, nil
	case 256:
		return 4, nil
	case 512:
		return 8, nil
	default:
		return 0, fmt.Errorf("montecarlo: unsupported lane count %d (want 64, 256, or 512)", lanes)
	}
}

// Mode selects what the strike physically hits.
type Mode int

// Attack modes.
const (
	// GateAttack injects voltage transients at combinational gates and
	// lets the timed gate-level simulation decide which registers
	// latch errors — the paper's primary model.
	GateAttack Mode = iota
	// RegisterAttack flips the struck registers directly (classic
	// SEU model on sequential elements), used by the paper's Fig 7(b)
	// and Fig 10(b) comparisons.
	RegisterAttack
)

// String returns the display name.
func (m Mode) String() string {
	switch m {
	case GateAttack:
		return "gate"
	case RegisterAttack:
		return "register"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode is the inverse of Mode.String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "gate":
		return GateAttack, nil
	case "register":
		return RegisterAttack, nil
	default:
		return 0, fmt.Errorf("montecarlo: unknown attack mode %q", s)
	}
}

// OutcomeClass buckets where the latched errors ended up (Fig 10(a)).
type OutcomeClass int

// Outcome classes.
const (
	// Masked: no register latched an error.
	Masked OutcomeClass = iota
	// MemoryOnly: errors confined to memory-type registers.
	MemoryOnly
	// Mixed: at least one computation-type register got an error.
	Mixed
)

// String returns the display name.
func (c OutcomeClass) String() string {
	switch c {
	case Masked:
		return "masked"
	case MemoryOnly:
		return "memory-only"
	case Mixed:
		return "both"
	default:
		return fmt.Sprintf("OutcomeClass(%d)", int(c))
	}
}

// EvalPath records how a run's outcome was decided.
type EvalPath int

// Evaluation paths.
const (
	// PathMasked: nothing latched, outcome known immediately.
	PathMasked EvalPath = iota
	// PathAnalytical: memory-type-only errors, closed-form policy
	// evaluation.
	PathAnalytical
	// PathPruned: computation-type errors whose lifetime cannot reach
	// the target cycle — failure without resuming.
	PathPruned
	// PathRTL: full RTL resume to the marked access.
	PathRTL
)

// String returns the display name.
func (p EvalPath) String() string {
	switch p {
	case PathMasked:
		return "masked"
	case PathAnalytical:
		return "analytical"
	case PathPruned:
		return "pruned"
	case PathRTL:
		return "rtl"
	default:
		return fmt.Sprintf("EvalPath(%d)", int(p))
	}
}

// RunResult is the outcome of a single fault-attack run.
type RunResult struct {
	Success bool
	Class   OutcomeClass
	Path    EvalPath
	// Flipped are the registers that latched errors (post-hardening).
	Flipped []netlist.NodeID
	// ResumeCycles counts RTL cycles simulated after injection.
	ResumeCycles int
}

// Golden holds the golden-run artifacts: checkpoints, the target cycle,
// the access log, and the fault-free outcome.
type Golden struct {
	Checkpoints []*soc.Checkpoint
	Interval    int
	// TargetCycle is Tt: the cycle the marked access's MPU decision
	// latches.
	TargetCycle int
	// MarkedIssue is the cycle the marked access was driven.
	MarkedIssue int
	// SetupEnd is the first user-mode cycle (MPU configured).
	SetupEnd int
	// FinalCycle is when the golden run halted.
	FinalCycle int
	// Accesses is the full golden access log.
	Accesses []soc.AccessEvent
	// Policy is the configured protection policy.
	Policy analytical.Policy
	// StateHashes[c] is the golden SoC state digest at cycle c
	// (0 <= c <= FinalCycle). An RTL resume whose faulty state hashes
	// equal to the golden hash at the same cycle is back on the golden
	// trajectory and can stop early with the golden outcome.
	StateHashes []uint64
	// BusTrace[c] is the golden system/MPU interface activity at cycle
	// c: the values driven onto the MPU ports and the responses the
	// system consumed. The lane-batched resume replays it into a forked
	// simulator instead of re-executing the behavioural core.
	BusTrace []soc.BusTraceEntry
}

// Engine evaluates fault attacks on one SoC + benchmark. It is not safe
// for concurrent use; create one engine per goroutine (sharing the MPU
// elaboration via soc.WithMPU is fine).
type Engine struct {
	SoC    *soc.SoC
	Attack *fault.Attack
	Place  *placement.Placement
	Timing *timingsim.Simulator

	// Char enables memory/computation classification, the analytical
	// path and lifetime pruning; nil forces RTL for everything.
	Char *precharac.Characterization
	// Analytical enables the closed-form path for memory-type-only
	// errors; nil forces RTL for them.
	Analytical *analytical.Evaluator

	// Hardened maps a register to its resilience factor F: an error
	// that would latch there survives with probability 1/F
	// (soft-error-resilient cell designs, refs [19, 20] of the
	// paper).
	Hardened map[netlist.NodeID]float64

	// ResumeMargin bounds the RTL resume beyond the golden final
	// cycle (faulted runs can run longer, e.g. skipped traps).
	ResumeMargin int

	// StateCacheSize bounds the injection-window state cache: an LRU
	// of exact-cycle snapshots keyed by the warm-up target cycle, so
	// re-stepping from the nearest golden checkpoint is paid once per
	// distinct cycle instead of once per sample (every sample's
	// injection cycle falls in the same small TRange window). Set 0 to
	// disable; New sets DefaultStateCacheSize.
	StateCacheSize int
	// DisableConvergenceCut turns off the golden-hash early exit of
	// RTL resumes: with the cut enabled (default), a resume whose
	// state digest matches the golden run's at the same cycle stops
	// immediately with the golden outcome (attack failed). Outcomes
	// are identical either way; only ResumeCycles changes.
	DisableConvergenceCut bool

	// Lanes is the engine's default virtual lane count for batched
	// resumes (64, 256, or 512), set from Options.Lanes at
	// construction. CampaignOptions.Lanes overrides it per campaign.
	Lanes int

	golden  *Golden
	memType map[netlist.NodeID]bool
	cache   *stateCache
	batch   *batchState
	// cvTab caches the control-variate table (immutable once built).
	cvTab *cvTable

	// Per-run scratch (Engine is single-goroutine).
	seen    map[netlist.NodeID]bool
	flipBuf []netlist.NodeID
	// spots caches radius queries around repeated strike centers (the
	// candidate set is finite, so centers recur constantly); it is
	// engine-owned because SpotIndex is not concurrency-safe.
	spots        *placement.SpotIndex
	strikeWidths []float64
}

// laneCount resolves a per-campaign lane override against the engine
// default (an engine built as a bare struct literal gets DefaultLanes).
func (e *Engine) laneCount(opt int) int {
	if opt != 0 {
		return opt
	}
	if e.Lanes != 0 {
		return e.Lanes
	}
	return DefaultLanes
}

// spotIndex returns the engine's lazily-built radius-query cache.
func (e *Engine) spotIndex() *placement.SpotIndex {
	if e.spots == nil {
		e.spots = e.Place.NewSpotIndex()
	}
	return e.spots
}

// DefaultStateCacheSize is the default bound of the injection-window
// state cache; it comfortably covers the TRange windows used by the
// paper's experiments.
const DefaultStateCacheSize = 128

// stateCache is a small LRU of exact-cycle SoC snapshots.
type stateCache struct {
	limit int
	tick  int64
	at    map[int]*cacheEntry
}

type cacheEntry struct {
	cp   *soc.Checkpoint
	used int64
}

func newStateCache(limit int) *stateCache {
	return &stateCache{limit: limit, at: make(map[int]*cacheEntry, limit)}
}

func (c *stateCache) get(cycle int) *soc.Checkpoint {
	e := c.at[cycle]
	if e == nil {
		return nil
	}
	c.tick++
	e.used = c.tick
	return e.cp
}

func (c *stateCache) put(cycle int, cp *soc.Checkpoint) {
	if e := c.at[cycle]; e != nil {
		c.tick++
		e.cp, e.used = cp, c.tick
		return
	}
	for len(c.at) >= c.limit {
		// Evict the least recently used entry (limit is small enough
		// that a scan beats bookkeeping on every get).
		lruCycle, lruUsed := -1, int64(0)
		for cyc, e := range c.at {
			if lruCycle < 0 || e.used < lruUsed {
				lruCycle, lruUsed = cyc, e.used
			}
		}
		delete(c.at, lruCycle)
	}
	c.tick++
	c.at[cycle] = &cacheEntry{cp: cp, used: c.tick}
}

// New assembles an engine. The SoC must be loaded with the attack
// benchmark (not the synthetic pre-characterization program). It runs
// the static verification layer over the design first; use
// NewWithOptions to skip it.
func New(s *soc.SoC, attack *fault.Attack, place *placement.Placement, dm timingsim.DelayModel, char *precharac.Characterization, eval *analytical.Evaluator) (*Engine, error) {
	return NewWithOptions(s, attack, place, dm, char, eval, Options{})
}

// NewWithOptions is New with explicit engine options.
func NewWithOptions(s *soc.SoC, attack *fault.Attack, place *placement.Placement, dm timingsim.DelayModel, char *precharac.Characterization, eval *analytical.Evaluator, opts Options) (*Engine, error) {
	if !opts.SkipModelCheck {
		report := modelcheck.CheckModel(modelcheck.Model{
			Netlist:    s.MPU.Netlist,
			Place:      place,
			Responding: s.MPU.RespondingSignals,
		})
		if err := report.Err(modelcheck.Error); err != nil {
			return nil, fmt.Errorf("montecarlo: design rejected by static verification: %w", err)
		}
	}
	lanes := opts.Lanes
	if lanes == 0 {
		lanes = DefaultLanes
	}
	groups, err := laneGroups(lanes)
	if err != nil {
		return nil, err
	}
	tsim, err := timingsim.New(s.MPU.Netlist, dm)
	if err != nil {
		return nil, err
	}
	tsim.SetLaneWidth(groups)
	e := &Engine{
		SoC: s, Attack: attack, Place: place, Timing: tsim,
		Char: char, Analytical: eval,
		ResumeMargin:   200,
		StateCacheSize: DefaultStateCacheSize,
		Lanes:          lanes,
	}
	if char != nil {
		e.memType = make(map[netlist.NodeID]bool, len(char.Regs))
		for r, rc := range char.Regs {
			e.memType[r] = rc.MemoryType
		}
	}
	return e, nil
}

// Golden returns the golden-run artifacts (nil before RunGolden).
func (e *Engine) Golden() *Golden { return e.golden }

// RunGolden performs the fault-free reference run, dumping a checkpoint
// every interval cycles, and verifies the security mechanism works: the
// marked access must trap.
func (e *Engine) RunGolden(interval int) (*Golden, error) {
	if interval < 1 {
		return nil, fmt.Errorf("montecarlo: checkpoint interval %d", interval)
	}
	s := e.SoC
	s.Reset()
	e.cache = nil // exact-cycle snapshots belong to the previous golden run
	e.batch = nil // ditto for the lane-batch window
	s.LogAccesses = true
	s.Accesses = s.Accesses[:0]
	s.LogBusTrace = true
	s.BusTrace = s.BusTrace[:0]
	g := &Golden{Interval: interval, SetupEnd: -1}
	g.Checkpoints = append(g.Checkpoints, s.Snapshot())
	g.StateHashes = append(g.StateHashes, s.StateHash())
	for !s.Done() && s.Cycle() < s.Cfg.MaxCycles {
		s.Step()
		g.StateHashes = append(g.StateHashes, s.StateHash())
		if g.SetupEnd < 0 && !s.Priv() {
			g.SetupEnd = s.Cycle()
		}
		if s.Cycle()%interval == 0 {
			g.Checkpoints = append(g.Checkpoints, s.Snapshot())
		}
	}
	s.LogAccesses = false
	s.LogBusTrace = false
	if !s.Done() {
		return nil, fmt.Errorf("montecarlo: golden run did not halt within %d cycles", s.Cfg.MaxCycles)
	}
	if !s.Marked.Resolved {
		return nil, fmt.Errorf("montecarlo: golden run never issued the marked access")
	}
	if s.AttackSucceeded() {
		return nil, fmt.Errorf("montecarlo: security mechanism broken — the marked access succeeded without any fault")
	}
	g.TargetCycle = s.Marked.DecisionCycle
	g.MarkedIssue = s.Marked.IssueCycle
	g.FinalCycle = s.Cycle()
	g.Accesses = append([]soc.AccessEvent(nil), s.Accesses...)
	g.BusTrace = append([]soc.BusTraceEntry(nil), s.BusTrace...)
	if e.Analytical != nil {
		// The policy is stable from SetupEnd to the end of the run;
		// capture it from the final state.
		g.Policy = e.Analytical.CurrentPolicy(s)
	}
	if e.Attack.TRange > g.TargetCycle-g.SetupEnd {
		return nil, fmt.Errorf("montecarlo: TRange %d reaches into MPU setup (target %d, setup end %d)",
			e.Attack.TRange, g.TargetCycle, g.SetupEnd)
	}
	e.golden = g
	return g, nil
}

// restoreTo rewinds the SoC to the exact cycle: from the state cache
// when a snapshot of that cycle exists, otherwise from the latest
// golden checkpoint at or before it, stepping forward (and caching the
// result for the next sample aimed at the same cycle).
func (e *Engine) restoreTo(cycle int) {
	if e.StateCacheSize > 0 {
		if e.cache == nil {
			e.cache = newStateCache(e.StateCacheSize)
		} else {
			e.cache.limit = e.StateCacheSize
		}
		if cp := e.cache.get(cycle); cp != nil {
			e.SoC.Restore(cp)
			return
		}
	}
	g := e.golden
	idx := cycle / g.Interval
	if idx >= len(g.Checkpoints) {
		idx = len(g.Checkpoints) - 1
	}
	for idx > 0 && g.Checkpoints[idx].Cycle > cycle {
		idx--
	}
	e.SoC.Restore(g.Checkpoints[idx])
	for e.SoC.Cycle() < cycle {
		e.SoC.Step()
	}
	if e.StateCacheSize > 0 {
		e.cache.put(cycle, e.SoC.Snapshot())
	}
}

// DensifyAttackWindow pre-populates the state cache with one snapshot
// per cycle of the attack's injection window [TargetCycle-TRange,
// TargetCycle+1], growing StateCacheSize if the window does not fit.
// After it, every sample's warm-up is a single Restore. Call after
// RunGolden; a no-op when the cache is disabled.
func (e *Engine) DensifyAttackWindow() {
	g := e.golden
	if g == nil || e.StateCacheSize <= 0 {
		return
	}
	lo := g.TargetCycle - e.Attack.TRange
	if lo < 0 {
		lo = 0
	}
	// One extra slot below the window: the glitch model warms up to
	// te-1 to observe the pre-glitch cycle.
	if lo > 0 {
		lo--
	}
	// One extra slot above: lane-batched resumes that diverge at the
	// marked-response cycle fall back to a scalar restore there.
	hi := g.TargetCycle + 1
	if need := hi - lo + 1; e.StateCacheSize < need+4 {
		e.StateCacheSize = need + 4
	}
	e.restoreTo(lo)
	for c := lo + 1; c <= hi; c++ {
		e.SoC.Step()
		e.cache.put(c, e.SoC.Snapshot())
	}
}

// accessWindow returns the golden accesses issued in [from, to). The
// log is cycle-sorted, so both bounds are binary searches; the returned
// subslice aliases the log and must not be mutated.
func (g *Golden) accessWindow(from, to int) []soc.AccessEvent {
	lo := sort.Search(len(g.Accesses), func(i int) bool { return g.Accesses[i].Cycle >= from })
	hi := sort.Search(len(g.Accesses), func(i int) bool { return g.Accesses[i].Cycle >= to })
	if hi < lo {
		hi = lo
	}
	return g.Accesses[lo:hi]
}

// resumeRTL is the shared post-injection RTL resume: step until the
// marked access resolves, the core halts, or the bounded horizon
// expires. With the convergence cut enabled, each cycle's state digest
// is compared against the golden run's digest for the same cycle;
// equality means the fault has died out and the run is bit-for-bit back
// on the golden trajectory — whose outcome is known (the attack
// failed) — so the resume stops there.
func (e *Engine) resumeRTL() (resumed int, success bool) {
	g := e.golden
	s := e.SoC
	start := s.Cycle()
	limit := g.FinalCycle + e.ResumeMargin
	hashes := g.StateHashes
	useCut := !e.DisableConvergenceCut
	for !s.Done() && !s.Marked.Resolved && s.Cycle() < limit {
		if useCut {
			if c := s.Cycle(); c < len(hashes) && s.StateHash() == hashes[c] {
				return s.Cycle() - start, false
			}
		}
		s.Step()
	}
	return s.Cycle() - start, s.AttackSucceeded()
}

// RunOnce executes one fault-attack run for the given sample. RunGolden
// must have been called. rng drives hardening suppression only; the
// sample itself is drawn by the caller.
func (e *Engine) RunOnce(rng *rand.Rand, sample fault.Sample, mode Mode) RunResult {
	g := e.golden
	te := g.TargetCycle - sample.T
	e.restoreTo(te)

	// Injection cycle(s): gate-level (or direct register) fault. A
	// multi-cycle technique disturbs consecutive cycles with the same
	// spot; cycles past the target decision cannot change the marked
	// outcome and are clamped.
	cycles := sample.Cycles
	if cycles < 1 || mode == RegisterAttack {
		cycles = 1
	}
	if max := g.TargetCycle - te + 1; cycles > max {
		cycles = max
	}
	flipped := e.flipBuf[:0]
	if cycles > 1 && len(e.seen) > 0 {
		clear(e.seen)
	}
	//hot
	for c := 0; c < cycles; c++ {
		var cycleFlips []netlist.NodeID
		e.SoC.StepInject(func(values func(netlist.NodeID) bool) []netlist.NodeID {
			switch mode {
			case GateAttack:
				gates, dists := e.spotIndex().CombWithin(sample.Center, sample.Radius)
				if len(gates) == 0 {
					return nil
				}
				var strike timingsim.Strike
				strike, e.strikeWidths = e.Attack.StrikeFrom(sample, gates, dists, e.strikeWidths)
				res := e.Timing.Inject(values, strike)
				cycleFlips = e.applyHardening(rng, res.FlippedRegs)
			case RegisterAttack:
				regs := e.spotIndex().DFFWithin(sample.Center, sample.Radius)
				cycleFlips = e.applyHardening(rng, regs)
			}
			return cycleFlips
		})
		if cycles == 1 {
			// A single injection cycle cannot produce duplicates.
			flipped = append(flipped, cycleFlips...) //alloc-ok (reused scratch buffer)
			break
		}
		for _, r := range cycleFlips {
			if !e.seen[r] {
				if e.seen == nil {
					e.seen = make(map[netlist.NodeID]bool, 16) //alloc-ok (lazy, once per engine)
				}
				e.seen[r] = true
				flipped = append(flipped, r) //alloc-ok (reused scratch buffer)
			}
		}
	}
	e.flipBuf = flipped

	// The classification shortcuts assume a single-cycle disturbance;
	// multi-cycle injections always resolve through RTL (after the
	// masked check).
	if cycles > 1 {
		if len(flipped) == 0 {
			return RunResult{Class: Masked, Path: PathMasked}
		}
		res := RunResult{
			Class: Mixed, Path: PathRTL,
			Flipped: append([]netlist.NodeID(nil), flipped...),
		}
		res.ResumeCycles, res.Success = e.resumeRTL()
		return res
	}

	res, needRTL := e.classifySingle(sample, te, flipped)
	if needRTL {
		// Full RTL resume: run until the marked access resolves (or
		// the run ends some other way — e.g. a spurious trap halts the
		// core).
		res.ResumeCycles, res.Success = e.resumeRTL()
	}
	return res
}

// classifySingle decides a single-cycle injection's outcome from the
// flipped-register set alone, without touching the SoC state: masked,
// analytical memory-type evaluation, or lifetime pruning. When none of
// the shortcut paths apply it returns needRTL=true with Path set to
// PathRTL, and the caller owes the run an RTL resume (scalar resumeRTL,
// or a lane of a batched resume). flipped is the caller's scratch; the
// returned result holds its own copy.
func (e *Engine) classifySingle(sample fault.Sample, te int, flipped []netlist.NodeID) (res RunResult, needRTL bool) {
	g := e.golden
	if len(flipped) > 0 {
		// Copy out of the scratch buffer: the result outlives the run
		// (campaign attribution, pattern tracking).
		res.Flipped = append([]netlist.NodeID(nil), flipped...)
	}
	switch {
	case len(flipped) == 0:
		res.Class = Masked
		res.Path = PathMasked
		return res, false
	case e.allMemoryType(flipped):
		res.Class = MemoryOnly
	default:
		res.Class = Mixed
	}

	if res.Class == MemoryOnly && sample.T == 0 {
		// The flips latch at the end of the target cycle itself —
		// after the decision. Memory-type state cannot influence it
		// anymore.
		res.Path = PathPruned
		return res, false
	}
	if res.Class == MemoryOnly && e.Analytical != nil && e.Analytical.Covers(flipped) && te > g.SetupEnd {
		res.Path = PathAnalytical
		window := g.accessWindow(te, g.MarkedIssue)
		res.Success = e.Analytical.Outcome(g.Policy, e.SoC.Prog, window, flipped)
		return res, false
	}

	// Lifetime pruning for computation-type-only errors: if no flipped
	// register's error can survive until the target cycle, the attack
	// fails without simulation.
	if res.Class == Mixed && e.Char != nil && sample.T > 0 {
		maxLife := 0.0
		for _, r := range flipped {
			if l := e.Char.Lifetime(r); l > maxLife {
				maxLife = l
			}
		}
		if maxLife < float64(sample.T) {
			res.Path = PathPruned
			return res, false
		}
	}

	res.Path = PathRTL
	return res, true
}

// AttributeSuccess refines the register attribution of a successful
// run: when the flipped set is analytically covered, each flip is
// tested alone, and only the flips that are individually sufficient to
// bypass the policy receive credit (a strike often latches bystander
// bits alongside the one that matters). When no single flip suffices
// (a conjunction) or the set is not analytically covered, the whole
// set is credited.
func (e *Engine) AttributeSuccess(sample fault.Sample, flipped []netlist.NodeID) []netlist.NodeID {
	if e.Analytical == nil || !e.Analytical.Covers(flipped) || e.golden == nil {
		return flipped
	}
	g := e.golden
	te := g.TargetCycle - sample.T
	window := g.accessWindow(te, g.MarkedIssue)
	var solo []netlist.NodeID
	for _, r := range flipped {
		if e.Analytical.Outcome(g.Policy, e.SoC.Prog, window, []netlist.NodeID{r}) {
			solo = append(solo, r)
		}
	}
	if len(solo) > 0 {
		return solo
	}
	return flipped
}

// allMemoryType reports whether every flipped register is memory-type:
// either characterized as such by the lifetime campaign, or inert state
// outside the responding-signal cones (which can never influence the
// decision and is covered by the analytical model).
func (e *Engine) allMemoryType(flipped []netlist.NodeID) bool {
	if e.memType == nil {
		return false
	}
	for _, r := range flipped {
		if e.memType[r] {
			continue
		}
		if e.Analytical != nil && e.Analytical.Inert(r) {
			continue
		}
		return false
	}
	return true
}

// applyHardening drops flips on hardened registers with probability
// 1 - 1/F.
func (e *Engine) applyHardening(rng *rand.Rand, flips []netlist.NodeID) []netlist.NodeID {
	if len(e.Hardened) == 0 {
		return flips
	}
	out := flips[:0]
	for _, r := range flips {
		if f, ok := e.Hardened[r]; ok && f > 1 {
			if rng.Float64() >= 1/f {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}
