// Package montecarlo is the cross-level evaluation engine (Section 5 of
// the paper): it combines the RTL-level golden run with checkpoints, the
// two-step importance sampling, gate-level fault injection of the
// sampled cycle, and — depending on which registers latch errors —
// analytical evaluation or an RTL resume compared against the golden
// outcome. Its product is the System Security Factor estimate.
package montecarlo

import (
	"fmt"
	"math/rand"

	"repro/internal/analytical"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/precharac"
	"repro/internal/soc"
	"repro/internal/timingsim"
)

// Mode selects what the strike physically hits.
type Mode int

// Attack modes.
const (
	// GateAttack injects voltage transients at combinational gates and
	// lets the timed gate-level simulation decide which registers
	// latch errors — the paper's primary model.
	GateAttack Mode = iota
	// RegisterAttack flips the struck registers directly (classic
	// SEU model on sequential elements), used by the paper's Fig 7(b)
	// and Fig 10(b) comparisons.
	RegisterAttack
)

// OutcomeClass buckets where the latched errors ended up (Fig 10(a)).
type OutcomeClass int

// Outcome classes.
const (
	// Masked: no register latched an error.
	Masked OutcomeClass = iota
	// MemoryOnly: errors confined to memory-type registers.
	MemoryOnly
	// Mixed: at least one computation-type register got an error.
	Mixed
)

// String returns the display name.
func (c OutcomeClass) String() string {
	switch c {
	case Masked:
		return "masked"
	case MemoryOnly:
		return "memory-only"
	case Mixed:
		return "both"
	default:
		return fmt.Sprintf("OutcomeClass(%d)", int(c))
	}
}

// EvalPath records how a run's outcome was decided.
type EvalPath int

// Evaluation paths.
const (
	// PathMasked: nothing latched, outcome known immediately.
	PathMasked EvalPath = iota
	// PathAnalytical: memory-type-only errors, closed-form policy
	// evaluation.
	PathAnalytical
	// PathPruned: computation-type errors whose lifetime cannot reach
	// the target cycle — failure without resuming.
	PathPruned
	// PathRTL: full RTL resume to the marked access.
	PathRTL
)

// String returns the display name.
func (p EvalPath) String() string {
	switch p {
	case PathMasked:
		return "masked"
	case PathAnalytical:
		return "analytical"
	case PathPruned:
		return "pruned"
	case PathRTL:
		return "rtl"
	default:
		return fmt.Sprintf("EvalPath(%d)", int(p))
	}
}

// RunResult is the outcome of a single fault-attack run.
type RunResult struct {
	Success bool
	Class   OutcomeClass
	Path    EvalPath
	// Flipped are the registers that latched errors (post-hardening).
	Flipped []netlist.NodeID
	// ResumeCycles counts RTL cycles simulated after injection.
	ResumeCycles int
}

// Golden holds the golden-run artifacts: checkpoints, the target cycle,
// the access log, and the fault-free outcome.
type Golden struct {
	Checkpoints []*soc.Checkpoint
	Interval    int
	// TargetCycle is Tt: the cycle the marked access's MPU decision
	// latches.
	TargetCycle int
	// MarkedIssue is the cycle the marked access was driven.
	MarkedIssue int
	// SetupEnd is the first user-mode cycle (MPU configured).
	SetupEnd int
	// FinalCycle is when the golden run halted.
	FinalCycle int
	// Accesses is the full golden access log.
	Accesses []soc.AccessEvent
	// Policy is the configured protection policy.
	Policy analytical.Policy
}

// Engine evaluates fault attacks on one SoC + benchmark. It is not safe
// for concurrent use; create one engine per goroutine (sharing the MPU
// elaboration via soc.WithMPU is fine).
type Engine struct {
	SoC    *soc.SoC
	Attack *fault.Attack
	Place  *placement.Placement
	Timing *timingsim.Simulator

	// Char enables memory/computation classification, the analytical
	// path and lifetime pruning; nil forces RTL for everything.
	Char *precharac.Characterization
	// Analytical enables the closed-form path for memory-type-only
	// errors; nil forces RTL for them.
	Analytical *analytical.Evaluator

	// Hardened maps a register to its resilience factor F: an error
	// that would latch there survives with probability 1/F
	// (soft-error-resilient cell designs, refs [19, 20] of the
	// paper).
	Hardened map[netlist.NodeID]float64

	// ResumeMargin bounds the RTL resume beyond the golden final
	// cycle (faulted runs can run longer, e.g. skipped traps).
	ResumeMargin int

	golden  *Golden
	memType map[netlist.NodeID]bool
}

// New assembles an engine. The SoC must be loaded with the attack
// benchmark (not the synthetic pre-characterization program).
func New(s *soc.SoC, attack *fault.Attack, place *placement.Placement, dm timingsim.DelayModel, char *precharac.Characterization, eval *analytical.Evaluator) (*Engine, error) {
	tsim, err := timingsim.New(s.MPU.Netlist, dm)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		SoC: s, Attack: attack, Place: place, Timing: tsim,
		Char: char, Analytical: eval,
		ResumeMargin: 200,
	}
	if char != nil {
		e.memType = make(map[netlist.NodeID]bool, len(char.Regs))
		for r, rc := range char.Regs {
			e.memType[r] = rc.MemoryType
		}
	}
	return e, nil
}

// Golden returns the golden-run artifacts (nil before RunGolden).
func (e *Engine) Golden() *Golden { return e.golden }

// RunGolden performs the fault-free reference run, dumping a checkpoint
// every interval cycles, and verifies the security mechanism works: the
// marked access must trap.
func (e *Engine) RunGolden(interval int) (*Golden, error) {
	if interval < 1 {
		return nil, fmt.Errorf("montecarlo: checkpoint interval %d", interval)
	}
	s := e.SoC
	s.Reset()
	s.LogAccesses = true
	s.Accesses = s.Accesses[:0]
	g := &Golden{Interval: interval, SetupEnd: -1}
	g.Checkpoints = append(g.Checkpoints, s.Snapshot())
	for !s.Done() && s.Cycle() < s.Cfg.MaxCycles {
		s.Step()
		if g.SetupEnd < 0 && !s.Priv() {
			g.SetupEnd = s.Cycle()
		}
		if s.Cycle()%interval == 0 {
			g.Checkpoints = append(g.Checkpoints, s.Snapshot())
		}
	}
	s.LogAccesses = false
	if !s.Done() {
		return nil, fmt.Errorf("montecarlo: golden run did not halt within %d cycles", s.Cfg.MaxCycles)
	}
	if !s.Marked.Resolved {
		return nil, fmt.Errorf("montecarlo: golden run never issued the marked access")
	}
	if s.AttackSucceeded() {
		return nil, fmt.Errorf("montecarlo: security mechanism broken — the marked access succeeded without any fault")
	}
	g.TargetCycle = s.Marked.DecisionCycle
	g.MarkedIssue = s.Marked.IssueCycle
	g.FinalCycle = s.Cycle()
	g.Accesses = append([]soc.AccessEvent(nil), s.Accesses...)
	if e.Analytical != nil {
		// The policy is stable from SetupEnd to the end of the run;
		// capture it from the final state.
		g.Policy = e.Analytical.CurrentPolicy(s)
	}
	if e.Attack.TRange > g.TargetCycle-g.SetupEnd {
		return nil, fmt.Errorf("montecarlo: TRange %d reaches into MPU setup (target %d, setup end %d)",
			e.Attack.TRange, g.TargetCycle, g.SetupEnd)
	}
	e.golden = g
	return g, nil
}

// restoreTo rewinds the SoC to the latest checkpoint at or before the
// cycle and steps forward to it.
func (e *Engine) restoreTo(cycle int) {
	g := e.golden
	idx := cycle / g.Interval
	if idx >= len(g.Checkpoints) {
		idx = len(g.Checkpoints) - 1
	}
	for idx > 0 && g.Checkpoints[idx].Cycle > cycle {
		idx--
	}
	e.SoC.Restore(g.Checkpoints[idx])
	for e.SoC.Cycle() < cycle {
		e.SoC.Step()
	}
}

// accessWindow returns the golden accesses issued in [from, to).
func (g *Golden) accessWindow(from, to int) []soc.AccessEvent {
	var out []soc.AccessEvent
	for _, ev := range g.Accesses {
		if ev.Cycle >= from && ev.Cycle < to {
			out = append(out, ev)
		}
	}
	return out
}

// RunOnce executes one fault-attack run for the given sample. RunGolden
// must have been called. rng drives hardening suppression only; the
// sample itself is drawn by the caller.
func (e *Engine) RunOnce(rng *rand.Rand, sample fault.Sample, mode Mode) RunResult {
	g := e.golden
	te := g.TargetCycle - sample.T
	e.restoreTo(te)

	// Injection cycle(s): gate-level (or direct register) fault. A
	// multi-cycle technique disturbs consecutive cycles with the same
	// spot; cycles past the target decision cannot change the marked
	// outcome and are clamped.
	cycles := sample.Cycles
	if cycles < 1 || mode == RegisterAttack {
		cycles = 1
	}
	if max := g.TargetCycle - te + 1; cycles > max {
		cycles = max
	}
	var flipped []netlist.NodeID
	seen := map[netlist.NodeID]bool{}
	for c := 0; c < cycles; c++ {
		var cycleFlips []netlist.NodeID
		e.SoC.StepInject(func(values func(netlist.NodeID) bool) []netlist.NodeID {
			switch mode {
			case GateAttack:
				strike := e.Attack.Strike(e.Place, sample)
				if len(strike.Gates) == 0 {
					return nil
				}
				res := e.Timing.Inject(values, strike)
				cycleFlips = e.applyHardening(rng, res.FlippedRegs)
			case RegisterAttack:
				var regs []netlist.NodeID
				for _, id := range e.Place.WithinRadius(sample.Center, sample.Radius) {
					if e.SoC.MPU.Netlist.Node(id).Type == netlist.DFF {
						regs = append(regs, id)
					}
				}
				cycleFlips = e.applyHardening(rng, regs)
			}
			return cycleFlips
		})
		for _, r := range cycleFlips {
			if !seen[r] {
				seen[r] = true
				flipped = append(flipped, r)
			}
		}
	}

	res := RunResult{Flipped: flipped}
	switch {
	case len(flipped) == 0:
		res.Class = Masked
		res.Path = PathMasked
		return res
	case e.allMemoryType(flipped):
		res.Class = MemoryOnly
	default:
		res.Class = Mixed
	}

	// The classification shortcuts assume a single-cycle disturbance;
	// multi-cycle injections always resolve through RTL (after the
	// masked check).
	if cycles > 1 && res.Class != Masked {
		res.Class = Mixed
		res.Path = PathRTL
		start := e.SoC.Cycle()
		limit := g.FinalCycle + e.ResumeMargin
		for !e.SoC.Done() && !e.SoC.Marked.Resolved && e.SoC.Cycle() < limit {
			e.SoC.Step()
		}
		res.ResumeCycles = e.SoC.Cycle() - start
		res.Success = e.SoC.AttackSucceeded()
		return res
	}

	if res.Class == MemoryOnly && sample.T == 0 {
		// The flips latch at the end of the target cycle itself —
		// after the decision. Memory-type state cannot influence it
		// anymore.
		res.Path = PathPruned
		return res
	}
	if res.Class == MemoryOnly && e.Analytical != nil && e.Analytical.Covers(flipped) && te > g.SetupEnd {
		res.Path = PathAnalytical
		window := g.accessWindow(te, g.MarkedIssue)
		res.Success = e.Analytical.Outcome(g.Policy, e.SoC.Prog, window, flipped)
		return res
	}

	// Lifetime pruning for computation-type-only errors: if no flipped
	// register's error can survive until the target cycle, the attack
	// fails without simulation.
	if res.Class == Mixed && e.Char != nil && sample.T > 0 {
		maxLife := 0.0
		for _, r := range flipped {
			if l := e.Char.Lifetime(r); l > maxLife {
				maxLife = l
			}
		}
		if maxLife < float64(sample.T) {
			res.Path = PathPruned
			return res
		}
	}

	// Full RTL resume: run until the marked access resolves (or the
	// run ends some other way — e.g. a spurious trap halts the core).
	res.Path = PathRTL
	start := e.SoC.Cycle()
	limit := g.FinalCycle + e.ResumeMargin
	for !e.SoC.Done() && !e.SoC.Marked.Resolved && e.SoC.Cycle() < limit {
		e.SoC.Step()
	}
	res.ResumeCycles = e.SoC.Cycle() - start
	res.Success = e.SoC.AttackSucceeded()
	return res
}

// AttributeSuccess refines the register attribution of a successful
// run: when the flipped set is analytically covered, each flip is
// tested alone, and only the flips that are individually sufficient to
// bypass the policy receive credit (a strike often latches bystander
// bits alongside the one that matters). When no single flip suffices
// (a conjunction) or the set is not analytically covered, the whole
// set is credited.
func (e *Engine) AttributeSuccess(sample fault.Sample, flipped []netlist.NodeID) []netlist.NodeID {
	if e.Analytical == nil || !e.Analytical.Covers(flipped) || e.golden == nil {
		return flipped
	}
	g := e.golden
	te := g.TargetCycle - sample.T
	window := g.accessWindow(te, g.MarkedIssue)
	var solo []netlist.NodeID
	for _, r := range flipped {
		if e.Analytical.Outcome(g.Policy, e.SoC.Prog, window, []netlist.NodeID{r}) {
			solo = append(solo, r)
		}
	}
	if len(solo) > 0 {
		return solo
	}
	return flipped
}

// allMemoryType reports whether every flipped register is memory-type:
// either characterized as such by the lifetime campaign, or inert state
// outside the responding-signal cones (which can never influence the
// decision and is covered by the analytical model).
func (e *Engine) allMemoryType(flipped []netlist.NodeID) bool {
	if e.memType == nil {
		return false
	}
	for _, r := range flipped {
		if e.memType[r] {
			continue
		}
		if e.Analytical != nil && e.Analytical.Inert(r) {
			continue
		}
		return false
	}
	return true
}

// applyHardening drops flips on hardened registers with probability
// 1 - 1/F.
func (e *Engine) applyHardening(rng *rand.Rand, flips []netlist.NodeID) []netlist.NodeID {
	if len(e.Hardened) == 0 {
		return flips
	}
	out := flips[:0]
	for _, r := range flips {
		if f, ok := e.Hardened[r]; ok && f > 1 {
			if rng.Float64() >= 1/f {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}
