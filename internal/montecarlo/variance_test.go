package montecarlo_test

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/sampling"
)

// varianceImportance builds the importance proposal for an evaluation's
// attack (the building block of the stratified and Sobol samplers).
func varianceImportance(t *testing.T, ev *core.Evaluation) *sampling.Importance {
	t.Helper()
	fw := framework(t)
	im, err := sampling.NewImportance(ev.Attack, fw.Char, fw.MPU.Netlist, fw.Place, sampling.DefaultAlpha, sampling.DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func varianceStratified(t *testing.T, ev *core.Evaluation) *sampling.Stratified {
	t.Helper()
	sp, err := sampling.NewStratified(varianceImportance(t, ev))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestStratifiedCampaignScalarBatchedIdentical: the lane-batched
// execution path must reproduce the scalar stratified campaign
// bit-for-bit — estimator, per-stratum state, tallies, and trace.
func TestStratifiedCampaignScalarBatchedIdentical(t *testing.T) {
	ev := concentratedEvaluation(t)
	sp := varianceStratified(t, ev)
	opts := montecarlo.CampaignOptions{Samples: 2500, Seed: 5, TrackConvergence: true}
	scalar, err := ev.Engine.RunCampaign(context.Background(), sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = true
	opts.BatchWindow = 600 // partial final window
	batched, err := ev.Engine.RunCampaign(context.Background(), sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Strata == nil || batched.Strata == nil {
		t.Fatal("stratified campaign did not track per-stratum state")
	}
	if scalar.Strata.TotalHits() == 0 {
		t.Fatal("no hits — the comparison would be vacuous")
	}
	if !reflect.DeepEqual(batched.Strata.State(), scalar.Strata.State()) {
		t.Error("per-stratum state differs between scalar and batched runs")
	}
	if batched.SSF() != scalar.SSF() {
		t.Errorf("SSF %g != scalar %g", batched.SSF(), scalar.SSF())
	}
	if batched.Est.State() != scalar.Est.State() {
		t.Error("plain estimator state differs")
	}
	if batched.Weights.State() != scalar.Weights.State() {
		t.Error("weight moments differ")
	}
	if !reflect.DeepEqual(batched.TDraws, scalar.TDraws) || !reflect.DeepEqual(batched.THits, scalar.THits) {
		t.Error("per-t tallies differ")
	}
	if batched.Successes != scalar.Successes || batched.RTLCycles != scalar.RTLCycles {
		t.Error("success/RTL accounting differs")
	}
	if !reflect.DeepEqual(batched.Convergence, scalar.Convergence) {
		t.Error("convergence traces differ")
	}
}

// TestSobolCampaignScalarBatchedIdentical: same contract for the
// Sobol-driven campaign (whose stream ignores the campaign rng, so the
// batched path consumes exactly the same sequence).
func TestSobolCampaignScalarBatchedIdentical(t *testing.T) {
	ev := concentratedEvaluation(t)
	sp := sampling.NewSobol(varianceImportance(t, ev))
	opts := montecarlo.CampaignOptions{Samples: 2500, Seed: 5, TrackConvergence: true}
	scalar, err := ev.Engine.RunCampaign(context.Background(), sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = true
	opts.BatchWindow = 600
	batched, err := ev.Engine.RunCampaign(context.Background(), sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Successes == 0 {
		t.Fatal("no successes — the comparison would be vacuous")
	}
	if batched.Est.State() != scalar.Est.State() {
		t.Error("estimator state differs between scalar and batched runs")
	}
	if batched.Successes != scalar.Successes || batched.RTLCycles != scalar.RTLCycles {
		t.Error("success/RTL accounting differs")
	}
	if !reflect.DeepEqual(batched.Convergence, scalar.Convergence) {
		t.Error("convergence traces differ")
	}
}

// TestStratifiedDisjointForkMergeMatchesSequential is the campaign-level
// merge guarantee: two campaigns over complementary stratum subsets
// (ForkStrata), run with the sequential campaign's seed, merge into
// exactly the sequential campaign's per-stratum state — bit for bit —
// because per-stratum streams depend only on per-stratum draw counts.
func TestStratifiedDisjointForkMergeMatchesSequential(t *testing.T) {
	ev := concentratedEvaluation(t)
	sp := varianceStratified(t, ev)
	ctx := context.Background()
	opts := montecarlo.CampaignOptions{Samples: 3000, Seed: 9}
	full, err := ev.Engine.RunCampaign(ctx, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Strata.TotalHits() == 0 {
		t.Fatal("no hits — the comparison would be vacuous")
	}

	even := func(k int) bool { return k%2 == 0 }
	odd := func(k int) bool { return k%2 == 1 }
	part := func(include func(int) bool) *montecarlo.Campaign {
		n := 0
		for k := 0; k < full.Strata.K(); k++ {
			if include(k) {
				n += full.Strata.StratumN(k)
			}
		}
		sub, err := sp.ForkStrata(1, include) // fork seed replaced by opts.Seed inside the run
		if err != nil {
			t.Fatal(err)
		}
		c, err := ev.Engine.RunCampaign(ctx, sub, montecarlo.CampaignOptions{Samples: n, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	merged := part(even).Clone()
	if err := merged.Merge(part(odd)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Strata.State(), full.Strata.State()) {
		t.Fatal("merged per-stratum state differs from the sequential run")
	}
	if merged.SSF() != full.SSF() {
		t.Fatalf("merged SSF %v, sequential %v", merged.SSF(), full.SSF())
	}
	if merged.Successes != full.Successes {
		t.Errorf("merged successes %d, sequential %d", merged.Successes, full.Successes)
	}
	if !reflect.DeepEqual(merged.TDraws, full.TDraws) || !reflect.DeepEqual(merged.THits, full.THits) {
		t.Error("merged per-t tallies differ from the sequential run")
	}
}

// TestControlVariateCampaign: the control variate leaves the underlying
// draw sequence untouched (the plain estimator stays bit-identical to
// the non-CV run), its exact mean matches the empirical mean of the
// control under the nominal sampler, and unsupported samplers are
// rejected.
func TestControlVariateCampaign(t *testing.T) {
	// The default attack spec, not the concentrated one: the control's
	// exact mean is strictly positive there, so the comparison has
	// teeth (a degenerate control would reduce to the plain mean).
	ev := evaluation(t)
	ctx := context.Background()
	opts := montecarlo.CampaignOptions{Samples: 8000, Seed: 3}
	plain, err := ev.Engine.RunCampaign(ctx, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ControlVariate = true
	cv, err := ev.Engine.RunCampaign(ctx, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cv.CV == nil {
		t.Fatal("campaign did not track the control variate")
	}
	if cv.Est.State() != plain.Est.State() {
		t.Error("control variate perturbed the draw sequence")
	}
	if cv.CVMean <= 0 || cv.CVMean > 1 {
		t.Fatalf("exact control mean %v outside (0, 1]", cv.CVMean)
	}
	// Under the nominal sampler (weights 1) the empirical control mean
	// is an unbiased estimate of the exact enumerated mean.
	meanC := cv.CV.MeanC()
	tol := 6*math.Sqrt(cv.CV.VarC()/float64(cv.CV.N())) + 1e-12
	if math.Abs(meanC-cv.CVMean) > tol {
		t.Errorf("empirical control mean %v, exact %v (tol %v)", meanC, cv.CVMean, tol)
	}
	if math.IsNaN(cv.SSF()) || math.IsInf(cv.SSF(), 0) {
		t.Errorf("adjusted SSF %v", cv.SSF())
	}

	// Restricted-support samplers would bias E_g[w*phi]; rejected.
	if _, err := ev.Engine.RunCampaign(ctx, varianceStratified(t, ev), opts); err == nil {
		t.Error("control variate accepted a restricted-support sampler")
	}
}

// TestVarianceStateSnapshotRoundTrip: the new campaign state — strata,
// weight moments, tallies, control variate — survives Snapshot → JSON →
// Campaign → Snapshot bit-identically.
func TestVarianceStateSnapshotRoundTrip(t *testing.T) {
	ev := concentratedEvaluation(t)
	ctx := context.Background()
	strat, err := ev.Engine.RunCampaign(ctx, varianceStratified(t, ev),
		montecarlo.CampaignOptions{Samples: 1500, Seed: 4, TrackConvergence: true})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := ev.Engine.RunCampaign(ctx, ev.RandomSampler(),
		montecarlo.CampaignOptions{Samples: 1500, Seed: 4, ControlVariate: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*montecarlo.Campaign{"stratified": strat, "cv": cv} {
		snap := c.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var back montecarlo.CampaignSnapshot
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		restored := back.Campaign()
		if !reflect.DeepEqual(restored.Snapshot(), snap) {
			t.Fatalf("%s: snapshot changed over the round trip", name)
		}
		if restored.SSF() != c.SSF() {
			t.Fatalf("%s: SSF %v != %v after round trip", name, restored.SSF(), c.SSF())
		}
		if restored.Weights.State() != c.Weights.State() {
			t.Fatalf("%s: weight moments changed", name)
		}
		// A restored campaign must stay mergeable with a live one.
		if err := restored.Merge(c.Clone()); err != nil {
			t.Fatalf("%s: restored campaign rejects merge: %v", name, err)
		}
	}
	if strat.Snapshot().Strata == nil {
		t.Error("stratified snapshot lost per-stratum state")
	}
	if cvSnap := cv.Snapshot(); cvSnap.CV == nil || cvSnap.CVMean != cv.CVMean || !cvSnap.ControlVar {
		t.Error("cv snapshot lost control-variate state")
	}
}

// TestMergeRejectsMismatchedVarianceState: merging stratified into
// unstratified (or across control means) must fail without mutating the
// receiver.
func TestMergeRejectsMismatchedVarianceState(t *testing.T) {
	ev := concentratedEvaluation(t)
	ctx := context.Background()
	c, err := ev.Engine.RunCampaign(ctx, varianceStratified(t, ev),
		montecarlo.CampaignOptions{Samples: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bare := c.Clone()
	bare.Strata = nil
	if err := c.Clone().Merge(bare); err == nil {
		t.Error("stratified merged with unstratified")
	}

	evCV := evaluation(t)
	cv, err := evCV.Engine.RunCampaign(ctx, evCV.RandomSampler(),
		montecarlo.CampaignOptions{Samples: 600, Seed: 2, ControlVariate: true})
	if err != nil {
		t.Fatal(err)
	}
	other := cv.Clone()
	other.CVMean += 0.5
	recv := cv.Clone()
	before := recv.CV.MeanC()
	if err := recv.Merge(other); err == nil {
		t.Error("merged across control means")
	}
	if recv.CV.MeanC() != before {
		t.Error("failed merge mutated the receiver")
	}
}

// TestStratifiedAdaptResumeBitIdentical composes everything the
// checkpointing path must preserve: stratified sampler, Neyman proposal
// re-tuning between rounds, parallel shards, and a JSON-round-tripped
// checkpoint — the resumed run must be bit-identical to the
// uninterrupted one.
func TestStratifiedAdaptResumeBitIdentical(t *testing.T) {
	ev := concentratedEvaluation(t)
	engines, err := ev.CloneEngines(2)
	if err != nil {
		t.Fatal(err)
	}
	sp := varianceStratified(t, ev)
	opts := montecarlo.AdaptiveOptions{
		Epsilon:          1, // fixed-size: min == max pins the total
		Risk:             0.5,
		MinSamples:       1800,
		MaxSamples:       1800,
		CheckEvery:       300, // rounds of 600 samples, 3 rounds
		Seed:             9,
		TrackConvergence: true,
		AdaptProposal:    true,
	}
	var checkpoints [][]byte
	opts.Checkpoint = func(rounds int64, total *montecarlo.Campaign) {
		data, err := json.Marshal(total.Snapshot())
		if err != nil {
			t.Error(err)
			return
		}
		checkpoints = append(checkpoints, data)
	}
	full, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) != 3 {
		t.Fatalf("got %d checkpoints, want 3", len(checkpoints))
	}
	if full.Strata.TotalHits() == 0 {
		t.Fatal("no hits — adaptation never had a signal")
	}
	var snap montecarlo.CampaignSnapshot
	if err := json.Unmarshal(checkpoints[0], &snap); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = nil
	opts.Resume = snap.Campaign()
	opts.ResumeRound = 1
	resumed, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Est.State() != full.Est.State() {
		t.Fatalf("resumed estimator %+v, uninterrupted %+v", resumed.Est.State(), full.Est.State())
	}
	if !reflect.DeepEqual(resumed.Strata.State(), full.Strata.State()) {
		t.Fatal("resumed per-stratum state differs from the uninterrupted run")
	}
	if resumed.SSF() != full.SSF() {
		t.Fatalf("resumed SSF %v, uninterrupted %v", resumed.SSF(), full.SSF())
	}
	if !reflect.DeepEqual(resumed.TDraws, full.TDraws) || !reflect.DeepEqual(resumed.THits, full.THits) {
		t.Error("resumed per-t tallies differ")
	}
	if !reflect.DeepEqual(resumed.Convergence, full.Convergence) {
		t.Error("resumed trace differs")
	}
}

// TestAdaptiveProposalSequentialReproducible: the chunked sequential
// adaptive run with proposal re-tuning is a pure function of its
// options — two runs agree bit-for-bit.
func TestAdaptiveProposalSequentialReproducible(t *testing.T) {
	ev := concentratedEvaluation(t)
	sp := varianceStratified(t, ev)
	opts := montecarlo.AdaptiveOptions{
		Epsilon:       1,
		Risk:          0.5,
		MinSamples:    1200,
		MaxSamples:    1200,
		CheckEvery:    400,
		Seed:          6,
		AdaptProposal: true,
	}
	a, err := ev.Engine.RunAdaptive(context.Background(), sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Engine.RunAdaptive(context.Background(), sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Est.State() != b.Est.State() || a.SSF() != b.SSF() {
		t.Fatal("sequential adaptive runs with equal options diverged")
	}
	if !reflect.DeepEqual(a.Strata.State(), b.Strata.State()) {
		t.Fatal("per-stratum state diverged")
	}
}
