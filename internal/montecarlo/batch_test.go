package montecarlo_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
)

// concentratedEvaluation aims the whole candidate set at the
// neighbourhood of the MPU's critical decision gate, so a large share
// of strikes flips the responding registers and the batched resume's
// divergence fallback is exercised heavily (including successful
// attacks, which can only be produced by diverged lanes).
func concentratedEvaluation(t *testing.T) *core.Evaluation {
	t.Helper()
	fw := framework(t)
	prog, err := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	if err != nil {
		t.Fatal(err)
	}
	cands := fault.ConcentratedCenters(fw.Place, fw.CandidateBlock(1), fw.SecurityTarget(), 0.02)
	attack, err := fault.NewAttack("conc", 50, fault.DefaultRadiation(), cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := fw.NewEvaluationAttack(prog, attack)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestBatchRunParity is the per-sample contract: RunBatch must return
// exactly what the same sequence of RunOnce calls returns — outcome,
// classification, flipped set, and the RTL cycle count — including for
// samples whose lanes diverge behaviorally and fall back to the scalar
// resume.
func TestBatchRunParity(t *testing.T) {
	ev := concentratedEvaluation(t)
	srng := rand.New(rand.NewSource(99))
	samples := make([]fault.Sample, 1500)
	for i := range samples {
		samples[i] = ev.Attack.SampleNominal(srng)
	}

	rngScalar := rand.New(rand.NewSource(17))
	scalar := make([]montecarlo.RunResult, len(samples))
	for i, s := range samples {
		scalar[i] = ev.Engine.RunOnce(rngScalar, s, montecarlo.GateAttack)
	}
	rngBatch := rand.New(rand.NewSource(17))
	batched := ev.Engine.RunBatch(rngBatch, samples, montecarlo.GateAttack)

	rtl, diverged := 0, 0
	for i := range samples {
		sr, br := scalar[i], batched[i]
		if sr.Success != br.Success || sr.Class != br.Class || sr.Path != br.Path ||
			sr.ResumeCycles != br.ResumeCycles {
			t.Fatalf("sample %d (%+v): scalar %+v, batched %+v", i, samples[i], sr, br)
		}
		if len(sr.Flipped) != len(br.Flipped) {
			t.Fatalf("sample %d: flipped %v vs %v", i, sr.Flipped, br.Flipped)
		}
		for j := range sr.Flipped {
			if sr.Flipped[j] != br.Flipped[j] {
				t.Fatalf("sample %d: flipped %v vs %v", i, sr.Flipped, br.Flipped)
			}
		}
		if sr.Path == montecarlo.PathRTL {
			rtl++
			if sr.Success {
				diverged++
			}
		}
	}
	// The contract is only meaningful if the batch actually carried RTL
	// resumes, and successful RTL outcomes prove the divergence
	// fallback ran (a lane on the golden trajectory always fails).
	if rtl == 0 {
		t.Fatal("no PathRTL samples — the batched resume was never exercised")
	}
	if diverged == 0 {
		t.Fatal("no successful RTL samples — the divergence fallback was never exercised")
	}
	t.Logf("%d RTL resumes, %d successful (diverged) lanes", rtl, diverged)
}

// TestBatchCampaignEquivalence is the acceptance criterion: fixed-seed
// campaigns over the batched and scalar paths must be bit-identical —
// SSF, per-sample convergence trace, success/class/path counts,
// register attribution, patterns, and even the total RTL cycle count.
func TestBatchCampaignEquivalence(t *testing.T) {
	ev := evaluation(t)
	sampler, err := ev.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.CampaignOptions{
		Samples: 3000, Seed: 21,
		TrackConvergence: true, TrackPatterns: true,
	}
	scalar, err := ev.Engine.RunCampaign(context.Background(), sampler, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = true
	opts.BatchWindow = 700 // not a divisor of Samples: exercises the partial final window
	batched, err := ev.Engine.RunCampaign(context.Background(), sampler, opts)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Est.Estimate() != scalar.Est.Estimate() {
		t.Errorf("SSF %g != scalar %g", batched.Est.Estimate(), scalar.Est.Estimate())
	}
	if batched.Successes != scalar.Successes {
		t.Errorf("successes %d != scalar %d", batched.Successes, scalar.Successes)
	}
	if batched.ClassCounts != scalar.ClassCounts {
		t.Errorf("class counts %v != scalar %v", batched.ClassCounts, scalar.ClassCounts)
	}
	if batched.PathCounts != scalar.PathCounts {
		t.Errorf("path counts %v != scalar %v", batched.PathCounts, scalar.PathCounts)
	}
	if batched.RTLCycles != scalar.RTLCycles {
		t.Errorf("RTL cycles %d != scalar %d", batched.RTLCycles, scalar.RTLCycles)
	}
	if len(batched.Convergence) != len(scalar.Convergence) {
		t.Fatalf("convergence length %d != scalar %d", len(batched.Convergence), len(scalar.Convergence))
	}
	for i := range scalar.Convergence {
		if batched.Convergence[i] != scalar.Convergence[i] {
			t.Fatalf("convergence[%d] %g != scalar %g", i, batched.Convergence[i], scalar.Convergence[i])
		}
	}
	if len(batched.RegContribution) != len(scalar.RegContribution) {
		t.Errorf("reg contributions %d != scalar %d", len(batched.RegContribution), len(scalar.RegContribution))
	}
	for r, v := range scalar.RegContribution {
		if batched.RegContribution[r] != v {
			t.Errorf("reg %d contribution %g != scalar %g", r, batched.RegContribution[r], v)
		}
	}
	if len(batched.Patterns) != len(scalar.Patterns) {
		t.Errorf("patterns %d != scalar %d", len(batched.Patterns), len(scalar.Patterns))
	}
	if batched.PathCounts[montecarlo.PathRTL] == 0 {
		t.Error("campaign exercised no RTL resumes — equivalence is vacuous")
	}
}

// TestBatchCampaignForcedDivergence repeats the campaign equivalence
// check under the concentrated attack, where diverged lanes (including
// successful attacks) dominate the RTL traffic.
func TestBatchCampaignForcedDivergence(t *testing.T) {
	ev := concentratedEvaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 2000, Seed: 4, TrackConvergence: true}
	scalar, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = true
	batched, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Est.Estimate() != scalar.Est.Estimate() || batched.Successes != scalar.Successes ||
		batched.ClassCounts != scalar.ClassCounts || batched.PathCounts != scalar.PathCounts ||
		batched.RTLCycles != scalar.RTLCycles {
		t.Errorf("diverged-heavy campaign mismatch: batched SSF %g/%d/%d cycles, scalar %g/%d/%d cycles",
			batched.Est.Estimate(), batched.Successes, batched.RTLCycles,
			scalar.Est.Estimate(), scalar.Successes, scalar.RTLCycles)
	}
	if scalar.Successes == 0 {
		t.Error("concentrated campaign produced no successes — divergence not forced")
	}
	for i := range scalar.Convergence {
		if batched.Convergence[i] != scalar.Convergence[i] {
			t.Fatalf("convergence[%d] %g != scalar %g", i, batched.Convergence[i], scalar.Convergence[i])
		}
	}
}

// TestBatchRegisterAttackEquivalence checks the direct-SEU mode, whose
// injection bypasses the timed gate simulation entirely.
func TestBatchRegisterAttackEquivalence(t *testing.T) {
	ev := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 1500, Seed: 9, Mode: montecarlo.RegisterAttack}
	scalar, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = true
	batched, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Est.Estimate() != scalar.Est.Estimate() || batched.Successes != scalar.Successes ||
		batched.ClassCounts != scalar.ClassCounts || batched.PathCounts != scalar.PathCounts ||
		batched.RTLCycles != scalar.RTLCycles {
		t.Errorf("register-attack campaign mismatch: batched %g/%d, scalar %g/%d",
			batched.Est.Estimate(), batched.Successes, scalar.Est.Estimate(), scalar.Successes)
	}
}

// TestBatchMultiCycleFallsBackToScalar: multi-cycle disturbances cannot
// use the cached-window fast path; the batched campaign must route them
// through the scalar RunOnce and still match exactly.
func TestBatchMultiCycleFallsBackToScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fw := framework(t)
	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	tech := fault.DefaultRadiation()
	tech.ImpactCycles = 3
	attack, err := fault.NewAttack("multi", 50, tech, fw.CandidateBlock(0.125), nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := fw.NewEvaluationAttack(prog, attack)
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.CampaignOptions{Samples: 1200, Seed: 5}
	scalar, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Batch = true
	batched, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Est.Estimate() != scalar.Est.Estimate() || batched.Successes != scalar.Successes ||
		batched.ClassCounts != scalar.ClassCounts || batched.PathCounts != scalar.PathCounts ||
		batched.RTLCycles != scalar.RTLCycles {
		t.Errorf("multi-cycle campaign mismatch: batched %g/%d, scalar %g/%d",
			batched.Est.Estimate(), batched.Successes, scalar.Est.Estimate(), scalar.Successes)
	}
}

// TestBatchParallelAndAdaptive: the orchestration layers must forward
// the batch option and stay bit-identical to their scalar selves.
func TestBatchParallelAndAdaptive(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	popts := montecarlo.CampaignOptions{Samples: 3000, Seed: 11}
	scalarP, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(), popts)
	if err != nil {
		t.Fatal(err)
	}
	popts.Batch = true
	batchedP, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(), popts)
	if err != nil {
		t.Fatal(err)
	}
	if batchedP.Est.Estimate() != scalarP.Est.Estimate() || batchedP.Successes != scalarP.Successes ||
		batchedP.ClassCounts != scalarP.ClassCounts || batchedP.PathCounts != scalarP.PathCounts {
		t.Errorf("parallel campaign mismatch: batched %g/%d, scalar %g/%d",
			batchedP.Est.Estimate(), batchedP.Successes, scalarP.Est.Estimate(), scalarP.Successes)
	}

	aopts := montecarlo.DefaultAdaptive(0.02)
	aopts.Seed = 13
	aopts.MaxSamples = 4000
	scalarA, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), aopts)
	if err != nil {
		t.Fatal(err)
	}
	aopts.Batch = true
	batchedA, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), aopts)
	if err != nil {
		t.Fatal(err)
	}
	if batchedA.Est.Estimate() != scalarA.Est.Estimate() || batchedA.Est.N() != scalarA.Est.N() ||
		batchedA.Successes != scalarA.Successes {
		t.Errorf("adaptive campaign mismatch: batched %g over %d, scalar %g over %d",
			batchedA.Est.Estimate(), batchedA.Est.N(), scalarA.Est.Estimate(), scalarA.Est.N())
	}
}
