package montecarlo_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/montecarlo"
)

// cancelAfter returns a context plus a progress callback that cancels
// it once the campaign passes n samples. Progress callbacks are
// serialized, so this is race-free even across shards.
func cancelAfter(n int) (context.Context, montecarlo.ProgressFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	return ctx, func(p montecarlo.Progress) {
		if p.Done >= n {
			cancel()
		}
	}
}

func TestCampaignCancellationReturnsPartial(t *testing.T) {
	ev := evaluation(t)
	ctx, prog := cancelAfter(200)
	opts := montecarlo.CampaignOptions{
		Samples: 1 << 20, Seed: 1,
		Progress: prog, ProgressEvery: 50,
	}
	c, err := ev.Engine.RunCampaign(ctx, ev.RandomSampler(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c == nil {
		t.Fatal("no partial campaign returned")
	}
	if n := c.Est.N(); n < 200 || n >= opts.Samples {
		t.Errorf("partial campaign has %d samples", n)
	}
	if c.Options.Samples != c.Est.N() {
		t.Errorf("Options.Samples %d != evaluated %d", c.Options.Samples, c.Est.N())
	}
}

func TestParallelCancellationMergesPartialsNoLeak(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, prog := cancelAfter(300)
	opts := montecarlo.CampaignOptions{
		Samples: 1 << 20, Seed: 7,
		Progress: prog, ProgressEvery: 50,
	}
	c, err := montecarlo.RunCampaignParallel(ctx, engines, ev.RandomSampler(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c == nil || c.Est.N() < 300 || c.Est.N() >= opts.Samples {
		t.Fatalf("partial merge wrong: %+v", c)
	}
	// All shard goroutines must have exited (RunCampaignParallel joins
	// them before returning); allow the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestParallelShardPanicIsolated(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(2)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage shard 1 so its first run panics; the orchestrator must
	// convert that into an indexed error instead of crashing.
	engines[1].SoC = nil
	_, err = montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(),
		montecarlo.CampaignOptions{Samples: 100, Seed: 1})
	if err == nil {
		t.Fatal("panicking shard produced no error")
	}
	if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "panic") {
		t.Errorf("error not indexed to the panicking shard: %v", err)
	}
}

func TestRunAdaptiveTracksConvergence(t *testing.T) {
	ev := evaluation(t)
	opts := montecarlo.DefaultAdaptive(0.01)
	opts.MinSamples = 500
	opts.CheckEvery = 200
	opts.MaxSamples = 5000
	opts.TrackConvergence = true
	c, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Convergence) != c.Est.N() {
		t.Fatalf("trace length %d, campaign has %d samples", len(c.Convergence), c.Est.N())
	}
	last := c.Convergence[len(c.Convergence)-1]
	if math.Abs(last-c.SSF()) > 1e-9 {
		t.Errorf("trace ends at %v, SSF is %v", last, c.SSF())
	}
	for i, v := range c.Convergence {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("trace entry %d is %v", i, v)
		}
	}
}

func TestMergeSequentialExtendsTrace(t *testing.T) {
	ev := evaluation(t)
	o1 := montecarlo.CampaignOptions{Samples: 300, Seed: 1, TrackConvergence: true}
	o2 := montecarlo.CampaignOptions{Samples: 200, Seed: 2, TrackConvergence: true}
	c1, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), o1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), o2)
	if err != nil {
		t.Fatal(err)
	}
	prefix := append([]float64(nil), c1.Convergence...)
	c1.MergeSequential(c2)
	if c1.Est.N() != 500 || len(c1.Convergence) != 500 {
		t.Fatalf("merged N=%d trace=%d", c1.Est.N(), len(c1.Convergence))
	}
	for i, v := range prefix {
		if c1.Convergence[i] != v {
			t.Fatalf("prefix entry %d changed: %v -> %v", i, v, c1.Convergence[i])
		}
	}
	// The appended entries are running estimates of the combined
	// campaign, so the last one converges to the merged estimate.
	last := c1.Convergence[499]
	if math.Abs(last-c1.SSF()) > 1e-9 {
		t.Errorf("trace ends at %v, merged SSF is %v", last, c1.SSF())
	}
}

func TestRunAdaptiveParallelStopsNearSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.DefaultAdaptive(0.01)
	opts.MinSamples = 600
	opts.CheckEvery = 150
	opts.MaxSamples = 30000
	seq, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.Est.N() < opts.MinSamples || par.Est.N() > opts.MaxSamples {
		t.Fatalf("parallel adaptive ran %d samples", par.Est.N())
	}
	if par.Est.N() < opts.MaxSamples && par.Est.LLNBound(opts.Epsilon) > opts.Risk {
		t.Errorf("stopped with bound %v > risk %v", par.Est.LLNBound(opts.Epsilon), opts.Risk)
	}
	// Both runs chase the same criterion, so the parallel stop point
	// lands within one round (CheckEvery per engine) of the sequential
	// one, plus the sequential check granularity.
	round := opts.CheckEvery * len(engines)
	if diff := par.Est.N() - seq.Est.N(); diff > round+opts.CheckEvery || diff < -(round+opts.CheckEvery) {
		t.Errorf("parallel stopped at %d, sequential at %d (round size %d)",
			par.Est.N(), seq.Est.N(), round)
	}
}

func TestRunAdaptiveParallelDeterministic(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.DefaultAdaptive(0.02)
	opts.MinSamples = 300
	opts.CheckEvery = 100
	opts.MaxSamples = 5000
	a, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.SSF() != b.SSF() || a.Est.N() != b.Est.N() || a.Successes != b.Successes {
		t.Errorf("parallel adaptive not reproducible: %v/%d/%d vs %v/%d/%d",
			a.SSF(), a.Est.N(), a.Successes, b.SSF(), b.Est.N(), b.Successes)
	}
}

func TestRunAdaptiveParallelTracksRoundTrace(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.DefaultAdaptive(0.02)
	opts.MinSamples = 300
	opts.CheckEvery = 100
	opts.MaxSamples = 2000
	opts.TrackConvergence = true
	c, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rounds := (c.Est.N() + 2*opts.CheckEvery - 1) / (2 * opts.CheckEvery)
	if len(c.Convergence) != rounds {
		t.Errorf("round trace has %d entries, ran %d rounds", len(c.Convergence), rounds)
	}
	if last := c.Convergence[len(c.Convergence)-1]; math.Abs(last-c.SSF()) > 1e-12 {
		t.Errorf("trace ends at %v, SSF is %v", last, c.SSF())
	}
}

func TestProgressReporting(t *testing.T) {
	ev := evaluation(t)
	var snaps []montecarlo.Progress
	opts := montecarlo.CampaignOptions{
		Samples: 1000, Seed: 1,
		Progress:      func(p montecarlo.Progress) { snaps = append(snaps, p) },
		ProgressEvery: 100,
	}
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 5 {
		t.Fatalf("only %d progress snapshots", len(snaps))
	}
	prev := 0
	for _, p := range snaps {
		if p.Done < prev {
			t.Fatalf("Done went backwards: %d after %d", p.Done, prev)
		}
		prev = p.Done
		if p.Total != 1000 {
			t.Errorf("Total = %d", p.Total)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Done != 1000 {
		t.Errorf("final Done = %d", final.Done)
	}
	if math.Abs(final.SSF-c.SSF()) > 1e-12 {
		t.Errorf("final progress SSF %v, campaign %v", final.SSF, c.SSF())
	}
	paths := 0
	for _, n := range final.PathCounts {
		paths += n
	}
	if paths != 1000 {
		t.Errorf("final path mix sums to %d", paths)
	}
}

func TestParallelProgressAggregates(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	var final montecarlo.Progress
	opts := montecarlo.CampaignOptions{
		Samples: 900, Seed: 3,
		Progress:      func(p montecarlo.Progress) { final = p }, // callbacks are serialized
		ProgressEvery: 100,
	}
	c, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if final.Done != 900 {
		t.Errorf("final aggregate Done = %d", final.Done)
	}
	if math.Abs(final.SSF-c.SSF()) > 1e-9 {
		t.Errorf("aggregate SSF %v, merged campaign %v", final.SSF, c.SSF())
	}
}

func TestEnginePoolRun(t *testing.T) {
	ev := evaluation(t)
	pool, err := ev.NewEnginePool(2)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 2 {
		t.Fatalf("pool size %d", pool.Size())
	}
	if pool.Engines[0] != ev.Engine {
		t.Error("pool does not reuse the evaluation's engine")
	}
	a, err := pool.Run(context.Background(), ev.RandomSampler(), montecarlo.CampaignOptions{Samples: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Run(context.Background(), ev.RandomSampler(), montecarlo.CampaignOptions{Samples: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.SSF() != b.SSF() || a.Successes != b.Successes {
		t.Error("pool campaigns not reproducible across reuse")
	}
}
