package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/netlist"
	"repro/internal/sampling"
	"repro/internal/timingsim"
)

// Merge folds another campaign (same sampler, same engine family) into
// this one: estimator, class/path/success accounting, register
// attribution, and pattern sets. Convergence traces are dropped — a
// cross-shard merge has no meaningful global sample order, so the
// receiver's trace is cleared to avoid misreading a partial trace as
// the whole campaign's. Use MergeSequential when o is a same-engine
// continuation of c (the chunked adaptive rounds), where the
// concatenated order is real.
//
// Merge errors when the campaigns are statistically incomparable:
// importance weights are likelihood ratios against one proposal, so
// folding estimators from different samplers (or class/path counters
// from different attack modes) would silently produce a biased
// aggregate. On error the receiver is unchanged.
func (c *Campaign) Merge(o *Campaign) error {
	if o == nil {
		return nil
	}
	if c.SamplerName != o.SamplerName {
		return fmt.Errorf("montecarlo: merge of %q campaign into %q: importance weights are incomparable across samplers", o.SamplerName, c.SamplerName)
	}
	if c.Options.Mode != o.Options.Mode {
		return fmt.Errorf("montecarlo: merge across attack modes (%v into %v)", o.Options.Mode, c.Options.Mode)
	}
	// All validations precede the first mutation so the receiver is
	// unchanged on any error path.
	if (c.Strata == nil) != (o.Strata == nil) {
		return fmt.Errorf("montecarlo: merge of stratified and unstratified campaigns")
	}
	if (c.CV == nil) != (o.CV == nil) {
		return fmt.Errorf("montecarlo: merge of control-variate and plain campaigns")
	}
	if c.CV != nil && c.CVMean != o.CVMean {
		return fmt.Errorf("montecarlo: merge across control means (%v vs %v)", c.CVMean, o.CVMean)
	}
	if c.Strata != nil {
		// Self-validating: errors (mismatched stratum layout) leave
		// both sides untouched.
		if err := c.Strata.Merge(o.Strata); err != nil {
			return fmt.Errorf("montecarlo: %w", err)
		}
	}
	if len(o.RegContribution) > 0 && c.RegContribution == nil {
		c.RegContribution = make(map[netlist.NodeID]float64, len(o.RegContribution))
	}
	if c.CV != nil {
		c.CV.Merge(*o.CV)
	}
	c.Weights.Merge(o.Weights)
	mergeTally(&c.TDraws, o.TDraws)
	mergeTally(&c.THits, o.THits)
	c.Est.Merge(o.Est)
	c.Successes += o.Successes
	c.RTLCycles += o.RTLCycles
	//hot
	for i := range c.ClassCounts {
		c.ClassCounts[i] += o.ClassCounts[i]
	}
	//hot
	for i := range c.PathCounts {
		c.PathCounts[i] += o.PathCounts[i]
	}
	//hot
	for r, v := range o.RegContribution {
		c.RegContribution[r] += v
	}
	if o.Patterns != nil {
		if c.Patterns == nil {
			c.Patterns = make(map[string]bool)
		}
		for p := range o.Patterns {
			c.Patterns[p] = true
		}
	}
	if o.PatternCounts != nil {
		if c.PatternCounts == nil {
			c.PatternCounts = make(map[timingsim.PatternClass]int)
		}
		for k, n := range o.PatternCounts {
			c.PatternCounts[k] += n
		}
	}
	c.Convergence = nil
	c.Options.Samples += o.Options.Samples
	return nil
}

// MergeSequential folds a continuation chunk into this campaign while
// extending the convergence trace: o must have been run after c on the
// same engine (as the chunked RunAdaptive rounds are), so the
// concatenated sample order is the campaign's real order. The appended
// entries are recomputed as running estimates of the combined campaign
// — o's own trace is relative to its chunk only. When either side did
// not track convergence the trace is dropped, as in Merge. The replay
// reconstructs terms of the plain weighted mean, so campaigns carrying
// per-stratum or control-variate state (whose traces follow their own
// estimator) also drop the trace.
//
// MergeSequential errors under the same conditions as Merge (sampler
// or attack-mode mismatch), leaving the receiver unchanged.
func (c *Campaign) MergeSequential(o *Campaign) error {
	var conv []float64
	replayable := c.Strata == nil && c.CV == nil &&
		(o == nil || (o.Strata == nil && o.CV == nil))
	if o != nil && replayable && c.Convergence != nil && o.Convergence != nil {
		// The k-th chunk entry m_k is the running mean after k terms,
		// so each weighted term is recoverable as
		// m_k·k − m_{k−1}·(k−1); replaying the terms on a copy of the
		// pre-merge estimator yields the campaign-global trace.
		conv = c.Convergence
		scratch := c.Est
		prev := 0.0
		for k, m := range o.Convergence {
			term := m*float64(k+1) - prev*float64(k)
			scratch.Add(term, 1)
			conv = append(conv, scratch.Estimate())
			prev = m
		}
	}
	if err := c.Merge(o); err != nil {
		return err
	}
	c.Convergence = conv
	return nil
}

// mergeTally adds per-t tallies element-wise, growing dst as needed.
func mergeTally(dst *[]int, src []int) {
	for len(*dst) < len(src) {
		*dst = append(*dst, 0)
	}
	for i, v := range src {
		(*dst)[i] += v
	}
}

// validateEngines checks an engine pool for parallel use.
func validateEngines(engines []*Engine) error {
	if len(engines) == 0 {
		return fmt.Errorf("montecarlo: no engines")
	}
	for i, e := range engines {
		if e == nil || e.golden == nil {
			return fmt.Errorf("montecarlo: engine %d has no golden run", i)
		}
	}
	return nil
}

// runShards runs one campaign per engine concurrently, one goroutine
// per engine (engines with a zero-sample shard are skipped). Shard
// panics are isolated: a panicking shard surfaces as that shard's
// indexed error instead of crashing the process.
func runShards(ctx context.Context, engines []*Engine, sampler sampling.Sampler, shardOpts []CampaignOptions, agg *progressAgg) ([]*Campaign, []error) {
	results := make([]*Campaign, len(engines))
	errs := make([]error, len(engines))
	var wg sync.WaitGroup
	for i := range engines {
		if shardOpts[i].Samples == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("shard %d: panic: %v", i, r)
				}
			}()
			c, err := engines[i].runCampaign(ctx, sampler, shardOpts[i], agg, i)
			if err != nil {
				err = fmt.Errorf("shard %d: %w", i, err)
			}
			results[i], errs[i] = c, err
		}(i)
	}
	wg.Wait()
	return results, errs
}

// mergeShards folds shard results in index order, so the merged result
// is independent of goroutine scheduling. The fold target is a clone of
// the first contributing shard — never the shard itself — so the
// entries of results stay intact for callers that retain per-shard
// campaigns (e.g. a per-shard checkpoint store). Cancellation is not a
// shard failure: when the only errors are the context's, the partial
// shards are merged and returned alongside the context error. Any other
// shard error (including an isolated panic) fails the whole campaign.
func mergeShards(ctx context.Context, results []*Campaign, errs []error) (*Campaign, error) {
	// Preallocated to the shard count: the merge runs once per adaptive
	// round, and growing these inside the round loop shows up in the
	// aggregation profile of large pools.
	hard := make([]error, 0, len(errs))
	for _, err := range errs {
		if err == nil {
			continue
		}
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			continue
		}
		hard = append(hard, err)
	}
	if len(hard) > 0 {
		return nil, errors.Join(hard...)
	}
	var merged *Campaign
	for i, r := range results {
		if r == nil || r.Est.N() == 0 {
			continue
		}
		if merged == nil {
			merged = r.Clone()
			continue
		}
		if err := merged.Merge(r); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if merged == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("montecarlo: no shards ran")
	}
	return merged, ctx.Err()
}

// shardCampaignOptions derives the per-engine shard options for one
// parallel round of n total samples: an even split (earlier shards take
// the remainder) with deterministically derived per-shard seeds.
func shardCampaignOptions(engines int, n int, opts CampaignOptions, round int64) []CampaignOptions {
	base := n / engines
	extra := n % engines
	out := make([]CampaignOptions, engines)
	for i := range out {
		so := opts
		so.Progress = nil // shards report through the shared aggregator
		so.Samples = base
		if i < extra {
			so.Samples++
		}
		so.Seed = opts.Seed*1000003 + round*int64(engines) + int64(i)
		out[i] = so
	}
	return out
}

// RunCampaignParallel splits a campaign across the given engines, one
// goroutine per engine, and merges the shard results. Every engine must
// target the same design/benchmark/attack and have completed its golden
// run; each shard draws from the shared sampler with its own
// deterministically-derived seed, so the merged result is reproducible
// (independent of scheduling) but differs from the sequential campaign
// with the same seed.
//
// Samplers built by internal/sampling are safe for concurrent Draw with
// distinct rngs (they are immutable after construction).
//
// The context cancels the campaign: the shards stop at their next
// sample boundary, their partials are merged, and the merged partial
// Campaign is returned together with the context's error. A shard that
// panics or fails is reported as an indexed error ("shard %d: ...")
// without taking down the process; any such failure fails the whole
// campaign.
func RunCampaignParallel(ctx context.Context, engines []*Engine, sampler sampling.Sampler, opts CampaignOptions) (*Campaign, error) {
	if err := validateEngines(engines); err != nil {
		return nil, err
	}
	if opts.Samples < 1 {
		return nil, fmt.Errorf("montecarlo: %d samples", opts.Samples)
	}
	if opts.TrackConvergence {
		return nil, fmt.Errorf("montecarlo: convergence tracking is per-shard; run sequentially to trace convergence")
	}
	agg := newProgressAgg(opts.Progress, opts.ProgressEvery, opts.Samples, len(engines))
	shardOpts := shardCampaignOptions(len(engines), opts.Samples, opts, 0)
	results, errs := runShards(ctx, engines, sampler, shardOpts, agg)
	merged, err := mergeShards(ctx, results, errs)
	if merged != nil {
		merged.Options.Seed = opts.Seed
		merged.Options.Progress = opts.Progress
	}
	return merged, err
}

// AdaptiveOptions configures RunAdaptive and RunAdaptiveParallel.
type AdaptiveOptions struct {
	// Mode, Seed, TrackPatterns as in CampaignOptions.
	Mode          Mode
	Seed          int64
	TrackPatterns bool
	// TrackConvergence records the campaign's running estimate. In
	// RunAdaptive the trace has one entry per sample, exactly as a
	// sequential RunCampaign would produce (the chunked rounds are
	// stitched with MergeSequential). In RunAdaptiveParallel the
	// per-sample order across shards is not meaningful, so the trace
	// holds one entry per round instead: the merged estimate after
	// each round.
	TrackConvergence bool
	// Epsilon and Risk define the stopping criterion via the paper's
	// weak-LLN bound: stop once
	// Pr[|estimate − SSF| ≥ Epsilon] ≤ Risk, i.e.
	// variance/(N·Epsilon²) ≤ Risk.
	Epsilon, Risk float64
	// MinSamples guards against stopping on a premature zero-variance
	// streak; MaxSamples bounds the total effort.
	MinSamples, MaxSamples int
	// CheckEvery controls how often the bound is evaluated. In the
	// parallel run each engine contributes CheckEvery samples per
	// round, so the bound is checked every CheckEvery×engines samples.
	CheckEvery int
	// Progress and ProgressEvery as in CampaignOptions; adaptive
	// snapshots report Total as 0 (open-ended).
	Progress      ProgressFunc
	ProgressEvery int
	// Batch, BatchWindow, and Lanes as in CampaignOptions: every chunk
	// (and every shard of a parallel round) runs the lane-batched
	// execution path at the requested width, leaving results
	// bit-identical to the scalar run with the same options.
	Batch       bool
	BatchWindow int
	Lanes       int
	// ControlVariate as in CampaignOptions: every chunk/shard pairs the
	// outcome with the analytical control and the merged campaign
	// reports the control-variate-adjusted estimate.
	ControlVariate bool
	// Resume continues a previously checkpointed RunAdaptiveParallel
	// campaign: the accumulated total restored from a Checkpoint
	// snapshot of the same options. ResumeRound is the number of rounds
	// that snapshot had completed — the round counter (and with it the
	// deterministic per-(round, shard) seeds) continues from there, so
	// a resumed run is bit-identical to the uninterrupted run with the
	// same options, provided the snapshot round-tripped exactly
	// (CampaignSnapshot guarantees this, including through JSON).
	// RunAdaptive ignores both fields.
	Resume      *Campaign
	ResumeRound int64
	// AdaptProposal re-tunes the sampler between rounds when it
	// implements sampling.Adaptive: the Importance sampler re-tilts
	// its timing distribution toward the observed per-stratum hit
	// rates, and the Stratified sampler switches to Neyman allocation
	// from the per-stratum variances. The re-tuned proposal is a pure
	// function of the accumulated campaign state, so checkpointed runs
	// resume bit-identically; weight-floor clamping (AdaptFloor, as a
	// fraction of the largest re-tuned weight; 0 means
	// sampling.DefaultAdaptFloor) keeps every stratum explored and the
	// estimate unbiased. Non-adaptive samplers are unaffected.
	AdaptProposal bool
	AdaptFloor    float64
	// Checkpoint, when non-nil, is invoked by RunAdaptiveParallel after
	// every merged round with the number of completed rounds and a deep
	// copy of the accumulated campaign (safe to retain and serialize;
	// its Convergence holds the per-round trace when TrackConvergence
	// is set). Feed the copy back through Resume/ResumeRound to
	// continue after an interruption. The callback runs on the
	// orchestrating goroutine between rounds; it must not call back
	// into the engines. RunAdaptive ignores it.
	Checkpoint func(rounds int64, total *Campaign)
}

// DefaultAdaptive returns a criterion targeting ±eps at 5% risk.
func DefaultAdaptive(eps float64) AdaptiveOptions {
	return AdaptiveOptions{
		Epsilon:    eps,
		Risk:       0.05,
		MinSamples: 2000,
		MaxSamples: 1 << 20,
		CheckEvery: 500,
	}
}

// sanitize validates the stopping criterion and applies the defaults
// RunAdaptive has always applied to the effort bounds.
func (o *AdaptiveOptions) sanitize() error {
	if o.Epsilon <= 0 || o.Risk <= 0 || o.Risk >= 1 {
		return fmt.Errorf("montecarlo: bad criterion eps=%v risk=%v", o.Epsilon, o.Risk)
	}
	if o.MinSamples < 1 {
		o.MinSamples = 1
	}
	if o.MaxSamples < o.MinSamples {
		o.MaxSamples = o.MinSamples
	}
	if o.CheckEvery < 1 {
		o.CheckEvery = 100
	}
	return nil
}

// converged reports whether the accumulated campaign meets the
// stopping criterion, evaluated on the campaign's active estimator:
// for plain campaigns the bound is Est.LLNBound exactly (variance /
// (N·eps²)); stratified and control-variate campaigns use their own
// estimator variance, which is what converges faster.
func (o *AdaptiveOptions) converged(total *Campaign) bool {
	return total != nil &&
		total.Est.N() >= o.MinSamples &&
		total.llnBound(o.Epsilon) <= o.Risk
}

// adapted re-tunes the sampler from the accumulated campaign between
// rounds (no-op unless AdaptProposal is set and the sampler supports
// it). Determinism: the result depends only on (sampler, total).
func (o *AdaptiveOptions) adapted(s sampling.Sampler, total *Campaign) (sampling.Sampler, error) {
	if !o.AdaptProposal || total == nil {
		return s, nil
	}
	ad, ok := s.(sampling.Adaptive)
	if !ok {
		return s, nil
	}
	return ad.Adapt(sampling.AdaptState{
		Draws:  total.TDraws,
		Hits:   total.THits,
		Strata: total.Strata,
		Floor:  o.AdaptFloor,
	})
}

// finish stamps the synthesized options of an adaptive campaign.
func (o *AdaptiveOptions) finish(total *Campaign) *Campaign {
	if total == nil {
		return nil
	}
	total.Options.Seed = o.Seed
	total.Options.Samples = total.Est.N()
	return total
}

// RunAdaptive samples until the weak-LLN convergence bound the paper
// quotes drops below the requested risk ("the whole process is continued
// until the empirical estimate converges"), then returns the campaign.
// Cancellation via ctx returns the partial campaign accumulated so far
// alongside the context's error.
func (e *Engine) RunAdaptive(ctx context.Context, sampler sampling.Sampler, opts AdaptiveOptions) (*Campaign, error) {
	if e.golden == nil {
		return nil, fmt.Errorf("montecarlo: RunAdaptive before RunGolden")
	}
	if err := opts.sanitize(); err != nil {
		return nil, err
	}
	agg := newProgressAgg(opts.Progress, opts.ProgressEvery, 0, 1)
	var total *Campaign
	cur := sampler
	chunkIdx := int64(0)
	for {
		remaining := opts.MaxSamples
		if total != nil {
			remaining = opts.MaxSamples - total.Est.N()
		}
		if remaining <= 0 {
			break
		}
		chunkN := opts.CheckEvery
		if chunkN > remaining {
			chunkN = remaining
		}
		chunk, err := e.runCampaign(ctx, cur, CampaignOptions{
			Samples:          chunkN,
			Mode:             opts.Mode,
			Seed:             opts.Seed*999983 + chunkIdx,
			TrackConvergence: opts.TrackConvergence,
			TrackPatterns:    opts.TrackPatterns,
			Batch:            opts.Batch,
			BatchWindow:      opts.BatchWindow,
			Lanes:            opts.Lanes,
			ControlVariate:   opts.ControlVariate,
		}, agg, 0)
		chunkIdx++
		if total == nil {
			total = chunk
		} else if chunk != nil {
			if merr := total.MergeSequential(chunk); merr != nil {
				return opts.finish(total), merr
			}
		}
		if err != nil {
			return opts.finish(total), err
		}
		agg.rebase(0)
		if opts.converged(total) {
			break
		}
		next, aerr := opts.adapted(cur, total)
		if aerr != nil {
			return opts.finish(total), aerr
		}
		cur = next
	}
	return opts.finish(total), nil
}

// RunAdaptiveParallel composes the parallel and adaptive campaigns: it
// runs chunked rounds across the engine pool (CheckEvery samples per
// engine per round) and evaluates the weak-LLN stopping bound on the
// merged estimator between rounds, so it stops within one round of the
// criterion being met. Per-(round, shard) seeds are derived
// deterministically and shards merge in index order, making the result
// reproducible and independent of scheduling (it differs from the
// sequential RunAdaptive with the same seed).
//
// Cancellation returns the merged partial campaign alongside the
// context's error. A panicking or failing shard surfaces as an indexed
// error and ends the campaign, but the rounds accumulated before the
// failing round are not discarded: the partial campaign is returned
// alongside the error, exactly as on cancellation. (The failing round's
// own shards are dropped — a half-merged round would not be resumable.)
func RunAdaptiveParallel(ctx context.Context, engines []*Engine, sampler sampling.Sampler, opts AdaptiveOptions) (*Campaign, error) {
	if err := validateEngines(engines); err != nil {
		return nil, err
	}
	if err := opts.sanitize(); err != nil {
		return nil, err
	}
	nE := len(engines)
	agg := newProgressAgg(opts.Progress, opts.ProgressEvery, 0, nE)
	copts := CampaignOptions{
		Mode:           opts.Mode,
		Seed:           opts.Seed,
		TrackPatterns:  opts.TrackPatterns,
		Batch:          opts.Batch,
		BatchWindow:    opts.BatchWindow,
		Lanes:          opts.Lanes,
		ControlVariate: opts.ControlVariate,
	}
	var total *Campaign
	var conv []float64
	cur := sampler
	startRound := int64(0)
	if opts.Resume != nil {
		total = opts.Resume.Clone()
		conv = total.Convergence
		total.Convergence = nil
		startRound = opts.ResumeRound
		// Re-derive the proposal the uninterrupted run would be using at
		// this round. Adapt is a pure function of the accumulated state
		// (not of the receiver chain), so one application to the original
		// sampler lands on the same proposal the round-by-round
		// adaptations would have produced.
		next, aerr := opts.adapted(cur, total)
		if aerr != nil {
			return opts.finish(total), aerr
		}
		cur = next
	}
	// finish restores the per-round convergence trace on every return
	// path that carries a campaign (normal stop, cancellation, hard
	// shard failure).
	finish := func() *Campaign {
		if total != nil && opts.TrackConvergence {
			total.Convergence = conv
		}
		return opts.finish(total)
	}
	for round := startRound; ; round++ {
		done := 0
		if total != nil {
			done = total.Est.N()
		}
		remaining := opts.MaxSamples - done
		if remaining <= 0 {
			break
		}
		roundN := opts.CheckEvery * nE
		if roundN > remaining {
			roundN = remaining
		}
		shardOpts := shardCampaignOptions(nE, roundN, copts, round)
		results, errs := runShards(ctx, engines, cur, shardOpts, agg)
		roundTotal, err := mergeShards(ctx, results, errs)
		if roundTotal != nil {
			if total == nil {
				total = roundTotal
			} else if merr := total.Merge(roundTotal); merr != nil {
				return finish(), merr
			}
			if opts.TrackConvergence {
				conv = append(conv, total.SSF())
			}
		}
		if err != nil {
			return finish(), err
		}
		if opts.Checkpoint != nil && total != nil {
			snap := total.Clone()
			if opts.TrackConvergence {
				snap.Convergence = append([]float64(nil), conv...)
			}
			opts.Checkpoint(round+1, snap)
		}
		for i := range engines {
			agg.rebase(i)
		}
		if opts.converged(total) {
			break
		}
		next, aerr := opts.adapted(cur, total)
		if aerr != nil {
			return finish(), aerr
		}
		cur = next
	}
	return finish(), nil
}
