package montecarlo

import (
	"fmt"
	"sync"

	"repro/internal/sampling"
	"repro/internal/timingsim"
)

// Merge folds another campaign (same sampler, same engine family) into
// this one: estimator, class/path/success accounting, register
// attribution, and pattern sets. Convergence traces are not merged
// (they are per-shard sequences); the receiver's is cleared to avoid
// misreading a partial trace as the whole campaign's.
func (c *Campaign) Merge(o *Campaign) {
	c.Est.Merge(o.Est)
	c.Successes += o.Successes
	c.RTLCycles += o.RTLCycles
	for i := range c.ClassCounts {
		c.ClassCounts[i] += o.ClassCounts[i]
	}
	for i := range c.PathCounts {
		c.PathCounts[i] += o.PathCounts[i]
	}
	for r, v := range o.RegContribution {
		c.RegContribution[r] += v
	}
	if o.Patterns != nil {
		if c.Patterns == nil {
			c.Patterns = make(map[string]bool)
		}
		for p := range o.Patterns {
			c.Patterns[p] = true
		}
	}
	if o.PatternCounts != nil {
		if c.PatternCounts == nil {
			c.PatternCounts = make(map[timingsim.PatternClass]int)
		}
		for k, n := range o.PatternCounts {
			c.PatternCounts[k] += n
		}
	}
	c.Convergence = nil
	c.Options.Samples += o.Options.Samples
}

// RunCampaignParallel splits a campaign across the given engines, one
// goroutine per engine, and merges the shard results. Every engine must
// target the same design/benchmark/attack and have completed its golden
// run; each shard draws from the shared sampler with its own
// deterministically-derived seed, so the merged result is reproducible
// (independent of scheduling) but differs from the sequential campaign
// with the same seed.
//
// Samplers built by internal/sampling are safe for concurrent Draw with
// distinct rngs (they are immutable after construction).
func RunCampaignParallel(engines []*Engine, sampler sampling.Sampler, opts CampaignOptions) (*Campaign, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("montecarlo: no engines")
	}
	if opts.Samples < 1 {
		return nil, fmt.Errorf("montecarlo: %d samples", opts.Samples)
	}
	if opts.TrackConvergence {
		return nil, fmt.Errorf("montecarlo: convergence tracking is per-shard; run sequentially to trace convergence")
	}
	for i, e := range engines {
		if e.golden == nil {
			return nil, fmt.Errorf("montecarlo: engine %d has no golden run", i)
		}
	}
	n := len(engines)
	results := make([]*Campaign, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	base := opts.Samples / n
	extra := opts.Samples % n
	for i, e := range engines {
		shard := opts
		shard.Samples = base
		if i < extra {
			shard.Samples++
		}
		shard.Seed = opts.Seed*1000003 + int64(i)
		if shard.Samples == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, e *Engine, shard CampaignOptions) {
			defer wg.Done()
			results[i], errs[i] = e.RunCampaign(sampler, shard)
		}(i, e, shard)
	}
	wg.Wait()
	var merged *Campaign
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if results[i] == nil {
			continue
		}
		if merged == nil {
			merged = results[i]
			continue
		}
		merged.Merge(results[i])
	}
	if merged == nil {
		return nil, fmt.Errorf("montecarlo: no shards ran")
	}
	merged.Options.Seed = opts.Seed
	return merged, nil
}

// AdaptiveOptions configures RunAdaptive.
type AdaptiveOptions struct {
	// Mode, Seed, TrackPatterns as in CampaignOptions.
	Mode          Mode
	Seed          int64
	TrackPatterns bool
	// Epsilon and Risk define the stopping criterion via the paper's
	// weak-LLN bound: stop once
	// Pr[|estimate − SSF| ≥ Epsilon] ≤ Risk, i.e.
	// variance/(N·Epsilon²) ≤ Risk.
	Epsilon, Risk float64
	// MinSamples guards against stopping on a premature zero-variance
	// streak; MaxSamples bounds the total effort.
	MinSamples, MaxSamples int
	// CheckEvery controls how often the bound is evaluated.
	CheckEvery int
}

// DefaultAdaptive returns a criterion targeting ±eps at 5% risk.
func DefaultAdaptive(eps float64) AdaptiveOptions {
	return AdaptiveOptions{
		Epsilon:    eps,
		Risk:       0.05,
		MinSamples: 2000,
		MaxSamples: 1 << 20,
		CheckEvery: 500,
	}
}

// RunAdaptive samples until the weak-LLN convergence bound the paper
// quotes drops below the requested risk ("the whole process is continued
// until the empirical estimate converges"), then returns the campaign.
func (e *Engine) RunAdaptive(sampler sampling.Sampler, opts AdaptiveOptions) (*Campaign, error) {
	if e.golden == nil {
		return nil, fmt.Errorf("montecarlo: RunAdaptive before RunGolden")
	}
	if opts.Epsilon <= 0 || opts.Risk <= 0 || opts.Risk >= 1 {
		return nil, fmt.Errorf("montecarlo: bad criterion eps=%v risk=%v", opts.Epsilon, opts.Risk)
	}
	if opts.MinSamples < 1 {
		opts.MinSamples = 1
	}
	if opts.MaxSamples < opts.MinSamples {
		opts.MaxSamples = opts.MinSamples
	}
	if opts.CheckEvery < 1 {
		opts.CheckEvery = 100
	}
	var total *Campaign
	chunkIdx := int64(0)
	for {
		remaining := opts.MaxSamples
		if total != nil {
			remaining = opts.MaxSamples - total.Est.N()
		}
		if remaining <= 0 {
			break
		}
		chunkN := opts.CheckEvery
		if chunkN > remaining {
			chunkN = remaining
		}
		chunk, err := e.RunCampaign(sampler, CampaignOptions{
			Samples:       chunkN,
			Mode:          opts.Mode,
			Seed:          opts.Seed*999983 + chunkIdx,
			TrackPatterns: opts.TrackPatterns,
		})
		if err != nil {
			return nil, err
		}
		chunkIdx++
		if total == nil {
			total = chunk
		} else {
			total.Merge(chunk)
		}
		if total.Est.N() >= opts.MinSamples && total.Est.LLNBound(opts.Epsilon) <= opts.Risk {
			break
		}
	}
	total.Options.Seed = opts.Seed
	return total, nil
}
