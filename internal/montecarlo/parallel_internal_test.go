package montecarlo

import (
	"context"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// synthetic builds a standalone campaign aggregate for merge tests (no
// engine needed: mergeShards only touches accumulated state).
func synthetic(sampler string, mode Mode, vals ...float64) *Campaign {
	c := &Campaign{
		SamplerName:     sampler,
		RegContribution: map[netlist.NodeID]float64{1: float64(len(vals))},
		Patterns:        map[string]bool{"p" + sampler: true},
	}
	c.Options.Mode = mode
	for _, v := range vals {
		c.Est.Add(v, 1)
		if v > 0 {
			c.Successes++
		}
		c.ClassCounts[0]++
		c.PathCounts[0]++
	}
	c.Options.Samples = len(vals)
	return c
}

func TestMergeShardsDoesNotAliasShardResults(t *testing.T) {
	c0 := synthetic("s", GateAttack, 1, 0)
	c1 := synthetic("s", GateAttack, 0, 0, 1)
	merged, err := mergeShards(context.Background(), []*Campaign{c0, c1}, []error{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if merged == c0 || merged == c1 {
		t.Fatal("merged campaign aliases a shard result")
	}
	if merged.Est.N() != 5 {
		t.Fatalf("merged N = %d", merged.Est.N())
	}
	// Mutating the merged campaign — as the server's checkpoint path
	// does between rounds — must leave the per-shard results intact.
	merged.Est.Add(5, 1)
	merged.Successes += 10
	merged.ClassCounts[1] += 3
	merged.RegContribution[netlist.NodeID(2)] = 7
	merged.Patterns["new"] = true
	if c0.Est.N() != 2 || c0.Successes != 1 || c0.ClassCounts[1] != 0 {
		t.Errorf("shard 0 counters mutated by post-merge writes: %+v", c0)
	}
	if _, ok := c0.RegContribution[netlist.NodeID(2)]; ok {
		t.Error("shard 0 RegContribution aliased by merged campaign")
	}
	if c0.Patterns["new"] {
		t.Error("shard 0 Patterns aliased by merged campaign")
	}
	if c0.RegContribution[netlist.NodeID(1)] != 2 {
		t.Errorf("shard 0 contribution overwritten: %v", c0.RegContribution)
	}
}

func TestMergeShardsSamplerMismatchIsHardError(t *testing.T) {
	c0 := synthetic("random", GateAttack, 1)
	c1 := synthetic("importance", GateAttack, 0)
	_, err := mergeShards(context.Background(), []*Campaign{c0, c1}, []error{nil, nil})
	if err == nil || !strings.Contains(err.Error(), "sampler") {
		t.Fatalf("want sampler-mismatch error, got %v", err)
	}
}
