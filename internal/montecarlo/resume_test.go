package montecarlo_test

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/sampling"
)

// panicSampler delegates to an inner sampler until a global draw budget
// is exhausted, then panics — simulating a shard that dies mid-round.
type panicSampler struct {
	inner sampling.Sampler
	n     int64
	after int64
}

func (p *panicSampler) Name() string { return p.inner.Name() }

func (p *panicSampler) Draw(rng *rand.Rand) (fault.Sample, float64) {
	if atomic.AddInt64(&p.n, 1) > p.after {
		panic("injected sampler failure")
	}
	return p.inner.Draw(rng)
}

func (p *panicSampler) TimingProbs() []float64 { return p.inner.TimingProbs() }

// A shard failing in round 2 must not discard round 1: the partial
// campaign accumulated in earlier rounds comes back alongside the
// error, matching the documented cancellation behavior.
func TestRunAdaptiveParallelPartialOnShardFailure(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds of 3×100 samples; the budget of 450 draws completes round
	// 1 (300 draws) and dies partway into round 2.
	sp := &panicSampler{inner: ev.RandomSampler(), after: 450}
	opts := montecarlo.AdaptiveOptions{
		Epsilon:    1e-9, // unreachable: the run ends on the failure
		Risk:       0.05,
		MinSamples: 10000,
		MaxSamples: 10000,
		CheckEvery: 100,
		Seed:       21,
	}
	camp, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, sp, opts)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("want shard panic error, got %v", err)
	}
	if camp == nil {
		t.Fatal("partial campaign discarded on shard failure")
	}
	if camp.Est.N() != 300 {
		t.Fatalf("partial campaign has %d samples, want the 300 of round 1", camp.Est.N())
	}
	if camp.Options.Samples != 300 {
		t.Errorf("Options.Samples = %d, want 300", camp.Options.Samples)
	}
}

func TestMergeRejectsMismatchedSampler(t *testing.T) {
	ev := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 50, Seed: 1}
	c1, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	im, err := ev.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ev.Engine.RunCampaign(context.Background(), im, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := c1.Est.State()
	if err := c1.Merge(c2); err == nil {
		t.Fatal("Merge accepted campaigns from different samplers")
	}
	if c1.Est.State() != before {
		t.Error("failed Merge mutated the receiver")
	}
	if err := c1.MergeSequential(c2); err == nil {
		t.Fatal("MergeSequential accepted campaigns from different samplers")
	}
}

func TestMergeRejectsMismatchedMode(t *testing.T) {
	ev := evaluation(t)
	c1, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(),
		montecarlo.CampaignOptions{Samples: 50, Seed: 1, Mode: montecarlo.GateAttack})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(),
		montecarlo.CampaignOptions{Samples: 50, Seed: 2, Mode: montecarlo.RegisterAttack})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Merge(c2); err == nil {
		t.Fatal("Merge accepted campaigns from different attack modes")
	}
}

// MergeSequential's trace replay must stay consistent with the direct
// weighted union when importance weights are non-unit: every appended
// entry is the running weighted mean of the concatenated term sequence.
func TestMergeSequentialImportanceWeights(t *testing.T) {
	ev := evaluation(t)
	im, err := ev.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ev.Engine.RunCampaign(context.Background(), im,
		montecarlo.CampaignOptions{Samples: 300, Seed: 1, TrackConvergence: true})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ev.Engine.RunCampaign(context.Background(), im,
		montecarlo.CampaignOptions{Samples: 200, Seed: 2, TrackConvergence: true})
	if err != nil {
		t.Fatal(err)
	}
	// Independent reference: the weighted term sums recovered from the
	// chunks' own running means. sum1 and each prefix sum of chunk 2
	// give the expected concatenated running means directly.
	sum1 := c1.SSF() * 300
	trace2 := append([]float64(nil), c2.Convergence...)
	if err := c1.MergeSequential(c2); err != nil {
		t.Fatal(err)
	}
	if c1.Est.N() != 500 || len(c1.Convergence) != 500 {
		t.Fatalf("merged N=%d trace=%d", c1.Est.N(), len(c1.Convergence))
	}
	for k, m2 := range trace2 {
		want := (sum1 + m2*float64(k+1)) / float64(300+k+1)
		got := c1.Convergence[300+k]
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("merged trace entry %d = %v, want %v", 300+k, got, want)
		}
	}
	if got, want := c1.Convergence[499], c1.SSF(); math.Abs(got-want) > 1e-9 {
		t.Errorf("trace ends at %v, merged SSF is %v", got, want)
	}
}

// Campaign snapshots must round-trip through JSON bit-identically —
// this is what makes server checkpoint resume exact across restarts.
func TestCampaignSnapshotJSONRoundTrip(t *testing.T) {
	ev := evaluation(t)
	im, err := ev.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}
	c, err := ev.Engine.RunCampaign(context.Background(), im, montecarlo.CampaignOptions{
		Samples: 400, Seed: 3, TrackConvergence: true, TrackPatterns: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap montecarlo.CampaignSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	r := snap.Campaign()
	if r.Est.State() != c.Est.State() {
		t.Fatalf("estimator state changed: %+v vs %+v", r.Est.State(), c.Est.State())
	}
	if r.SSF() != c.SSF() || r.Successes != c.Successes || r.RTLCycles != c.RTLCycles {
		t.Error("scalar aggregates changed over the round trip")
	}
	if r.ClassCounts != c.ClassCounts || r.PathCounts != c.PathCounts {
		t.Error("histograms changed over the round trip")
	}
	if len(r.Convergence) != len(c.Convergence) {
		t.Fatalf("trace length %d vs %d", len(r.Convergence), len(c.Convergence))
	}
	for i := range r.Convergence {
		if r.Convergence[i] != c.Convergence[i] {
			t.Fatalf("trace entry %d changed: %v vs %v", i, r.Convergence[i], c.Convergence[i])
		}
	}
	if len(r.RegContribution) != len(c.RegContribution) {
		t.Fatal("register attribution changed size")
	}
	for k, v := range c.RegContribution {
		if r.RegContribution[k] != v {
			t.Fatalf("contribution of %v changed: %v vs %v", k, r.RegContribution[k], v)
		}
	}
	if len(r.Patterns) != len(c.Patterns) || len(r.PatternCounts) != len(c.PatternCounts) {
		t.Error("pattern sets changed over the round trip")
	}
}

// A run resumed from a JSON-round-tripped checkpoint must finish
// bit-identical to the uninterrupted run with the same options.
func TestRunAdaptiveParallelResumeBitIdentical(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.AdaptiveOptions{
		Epsilon:          1, // fixed-size: min == max pins the total
		Risk:             0.5,
		MinSamples:       1200,
		MaxSamples:       1200,
		CheckEvery:       200, // rounds of 400 samples, 3 rounds
		Seed:             9,
		TrackConvergence: true,
	}
	type cp struct {
		rounds int64
		data   []byte
	}
	var cps []cp
	opts.Checkpoint = func(rounds int64, total *montecarlo.Campaign) {
		data, err := json.Marshal(total.Snapshot())
		if err != nil {
			t.Error(err)
			return
		}
		cps = append(cps, cp{rounds: rounds, data: data})
	}
	full, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 3 {
		t.Fatalf("got %d checkpoints, want 3", len(cps))
	}
	// Resume from the first checkpoint (after round 1 of 3).
	var snap montecarlo.CampaignSnapshot
	if err := json.Unmarshal(cps[0].data, &snap); err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = nil
	opts.Resume = snap.Campaign()
	opts.ResumeRound = cps[0].rounds
	resumed, err := montecarlo.RunAdaptiveParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Est.State() != full.Est.State() {
		t.Fatalf("resumed estimator %+v, uninterrupted %+v", resumed.Est.State(), full.Est.State())
	}
	if resumed.SSF() != full.SSF() {
		t.Fatalf("resumed SSF %v, uninterrupted %v", resumed.SSF(), full.SSF())
	}
	if resumed.Successes != full.Successes || resumed.ClassCounts != full.ClassCounts ||
		resumed.PathCounts != full.PathCounts || resumed.RTLCycles != full.RTLCycles {
		t.Error("resumed aggregates differ from the uninterrupted run")
	}
	if len(resumed.Convergence) != len(full.Convergence) {
		t.Fatalf("trace length %d vs %d", len(resumed.Convergence), len(full.Convergence))
	}
	for i := range resumed.Convergence {
		if resumed.Convergence[i] != full.Convergence[i] {
			t.Fatalf("trace entry %d: %v vs %v", i, resumed.Convergence[i], full.Convergence[i])
		}
	}
}
