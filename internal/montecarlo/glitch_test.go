package montecarlo_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/timingsim"
)

func TestGlitchCaptureSemantics(t *testing.T) {
	// Pipeline: in -> inv chain (3 deep) -> r. A value change needs
	// 3*14 ps to settle; glitching the capture below that latches the
	// stale value.
	nl := netlist.New(16)
	in := nl.AddInput("in")
	g1 := nl.AddGate(netlist.Inv, in)
	g2 := nl.AddGate(netlist.Inv, g1)
	g3 := nl.AddGate(netlist.Inv, g2)
	r := nl.AddDFF(g3, "r", false)
	fast := nl.AddDFF(in, "fast", false) // zero-logic path
	dm := timingsim.DefaultDelayModel()
	sim, err := timingsim.New(nl, dm)
	if err != nil {
		t.Fatal(err)
	}
	// Previous cycle: in=0; glitched cycle: in=1 (all inv outputs flip).
	prev := map[netlist.NodeID]bool{in: false, g1: true, g2: false, g3: true}
	cur := map[netlist.NodeID]bool{in: true, g1: false, g2: true, g3: false}
	pf := func(id netlist.NodeID) bool { return prev[id] }
	cf := func(id netlist.NodeID) bool { return cur[id] }

	// Capture at full period: everything settled, nothing flips.
	if got := sim.GlitchCapture(pf, cf, dm.ClockPeriod); len(got) != 0 {
		t.Fatalf("unglitched capture flipped %v", got)
	}
	// Capture right after the sources switch: both regs unsettled...
	got := sim.GlitchCapture(pf, cf, dm.Setup/2)
	if len(got) != 2 {
		t.Fatalf("deep glitch flipped %v, want both", got)
	}
	// Capture between the fast path (0 ps) and the slow path (42 ps):
	// only the deep register flips. Deadline = glitchTime - setup.
	mid := 3*dm.CellDelay[netlist.Inv] - 1 + dm.Setup
	got = sim.GlitchCapture(pf, cf, mid)
	if len(got) != 1 || got[0] != r {
		t.Fatalf("mid glitch flipped %v, want [%d]", got, r)
	}
	_ = fast
	// Unchanged data never flips, no matter how deep the glitch.
	if got := sim.GlitchCapture(pf, pf, 0); len(got) != 0 {
		t.Fatalf("static cycle flipped %v", got)
	}
}

func TestGlitchCaptureRespectsClockGating(t *testing.T) {
	nl := netlist.New(16)
	in := nl.AddInput("in")
	en := nl.AddInput("en")
	g := nl.AddGate(netlist.Inv, in)
	r := nl.AddDFF(g, "r", false)
	nl.SetDFFEnable(r, en)
	dm := timingsim.DefaultDelayModel()
	sim, _ := timingsim.New(nl, dm)
	prev := map[netlist.NodeID]bool{in: false, g: true}
	curOn := map[netlist.NodeID]bool{in: true, g: false, en: true}
	curOff := map[netlist.NodeID]bool{in: true, g: false, en: false}
	at := func(m map[netlist.NodeID]bool) func(netlist.NodeID) bool {
		return func(id netlist.NodeID) bool { return m[id] }
	}
	if got := sim.GlitchCapture(at(prev), at(curOn), 1); len(got) != 1 {
		t.Fatalf("enabled reg not glitched: %v", got)
	}
	if got := sim.GlitchCapture(at(prev), at(curOff), 1); len(got) != 0 {
		t.Fatalf("gated-off reg glitched: %v", got)
	}
}

func TestSettleTime(t *testing.T) {
	nl := netlist.New(16)
	in := nl.AddInput("in")
	cur := in
	for i := 0; i < 5; i++ {
		cur = nl.AddGate(netlist.Inv, cur)
	}
	nl.AddDFF(cur, "r", false)
	dm := timingsim.DefaultDelayModel()
	sim, _ := timingsim.New(nl, dm)
	want := 5*dm.CellDelay[netlist.Inv] + dm.Setup
	if got := sim.SettleTime(); got != want {
		t.Fatalf("SettleTime = %v, want %v", got, want)
	}
}

func TestGlitchAttackSampling(t *testing.T) {
	tech := fault.DefaultClockGlitch()
	a, err := fault.NewGlitchAttack("g", 20, tech)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s := a.SampleNominal(rng)
		if s.T < 0 || s.T >= 20 {
			t.Fatalf("T = %d", s.T)
		}
		if s.Depth < 0 || s.Depth > tech.ClockPeriod {
			t.Fatalf("depth = %v", s.Depth)
		}
	}
	if _, err := fault.NewGlitchAttack("g", 0, tech); err == nil {
		t.Error("TRange 0 accepted")
	}
	if _, err := fault.NewGlitchAttack("g", 5, fault.ClockGlitch{}); err == nil {
		t.Error("zero clock period accepted")
	}
}

func TestGlitchCampaignEndToEnd(t *testing.T) {
	ev := evaluation(t)
	attack, err := fault.NewGlitchAttack("glitch", 50, fault.DefaultClockGlitch())
	if err != nil {
		t.Fatal(err)
	}
	c, err := ev.Engine.RunGlitchCampaign(context.Background(), attack, montecarlo.CampaignOptions{Samples: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := c.ClassCounts[0] + c.ClassCounts[1] + c.ClassCounts[2]
	if total != 3000 {
		t.Fatalf("class counts sum %d", total)
	}
	// A half-period glitch on a design with deep comparators must
	// disturb something in a substantial share of the cycles.
	if c.ClassCounts[montecarlo.Masked] == 3000 {
		t.Error("glitch campaign never latched a stale value")
	}
	t.Logf("glitch: SSF=%.5f successes=%d classes=%v", c.SSF(), c.Successes, c.ClassCounts)
}

func TestGlitchDeterministicDepthSweep(t *testing.T) {
	// A deeper glitch flips at least as many registers as a shallow
	// one at the same cycle.
	ev := evaluation(t)
	rng := rand.New(rand.NewSource(2))
	shallow := ev.Engine.RunGlitchOnce(rng, fault.GlitchSample{T: 1, Depth: 50})
	deep := ev.Engine.RunGlitchOnce(rng, fault.GlitchSample{T: 1, Depth: 500})
	if len(deep.Flipped) < len(shallow.Flipped) {
		t.Errorf("deeper glitch flipped fewer regs: %d vs %d", len(deep.Flipped), len(shallow.Flipped))
	}
}

func TestGlitchCampaignValidation(t *testing.T) {
	ev := evaluation(t)
	attack, _ := fault.NewGlitchAttack("glitch", 5000, fault.DefaultClockGlitch())
	if _, err := ev.Engine.RunGlitchCampaign(context.Background(), attack, montecarlo.CampaignOptions{Samples: 10}); err == nil {
		t.Error("oversized TRange accepted")
	}
	ok, _ := fault.NewGlitchAttack("glitch", 10, fault.DefaultClockGlitch())
	if _, err := ev.Engine.RunGlitchCampaign(context.Background(), ok, montecarlo.CampaignOptions{Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestMPUMeetsTiming(t *testing.T) {
	// Design-rule consistency: the zero-delay RTL abstraction is only
	// valid if every path settles within the cycle — the MPU's
	// longest path plus setup must fit the delay model's period.
	ev := evaluation(t)
	settle := ev.Engine.Timing.SettleTime()
	period := ev.Engine.Timing.ClockPeriod()
	if settle >= period {
		t.Fatalf("MPU settle time %.0f ps exceeds the %.0f ps clock period", settle, period)
	}
	t.Logf("settle %.0f ps, period %.0f ps (slack %.0f ps)", settle, period, period-settle)
}
