package montecarlo_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/precharac"
	"repro/internal/soc"
)

var (
	fwOnce sync.Once
	fw     *core.Framework
	fwErr  error
)

func framework(t *testing.T) *core.Framework {
	t.Helper()
	fwOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.Precharac.MaxDepth = 51
		opts.Precharac.TraceCycles = 768
		opts.Precharac.LifetimeCap = 120
		opts.Precharac.Probes = 1
		fw, fwErr = core.Build(opts)
	})
	if fwErr != nil {
		t.Fatal(fwErr)
	}
	return fw
}

func evaluation(t *testing.T) *core.Evaluation {
	t.Helper()
	ev, err := framework(t).NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestGoldenRunArtifacts(t *testing.T) {
	ev := evaluation(t)
	g := ev.Golden
	if g.TargetCycle <= g.SetupEnd || g.FinalCycle < g.TargetCycle {
		t.Fatalf("golden cycles inconsistent: %+v", g)
	}
	if g.MarkedIssue != g.TargetCycle-1 {
		t.Errorf("marked issue %d, target %d", g.MarkedIssue, g.TargetCycle)
	}
	if len(g.Checkpoints) < 2 {
		t.Error("too few checkpoints")
	}
	for i, cp := range g.Checkpoints {
		if cp.Cycle != i*g.Interval {
			t.Fatalf("checkpoint %d at cycle %d, want %d", i, cp.Cycle, i*g.Interval)
		}
	}
	if len(g.Accesses) == 0 {
		t.Error("golden access log empty")
	}
	if len(g.Policy) != 4 {
		t.Errorf("policy regions = %d", len(g.Policy))
	}
}

func TestCampaignBeforeGoldenFails(t *testing.T) {
	fw := framework(t)
	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	attack, err := fw.NewAttack(core.DefaultAttackSpec())
	if err != nil {
		t.Fatal(err)
	}
	s, err := soc.WithMPU(fw.Opts.SoC, prog, fw.MPU)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := montecarlo.New(s, attack, fw.Place, fw.Opts.Delay, fw.Char, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunCampaign(context.Background(), &fakeSampler{attack}, montecarlo.CampaignOptions{Samples: 1}); err == nil {
		t.Error("campaign before golden run accepted")
	}
	if _, err := eng.RunGolden(0); err == nil {
		t.Error("zero checkpoint interval accepted")
	}
}

// TestModelCheckGuard pins the construction-time static verification:
// a design with an error-severity defect is rejected by New, the
// SkipModelCheck escape hatch admits it, and precharac applies the same
// gate.
func TestModelCheckGuard(t *testing.T) {
	fw := framework(t)
	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	attack, err := fw.NewAttack(core.DefaultAttackSpec())
	if err != nil {
		t.Fatal(err)
	}
	// A private MPU copy (the shared framework one must stay clean)
	// with two registers sharing a name: NL009, error severity.
	mpu, err := soc.BuildMPU(soc.DefaultMPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	regs := mpu.Netlist.Regs()
	if len(regs) < 2 {
		t.Fatal("MPU has fewer than 2 registers")
	}
	mpu.Netlist.Node(regs[1]).Name = mpu.Netlist.Node(regs[0]).Name
	s, err := soc.WithMPU(fw.Opts.SoC, prog, mpu)
	if err != nil {
		t.Fatal(err)
	}
	place := placement.Place(mpu.Netlist)

	if _, err := montecarlo.New(s, attack, place, fw.Opts.Delay, nil, nil); err == nil {
		t.Error("New accepted a design with an error-severity finding")
	}
	if _, err := montecarlo.NewWithOptions(s, attack, place, fw.Opts.Delay, nil, nil,
		montecarlo.Options{SkipModelCheck: true}); err != nil {
		t.Errorf("SkipModelCheck still rejected: %v", err)
	}
	pcOpts := fw.Opts.Precharac
	if _, err := precharac.Characterize(s, pcOpts); err == nil {
		t.Error("Characterize accepted a design with an error-severity finding")
	}
}

type fakeSampler struct{ a *fault.Attack }

func (f *fakeSampler) Name() string { return "fake" }
func (f *fakeSampler) Draw(rng *rand.Rand) (fault.Sample, float64) {
	return f.a.SampleNominal(rng), 1
}
func (f *fakeSampler) TimingProbs() []float64 { return nil }

func TestRunOnceDeterministic(t *testing.T) {
	ev := evaluation(t)
	rng := rand.New(rand.NewSource(1))
	sample := ev.Attack.SampleNominal(rng)
	r1 := ev.Engine.RunOnce(rand.New(rand.NewSource(2)), sample, montecarlo.GateAttack)
	r2 := ev.Engine.RunOnce(rand.New(rand.NewSource(2)), sample, montecarlo.GateAttack)
	if r1.Success != r2.Success || r1.Class != r2.Class || r1.Path != r2.Path {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
	if len(r1.Flipped) != len(r2.Flipped) {
		t.Fatal("flip sets differ")
	}
}

func TestCampaignAccounting(t *testing.T) {
	ev := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 400, Seed: 7, TrackConvergence: true, TrackPatterns: true}
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	classTotal := c.ClassCounts[0] + c.ClassCounts[1] + c.ClassCounts[2]
	pathTotal := c.PathCounts[0] + c.PathCounts[1] + c.PathCounts[2] + c.PathCounts[3]
	if classTotal != 400 || pathTotal != 400 {
		t.Errorf("counts: classes %d paths %d", classTotal, pathTotal)
	}
	if len(c.Convergence) != 400 {
		t.Errorf("convergence length %d", len(c.Convergence))
	}
	if c.SSF() < 0 || c.SSF() > 1 {
		t.Errorf("SSF = %v", c.SSF())
	}
	if c.Est.N() != 400 {
		t.Errorf("estimator N = %d", c.Est.N())
	}
	// Masked class count equals masked path count (1:1 mapping).
	if c.ClassCounts[montecarlo.Masked] != c.PathCounts[montecarlo.PathMasked] {
		t.Error("masked class/path mismatch")
	}
	// Non-masked runs with tracking produce pattern tallies.
	nonMasked := 400 - c.ClassCounts[montecarlo.Masked]
	tallied := 0
	for _, n := range c.PatternCounts {
		tallied += n
	}
	if tallied != nonMasked {
		t.Errorf("pattern tallies %d, non-masked %d", tallied, nonMasked)
	}
}

func TestCampaignReproducible(t *testing.T) {
	ev := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 300, Seed: 9}
	c1, _ := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	c2, _ := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if c1.SSF() != c2.SSF() || c1.Successes != c2.Successes || c1.ClassCounts != c2.ClassCounts {
		t.Fatal("same seed produced different campaigns")
	}
}

// TestAnalyticalMatchesRTL validates the paper's claim that evaluating
// memory-type-only errors analytically does not compromise accuracy:
// for every analytically-decided run, an engine without the analytical
// shortcut (full RTL resume) must reach the same verdict.
func TestAnalyticalMatchesRTL(t *testing.T) {
	fw := framework(t)
	ev := evaluation(t)

	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	s2, err := soc.WithMPU(fw.Opts.SoC, prog, fw.MPU)
	if err != nil {
		t.Fatal(err)
	}
	rtlOnly, err := montecarlo.New(s2, ev.Attack, fw.Place, fw.Opts.Delay, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtlOnly.RunGolden(fw.Opts.CheckpointInterval); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	dummy := rand.New(rand.NewSource(0))
	checked := 0
	for i := 0; i < 4000 && checked < 60; i++ {
		sample := ev.Attack.SampleNominal(rng)
		rA := ev.Engine.RunOnce(dummy, sample, montecarlo.GateAttack)
		if rA.Path != montecarlo.PathAnalytical {
			continue
		}
		checked++
		rB := rtlOnly.RunOnce(dummy, sample, montecarlo.GateAttack)
		if rB.Path != montecarlo.PathRTL {
			t.Fatalf("reference engine did not use RTL (%v)", rB.Path)
		}
		if rA.Success != rB.Success {
			t.Fatalf("analytical %v vs RTL %v for sample %+v (flips %v)",
				rA.Success, rB.Success, sample, rA.Flipped)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d analytical runs observed; test inconclusive", checked)
	}
	t.Logf("verified %d analytical outcomes against full RTL", checked)
}

// TestPrunedRunsWouldFail validates lifetime pruning the same way: runs
// decided by pruning must fail under the full RTL engine.
func TestPrunedRunsWouldFail(t *testing.T) {
	fw := framework(t)
	ev := evaluation(t)
	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	s2, _ := soc.WithMPU(fw.Opts.SoC, prog, fw.MPU)
	rtlOnly, err := montecarlo.New(s2, ev.Attack, fw.Place, fw.Opts.Delay, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtlOnly.RunGolden(fw.Opts.CheckpointInterval); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	dummy := rand.New(rand.NewSource(0))
	checked := 0
	for i := 0; i < 4000 && checked < 40; i++ {
		sample := ev.Attack.SampleNominal(rng)
		rA := ev.Engine.RunOnce(dummy, sample, montecarlo.GateAttack)
		if rA.Path != montecarlo.PathPruned || len(rA.Flipped) == 0 {
			continue
		}
		checked++
		rB := rtlOnly.RunOnce(dummy, sample, montecarlo.GateAttack)
		if rB.Success {
			t.Fatalf("pruned run succeeds under RTL: sample %+v flips %v", sample, rA.Flipped)
		}
	}
	if checked < 5 {
		t.Skipf("only %d pruned runs observed", checked)
	}
}

func TestHardeningSuppressesFlips(t *testing.T) {
	ev := evaluation(t)
	// Hardening every register with an enormous factor suppresses all
	// flips: every run becomes masked.
	hardened := map[netlist.NodeID]float64{}
	for _, r := range ev.Engine.SoC.MPU.Netlist.Regs() {
		hardened[r] = 1e12
	}
	prev := ev.Engine.Hardened
	ev.Engine.Hardened = hardened
	defer func() { ev.Engine.Hardened = prev }()
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), montecarlo.CampaignOptions{Samples: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.ClassCounts[montecarlo.Masked] != 300 {
		t.Errorf("hardened-everything still latched flips: %v", c.ClassCounts)
	}
}

func TestRegisterAttackFindsCriticalRegs(t *testing.T) {
	ev := evaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 6000, Seed: 4, Mode: montecarlo.RegisterAttack}
	c, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Successes == 0 {
		t.Fatal("register attacks found no successes")
	}
	ranked := c.CriticalRegisters()
	if len(ranked) == 0 {
		t.Fatal("no critical registers")
	}
	sum := 0.0
	for i, cr := range ranked {
		sum += cr.Share
		if i > 0 && cr.Share > ranked[i-1].Share {
			t.Fatal("ranking not sorted")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	// The known critical bits must rank at the top.
	nl := ev.Engine.SoC.MPU.Netlist
	topNames := map[string]bool{}
	for i := 0; i < 8 && i < len(ranked); i++ {
		topNames[nl.Node(ranked[i].Reg).Name] = true
	}
	if !topNames["cfg_perm1[1]"] {
		t.Errorf("cfg_perm1[1] not in top-8: %v", topNames)
	}
	n95 := montecarlo.CoverageCount(ranked, 0.95)
	frac := float64(n95) / float64(len(nl.Regs()))
	if frac > 0.15 {
		t.Errorf("95%% coverage needs %.0f%% of registers; expected concentration", frac*100)
	}
}

func TestCoverageCountEdges(t *testing.T) {
	ranked := []montecarlo.CriticalRegister{{Reg: 1, Share: 0.6}, {Reg: 2, Share: 0.3}, {Reg: 3, Share: 0.1}}
	if montecarlo.CoverageCount(ranked, 0.5) != 1 {
		t.Error("0.5 coverage")
	}
	if montecarlo.CoverageCount(ranked, 0.9) != 2 {
		t.Error("0.9 coverage")
	}
	if montecarlo.CoverageCount(ranked, 1.0) != 3 {
		t.Error("1.0 coverage")
	}
	if montecarlo.CoverageCount(nil, 0.9) != 0 {
		t.Error("empty ranking")
	}
}

func TestRankContributionsMerge(t *testing.T) {
	a := map[netlist.NodeID]float64{1: 3, 2: 1}
	b := map[netlist.NodeID]float64{2: 1, 3: 1}
	ranked := montecarlo.RankContributions(a, b)
	if len(ranked) != 3 || ranked[0].Reg != 1 {
		t.Fatalf("ranked = %+v", ranked)
	}
	if math.Abs(ranked[0].Share-0.5) > 1e-12 || math.Abs(ranked[1].Share-2.0/6) > 1e-12 {
		t.Errorf("shares = %+v", ranked)
	}
	if montecarlo.RankContributions(nil) != nil {
		t.Error("empty merge should be nil")
	}
}

func TestRankContributionsDeterministic(t *testing.T) {
	// Catastrophic-cancellation values: the float total (and through it
	// every share) differs in the last ulps depending on summation
	// order, so this fails if the fold ever follows map iteration order
	// again.
	m := map[netlist.NodeID]float64{0: 1e16, 1: 1, 2: -1e16, 3: 1e-3}
	for id := netlist.NodeID(4); id < 64; id++ {
		m[id] = 0.1 * float64(id)
	}
	base := montecarlo.RankContributions(m)
	for run := 0; run < 200; run++ {
		got := montecarlo.RankContributions(m)
		if len(got) != len(base) {
			t.Fatalf("run %d: length %d != %d", run, len(got), len(base))
		}
		for i := range got {
			if got[i].Reg != base[i].Reg || math.Float64bits(got[i].Share) != math.Float64bits(base[i].Share) {
				t.Fatalf("run %d: entry %d = %+v, want bit-identical %+v", run, i, got[i], base[i])
			}
		}
	}
}

func TestAttributeSuccessFiltersPassengers(t *testing.T) {
	ev := evaluation(t)
	groups := ev.Engine.SoC.MPU.Groups
	critical := groups["cfg_limit0"][9]
	passenger := groups["cfg_base1"][0]
	sample := fault.Sample{T: 5}
	got := ev.Engine.AttributeSuccess(sample, []netlist.NodeID{critical, passenger})
	if len(got) != 1 || got[0] != critical {
		t.Fatalf("attribution = %v, want only cfg_limit0[9]", got)
	}
	// Conjunctions keep the whole set.
	perm3 := groups["cfg_perm3"]
	limit3 := groups["cfg_limit3"]
	conj := []netlist.NodeID{perm3[2], perm3[1], limit3[9], limit3[4]}
	got = ev.Engine.AttributeSuccess(sample, conj)
	if len(got) != len(conj) {
		t.Fatalf("conjunction attribution = %v", got)
	}
	// Uncovered sets pass through.
	viol := groups["viol_r"][0]
	got = ev.Engine.AttributeSuccess(sample, []netlist.NodeID{viol})
	if len(got) != 1 || got[0] != viol {
		t.Fatal("uncovered set should pass through")
	}
}

func TestOutcomeClassAndPathStrings(t *testing.T) {
	if montecarlo.Masked.String() != "masked" || montecarlo.Mixed.String() != "both" {
		t.Error("class strings")
	}
	if montecarlo.PathAnalytical.String() != "analytical" || montecarlo.PathPruned.String() != "pruned" {
		t.Error("path strings")
	}
	if montecarlo.OutcomeClass(7).String() == "" || montecarlo.EvalPath(7).String() == "" {
		t.Error("unknown values should format")
	}
}

func TestEngineRejectsOversizedTRange(t *testing.T) {
	fw := framework(t)
	spec := core.DefaultAttackSpec()
	spec.TRange = 5000
	fwOpts := fw.Opts
	_ = fwOpts
	if _, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, spec); err == nil {
		t.Error("TRange larger than the benchmark accepted")
	}
}
