package montecarlo_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/logicsim"
	"repro/internal/montecarlo"
)

// interpretedEvaluation builds a second, fully interpreted evaluation
// stack: generated-evaluator binding is disabled around core.Build, so
// every plan compiled for it interprets the op stream. Plans bind at
// compile time, so re-enabling afterwards does not retroactively
// switch the returned engine.
func interpretedEvaluation(t *testing.T) *core.Evaluation {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Precharac.MaxDepth = 51
	opts.Precharac.TraceCycles = 768
	opts.Precharac.LifetimeCap = 120
	opts.Precharac.Probes = 1
	// NewEvaluation compiles the engine's own simulator, so the whole
	// stack construction stays inside the disabled window.
	prev := logicsim.SetGeneratedEnabled(false)
	defer logicsim.SetGeneratedEnabled(prev)
	fw, err := core.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Engine.SoC.Sim.Plan().Generated() {
		t.Fatal("interpreted stack bound a generated evaluator")
	}
	return ev
}

// TestCampaignCodegenEquivalence is the codegen acceptance gate:
// fixed-seed campaigns over the generated straight-line evaluator are
// bit-identical to the interpreted ones — scalar and batched, at every
// lane width the generated file covers. The generated path may only
// ever change throughput, never a single sampled outcome.
func TestCampaignCodegenEquivalence(t *testing.T) {
	evGen := evaluation(t)
	if !evGen.Engine.SoC.Sim.Plan().Generated() {
		t.Fatal("default stack is not using the generated evaluator; mpu_evalgen.go failed to bind")
	}
	evInt := interpretedEvaluation(t)

	samplerGen, err := evGen.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}
	samplerInt, err := evInt.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}

	opts := montecarlo.CampaignOptions{
		Samples: 2000, Seed: 31,
		TrackConvergence: true, TrackPatterns: true,
	}
	wantScalar, err := evInt.Engine.RunCampaign(context.Background(), samplerInt, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotScalar, err := evGen.Engine.RunCampaign(context.Background(), samplerGen, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareCampaigns(t, "scalar", gotScalar, wantScalar)

	for _, lanes := range []int{64, 256, 512} {
		label := fmt.Sprintf("lanes=%d", lanes)
		o := opts
		o.Batch = true
		o.Lanes = lanes
		o.BatchWindow = 700
		want, err := evInt.Engine.RunCampaign(context.Background(), samplerInt, o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := evGen.Engine.RunCampaign(context.Background(), samplerGen, o)
		if err != nil {
			t.Fatal(err)
		}
		compareCampaigns(t, label, got, want)
	}
}
