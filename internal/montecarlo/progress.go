package montecarlo

import (
	"sync"
	"time"
)

// Progress is a snapshot of a running campaign, handed to the
// CampaignOptions.Progress callback. For parallel campaigns the
// snapshot aggregates every shard.
type Progress struct {
	// Done is the number of samples evaluated so far.
	Done int
	// Total is the requested sample count, or 0 when the campaign is
	// open-ended (adaptive runs stop on the convergence bound).
	Total int
	// SSF is the running importance-weighted estimate over everything
	// evaluated so far.
	SSF float64
	// PathCounts is the running evaluation-path mix
	// (masked / analytical / pruned / rtl).
	PathCounts [4]int
	// Elapsed is the wall time since the campaign started.
	Elapsed time.Duration
	// RunsPerSec is the overall throughput, Done / Elapsed.
	RunsPerSec float64
}

// ProgressFunc receives campaign progress snapshots. Invocations are
// serialized (never concurrent), but may happen on any shard goroutine;
// keep the callback fast — it runs on the sampling hot path.
type ProgressFunc func(Progress)

const defaultProgressEvery = 500

// progressAgg folds per-shard counters into the campaign-wide
// snapshots delivered to the user callback. A nil *progressAgg is
// valid and inert, so call sites need no nil checks.
type progressAgg struct {
	fn    ProgressFunc
	every int
	total int
	start time.Time

	mu       sync.Mutex
	shards   []shardProgress //guarded-by:mu
	lastDone int             //guarded-by:mu
}

// shardProgress mirrors one shard's current campaign. The base fields
// fold in completed chunks when a shard runs several campaigns back to
// back (the adaptive rounds), since each chunk restarts its counters.
type shardProgress struct {
	baseN     int
	baseSum   float64
	basePaths [4]int
	n         int
	sum       float64
	paths     [4]int
}

// newProgressAgg returns nil (inert) when fn is nil. total of 0 marks
// an open-ended campaign.
func newProgressAgg(fn ProgressFunc, every, total, shards int) *progressAgg {
	if fn == nil {
		return nil
	}
	if every < 1 {
		every = defaultProgressEvery
	}
	return &progressAgg{
		fn:     fn,
		every:  every,
		total:  total,
		start:  time.Now(),
		shards: make([]shardProgress, shards),
	}
}

// observe records the shard's current campaign state and emits a
// snapshot once at least `every` new samples accumulated since the last
// emission (or when force is set, e.g. at the end of a shard).
func (a *progressAgg) observe(shard int, c *Campaign, force bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &a.shards[shard]
	s.n = c.Est.N()
	s.sum = c.Est.Estimate() * float64(s.n)
	s.paths = c.PathCounts
	done := 0
	sum := 0.0
	var paths [4]int
	for i := range a.shards {
		sh := &a.shards[i]
		done += sh.baseN + sh.n
		sum += sh.baseSum + sh.sum
		for j := range paths {
			paths[j] += sh.basePaths[j] + sh.paths[j]
		}
	}
	if !force && done-a.lastDone < a.every {
		return
	}
	a.lastDone = done
	p := Progress{Done: done, Total: a.total, PathCounts: paths, Elapsed: time.Since(a.start)}
	if done > 0 {
		p.SSF = sum / float64(done)
	}
	if secs := p.Elapsed.Seconds(); secs > 0 {
		p.RunsPerSec = float64(done) / secs
	}
	a.fn(p)
}

// rebase folds the shard's current chunk into its base so the next
// chunk campaign extends rather than replaces it.
func (a *progressAgg) rebase(shard int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &a.shards[shard]
	s.baseN += s.n
	s.baseSum += s.sum
	for j := range s.basePaths {
		s.basePaths[j] += s.paths[j]
	}
	s.n, s.sum, s.paths = 0, 0, [4]int{}
}
