// Lane-batched campaign execution: speculative 64-sample bit-parallel
// RTL resume with exact scalar fallback.
//
// The scalar path pays three per-sample costs: a checkpoint restore to
// the injection cycle, one full SoC cycle to apply the gate-level
// injection, and an RTL resume of the faulty SoC to the marked access's
// decision. The batched path removes the first two by classifying every
// single-cycle sample against a cached golden attack window (the
// fault-free post-evaluation node values at each candidate injection
// cycle — the injection is a pure function of those values), and
// amortizes the third by packing up to 64 post-injection register
// states into the lanes of one forked logicsim.Simulator and stepping
// them together against the recorded golden bus trace.
//
// Speculation and fallback: a faulty MPU only influences the rest of
// the system through its grant/viol outputs at response-consumption
// cycles, so while a lane's outputs match the recorded golden responses
// the behavioural core, memory, and DMA provably stay on the golden
// trajectory and the shared replay is exact. A lane whose responding
// signals diverge is ejected to the scalar resume from the divergence
// cycle, reconstructing the full SoC state it would have had; a lane
// whose registers return to golden has converged (the fault died — the
// attack failed), mirroring the scalar convergence cut. Fixed-seed
// campaign results are bit-identical to the scalar path.
package montecarlo

import (
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/timingsim"
)

// batchState caches the golden attack window and the lane simulator; it
// is built lazily on the first batched run after RunGolden and reused
// for the rest of the campaign.
type batchState struct {
	// The recorded window [lo, hi]: lo = TargetCycle - TRange (clamped
	// to 0), hi = markedResp = TargetCycle + 1, the cycle the marked
	// response is consumed — no resume runs past it without diverging.
	lo, hi     int
	markedResp int
	// regs[c-lo] holds the golden register words at the beginning of
	// cycle c. The golden run never flips a lane, so each word is a
	// uniform broadcast and doubles as the 64-lane reference state.
	regs [][]uint64
	// comb[c-lo] is a bitset over node IDs of the golden post-Eval
	// values during cycle c (injection cycles only, c <= TargetCycle) —
	// exactly what a scalar StepInject would hand the inject callback.
	comb [][]uint64
	// regIndex maps a register node to its position in RegState order.
	regIndex map[netlist.NodeID]int
	sim      *logicsim.Simulator
	loadBuf  []uint64 // lane-load / fallback-restore scratch
	// wide is the 64·wideGroups-lane simulator of the current wide
	// resume, one of the per-width cache entries in wides (indexed by
	// group count; 4 or 8 — single-group resumes use sim's plain
	// 64-lane path). Built lazily by ensureWide over the shared
	// compiled plan.
	wide       logicsim.LaneSim
	wideGroups int
	wides      [9]logicsim.LaneSim
}

// ensureWide returns the cached wide simulator for the group count,
// building it on first use (widths alternate within a campaign when
// flushResumes right-sizes underfilled chunks, so each width keeps its
// own simulator).
func (b *batchState) ensureWide(groups int) logicsim.LaneSim {
	if b.wides[groups] == nil {
		w, err := logicsim.NewLaneSim(b.sim, groups)
		if err != nil {
			panic(err)
		}
		b.wides[groups] = w
	}
	b.wide = b.wides[groups]
	b.wideGroups = groups
	return b.wide
}

// pendingResume is one deferred PathRTL sample awaiting a lane of a
// batched resume.
type pendingResume struct {
	idx   int // index into the caller's results slice
	te    int // injection cycle
	flips []netlist.NodeID
}

// ensureBatchState records the golden attack window once: register
// state per cycle plus the post-Eval value bitsets the gate-level
// injection consumes.
func (e *Engine) ensureBatchState() *batchState {
	if e.batch != nil {
		return e.batch
	}
	g := e.golden
	lo := g.TargetCycle - e.Attack.TRange
	if lo < 0 {
		lo = 0
	}
	hi := g.TargetCycle + 1
	b := &batchState{lo: lo, hi: hi, markedResp: g.TargetCycle + 1}
	nl := e.SoC.MPU.Netlist
	regs := nl.Regs()
	b.regIndex = make(map[netlist.NodeID]int, len(regs))
	for i, r := range regs {
		b.regIndex[r] = i
	}
	b.regs = make([][]uint64, hi-lo+1)
	b.comb = make([][]uint64, hi-lo+1)
	nn := nl.NumNodes()
	e.restoreTo(lo)
	for c := lo; ; c++ {
		b.regs[c-lo] = e.SoC.Sim.RegState()
		if c == hi {
			break
		}
		if c <= g.TargetCycle {
			bitset := make([]uint64, (nn+63)/64)
			e.SoC.StepInject(func(values func(netlist.NodeID) bool) []netlist.NodeID {
				for i := 0; i < nn; i++ {
					if values(netlist.NodeID(i)) {
						bitset[i>>6] |= 1 << uint(i&63)
					}
				}
				return nil
			})
			b.comb[c-lo] = bitset
		} else {
			e.SoC.Step()
		}
	}
	b.sim = e.SoC.Sim.Fork()
	b.loadBuf = make([]uint64, len(regs))
	e.batch = b
	return b
}

// evalSample runs one sample's injection and classification against the
// cached golden window, without touching the SoC simulator. Samples the
// fast path cannot express exactly (effective multi-cycle disturbances,
// injection cycles outside the recorded window) fall through to the
// scalar RunOnce; rng consumption order is identical either way. When
// the outcome needs an RTL resume the result is returned with Path set
// to PathRTL and deferred=true, and the caller must complete it through
// a batched resume (or scalar fallback) before reading Success and
// ResumeCycles.
func (e *Engine) evalSample(rng *rand.Rand, sample fault.Sample, mode Mode) (res RunResult, te int, deferred bool) {
	g := e.golden
	b := e.ensureBatchState()
	te = g.TargetCycle - sample.T
	cycles := sample.Cycles
	if cycles < 1 || mode == RegisterAttack {
		cycles = 1
	}
	if max := g.TargetCycle - te + 1; cycles > max {
		cycles = max
	}
	if cycles != 1 || te < b.lo || te > g.TargetCycle {
		return e.RunOnce(rng, sample, mode), te, false
	}

	var flips []netlist.NodeID
	switch mode {
	case GateAttack:
		gates, dists := e.spotIndex().CombWithin(sample.Center, sample.Radius)
		if len(gates) > 0 {
			var strike timingsim.Strike
			strike, e.strikeWidths = e.Attack.StrikeFrom(sample, gates, dists, e.strikeWidths)
			injected := e.Timing.InjectBits(b.comb[te-b.lo], strike)
			flips = e.applyHardening(rng, injected.FlippedRegs)
		}
	case RegisterAttack:
		flips = e.applyHardening(rng, e.spotIndex().DFFWithin(sample.Center, sample.Radius))
	}
	res, needRTL := e.classifySingle(sample, te, flips)
	return res, te, needRTL
}

// RunBatch evaluates the samples exactly as consecutive RunOnce calls
// would (same rng consumption, bit-identical results) but completes the
// PathRTL resumes through the lane-batched speculative path at the
// engine's default lane width. RunGolden must have been called.
func (e *Engine) RunBatch(rng *rand.Rand, samples []fault.Sample, mode Mode) []RunResult {
	results := make([]RunResult, len(samples))
	pend := make([]pendingResume, 0, 64)
	for i, s := range samples {
		res, te, deferred := e.evalSample(rng, s, mode)
		results[i] = res
		if deferred {
			pend = append(pend, pendingResume{idx: i, te: te, flips: res.Flipped})
		}
	}
	groups, err := laneGroups(e.Lanes)
	if err != nil {
		groups = 1
	}
	e.flushResumes(pend, results, groups)
	return results
}

// flushResumes completes the deferred resumes in 64·groups-lane
// batches. Lanes need not share an injection cycle: an unloaded lane of
// the forked simulator follows the golden trajectory exactly (inputs
// are broadcast and evaluation is lane-wise), so each sample's flips
// are XORed into its lane when the shared resume reaches that sample's
// te+1. Sorting by te keeps each batch's cycle span (and the staggered
// entries) tight.
//
// The batch width does not affect any sample's outcome — each lane's
// trajectory is a function of only its own (te, flips) and the shared
// golden trace — so campaigns stay bit-identical across group counts;
// only how many resumes one combinational pass retires changes.
//
// Each chunk is right-sized to its occupancy: a wide pass costs
// `groups`× the word-work of a 64-lane pass regardless of how many
// lanes carry samples, so the tail of the pending list (and any flush
// smaller than a full wide word) drops to the narrowest width that
// still holds it instead of paying for empty groups.
func (e *Engine) flushResumes(pend []pendingResume, results []RunResult, groups int) {
	if len(pend) == 0 {
		return
	}
	sort.SliceStable(pend, func(i, j int) bool { return pend[i].te < pend[j].te })
	for start := 0; start < len(pend); {
		g := groups
		switch remaining := len(pend) - start; {
		case remaining <= 64:
			g = 1
		case remaining <= 256 && g > 4:
			g = 4
		}
		end := start + 64*g
		if end > len(pend) {
			end = len(pend)
		}
		if g == 1 {
			e.resumeBatch(pend[start:end], results)
		} else {
			e.resumeBatchWide(pend[start:end], results, g)
		}
		start = end
	}
}

// resumeBatch resumes up to 64 post-injection register states together:
// lane l of every register holds lanes[l]'s faulty value, and the
// forked simulator steps once per cycle against the recorded golden bus
// trace, with each lane's flips entering at its own injection cycle +1.
// Per cycle, one XOR pass against the golden register words yields
// every lane's error-liveness bit (converged lanes retire as failed,
// matching the scalar convergence cut), and the responding grant/viol
// signals are compared against the recorded golden responses at
// consumption cycles — lanes that diverge behaviorally are ejected to
// the exact scalar resume from the divergence cycle. Lanes still on the
// golden trajectory when the marked response is consumed saw the golden
// decision (trap), so the attack failed. lanes must be te-sorted.
func (e *Engine) resumeBatch(lanes []pendingResume, results []RunResult) {
	b := e.batch
	g := e.golden
	sim := b.sim
	startC := lanes[0].te + 1
	sim.SetRegState(b.regs[startC-b.lo])
	var active uint64
	next := 0
	useCut := !e.DisableConvergenceCut
	grant := e.SoC.MPU.OutGrant[0]
	viol := e.SoC.MPU.OutViol[0]
	trace := g.BusTrace
	//hot
	for c := startC; ; c++ {
		for next < len(lanes) && lanes[next].te+1 == c {
			bit := uint64(1) << uint(next)
			for _, r := range lanes[next].flips {
				sim.SetReg(r, sim.Val(r)^bit)
			}
			active |= bit
			next++
		}
		goldenRegs := b.regs[c-b.lo]
		if useCut {
			if conv := active &^ sim.RegDiffMask(goldenRegs); conv != 0 {
				for m := conv; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					results[lanes[l].idx].ResumeCycles = c - (lanes[l].te + 1)
				}
				active &^= conv
				if active == 0 && next == len(lanes) {
					return
				}
			}
		}
		if c == b.markedResp {
			// Every remaining lane reaches the marked decision with
			// golden behavioural state, so its outcome is a closed form
			// of its own grant/viol lanes: the scalar resume would step
			// this one cycle — consuming the marked response with the
			// lane's responding signals (committed = grant, trapped =
			// viol) — and exit resolved. No fallback simulation is
			// needed even for lanes whose signals diverge here.
			gw, vw := sim.Val(grant), sim.Val(viol)
			for m := active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				r := &results[lanes[l].idx]
				r.ResumeCycles = c + 1 - (lanes[l].te + 1)
				r.Success = gw>>uint(l)&1 == 1 && vw>>uint(l)&1 == 0
			}
			return
		}
		ent := &trace[c]
		if ent.RespConsumed {
			div := (sim.Val(grant) ^ logicsim.Broadcast(ent.RespGrant)) |
				(sim.Val(viol) ^ logicsim.Broadcast(ent.RespViol))
			if div &= active; div != 0 {
				for m := div; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					resumed, success := e.resumeDiverged(c, uint(l), goldenRegs)
					r := &results[lanes[l].idx]
					r.ResumeCycles = c - (lanes[l].te + 1) + resumed
					r.Success = success
				}
				active &^= div
				if active == 0 && next == len(lanes) {
					return
				}
			}
		}
		e.SoC.MPU.DriveBusTrace(sim, ent)
		sim.Step()
	}
}

// resumeDiverged ejects one lane from a batched resume at cycle c: it
// reconstructs the exact SoC state the scalar path would have — golden
// behavioural state (outputs matched every consumed response before c)
// with the lane's faulty register bits in lane 0 and golden values in
// lanes 1–63, as a scalar faulty run keeps them — and finishes with the
// scalar RTL resume.
func (e *Engine) resumeDiverged(c int, lane uint, goldenRegs []uint64) (resumed int, success bool) {
	b := e.batch
	e.restoreTo(c)
	words := b.loadBuf
	for i, r := range e.SoC.MPU.Netlist.Regs() {
		words[i] = goldenRegs[i]&^1 | b.sim.Val(r)>>lane&1
	}
	e.SoC.Sim.SetRegState(words)
	return e.resumeRTL()
}

// resumeBatchWide is resumeBatch over 64·groups virtual lanes: lane l
// of the batch lives in bit l%64 of lane group l/64 of a wide
// simulator evaluating [groups]uint64 words per net, so one
// combinational pass steps up to 512 speculative resumes. The
// per-lane logic (flip entry at te+1, convergence cut, closed-form
// marked decision, divergence ejection to the exact scalar resume) is
// identical to the 64-lane path, applied per group. lanes must be
// te-sorted.
func (e *Engine) resumeBatchWide(lanes []pendingResume, results []RunResult, groups int) {
	b := e.batch
	g := e.golden
	wide := b.ensureWide(groups)
	startC := lanes[0].te + 1
	wide.SetRegStateBroadcast(b.regs[startC-b.lo])
	var active, diffs [8]uint64
	remaining := 0
	next := 0
	useCut := !e.DisableConvergenceCut
	grant := e.SoC.MPU.OutGrant[0]
	viol := e.SoC.MPU.OutViol[0]
	trace := g.BusTrace
	//hot
	for c := startC; ; c++ {
		for next < len(lanes) && lanes[next].te+1 == c {
			grp, bit := next/64, uint(next%64)
			for _, r := range lanes[next].flips {
				wide.XorReg(r, grp, 1<<bit)
			}
			active[grp] |= 1 << bit
			remaining++
			next++
		}
		goldenRegs := b.regs[c-b.lo]
		if useCut {
			wide.RegDiffMasks(goldenRegs, diffs[:groups])
			for grp := 0; grp < groups; grp++ {
				conv := active[grp] &^ diffs[grp]
				if conv == 0 {
					continue
				}
				for m := conv; m != 0; m &= m - 1 {
					l := grp*64 + bits.TrailingZeros64(m)
					results[lanes[l].idx].ResumeCycles = c - (lanes[l].te + 1)
					remaining--
				}
				active[grp] &^= conv
			}
			if remaining == 0 && next == len(lanes) {
				return
			}
		}
		if c == b.markedResp {
			// Same closed form as the 64-lane path: every remaining
			// lane reaches the marked decision with golden behavioural
			// state, so its outcome reads off its own grant/viol bits.
			for grp := 0; grp < groups; grp++ {
				if active[grp] == 0 {
					continue
				}
				gw, vw := wide.ValGroup(grant, grp), wide.ValGroup(viol, grp)
				for m := active[grp]; m != 0; m &= m - 1 {
					lb := bits.TrailingZeros64(m)
					r := &results[lanes[grp*64+lb].idx]
					r.ResumeCycles = c + 1 - (lanes[grp*64+lb].te + 1)
					r.Success = gw>>uint(lb)&1 == 1 && vw>>uint(lb)&1 == 0
				}
			}
			return
		}
		ent := &trace[c]
		if ent.RespConsumed {
			gb := logicsim.Broadcast(ent.RespGrant)
			vb := logicsim.Broadcast(ent.RespViol)
			for grp := 0; grp < groups; grp++ {
				div := ((wide.ValGroup(grant, grp) ^ gb) |
					(wide.ValGroup(viol, grp) ^ vb)) & active[grp]
				if div == 0 {
					continue
				}
				for m := div; m != 0; m &= m - 1 {
					lb := bits.TrailingZeros64(m)
					l := grp*64 + lb
					resumed, success := e.resumeDivergedWide(c, grp, uint(lb), goldenRegs)
					r := &results[lanes[l].idx]
					r.ResumeCycles = c - (lanes[l].te + 1) + resumed
					r.Success = success
					remaining--
				}
				active[grp] &^= div
			}
			if remaining == 0 && next == len(lanes) {
				return
			}
		}
		e.SoC.MPU.DriveBusTrace(wide, ent)
		wide.Step()
	}
}

// resumeDivergedWide is resumeDiverged reading the ejected lane's
// faulty register bits out of one group of the wide simulator.
func (e *Engine) resumeDivergedWide(c int, group int, lane uint, goldenRegs []uint64) (resumed int, success bool) {
	b := e.batch
	e.restoreTo(c)
	words := b.loadBuf
	for i, r := range e.SoC.MPU.Netlist.Regs() {
		words[i] = goldenRegs[i]&^1 | b.wide.ValGroup(r, group)>>lane&1
	}
	e.SoC.Sim.SetRegState(words)
	return e.resumeRTL()
}
