package montecarlo

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// cvTable is the campaign control variate built from the analytical
// memory-type evaluator: phi(t, center) = 1 iff some register
// combinationally reachable from the strike center's spot (i) flips to
// an attack-winning configuration under the closed-form coarse policy
// check, and (ii) retains errors for at least t cycles per the
// pre-characterized lifetime. phi is a cheap structural predictor of
// success that is exactly integrable under the nominal distribution f —
// the (t, center) space is discrete and finite — which is what a
// control variate needs: a correlated quantity with a known mean.
//
// For a fixed center the predicate is monotone in t (lifetime >= t), so
// the whole table reduces to one number per candidate: the maximum
// lifetime over its reachable winning registers.
type cvTable struct {
	attack *fault.Attack
	// maxL[i] is that maximum for candidate i; -1 when no winning
	// register is reachable (phi == 0 at every t).
	maxL []float64
	// mean is E_f[phi], enumerated exactly over TRange x candidates.
	mean float64
}

// phi evaluates the control at a drawn sample.
func (tb *cvTable) phi(s fault.Sample) float64 {
	i, ok := tb.attack.CenterIndex(s.Center)
	if !ok || s.T < 0 {
		return 0
	}
	if float64(s.T) <= tb.maxL[i] {
		return 1
	}
	return 0
}

// controlVariate builds (once per engine, then cached) the control
// table. It needs the pre-characterization for lifetimes, the
// analytical evaluator for the coarse single-bit outcomes, and a golden
// run for the base policy. The construction iterates slices in index
// order only, so the table — and through it every campaign using it —
// is deterministic.
func (e *Engine) controlVariate() (*cvTable, error) {
	if e.cvTab != nil {
		return e.cvTab, nil
	}
	if e.Char == nil || e.Analytical == nil {
		return nil, fmt.Errorf("montecarlo: control variate needs Char and Analytical")
	}
	if e.golden == nil {
		return nil, fmt.Errorf("montecarlo: control variate before RunGolden")
	}
	nl := e.SoC.MPU.Netlist
	// Single-bit coarse outcomes: which registers, flipped alone, win
	// the attack under the windowless policy check.
	winning := make([]bool, nl.NumNodes())
	for _, r := range nl.Regs() {
		fl := []netlist.NodeID{r}
		if e.Analytical.Covers(fl) && e.Analytical.OutcomeCoarse(e.golden.Policy, e.SoC.Prog, fl) {
			winning[r] = true
		}
	}
	// Per-candidate reach: BFS from the candidate's radiation spot
	// through combinational fanout up to the first register boundary.
	fo := nl.Fanouts()
	maxRadius := e.Attack.Technique.Radius + e.Attack.Technique.RadiusJitter
	maxL := make([]float64, len(e.Attack.Candidates))
	seen := make([]bool, nl.NumNodes())
	stack := make([]netlist.NodeID, 0, 64)
	for i, cand := range e.Attack.Candidates {
		maxL[i] = -1
		for j := range seen {
			seen[j] = false
		}
		stack = stack[:0]
		if e.Place != nil {
			for _, g := range e.Place.CombWithinRadius(cand, maxRadius) {
				if !seen[g] {
					seen[g] = true
					stack = append(stack, g)
				}
			}
		}
		if !seen[cand] {
			seen[cand] = true
			stack = append(stack, cand)
		}
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range fo[g] {
				if seen[h] {
					continue
				}
				seen[h] = true
				switch node := nl.Node(h); {
				case node.Type == netlist.DFF:
					if winning[h] {
						if l := e.Char.Lifetime(h); l > maxL[i] {
							maxL[i] = l
						}
					}
				case node.Type.IsCombinational():
					stack = append(stack, h)
				}
			}
		}
	}
	// E_f[phi] by exact enumeration: f factorizes as f_T(t) * f_P(c)
	// and phi is monotone in t, so per candidate the t-sum is a prefix
	// of f_T. Folded in candidate order, then t order — deterministic.
	mean := 0.0
	for i, cand := range e.Attack.Candidates {
		if maxL[i] < 0 {
			continue
		}
		pT := 0.0
		for t := 0; t < e.Attack.TRange && float64(t) <= maxL[i]; t++ {
			pT += e.Attack.TProb(t)
		}
		mean += e.Attack.CenterProb(cand) * pT
	}
	e.cvTab = &cvTable{attack: e.Attack, maxL: maxL, mean: mean}
	return e.cvTab, nil
}
