package montecarlo_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/montecarlo"
)

func TestCampaignMerge(t *testing.T) {
	ev := evaluation(t)
	o1 := montecarlo.CampaignOptions{Samples: 300, Seed: 1, TrackPatterns: true}
	o2 := montecarlo.CampaignOptions{Samples: 200, Seed: 2, TrackPatterns: true}
	c1, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), o1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), o2)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: a single estimator over the union is what Merge must
	// reproduce.
	wantMean := (c1.SSF()*300 + c2.SSF()*200) / 500
	succ := c1.Successes + c2.Successes
	classes := [3]int{}
	for i := range classes {
		classes[i] = c1.ClassCounts[i] + c2.ClassCounts[i]
	}
	c1.Merge(c2)
	if c1.Est.N() != 500 {
		t.Fatalf("merged N = %d", c1.Est.N())
	}
	if math.Abs(c1.SSF()-wantMean) > 1e-12 {
		t.Errorf("merged SSF %v, want %v", c1.SSF(), wantMean)
	}
	if c1.Successes != succ || c1.ClassCounts != classes {
		t.Error("counters not merged")
	}
	if c1.Options.Samples != 500 {
		t.Errorf("merged sample count %d", c1.Options.Samples)
	}
}

func TestParallelCampaignMatchesSequentialStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.CampaignOptions{Samples: 3000, Seed: 5}
	par, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.Est.N() != 3000 {
		t.Fatalf("parallel N = %d", par.Est.N())
	}
	// Reproducibility: same engines, same seed -> identical result.
	par2, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.SSF() != par2.SSF() || par.Successes != par2.Successes {
		t.Error("parallel campaign not reproducible")
	}
	// Statistical agreement with a sequential campaign of the same
	// size (different streams, same distribution): class fractions
	// within a loose tolerance.
	seq, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	fracPar := float64(par.ClassCounts[montecarlo.Masked]) / 3000
	fracSeq := float64(seq.ClassCounts[montecarlo.Masked]) / 3000
	if math.Abs(fracPar-fracSeq) > 0.05 {
		t.Errorf("masked fraction drifted: %v vs %v", fracPar, fracSeq)
	}
}

func TestParallelValidation(t *testing.T) {
	ev := evaluation(t)
	if _, err := montecarlo.RunCampaignParallel(context.Background(), nil, ev.RandomSampler(), montecarlo.CampaignOptions{Samples: 10}); err == nil {
		t.Error("no engines accepted")
	}
	engines, err := ev.CloneEngines(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(), montecarlo.CampaignOptions{Samples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(),
		montecarlo.CampaignOptions{Samples: 10, TrackConvergence: true}); err == nil {
		t.Error("convergence tracking in parallel accepted")
	}
}

func TestParallelUnevenSplit(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(3)
	if err != nil {
		t.Fatal(err)
	}
	// 100 samples over 3 engines: 34+33+33.
	c, err := montecarlo.RunCampaignParallel(context.Background(), engines, ev.RandomSampler(), montecarlo.CampaignOptions{Samples: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Est.N() != 100 {
		t.Fatalf("N = %d", c.Est.N())
	}
}

func TestRunAdaptiveStops(t *testing.T) {
	ev := evaluation(t)
	opts := montecarlo.DefaultAdaptive(0.01)
	opts.MinSamples = 500
	opts.CheckEvery = 250
	opts.MaxSamples = 20000
	c, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Est.N() < opts.MinSamples {
		t.Fatalf("stopped at %d < MinSamples", c.Est.N())
	}
	if c.Est.N() > opts.MaxSamples {
		t.Fatalf("exceeded MaxSamples: %d", c.Est.N())
	}
	// The criterion must hold at the stopping point (unless the cap
	// hit first).
	if c.Est.N() < opts.MaxSamples && c.Est.LLNBound(opts.Epsilon) > opts.Risk {
		t.Errorf("stopped with bound %v > risk %v", c.Est.LLNBound(opts.Epsilon), opts.Risk)
	}
}

func TestRunAdaptiveTighterCriterionNeedsMore(t *testing.T) {
	ev := evaluation(t)
	loose := montecarlo.DefaultAdaptive(0.02)
	loose.MinSamples, loose.CheckEvery, loose.MaxSamples = 200, 200, 30000
	tight := loose
	tight.Epsilon = 0.002
	cl, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), loose)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), tight)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Est.N() < cl.Est.N() {
		t.Errorf("tighter epsilon used fewer samples: %d vs %d", ct.Est.N(), cl.Est.N())
	}
}

func TestRunAdaptiveValidation(t *testing.T) {
	ev := evaluation(t)
	bad := montecarlo.DefaultAdaptive(0)
	if _, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), bad); err == nil {
		t.Error("epsilon 0 accepted")
	}
	bad = montecarlo.DefaultAdaptive(0.01)
	bad.Risk = 2
	if _, err := ev.Engine.RunAdaptive(context.Background(), ev.RandomSampler(), bad); err == nil {
		t.Error("risk 2 accepted")
	}
}

func TestCloneEnginesIndependent(t *testing.T) {
	ev := evaluation(t)
	engines, err := ev.CloneEngines(2)
	if err != nil {
		t.Fatal(err)
	}
	if engines[0].SoC == engines[1].SoC || engines[0].SoC == ev.Engine.SoC {
		t.Error("engines share SoC state")
	}
	g0, g1 := engines[0].Golden(), engines[1].Golden()
	if g0.TargetCycle != g1.TargetCycle || g0.TargetCycle != ev.Golden.TargetCycle {
		t.Error("clone golden runs diverge")
	}
	_ = core.DefaultAttackSpec()
}
