package montecarlo_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/montecarlo"
)

// compareCampaigns asserts two campaigns are bit-identical across every
// aggregate the scalar/batched equivalence tests check.
func compareCampaigns(t *testing.T, label string, got, want *montecarlo.Campaign) {
	t.Helper()
	if got.Est.Estimate() != want.Est.Estimate() {
		t.Errorf("%s: SSF %g != %g", label, got.Est.Estimate(), want.Est.Estimate())
	}
	if got.Successes != want.Successes {
		t.Errorf("%s: successes %d != %d", label, got.Successes, want.Successes)
	}
	if got.ClassCounts != want.ClassCounts {
		t.Errorf("%s: class counts %v != %v", label, got.ClassCounts, want.ClassCounts)
	}
	if got.PathCounts != want.PathCounts {
		t.Errorf("%s: path counts %v != %v", label, got.PathCounts, want.PathCounts)
	}
	if got.RTLCycles != want.RTLCycles {
		t.Errorf("%s: RTL cycles %d != %d", label, got.RTLCycles, want.RTLCycles)
	}
	if len(got.Convergence) != len(want.Convergence) {
		t.Fatalf("%s: convergence length %d != %d", label, len(got.Convergence), len(want.Convergence))
	}
	for i := range want.Convergence {
		if got.Convergence[i] != want.Convergence[i] {
			t.Fatalf("%s: convergence[%d] %g != %g", label, i, got.Convergence[i], want.Convergence[i])
		}
	}
	for r, v := range want.RegContribution {
		if got.RegContribution[r] != v {
			t.Errorf("%s: reg %d contribution %g != %g", label, r, got.RegContribution[r], v)
		}
	}
	if len(got.RegContribution) != len(want.RegContribution) {
		t.Errorf("%s: reg contributions %d != %d", label, len(got.RegContribution), len(want.RegContribution))
	}
	if len(got.Patterns) != len(want.Patterns) {
		t.Errorf("%s: patterns %d != %d", label, len(got.Patterns), len(want.Patterns))
	}
}

// TestCampaignLaneWidthEquivalence is the wide-word acceptance
// criterion: a fixed-seed batched campaign must be bit-identical to the
// scalar campaign at every supported resume width — the lane count is
// purely a throughput knob.
func TestCampaignLaneWidthEquivalence(t *testing.T) {
	ev := evaluation(t)
	sampler, err := ev.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}
	opts := montecarlo.CampaignOptions{
		Samples: 3000, Seed: 21,
		TrackConvergence: true, TrackPatterns: true,
	}
	scalar, err := ev.Engine.RunCampaign(context.Background(), sampler, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.PathCounts[montecarlo.PathRTL] == 0 {
		t.Fatal("campaign exercised no RTL resumes — width equivalence is vacuous")
	}
	for _, lanes := range []int{64, 256, 512} {
		opts := opts
		opts.Batch = true
		opts.Lanes = lanes
		opts.BatchWindow = 700 // not a divisor of Samples: exercises the partial final window
		wide, err := ev.Engine.RunCampaign(context.Background(), sampler, opts)
		if err != nil {
			t.Fatal(err)
		}
		compareCampaigns(t, fmt.Sprintf("lanes=%d", lanes), wide, scalar)
	}
}

// TestForcedDivergenceWideLanes repeats the equivalence check at 256
// and 512 lanes under the concentrated attack, where behaviorally
// diverged lanes dominate — forcing the per-64-lane-group ejection and
// scalar fallback at K=4 and K=8.
func TestForcedDivergenceWideLanes(t *testing.T) {
	ev := concentratedEvaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 2000, Seed: 4, TrackConvergence: true}
	scalar, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Successes == 0 {
		t.Fatal("concentrated campaign produced no successes — divergence not forced")
	}
	for _, lanes := range []int{256, 512} {
		opts := opts
		opts.Batch = true
		opts.Lanes = lanes
		wide, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts)
		if err != nil {
			t.Fatal(err)
		}
		compareCampaigns(t, fmt.Sprintf("concentrated/lanes=%d", lanes), wide, scalar)
	}
}

// TestCampaignRejectsBadLanes checks that unsupported widths are
// rejected up front rather than mid-campaign.
func TestCampaignRejectsBadLanes(t *testing.T) {
	ev := evaluation(t)
	for _, lanes := range []int{1, 65, 100, 128, 1024} {
		opts := montecarlo.CampaignOptions{Samples: 10, Seed: 1, Batch: true, Lanes: lanes}
		if _, err := ev.Engine.RunCampaign(context.Background(), ev.RandomSampler(), opts); err == nil {
			t.Fatalf("Lanes=%d accepted", lanes)
		}
	}
}
