package montecarlo

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// RunGlitchOnce executes one clock-glitch attack run: the capture edge
// of the injection cycle Te = Tt − sample.T arrives sample.Depth early,
// and every register whose data path had not settled latches the stale
// previous-cycle value. Downstream classification reuses the standard
// cross-level pipeline (masked / memory-type / RTL resume).
func (e *Engine) RunGlitchOnce(rng *rand.Rand, sample fault.GlitchSample) RunResult {
	g := e.golden
	te := g.TargetCycle - sample.T
	// Warm up to the cycle BEFORE the glitched one so its settled
	// values are observable (the glitch capture compares consecutive
	// cycles).
	if te < 1 {
		te = 1
	}
	e.restoreTo(te - 1)

	nl := e.SoC.MPU.Netlist
	prev := make([]bool, nl.NumNodes())
	e.SoC.StepInject(func(values func(netlist.NodeID) bool) []netlist.NodeID {
		for i := range prev {
			prev[i] = values(netlist.NodeID(i))
		}
		return nil
	})

	glitchTime := e.Timing.ClockPeriod() - sample.Depth
	var flipped []netlist.NodeID
	e.SoC.StepInject(func(values func(netlist.NodeID) bool) []netlist.NodeID {
		flipped = e.Timing.GlitchCapture(
			func(id netlist.NodeID) bool { return prev[id] },
			values, glitchTime)
		flipped = e.applyHardening(rng, flipped)
		return flipped
	})

	res := RunResult{Flipped: flipped}
	switch {
	case len(flipped) == 0:
		res.Class = Masked
		res.Path = PathMasked
		return res
	case e.allMemoryType(flipped):
		res.Class = MemoryOnly
	default:
		res.Class = Mixed
	}

	// Glitch flips depend on value transitions, not pulse windows;
	// the analytical and pruning shortcuts apply unchanged.
	if res.Class == MemoryOnly && sample.T == 0 {
		res.Path = PathPruned
		return res
	}
	if res.Class == MemoryOnly && e.Analytical != nil && e.Analytical.Covers(flipped) && te > g.SetupEnd {
		res.Path = PathAnalytical
		window := g.accessWindow(te, g.MarkedIssue)
		res.Success = e.Analytical.Outcome(g.Policy, e.SoC.Prog, window, flipped)
		return res
	}
	if res.Class == Mixed && e.Char != nil && sample.T > 0 {
		maxLife := 0.0
		for _, r := range flipped {
			if l := e.Char.Lifetime(r); l > maxLife {
				maxLife = l
			}
		}
		if maxLife < float64(sample.T) {
			res.Path = PathPruned
			return res
		}
	}

	res.Path = PathRTL
	res.ResumeCycles, res.Success = e.resumeRTL()
	return res
}

// RunGlitchCampaign estimates the SSF of a clock-glitch attack by plain
// Monte Carlo over the attack's own distribution (the glitch parameter
// space is small enough that pre-characterization-driven sampling is
// unnecessary). Cancellation via ctx returns the partial campaign
// accumulated so far alongside the context's error.
func (e *Engine) RunGlitchCampaign(ctx context.Context, attack *fault.GlitchAttack, opts CampaignOptions) (*Campaign, error) {
	if e.golden == nil {
		return nil, fmt.Errorf("montecarlo: RunGlitchCampaign before RunGolden")
	}
	if opts.Samples < 1 {
		return nil, fmt.Errorf("montecarlo: %d samples", opts.Samples)
	}
	if attack.TRange > e.golden.TargetCycle-e.golden.SetupEnd {
		return nil, fmt.Errorf("montecarlo: TRange %d reaches into MPU setup", attack.TRange)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := &Campaign{
		SamplerName:     "glitch-random",
		Options:         opts,
		RegContribution: make(map[netlist.NodeID]float64),
	}
	if opts.TrackConvergence {
		c.Convergence = make([]float64, 0, opts.Samples)
	}
	agg := newProgressAgg(opts.Progress, opts.ProgressEvery, opts.Samples, 1)
	done := ctx.Done()
	for i := 0; i < opts.Samples; i++ {
		select {
		case <-done:
			agg.observe(0, c, true)
			c.Options.Samples = c.Est.N()
			return c, ctx.Err()
		default:
		}
		sample := attack.SampleNominal(rng)
		res := e.RunGlitchOnce(rng, sample)
		x := 0.0
		if res.Success {
			x = 1.0
			c.Successes++
			for _, r := range res.Flipped {
				c.RegContribution[r] += 1
			}
		}
		c.Est.Add(x, 1)
		c.ClassCounts[res.Class]++
		c.PathCounts[res.Path]++
		c.RTLCycles += res.ResumeCycles
		if opts.TrackConvergence {
			c.Convergence = append(c.Convergence, c.Est.Estimate())
		}
		agg.observe(0, c, i+1 == opts.Samples)
	}
	return c, nil
}
