package montecarlo

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/stats"
	"repro/internal/timingsim"
)

// Clone returns a deep copy of the campaign: mutating the copy (further
// Merges, estimator updates, map writes) never touches the original.
// The Options.Progress callback is shared — it is configuration, not
// accumulated state.
func (c *Campaign) Clone() *Campaign {
	if c == nil {
		return nil
	}
	o := *c
	if c.Convergence != nil {
		o.Convergence = append([]float64(nil), c.Convergence...)
	}
	if c.Strata != nil {
		o.Strata = c.Strata.Clone()
	}
	if c.TDraws != nil {
		o.TDraws = append([]int(nil), c.TDraws...)
	}
	if c.THits != nil {
		o.THits = append([]int(nil), c.THits...)
	}
	if c.CV != nil {
		cv := *c.CV
		o.CV = &cv
	}
	if c.RegContribution != nil {
		o.RegContribution = make(map[netlist.NodeID]float64, len(c.RegContribution))
		for k, v := range c.RegContribution {
			o.RegContribution[k] = v
		}
	}
	if c.Patterns != nil {
		o.Patterns = make(map[string]bool, len(c.Patterns))
		for k := range c.Patterns {
			o.Patterns[k] = true
		}
	}
	if c.PatternCounts != nil {
		o.PatternCounts = make(map[timingsim.PatternClass]int, len(c.PatternCounts))
		for k, v := range c.PatternCounts {
			o.PatternCounts[k] = v
		}
	}
	return &o
}

// CampaignSnapshot is the serializable form of a Campaign, built for
// checkpoint/resume across process restarts: every field is exported
// data (no callbacks), and a Snapshot → JSON → Campaign round trip
// reproduces the campaign bit-identically — encoding/json emits
// float64s in the shortest form that parses back to the same value, and
// the estimator state is captured exactly (stats.WelfordState). Feeding
// a restored campaign to AdaptiveOptions.Resume therefore continues a
// checkpointed RunAdaptiveParallel as if it had never stopped.
type CampaignSnapshot struct {
	SamplerName string `json:"sampler"`
	Mode        Mode   `json:"mode"`
	Seed        int64  `json:"seed"`
	Samples     int    `json:"samples"`
	Batch       bool   `json:"batch,omitempty"`
	BatchWindow int    `json:"batch_window,omitempty"`

	Est         stats.WelfordState             `json:"est"`
	Weights     stats.WeightMomentsState       `json:"weights"`
	Strata      *stats.StratifiedState         `json:"strata,omitempty"`
	TDraws      []int                          `json:"t_draws,omitempty"`
	THits       []int                          `json:"t_hits,omitempty"`
	CV          *stats.BivariateState          `json:"cv,omitempty"`
	CVMean      float64                        `json:"cv_mean,omitempty"`
	ControlVar  bool                           `json:"control_variate,omitempty"`
	Convergence []float64                      `json:"convergence,omitempty"`
	ClassCounts [3]int                         `json:"class_counts"`
	PathCounts  [4]int                         `json:"path_counts"`
	Successes   int                            `json:"successes"`
	RTLCycles   int                            `json:"rtl_cycles"`
	RegContrib  map[netlist.NodeID]float64     `json:"reg_contribution,omitempty"`
	Patterns    []string                       `json:"patterns,omitempty"`
	PatternHist map[timingsim.PatternClass]int `json:"pattern_counts,omitempty"`
}

// Snapshot captures the campaign's accumulated state. The snapshot owns
// its memory (deep-copied maps and slices); Patterns are sorted so the
// serialized form is deterministic.
func (c *Campaign) Snapshot() *CampaignSnapshot {
	if c == nil {
		return nil
	}
	s := &CampaignSnapshot{
		SamplerName: c.SamplerName,
		Mode:        c.Options.Mode,
		Seed:        c.Options.Seed,
		Samples:     c.Options.Samples,
		Batch:       c.Options.Batch,
		BatchWindow: c.Options.BatchWindow,
		Est:         c.Est.State(),
		Weights:     c.Weights.State(),
		CVMean:      c.CVMean,
		ControlVar:  c.Options.ControlVariate,
		ClassCounts: c.ClassCounts,
		PathCounts:  c.PathCounts,
		Successes:   c.Successes,
		RTLCycles:   c.RTLCycles,
	}
	if c.Strata != nil {
		st := c.Strata.State()
		s.Strata = &st
	}
	if len(c.TDraws) > 0 {
		s.TDraws = append([]int(nil), c.TDraws...)
	}
	if len(c.THits) > 0 {
		s.THits = append([]int(nil), c.THits...)
	}
	if c.CV != nil {
		cv := c.CV.State()
		s.CV = &cv
	}
	if c.Convergence != nil {
		s.Convergence = append([]float64(nil), c.Convergence...)
	}
	if len(c.RegContribution) > 0 {
		s.RegContrib = make(map[netlist.NodeID]float64, len(c.RegContribution))
		for k, v := range c.RegContribution {
			s.RegContrib[k] = v
		}
	}
	if len(c.Patterns) > 0 {
		s.Patterns = make([]string, 0, len(c.Patterns))
		//maporder-ok (sorted immediately below)
		for p := range c.Patterns {
			s.Patterns = append(s.Patterns, p)
		}
		sort.Strings(s.Patterns)
	}
	if len(c.PatternCounts) > 0 {
		s.PatternHist = make(map[timingsim.PatternClass]int, len(c.PatternCounts))
		for k, v := range c.PatternCounts {
			s.PatternHist[k] = v
		}
	}
	return s
}

// Campaign reconstructs the campaign the snapshot was taken from. The
// result owns its memory; the snapshot stays usable.
func (s *CampaignSnapshot) Campaign() *Campaign {
	if s == nil {
		return nil
	}
	c := &Campaign{
		SamplerName: s.SamplerName,
		Options: CampaignOptions{
			Samples:        s.Samples,
			Mode:           s.Mode,
			Seed:           s.Seed,
			Batch:          s.Batch,
			BatchWindow:    s.BatchWindow,
			ControlVariate: s.ControlVar,
		},
		Est:             stats.FromWeightedState(s.Est),
		Weights:         stats.FromWeightMomentsState(s.Weights),
		CVMean:          s.CVMean,
		ClassCounts:     s.ClassCounts,
		PathCounts:      s.PathCounts,
		Successes:       s.Successes,
		RTLCycles:       s.RTLCycles,
		RegContribution: make(map[netlist.NodeID]float64, len(s.RegContrib)),
	}
	if s.Strata != nil {
		// Shape errors are caught by Validate; a snapshot that skipped
		// validation and fails here resumes without per-stratum state
		// (Merge then rejects it, so the corruption cannot spread).
		c.Strata, _ = stats.FromStratifiedState(*s.Strata)
	}
	if len(s.TDraws) > 0 {
		c.TDraws = append([]int(nil), s.TDraws...)
	}
	if len(s.THits) > 0 {
		c.THits = append([]int(nil), s.THits...)
	}
	if s.CV != nil {
		cv := stats.FromBivariateState(*s.CV)
		c.CV = &cv
	}
	if s.Convergence != nil {
		c.Convergence = append([]float64(nil), s.Convergence...)
	}
	for k, v := range s.RegContrib {
		c.RegContribution[k] = v
	}
	if len(s.Patterns) > 0 {
		c.Patterns = make(map[string]bool, len(s.Patterns))
		for _, p := range s.Patterns {
			c.Patterns[p] = true
		}
	}
	if len(s.PatternHist) > 0 {
		c.PatternCounts = make(map[timingsim.PatternClass]int, len(s.PatternHist))
		for k, v := range s.PatternHist {
			c.PatternCounts[k] = v
		}
	}
	return c
}

// Validate sanity-checks a snapshot loaded from untrusted storage
// before it is fed to AdaptiveOptions.Resume.
func (s *CampaignSnapshot) Validate() error {
	if s.Est.N < 0 {
		return fmt.Errorf("montecarlo: snapshot has negative sample count %d", s.Est.N)
	}
	if s.Mode != GateAttack && s.Mode != RegisterAttack {
		return fmt.Errorf("montecarlo: snapshot has unknown mode %d", int(s.Mode))
	}
	if s.Strata != nil {
		if _, err := stats.FromStratifiedState(*s.Strata); err != nil {
			return fmt.Errorf("montecarlo: snapshot strata: %w", err)
		}
	}
	if s.CV != nil && s.CV.N < 0 {
		return fmt.Errorf("montecarlo: snapshot has negative control-variate count %d", s.CV.N)
	}
	return nil
}
