package montecarlo_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
)

// referenceEvaluation builds an evaluation with every per-run fast path
// disabled: dense full-netlist injection sweep, no injection-window
// state cache, no convergence-cut resume.
func referenceEvaluation(t *testing.T) *core.Evaluation {
	t.Helper()
	ev := evaluation(t)
	ev.Engine.Timing.SetReferenceSweep(true)
	ev.Engine.StateCacheSize = 0
	ev.Engine.DisableConvergenceCut = true
	return ev
}

// TestFastPathsRunOnceParity compares individual runs between the fast
// and the reference configuration: everything except ResumeCycles must
// match exactly, and the convergence cut may only shorten resumes.
func TestFastPathsRunOnceParity(t *testing.T) {
	evFast := evaluation(t)
	evRef := referenceEvaluation(t)
	rngF := rand.New(rand.NewSource(17))
	rngR := rand.New(rand.NewSource(17))
	srng := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		s := evFast.Attack.SampleNominal(srng)
		rf := evFast.Engine.RunOnce(rngF, s, montecarlo.GateAttack)
		rr := evRef.Engine.RunOnce(rngR, s, montecarlo.GateAttack)
		if rf.Success != rr.Success || rf.Class != rr.Class || rf.Path != rr.Path {
			t.Fatalf("sample %d (%+v): fast %+v, reference %+v", i, s, rf, rr)
		}
		if len(rf.Flipped) != len(rr.Flipped) {
			t.Fatalf("sample %d: flipped %v vs %v", i, rf.Flipped, rr.Flipped)
		}
		for j := range rf.Flipped {
			if rf.Flipped[j] != rr.Flipped[j] {
				t.Fatalf("sample %d: flipped %v vs %v", i, rf.Flipped, rr.Flipped)
			}
		}
		if rf.ResumeCycles > rr.ResumeCycles {
			t.Fatalf("sample %d: fast resumed %d cycles, reference %d",
				i, rf.ResumeCycles, rr.ResumeCycles)
		}
	}
}

// TestFastPathsCampaignEquivalence is the acceptance-criterion check:
// a fixed-seed campaign must produce identical SSF, Successes, class
// and path counts with the fast paths on and off; only the simulated
// RTL-cycle total may shrink.
func TestFastPathsCampaignEquivalence(t *testing.T) {
	evFast := evaluation(t)
	evRef := referenceEvaluation(t)
	opts := montecarlo.CampaignOptions{Samples: 1500, Seed: 21}
	fast, err := evFast.Engine.RunCampaign(context.Background(), evFast.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := evRef.Engine.RunCampaign(context.Background(), evRef.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Est.Estimate() != ref.Est.Estimate() {
		t.Errorf("SSF %g != reference %g", fast.Est.Estimate(), ref.Est.Estimate())
	}
	if fast.Successes != ref.Successes {
		t.Errorf("successes %d != reference %d", fast.Successes, ref.Successes)
	}
	if fast.ClassCounts != ref.ClassCounts {
		t.Errorf("class counts %v != reference %v", fast.ClassCounts, ref.ClassCounts)
	}
	if fast.PathCounts != ref.PathCounts {
		t.Errorf("path counts %v != reference %v", fast.PathCounts, ref.PathCounts)
	}
	if len(fast.RegContribution) != len(ref.RegContribution) {
		t.Errorf("reg contributions %d != reference %d",
			len(fast.RegContribution), len(ref.RegContribution))
	}
	for r, v := range ref.RegContribution {
		if fast.RegContribution[r] != v {
			t.Errorf("reg %d contribution %g != reference %g", r, fast.RegContribution[r], v)
		}
	}
	if fast.RTLCycles > ref.RTLCycles {
		t.Errorf("fast paths simulated MORE RTL cycles (%d) than the reference (%d)",
			fast.RTLCycles, ref.RTLCycles)
	}
	t.Logf("RTL cycles: fast %d, reference %d", fast.RTLCycles, ref.RTLCycles)
}

// TestFastPathsMultiCycleEquivalence repeats the campaign parity check
// with a multi-cycle disturbance, which always resolves through the
// RTL-resume path and therefore exercises the convergence cut heavily.
func TestFastPathsMultiCycleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fw := framework(t)
	prog, _ := fw.BenchmarkProgram(core.BenchmarkIllegalWrite)
	tech := fault.DefaultRadiation()
	tech.ImpactCycles = 3
	mk := func() *core.Evaluation {
		attack, err := fault.NewAttack("multi", 50, tech, fw.CandidateBlock(0.125), nil)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := fw.NewEvaluationAttack(prog, attack)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	evFast := mk()
	evRef := mk()
	evRef.Engine.Timing.SetReferenceSweep(true)
	evRef.Engine.StateCacheSize = 0
	evRef.Engine.DisableConvergenceCut = true
	opts := montecarlo.CampaignOptions{Samples: 1200, Seed: 5}
	fast, err := evFast.Engine.RunCampaign(context.Background(), evFast.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := evRef.Engine.RunCampaign(context.Background(), evRef.RandomSampler(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Est.Estimate() != ref.Est.Estimate() || fast.Successes != ref.Successes ||
		fast.ClassCounts != ref.ClassCounts || fast.PathCounts != ref.PathCounts {
		t.Errorf("multi-cycle campaign diverged: fast SSF %g/%d, reference %g/%d",
			fast.Est.Estimate(), fast.Successes, ref.Est.Estimate(), ref.Successes)
	}
	if fast.RTLCycles > ref.RTLCycles {
		t.Errorf("fast RTL cycles %d > reference %d", fast.RTLCycles, ref.RTLCycles)
	}
}
