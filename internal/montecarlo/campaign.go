package montecarlo

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/timingsim"
)

// CampaignOptions configures a Monte Carlo campaign.
type CampaignOptions struct {
	// Samples is the number of fault-attack runs.
	Samples int
	// Mode selects gate or register attacks.
	Mode Mode
	// Seed makes the campaign reproducible.
	Seed int64
	// TrackConvergence records the running SSF estimate after every
	// sample (Fig 9(a)); costs one float per sample.
	TrackConvergence bool
	// TrackPatterns records the distinct latched error patterns
	// (Fig 7(b)); costs one map entry per distinct pattern.
	TrackPatterns bool
	// Progress, when non-nil, is invoked with aggregate snapshots
	// while the campaign runs (see ProgressFunc for the threading
	// contract). It does not affect the campaign result.
	Progress ProgressFunc
	// ProgressEvery is the approximate number of samples between
	// Progress callbacks; 0 means the default (500).
	ProgressEvery int
	// Batch enables the lane-batched execution path: single-cycle
	// samples are classified against the cached golden attack window
	// and their RTL resumes run up to 64 at a time in the lanes of one
	// forked simulator, with exact scalar fallback for lanes that
	// diverge behaviorally. Results are bit-identical to the scalar
	// path for the same seed.
	Batch bool
	// BatchWindow is the number of draws buffered before deferred
	// resumes are flushed and results are committed (in draw order);
	// 0 means DefaultBatchWindow. Larger windows fill lanes better;
	// the window also bounds cancellation latency.
	BatchWindow int
	// Lanes is the virtual lane count of the batched resumes (64, 256,
	// or 512); 0 means the engine's default (Options.Lanes, itself
	// defaulting to DefaultLanes). Ignored without Batch. The width is
	// purely a throughput knob: fixed-seed results are bit-identical
	// at every lane count.
	Lanes int
	// ControlVariate subtracts the analytical memory-type predictor
	// from the estimate: the campaign accumulates the exactly-known
	// control phi(t, center) alongside each outcome and reports the
	// regression-adjusted estimate (optimal coefficient estimated
	// online). Requires an engine with Char and Analytical, and a
	// sampler whose proposal covers the full nominal support (random,
	// importance, sobol) — restricted-support samplers would bias the
	// control's observed mean.
	ControlVariate bool
}

// Campaign is the aggregate result of a sampling campaign.
type Campaign struct {
	SamplerName string
	Options     CampaignOptions

	// Est is the (importance-weighted) SSF estimator.
	Est stats.Weighted
	// Convergence is the running estimate per sample when tracked.
	Convergence []float64
	// ClassCounts histograms the latched-error classes (Fig 10(a)).
	ClassCounts [3]int
	// PathCounts histograms how outcomes were decided.
	PathCounts [4]int
	// Successes counts raw successful runs (unweighted).
	Successes int
	// RTLCycles accumulates the RTL resume cycles actually simulated
	// (the cost the pre-characterization machinery saves).
	RTLCycles int
	// RegContribution attributes weighted success mass to each
	// register involved in a successful attack (critical-register
	// identification; not normalized).
	RegContribution map[netlist.NodeID]float64
	// Patterns holds distinct flipped-register patterns when tracked.
	Patterns map[string]bool
	// PatternCounts histograms the latched patterns by byte spread
	// (Fig 7(a)) when tracking is on.
	PatternCounts map[timingsim.PatternClass]int
	// Strata is the per-stratum estimator, tracked when the sampler
	// stratifies the attack space (sampling.Stratal); nil otherwise.
	// When present, SSF reads the stratified estimate instead of the
	// plain weighted mean.
	Strata *stats.Stratified
	// Weights accumulates the likelihood-ratio moments behind the
	// effective sample size (ESS).
	Weights stats.WeightMoments
	// TDraws and THits tally draws and raw successes per timing
	// distance (index t); adaptive proposal re-weighting reads them.
	// The slices grow lazily to the largest observed t+1.
	TDraws, THits []int
	// CV is the control-variate regression state when
	// Options.ControlVariate is on (nil otherwise); CVMean is the
	// exact nominal-distribution mean of the control, computed by
	// enumeration over the discrete (t, center) space.
	CV     *stats.BivariateMoments
	CVMean float64
}

// SSF returns the campaign's System Security Factor estimate: the
// stratified estimate when per-stratum state is tracked, the
// control-variate-adjusted estimate when a control is attached, and the
// plain weighted mean otherwise.
func (c *Campaign) SSF() float64 {
	switch {
	case c.Strata != nil:
		return c.Strata.Estimate()
	case c.CV != nil && c.CV.N() > 1:
		return c.CV.Adjusted(c.CVMean)
	default:
		return c.Est.Estimate()
	}
}

// Variance returns the per-term sample variance of the plain weighted
// estimator — the quantity the paper's Fig 9(b) compares across
// strategies. See EstimatorVariance for the variance of the estimate
// itself under the campaign's active estimator.
func (c *Campaign) Variance() float64 { return c.Est.Variance() }

// EstimatorVariance returns the variance of the campaign's SSF
// estimate under whichever estimator SSF uses: the exact stratified
// estimator variance, the regression-adjusted variance over n, or the
// plain term variance over n. An empty campaign reports +Inf.
func (c *Campaign) EstimatorVariance() float64 {
	switch {
	case c.Strata != nil:
		return c.Strata.EstVariance()
	case c.CV != nil && c.CV.N() > 1:
		return c.CV.AdjustedVariance() / float64(c.CV.N())
	default:
		n := c.Est.N()
		if n == 0 {
			return math.Inf(1)
		}
		return c.Est.Variance() / float64(n)
	}
}

// CIHalfWidth returns the 95% confidence-interval half-width of the
// SSF estimate. Under the Sobol sampler the draws are not independent
// and the width is an approximation (see EXPERIMENTS.md).
func (c *Campaign) CIHalfWidth() float64 {
	v := c.EstimatorVariance()
	if math.IsInf(v, 1) {
		return math.Inf(1)
	}
	return stats.Z95 * math.Sqrt(v)
}

// ESS returns Kish's effective sample size of the campaign's
// likelihood-ratio weights.
func (c *Campaign) ESS() float64 { return c.Weights.ESS() }

// llnBound is the generalized Chebyshev stopping bound
// Pr[|est − SSF| ≥ eps] ≤ Var[est]/eps², clamped to 1. For campaigns
// without strata or control it equals Est.LLNBound exactly.
func (c *Campaign) llnBound(eps float64) float64 {
	if eps <= 0 || c.Est.N() == 0 {
		return 1
	}
	b := c.EstimatorVariance() / (eps * eps)
	if b > 1 || math.IsInf(b, 1) {
		return 1
	}
	return b
}

// tally grows a per-t tally slice to cover index t and increments it.
func tally(s *[]int, t int) {
	if t < 0 {
		return
	}
	for len(*s) <= t {
		*s = append(*s, 0)
	}
	(*s)[t]++
}

// RunCampaign draws samples from the sampler and evaluates each with
// the engine, accumulating the weighted SSF estimate. RunGolden must
// have been called.
//
// The context cancels or deadlines the campaign between samples: on
// cancellation the partial Campaign accumulated so far is returned
// alongside the context's error, with Options.Samples reflecting the
// samples actually evaluated.
func (e *Engine) RunCampaign(ctx context.Context, sampler sampling.Sampler, opts CampaignOptions) (*Campaign, error) {
	agg := newProgressAgg(opts.Progress, opts.ProgressEvery, opts.Samples, 1)
	return e.runCampaign(ctx, sampler, opts, agg, 0)
}

// runCampaign is RunCampaign reporting progress through a caller-owned
// aggregator under the given shard index (parallel campaigns share one
// aggregator across their shards).
func (e *Engine) runCampaign(ctx context.Context, sampler sampling.Sampler, opts CampaignOptions, agg *progressAgg, shard int) (*Campaign, error) {
	if e.golden == nil {
		return nil, fmt.Errorf("montecarlo: RunCampaign before RunGolden")
	}
	if opts.Samples < 1 {
		return nil, fmt.Errorf("montecarlo: %d samples", opts.Samples)
	}
	// Stateful samplers (low-discrepancy sequences, per-stratum
	// substreams) are never drawn from directly: each campaign forks a
	// private stream keyed by its seed, so the per-(round, shard) seed
	// derivation of the parallel runners makes every stream — and every
	// resumed replay of it — deterministic.
	if f, ok := sampler.(sampling.Forker); ok {
		sampler = f.Fork(opts.Seed)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c := &Campaign{
		SamplerName:     sampler.Name(),
		Options:         opts,
		RegContribution: make(map[netlist.NodeID]float64),
	}
	if st, ok := sampler.(sampling.Stratal); ok {
		probs := make([]float64, st.NumStrata())
		for k := range probs {
			probs[k] = st.StratumProb(k)
		}
		strata, err := stats.NewStratified(probs)
		if err != nil {
			return nil, fmt.Errorf("montecarlo: stratified sampler: %w", err)
		}
		c.Strata = strata
	}
	if opts.ControlVariate {
		cv, err := e.controlVariate()
		if err != nil {
			return nil, err
		}
		switch sampler.Name() {
		case "random", "importance", "sobol":
		default:
			return nil, fmt.Errorf("montecarlo: control variate requires a full-support sampler (random, importance, sobol), got %q", sampler.Name())
		}
		c.CV = &stats.BivariateMoments{}
		c.CVMean = cv.mean
	}
	if opts.TrackConvergence {
		c.Convergence = make([]float64, 0, opts.Samples)
	}
	run := e.runSamples
	if opts.Batch {
		if _, err := laneGroups(e.laneCount(opts.Lanes)); err != nil {
			return nil, err
		}
		run = e.runSamplesBatched
	}
	if err := run(ctx, c, rng, sampler, opts, agg, shard); err != nil {
		c.Options.Samples = c.Est.N()
		return c, err
	}
	return c, nil
}

// runSamples evaluates opts.Samples draws into c, consulting ctx
// between samples and reporting to agg.
func (e *Engine) runSamples(ctx context.Context, c *Campaign, rng *rand.Rand, sampler sampling.Sampler, opts CampaignOptions, agg *progressAgg, shard int) error {
	var layout *timingsim.RegisterLayout
	if opts.TrackPatterns {
		if c.Patterns == nil {
			c.Patterns = make(map[string]bool)
			c.PatternCounts = make(map[timingsim.PatternClass]int)
		}
		layout = timingsim.NewRegisterLayout(e.SoC.MPU.Groups)
	}
	st, _ := sampler.(sampling.Stratal)
	done := ctx.Done()
	for i := 0; i < opts.Samples; i++ {
		select {
		case <-done:
			agg.observe(shard, c, true)
			return ctx.Err()
		default:
		}
		sample, weight := sampler.Draw(rng)
		res := e.RunOnce(rng, sample, opts.Mode)
		e.accumulate(c, &opts, layout, st, sample, weight, &res)
		agg.observe(shard, c, i+1 == opts.Samples)
	}
	return nil
}

// accumulate folds one evaluated sample into the campaign aggregate.
// The fold order is the draw order — the weighted estimator is a
// floating-point sum, so both execution paths commit results in exactly
// this order to stay bit-identical. st is the sampler's Stratal view
// when the campaign tracks per-stratum state (c.Strata non-nil).
func (e *Engine) accumulate(c *Campaign, opts *CampaignOptions, layout *timingsim.RegisterLayout, st sampling.Stratal, sample fault.Sample, weight float64, res *RunResult) {
	x := 0.0
	if res.Success {
		x = 1.0
		c.Successes++
		for _, r := range e.AttributeSuccess(sample, res.Flipped) {
			c.RegContribution[r] += weight
		}
	}
	c.Est.Add(x, weight)
	c.Weights.Add(weight)
	tally(&c.TDraws, sample.T)
	if res.Success {
		tally(&c.THits, sample.T)
	}
	if c.Strata != nil && st != nil {
		c.Strata.Add(st.StratumOf(sample), x, st.ConditionalWeight(sample, weight), res.Success)
	}
	if c.CV != nil {
		c.CV.Add(x*weight, weight*e.cvTab.phi(sample))
	}
	c.ClassCounts[res.Class]++
	c.PathCounts[res.Path]++
	c.RTLCycles += res.ResumeCycles
	if opts.TrackConvergence {
		// Legacy samplers keep the plain weighted-mean trace (whose
		// chunked form MergeSequential can replay); stratified and
		// control-variate campaigns trace their own estimator.
		if c.Strata != nil || c.CV != nil {
			c.Convergence = append(c.Convergence, c.SSF())
		} else {
			c.Convergence = append(c.Convergence, c.Est.Estimate())
		}
	}
	if opts.TrackPatterns && len(res.Flipped) > 0 {
		c.Patterns[timingsim.PatternKey(res.Flipped)] = true
		c.PatternCounts[layout.Classify(res.Flipped)]++
	}
}

// DefaultBatchWindow is the number of draws buffered per batched flush:
// enough that draws aimed at the same injection cycle fill most of a
// 64-lane word, small enough that cancellation stays responsive.
const DefaultBatchWindow = 2048

// runSamplesBatched is runSamples over the lane-batched execution path:
// draws are buffered in windows, every sample is injected and
// classified in draw order against the cached golden attack window
// (identical rng consumption to the scalar path), and the deferred
// PathRTL resumes of each window are completed in 64-lane batches
// before the window's results are committed — again in draw order, so
// fixed-seed campaigns are bit-identical to the scalar path.
func (e *Engine) runSamplesBatched(ctx context.Context, c *Campaign, rng *rand.Rand, sampler sampling.Sampler, opts CampaignOptions, agg *progressAgg, shard int) error {
	groups, err := laneGroups(e.laneCount(opts.Lanes))
	if err != nil {
		return err
	}
	var layout *timingsim.RegisterLayout
	if opts.TrackPatterns {
		if c.Patterns == nil {
			c.Patterns = make(map[string]bool)
			c.PatternCounts = make(map[timingsim.PatternClass]int)
		}
		layout = timingsim.NewRegisterLayout(e.SoC.MPU.Groups)
	}
	window := opts.BatchWindow
	if window < 1 {
		// The default window scales with the lane count: only a few
		// percent of draws defer an RTL resume, so wide words need
		// proportionally more buffered draws to run near occupancy
		// (the window size never affects results — only how full each
		// resume pass is and the cancellation latency).
		window = DefaultBatchWindow * groups
	}
	if window > opts.Samples {
		window = opts.Samples
	}
	samples := make([]fault.Sample, window)
	weights := make([]float64, window)
	results := make([]RunResult, window)
	pend := make([]pendingResume, 0, window)
	st, _ := sampler.(sampling.Stratal)
	done := ctx.Done()
	evaluated := 0
	for evaluated < opts.Samples {
		n := opts.Samples - evaluated
		if n > window {
			n = window
		}
		cancelled := false
		drawn := 0
		pend = pend[:0]
		for j := 0; j < n; j++ {
			select {
			case <-done:
				cancelled = true
			default:
			}
			if cancelled {
				break
			}
			sample, weight := sampler.Draw(rng)
			res, te, deferred := e.evalSample(rng, sample, opts.Mode)
			samples[j], weights[j], results[j] = sample, weight, res
			if deferred {
				pend = append(pend, pendingResume{idx: j, te: te, flips: res.Flipped})
			}
			drawn++
		}
		e.flushResumes(pend, results, groups)
		for j := 0; j < drawn; j++ {
			e.accumulate(c, &opts, layout, st, samples[j], weights[j], &results[j])
			evaluated++
			agg.observe(shard, c, evaluated == opts.Samples)
		}
		if cancelled {
			agg.observe(shard, c, true)
			return ctx.Err()
		}
	}
	return nil
}

// CriticalRegisters returns registers ranked by their share of the
// total success mass, and the cumulative share covered by each prefix.
// It implements the paper's identification of the ~3% of registers that
// contribute >95% of SSF.
type CriticalRegister struct {
	Reg   netlist.NodeID
	Share float64
}

// CriticalRegisters ranks registers by attributed success mass.
func (c *Campaign) CriticalRegisters() []CriticalRegister {
	return RankContributions(c.RegContribution)
}

// RankContributions merges one or more attribution maps (e.g. from a
// gate-attack and a register-attack campaign) into a single normalized
// ranking.
func RankContributions(maps ...map[netlist.NodeID]float64) []CriticalRegister {
	merged := map[netlist.NodeID]float64{}
	for _, m := range maps {
		//maporder-ok (per-key accumulation; totals are summed in sorted order below)
		for r, v := range m {
			merged[r] += v
		}
	}
	out := make([]CriticalRegister, 0, len(merged))
	//maporder-ok (collected then sorted by register id before any float fold)
	for r, v := range merged {
		out = append(out, CriticalRegister{Reg: r, Share: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Reg < out[j].Reg })
	// Float addition is not associative, so the total — and through it
	// every normalized share — must be folded in a fixed order, not map
	// iteration order.
	total := 0.0
	for i := range out {
		total += out[i].Share
	}
	if total == 0 {
		return nil
	}
	for i := range out {
		out[i].Share /= total
	}
	// Deterministic order: by share desc, then id.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if out[j].Share > out[j-1].Share ||
				(out[j].Share == out[j-1].Share && out[j].Reg < out[j-1].Reg) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

// CoverageCount returns how many top-ranked registers are needed to
// cover the given share (e.g. 0.95) of the success mass.
func CoverageCount(ranked []CriticalRegister, share float64) int {
	cum := 0.0
	for i, cr := range ranked {
		cum += cr.Share
		if cum >= share-1e-9 {
			return i + 1
		}
	}
	return len(ranked)
}
