package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/report"
	"repro/internal/sampling"
)

// Fig9Strategy is one sampling strategy's campaign outcome.
type Fig9Strategy struct {
	Name        string
	SSF         float64
	Variance    float64
	Successes   int
	Convergence []float64
}

// Fig9Result reproduces Figure 9: the convergence comparison of random,
// fanin-cone, and importance sampling, and the sample-variance table.
type Fig9Result struct {
	Strategies []Fig9Strategy
	// SpeedupConeVsRandom and SpeedupImportanceVsRandom compare the
	// strategies by relative variance (variance / SSF²) — the number
	// of samples each needs to reach a given relative standard error.
	// The paper reports raw variances (0.0261 / 0.0210 / 9.7e-5); raw
	// ratios are only comparable when the estimates agree, which at
	// finite sample counts they need not (random sampling may see a
	// handful of successes).
	SpeedupConeVsRandom       float64
	SpeedupImportanceVsRandom float64
}

// relVar returns variance normalized by the squared estimate.
func (s Fig9Strategy) relVar() float64 {
	if s.SSF == 0 {
		return 0
	}
	return s.Variance / (s.SSF * s.SSF)
}

// Fig9 runs the three-sampler convergence comparison.
func Fig9(c *Context) (*Fig9Result, error) {
	ev, err := c.Eval(core.BenchmarkIllegalWrite)
	if err != nil {
		return nil, err
	}
	cone, err := ev.ConeSampler()
	if err != nil {
		return nil, err
	}
	imp, err := ev.ImportanceSampler()
	if err != nil {
		return nil, err
	}
	samplers := []sampling.Sampler{ev.RandomSampler(), cone, imp}
	r := &Fig9Result{}
	for _, sp := range samplers {
		opts := c.campaign(montecarlo.GateAttack)
		opts.TrackConvergence = true
		camp, err := ev.Engine.RunCampaign(c.ctx(), sp, opts)
		if err != nil {
			return nil, err
		}
		r.Strategies = append(r.Strategies, Fig9Strategy{
			Name:        sp.Name(),
			SSF:         camp.SSF(),
			Variance:    camp.Variance(),
			Successes:   camp.Successes,
			Convergence: camp.Convergence,
		})
	}
	if v := r.Strategies[1].relVar(); v > 0 && r.Strategies[0].relVar() > 0 {
		r.SpeedupConeVsRandom = r.Strategies[0].relVar() / v
	}
	if v := r.Strategies[2].relVar(); v > 0 && r.Strategies[0].relVar() > 0 {
		r.SpeedupImportanceVsRandom = r.Strategies[0].relVar() / v
	}
	return r, nil
}

// String renders the figure: a coarse convergence trace plus the
// variance table.
func (r *Fig9Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig 9(a): running SSF estimate (every N/10 samples)\n")
	for _, s := range r.Strategies {
		fmt.Fprintf(&sb, "  %-11s", s.Name)
		n := len(s.Convergence)
		for i := 1; i <= 10; i++ {
			idx := i*n/10 - 1
			if idx >= 0 && idx < n {
				fmt.Fprintf(&sb, " %9s", report.FormatFloat(s.Convergence[idx]))
			}
		}
		sb.WriteByte('\n')
	}
	t := report.NewTable("Fig 9(b): strategy statistics",
		"strategy", "SSF", "sample variance", "relative variance", "# successes")
	for _, s := range r.Strategies {
		t.Row(s.Name, s.SSF, s.Variance, s.relVar(), s.Successes)
	}
	t.Render(&sb)
	if r.Strategies[0].Variance == 0 {
		sb.WriteString("  variance reduction: n/a (random sampling observed no successes at this sample count)\n")
	} else {
		fmt.Fprintf(&sb, "  convergence speedup (relative-variance ratio): cone %.1fx, importance %.1fx vs random (paper: 1.2x, 269x)\n",
			r.SpeedupConeVsRandom, r.SpeedupImportanceVsRandom)
	}
	return sb.String()
}
