// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic SoC. Each driver returns a
// structured result plus a rendered text report; the cmd/experiments
// binary and the root bench harness call these drivers.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/montecarlo"
)

// Context shares the expensive artifacts (framework build with
// pre-characterization, golden runs) across experiment drivers.
type Context struct {
	FW *core.Framework
	// Samples scales every campaign; the paper's plots use 10k-20k.
	Samples int
	// Seed drives all campaigns.
	Seed int64
	// Ctx, when set, cancels or deadlines every campaign the drivers
	// run (cmd/experiments wires SIGINT here); nil means Background.
	Ctx context.Context

	evals map[core.Benchmark]*core.Evaluation
}

// ctx returns the driver context, defaulting to Background.
func (c *Context) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// NewContext builds the framework once. The pre-characterization depth
// is raised to cover the Fig 11 temporal-accuracy sweep (up to 100
// cycles).
func NewContext(samples int) (*Context, error) {
	opts := core.DefaultOptions()
	opts.Precharac.MaxDepth = 101
	fw, err := core.Build(opts)
	if err != nil {
		return nil, err
	}
	if samples < 1 {
		samples = 10000
	}
	return &Context{
		FW:      fw,
		Samples: samples,
		Seed:    1,
		evals:   make(map[core.Benchmark]*core.Evaluation),
	}, nil
}

// Eval returns (building lazily) the evaluation of a benchmark under
// the default attack spec.
func (c *Context) Eval(b core.Benchmark) (*core.Evaluation, error) {
	if ev, ok := c.evals[b]; ok {
		return ev, nil
	}
	ev, err := c.FW.NewEvaluation(b, core.DefaultAttackSpec())
	if err != nil {
		return nil, fmt.Errorf("experiments: evaluation of %v: %w", b, err)
	}
	c.evals[b] = ev
	return ev, nil
}

// campaign returns default campaign options at the context's scale.
func (c *Context) campaign(mode montecarlo.Mode) montecarlo.CampaignOptions {
	return montecarlo.CampaignOptions{
		Samples: c.Samples,
		Mode:    mode,
		Seed:    c.Seed,
	}
}
