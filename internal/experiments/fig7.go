package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/report"
	"repro/internal/timingsim"
)

// Fig7Result reproduces Figure 7: the bit-error patterns produced by
// gate-level injection, and the comparison between the patterns induced
// by attacks on combinational gates versus sequential elements.
type Fig7Result struct {
	// SingleBit/SingleByte/MultiByte are the shares among non-masked
	// gate-attack runs (paper: 58.6% / 26.9% / 14.5%).
	SingleBit, SingleByte, MultiByte float64
	// CombOnly/Common/SeqOnly partition the distinct error patterns
	// by whether they arise from combinational strikes, register
	// strikes, or both (paper: 91.0% / 6.1% / 2.9%).
	CombOnly, Common, SeqOnly float64
	// CombPatterns and SeqPatterns are the raw distinct-pattern
	// counts.
	CombPatterns, SeqPatterns int
	// MultiRegShare is the fraction of distinct comb-attack patterns
	// spanning more than one register bit — the patterns the classic
	// single-bit/single-byte register-error abstraction cannot
	// express (the paper's core argument for gate-level modeling).
	MultiRegShare float64
}

// Fig7 runs the error-pattern analysis.
func Fig7(c *Context) (*Fig7Result, error) {
	ev, err := c.Eval(core.BenchmarkIllegalWrite)
	if err != nil {
		return nil, err
	}
	gateOpts := c.campaign(montecarlo.GateAttack)
	gateOpts.TrackPatterns = true
	gate, err := ev.Engine.RunCampaign(c.ctx(), ev.RandomSampler(), gateOpts)
	if err != nil {
		return nil, err
	}
	regOpts := c.campaign(montecarlo.RegisterAttack)
	regOpts.TrackPatterns = true
	regOpts.Seed = c.Seed + 1
	reg, err := ev.Engine.RunCampaign(c.ctx(), ev.RandomSampler(), regOpts)
	if err != nil {
		return nil, err
	}

	r := &Fig7Result{}
	nonMasked := gate.PatternCounts[timingsim.SingleBit] +
		gate.PatternCounts[timingsim.SingleByte] +
		gate.PatternCounts[timingsim.MultiByte]
	if nonMasked > 0 {
		r.SingleBit = float64(gate.PatternCounts[timingsim.SingleBit]) / float64(nonMasked)
		r.SingleByte = float64(gate.PatternCounts[timingsim.SingleByte]) / float64(nonMasked)
		r.MultiByte = float64(gate.PatternCounts[timingsim.MultiByte]) / float64(nonMasked)
	}
	r.CombPatterns = len(gate.Patterns)
	r.SeqPatterns = len(reg.Patterns)
	common := 0
	for p := range gate.Patterns {
		if reg.Patterns[p] {
			common++
		}
	}
	union := r.CombPatterns + r.SeqPatterns - common
	if union > 0 {
		r.CombOnly = float64(r.CombPatterns-common) / float64(union)
		r.Common = float64(common) / float64(union)
		r.SeqOnly = float64(r.SeqPatterns-common) / float64(union)
	}
	multi := 0
	for p := range gate.Patterns {
		if strings.ContainsRune(p, ',') {
			multi++
		}
	}
	if r.CombPatterns > 0 {
		r.MultiRegShare = float64(multi) / float64(r.CombPatterns)
	}
	return r, nil
}

// String renders the figure.
func (r *Fig7Result) String() string {
	var sb strings.Builder
	a := report.NewTable("Fig 7(a): latched bit-error patterns (gate attacks, non-masked runs)",
		"pattern", "share", "paper")
	a.Row("single-bit", report.Percent(r.SingleBit), "58.6%")
	a.Row("single-byte", report.Percent(r.SingleByte), "26.9%")
	a.Row("multi-byte", report.Percent(r.MultiByte), "14.5%")
	a.Render(&sb)
	b := report.NewTable("Fig 7(b): distinct error patterns by attack surface",
		"set", "share", "paper")
	b.Row("comb only", report.Percent(r.CombOnly), "91.0%")
	b.Row("common", report.Percent(r.Common), "6.1%")
	b.Row("seq only", report.Percent(r.SeqOnly), "2.9%")
	b.Row("comb distinct", r.CombPatterns, "-")
	b.Row("seq distinct", r.SeqPatterns, "-")
	b.Render(&sb)
	sb.WriteString("  comb patterns spanning multiple register bits: " + report.Percent(r.MultiRegShare) + "\n")
	sb.WriteString("  (single-bit/single-byte register-error models cannot express these)\n")
	return sb.String()
}
