package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/harden"
	"repro/internal/montecarlo"
	"repro/internal/report"
)

// CriticalResult reproduces the paper's headline countermeasure study:
// a small fraction of registers contributes almost all SSF (paper: 3%
// of registers carry >95%); hardening them with resilient cells (10x
// resilience, 3x cell area) cuts SSF several-fold at a small area cost
// (paper: up to 6.5x for <2% MPU area).
type CriticalResult struct {
	// Ranked is the per-register SSF contribution ranking; Names
	// holds the matching register names.
	Ranked []montecarlo.CriticalRegister
	Names  []string
	// Count95 is the number of top registers covering 95% of the
	// success mass; Fraction95 their share of all registers.
	Count95    int
	Fraction95 float64
	// Hardening is the countermeasure evaluation on those registers,
	// run on the register-attack surface (where the critical
	// population dominates).
	Hardening harden.Result
}

// Critical runs the identification + hardening study. Both the
// gate-attack and register-attack surfaces contribute to the ranking,
// mirroring the paper's observation that the successful attacks all
// involve the same small register population.
func Critical(c *Context) (*CriticalResult, error) {
	ev, err := c.Eval(core.BenchmarkIllegalWrite)
	if err != nil {
		return nil, err
	}
	imp, err := ev.ImportanceSampler()
	if err != nil {
		return nil, err
	}
	gate, err := ev.Engine.RunCampaign(c.ctx(), imp, c.campaign(montecarlo.GateAttack))
	if err != nil {
		return nil, err
	}
	regOpts := c.campaign(montecarlo.RegisterAttack)
	regOpts.Seed = c.Seed + 1
	reg, err := ev.Engine.RunCampaign(c.ctx(), ev.RandomSampler(), regOpts)
	if err != nil {
		return nil, err
	}
	ranked := montecarlo.RankContributions(gate.RegContribution, reg.RegContribution)
	if len(ranked) == 0 {
		return nil, fmt.Errorf("experiments: no successful attacks at %d samples; raise the sample count", c.Samples)
	}
	nl := c.FW.MPU.Netlist
	r := &CriticalResult{Ranked: ranked}
	for _, cr := range ranked {
		r.Names = append(r.Names, nl.Node(cr.Reg).Name)
	}
	r.Count95 = montecarlo.CoverageCount(ranked, 0.95)
	r.Fraction95 = float64(r.Count95) / float64(len(nl.Regs()))

	resil, area := harden.DefaultCellParams()
	plan := harden.Plan{
		Regs:       harden.FromCritical(ranked, 0.95),
		Resilience: resil,
		AreaFactor: area,
	}
	hres, err := harden.Evaluate(c.ctx(), ev.Engine, ev.RandomSampler(), regOpts, plan)
	if err != nil {
		return nil, err
	}
	r.Hardening = hres
	return r, nil
}

// String renders the study.
func (r *CriticalResult) String() string {
	var sb strings.Builder
	t := report.NewTable("Critical registers (top 10 by SSF contribution)",
		"rank", "register", "share")
	for i, cr := range r.Ranked {
		if i >= 10 {
			break
		}
		t.Row(i+1, r.Names[i], report.Percent(cr.Share))
	}
	t.Render(&sb)
	s := report.NewTable("Headline results", "metric", "measured", "paper")
	s.Row("registers covering 95% SSF", r.Count95, "-")
	s.Row("fraction of all registers", report.Percent(r.Fraction95), "~3%")
	s.Row("SSF before hardening", r.Hardening.BaseSSF, "-")
	s.Row("SSF after hardening", r.Hardening.HardenedSSF, "-")
	imp := fmt.Sprintf("%.1fx", r.Hardening.Improvement)
	if r.Hardening.HardenedNoSuccess {
		imp = ">=" + imp + " (no hardened successes observed)"
	}
	s.Row("security improvement", imp, "up to 6.5x")
	s.Row("area overhead", report.Percent(r.Hardening.AreaOverhead), "<2%")
	s.Render(&sb)
	return sb.String()
}
