package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/montecarlo"
)

var (
	ctxOnce sync.Once
	ctxVal  *Context
	ctxErr  error
)

func testContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		ctxVal, ctxErr = NewContext(2500)
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctxVal
}

func TestFig4Shapes(t *testing.T) {
	c := testContext(t)
	r := Fig4(c)
	if r.LifetimeHist.Total() == 0 || r.ContamHist.Total() == 0 {
		t.Fatal("empty histograms")
	}
	if r.LifetimeHist.Total() != r.ContamHist.Total() {
		t.Error("histogram totals differ")
	}
	// Paper: more than half of the registers are memory-type with
	// long lifetime and ~0 contamination.
	if r.MemoryShare <= 0.5 {
		t.Errorf("memory share %.2f, want > 0.5", r.MemoryShare)
	}
	if r.LongLifetimeShare <= 0.5 {
		t.Errorf("long-lifetime share %.2f", r.LongLifetimeShare)
	}
	if r.ZeroContamShare <= 0.5 {
		t.Errorf("zero-contamination share %.2f", r.ZeroContamShare)
	}
	if !strings.Contains(r.String(), "Fig 4(a)") {
		t.Error("report missing")
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testContext(t)
	r, err := Fig7(c)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.SingleBit + r.SingleByte + r.MultiByte
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pattern shares sum to %v", sum)
	}
	// Single-bit errors dominate, but multi-bit patterns exist — the
	// paper's argument against the single-bit abstraction.
	if r.SingleBit <= r.MultiByte || r.SingleBit <= r.SingleByte {
		t.Errorf("single-bit not dominant: %+v", r)
	}
	if r.MultiRegShare == 0 {
		t.Error("no multi-register comb patterns found")
	}
	if r.CombPatterns == 0 || r.SeqPatterns == 0 {
		t.Error("pattern sets empty")
	}
	psum := r.CombOnly + r.Common + r.SeqOnly
	if math.Abs(psum-1) > 1e-9 {
		t.Errorf("partition sums to %v", psum)
	}
}

func TestFig8Shapes(t *testing.T) {
	c := testContext(t)
	r, err := Fig8(c)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range r.TimingProbs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("g_T sums to %v", sum)
	}
	// g_T concentrates at small t relative to uniform.
	uniform := 1.0 / float64(len(r.TimingProbs))
	if r.TimingProbs[0] <= uniform {
		t.Errorf("g_T(0) = %v, uniform %v", r.TimingProbs[0], uniform)
	}
	// Sample-space reduction: the fanin cone holds fewer registers
	// than the design, computation-type fewer still.
	for d := range r.FaninRegs {
		if r.FaninRegs[d] > 1 || r.FaninCompRegs[d] > r.FaninRegs[d] {
			t.Fatalf("depth %d: fanin %v comp %v", d, r.FaninRegs[d], r.FaninCompRegs[d])
		}
	}
	if r.FaninRegs[5] >= 1 {
		t.Error("no sample-space reduction")
	}
}

func TestFig9Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testContext(t)
	r, err := Fig9(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strategies) != 3 {
		t.Fatal("expected 3 strategies")
	}
	for _, s := range r.Strategies {
		if len(s.Convergence) != c.Samples {
			t.Errorf("%s convergence length %d", s.Name, len(s.Convergence))
		}
	}
	// Importance sampling must find (weighted) successes far more
	// often than random at the same budget.
	if r.Strategies[2].Successes <= r.Strategies[0].Successes {
		t.Errorf("importance %d successes vs random %d",
			r.Strategies[2].Successes, r.Strategies[0].Successes)
	}
	if !strings.Contains(r.String(), "Fig 9(b)") {
		t.Error("report missing")
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testContext(t)
	r, err := Fig10(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Masked+r.MemOnly+r.Both-1) > 1e-9 {
		t.Error("class shares do not sum to 1")
	}
	// Masking dominates; RTL resumes are rare (the framework's core
	// efficiency claim).
	if r.Masked < 0.5 {
		t.Errorf("masked %.2f, expected majority", r.Masked)
	}
	if r.RTLShare > 0.1 {
		t.Errorf("RTL share %.2f, expected under 10%%", r.RTLShare)
	}
	// Register attacks dominate combinational attacks, as in the
	// paper (0.027 vs 0.007).
	if r.RegSSF <= r.CombSSF {
		t.Errorf("reg SSF %v vs comb SSF %v", r.RegSSF, r.CombSSF)
	}
	if r.RegSuccesses == 0 {
		t.Error("no register-attack successes")
	}
}

func TestFig11Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testContext(t)
	r, err := Fig11(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Temporal) != len(TemporalRanges) || len(r.Spatial) != len(SpatialFracs) {
		t.Fatal("sweep sizes wrong")
	}
	// Better temporal accuracy (smaller range) must raise SSF
	// dramatically: compare the extremes.
	first, last := r.Temporal[0], r.Temporal[len(r.Temporal)-1]
	if first.WriteSSF <= last.WriteSSF {
		t.Errorf("temporal accuracy has no effect: %v vs %v", first.WriteSSF, last.WriteSSF)
	}
	if first.WriteNorm < 5 {
		t.Errorf("1-cycle window norm %.1fx, expected strong gain", first.WriteNorm)
	}
	// Better spatial accuracy (delta at the decision gate) must beat
	// the uniform block.
	sFirst, sLast := r.Spatial[0], r.Spatial[len(r.Spatial)-1]
	if sLast.WriteSSF <= sFirst.WriteSSF {
		t.Errorf("spatial accuracy has no effect: %v vs %v", sFirst.WriteSSF, sLast.WriteSSF)
	}
}

func TestCriticalStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testContext(t)
	r, err := Critical(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ranked) == 0 || len(r.Names) != len(r.Ranked) {
		t.Fatal("ranking malformed")
	}
	// Strong concentration: a small fraction of registers carries
	// 95% of the SSF.
	if r.Fraction95 > 0.15 {
		t.Errorf("95%% coverage needs %.1f%% of registers", r.Fraction95*100)
	}
	if r.Hardening.Improvement < 2 {
		t.Errorf("hardening improvement %.1fx", r.Hardening.Improvement)
	}
	if r.Hardening.AreaOverhead > 0.1 {
		t.Errorf("area overhead %.1f%%", r.Hardening.AreaOverhead*100)
	}
	if !strings.Contains(r.String(), "Headline") {
		t.Error("report missing")
	}
}

func TestContextValidation(t *testing.T) {
	ctx, err := NewContext(0)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Samples != 10000 {
		t.Errorf("default samples = %d", ctx.Samples)
	}
	o := ctx.campaign(montecarlo.RegisterAttack)
	if o.Mode != montecarlo.RegisterAttack || o.Samples != 10000 {
		t.Errorf("campaign opts = %+v", o)
	}
}

func TestCountermeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testContext(t)
	r, err := Countermeasures(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base, hard, dual, both := r.Rows[0], r.Rows[1], r.Rows[2], r.Rows[3]
	if base.AreaOverhead != 0 {
		t.Error("baseline overhead nonzero")
	}
	// Hardening cuts the register-attack SSF at small area cost.
	if hard.RegSSF >= base.RegSSF {
		t.Errorf("hardening ineffective: %v vs %v", hard.RegSSF, base.RegSSF)
	}
	if hard.AreaOverhead <= 0 || hard.AreaOverhead > 0.1 {
		t.Errorf("hardening overhead %v", hard.AreaOverhead)
	}
	// Dual-rail logic kills (or at least decimates) the gate-attack
	// surface but not the register surface, at substantial area cost.
	if base.CombSSF > 0 && dual.CombSSF > base.CombSSF/2 {
		t.Errorf("dual-rail ineffective on gate attacks: %v vs %v", dual.CombSSF, base.CombSSF)
	}
	if dual.RegSSF < base.RegSSF/2 {
		t.Errorf("dual-rail should not fix register SEUs: %v vs %v", dual.RegSSF, base.RegSSF)
	}
	if dual.AreaOverhead < 0.2 {
		t.Errorf("dual-rail overhead %v implausibly low", dual.AreaOverhead)
	}
	// The combination dominates on both surfaces.
	if both.RegSSF >= base.RegSSF || (base.CombSSF > 0 && both.CombSSF > base.CombSSF/2) {
		t.Errorf("combination not dominant: %+v", both)
	}
	if !strings.Contains(r.String(), "Countermeasure comparison") {
		t.Error("report missing")
	}
}
