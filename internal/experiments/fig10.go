package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/report"
)

// Fig10Result reproduces Figure 10: the outcome statistics of attacks
// on combinational gates, and the SSF comparison between attacks on
// combinational gates and on registers.
type Fig10Result struct {
	// Masked/MemOnly/Both are outcome-class shares of the gate-attack
	// campaign (paper: 68.3% / 28.6% / 3.1%).
	Masked, MemOnly, Both float64
	// RTLShare is the fraction of runs that needed a full RTL resume
	// (the quantity the classification is designed to minimize).
	RTLShare float64
	// Register/comb attack statistics (paper: 271 & 0.027 vs 70 &
	// 0.007).
	RegSuccesses, CombSuccesses int
	RegSSF, CombSSF             float64
	// CombShare is CombSSF / RegSSF (paper: ~25.8%).
	CombShare float64
}

// Fig10 runs the outcome-class and surface-comparison analysis.
func Fig10(c *Context) (*Fig10Result, error) {
	ev, err := c.Eval(core.BenchmarkIllegalWrite)
	if err != nil {
		return nil, err
	}
	gate, err := ev.Engine.RunCampaign(c.ctx(), ev.RandomSampler(), c.campaign(montecarlo.GateAttack))
	if err != nil {
		return nil, err
	}
	regOpts := c.campaign(montecarlo.RegisterAttack)
	regOpts.Seed = c.Seed + 1
	reg, err := ev.Engine.RunCampaign(c.ctx(), ev.RandomSampler(), regOpts)
	if err != nil {
		return nil, err
	}
	n := float64(gate.Options.Samples)
	r := &Fig10Result{
		Masked:        float64(gate.ClassCounts[montecarlo.Masked]) / n,
		MemOnly:       float64(gate.ClassCounts[montecarlo.MemoryOnly]) / n,
		Both:          float64(gate.ClassCounts[montecarlo.Mixed]) / n,
		RTLShare:      float64(gate.PathCounts[montecarlo.PathRTL]) / n,
		RegSuccesses:  reg.Successes,
		CombSuccesses: gate.Successes,
		RegSSF:        reg.SSF(),
		CombSSF:       gate.SSF(),
	}
	if r.RegSSF > 0 {
		r.CombShare = r.CombSSF / r.RegSSF
	}
	return r, nil
}

// String renders the figure.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	a := report.NewTable("Fig 10(a): outcome of gate attacks", "class", "share", "paper")
	a.Row("masked", report.Percent(r.Masked), "68.3%")
	a.Row("memory-type only", report.Percent(r.MemOnly), "28.6%")
	a.Row("both", report.Percent(r.Both), "3.1%")
	a.Row("needed RTL resume", report.Percent(r.RTLShare), "3.1%")
	a.Render(&sb)
	b := report.NewTable("Fig 10(b): SSF by attack surface",
		"strategy", "# succ. attacks", "SSF")
	b.Row("registers", r.RegSuccesses, r.RegSSF)
	b.Row("comb. gates", r.CombSuccesses, r.CombSSF)
	b.Render(&sb)
	sb.WriteString("  comb/reg SSF ratio: " + report.Percent(r.CombShare) + " (paper: 25.8%)\n")
	return sb.String()
}
