package experiments

import (
	"strings"

	"repro/internal/report"
	"repro/internal/stats"
)

// Fig4Result reproduces Figure 4: the distribution of the
// pre-characterization parameters over the registers in the responding
// signals' cones.
type Fig4Result struct {
	// LifetimeHist buckets error lifetime (cycles).
	LifetimeHist *stats.Histogram
	// ContamHist buckets the error contamination number.
	ContamHist *stats.Histogram
	// MemoryShare is the fraction of characterized registers
	// classified memory-type (paper: more than half).
	MemoryShare float64
	// LongLifetimeShare is the fraction at the lifetime cap.
	LongLifetimeShare float64
	// ZeroContamShare is the fraction with zero contamination.
	ZeroContamShare float64
}

// Fig4 runs the pre-characterization distribution analysis.
func Fig4(c *Context) *Fig4Result {
	char := c.FW.Char
	cap64 := float64(char.Opts.LifetimeCap)
	r := &Fig4Result{
		LifetimeHist: stats.NewHistogram(0, cap64+1, 20),
		ContamHist:   stats.NewHistogram(0, 21, 21),
	}
	total := 0
	mem := 0
	long := 0
	zero := 0
	for _, rc := range char.Regs {
		total++
		r.LifetimeHist.Add(rc.Lifetime)
		r.ContamHist.Add(rc.Contamination)
		if rc.MemoryType {
			mem++
		}
		if rc.Lifetime >= cap64 {
			long++
		}
		if rc.Contamination == 0 {
			zero++
		}
	}
	if total > 0 {
		r.MemoryShare = float64(mem) / float64(total)
		r.LongLifetimeShare = float64(long) / float64(total)
		r.ZeroContamShare = float64(zero) / float64(total)
	}
	return r
}

// String renders the figure.
func (r *Fig4Result) String() string {
	var sb strings.Builder
	a := report.NewSeries("Fig 4(a): error lifetime distribution (fraction of registers)")
	for i := range r.LifetimeHist.Counts {
		a.Point(report.FormatFloat(r.LifetimeHist.BinCenter(i)), r.LifetimeHist.Fraction(i))
	}
	a.Render(&sb)
	b := report.NewSeries("Fig 4(b): error contamination number distribution")
	for i := range r.ContamHist.Counts {
		b.Point(report.FormatFloat(r.ContamHist.BinCenter(i)), r.ContamHist.Fraction(i))
	}
	b.Render(&sb)
	t := report.NewTable("Summary", "metric", "value")
	t.Row("memory-type share", report.Percent(r.MemoryShare))
	t.Row("registers at lifetime cap", report.Percent(r.LongLifetimeShare))
	t.Row("registers with 0 contamination", report.Percent(r.ZeroContamShare))
	t.Render(&sb)
	return sb.String()
}
