package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/soc"
)

// Fig11Point is one sweep setting's normalized SSF for both benchmarks.
type Fig11Point struct {
	Label     string
	WriteSSF  float64
	ReadSSF   float64
	WriteNorm float64
	ReadNorm  float64
}

// Fig11Result reproduces Figure 11: the impact of the attack
// technique's temporal accuracy (a) and spatial accuracy / parameter
// variation (b) on the SSF, for the memory-write and memory-read
// benchmarks.
type Fig11Result struct {
	Temporal []Fig11Point
	Spatial  []Fig11Point
}

// TemporalRanges is the Fig 11(a) sweep (paper: 1 to 100 cycles).
var TemporalRanges = []int{1, 2, 5, 10, 25, 50, 100}

// SpatialFracs is the Fig 11(b) sweep: the fraction of the candidate
// block the strike center concentrates on, from uniform (1.0) to the
// delta function at the target gate.
var SpatialFracs = []float64{1.0, 0.5, 0.2, 0.05, 0.01, 0}

// Fig11 runs both accuracy sweeps.
func Fig11(c *Context) (*Fig11Result, error) {
	progs := map[string]*soc.Program{}
	for _, b := range []core.Benchmark{core.BenchmarkIllegalWrite, core.BenchmarkIllegalRead} {
		p, err := c.FW.BenchmarkProgram(b)
		if err != nil {
			return nil, err
		}
		progs[b.String()] = p
	}
	r := &Fig11Result{}

	// (a) Temporal accuracy: vary TRange; the attacker's timing
	// uncertainty grows with the range.
	for _, tr := range TemporalRanges {
		spec := core.DefaultAttackSpec()
		spec.TRange = tr
		pt := Fig11Point{Label: fmt.Sprintf("%d", tr)}
		var err error
		pt.WriteSSF, err = c.sweepSSF(progs["memory-write"], spec, nil)
		if err != nil {
			return nil, err
		}
		pt.ReadSSF, err = c.sweepSSF(progs["memory-read"], spec, nil)
		if err != nil {
			return nil, err
		}
		r.Temporal = append(r.Temporal, pt)
	}
	normalize(r.Temporal, len(r.Temporal)-1)

	// (b) Spatial accuracy: concentrate the strike-center
	// distribution around the security target.
	base := c.FW.CandidateBlock(core.DefaultAttackSpec().BlockFrac)
	target := c.FW.SecurityTarget()
	for _, frac := range SpatialFracs {
		label := fmt.Sprintf("frac %.2f", frac)
		cands := fault.ConcentratedCenters(c.FW.Place, base, target, frac)
		if frac == 0 {
			label = "delta"
			cands = fault.ConcentratedCenters(c.FW.Place, base, target, 1e-9)
		}
		pt := Fig11Point{Label: label}
		var err error
		pt.WriteSSF, err = c.sweepSSF(progs["memory-write"], core.DefaultAttackSpec(), cands)
		if err != nil {
			return nil, err
		}
		pt.ReadSSF, err = c.sweepSSF(progs["memory-read"], core.DefaultAttackSpec(), cands)
		if err != nil {
			return nil, err
		}
		r.Spatial = append(r.Spatial, pt)
	}
	normalize(r.Spatial, 0)
	return r, nil
}

// sweepSSF evaluates one benchmark under a (possibly customized)
// attack. candidates == nil uses the spec's block.
func (c *Context) sweepSSF(prog *soc.Program, spec core.AttackSpec, candidates []netlist.NodeID) (float64, error) {
	var ev *core.Evaluation
	var err error
	if candidates == nil {
		ev, err = c.FW.NewEvaluationProgram(prog, spec)
	} else {
		var attack *fault.Attack
		attack, err = fault.NewAttack("sweep", spec.TRange, spec.Technique, candidates, nil)
		if err != nil {
			return 0, err
		}
		ev, err = c.FW.NewEvaluationAttack(prog, attack)
	}
	if err != nil {
		return 0, err
	}
	opts := c.campaign(montecarlo.GateAttack)
	// The importance sampler keeps the sweep affordable; every point
	// uses the same unbiased estimator family. Degenerate candidate
	// sets (delta targeting) can defeat the pre-characterization
	// distribution — fall back to nominal sampling there.
	sampler, impErr := ev.ImportanceSampler()
	if impErr != nil {
		sampler = ev.RandomSampler()
	}
	camp, err := ev.Engine.RunCampaign(c.ctx(), sampler, opts)
	if err != nil {
		return 0, err
	}
	return camp.SSF(), nil
}

func normalize(pts []Fig11Point, baseIdx int) {
	if len(pts) == 0 {
		return
	}
	wBase, rBase := pts[baseIdx].WriteSSF, pts[baseIdx].ReadSSF
	for i := range pts {
		if wBase > 0 {
			pts[i].WriteNorm = pts[i].WriteSSF / wBase
		}
		if rBase > 0 {
			pts[i].ReadNorm = pts[i].ReadSSF / rBase
		}
	}
}

// String renders the figure.
func (r *Fig11Result) String() string {
	var sb strings.Builder
	a := report.NewTable("Fig 11(a): normalized SSF vs temporal-accuracy range",
		"range (cycles)", "write SSF", "read SSF", "write norm", "read norm")
	for _, p := range r.Temporal {
		a.Row(p.Label, p.WriteSSF, p.ReadSSF, p.WriteNorm, p.ReadNorm)
	}
	a.Render(&sb)
	b := report.NewTable("Fig 11(b): normalized SSF vs spatial accuracy",
		"concentration", "write SSF", "read SSF", "write norm", "read norm")
	for _, p := range r.Spatial {
		b.Row(p.Label, p.WriteSSF, p.ReadSSF, p.WriteNorm, p.ReadNorm)
	}
	b.Render(&sb)
	sb.WriteString("  (paper: SSF rises monotonically as either accuracy improves)\n")
	return sb.String()
}
