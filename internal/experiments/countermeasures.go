package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/harden"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/report"
)

// CountermeasureRow is one design variant's security/cost figures.
type CountermeasureRow struct {
	Name string
	// CombSSF and RegSSF are the SSF under gate attacks and register
	// (SEU) attacks.
	CombSSF, RegSSF float64
	// Area is the MPU area in gate equivalents; AreaOverhead its
	// increase over the baseline.
	Area, AreaOverhead float64
}

// CountermeasuresResult compares protection schemes — the paper's third
// design-guidance use case ("evaluate and compare the effectiveness of
// different countermeasures"): logic duplication (dual-rail decision),
// selective register hardening, and their combination.
type CountermeasuresResult struct {
	Rows []CountermeasureRow
}

// Countermeasures evaluates the four design variants.
func Countermeasures(c *Context) (*CountermeasuresResult, error) {
	am := netlist.DefaultAreaModel()

	evalVariant := func(fw *core.Framework, plan *harden.Plan) (CountermeasureRow, error) {
		row := CountermeasureRow{Area: am.TotalArea(fw.MPU.Netlist)}
		ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
		if err != nil {
			return row, err
		}
		if plan != nil {
			restore := plan.Apply(ev.Engine)
			defer restore()
			row.Area += (plan.AreaFactor - 1) * am.RegArea(fw.MPU.Netlist, plan.Regs)
		}
		imp, err := ev.ImportanceSampler()
		if err != nil {
			return row, err
		}
		gate, err := ev.Engine.RunCampaign(c.ctx(), imp, c.campaign(montecarlo.GateAttack))
		if err != nil {
			return row, err
		}
		regOpts := c.campaign(montecarlo.RegisterAttack)
		regOpts.Seed = c.Seed + 1
		reg, err := ev.Engine.RunCampaign(c.ctx(), ev.RandomSampler(), regOpts)
		if err != nil {
			return row, err
		}
		row.CombSSF = gate.SSF()
		row.RegSSF = reg.SSF()
		return row, nil
	}

	// Baseline.
	base, err := evalVariant(c.FW, nil)
	if err != nil {
		return nil, err
	}
	base.Name = "baseline"

	// Hardening plan from the baseline's critical registers.
	ev, err := c.Eval(core.BenchmarkIllegalWrite)
	if err != nil {
		return nil, err
	}
	regOpts := c.campaign(montecarlo.RegisterAttack)
	regOpts.Seed = c.Seed + 1
	regCamp, err := ev.Engine.RunCampaign(c.ctx(), ev.RandomSampler(), regOpts)
	if err != nil {
		return nil, err
	}
	resil, areaF := harden.DefaultCellParams()
	plan := harden.Plan{
		Regs:       harden.FromCritical(regCamp.CriticalRegisters(), 0.95),
		Resilience: resil,
		AreaFactor: areaF,
	}

	hardRow, err := evalVariant(c.FW, &plan)
	if err != nil {
		return nil, err
	}
	hardRow.Name = "hardened registers"

	// Dual-rail variant: an independent framework build.
	opts := c.FW.Opts
	opts.SoC.MPU.DualRail = true
	dualFW, err := core.Build(opts)
	if err != nil {
		return nil, err
	}
	dualRow, err := evalVariant(dualFW, nil)
	if err != nil {
		return nil, err
	}
	dualRow.Name = "dual-rail decision"

	// Dual-rail + hardened registers (plan re-derived on the dual
	// design; register names are identical).
	dualEv, err := dualFW.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
	if err != nil {
		return nil, err
	}
	dualReg, err := dualEv.Engine.RunCampaign(c.ctx(), dualEv.RandomSampler(), regOpts)
	if err != nil {
		return nil, err
	}
	dualPlan := harden.Plan{
		Regs:       harden.FromCritical(dualReg.CriticalRegisters(), 0.95),
		Resilience: resil,
		AreaFactor: areaF,
	}
	bothRow, err := evalVariant(dualFW, &dualPlan)
	if err != nil {
		return nil, err
	}
	bothRow.Name = "dual-rail + hardened"

	r := &CountermeasuresResult{Rows: []CountermeasureRow{base, hardRow, dualRow, bothRow}}
	for i := range r.Rows {
		r.Rows[i].AreaOverhead = r.Rows[i].Area/base.Area - 1
	}
	return r, nil
}

// String renders the comparison.
func (r *CountermeasuresResult) String() string {
	var sb strings.Builder
	t := report.NewTable("Countermeasure comparison (memory-write benchmark)",
		"design", "gate-attack SSF", "register-attack SSF", "area (GE)", "area overhead")
	for _, row := range r.Rows {
		t.Row(row.Name, row.CombSSF, row.RegSSF, row.Area, report.Percent(row.AreaOverhead))
	}
	t.Render(&sb)
	sb.WriteString("  dual-rail logic fails secure against gate strikes but leaves the\n")
	sb.WriteString("  config store exposed; hardened registers cover SEUs but not logic\n")
	sb.WriteString("  transients — the combination closes both surfaces.\n")
	return sb.String()
}
