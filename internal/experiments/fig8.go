package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
)

// Fig8Result reproduces Figure 8: the importance-sampling timing
// distribution and the sample-space reduction of the
// pre-characterization.
type Fig8Result struct {
	// TimingProbs is g_T per timing distance.
	TimingProbs []float64
	// TotalRegs is the design's register count.
	TotalRegs int
	// FaninRegs / FaninCompRegs count, per unroll depth, the
	// registers (resp. computation-type registers) of the fanin
	// cone, normalized by TotalRegs.
	FaninRegs     []float64
	FaninCompRegs []float64
}

// Fig8 builds the sampling-distribution and sample-space report.
func Fig8(c *Context) (*Fig8Result, error) {
	ev, err := c.Eval(core.BenchmarkIllegalWrite)
	if err != nil {
		return nil, err
	}
	is, err := ev.ImportanceSampler()
	if err != nil {
		return nil, err
	}
	nl := c.FW.MPU.Netlist
	char := c.FW.Char
	r := &Fig8Result{
		TimingProbs: is.TimingProbs(),
		TotalRegs:   len(nl.Regs()),
	}
	all := char.FaninRegsByDepth(nl)
	comp := char.FaninCompRegsByDepth(nl)
	depths := len(all)
	if depths > 21 {
		depths = 21
	}
	for d := 0; d < depths; d++ {
		r.FaninRegs = append(r.FaninRegs, float64(len(all[d]))/float64(r.TotalRegs))
		r.FaninCompRegs = append(r.FaninCompRegs, float64(len(comp[d]))/float64(r.TotalRegs))
	}
	return r, nil
}

// String renders the figure.
func (r *Fig8Result) String() string {
	var sb strings.Builder
	a := report.NewSeries("Fig 8(a): importance-sampling distribution g_T over timing distance")
	for t, p := range r.TimingProbs {
		if t > 40 {
			break
		}
		a.Point(fmt.Sprintf("t=%d", t), p)
	}
	a.Render(&sb)
	b := report.NewTable("Fig 8(b): sample-space reduction (normalized register count)",
		"unroll depth", "total", "fanin cone", "fanin cone comp.")
	for d := range r.FaninRegs {
		b.Row(d, 1.0, r.FaninRegs[d], r.FaninCompRegs[d])
	}
	b.Render(&sb)
	return sb.String()
}
