package server

import (
	"bufio"
	"fmt"
	"net/http"
	"sync"
)

// sseMsg is one server-sent event: an event name and a single-line JSON
// payload.
type sseMsg struct {
	event string
	data  []byte
}

// sseHub fans a job's event stream out to any number of subscribers.
// Progress events are idempotent snapshots, so a slow subscriber simply
// skips intermediate ones (its channel drops new events when full); the
// terminal event is delivered through the hub state instead of the
// channel, so it is never lost to that policy.
type sseHub struct {
	mu    sync.Mutex
	subs  map[chan sseMsg]struct{} //guarded-by:mu
	last  *sseMsg                  //guarded-by:mu — latest progress event, replayed to new subscribers
	final *sseMsg                  //guarded-by:mu — terminal event; set once, then the hub is closed
}

func newSSEHub() *sseHub {
	return &sseHub{subs: make(map[chan sseMsg]struct{})}
}

// publish broadcasts a progress event.
func (h *sseHub) publish(m sseMsg) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.final != nil {
		return
	}
	h.last = &m
	//maporder-ok (subscribers are independent; each sees events in publish order)
	for ch := range h.subs {
		select {
		case ch <- m:
		default: // slow subscriber: skip this snapshot
		}
	}
}

// finish broadcasts the terminal event and closes every subscriber.
func (h *sseHub) finish(m sseMsg) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.final != nil {
		return
	}
	h.final = &m
	for ch := range h.subs {
		close(ch)
	}
	h.subs = make(map[chan sseMsg]struct{})
}

// subscribe registers a subscriber and returns the replayed backlog
// (latest progress, terminal event if already finished), the live
// channel (nil when the job is already terminal), and an unsubscribe
// func.
func (h *sseHub) subscribe() (backlog []sseMsg, ch chan sseMsg, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.last != nil {
		backlog = append(backlog, *h.last)
	}
	if h.final != nil {
		backlog = append(backlog, *h.final)
		return backlog, nil, func() {}
	}
	ch = make(chan sseMsg, 16)
	h.subs[ch] = struct{}{}
	return backlog, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// writeSSE writes one event in text/event-stream framing.
func writeSSE(w *bufio.Writer, m sseMsg) error {
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", m.event, m.data); err != nil {
		return err
	}
	return w.Flush()
}

// flusher adapts http.ResponseWriter for buffered SSE writes.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if err == nil {
		fw.f.Flush()
	}
	return n, err
}
