// Package server turns the Monte Carlo campaign engine into a
// long-running evaluation service: an HTTP/JSON API over a job queue
// that runs campaigns across a core.EnginePool with deterministic
// per-job seed partitioning, streams progress over SSE, checkpoints
// every job to an on-disk store so a restarted server resumes
// interrupted jobs bit-identically, applies per-tenant token-bucket
// rate limits, and bounds the queue with backpressure (429 +
// Retry-After). The headline POST /v1/rank endpoint evaluates N
// hardening variants of the design and returns a ranked SSF
// leaderboard.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/sampling"
)

// Config tunes the service. The zero value is usable: defaults are
// applied by New.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it get 429 + Retry-After. Default 64.
	QueueDepth int
	// CheckpointEvery is the checkpoint cadence in campaign rounds
	// (every round = CheckEvery × pool-size samples). Default 1.
	CheckpointEvery int64
	// RatePerSec and Burst configure the per-tenant token bucket over
	// job and rank submissions. RatePerSec <= 0 disables limiting.
	RatePerSec float64
	Burst      float64
	// MaxSamples caps any single job's sample budget. Default 1<<22.
	MaxSamples int
	// MaxVariants caps the variant count of one rank request.
	// Default 16.
	MaxVariants int
	// Logf receives operational log lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1 << 22
	}
	if c.MaxVariants <= 0 {
		c.MaxVariants = 16
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server is the evaluation service. Build with New, attach Handler to
// an http.Server, call Start to begin draining the job queue, and
// Shutdown to stop: a job running at shutdown is checkpointed and
// re-queued, and the next Start (same store directory) resumes it from
// the last completed round — the final result is bit-identical to an
// uninterrupted run of the same request.
type Server struct {
	cfg    Config
	pool   *core.EnginePool
	store  *Store
	limits *limiterPool

	// poolMu serializes use of the engine pool between the job worker
	// and synchronous rank requests (the engines are single-campaign).
	poolMu sync.Mutex

	mu       sync.Mutex
	jobs     map[string]*Job             //guarded-by:mu
	queue    chan *Job                   // immutable after New; channel ops are self-synchronizing
	samplers map[string]sampling.Sampler //guarded-by:mu

	runCtx  context.Context    //guarded-by:mu
	cancel  context.CancelFunc //guarded-by:mu
	wg      sync.WaitGroup
	started bool //guarded-by:mu
}

// New builds a server over an engine pool and a store directory,
// loading every persisted job: finished jobs become queryable history,
// interrupted ones (queued or running at the previous shutdown) are
// re-queued for resumption in their original submission order.
func New(pool *core.EnginePool, storeDir string, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if pool == nil || pool.Size() == 0 {
		return nil, fmt.Errorf("server: nil or empty engine pool")
	}
	store, err := NewStore(storeDir)
	if err != nil {
		return nil, err
	}
	recs, loadErrs := store.Load()
	for _, lerr := range loadErrs {
		cfg.Logf("server: store recovery: %v", lerr)
	}
	s := &Server{
		cfg:      cfg,
		pool:     pool,
		store:    store,
		limits:   newLimiterPool(cfg.RatePerSec, cfg.Burst),
		jobs:     make(map[string]*Job, len(recs)),
		samplers: make(map[string]sampling.Sampler),
	}
	var pending []*Job
	for _, rec := range recs {
		if rec.State == StateRunning {
			// Interrupted mid-run: back to the queue, keeping the
			// checkpoint the resume will start from.
			rec.State = StateQueued
		}
		j := newJob(rec)
		s.jobs[rec.ID] = j
		if rec.State == StateQueued {
			pending = append(pending, j)
		}
	}
	depth := cfg.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	s.queue = make(chan *Job, depth)
	for _, j := range pending {
		s.queue <- j
	}
	return s, nil
}

// Start launches the job worker. It is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	ctx, cancel := context.WithCancel(context.Background())
	s.runCtx, s.cancel = ctx, cancel
	s.wg.Add(1)
	// The worker gets its context as a parameter rather than reading
	// s.runCtx, so a later Start (after Shutdown) can reassign the field
	// without the old goroutine ever observing it.
	go s.worker(ctx)
}

// Shutdown stops the worker, cancelling any running campaign (it
// checkpoints at round granularity, so at most one round of work is
// redone after restart), and waits for it to settle.
func (s *Server) Shutdown() {
	s.mu.Lock()
	started := s.started
	cancel := s.cancel
	s.mu.Unlock()
	if !started {
		return
	}
	cancel()
	s.wg.Wait()
	s.mu.Lock()
	s.started = false
	s.mu.Unlock()
}

// worker drains the queue, one job at a time: the engine pool runs one
// campaign at a time, and each job's samples are already partitioned
// across every engine in the pool.
func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(ctx, j)
		}
	}
}

// job looks up a job by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// sampler returns (building and caching on first use) the named
// sampling strategy over the pool's evaluation. Samplers are immutable
// after construction and safe for concurrent Draw with distinct rngs.
func (s *Server) sampler(name string) (sampling.Sampler, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp, ok := s.samplers[name]; ok {
		return sp, nil
	}
	ev := s.pool.Evaluation
	var sp sampling.Sampler
	var err error
	switch name {
	case "random":
		sp = ev.RandomSampler()
	case "cone":
		sp, err = ev.ConeSampler()
	case "importance":
		sp, err = ev.ImportanceSampler()
	case "stratified":
		sp, err = ev.StratifiedSampler()
	case "sobol":
		sp, err = ev.SobolSampler()
	default:
		err = fmt.Errorf("server: unknown sampler %q", name)
	}
	if err != nil {
		return nil, err
	}
	s.samplers[name] = sp
	return sp, nil
}

// submit registers and enqueues a new job. A full queue reports
// backpressure via errQueueFull.
func (s *Server) submit(tenant string, req JobRequest) (*Job, error) {
	id, err := newID()
	if err != nil {
		return nil, err
	}
	j := newJob(jobRecord{
		ID:          id,
		Tenant:      tenant,
		Request:     req,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
	})
	s.mu.Lock()
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		return nil, errQueueFull
	}
	if err := s.store.Save(j.snapshotRecord()); err != nil {
		s.cfg.Logf("server: persist %s: %v", id, err)
	}
	return j, nil
}

var errQueueFull = errors.New("server: job queue full")

// cancelJob cancels a queued or running job.
func (s *Server) cancelJob(j *Job) bool {
	j.mu.Lock()
	switch j.rec.State {
	case StateQueued:
		j.rec.State = StateCancelled
		j.rec.FinishedAt = time.Now().UTC()
		hub := j.hub
		rec := j.rec
		j.mu.Unlock()
		hub.finish(sseMsg{event: StateCancelled, data: mustJSON(map[string]string{"state": StateCancelled})})
		if err := s.store.Save(rec); err != nil {
			s.cfg.Logf("server: persist %s: %v", rec.ID, err)
		}
		return true
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// runJob executes one job end to end: resume from its checkpoint if
// one exists, checkpoint every CheckpointEvery rounds, stream progress
// to the job's SSE hub, and persist the terminal state. A server
// shutdown mid-job re-queues it instead of failing it.
func (s *Server) runJob(ctx context.Context, j *Job) {
	j.mu.Lock()
	if j.rec.State != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.rec.State = StateRunning
	if j.rec.StartedAt.IsZero() {
		j.rec.StartedAt = time.Now().UTC()
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.cancel = cancel
	rec := j.rec
	j.mu.Unlock()
	if err := s.store.Save(rec); err != nil {
		s.cfg.Logf("server: persist %s: %v", rec.ID, err)
	}

	sp, err := s.sampler(rec.Request.Sampler)
	if err != nil {
		s.finishJob(j, nil, err)
		return
	}
	aopts := rec.Request.adaptiveOptions()
	if rec.Checkpoint != nil {
		aopts.Resume = rec.Checkpoint.Campaign()
		aopts.ResumeRound = rec.Rounds
	}
	aopts.Progress = func(p montecarlo.Progress) {
		ev := &ProgressEvent{
			Done:       p.Done,
			Total:      p.Total,
			SSF:        p.SSF,
			RunsPerSec: p.RunsPerSec,
			ElapsedMS:  p.Elapsed.Milliseconds(),
		}
		j.mu.Lock()
		// Progress counts restart at zero on resume; fold in the
		// checkpointed samples so clients see monotonic totals.
		if rec.Checkpoint != nil {
			ev.Done += rec.Checkpoint.Est.N
		}
		j.progress = ev
		hub := j.hub
		j.mu.Unlock()
		hub.publish(sseMsg{event: "progress", data: mustJSON(ev)})
	}
	aopts.ProgressEvery = aopts.CheckEvery
	aopts.Checkpoint = func(rounds int64, total *montecarlo.Campaign) {
		if rounds%s.cfg.CheckpointEvery != 0 {
			return
		}
		j.mu.Lock()
		j.rec.Rounds = rounds
		j.rec.Checkpoint = total.Snapshot()
		cp := j.rec
		j.mu.Unlock()
		if err := s.store.Save(cp); err != nil {
			s.cfg.Logf("server: checkpoint %s: %v", cp.ID, err)
		}
	}

	s.poolMu.Lock()
	camp, err := montecarlo.RunAdaptiveParallel(jctx, s.pool.Engines, sp, aopts)
	s.poolMu.Unlock()

	if err != nil && errors.Is(err, context.Canceled) {
		if ctx.Err() != nil {
			// Server shutdown: back to the queue; the on-disk
			// checkpoint resumes the job after restart.
			j.mu.Lock()
			j.rec.State = StateQueued
			j.cancel = nil
			rec := j.rec
			j.mu.Unlock()
			if err := s.store.Save(rec); err != nil {
				s.cfg.Logf("server: persist %s: %v", rec.ID, err)
			}
			// Best-effort re-enqueue so an in-process Start after
			// Shutdown picks the job up again (a process restart
			// re-queues it from the store instead).
			select {
			case s.queue <- j:
			default:
			}
			return
		}
		s.finishCancelled(j, camp)
		return
	}
	s.finishJob(j, camp, err)
}

// finishJob records a job's terminal state (done, or failed with a
// partial result when the campaign produced one).
func (s *Server) finishJob(j *Job, camp *montecarlo.Campaign, err error) {
	j.mu.Lock()
	j.cancel = nil
	j.rec.FinishedAt = time.Now().UTC()
	j.rec.Result = resultFrom(camp)
	j.rec.Checkpoint = nil // the result supersedes the checkpoint
	state := StateDone
	if err != nil {
		state = StateFailed
		j.rec.Error = err.Error()
	}
	j.rec.State = state
	rec := j.rec
	hub := j.hub
	j.mu.Unlock()
	if serr := s.store.Save(rec); serr != nil {
		s.cfg.Logf("server: persist %s: %v", rec.ID, serr)
	}
	st := j.status()
	hub.finish(sseMsg{event: state, data: mustJSON(st)})
}

// finishCancelled records a client-initiated cancellation, keeping the
// partial result.
func (s *Server) finishCancelled(j *Job, camp *montecarlo.Campaign) {
	j.mu.Lock()
	j.cancel = nil
	j.rec.FinishedAt = time.Now().UTC()
	j.rec.Result = resultFrom(camp)
	j.rec.Checkpoint = nil
	j.rec.State = StateCancelled
	rec := j.rec
	hub := j.hub
	j.mu.Unlock()
	if err := s.store.Save(rec); err != nil {
		s.cfg.Logf("server: persist %s: %v", rec.ID, err)
	}
	st := j.status()
	hub.finish(sseMsg{event: StateCancelled, data: mustJSON(st)})
}

// newID returns a 12-hex-digit random job ID.
func newID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// mustJSON marshals values whose types cannot fail to encode.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}
