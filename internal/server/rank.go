package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"repro/internal/harden"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
)

// RankRequest is the body of POST /v1/rank: evaluate N hardening
// variants of the design under one campaign configuration and return a
// leaderboard ranked by hardened SSF (most secure first). The same
// seed is used for the base campaign and every variant, so the
// leaderboard is deterministic for a given request.
type RankRequest struct {
	// Samples per campaign (base + one per variant).
	Samples int `json:"samples"`
	// Sampler, Mode, Seed, Batch as in JobRequest.
	Sampler string `json:"sampler,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Seed    int64  `json:"seed"`
	Batch   bool   `json:"batch,omitempty"`
	// Variants are the hardening plans to rank.
	Variants []RankVariant `json:"variants"`
}

// RankVariant names one hardening plan. Registers come from exactly one
// of: Regs (explicit netlist node IDs), TopN (the N most critical
// registers of the base campaign), or Share (the top-ranked registers
// covering this fraction of the base campaign's success mass, e.g.
// 0.95 for the paper's countermeasure study).
type RankVariant struct {
	Name string `json:"name"`
	// Regs hardens an explicit register set.
	Regs []netlist.NodeID `json:"regs,omitempty"`
	// TopN hardens the N most critical registers.
	TopN int `json:"top_n,omitempty"`
	// Share hardens the registers covering this share of success mass.
	Share float64 `json:"share,omitempty"`
	// Resilience is the hardened cell's upset-rate improvement factor
	// (default 10, the paper's published figure).
	Resilience float64 `json:"resilience,omitempty"`
	// AreaFactor is the hardened cell's relative area (default 3).
	AreaFactor float64 `json:"area_factor,omitempty"`
}

// RankEntry is one leaderboard row.
type RankEntry struct {
	Rank int    `json:"rank"`
	Name string `json:"name"`
	// SSF is the hardened design's estimate; lower is more secure.
	SSF    float64 `json:"ssf"`
	StdErr float64 `json:"std_err"`
	// Improvement is BaseSSF / SSF; when the hardened campaign saw no
	// successes it is the resolution-limited lower bound and
	// NoSuccess is set.
	Improvement float64 `json:"improvement"`
	NoSuccess   bool    `json:"no_success,omitempty"`
	// AreaOverhead is the fractional netlist area increase.
	AreaOverhead float64 `json:"area_overhead"`
	NumRegs      int     `json:"num_regs"`
	RegFraction  float64 `json:"reg_fraction"`
}

// RankResponse is the leaderboard.
type RankResponse struct {
	BaseSSF    float64     `json:"base_ssf"`
	BaseStdErr float64     `json:"base_std_err"`
	Samples    int         `json:"samples"`
	Sampler    string      `json:"sampler"`
	Mode       string      `json:"mode"`
	Seed       int64       `json:"seed"`
	Entries    []RankEntry `json:"leaderboard"`
}

// normalize applies defaults and validates.
func (r *RankRequest) normalize(maxSamples, maxVariants int) error {
	if r.Sampler == "" {
		r.Sampler = "importance"
	}
	if r.Mode == "" {
		r.Mode = "gate"
	}
	if _, err := montecarlo.ParseMode(r.Mode); err != nil {
		return err
	}
	switch r.Sampler {
	case "random", "cone", "importance":
	default:
		return fmt.Errorf("unknown sampler %q", r.Sampler)
	}
	if r.Samples < 1 || r.Samples > maxSamples {
		return fmt.Errorf("samples %d outside [1, %d]", r.Samples, maxSamples)
	}
	if len(r.Variants) == 0 || len(r.Variants) > maxVariants {
		return fmt.Errorf("variant count %d outside [1, %d]", len(r.Variants), maxVariants)
	}
	names := make(map[string]bool, len(r.Variants))
	for i := range r.Variants {
		v := &r.Variants[i]
		if v.Name == "" {
			v.Name = fmt.Sprintf("variant-%d", i)
		}
		if names[v.Name] {
			return fmt.Errorf("duplicate variant name %q", v.Name)
		}
		names[v.Name] = true
		specs := 0
		if len(v.Regs) > 0 {
			specs++
		}
		if v.TopN > 0 {
			specs++
		}
		if v.Share > 0 {
			specs++
		}
		if specs != 1 {
			return fmt.Errorf("variant %q: exactly one of regs, top_n, share must be set", v.Name)
		}
		if v.Share < 0 || v.Share > 1 {
			return fmt.Errorf("variant %q: share %v outside (0, 1]", v.Name, v.Share)
		}
		if v.Resilience == 0 && v.AreaFactor == 0 {
			v.Resilience, v.AreaFactor = harden.DefaultCellParams()
		}
		if v.Resilience < 1 {
			return fmt.Errorf("variant %q: resilience %v < 1", v.Name, v.Resilience)
		}
		if v.AreaFactor < 1 {
			v.AreaFactor = 1
		}
	}
	return nil
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if !s.checkRate(w, r) {
		return
	}
	var req RankRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.normalize(s.cfg.MaxSamples, s.cfg.MaxVariants); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := s.rank(r.Context(), req)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// rank runs the base campaign, then re-runs the identical campaign
// under each variant's hardening plan, and ranks the variants by
// hardened SSF. It holds the engine pool for the whole evaluation, so
// rank requests serialize with queued jobs.
func (s *Server) rank(ctx context.Context, req RankRequest) (*RankResponse, error) {
	sp, err := s.sampler(req.Sampler)
	if err != nil {
		return nil, err
	}
	mode, _ := montecarlo.ParseMode(req.Mode)
	copts := montecarlo.CampaignOptions{
		Samples: req.Samples,
		Mode:    mode,
		Seed:    req.Seed,
		Batch:   req.Batch,
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()

	base, err := montecarlo.RunCampaignParallel(ctx, s.pool.Engines, sp, copts)
	if err != nil {
		return nil, fmt.Errorf("base campaign: %w", err)
	}
	ranked := base.CriticalRegisters()
	nl := s.pool.Evaluation.Framework.MPU.Netlist
	nRegs := len(nl.Regs())

	resp := &RankResponse{
		BaseSSF:    base.SSF(),
		BaseStdErr: base.Est.StdErr(),
		Samples:    req.Samples,
		Sampler:    sp.Name(),
		Mode:       req.Mode,
		Seed:       req.Seed,
		Entries:    make([]RankEntry, 0, len(req.Variants)),
	}
	for _, v := range req.Variants {
		regs := v.Regs
		switch {
		case v.TopN > 0:
			n := v.TopN
			if n > len(ranked) {
				n = len(ranked)
			}
			regs = make([]netlist.NodeID, 0, n)
			for _, cr := range ranked[:n] {
				regs = append(regs, cr.Reg)
			}
		case v.Share > 0:
			regs = harden.FromCritical(ranked, v.Share)
		}
		plan := harden.Plan{Regs: regs, Resilience: v.Resilience, AreaFactor: v.AreaFactor}
		restores := make([]func(), 0, s.pool.Size())
		for _, eng := range s.pool.Engines {
			restores = append(restores, plan.Apply(eng))
		}
		hard, err := montecarlo.RunCampaignParallel(ctx, s.pool.Engines, sp, copts)
		for i := len(restores) - 1; i >= 0; i-- {
			restores[i]()
		}
		if err != nil {
			return nil, fmt.Errorf("variant %q: %w", v.Name, err)
		}
		entry := RankEntry{
			Name:         v.Name,
			SSF:          hard.SSF(),
			StdErr:       hard.Est.StdErr(),
			AreaOverhead: plan.AreaOverhead(nl),
			NumRegs:      len(regs),
		}
		if nRegs > 0 {
			entry.RegFraction = float64(len(regs)) / float64(nRegs)
		}
		switch {
		case entry.SSF > 0:
			entry.Improvement = resp.BaseSSF / entry.SSF
		case resp.BaseSSF > 0:
			// No hardened successes: resolution-limited lower bound.
			entry.NoSuccess = true
			entry.Improvement = resp.BaseSSF * float64(req.Samples)
		default:
			entry.Improvement = 1
		}
		resp.Entries = append(resp.Entries, entry)
	}
	// Most secure (lowest hardened SSF) first; ties break by name so
	// the leaderboard is fully deterministic.
	sort.Slice(resp.Entries, func(i, j int) bool {
		if resp.Entries[i].SSF != resp.Entries[j].SSF {
			return resp.Entries[i].SSF < resp.Entries[j].SSF
		}
		return resp.Entries[i].Name < resp.Entries[j].Name
	})
	for i := range resp.Entries {
		resp.Entries[i].Rank = i + 1
	}
	return resp, nil
}
