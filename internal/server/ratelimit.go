package server

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is a standard continuous-refill token bucket.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// limiterPool holds one token bucket per tenant. Buckets refill at rate
// tokens/second up to burst; every accepted request costs one token.
type limiterPool struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket //guarded-by:mu
}

// newLimiterPool builds a limiter; rate <= 0 disables limiting.
func newLimiterPool(rate, burst float64) *limiterPool {
	if burst < 1 {
		burst = 1
	}
	return &limiterPool{rate: rate, burst: burst, buckets: make(map[string]*tokenBucket)}
}

// allow consumes one token from the tenant's bucket. When the bucket is
// empty it reports false and how long until a token is available — the
// Retry-After the handler should send. The clock is a parameter so
// tests can drive it.
func (l *limiterPool) allow(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[tenant]
	if !exists {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(l.burst, b.tokens+elapsed*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(math.Ceil(deficit/l.rate)) * time.Second
}
