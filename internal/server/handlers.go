package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs            submit a campaign job (202 + status)
//	GET    /v1/jobs            list jobs, newest first
//	GET    /v1/jobs/{id}       job status / result
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/events  SSE progress stream
//	POST   /v1/rank            evaluate hardening variants, ranked SSF
//	GET    /healthz            liveness
//
// Tenancy for rate limiting comes from the X-Tenant header ("default"
// when absent).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/rank", s.handleRank)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "workers": s.pool.Size()})
	})
	return mux
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// checkRate applies the per-tenant token bucket; on rejection it writes
// 429 + Retry-After and reports false.
func (s *Server) checkRate(w http.ResponseWriter, r *http.Request) bool {
	ok, retry := s.limits.allow(tenantOf(r), time.Now())
	if ok {
		return true
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
	writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
	return false
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.checkRate(w, r) {
		return
	}
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.normalize(s.cfg.MaxSamples); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.submit(tenantOf(r), req)
	if err == errQueueFull {
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusTooManyRequests, "job queue full")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.jobs))
	//maporder-ok (sorted by submission time then id below)
	for _, j := range s.jobs {
		statuses = append(statuses, j.status())
	}
	s.mu.Unlock()
	sort.Slice(statuses, func(i, k int) bool {
		if !statuses[i].SubmittedAt.Equal(statuses[k].SubmittedAt) {
			return statuses[i].SubmittedAt.After(statuses[k].SubmittedAt)
		}
		return statuses[i].ID < statuses[k].ID
	})
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !s.cancelJob(j) {
		writeError(w, http.StatusConflict, "job already %s", j.state())
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's progress as server-sent events:
// "progress" events while running, then one terminal event named after
// the final state ("done", "failed", "cancelled") carrying the full
// job status, after which the stream closes. A client connecting to a
// finished job receives the terminal event immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(flushWriter{w: w, f: fl})

	backlog, ch, cancel := j.hub.subscribe()
	defer cancel()
	for _, m := range backlog {
		if writeSSE(bw, m) != nil {
			return
		}
	}
	if ch == nil {
		return // job already terminal; backlog carried the final event
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case m, open := <-ch:
			if !open {
				// Hub finished after we subscribed: replay the
				// terminal event.
				if final, _, _ := j.hub.subscribe(); len(final) > 0 {
					// Stream ends either way; a write error just means
					// the client is already gone.
					_ = writeSSE(bw, final[len(final)-1])
				}
				return
			}
			if writeSSE(bw, m) != nil {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the ResponseWriter: once the status line
	// is out, an encode failure (e.g. a NaN float) would truncate the
	// body under a success code. After WriteHeader the write error is
	// unactionable (client gone), so that one is deliberately dropped.
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		data = []byte(`{"error":"response encoding failed"}`)
		code = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data = append(data, '\n')
	_, _ = w.Write(data)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
