package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store persists one JSON file per job under a directory. Writes are
// atomic (temp file + rename), so a crash mid-write leaves the previous
// checkpoint intact; floats survive the JSON round trip exactly
// (encoding/json emits the shortest representation that parses back to
// the same float64), which is what makes checkpoint resume
// bit-identical.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) an on-disk job store.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, "job-"+id+".json")
}

// Save writes the record atomically.
func (s *Store) Save(rec jobRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: store: marshal %s: %w", rec.ID, err)
	}
	tmp, err := os.CreateTemp(s.dir, "job-*.tmp")
	if err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		//errdrop-ok (best-effort temp cleanup; the write error is what matters)
		os.Remove(tmp.Name())
		return fmt.Errorf("server: store: write %s: %w", rec.ID, errFirst(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.path(rec.ID)); err != nil {
		//errdrop-ok (best-effort temp cleanup; the rename error is what matters)
		os.Remove(tmp.Name())
		return fmt.Errorf("server: store: %w", err)
	}
	return nil
}

// Load reads every job record, sorted by submission time then ID so
// restart recovery re-queues jobs in their original order. Unreadable
// files are skipped (reported in errs) rather than failing the whole
// recovery.
func (s *Store) Load() (recs []jobRecord, errs []error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, []error{fmt.Errorf("server: store: %w", err)}
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			errs = append(errs, fmt.Errorf("server: store: %s: %w", name, err))
			continue
		}
		if rec.ID == "" || rec.Checkpoint != nil && rec.Checkpoint.Validate() != nil {
			errs = append(errs, fmt.Errorf("server: store: %s: invalid record", name))
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].SubmittedAt.Equal(recs[j].SubmittedAt) {
			return recs[i].SubmittedAt.Before(recs[j].SubmittedAt)
		}
		return recs[i].ID < recs[j].ID
	})
	return recs, errs
}

func errFirst(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
