package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/stats"
)

var (
	poolOnce sync.Once
	pool     *core.EnginePool
	poolErr  error
)

// enginePool builds one shared two-engine pool for the whole package:
// each engine pays a golden run at construction, and every test server
// serializes pool use through its own worker anyway.
func enginePool(t *testing.T) *core.EnginePool {
	t.Helper()
	poolOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.Precharac.MaxDepth = 51
		opts.Precharac.TraceCycles = 768
		opts.Precharac.LifetimeCap = 120
		opts.Precharac.Probes = 1
		fw, err := core.Build(opts)
		if err != nil {
			poolErr = err
			return
		}
		ev, err := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
		if err != nil {
			poolErr = err
			return
		}
		pool, poolErr = ev.NewEnginePool(2)
	})
	if poolErr != nil {
		t.Fatal(poolErr)
	}
	return pool
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := New(enginePool(t), t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestJobRequestNormalize(t *testing.T) {
	cases := []struct {
		name string
		req  JobRequest
		ok   bool
	}{
		{"neither samples nor epsilon", JobRequest{}, false},
		{"both samples and epsilon", JobRequest{Samples: 10, Epsilon: 0.1}, false},
		{"fixed", JobRequest{Samples: 100}, true},
		{"adaptive", JobRequest{Epsilon: 0.01, Risk: 0.05}, true},
		{"risk out of range", JobRequest{Epsilon: 0.01, Risk: 1}, false},
		{"over budget", JobRequest{Samples: 1 << 30}, false},
		{"unknown sampler", JobRequest{Samples: 10, Sampler: "bogus"}, false},
		{"stratified sampler", JobRequest{Samples: 10, Sampler: "stratified"}, true},
		{"sobol sampler", JobRequest{Samples: 10, Sampler: "sobol"}, true},
		{"unknown mode", JobRequest{Samples: 10, Mode: "weird"}, false},
		{"negative check_every", JobRequest{Samples: 10, CheckEvery: -1}, false},
	}
	for _, c := range cases {
		err := c.req.normalize(1 << 22)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}

	r := JobRequest{Samples: 100}
	if err := r.normalize(1 << 22); err != nil {
		t.Fatal(err)
	}
	if r.Sampler != "importance" || r.Mode != "gate" {
		t.Errorf("defaults not applied: %+v", r)
	}
	o := r.adaptiveOptions()
	if o.MinSamples != 100 || o.MaxSamples != 100 || o.Epsilon != 1 || o.Risk != 0.5 {
		t.Errorf("fixed-size job not pinned: %+v", o)
	}
	if o.CheckEvery != 500 {
		t.Errorf("CheckEvery default = %d", o.CheckEvery)
	}

	a := JobRequest{Epsilon: 0.01}
	if err := a.normalize(1 << 22); err != nil {
		t.Fatal(err)
	}
	ao := a.adaptiveOptions()
	if ao.Risk != 0.05 || ao.MinSamples != 2000 || ao.MaxSamples != 1<<20 {
		t.Errorf("adaptive defaults: %+v", ao)
	}
}

func TestLimiterPool(t *testing.T) {
	l := newLimiterPool(2, 2)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a", t0); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.allow("a", t0)
	if ok {
		t.Fatal("request beyond burst accepted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %v, want (0, 1s]", retry)
	}
	// Another tenant has its own bucket.
	if ok, _ := l.allow("b", t0); !ok {
		t.Fatal("tenant b should have a fresh bucket")
	}
	// After a second at 2 tokens/s the bucket refills.
	if ok, _ := l.allow("a", t0.Add(time.Second)); !ok {
		t.Fatal("bucket did not refill")
	}
	// Disabled limiter admits everything.
	free := newLimiterPool(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := free.allow("a", t0); !ok {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	recA := jobRecord{
		ID: "aaa", Tenant: "t1", State: StateQueued,
		Request:     JobRequest{Samples: 500, Sampler: "random", Mode: "gate", Seed: 7},
		SubmittedAt: base.Add(time.Minute),
		Rounds:      2,
		Checkpoint: &montecarlo.CampaignSnapshot{
			SamplerName: "random", Mode: montecarlo.GateAttack,
			Est: stats.WelfordState{N: 400, Mean: 0.125, M2: 43.75},
		},
	}
	recB := jobRecord{
		ID: "bbb", State: StateDone, SubmittedAt: base,
		Request: JobRequest{Samples: 100},
		Result:  &JobResult{SSF: 0.25, Samples: 100},
	}
	for _, rec := range []jobRecord{recA, recB} {
		if err := st.Save(rec); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt file is reported and skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "job-ccc.json"), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, errs := st.Load()
	if len(errs) != 1 {
		t.Fatalf("want 1 recovery error, got %v", errs)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 records, got %d", len(recs))
	}
	// Sorted by submission time: bbb (earlier) first.
	if recs[0].ID != "bbb" || recs[1].ID != "aaa" {
		t.Fatalf("order %s, %s", recs[0].ID, recs[1].ID)
	}
	got := recs[1]
	if got.Checkpoint == nil || got.Checkpoint.Est != recA.Checkpoint.Est {
		t.Fatalf("checkpoint state changed: %+v", got.Checkpoint)
	}
	if got.Rounds != 2 || got.Request != recA.Request || got.Tenant != "t1" {
		t.Fatalf("record changed: %+v", got)
	}
	// Overwrite is atomic and last-write-wins.
	recA.State = StateDone
	if err := st.Save(recA); err != nil {
		t.Fatal(err)
	}
	recs, _ = st.Load()
	if recs[1].State != StateDone {
		t.Fatal("overwrite not visible")
	}
}

// TestUnknownSamplerRejectedHTTP: a syntactically valid submission
// naming a sampler the server does not implement is a client error —
// clean 400 before any work is queued.
func TestUnknownSamplerRejectedHTTP(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"samples": 100, "sampler": "sobolev"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown sampler submit: %d, want 400", r.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "sampler") {
		t.Errorf("error %q does not name the sampler field", e.Error)
	}
}

func TestQueueBackpressure(t *testing.T) {
	// QueueDepth 1 and no Start: the first submission parks in the
	// queue, the second must be rejected with 429 + Retry-After.
	srv := newTestServer(t, Config{QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"samples": 100, "sampler": "random"}`
	r1, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestRateLimitHTTP(t *testing.T) {
	srv := newTestServer(t, Config{RatePerSec: 0.1, Burst: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Burst of 1: the first request consumes the token (an invalid body
	// still counts — the limiter runs first), the second is limited.
	r1, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusBadRequest {
		t.Fatalf("first request: %d, want 400", r1.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A different tenant is unaffected.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader("{}"))
	req.Header.Set("X-Tenant", "other")
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("other tenant: %d, want 400", r3.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes an event stream until it closes.
func readSSE(t *testing.T, body *bufio.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
}

func TestJobLifecycleAndSSE(t *testing.T) {
	srv := newTestServer(t, Config{})
	srv.Start()
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JobRequest{Samples: 600, CheckEvery: 100, Sampler: "random", Seed: 5}
	buf, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	evReq, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	evResp, err := http.DefaultClient.Do(evReq)
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	events := readSSE(t, bufio.NewReader(evResp.Body))
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	progress := 0
	for _, e := range events[:len(events)-1] {
		if e.name != "progress" {
			t.Fatalf("unexpected mid-stream event %q", e.name)
		}
		progress++
	}
	if progress == 0 {
		t.Error("no progress events before the terminal event")
	}
	final := events[len(events)-1]
	if final.name != StateDone {
		t.Fatalf("terminal event %q, want done", final.name)
	}
	var finalStatus JobStatus
	if err := json.Unmarshal([]byte(final.data), &finalStatus); err != nil {
		t.Fatal(err)
	}
	if finalStatus.Result == nil || finalStatus.Result.Samples != 600 {
		t.Fatalf("terminal event result: %+v", finalStatus.Result)
	}

	// GET status agrees with the stream, and the result matches a direct
	// run of the identical options on the same pool exactly.
	gr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(gr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("status after done: %+v", got)
	}
	norm := req
	if err := norm.normalize(srv.cfg.MaxSamples); err != nil {
		t.Fatal(err)
	}
	srv.poolMu.Lock()
	ref, err := montecarlo.RunAdaptiveParallel(context.Background(),
		srv.pool.Engines, srv.pool.Evaluation.RandomSampler(), norm.adaptiveOptions())
	srv.poolMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.SSF != ref.SSF() || got.Result.Samples != ref.Est.N() ||
		got.Result.Successes != ref.Successes {
		t.Fatalf("server result %+v, direct run SSF %v N %d", got.Result, ref.SSF(), ref.Est.N())
	}

	// A late subscriber to a finished job gets the terminal event
	// immediately.
	lateResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	late := readSSE(t, bufio.NewReader(lateResp.Body))
	lateResp.Body.Close()
	if len(late) == 0 || late[len(late)-1].name != StateDone {
		t.Fatalf("late subscriber events: %+v", late)
	}
}

func TestRestartResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	p := enginePool(t)
	srv, err := New(p, dir, Config{CheckpointEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	req := JobRequest{Samples: 6000, CheckEvery: 60, Sampler: "random", Seed: 11}
	if err := req.normalize(srv.cfg.MaxSamples); err != nil {
		t.Fatal(err)
	}
	j, err := srv.submit("default", req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until at least two rounds are checkpointed, then pull the
	// plug mid-job.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint progress; job state %s", j.state())
		}
		if j.status().Rounds >= 2 {
			break
		}
		if st := j.state(); st == StateDone || st == StateFailed {
			t.Fatalf("job reached %s before the shutdown; raise Samples", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Shutdown()
	if st := j.state(); st != StateQueued {
		t.Fatalf("after shutdown job is %s, want queued for resume", st)
	}

	// A fresh server over the same store must pick the job up from its
	// checkpoint and finish bit-identical to an uninterrupted run.
	srv2, err := New(p, dir, Config{CheckpointEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j2, ok := srv2.job(j.snapshotRecord().ID)
	if !ok {
		t.Fatal("restarted server lost the job")
	}
	if j2.state() != StateQueued {
		t.Fatalf("restarted job state %s", j2.state())
	}
	if j2.snapshotRecord().Checkpoint == nil {
		t.Fatal("restarted job lost its checkpoint")
	}
	srv2.Start()
	defer srv2.Shutdown()
	deadline = time.Now().Add(120 * time.Second)
	for j2.state() != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %s", j2.state())
		}
		if j2.state() == StateFailed {
			t.Fatalf("resumed job failed: %s", j2.snapshotRecord().Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := j2.snapshotRecord().Result

	ref, err := montecarlo.RunAdaptiveParallel(context.Background(),
		p.Engines, p.Evaluation.RandomSampler(), req.adaptiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.SSF != ref.SSF() || got.Samples != ref.Est.N() ||
		got.Successes != ref.Successes || got.Variance != ref.Variance() {
		t.Fatalf("resumed result %+v; uninterrupted SSF %v N %d successes %d",
			got, ref.SSF(), ref.Est.N(), ref.Successes)
	}
	if got.ClassCounts != ref.ClassCounts || got.PathCounts != ref.PathCounts {
		t.Error("resumed histograms differ from the uninterrupted run")
	}
}

// TestStratifiedRestartResumeBitIdentical: a stratified job carries
// per-stratum Welford state through the server's checkpoint files; a
// kill + restart mid-job must still finish bit-identical to an
// uninterrupted run, and the result must report the variance-reduction
// diagnostics (CI half-width, ESS).
func TestStratifiedRestartResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	p := enginePool(t)
	srv, err := New(p, dir, Config{CheckpointEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	req := JobRequest{Samples: 6000, CheckEvery: 60, Sampler: "stratified", Seed: 13}
	if err := req.normalize(srv.cfg.MaxSamples); err != nil {
		t.Fatal(err)
	}
	j, err := srv.submit("default", req)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint progress; job state %s", j.state())
		}
		if j.status().Rounds >= 2 {
			break
		}
		if st := j.state(); st == StateDone || st == StateFailed {
			t.Fatalf("job reached %s before the shutdown; raise Samples", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Shutdown()
	if st := j.state(); st != StateQueued {
		t.Fatalf("after shutdown job is %s, want queued for resume", st)
	}
	// The persisted checkpoint must round-trip the per-stratum state.
	if cp := j.snapshotRecord().Checkpoint; cp == nil || cp.Strata == nil {
		t.Fatalf("stratified checkpoint lost its strata: %+v", cp)
	}

	srv2, err := New(p, dir, Config{CheckpointEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j2, ok := srv2.job(j.snapshotRecord().ID)
	if !ok {
		t.Fatal("restarted server lost the job")
	}
	srv2.Start()
	defer srv2.Shutdown()
	deadline = time.Now().Add(120 * time.Second)
	for j2.state() != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %s", j2.state())
		}
		if j2.state() == StateFailed {
			t.Fatalf("resumed job failed: %s", j2.snapshotRecord().Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := j2.snapshotRecord().Result

	sp, err := p.Evaluation.StratifiedSampler()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := montecarlo.RunAdaptiveParallel(context.Background(),
		p.Engines, sp, req.adaptiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.SSF != ref.SSF() || got.Samples != ref.Est.N() ||
		got.Successes != ref.Successes || got.Variance != ref.Variance() {
		t.Fatalf("resumed result %+v; uninterrupted SSF %v N %d successes %d",
			got, ref.SSF(), ref.Est.N(), ref.Successes)
	}
	if got.CIHalfWidth != ref.CIHalfWidth() {
		t.Errorf("resumed CI half-width %v, uninterrupted %v", got.CIHalfWidth, ref.CIHalfWidth())
	}
	if got.ESS != ref.ESS() {
		t.Errorf("resumed ESS %v, uninterrupted %v", got.ESS, ref.ESS())
	}
}

func TestRankDeterministic(t *testing.T) {
	srv := newTestServer(t, Config{})
	req := RankRequest{
		Samples: 800,
		Sampler: "importance",
		Seed:    3,
		Variants: []RankVariant{
			{Name: "top3", TopN: 3},
			{Name: "top8", TopN: 8},
			{Name: "share60", Share: 0.6},
		},
	}
	if err := req.normalize(srv.cfg.MaxSamples, srv.cfg.MaxVariants); err != nil {
		t.Fatal(err)
	}
	first, err := srv.rank(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := srv.rank(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("rank not deterministic:\n%+v\n%+v", first, second)
	}
	if len(first.Entries) != 3 {
		t.Fatalf("leaderboard has %d entries", len(first.Entries))
	}
	for i, e := range first.Entries {
		if e.Rank != i+1 {
			t.Fatalf("entry %d has rank %d", i, e.Rank)
		}
		if i > 0 && e.SSF < first.Entries[i-1].SSF {
			t.Fatal("leaderboard not sorted by hardened SSF")
		}
		if e.NumRegs == 0 || e.AreaOverhead <= 0 {
			t.Errorf("entry %q missing hardening accounting: %+v", e.Name, e)
		}
	}
	// Hardening more registers costs more area.
	byName := map[string]RankEntry{}
	for _, e := range first.Entries {
		byName[e.Name] = e
	}
	if byName["top8"].AreaOverhead <= byName["top3"].AreaOverhead {
		t.Errorf("top8 overhead %v not above top3 %v",
			byName["top8"].AreaOverhead, byName["top3"].AreaOverhead)
	}
}

func TestWriteJSONMarshalFailure(t *testing.T) {
	// A value json cannot encode (NaN) must produce a clean 500, not a
	// truncated body under a success status line.
	w := httptest.NewRecorder()
	writeJSON(w, http.StatusOK, map[string]float64{"ssf": math.NaN()})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v (%q)", err, w.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("error body %q carries no error field", w.Body.String())
	}

	// And the healthy path still round-trips with the requested status.
	w = httptest.NewRecorder()
	writeJSON(w, http.StatusAccepted, map[string]int{"n": 7})
	if w.Code != http.StatusAccepted || !strings.Contains(w.Body.String(), `"n": 7`) {
		t.Fatalf("healthy writeJSON: status %d body %q", w.Code, w.Body.String())
	}
}

func TestStartShutdownRestart(t *testing.T) {
	// Start/Shutdown/Start cycles under concurrent API traffic: the
	// worker goroutine receives its context as a parameter, so an old
	// worker never races the runCtx reassignment of a later Start. Run
	// with -race to get the full value of this test.
	srv := newTestServer(t, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := srv.Handler()
		for {
			select {
			case <-stop:
				return
			default:
				h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/jobs", nil))
			}
		}
	}()
	for i := 0; i < 5; i++ {
		srv.Start()
		srv.Start() // idempotent
		srv.Shutdown()
	}
	close(stop)
	wg.Wait()

	// After the final restart the worker must still drain the queue.
	srv.Start()
	defer srv.Shutdown()
	req := JobRequest{Samples: 200, Sampler: "random", Seed: 7}
	if err := req.normalize(srv.cfg.MaxSamples); err != nil {
		t.Fatal(err)
	}
	j, err := srv.submit("default", req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for j.state() != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after restart cycles", j.state())
		}
		if j.state() == StateFailed {
			t.Fatalf("job failed: %s", j.snapshotRecord().Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
