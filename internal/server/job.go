package server

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/montecarlo"
)

// Job states. A job moves queued → running → {done, failed, cancelled};
// a server shutdown moves a running job back to queued (its checkpoint
// survives on disk and the job resumes after restart).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobRequest is the body of POST /v1/jobs. Exactly one of Samples
// (fixed-size campaign) or Epsilon (adaptive campaign stopping on the
// paper's weak-LLN bound) must be set.
type JobRequest struct {
	// Samples runs a fixed-size campaign of exactly this many samples.
	Samples int `json:"samples,omitempty"`
	// Epsilon/Risk run an adaptive campaign: stop once
	// Pr[|estimate − SSF| ≥ Epsilon] ≤ Risk.
	Epsilon float64 `json:"epsilon,omitempty"`
	Risk    float64 `json:"risk,omitempty"`
	// MinSamples/MaxSamples bound the adaptive effort (defaults 2000
	// and 1<<20).
	MinSamples int `json:"min_samples,omitempty"`
	MaxSamples int `json:"max_samples,omitempty"`
	// Mode is "gate" (default) or "register".
	Mode string `json:"mode,omitempty"`
	// Sampler is "random", "cone", "importance" (default),
	// "stratified", or "sobol".
	Sampler string `json:"sampler,omitempty"`
	// Seed makes the job reproducible; the per-(round, shard) seeds of
	// the worker pool are derived from it deterministically.
	Seed int64 `json:"seed"`
	// Batch enables the lane-batched execution path.
	Batch bool `json:"batch,omitempty"`
	// CheckEvery is the per-engine round size (default 500): the
	// convergence bound, progress rebase, and checkpoints happen on
	// round boundaries.
	CheckEvery int `json:"check_every,omitempty"`
	// TrackConvergence records the merged estimate after every round.
	TrackConvergence bool `json:"track_convergence,omitempty"`
}

// normalize applies defaults and validates against the server's caps.
func (r *JobRequest) normalize(maxSamples int) error {
	if r.Sampler == "" {
		r.Sampler = "importance"
	}
	if r.Mode == "" {
		r.Mode = "gate"
	}
	if _, err := montecarlo.ParseMode(r.Mode); err != nil {
		return err
	}
	switch r.Sampler {
	case "random", "cone", "importance", "stratified", "sobol":
	default:
		return fmt.Errorf("unknown sampler %q", r.Sampler)
	}
	fixed := r.Samples > 0
	adaptive := r.Epsilon > 0
	if fixed == adaptive {
		return fmt.Errorf("exactly one of samples or epsilon must be set")
	}
	if adaptive {
		if r.Risk < 0 || r.Risk >= 1 {
			return fmt.Errorf("risk %v outside [0, 1)", r.Risk)
		}
		if r.MaxSamples == 0 {
			r.MaxSamples = 1 << 20
		}
	}
	if r.Samples > maxSamples || r.MaxSamples > maxSamples {
		return fmt.Errorf("sample budget exceeds the server cap of %d", maxSamples)
	}
	if r.Samples < 0 || r.MinSamples < 0 || r.MaxSamples < 0 || r.CheckEvery < 0 {
		return fmt.Errorf("negative sample counts")
	}
	return nil
}

// adaptiveOptions translates the request into the engine's options.
// Fixed-size jobs run through the same round-based adaptive machinery
// (MinSamples = MaxSamples = Samples pins the total exactly) so every
// job checkpoints and resumes uniformly.
func (r JobRequest) adaptiveOptions() montecarlo.AdaptiveOptions {
	mode, _ := montecarlo.ParseMode(r.Mode)
	o := montecarlo.AdaptiveOptions{
		Mode:             mode,
		Seed:             r.Seed,
		Batch:            r.Batch,
		TrackConvergence: r.TrackConvergence,
		CheckEvery:       r.CheckEvery,
	}
	if o.CheckEvery < 1 {
		o.CheckEvery = 500
	}
	if r.Samples > 0 {
		// Fixed size: the bound can never stop the run before
		// MinSamples == the requested count, and MaxSamples stops it
		// exactly there.
		o.Epsilon = 1
		o.Risk = 0.5
		o.MinSamples = r.Samples
		o.MaxSamples = r.Samples
		return o
	}
	o.Epsilon = r.Epsilon
	o.Risk = r.Risk
	if o.Risk == 0 {
		o.Risk = 0.05
	}
	o.MinSamples = r.MinSamples
	if o.MinSamples == 0 {
		o.MinSamples = 2000
	}
	o.MaxSamples = r.MaxSamples
	return o
}

// JobResult is the completed campaign, as served to clients.
type JobResult struct {
	SSF         float64   `json:"ssf"`
	StdErr      float64   `json:"std_err"`
	Variance    float64   `json:"variance"`
	CIHalfWidth float64   `json:"ci_half_width,omitempty"`
	ESS         float64   `json:"ess,omitempty"`
	Samples     int       `json:"samples"`
	Successes   int       `json:"successes"`
	RTLCycles   int       `json:"rtl_cycles"`
	Sampler     string    `json:"sampler"`
	Mode        string    `json:"mode"`
	ClassCounts [3]int    `json:"class_counts"`
	PathCounts  [4]int    `json:"path_counts"`
	Convergence []float64 `json:"convergence,omitempty"`
}

// resultFrom summarizes a campaign.
func resultFrom(c *montecarlo.Campaign) *JobResult {
	if c == nil {
		return nil
	}
	ci := c.CIHalfWidth()
	if math.IsInf(ci, 0) || math.IsNaN(ci) {
		ci = 0
	}
	return &JobResult{
		SSF:         c.SSF(),
		StdErr:      c.Est.StdErr(),
		Variance:    c.Variance(),
		CIHalfWidth: ci,
		ESS:         c.ESS(),
		Samples:     c.Est.N(),
		Successes:   c.Successes,
		RTLCycles:   c.RTLCycles,
		Sampler:     c.SamplerName,
		Mode:        c.Options.Mode.String(),
		ClassCounts: c.ClassCounts,
		PathCounts:  c.PathCounts,
		Convergence: c.Convergence,
	}
}

// ProgressEvent is one SSE progress snapshot.
type ProgressEvent struct {
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	SSF        float64 `json:"ssf"`
	RunsPerSec float64 `json:"runs_per_sec"`
	ElapsedMS  int64   `json:"elapsed_ms"`
}

// jobRecord is the persisted form of a job — everything needed to serve
// its status and to resume it after a restart.
type jobRecord struct {
	ID          string                       `json:"id"`
	Tenant      string                       `json:"tenant"`
	Request     JobRequest                   `json:"request"`
	State       string                       `json:"state"`
	SubmittedAt time.Time                    `json:"submitted_at"`
	StartedAt   time.Time                    `json:"started_at"`
	FinishedAt  time.Time                    `json:"finished_at"`
	Rounds      int64                        `json:"rounds,omitempty"`
	Checkpoint  *montecarlo.CampaignSnapshot `json:"checkpoint,omitempty"`
	Result      *JobResult                   `json:"result,omitempty"`
	Error       string                       `json:"error,omitempty"`
}

// JobStatus is the API view of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID          string         `json:"id"`
	Tenant      string         `json:"tenant"`
	State       string         `json:"state"`
	Request     JobRequest     `json:"request"`
	SubmittedAt time.Time      `json:"submitted_at"`
	StartedAt   *time.Time     `json:"started_at,omitempty"`
	FinishedAt  *time.Time     `json:"finished_at,omitempty"`
	Rounds      int64          `json:"rounds,omitempty"`
	Progress    *ProgressEvent `json:"progress,omitempty"`
	Result      *JobResult     `json:"result,omitempty"`
	Error       string         `json:"error,omitempty"`
}

// Job is the in-memory job: the persisted record plus the live bits
// (SSE hub, cancellation, latest progress).
type Job struct {
	mu       sync.Mutex
	rec      jobRecord          //guarded-by:mu
	progress *ProgressEvent     //guarded-by:mu
	hub      *sseHub            // immutable after newJob; the hub carries its own lock
	cancel   context.CancelFunc //guarded-by:mu
}

func newJob(rec jobRecord) *Job {
	return &Job{rec: rec, hub: newSSEHub()}
}

// status snapshots the API view.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.rec.ID,
		Tenant:      j.rec.Tenant,
		State:       j.rec.State,
		Request:     j.rec.Request,
		SubmittedAt: j.rec.SubmittedAt,
		Rounds:      j.rec.Rounds,
		Progress:    j.progress,
		Result:      j.rec.Result,
		Error:       j.rec.Error,
	}
	if !j.rec.StartedAt.IsZero() {
		t := j.rec.StartedAt
		st.StartedAt = &t
	}
	if !j.rec.FinishedAt.IsZero() {
		t := j.rec.FinishedAt
		st.FinishedAt = &t
	}
	return st
}

// state returns the current lifecycle state.
func (j *Job) state() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.State
}

// snapshotRecord copies the persisted record for saving outside the
// job's lock.
func (j *Job) snapshotRecord() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}
