// Package analytical evaluates fault-attack outcomes closed-form for
// errors confined to memory-type registers, replacing the RTL resume of
// the cross-level flow (Section 4, Observation 3 of the paper: "the
// outcome of fault attack on these registers is not determined by the
// timing distance ... but mainly by the functionality of the
// memory-type registers in the system. Therefore, we choose to evaluate
// these registers analytically considering the system configuration,
// faulty registers, and benchmarks").
//
// For the MPU the memory-type population splits into:
//
//   - configuration registers (region base/limit/perm, lockdown): a flip
//     changes the protection policy — the outcome is whether the faulted
//     policy (a) permits the benchmark's marked illegal access and
//     (b) still permits the benchmark's legitimate pre-attack traffic
//     (otherwise the benchmark traps and halts before the attack);
//   - inert state (sticky violation flag, violation address latch, FSM,
//     access counter): flips persist but never gate the grant/violation
//     decision, so the attack outcome is unchanged (failure).
package analytical

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/soc"
)

// cfgField identifies which word of a region's configuration a DFF bit
// belongs to.
type cfgField int

const (
	fieldBase cfgField = iota
	fieldLimit
	fieldPerm
)

type cfgLoc struct {
	region int
	field  cfgField
	bit    int
}

// Region is a decoded protection region.
type Region struct {
	Base, Limit uint16
	Perm        uint8
}

// Allows reports whether the region permits a user-mode access.
func (r Region) Allows(addr uint16, write bool) bool {
	if r.Perm&soc.PermEnable == 0 || addr < r.Base || addr > r.Limit {
		return false
	}
	if write {
		return r.Perm&soc.PermUserWrite != 0
	}
	return r.Perm&soc.PermUserRead != 0
}

// Policy is a full set of regions.
type Policy []Region

// UserAllowed reports whether any region permits the access.
func (p Policy) UserAllowed(addr uint16, write bool) bool {
	for _, r := range p {
		if r.Allows(addr, write) {
			return true
		}
	}
	return false
}

// RangeAllowed reports whether every address of the range is permitted.
func (p Policy) RangeAllowed(ar soc.AccessRange) bool {
	for a := uint32(ar.Lo); a <= uint32(ar.Hi); a++ {
		if !p.UserAllowed(uint16(a), ar.Write) {
			return false
		}
	}
	return true
}

// Evaluator maps MPU register bits to their configuration semantics and
// evaluates fault outcomes without simulation.
type Evaluator struct {
	mpu   *soc.MPU
	cfg   map[netlist.NodeID]cfgLoc
	inert map[netlist.NodeID]bool
}

// New indexes the MPU's register structure.
func New(mpu *soc.MPU) (*Evaluator, error) {
	e := &Evaluator{
		mpu:   mpu,
		cfg:   make(map[netlist.NodeID]cfgLoc),
		inert: make(map[netlist.NodeID]bool),
	}
	for i := 0; i < mpu.Config.Regions; i++ {
		for f, name := range []string{
			fmt.Sprintf("cfg_base%d", i),
			fmt.Sprintf("cfg_limit%d", i),
			fmt.Sprintf("cfg_perm%d", i),
		} {
			bits, ok := mpu.Groups[name]
			if !ok {
				return nil, fmt.Errorf("analytical: MPU has no register group %q", name)
			}
			for b, id := range bits {
				e.cfg[id] = cfgLoc{region: i, field: cfgField(f), bit: b}
			}
		}
	}
	// State that persists but cannot influence the grant/violation
	// decision of any access. lockdown is inert too, post-setup: the
	// benchmarks issue no region-config writes after dropping
	// privilege, so a flipped lockdown bit gates nothing.
	for _, name := range []string{"viol_pending", "viol_addr_r", "fsm_state", "access_cnt", "dbg_addr", "dbg_sig", "lockdown"} {
		for _, id := range e.mpu.Groups[name] {
			e.inert[id] = true
		}
	}
	return e, nil
}

// Inert reports whether a register's content can never influence the
// grant/violation decision (sticky flags, latched diagnostics,
// counters). Errors confined to inert registers are memory-type by
// construction.
func (e *Evaluator) Inert(id netlist.NodeID) bool { return e.inert[id] }

// Covers reports whether every flipped register is within the
// analytical model (configuration or inert state). The Monte Carlo
// engine falls back to RTL simulation otherwise.
func (e *Evaluator) Covers(flipped []netlist.NodeID) bool {
	for _, id := range flipped {
		if _, ok := e.cfg[id]; ok {
			continue
		}
		if e.inert[id] {
			continue
		}
		return false
	}
	return true
}

// CurrentPolicy decodes the protection policy from the SoC's live MPU
// register state.
func (e *Evaluator) CurrentPolicy(s *soc.SoC) Policy {
	p := make(Policy, e.mpu.Config.Regions)
	for i := range p {
		p[i] = Region{
			Base:  uint16(s.Sim.ReadWord(e.mpu.Groups[fmt.Sprintf("cfg_base%d", i)])),
			Limit: uint16(s.Sim.ReadWord(e.mpu.Groups[fmt.Sprintf("cfg_limit%d", i)])),
			Perm:  uint8(s.Sim.ReadWord(e.mpu.Groups[fmt.Sprintf("cfg_perm%d", i)])),
		}
	}
	return p
}

// Faulted returns the policy with the given register flips applied.
// Flips on inert registers leave the policy unchanged.
func (e *Evaluator) Faulted(base Policy, flipped []netlist.NodeID) Policy {
	p := append(Policy(nil), base...)
	for _, id := range flipped {
		loc, ok := e.cfg[id]
		if !ok {
			continue
		}
		switch loc.field {
		case fieldBase:
			p[loc.region].Base ^= 1 << uint(loc.bit)
		case fieldLimit:
			p[loc.region].Limit ^= 1 << uint(loc.bit)
		case fieldPerm:
			p[loc.region].Perm ^= 1 << uint(loc.bit)
		}
	}
	return p
}

// Outcome evaluates whether an attack whose latched errors are the given
// flips succeeds. base is the fault-free policy (captured from the
// golden run after MPU setup); window lists the golden-run accesses
// issued between the injection cycle and the marked access (exclusive):
// those are the legitimate operations the faulted policy must still
// permit, or the benchmark traps and halts before the attack. It must
// only be called when Covers(flipped) is true.
func (e *Evaluator) Outcome(base Policy, prog *soc.Program, window []soc.AccessEvent, flipped []netlist.NodeID) bool {
	faulted := e.Faulted(base, flipped)
	if !faulted.UserAllowed(prog.IllegalAddr, prog.IllegalWrite) {
		return false
	}
	for _, ev := range window {
		// DMA denials do not trap the core; privileged accesses are
		// always legal; the marked access is the attack itself.
		if ev.DMA || ev.Priv || ev.Marked {
			continue
		}
		if !faulted.UserAllowed(ev.Addr, ev.Write) {
			return false
		}
	}
	return true
}

// OutcomeCoarse is the range-based variant of Outcome: instead of the
// exact golden access window it checks the benchmark's declared
// pre-attack ranges in full. It is conservative (may report failure
// where the exact evaluation reports success) but needs no golden
// access log.
func (e *Evaluator) OutcomeCoarse(base Policy, prog *soc.Program, flipped []netlist.NodeID) bool {
	faulted := e.Faulted(base, flipped)
	if !faulted.UserAllowed(prog.IllegalAddr, prog.IllegalWrite) {
		return false
	}
	for _, ar := range prog.PreAttack {
		if !faulted.RangeAllowed(ar) {
			return false
		}
	}
	return true
}
