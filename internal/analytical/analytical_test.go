package analytical

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/soc"
)

func buildSoC(t *testing.T) (*soc.SoC, *Evaluator) {
	t.Helper()
	cfg := soc.DefaultConfig()
	s, err := soc.New(cfg, soc.IllegalWriteProgram(8, cfg.DMABase, cfg.DMALimit))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(s.MPU)
	if err != nil {
		t.Fatal(err)
	}
	return s, e
}

func TestRegionAllows(t *testing.T) {
	r := Region{Base: 0x100, Limit: 0x1FF, Perm: soc.PermEnable | soc.PermUserRead}
	cases := []struct {
		addr  uint16
		write bool
		want  bool
	}{
		{0x100, false, true},
		{0x1FF, false, true},
		{0x0FF, false, false},
		{0x200, false, false},
		{0x150, true, false}, // no write permission
	}
	for i, c := range cases {
		if got := r.Allows(c.addr, c.write); got != c.want {
			t.Errorf("case %d: Allows(%#x, %v) = %v", i, c.addr, c.write, got)
		}
	}
	// Disabled region allows nothing.
	r.Perm = soc.PermUserRead | soc.PermUserWrite
	if r.Allows(0x150, false) {
		t.Error("disabled region allowed access")
	}
}

func TestPolicyUserAllowedAndRange(t *testing.T) {
	p := Policy{
		{Base: 0x100, Limit: 0x1FF, Perm: soc.PermEnable | soc.PermUserRead | soc.PermUserWrite},
		{Base: 0x300, Limit: 0x33F, Perm: soc.PermEnable | soc.PermUserRead},
	}
	if !p.UserAllowed(0x150, true) || p.UserAllowed(0x310, true) {
		t.Error("UserAllowed wrong")
	}
	if !p.RangeAllowed(soc.AccessRange{Lo: 0x100, Hi: 0x1FF, Write: true}) {
		t.Error("in-region range rejected")
	}
	if p.RangeAllowed(soc.AccessRange{Lo: 0x1F0, Hi: 0x210, Write: false}) {
		t.Error("range crossing a gap accepted")
	}
}

func TestCurrentPolicyAfterSetup(t *testing.T) {
	s, e := buildSoC(t)
	s.Run(s.Cfg.MaxCycles)
	p := e.CurrentPolicy(s)
	if p[0].Base != soc.UserBase || p[0].Limit != soc.UserLimit {
		t.Errorf("region 0 = %+v", p[0])
	}
	if p[1].Base != soc.SecretBase || p[1].Perm&soc.PermUserWrite != 0 {
		t.Errorf("region 1 = %+v", p[1])
	}
	if p[3].Perm&soc.PermEnable != 0 {
		t.Error("region 3 should be disabled")
	}
	// The configured policy denies the illegal access and allows the
	// benchmark traffic.
	if p.UserAllowed(soc.SecretAddr, true) {
		t.Error("baseline policy allows the illegal write")
	}
	for _, ar := range s.Prog.PreAttack {
		if !p.RangeAllowed(ar) {
			t.Errorf("baseline policy denies legit range %+v", ar)
		}
	}
}

func TestCoversAndInert(t *testing.T) {
	s, e := buildSoC(t)
	cfgBit := s.MPU.Groups["cfg_limit0"][9]
	pendBit := s.MPU.Groups["viol_pending"][0]
	violBit := s.MPU.Groups["viol_r"][0]
	addrBit := s.MPU.Groups["addr_r"][0]
	if !e.Covers([]netlist.NodeID{cfgBit, pendBit}) {
		t.Error("config+inert flips should be covered")
	}
	if e.Covers([]netlist.NodeID{cfgBit, violBit}) {
		t.Error("viol_r flip wrongly covered")
	}
	if e.Covers([]netlist.NodeID{addrBit}) {
		t.Error("addr_r flip wrongly covered")
	}
	if !e.Inert(pendBit) || e.Inert(cfgBit) || e.Inert(violBit) {
		t.Error("Inert classification wrong")
	}
}

func TestFaultedFlipsBits(t *testing.T) {
	s, e := buildSoC(t)
	s.Run(s.Cfg.MaxCycles)
	base := e.CurrentPolicy(s)
	limitBit9 := s.MPU.Groups["cfg_limit0"][9]
	faulted := e.Faulted(base, []netlist.NodeID{limitBit9})
	if faulted[0].Limit != base[0].Limit^(1<<9) {
		t.Errorf("limit not flipped: %#x vs %#x", faulted[0].Limit, base[0].Limit)
	}
	// Base policy untouched.
	if base[0].Limit != soc.UserLimit {
		t.Error("Faulted mutated the base policy")
	}
	// Inert flips change nothing.
	same := e.Faulted(base, []netlist.NodeID{s.MPU.Groups["viol_pending"][0]})
	for i := range base {
		if same[i] != base[i] {
			t.Error("inert flip changed the policy")
		}
	}
}

func TestOutcomeCriticalBits(t *testing.T) {
	s, e := buildSoC(t)
	s.Run(s.Cfg.MaxCycles)
	base := e.CurrentPolicy(s)
	prog := s.Prog
	var window []soc.AccessEvent // empty: no traffic between Te and Tt

	// Extending region 0's limit over the secret enables the write.
	limitBit9 := s.MPU.Groups["cfg_limit0"][9]
	if !e.Outcome(base, prog, window, []netlist.NodeID{limitBit9}) {
		t.Error("limit0 bit 9 flip should bypass the policy")
	}
	// Granting user-write on the secret region enables it too.
	permWrite := s.MPU.Groups["cfg_perm1"][1]
	if !e.Outcome(base, prog, window, []netlist.NodeID{permWrite}) {
		t.Error("perm1 user-write flip should bypass the policy")
	}
	// A random low bit of region 1's base does not.
	baseBit := s.MPU.Groups["cfg_base1"][0]
	if e.Outcome(base, prog, window, []netlist.NodeID{baseBit}) {
		t.Error("base1 bit 0 flip should not bypass the policy")
	}
	// Inert flips never succeed.
	if e.Outcome(base, prog, window, []netlist.NodeID{s.MPU.Groups["fsm_state"][0]}) {
		t.Error("fsm flip misreported as success")
	}
}

func TestOutcomeRespectsWindowTraffic(t *testing.T) {
	s, e := buildSoC(t)
	s.Run(s.Cfg.MaxCycles)
	base := e.CurrentPolicy(s)
	prog := s.Prog
	// A flip set that enables the illegal write but also breaks the
	// user region: succeed with an empty window, fail when the window
	// contains a user access the faulted policy denies.
	permWrite := s.MPU.Groups["cfg_perm1"][1]
	base0Bit9 := s.MPU.Groups["cfg_base0"][9] // 0x100 -> 0x300: user region destroyed
	flips := []netlist.NodeID{permWrite, base0Bit9}
	if !e.Outcome(base, prog, nil, flips) {
		t.Fatal("expected success with empty window")
	}
	window := []soc.AccessEvent{{Cycle: 100, Addr: soc.UserBase + 2, Write: true}}
	if e.Outcome(base, prog, window, flips) {
		t.Error("broken legit traffic should abort the attack")
	}
	// DMA and privileged accesses in the window are ignored.
	window = []soc.AccessEvent{
		{Cycle: 100, Addr: soc.UserBase + 2, Write: true, DMA: true},
		{Cycle: 101, Addr: soc.UserBase + 3, Write: true, Priv: true},
	}
	if !e.Outcome(base, prog, window, flips) {
		t.Error("DMA/priv window traffic should not abort the attack")
	}
}

func TestOutcomeCoarseConservative(t *testing.T) {
	s, e := buildSoC(t)
	s.Run(s.Cfg.MaxCycles)
	base := e.CurrentPolicy(s)
	prog := s.Prog
	permWrite := s.MPU.Groups["cfg_perm1"][1]
	base0Bit3 := s.MPU.Groups["cfg_base0"][3] // 0x100 -> 0x108: denies only low addresses
	flips := []netlist.NodeID{permWrite, base0Bit3}
	// Coarse check: the full pre-attack range includes the denied
	// addresses, so it reports failure...
	if e.OutcomeCoarse(base, prog, flips) {
		t.Error("coarse outcome should be conservative here")
	}
	// ...while the exact window (only high addresses remain) reports
	// success.
	window := []soc.AccessEvent{{Cycle: 100, Addr: soc.UserBase + 9, Write: true}}
	if !e.Outcome(base, prog, window, flips) {
		t.Error("exact outcome should succeed")
	}
}

func TestMultiBitFaultCombination(t *testing.T) {
	s, e := buildSoC(t)
	s.Run(s.Cfg.MaxCycles)
	base := e.CurrentPolicy(s)
	prog := s.Prog
	// Enabling region 3 with perms but zero base/limit covers only
	// address 0 — fail; adding limit bits to cover the secret — succeed.
	perm3 := s.MPU.Groups["cfg_perm3"]
	enable := perm3[2]
	uwrite := perm3[1]
	if e.Outcome(base, prog, nil, []netlist.NodeID{enable, uwrite}) {
		t.Error("region3 [0,0] should not cover the secret")
	}
	limit3 := s.MPU.Groups["cfg_limit3"]
	flips := []netlist.NodeID{enable, uwrite, limit3[9], limit3[4]} // limit -> 0x210
	if !e.Outcome(base, prog, nil, flips) {
		t.Error("region3 [0, 0x210] user-writable should bypass")
	}
}

func TestNewRejectsForeignNetlist(t *testing.T) {
	// An MPU value with missing groups must be rejected.
	m := &soc.MPU{Config: soc.DefaultMPUConfig(), Groups: map[string][]netlist.NodeID{}}
	if _, err := New(m); err == nil {
		t.Error("MPU without register groups accepted")
	}
}
