package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/montecarlo"
	"repro/internal/netlist"
)

var (
	fwOnce sync.Once
	fwVal  *Framework
	fwErr  error
)

func testFramework(t *testing.T) *Framework {
	t.Helper()
	fwOnce.Do(func() {
		opts := DefaultOptions()
		opts.Precharac.MaxDepth = 51
		opts.Precharac.Probes = 1
		opts.Precharac.LifetimeCap = 120
		fwVal, fwErr = Build(opts)
	})
	if fwErr != nil {
		t.Fatal(fwErr)
	}
	return fwVal
}

func TestBuildProducesArtifacts(t *testing.T) {
	fw := testFramework(t)
	if fw.MPU == nil || fw.Place == nil || fw.Char == nil {
		t.Fatal("missing artifacts")
	}
	if len(fw.Char.MemoryRegs()) == 0 || len(fw.Char.ComputationRegs()) == 0 {
		t.Error("characterization empty")
	}
	if fw.MPU.Netlist.Node(fw.SecurityTarget()).Type == netlist.DFF {
		t.Error("security target should be the decision gate, not the register")
	}
}

func TestCandidateBlockProperties(t *testing.T) {
	fw := testFramework(t)
	all := fw.CandidateBlock(1.0)
	eighth := fw.CandidateBlock(0.125)
	if len(eighth) >= len(all) {
		t.Fatalf("block %d not smaller than all %d", len(eighth), len(all))
	}
	// The decision logic (unroll 0) must be inside the block.
	for _, g := range fw.Char.CombLayer(fw.MPU.Netlist, 0) {
		found := false
		for _, c := range eighth {
			if c == g {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("decision gate %d missing from candidate block", g)
		}
	}
	// Sorted, deduped, combinational only.
	for i, g := range eighth {
		if i > 0 && eighth[i-1] >= g {
			t.Fatal("block not sorted/deduped")
		}
		ty := fw.MPU.Netlist.Node(g).Type
		if !ty.IsCombinational() || ty == netlist.Const0 || ty == netlist.Const1 {
			t.Fatalf("non-gate %v in block", ty)
		}
	}
}

func TestBenchmarkPrograms(t *testing.T) {
	fw := testFramework(t)
	for _, b := range []Benchmark{BenchmarkIllegalWrite, BenchmarkIllegalRead} {
		p, err := fw.BenchmarkProgram(b)
		if err != nil {
			t.Fatal(err)
		}
		if p.TrapHandler < 0 || len(p.PreAttack) == 0 {
			t.Errorf("%v: metadata incomplete", b)
		}
	}
	if _, err := fw.BenchmarkProgram(Benchmark(99)); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if BenchmarkIllegalRead.String() != "memory-read" || Benchmark(99).String() == "" {
		t.Error("Benchmark.String")
	}
}

func TestEvaluationEndToEnd(t *testing.T) {
	fw := testFramework(t)
	ev, err := fw.NewEvaluation(BenchmarkIllegalRead, DefaultAttackSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Golden.TargetCycle <= 0 {
		t.Fatal("golden run missing")
	}
	cone, err := ev.ConeSampler()
	if err != nil {
		t.Fatal(err)
	}
	imp, err := ev.ImportanceSampler()
	if err != nil {
		t.Fatal(err)
	}
	if ev.RandomSampler().Name() == "" || cone.Name() == "" || imp.Name() == "" {
		t.Error("unnamed sampler")
	}
	camp, err := ev.EvaluateSSF(context.Background(), imp, DefaultCampaign(200))
	if err != nil {
		t.Fatal(err)
	}
	if camp.Est.N() != 200 || len(camp.Convergence) != 200 {
		t.Errorf("campaign bookkeeping: N=%d conv=%d", camp.Est.N(), len(camp.Convergence))
	}
}

func TestDefaultCampaignOptions(t *testing.T) {
	o := DefaultCampaign(123)
	if o.Samples != 123 || !o.TrackConvergence || o.Mode != montecarlo.GateAttack {
		t.Errorf("options = %+v", o)
	}
}

func TestCandidateBlockTinyFraction(t *testing.T) {
	fw := testFramework(t)
	// Even a near-zero fraction must keep the decision logic intact.
	tiny := fw.CandidateBlock(1e-9)
	decision := fw.Char.CombLayer(fw.MPU.Netlist, 0)
	if len(tiny) < len(decision) {
		t.Fatalf("tiny block %d smaller than decision logic %d", len(tiny), len(decision))
	}
}

func TestSecurityTargetIsLegalGate(t *testing.T) {
	fw := testFramework(t)
	id, ok := fw.MPU.Netlist.FindNode("legal")
	if !ok || id != fw.SecurityTarget() {
		t.Fatalf("SecurityTarget %d, legal gate %d (found=%v)", fw.SecurityTarget(), id, ok)
	}
}
