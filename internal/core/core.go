// Package core is the framework facade: it wires the synthetic SoC, the
// system pre-characterization, the holistic attack model, the sampling
// strategies, and the cross-level Monte Carlo engine into the
// three-call workflow a user needs:
//
//	fw, _ := core.Build(core.DefaultOptions())
//	ev, _ := fw.NewEvaluation(core.BenchmarkIllegalWrite, core.DefaultAttackSpec())
//	ssf, _ := ev.EvaluateSSF(ctx, ev.ImportanceSampler(), core.DefaultCampaign(20000))
//
// Everything underneath is reachable for finer control: the packages
// under internal/ form the layered implementation (netlist → hdl →
// logicsim/timingsim/placement → soc → precharac/fault → sampling /
// analytical → montecarlo).
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/analytical"
	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/netlist"
	"repro/internal/placement"
	"repro/internal/precharac"
	"repro/internal/sampling"
	"repro/internal/soc"
	"repro/internal/timingsim"
)

// Benchmark selects one of the built-in attack benchmarks.
type Benchmark int

// Built-in benchmarks.
const (
	// BenchmarkIllegalWrite attempts an unauthorized store into the
	// protected region (the paper's primary scenario).
	BenchmarkIllegalWrite Benchmark = iota
	// BenchmarkIllegalRead attempts an unauthorized load (information
	// leakage).
	BenchmarkIllegalRead
)

// String returns the benchmark's display name.
func (b Benchmark) String() string {
	switch b {
	case BenchmarkIllegalWrite:
		return "memory-write"
	case BenchmarkIllegalRead:
		return "memory-read"
	default:
		return fmt.Sprintf("Benchmark(%d)", int(b))
	}
}

// Options configures framework construction.
type Options struct {
	SoC       soc.Config
	Precharac precharac.Options
	Delay     timingsim.DelayModel
	// WorkIters sizes the benchmarks' legitimate work loop.
	WorkIters uint16
	// CheckpointInterval is the golden-run checkpoint spacing.
	CheckpointInterval int
}

// DefaultOptions returns the configuration used throughout the
// experiments.
func DefaultOptions() Options {
	return Options{
		SoC:                soc.DefaultConfig(),
		Precharac:          precharac.DefaultOptions(),
		Delay:              timingsim.DefaultDelayModel(),
		WorkIters:          20,
		CheckpointInterval: 32,
	}
}

// Framework holds the per-design artifacts: the elaborated MPU, its
// placement, and the pre-characterization. Build once, evaluate many
// benchmarks/attacks against it.
type Framework struct {
	Opts  Options
	MPU   *soc.MPU
	Place *placement.Placement
	Char  *precharac.Characterization
}

// Build elaborates the SoC design, places the MPU netlist, and runs the
// (one-time) system pre-characterization with the synthetic benchmark.
func Build(opts Options) (*Framework, error) {
	mpu, err := soc.BuildMPU(opts.SoC.MPU)
	if err != nil {
		return nil, err
	}
	synth, err := soc.WithMPU(opts.SoC, soc.SyntheticProgram(opts.SoC.DMABase, opts.SoC.DMALimit), mpu)
	if err != nil {
		return nil, err
	}
	char, err := precharac.Characterize(synth, opts.Precharac)
	if err != nil {
		return nil, err
	}
	return &Framework{
		Opts:  opts,
		MPU:   mpu,
		Place: placement.Place(mpu.Netlist),
		Char:  char,
	}, nil
}

// SecurityTarget returns the natural aim point of a precisely targeted
// attack: the MPU's "legal" gate, whose output feeds both the grant and
// the violation decision — a transient there bypasses the policy
// coherently.
func (f *Framework) SecurityTarget() netlist.NodeID {
	return f.MPU.CriticalGate
}

// CandidateBlock returns a sub-block of the MPU's combinational gates
// covering frac of the gate count (the paper samples P over "a sub-block
// of gates of around 1/8 of MPU identified following [18]"). The block
// is the spatial dilation of the security-decision logic: starting from
// the gates that feed the responding signals within the next couple of
// cycles (unroll indices 0–2 of the pre-characterized cones), it adds
// the placement-nearest remaining gates until the budget is reached —
// i.e. the physical neighbourhood an attacker aiming at the protection
// logic would irradiate.
func (f *Framework) CandidateBlock(frac float64) []netlist.NodeID {
	nl := f.MPU.Netlist
	var comb []netlist.NodeID
	for i := 0; i < nl.NumNodes(); i++ {
		id := netlist.NodeID(i)
		t := nl.Node(id).Type
		if t.IsCombinational() && t != netlist.Const0 && t != netlist.Const1 {
			comb = append(comb, id)
		}
	}
	if frac >= 1 {
		sort.Slice(comb, func(a, b int) bool { return comb[a] < comb[b] })
		return comb
	}
	seed := map[netlist.NodeID]bool{}
	for i := 0; i <= 2 && i <= f.Char.MaxUnrollIndex(); i++ {
		for _, g := range f.Char.CombLayer(nl, i) {
			seed[g] = true
		}
	}
	if len(seed) == 0 {
		seed[f.SecurityTarget()] = true
	}
	// Order every gate by its distance to the nearest seed gate
	// (seeds themselves are at distance 0).
	dist := make(map[netlist.NodeID]float64, len(comb))
	for _, g := range comb {
		if seed[g] {
			dist[g] = 0
			continue
		}
		best := -1.0
		for s := range seed {
			if d := f.Place.Dist(g, s); best < 0 || d < best {
				best = d
			}
		}
		dist[g] = best
	}
	sort.Slice(comb, func(a, b int) bool {
		if dist[comb[a]] != dist[comb[b]] {
			return dist[comb[a]] < dist[comb[b]]
		}
		return comb[a] < comb[b]
	})
	n := int(frac * float64(len(comb)))
	if n < len(seed) {
		n = len(seed) // never truncate the decision logic itself
	}
	if n < 1 {
		n = 1
	}
	block := append([]netlist.NodeID(nil), comb[:n]...)
	sort.Slice(block, func(a, b int) bool { return block[a] < block[b] })
	return block
}

// AttackSpec describes the attack scenario at the framework level.
type AttackSpec struct {
	// TRange is the temporal accuracy: t is uniform over [0, TRange).
	TRange int
	// BlockFrac is the fraction of MPU gates the strike center ranges
	// over (spatial targeting).
	BlockFrac float64
	// Technique holds the radiation parameters.
	Technique fault.Radiation
}

// DefaultAttackSpec matches the paper's experimental setup: a 50-cycle
// timing window and a sub-block of around 1/8 of the MPU.
func DefaultAttackSpec() AttackSpec {
	return AttackSpec{
		TRange:    50,
		BlockFrac: 0.125,
		Technique: fault.DefaultRadiation(),
	}
}

// NewAttack instantiates the nominal attack distribution f_{T,P}.
func (f *Framework) NewAttack(spec AttackSpec) (*fault.Attack, error) {
	return fault.NewAttack(
		fmt.Sprintf("radiation-t%d-b%.3f", spec.TRange, spec.BlockFrac),
		spec.TRange, spec.Technique, f.CandidateBlock(spec.BlockFrac), nil)
}

// Evaluation couples a benchmark with an attack model: it owns the SoC
// instance, the Monte Carlo engine, and the golden run.
type Evaluation struct {
	Framework *Framework
	Program   *soc.Program
	Attack    *fault.Attack
	Engine    *montecarlo.Engine
	Golden    *montecarlo.Golden
}

// BenchmarkProgram builds one of the built-in benchmarks under the
// framework's configuration.
func (f *Framework) BenchmarkProgram(b Benchmark) (*soc.Program, error) {
	cfg := f.Opts.SoC
	switch b {
	case BenchmarkIllegalWrite:
		return soc.IllegalWriteProgram(f.Opts.WorkIters, cfg.DMABase, cfg.DMALimit), nil
	case BenchmarkIllegalRead:
		return soc.IllegalReadProgram(f.Opts.WorkIters, cfg.DMABase, cfg.DMALimit), nil
	default:
		return nil, fmt.Errorf("core: unknown benchmark %v", b)
	}
}

// NewEvaluation prepares an SSF evaluation of the benchmark under the
// attack spec: builds the SoC, the analytical evaluator, the engine,
// and performs the golden run.
func (f *Framework) NewEvaluation(b Benchmark, spec AttackSpec) (*Evaluation, error) {
	prog, err := f.BenchmarkProgram(b)
	if err != nil {
		return nil, err
	}
	return f.NewEvaluationProgram(prog, spec)
}

// NewEvaluationProgram is NewEvaluation for a user-supplied program.
// The program must contain exactly one marked access and declare its
// metadata (Illegal, PreAttack).
func (f *Framework) NewEvaluationProgram(prog *soc.Program, spec AttackSpec) (*Evaluation, error) {
	attack, err := f.NewAttack(spec)
	if err != nil {
		return nil, err
	}
	return f.NewEvaluationAttack(prog, attack)
}

// NewEvaluationAttack prepares an evaluation for a fully custom attack
// distribution (e.g. concentrated spatial targeting).
func (f *Framework) NewEvaluationAttack(prog *soc.Program, attack *fault.Attack) (*Evaluation, error) {
	s, err := soc.WithMPU(f.Opts.SoC, prog, f.MPU)
	if err != nil {
		return nil, err
	}
	eval, err := analytical.New(f.MPU)
	if err != nil {
		return nil, err
	}
	engine, err := montecarlo.New(s, attack, f.Place, f.Opts.Delay, f.Char, eval)
	if err != nil {
		return nil, err
	}
	golden, err := engine.RunGolden(f.Opts.CheckpointInterval)
	if err != nil {
		return nil, err
	}
	engine.DensifyAttackWindow()
	return &Evaluation{
		Framework: f,
		Program:   prog,
		Attack:    attack,
		Engine:    engine,
		Golden:    golden,
	}, nil
}

// RandomSampler returns the baseline sampler (draws from f_{T,P}).
func (e *Evaluation) RandomSampler() sampling.Sampler {
	return &sampling.Random{Attack: e.Attack}
}

// ConeSampler returns the fanin/fanout-cone-restricted sampler.
func (e *Evaluation) ConeSampler() (sampling.Sampler, error) {
	return sampling.NewCone(e.Attack, e.Framework.Char, e.Framework.MPU.Netlist, e.Framework.Place)
}

// ImportanceSampler returns the paper's pre-characterization-driven
// sampler with default α/β.
func (e *Evaluation) ImportanceSampler() (sampling.Sampler, error) {
	return e.ImportanceSamplerAB(sampling.DefaultAlpha, sampling.DefaultBeta)
}

// ImportanceSamplerAB returns the importance sampler with explicit α/β.
func (e *Evaluation) ImportanceSamplerAB(alpha, beta float64) (sampling.Sampler, error) {
	return sampling.NewImportance(e.Attack, e.Framework.Char, e.Framework.MPU.Netlist, e.Framework.Place, alpha, beta)
}

// StratifiedSampler returns the variance-reduction sampler that
// allocates draws deterministically across timing-distance strata on
// top of the importance proposal; campaigns using it report the
// post-stratified estimator.
func (e *Evaluation) StratifiedSampler() (sampling.Sampler, error) {
	im, err := sampling.NewImportance(e.Attack, e.Framework.Char, e.Framework.MPU.Netlist, e.Framework.Place, sampling.DefaultAlpha, sampling.DefaultBeta)
	if err != nil {
		return nil, err
	}
	return sampling.NewStratified(im)
}

// SobolSampler returns the importance proposal driven by a scrambled
// Sobol low-discrepancy sequence instead of pseudo-random variates.
func (e *Evaluation) SobolSampler() (sampling.Sampler, error) {
	im, err := sampling.NewImportance(e.Attack, e.Framework.Char, e.Framework.MPU.Netlist, e.Framework.Place, sampling.DefaultAlpha, sampling.DefaultBeta)
	if err != nil {
		return nil, err
	}
	return sampling.NewSobol(im), nil
}

// DefaultCampaign returns campaign options with convergence tracking on.
func DefaultCampaign(samples int) montecarlo.CampaignOptions {
	return montecarlo.CampaignOptions{
		Samples:          samples,
		Mode:             montecarlo.GateAttack,
		Seed:             1,
		TrackConvergence: true,
	}
}

// EvaluateSSF runs a campaign and returns it. The context cancels or
// deadlines the campaign; on cancellation the partial campaign is
// returned alongside the context's error.
func (e *Evaluation) EvaluateSSF(ctx context.Context, sampler sampling.Sampler, opts montecarlo.CampaignOptions) (*montecarlo.Campaign, error) {
	return e.Engine.RunCampaign(ctx, sampler, opts)
}

// CloneEngines builds n independent engines over the same design,
// benchmark, and attack — each with its own SoC instance and golden run
// (the MPU elaboration, placement, and characterization are shared;
// they are immutable). Use with montecarlo.RunCampaignParallel.
func (e *Evaluation) CloneEngines(n int) ([]*montecarlo.Engine, error) {
	f := e.Framework
	out := make([]*montecarlo.Engine, 0, n)
	for i := 0; i < n; i++ {
		s, err := soc.WithMPU(f.Opts.SoC, e.Program, f.MPU)
		if err != nil {
			return nil, err
		}
		eval, err := analytical.New(f.MPU)
		if err != nil {
			return nil, err
		}
		eng, err := montecarlo.New(s, e.Attack, f.Place, f.Opts.Delay, f.Char, eval)
		if err != nil {
			return nil, err
		}
		// Share the parent's timed simulator topology and fault-cone
		// schedule cache instead of recomputing them per clone, and
		// inherit its lane-width choice.
		eng.Timing = e.Engine.Timing.Fork()
		eng.Lanes = e.Engine.Lanes
		if _, err := eng.RunGolden(f.Opts.CheckpointInterval); err != nil {
			return nil, err
		}
		eng.DensifyAttackWindow()
		out = append(out, eng)
	}
	return out, nil
}

// EnginePool is a reusable set of engines over one evaluation: engine
// 0 is the evaluation's own engine, the rest are clones sharing the
// immutable MPU elaboration, placement, and pre-characterization.
// Build the pool once (each clone pays one golden run) and run as many
// parallel or adaptive campaigns over it as needed. The pool runs one
// campaign at a time; the engines themselves are not safe for
// concurrent use outside the pool's own sharding.
type EnginePool struct {
	Evaluation *Evaluation
	Engines    []*montecarlo.Engine
}

// NewEnginePool builds a pool of the given size (minimum 1). The
// evaluation's existing engine is reused as the first pool member, so
// a pool of size n performs n-1 additional golden runs.
func (e *Evaluation) NewEnginePool(workers int) (*EnginePool, error) {
	if workers < 1 {
		workers = 1
	}
	engines := []*montecarlo.Engine{e.Engine}
	if workers > 1 {
		clones, err := e.CloneEngines(workers - 1)
		if err != nil {
			return nil, err
		}
		engines = append(engines, clones...)
	}
	return &EnginePool{Evaluation: e, Engines: engines}, nil
}

// Size returns the number of engines in the pool.
func (p *EnginePool) Size() int { return len(p.Engines) }

// Run splits the campaign across the pool and merges the shard results
// (montecarlo.RunCampaignParallel).
func (p *EnginePool) Run(ctx context.Context, sampler sampling.Sampler, opts montecarlo.CampaignOptions) (*montecarlo.Campaign, error) {
	return montecarlo.RunCampaignParallel(ctx, p.Engines, sampler, opts)
}

// RunAdaptive runs chunked adaptive rounds across the pool, stopping
// on the weak-LLN bound. A pool of one engine degenerates to the
// sequential RunAdaptive (including its per-sample convergence trace).
func (p *EnginePool) RunAdaptive(ctx context.Context, sampler sampling.Sampler, opts montecarlo.AdaptiveOptions) (*montecarlo.Campaign, error) {
	if len(p.Engines) == 1 {
		return p.Engines[0].RunAdaptive(ctx, sampler, opts)
	}
	return montecarlo.RunAdaptiveParallel(ctx, p.Engines, sampler, opts)
}

// EvaluateSSFParallel runs the campaign across the given number of
// worker engines. For repeated campaigns build an EnginePool once
// instead: this convenience clones (and golden-runs) the workers on
// every call.
func (e *Evaluation) EvaluateSSFParallel(ctx context.Context, sampler sampling.Sampler, opts montecarlo.CampaignOptions, workers int) (*montecarlo.Campaign, error) {
	pool, err := e.NewEnginePool(workers)
	if err != nil {
		return nil, err
	}
	return pool.Run(ctx, sampler, opts)
}
