package analyzers

import (
	"go/ast"
	"strings"
)

// wallClockAllowlist lists path suffixes where wall-clock reads are
// sanctioned: progress reporting is presentation, not simulation, and
// its timing never feeds a result.
var wallClockAllowlist = []string{
	"internal/montecarlo/progress.go",
}

// wallClockFuncs are the time-package selectors that read the wall
// clock. Duration arithmetic and constants (time.Millisecond, ...) are
// fine; reading the clock inside a simulation makes behaviour depend on
// host speed.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// NoWallClock forbids wall-clock reads in simulation packages (outside
// tests and the explicit allowlist). Simulated time must come from the
// engine's cycle counters, never from the host clock.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/time.Since in simulation packages (allowlist: montecarlo/progress.go)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test || wallClockAllowed(f.Path) {
				continue
			}
			local, ok := importedAs(f.AST, "time")
			if !ok {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != local {
					return true
				}
				if wallClockFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "wall-clock read time.%s in a simulation package; derive time from simulation cycles instead", sel.Sel.Name)
				}
				return true
			})
		}
	},
}

func wallClockAllowed(path string) bool {
	for _, suffix := range wallClockAllowlist {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
