package analyzers

import (
	"go/ast"
)

// ErrDrop flags statement-position calls that silently discard an
// error result. Two classes of callee are checked: functions and
// methods declared in the analyzed package whose last result is an
// error (the framework is stdlib-only and has no cross-package type
// information), and a short list of stdlib names whose dropped errors
// have bitten real systems on exactly our I/O paths — Encoder.Encode
// (a failed encode sends a truncated HTTP body with a 200 status) and
// os.Remove.
//
// An explicit `_ = f()` assignment is an acknowledged discard and is
// not flagged; neither are `defer`/`go` statements (cleanup-path drops
// are conventional and the call is not an expression statement there).
// Because matching is name-based, local method names only match calls
// whose receiver is a plain identifier (`j.persist()`, not
// `c.Est.Merge(...)`) — a nested receiver usually means a different
// type that happens to share the method name. A best-effort call whose
// error is genuinely meaningless is suppressed with an //errdrop-ok
// comment on the line or the line above.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag statement calls discarding an error result (suppress with //errdrop-ok)",
	Run: func(p *Pass) {
		// Package-local functions and methods whose last result is an
		// error, collected across the non-test files of the package.
		funcErr := make(map[string]bool)
		methodErr := make(map[string]bool)
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.AST.Decls {
				fn, isFn := decl.(*ast.FuncDecl)
				if !isFn || fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
					continue
				}
				last := fn.Type.Results.List[len(fn.Type.Results.List)-1]
				if id, isIdent := last.Type.(*ast.Ident); isIdent && id.Name == "error" {
					if fn.Recv != nil {
						methodErr[fn.Name.Name] = true
					} else {
						funcErr[fn.Name.Name] = true
					}
				}
			}
		}
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			ok := commentLines(p.Fset, f.AST, "errdrop-ok")
			ast.Inspect(f.AST, func(n ast.Node) bool {
				stmt, isExpr := n.(*ast.ExprStmt)
				if !isExpr {
					return true
				}
				call, isCall := stmt.X.(*ast.CallExpr)
				if !isCall {
					return true
				}
				name := ""
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if funcErr[fun.Name] {
						name = fun.Name
					}
				case *ast.SelectorExpr:
					if riskyDrops[fun.Sel.Name] {
						name = fun.Sel.Name
						break
					}
					if _, recvIsIdent := fun.X.(*ast.Ident); recvIsIdent && (methodErr[fun.Sel.Name] || funcErr[fun.Sel.Name]) {
						name = fun.Sel.Name
					}
				}
				if name == "" {
					return true
				}
				line := p.Fset.Position(call.Pos()).Line
				if !ok[line] && !ok[line-1] {
					p.Reportf(call.Pos(), "result of %s is an error and this statement discards it; handle it, assign to _, or mark the line //errdrop-ok with the reason", name)
				}
				return true
			})
		}
	},
}

// riskyDrops are non-local callee names flagged by name alone.
var riskyDrops = map[string]bool{
	"Encode": true,
	"Remove": true,
}
