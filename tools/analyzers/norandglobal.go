package analyzers

import (
	"go/ast"
)

// randConstructors are the math/rand selectors that name types or build
// private, seedable sources — the only sanctioned uses. Everything else
// on the package (rand.Intn, rand.Float64, rand.Seed, ...) goes through
// the shared global source, whose state depends on every other caller
// in the process: campaign results would stop being a function of the
// campaign seed.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true, // type, in signatures like *rand.Rand
	"Source":    true, // type
	"Source64":  true, // type
	"Zipf":      true, // type
}

// NoRandGlobal forbids the process-global math/rand source outside test
// files. Deterministic code must thread an explicit *rand.Rand built
// with rand.New(rand.NewSource(seed)).
var NoRandGlobal = &Analyzer{
	Name: "norandglobal",
	Doc:  "forbid the shared global math/rand source outside _test.go files",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			local, ok := importedAs(f.AST, "math/rand")
			if !ok {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != local {
					return true
				}
				if !randConstructors[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "use of global rand.%s; build a private source with rand.New(rand.NewSource(seed)) so results stay a function of the seed", sel.Sel.Name)
				}
				return true
			})
		}
	},
}
