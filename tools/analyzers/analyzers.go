// Package analyzers hosts the project's custom static analyzers and a
// minimal driver framework for them. The framework mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Reportf) but is
// built only on the standard library's go/ast, go/parser and go/token,
// because the build environment vendors no external modules.
//
// The analyzers enforce the determinism contract of the simulation
// packages: fixed-seed campaigns must be bit-identical across runs, so
// shared global randomness and wall-clock reads are banned there, and
// loops on the sampling hot path must not allocate.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

// String formats the diagnostic in the familiar file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Msg)
}

// File is one parsed source file plus the metadata analyzers filter on.
type File struct {
	AST *ast.File
	// Path is the file's path as given to ParseDir (slash-separated for
	// matching, even on Windows).
	Path string
	// Test reports whether the file name ends in _test.go.
	Test bool
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one analyzer the files of one package directory and
// collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*File
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// ParseDir parses every .go file directly inside dir (non-recursive),
// with comments, and returns them sorted by name.
func ParseDir(fset *token.FileSet, dir string) ([]*File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, &File{
			AST:  f,
			Path: filepath.ToSlash(path),
			Test: strings.HasSuffix(e.Name(), "_test.go"),
		})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	return files, nil
}

// ParseSource parses one in-memory file; the test harness for the
// analyzers uses it.
func ParseSource(fset *token.FileSet, name, src string) (*File, error) {
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &File{AST: f, Path: filepath.ToSlash(name), Test: strings.HasSuffix(name, "_test.go")}, nil
}

// Run applies every analyzer to the files and returns the combined
// diagnostics sorted by position.
func Run(fset *token.FileSet, files []*File, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range as {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, diags: &diags}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Offset < b.Offset
	})
	return diags
}

// importedAs returns the local name under which the file imports the
// package path ("" and false when it does not). A dot or blank import
// returns false: neither produces pkg.Selector expressions.
func importedAs(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		// Default name: the last path element.
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// commentLines returns the set of lines holding a comment whose first
// word is marker (e.g. "hot" for //hot; trailing rationale after the
// marker is allowed, as in "//alloc-ok (reused buffer)").
func commentLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := make(map[int]bool)
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
			if fields := strings.Fields(text); len(fields) > 0 && fields[0] == marker {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
