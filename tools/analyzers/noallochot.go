package analyzers

import (
	"go/ast"
	"go/token"
)

// NoAllocHot flags allocating expressions — append, make, and slice/map
// composite literals — inside loops marked with a //hot comment (on the
// line of the for statement or the line above it). The per-sample loops
// of the Monte Carlo engine and the event sweeps of the timed simulator
// carry the marker: an allocation there turns into garbage-collector
// pressure multiplied by the sample count.
//
// A deliberate allocation (e.g. growing a scratch buffer that
// amortizes to zero) is suppressed with an //alloc-ok comment on the
// same line.
var NoAllocHot = &Analyzer{
	Name: "noallochot",
	Doc:  "flag append/make/slice-or-map literals inside //hot loops (suppress with //alloc-ok)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			hot := commentLines(p.Fset, f.AST, "hot")
			if len(hot) == 0 {
				continue
			}
			ok := commentLines(p.Fset, f.AST, "alloc-ok")
			// Collect the body spans of marked loops, then flag
			// allocations falling inside any span. One walk flags each
			// node once even under nested hot loops.
			var spans [][2]token.Pos
			ast.Inspect(f.AST, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				line := p.Fset.Position(n.Pos()).Line
				if hot[line] || hot[line-1] {
					spans = append(spans, [2]token.Pos{body.Pos(), body.End()})
				}
				return true
			})
			if len(spans) == 0 {
				continue
			}
			inHot := func(pos token.Pos) bool {
				for _, s := range spans {
					if pos >= s[0] && pos < s[1] {
						return true
					}
				}
				return false
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				var what string
				switch e := n.(type) {
				case *ast.CallExpr:
					if id, isIdent := e.Fun.(*ast.Ident); isIdent && (id.Name == "append" || id.Name == "make") {
						what = id.Name
					}
				case *ast.CompositeLit:
					switch t := e.Type.(type) {
					case *ast.ArrayType:
						if t.Len == nil {
							what = "slice literal"
						}
					case *ast.MapType:
						what = "map literal"
					}
				}
				if what == "" || !inHot(n.Pos()) {
					return true
				}
				if !ok[p.Fset.Position(n.Pos()).Line] {
					p.Reportf(n.Pos(), "%s inside a //hot loop allocates per iteration; hoist it or mark the line //alloc-ok", what)
				}
				return true
			})
		}
	},
}

// All is the project analyzer set, in the order cmd/vetall runs them.
var All = []*Analyzer{NoRandGlobal, NoWallClock, NoAllocHot, MapIterDet, LockGuard, SeedFlow, ErrDrop}
