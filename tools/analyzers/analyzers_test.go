package analyzers

import (
	"go/token"
	"strings"
	"testing"
)

// runOn parses one in-memory file under the given name and applies one
// analyzer, returning the diagnostic messages.
func runOn(t *testing.T, a *Analyzer, name, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := ParseSource(fset, name, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Run(fset, []*File{f}, []*Analyzer{a})
}

func TestNoRandGlobalFlagsGlobalSource(t *testing.T) {
	src := `package p
import "math/rand"
func f() int { return rand.Intn(10) }
`
	diags := runOn(t, NoRandGlobal, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "rand.Intn") {
		t.Fatalf("want one rand.Intn finding, got %v", diags)
	}
}

func TestNoRandGlobalAllowsPrivateSource(t *testing.T) {
	src := `package p
import "math/rand"
func f(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
func g(r *rand.Rand) int { return r.Intn(10) }
`
	if diags := runOn(t, NoRandGlobal, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("want no findings, got %v", diags)
	}
}

func TestNoRandGlobalSkipsTests(t *testing.T) {
	src := `package p
import "math/rand"
func f() int { return rand.Intn(10) }
`
	if diags := runOn(t, NoRandGlobal, "p/f_test.go", src); len(diags) != 0 {
		t.Fatalf("want no findings in a test file, got %v", diags)
	}
}

func TestNoRandGlobalHonorsImportRename(t *testing.T) {
	src := `package p
import mrand "math/rand"
func f() int { return mrand.Intn(10) }
`
	if diags := runOn(t, NoRandGlobal, "p/f.go", src); len(diags) != 1 {
		t.Fatalf("want one finding through the renamed import, got %v", diags)
	}
}

func TestNoWallClockFlagsNowAndSince(t *testing.T) {
	src := `package p
import "time"
func f() time.Duration { return time.Since(time.Now()) }
`
	diags := runOn(t, NoWallClock, "internal/timingsim/f.go", src)
	if len(diags) != 2 {
		t.Fatalf("want Now and Since findings, got %v", diags)
	}
}

func TestNoWallClockAllowsDurations(t *testing.T) {
	src := `package p
import "time"
const tick = 50 * time.Millisecond
func f(d time.Duration) float64 { return d.Seconds() }
`
	if diags := runOn(t, NoWallClock, "internal/timingsim/f.go", src); len(diags) != 0 {
		t.Fatalf("want no findings for duration arithmetic, got %v", diags)
	}
}

func TestNoWallClockAllowlist(t *testing.T) {
	src := `package p
import "time"
func f() time.Time { return time.Now() }
`
	if diags := runOn(t, NoWallClock, "internal/montecarlo/progress.go", src); len(diags) != 0 {
		t.Fatalf("want the allowlist to suppress progress.go, got %v", diags)
	}
}

func TestNoAllocHotFlagsAllocations(t *testing.T) {
	src := `package p
func f(xs []int) []int {
	var out []int
	//hot
	for _, x := range xs {
		out = append(out, x)
		m := map[int]bool{}
		_ = m
		buf := make([]int, 4)
		_ = buf
		s := []int{x}
		_ = s
	}
	return out
}
`
	diags := runOn(t, NoAllocHot, "p/f.go", src)
	if len(diags) != 4 {
		t.Fatalf("want append/map-literal/make/slice-literal findings, got %v", diags)
	}
}

func TestNoAllocHotSuppression(t *testing.T) {
	src := `package p
func f(xs []int) []int {
	var out []int
	//hot
	for _, x := range xs {
		out = append(out, x) //alloc-ok (reused buffer)
	}
	return out
}
`
	if diags := runOn(t, NoAllocHot, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("want //alloc-ok to suppress, got %v", diags)
	}
}

func TestNoAllocHotIgnoresUnmarkedLoops(t *testing.T) {
	src := `package p
func f(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`
	if diags := runOn(t, NoAllocHot, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("want no findings without a //hot marker, got %v", diags)
	}
}

func TestNoAllocHotSameLineMarker(t *testing.T) {
	src := `package p
func f(xs []int) []int {
	var out []int
	for _, x := range xs { //hot
		out = append(out, x)
	}
	return out
}
`
	if diags := runOn(t, NoAllocHot, "p/f.go", src); len(diags) != 1 {
		t.Fatalf("want a same-line //hot marker to arm the check, got %v", diags)
	}
}
