package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockGuard checks annotation-driven mutex discipline: a struct field
// carrying a `//guarded-by:mu` comment (where mu names a sync.Mutex or
// sync.RWMutex field of the same struct) may only be accessed through a
// variable whose guarding mutex was locked earlier in the same function
// (`x.mu.Lock()` or `x.mu.RLock()` preceding `x.field`).
//
// The check is positional and name-based — the stdlib-only framework
// has no type information — so it catches the forgot-to-lock-at-all
// class, not every unlock/re-lock interleaving. Two escapes keep it
// precise: a function that builds the value itself from a composite
// literal (`s := &Server{...}`) is a constructor and runs before the
// value is shared, so its accesses are exempt; and a deliberately
// unguarded access (e.g. reading an immutable-after-construction field)
// is suppressed with an //unguarded-ok comment on the access line or
// the line above it.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "check //guarded-by:mu annotated fields are accessed under their mutex (suppress with //unguarded-ok)",
	Run: func(p *Pass) {
		// guards maps an annotated field name to its mutex field name,
		// collected package-wide so methods in other files are checked.
		guards := make(map[string]string)
		owner := make(map[string]string) // field name → struct type name, for messages
		for _, f := range p.Files {
			collectGuards(f.AST, guards, owner)
		}
		if len(guards) == 0 {
			return
		}
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			ok := commentLines(p.Fset, f.AST, "unguarded-ok")
			for _, decl := range f.AST.Decls {
				fn, isFn := decl.(*ast.FuncDecl)
				if !isFn || fn.Body == nil {
					continue
				}
				checkGuardedAccesses(p, fn, guards, owner, ok)
			}
		}
	},
}

// collectGuards scans struct declarations for `//guarded-by:<mutex>`
// field annotations.
func collectGuards(f *ast.File, guards, owner map[string]string) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, isType := n.(*ast.TypeSpec)
		if !isType {
			return true
		}
		st, isStruct := ts.Type.(*ast.StructType)
		if !isStruct {
			return true
		}
		for _, field := range st.Fields.List {
			mu := guardAnnotation(field)
			if mu == "" {
				continue
			}
			for _, name := range field.Names {
				guards[name.Name] = mu
				owner[name.Name] = ts.Name.Name
			}
		}
		return true
	})
}

// guardAnnotation extracts the mutex name from a field's
// `//guarded-by:mu` comment (doc comment or trailing line comment).
func guardAnnotation(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, found := strings.CutPrefix(text, "guarded-by:"); found {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// checkGuardedAccesses walks one function: every `base.field` selector
// of an annotated field must be positionally preceded by a
// `base.<mutex>.Lock()` or `.RLock()` call in the same function.
func checkGuardedAccesses(p *Pass, fn *ast.FuncDecl, guards, owner map[string]string, ok map[int]bool) {
	// Identifiers assigned from composite literals in this function:
	// the value is still private to the constructor, so field accesses
	// through them need no lock.
	constructed := make(map[string]bool)
	// lockPos holds the earliest "base.mutex" lock call position.
	lockPos := make(map[string]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent || i >= len(st.Rhs) {
					continue
				}
				rhs := st.Rhs[i]
				if un, isUnary := rhs.(*ast.UnaryExpr); isUnary && un.Op == token.AND {
					rhs = un.X
				}
				if _, isLit := rhs.(*ast.CompositeLit); isLit {
					constructed[id.Name] = true
				}
			}
		case *ast.CallExpr:
			// base.mutex.Lock() / base.mutex.RLock()
			sel, isSel := st.Fun.(*ast.SelectorExpr)
			if !isSel || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			muSel, isSel := sel.X.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			base, isIdent := muSel.X.(*ast.Ident)
			if !isIdent {
				return true
			}
			key := base.Name + "." + muSel.Sel.Name
			if prev, seen := lockPos[key]; !seen || st.Pos() < prev {
				lockPos[key] = st.Pos()
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		mu, guarded := guards[sel.Sel.Name]
		if !guarded {
			return true
		}
		base, isIdent := sel.X.(*ast.Ident)
		if !isIdent || constructed[base.Name] {
			return true
		}
		if pos, locked := lockPos[base.Name+"."+mu]; locked && pos < sel.Pos() {
			return true
		}
		line := p.Fset.Position(sel.Pos()).Line
		if ok[line] || ok[line-1] {
			return true
		}
		p.Reportf(sel.Pos(), "%s.%s is annotated guarded-by:%s but no %s.%s.Lock() precedes this access in %s; lock it or mark the line //unguarded-ok with the reason",
			base.Name, sel.Sel.Name, mu, base.Name, mu, funcLabel(fn, owner[sel.Sel.Name]))
		return true
	})
}

// funcLabel names the function in diagnostics ("(*Server).runJob" or
// "newID").
func funcLabel(fn *ast.FuncDecl, structName string) string {
	if fn.Recv != nil && structName != "" {
		return "(*" + structName + ")." + fn.Name.Name
	}
	return fn.Name.Name
}
