package analyzers

import (
	"go/ast"
	"go/token"
)

// MapIterDet flags `range` loops over map-typed expressions whose body
// feeds an order-sensitive sink: append, printing/writing, a channel
// send, or a floating-point accumulation (`x += v` on a float
// variable). Go randomizes map iteration order per range, so any of
// these lets the order leak into campaign results or reports — exactly
// the nondeterminism the fixed-seed contract forbids. Per-key updates
// (`m[k] += v`, `m2[k] = v`) are order-insensitive and not flagged.
//
// The analyzer is syntactic: it recognizes maps by how they are
// declared — function-local `make(map...)`, map composite literals,
// parameters and var declarations with a map type, and selectors of
// struct fields declared with a map type anywhere in the package.
//
// A range whose ordering is repaired afterwards (e.g. collected into a
// slice and sorted before use) is suppressed with a //maporder-ok
// comment on the range line or the line above it.
var MapIterDet = &Analyzer{
	Name: "mapiterdet",
	Doc:  "flag map-order-dependent accumulation in range-over-map loops (suppress with //maporder-ok)",
	Run: func(p *Pass) {
		// Package-wide set of struct field names declared with a map
		// type, so `x.Field` ranges are recognized across files.
		mapFields := make(map[string]bool)
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if _, isMap := field.Type.(*ast.MapType); isMap {
						for _, name := range field.Names {
							mapFields[name.Name] = true
						}
					}
				}
				return true
			})
		}
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			ok := commentLines(p.Fset, f.AST, "maporder-ok")
			for _, decl := range f.AST.Decls {
				fn, isFn := decl.(*ast.FuncDecl)
				if !isFn || fn.Body == nil {
					continue
				}
				mapVars, floatVars := localVarKinds(fn)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					rng, isRange := n.(*ast.RangeStmt)
					if !isRange || !isMapExpr(rng.X, mapVars, mapFields) {
						return true
					}
					line := p.Fset.Position(rng.Pos()).Line
					if ok[line] || ok[line-1] {
						return true
					}
					if sink := orderSink(rng.Body, floatVars); sink != "" {
						p.Reportf(rng.Pos(), "range over map feeds %s: iteration order is randomized and leaks into the result; iterate sorted keys or mark the line //maporder-ok with the reason", sink)
					}
					return true
				})
			}
		}
	},
}

// localVarKinds scans one function for identifiers declared as maps and
// as floats (parameters, var declarations, and := forms whose shape
// gives the type away syntactically).
func localVarKinds(fn *ast.FuncDecl) (mapVars, floatVars map[string]bool) {
	mapVars = make(map[string]bool)
	floatVars = make(map[string]bool)
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if _, isMap := field.Type.(*ast.MapType); isMap {
				for _, name := range field.Names {
					mapVars[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE && st.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range st.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent || i >= len(st.Rhs) {
					continue
				}
				switch rhs := st.Rhs[i].(type) {
				case *ast.CallExpr:
					if fun, ok := rhs.Fun.(*ast.Ident); ok && fun.Name == "make" && len(rhs.Args) > 0 {
						if _, isMap := rhs.Args[0].(*ast.MapType); isMap {
							mapVars[id.Name] = true
						}
					}
				case *ast.CompositeLit:
					if _, isMap := rhs.Type.(*ast.MapType); isMap {
						mapVars[id.Name] = true
					}
				case *ast.BasicLit:
					if rhs.Kind == token.FLOAT {
						floatVars[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			if t, isMap := st.Type.(*ast.MapType); isMap && t != nil {
				for _, name := range st.Names {
					mapVars[name.Name] = true
				}
			}
			if t, isIdent := st.Type.(*ast.Ident); isIdent && (t.Name == "float64" || t.Name == "float32") {
				for _, name := range st.Names {
					floatVars[name.Name] = true
				}
			}
		}
		return true
	})
	return mapVars, floatVars
}

// isMapExpr reports whether the ranged expression is syntactically
// known to be a map.
func isMapExpr(x ast.Expr, mapVars, mapFields map[string]bool) bool {
	switch e := x.(type) {
	case *ast.Ident:
		return mapVars[e.Name]
	case *ast.SelectorExpr:
		return mapFields[e.Sel.Name]
	case *ast.CompositeLit:
		_, isMap := e.Type.(*ast.MapType)
		return isMap
	case *ast.CallExpr:
		if fun, ok := e.Fun.(*ast.Ident); ok && fun.Name == "make" && len(e.Args) > 0 {
			_, isMap := e.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.ParenExpr:
		return isMapExpr(e.X, mapVars, mapFields)
	}
	return false
}

// sinkCallNames are function/method names whose calls commit values in
// encounter order.
var sinkCallNames = map[string]bool{
	"append": true, "Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true, "Sprintf": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// orderSink returns a description of the first order-sensitive sink in
// the loop body, or "" when the body is order-insensitive.
func orderSink(body *ast.BlockStmt, floatVars map[string]bool) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			switch fun := st.Fun.(type) {
			case *ast.Ident:
				if sinkCallNames[fun.Name] {
					sink = fun.Name
				}
			case *ast.SelectorExpr:
				if sinkCallNames[fun.Sel.Name] {
					sink = fun.Sel.Name
				}
			}
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.AssignStmt:
			if st.Tok != token.ADD_ASSIGN && st.Tok != token.SUB_ASSIGN {
				return true
			}
			// m[k] += v is per-key and order-insensitive; x += v on a
			// float folds in iteration order and is not associative.
			if id, isIdent := st.Lhs[0].(*ast.Ident); isIdent && floatVars[id.Name] {
				sink = "a floating-point accumulation (non-associative across orders)"
			}
		}
		return true
	})
	return sink
}
