package analyzers

import (
	"go/ast"
)

// SeedFlow flags rand.Rand construction whose seed derives from a
// nondeterministic source: a wall-clock read (time.Now, or a
// Unix*/Nanosecond method call, which in practice only time.Time
// carries), the process id, or crypto/rand. Every campaign in this
// codebase must be reproducible from Options.Seed alone — the scalar,
// batched, and parallel execution paths all promise bit-identical
// results for a fixed seed, and a wall-clock seed silently voids that
// contract while everything still "works".
//
// Seeds that are literals, named constants, or arithmetic over
// variables (the deterministic shard/chunk derivations) pass. A
// deliberate nondeterministic seed (none exist today) would be
// suppressed with a //seed-ok comment on the line or the line above.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "flag rand sources seeded from wall clock/pid/crypto-rand (suppress with //seed-ok)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			randName, imported := importedAs(f.AST, "math/rand")
			if !imported {
				continue
			}
			timeName, _ := importedAs(f.AST, "time")
			osName, _ := importedAs(f.AST, "os")
			cryptoName, _ := importedAs(f.AST, "crypto/rand")
			ok := commentLines(p.Fset, f.AST, "seed-ok")
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				sel, isSel := call.Fun.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				pkg, isIdent := sel.X.(*ast.Ident)
				if !isIdent || pkg.Name != randName {
					return true
				}
				var seed ast.Expr
				switch sel.Sel.Name {
				case "NewSource":
					if len(call.Args) == 1 {
						seed = call.Args[0]
					}
				case "New":
					// rand.New(rand.NewSource(...)) is covered when the
					// inner call is visited; only inspect other sources.
					if len(call.Args) == 1 && !isRandCall(call.Args[0], randName) {
						seed = call.Args[0]
					}
				case "Seed":
					if len(call.Args) == 1 {
						seed = call.Args[0]
					}
				}
				if seed == nil {
					return true
				}
				src := nondetSource(seed, timeName, osName, cryptoName)
				if src == "" {
					return true
				}
				line := p.Fset.Position(call.Pos()).Line
				if !ok[line] && !ok[line-1] {
					p.Reportf(call.Pos(), "rand seed flows from %s: campaigns must be reproducible from a fixed seed (derive from Options.Seed, or mark //seed-ok with the reason)", src)
				}
				return true
			})
		}
	},
}

// isRandCall reports whether the expression is a call into the math/rand
// package (under its local import name).
func isRandCall(x ast.Expr, randName string) bool {
	call, isCall := x.(*ast.CallExpr)
	if !isCall {
		return false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	pkg, isIdent := sel.X.(*ast.Ident)
	return isIdent && pkg.Name == randName
}

// wallClockMethods are method names that, on any receiver, read the
// wall clock in practice (time.Time accessors).
var wallClockMethods = map[string]bool{
	"UnixNano": true, "UnixMicro": true, "UnixMilli": true, "Unix": true,
	"Nanosecond": true,
}

// nondetSource scans a seed expression for nondeterministic inputs and
// describes the first one found ("" when the seed is deterministic).
func nondetSource(seed ast.Expr, timeName, osName, cryptoName string) string {
	src := ""
	ast.Inspect(seed, func(n ast.Node) bool {
		if src != "" {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		if wallClockMethods[sel.Sel.Name] {
			src = "the wall clock (." + sel.Sel.Name + ")"
			return false
		}
		pkg, isIdent := sel.X.(*ast.Ident)
		if !isIdent {
			return true
		}
		switch {
		case timeName != "" && pkg.Name == timeName && sel.Sel.Name == "Now":
			src = "the wall clock (time.Now)"
		case osName != "" && pkg.Name == osName && sel.Sel.Name == "Getpid":
			src = "the process id (os.Getpid)"
		case cryptoName != "" && pkg.Name == cryptoName:
			src = "crypto/rand"
		}
		return src == ""
	})
	return src
}
