package analyzers

import (
	"strings"
	"testing"
)

// --- mapiterdet ---

func TestMapIterDetFlagsAppendInMapRange(t *testing.T) {
	src := `package p
func f(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`
	diags := runOn(t, MapIterDet, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "append") {
		t.Fatalf("want one append finding, got %v", diags)
	}
}

func TestMapIterDetFlagsFloatAccumulation(t *testing.T) {
	src := `package p
func f(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
`
	diags := runOn(t, MapIterDet, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "floating-point") {
		t.Fatalf("want one float-accumulation finding, got %v", diags)
	}
}

func TestMapIterDetAllowsPerKeyUpdates(t *testing.T) {
	src := `package p
func f(m map[int]float64) map[int]float64 {
	out := make(map[int]float64)
	n := 0
	for k, v := range m {
		out[k] += v
		n++
	}
	_ = n
	return out
}
`
	if diags := runOn(t, MapIterDet, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("per-key update and int count are order-insensitive, got %v", diags)
	}
}

func TestMapIterDetSeesStructFields(t *testing.T) {
	src := `package p
import "fmt"
type S struct{ jobs map[string]int }
func (s *S) dump() {
	for id := range s.jobs {
		fmt.Println(id)
	}
}
`
	diags := runOn(t, MapIterDet, "p/f.go", src)
	if len(diags) != 1 {
		t.Fatalf("want one struct-field map finding, got %v", diags)
	}
}

func TestMapIterDetSuppression(t *testing.T) {
	src := `package p
func f(m map[int]string) []string {
	var out []string
	//maporder-ok (sorted before use)
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`
	if diags := runOn(t, MapIterDet, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("want suppression to hold, got %v", diags)
	}
}

func TestMapIterDetSkipsNonMapRange(t *testing.T) {
	src := `package p
func f(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
`
	if diags := runOn(t, MapIterDet, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("slice range must not be flagged, got %v", diags)
	}
}

// --- lockguard ---

func TestLockGuardFlagsUnlockedAccess(t *testing.T) {
	src := `package p
import "sync"
type S struct {
	mu sync.Mutex
	n  int //guarded-by:mu
}
func (s *S) bump() { s.n++ }
`
	diags := runOn(t, LockGuard, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "guarded-by:mu") {
		t.Fatalf("want one unguarded-access finding, got %v", diags)
	}
}

func TestLockGuardAllowsLockedAccess(t *testing.T) {
	src := `package p
import "sync"
type S struct {
	mu sync.RWMutex
	n  int //guarded-by:mu
}
func (s *S) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}
func (s *S) get() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}
`
	if diags := runOn(t, LockGuard, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("locked accesses must pass, got %v", diags)
	}
}

func TestLockGuardAllowsConstructor(t *testing.T) {
	src := `package p
import "sync"
type S struct {
	mu sync.Mutex
	n  int //guarded-by:mu
}
func New() *S {
	s := &S{}
	s.n = 1
	return s
}
`
	if diags := runOn(t, LockGuard, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("constructor access must pass, got %v", diags)
	}
}

func TestLockGuardDocCommentAndSuppression(t *testing.T) {
	src := `package p
import "sync"
type S struct {
	mu sync.Mutex
	//guarded-by:mu
	n int
}
func (s *S) peek() int {
	//unguarded-ok (racy stats read, tolerated)
	return s.n
}
`
	if diags := runOn(t, LockGuard, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("want doc-comment annotation with suppression to pass, got %v", diags)
	}
}

func TestLockGuardChecksAcrossVariables(t *testing.T) {
	src := `package p
import "sync"
type S struct {
	mu sync.Mutex
	n  int //guarded-by:mu
}
func twiddle(a, b *S) {
	a.mu.Lock()
	a.n++
	b.n++
	a.mu.Unlock()
}
`
	diags := runOn(t, LockGuard, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "b.n") {
		t.Fatalf("locking a must not cover b, got %v", diags)
	}
}

// --- seedflow ---

func TestSeedFlowFlagsWallClockSeed(t *testing.T) {
	src := `package p
import (
	"math/rand"
	"time"
)
func f() *rand.Rand { return rand.New(rand.NewSource(time.Now().UnixNano())) }
`
	diags := runOn(t, SeedFlow, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "wall clock") {
		t.Fatalf("want one wall-clock seed finding, got %v", diags)
	}
}

func TestSeedFlowFlagsPidSeed(t *testing.T) {
	src := `package p
import (
	"math/rand"
	"os"
)
func f() rand.Source { return rand.NewSource(int64(os.Getpid())) }
`
	diags := runOn(t, SeedFlow, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "Getpid") {
		t.Fatalf("want one pid seed finding, got %v", diags)
	}
}

func TestSeedFlowAllowsDerivedSeeds(t *testing.T) {
	src := `package p
import "math/rand"
func f(seed int64, shard int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(shard)))
}
`
	if diags := runOn(t, SeedFlow, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("derived seed must pass, got %v", diags)
	}
}

func TestSeedFlowSuppressionAndTests(t *testing.T) {
	src := `package p
import (
	"math/rand"
	"time"
)
func f() rand.Source {
	//seed-ok (jitter source, not a campaign)
	return rand.NewSource(time.Now().UnixNano())
}
`
	if diags := runOn(t, SeedFlow, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("want suppression to hold, got %v", diags)
	}
	unsuppressed := strings.ReplaceAll(src, "//seed-ok (jitter source, not a campaign)\n\t", "")
	if diags := runOn(t, SeedFlow, "p/f_test.go", unsuppressed); len(diags) != 0 {
		t.Fatalf("test files are exempt, got %v", diags)
	}
}

// --- errdrop ---

func TestErrDropFlagsLocalErrorReturner(t *testing.T) {
	src := `package p
func save() error { return nil }
func f() { save() }
`
	diags := runOn(t, ErrDrop, "p/f.go", src)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "save") {
		t.Fatalf("want one dropped-error finding, got %v", diags)
	}
}

func TestErrDropFlagsEncodeAndRemove(t *testing.T) {
	src := `package p
import (
	"encoding/json"
	"io"
	"os"
)
func f(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v)
	os.Remove("x")
}
`
	diags := runOn(t, ErrDrop, "p/f.go", src)
	if len(diags) != 2 {
		t.Fatalf("want Encode and Remove findings, got %v", diags)
	}
}

func TestErrDropAllowsHandledAndDeferred(t *testing.T) {
	src := `package p
import "os"
func save() error { return nil }
func f() error {
	if err := save(); err != nil {
		return err
	}
	_ = save()
	defer os.Remove("x")
	//errdrop-ok (best-effort cleanup)
	os.Remove("y")
	return nil
}
`
	if diags := runOn(t, ErrDrop, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("handled/deferred/suppressed drops must pass, got %v", diags)
	}
}

func TestErrDropSkipsNonErrorLocals(t *testing.T) {
	src := `package p
func count() int { return 0 }
func f() { count() }
`
	if diags := runOn(t, ErrDrop, "p/f.go", src); len(diags) != 0 {
		t.Fatalf("non-error function must pass, got %v", diags)
	}
}
