#!/usr/bin/env bash
# End-to-end smoke test for cmd/ssfserver: submit a job, stream its SSE
# progress, fetch the result; then run the identical job again, kill the
# server after its first checkpoints, restart on the same store, let the
# job resume, and require the resumed SSF to be bit-identical to the
# uninterrupted run (same request + same worker count => deterministic).
#
# Usage: scripts/smoke_ssfserver.sh [port]
set -euo pipefail

PORT="${1:-18080}"
BASE="http://127.0.0.1:${PORT}"
SAMPLES=300000
JOB='{"samples":'"$SAMPLES"',"check_every":200,"sampler":"random","seed":42}'

command -v jq >/dev/null || { echo "smoke: jq is required" >&2; exit 1; }

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

say() { echo "smoke: $*"; }

start_server() {
    "$WORKDIR/ssfserver" -addr "127.0.0.1:${PORT}" -workers 2 -rate 0 \
        -store "$WORKDIR/store" -checkpoint-every 1 >>"$WORKDIR/server.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 240); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "smoke: server died on startup:" >&2
            cat "$WORKDIR/server.log" >&2
            exit 1
        fi
        sleep 0.5
    done
    echo "smoke: server never became healthy" >&2
    exit 1
}

stop_server() {
    kill -TERM "$SERVER_PID"
    for _ in $(seq 1 60); do
        kill -0 "$SERVER_PID" 2>/dev/null || { SERVER_PID=""; return 0; }
        sleep 0.5
    done
    echo "smoke: server ignored SIGTERM" >&2
    exit 1
}

submit_job() {
    curl -sf -X POST "$BASE/v1/jobs" -d "$JOB" | jq -r '.id'
}

job_field() { # id, jq expression
    curl -sf "$BASE/v1/jobs/$1" | jq -r "$2"
}

wait_done() { # id
    for _ in $(seq 1 600); do
        case "$(job_field "$1" '.state')" in
            done) return 0 ;;
            failed|cancelled)
                echo "smoke: job $1 ended $(job_field "$1" '.state'): $(job_field "$1" '.error')" >&2
                exit 1 ;;
        esac
        sleep 0.5
    done
    echo "smoke: job $1 never finished" >&2
    exit 1
}

say "building ssfserver"
go build -o "$WORKDIR/ssfserver" ./cmd/ssfserver

say "starting server on port $PORT"
start_server

say "submitting reference job ($SAMPLES samples)"
JOB_A="$(submit_job)"
[ -n "$JOB_A" ] && [ "$JOB_A" != null ] || { echo "smoke: submit failed" >&2; exit 1; }

say "sampling the SSE progress stream"
SSE="$(curl -sN --max-time 3 "$BASE/v1/jobs/$JOB_A/events" | head -20 || true)"
echo "$SSE" | grep -q "^event: " || { echo "smoke: no SSE events:"; echo "$SSE"; exit 1; } >&2

wait_done "$JOB_A"
SSF_A="$(job_field "$JOB_A" '.result.ssf')"
say "reference job done: ssf=$SSF_A"

say "submitting identical job and killing the server mid-run"
JOB_B="$(submit_job)"
for _ in $(seq 1 200); do
    ROUNDS="$(job_field "$JOB_B" '.rounds // 0')"
    [ "$ROUNDS" -ge 2 ] && break
    STATE="$(job_field "$JOB_B" '.state')"
    if [ "$STATE" != queued ] && [ "$STATE" != running ]; then
        echo "smoke: job $JOB_B reached $STATE before any checkpoint" >&2
        exit 1
    fi
    sleep 0.05
done
[ "${ROUNDS:-0}" -ge 2 ] || { echo "smoke: no checkpoint before timeout" >&2; exit 1; }
say "job $JOB_B checkpointed $ROUNDS rounds; stopping server"
stop_server

say "restarting server on the same store"
start_server
STATE="$(job_field "$JOB_B" '.state')"
case "$STATE" in
    queued|running|done) say "job $JOB_B recovered in state $STATE" ;;
    *) echo "smoke: job $JOB_B in unexpected state $STATE after restart" >&2; exit 1 ;;
esac
wait_done "$JOB_B"
SSF_B="$(job_field "$JOB_B" '.result.ssf')"
SAMPLES_B="$(job_field "$JOB_B" '.result.samples')"
say "resumed job done: ssf=$SSF_B samples=$SAMPLES_B"

if [ "$SSF_A" != "$SSF_B" ]; then
    echo "smoke: resumed SSF $SSF_B differs from uninterrupted SSF $SSF_A" >&2
    exit 1
fi
if [ "$SAMPLES_B" != "$SAMPLES" ]; then
    echo "smoke: resumed job ran $SAMPLES_B samples, want $SAMPLES" >&2
    exit 1
fi
say "PASS: checkpoint resume is bit-identical ($SSF_A)"
