GO ?= go

.PHONY: build test race bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/montecarlo/... ./internal/timingsim/... ./internal/logicsim/... ./internal/stats/... ./internal/sampling/...

# bench regenerates BENCH_runonce.json, the committed perf record of the
# per-run hot path (ns/op + allocs/op for RunOnce, GateInjection, RTLCycle).
bench:
	$(GO) run ./cmd/benchjson -out BENCH_runonce.json

# bench-smoke is the cheap CI guard: the hot-path benchmarks must still
# compile and run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRunOnce$$|BenchmarkGateInjection$$' -benchtime=100x .
