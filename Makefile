GO ?= go

.PHONY: build test race bench bench-smoke lint fuzz-smoke smoke-server gen

build:
	$(GO) build ./...

# gen regenerates every go:generate artifact — today that is the MPU's
# straight-line evaluator (internal/soc/mpu_evalgen.go, produced by
# cmd/gnlgen). Run after changing the MPU netlist or the logicsim
# compiler, then commit the result; CI fails on drift.
gen:
	$(GO) generate ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/montecarlo/... ./internal/timingsim/... ./internal/logicsim/... ./internal/stats/... ./internal/sampling/... ./internal/server/... ./internal/precharac/... ./internal/netlist/... ./internal/core/...

# smoke-server is the evaluation-service e2e check: build cmd/ssfserver,
# submit a job over HTTP, stream its SSE progress, kill the server after
# its first checkpoints, restart it on the same store, and require the
# resumed result to be bit-identical to an uninterrupted run.
smoke-server:
	./scripts/smoke_ssfserver.sh

# lint runs the full static-analysis stack: go vet, the project's custom
# determinism/concurrency analyzers (cmd/vetall), the netlist/model
# linter over the shipped circuits and the built-in MPU — including the
# PL plan-verifier rules (-plan) that re-check every compiled logicsim
# plan against its source netlist — and, when the binaries are
# installed, staticcheck and govulncheck. The last two are gated on
# availability so lint works in hermetic build environments; CI installs
# them explicitly (at pinned versions).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/vetall
	$(GO) run ./cmd/netlint -plan examples/circuits/*.gnl
	$(GO) run ./cmd/netlint -plan -builtin
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi

# fuzz-smoke gives the fuzz targets a short budget each: enough to
# catch parser or evaluator-equivalence regressions without stalling CI.
fuzz-smoke:
	$(GO) test ./internal/netlist/ -fuzz FuzzNetlistDeserialize -fuzztime=20s
	$(GO) test ./internal/logicsim/ -run '^FuzzPlanEquivalence$$' -fuzz '^FuzzPlanEquivalence$$' -fuzztime=20s
	$(GO) test ./internal/logicsim/codegen/ -run '^FuzzCodegenEquivalence$$' -fuzz '^FuzzCodegenEquivalence$$' -fuzztime=20s

# bench regenerates the committed perf records: BENCH_runonce.json (the
# per-run hot path: ns/op + allocs/op for RunOnce, GateInjection,
# RTLCycle), BENCH_campaign.json (campaign throughput, scalar vs
# lane-batched, with the speedup ratio), BENCH_lanes.json (batched
# throughput across the 64/256/512-lane resume widths),
# BENCH_codegen.json (generated straight-line evaluator vs interpreted
# op stream, per combinational pass and per campaign), and
# BENCH_convergence.json (per-sampler samples-to-target-CI — statistical
# efficiency rather than wall time).
bench:
	$(GO) run ./cmd/benchjson -suite runonce -out BENCH_runonce.json
	$(GO) run ./cmd/benchjson -suite campaign -out BENCH_campaign.json
	$(GO) run ./cmd/benchjson -suite lanes -out BENCH_lanes.json
	$(GO) run ./cmd/benchjson -suite codegen -out BENCH_codegen.json
	$(GO) run ./cmd/benchjson -suite convergence -out BENCH_convergence.json

# bench-smoke is the cheap CI guard: the hot-path benchmarks must still
# compile and run (including every lane width), and fresh runonce and
# lanes records must stay within tolerance of the committed ones
# (generous 0.75 to absorb shared-runner noise). The convergence record
# counts samples, not time — fixed-seed deterministic — so it is gated
# at a tight 0.05.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRunOnce$$|BenchmarkGateInjection$$|BenchmarkCampaignBatched$$|BenchmarkCampaignLanes(64|256|512)$$' -benchtime=100x .
	$(GO) test -run '^$$' -bench 'BenchmarkMPUEval$$' -benchtime=100x ./internal/soc/
	$(GO) run ./cmd/benchjson -suite runonce -out /tmp/bench_smoke.json
	$(GO) run ./cmd/benchjson -compare -tolerance 0.75 BENCH_runonce.json /tmp/bench_smoke.json
	$(GO) run ./cmd/benchjson -suite lanes -out /tmp/bench_lanes_smoke.json
	$(GO) run ./cmd/benchjson -compare -tolerance 0.75 BENCH_lanes.json /tmp/bench_lanes_smoke.json
	$(GO) run ./cmd/benchjson -suite codegen -out /tmp/bench_codegen_smoke.json
	$(GO) run ./cmd/benchjson -compare -tolerance 0.75 BENCH_codegen.json /tmp/bench_codegen_smoke.json
	$(GO) run ./cmd/benchjson -suite convergence -out /tmp/bench_conv_smoke.json
	$(GO) run ./cmd/benchjson -compare -tolerance 0.05 BENCH_convergence.json /tmp/bench_conv_smoke.json
