GO ?= go

.PHONY: build test race bench bench-smoke lint fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/montecarlo/... ./internal/timingsim/... ./internal/logicsim/... ./internal/stats/... ./internal/sampling/...

# lint runs the full static-analysis stack: go vet, the project's custom
# determinism analyzers (cmd/vetall), the netlist/model linter over the
# shipped circuits and the built-in MPU, and — when the binaries are
# installed — staticcheck and govulncheck. The last two are gated on
# availability so lint works in hermetic build environments; CI installs
# them explicitly.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/vetall
	$(GO) run ./cmd/netlint examples/circuits/*.gnl
	$(GO) run ./cmd/netlint -builtin
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi

# fuzz-smoke gives the serializer fuzz target a short budget: enough to
# catch parser regressions without stalling CI.
fuzz-smoke:
	$(GO) test ./internal/netlist/ -fuzz FuzzNetlistDeserialize -fuzztime=20s

# bench regenerates BENCH_runonce.json, the committed perf record of the
# per-run hot path (ns/op + allocs/op for RunOnce, GateInjection, RTLCycle).
bench:
	$(GO) run ./cmd/benchjson -out BENCH_runonce.json

# bench-smoke is the cheap CI guard: the hot-path benchmarks must still
# compile and run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRunOnce$$|BenchmarkGateInjection$$' -benchtime=100x .
